#!/usr/bin/env python3
"""Thresholded perf-regression gate over google-benchmark JSON output.

Compares a fresh run of a micro benchmark binary (``--benchmark_format=json``)
against a checked-in baseline, e.g.::

    build/bench/bench_micro_join_samplers \
        --benchmark_out=current.json --benchmark_out_format=json
    python3 bench/check_regression.py \
        --baseline bench/baselines/micro_join_samplers.json \
        --current current.json --tolerance 0.5

Baselines are recorded on one machine and checked on another (CI runners
are not the laptop that wrote the baseline), so absolute times are not
directly comparable. The gate therefore normalizes: it computes the
per-benchmark ratio current/baseline, takes the median ratio as the
"machine speed" factor, and flags benchmarks whose ratio exceeds
``median * (1 + tolerance)``. A uniform slowdown moves the median itself,
so --max-median additionally bounds the median ratio (default 3.0, a loose
absolute backstop against whole-suite regressions that survives slow CI
hardware; tighten it when baseline and runner match).

Exit codes: 0 clean, 1 regression(s), 2 usage/data error.
"""

import argparse
import json
import re
import sys

# google-benchmark time units per nanosecond.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """benchmark name -> real_time in ns (raw iterations only).

    A run recorded with ``--benchmark_repetitions=N`` emits N iteration
    entries under the same name; they collapse to their median here, so
    repeated (ideally ``--benchmark_enable_random_interleaving``) runs
    feed the gate one noise-resistant number per benchmark.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    samples = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        if entry.get("error_occurred"):
            continue
        name = entry["name"]
        unit = _UNIT_NS.get(entry.get("time_unit", "ns"))
        if unit is None:
            print(f"error: unknown time unit in {name}", file=sys.stderr)
            sys.exit(2)
        samples.setdefault(name, []).append(float(entry["real_time"]) * unit)
    if not samples:
        print(f"error: no benchmarks in {path}", file=sys.stderr)
        sys.exit(2)
    return {name: median(values) for name, values in samples.items()}


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def main():
    parser = argparse.ArgumentParser(
        description="google-benchmark perf-regression gate")
    parser.add_argument("--baseline", default=None,
                        help="checked-in baseline JSON; omit to skip the "
                             "baseline comparison and run only the "
                             "--require-speedup / --require-counter "
                             "assertions on the current run (same-run "
                             "gates need no baseline)")
    parser.add_argument("--current", required=True,
                        help="fresh benchmark JSON to check")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional slowdown over the "
                             "machine-speed-normalized baseline "
                             "(default 0.5 = 50%%)")
    parser.add_argument("--max-median", type=float, default=3.0,
                        help="cap on the median current/baseline ratio; "
                             "catches uniform whole-suite slowdowns "
                             "(default 3.0)")
    parser.add_argument("--allow-new", action="store_true",
                        help="tolerate benchmarks missing from the baseline "
                             "instead of failing (default: fail, which "
                             "forces the documented same-commit baseline "
                             "refresh when benchmarks are added)")
    parser.add_argument("--require-speedup", nargs=3, action="append",
                        default=[], metavar=("FAST", "SLOW", "MIN"),
                        help="assert real_time[SLOW] >= MIN * "
                             "real_time[FAST] in the CURRENT run (both "
                             "exact benchmark names). Cross-benchmark "
                             "invariants (e.g. prepared-query requests "
                             "must stay 2x faster than cold builds) are "
                             "same-run, same-machine comparisons, so no "
                             "normalization applies. Repeatable.")
    parser.add_argument("--require-counter", nargs=3, action="append",
                        default=[], metavar=("KEY", "MIN", "MAX"),
                        help="assert MIN <= counters[KEY] <= MAX in the "
                             "CURRENT run's top-level \"counters\" object "
                             "(bench_loadgen emits one). Use 'inf' for an "
                             "open upper bound. Gates behavioral "
                             "invariants the latency entries cannot "
                             "express: determinism_ok == 1, sheds > 0 "
                             "under deliberate overload, etc. Repeatable.")
    parser.add_argument("--exclude", default=None,
                        help="regex of benchmark names to drop from the "
                             "comparison entirely. Use for benchmarks whose "
                             "time depends on core count (thread-scaling "
                             "args): their baseline/runner ratio reflects "
                             "hardware, not code, and would both evade the "
                             "gate and skew the median normalizer.")
    args = parser.parse_args()

    current = load_times(args.current)
    baseline = load_times(args.baseline) if args.baseline else None

    counter_failures = []
    if args.require_counter:
        with open(args.current) as f:
            counters = json.load(f).get("counters", {})
        for key, lo, hi in args.require_counter:
            try:
                lo, hi = float(lo), float(hi)
            except ValueError:
                print(f"error: --require-counter bounds '{lo}'/'{hi}' are "
                      "not numbers", file=sys.stderr)
                sys.exit(2)
            if key not in counters:
                print(f"require-counter: {key} MISSING from current run")
                counter_failures.append(key)
                continue
            value = float(counters[key])
            verdict = "ok" if lo <= value <= hi else "VIOLATION"
            print(f"require-counter: {key} = {value:g} "
                  f"(need [{lo:g}, {hi:g}])  {verdict}")
            if verdict != "ok":
                counter_failures.append(key)

    speedup_failures = []
    for fast, slow, minimum in args.require_speedup:
        try:
            minimum = float(minimum)
        except ValueError:
            print(f"error: --require-speedup minimum '{minimum}' is not a "
                  "number", file=sys.stderr)
            sys.exit(2)
        if fast not in current or slow not in current:
            missing = [n for n in (fast, slow) if n not in current]
            print(f"error: --require-speedup name(s) not in current run: "
                  f"{', '.join(missing)}", file=sys.stderr)
            sys.exit(2)
        ratio = current[slow] / current[fast]
        verdict = "ok" if ratio >= minimum else "VIOLATION"
        print(f"require-speedup: {slow} / {fast} = {ratio:.2f}x "
              f"(need >= {minimum:.2f}x)  {verdict}")
        if ratio < minimum:
            speedup_failures.append(f"{fast} vs {slow}")
    failures = []
    if baseline is not None:
        if args.exclude:
            pattern = re.compile(args.exclude)
            dropped = sorted(n for n in set(baseline) | set(current)
                             if pattern.search(n))
            for name in dropped:
                baseline.pop(name, None)
                current.pop(name, None)
            if dropped:
                print(f"excluded by --exclude: {', '.join(dropped)}")

        common = sorted(set(baseline) & set(current))
        missing = sorted(set(baseline) - set(current))
        new = sorted(set(current) - set(baseline))
        if not common:
            print("error: no common benchmarks between baseline and current",
                  file=sys.stderr)
            sys.exit(2)

        ratios = {name: current[name] / baseline[name] for name in common}
        speed = median(ratios.values())
        limit = speed * (1.0 + args.tolerance)

        print(f"{len(common)} common benchmarks; median current/baseline "
              f"ratio {speed:.3f} (machine-speed normalizer), per-benchmark "
              f"limit {limit:.3f}")
        print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} "
              f"{'ratio':>8}  verdict")

        for name in common:
            ratio = ratios[name]
            verdict = "ok"
            if ratio > limit:
                verdict = "REGRESSION"
                failures.append(name)
            print(f"{name:<44} {baseline[name]:>10.0f}ns "
                  f"{current[name]:>10.0f}ns {ratio:>8.3f}  {verdict}")

        for name in missing:
            print(f"{name:<44} {'(missing from current run)':>36}")
            failures.append(name)
        for name in new:
            print(f"{name:<44} {'(new; not in baseline)':>36}")
            if not args.allow_new:
                failures.append(name)

        if speed > args.max_median:
            print(f"FAIL: median ratio {speed:.3f} exceeds --max-median "
                  f"{args.max_median:.3f} (whole-suite slowdown)")
            sys.exit(1)
    if failures:
        print(f"FAIL: {len(failures)} regressed/missing benchmark(s): "
              + ", ".join(failures))
        sys.exit(1)
    if speedup_failures:
        print(f"FAIL: {len(speedup_failures)} --require-speedup "
              f"violation(s): " + ", ".join(speedup_failures))
        sys.exit(1)
    if counter_failures:
        print(f"FAIL: {len(counter_failures)} --require-counter "
              f"violation(s): " + ", ".join(counter_failures))
        sys.exit(1)
    print("PASS: no perf regression beyond tolerance")
    sys.exit(0)


if __name__ == "__main__":
    main()
