// Fig 6a / 6b: online union sampling with sample reuse (§7).
//
// 6a: sampling time vs sample size, random-walk method with and without
//     reusing the warm-up walk tuples, on UQ1 / UQ2 / UQ3.
// 6b: time per accepted sample in the reuse phase vs the regular (fresh
//     walk) phase.
//
// Paper shape: reuse is markedly faster until the pools drain (a visible
// slope change), with the gap largest on the workload with the largest
// union (UQ1); per-sample cost in the reuse phase is a fraction of the
// regular phase.

#include "bench_util.h"
#include "core/online_union_sampler.h"

namespace suj {
namespace bench {
namespace {

struct RunResult {
  double seconds;
  const OnlineUnionSampleStats stats;
};

double RunOnline(const workloads::UnionWorkload& workload, bool reuse,
                 size_t n, uint64_t seed, OnlineUnionSampleStats* stats) {
  CompositeIndexCache cache;
  RandomWalkOverlapEstimator::Options rw_opts;
  rw_opts.min_walks = 1000;  // a full warm-up pool to recycle
  rw_opts.max_walks = 1000;
  auto rw = Unwrap(
      RandomWalkOverlapEstimator::Create(workload.joins, &cache, rw_opts),
      "rw estimator");
  Rng rng(seed);
  UnwrapStatus(rw->Warmup(rng), "rw warmup");
  auto estimates = Unwrap(ComputeUnionEstimates(rw.get()), "rw est");

  OnlineUnionSampler::Options opts;
  opts.enable_reuse = reuse;
  auto sampler = Unwrap(
      OnlineUnionSampler::Create(workload.joins, rw.get(), estimates, opts),
      "online sampler");
  double sec =
      TimeSeconds([&] { Unwrap(sampler->Sample(n, rng), "sampling"); });
  if (stats != nullptr) *stats = sampler->stats();
  return sec;
}

void RunWorkload(const char* name, const workloads::UnionWorkload& workload,
                 uint64_t seed) {
  std::printf("\n=== Fig 6a: online sampling time vs N (%s) ===\n", name);
  std::printf("%-8s %-16s %-16s\n", "N", "with_reuse_sec", "no_reuse_sec");
  for (size_t n : {250, 500, 1000, 2000, 4000}) {
    double with_reuse = RunOnline(workload, true, n, seed, nullptr);
    double without = RunOnline(workload, false, n, seed, nullptr);
    std::printf("%-8zu %-16.4f %-16.4f\n", n, with_reuse, without);
  }

  std::printf("\n=== Fig 6b: per-sample cost, reuse vs regular phase (%s) ===\n",
              name);
  OnlineUnionSampleStats stats;
  RunOnline(workload, true, 3000, seed + 1, &stats);
  double reuse_per = stats.reuse_accepted > 0
                         ? stats.reuse_seconds /
                               static_cast<double>(stats.reuse_accepted)
                         : 0.0;
  double regular_per = stats.fresh_accepted > 0
                           ? stats.regular_seconds /
                                 static_cast<double>(stats.fresh_accepted)
                           : 0.0;
  std::printf("reuse_accepted=%llu  reuse_sec/sample=%.6f\n",
              static_cast<unsigned long long>(stats.reuse_accepted),
              reuse_per);
  std::printf("fresh_accepted=%llu  regular_sec/sample=%.6f\n",
              static_cast<unsigned long long>(stats.fresh_accepted),
              regular_per);
  if (reuse_per > 0 && regular_per > 0) {
    std::printf("regular/reuse cost ratio: %.2fx\n", regular_per / reuse_per);
  }
}

}  // namespace
}  // namespace bench
}  // namespace suj

int main() {
  using suj::bench::RunWorkload;
  using suj::bench::UQ1Config;
  using suj::bench::Unwrap;

  RunWorkload("UQ1",
              Unwrap(suj::workloads::BuildUQ1(UQ1Config(1.0, 0.2)), "UQ1"),
              41);

  suj::tpch::TpchConfig uq2;
  uq2.scale_factor = 1.0;
  RunWorkload("UQ2", Unwrap(suj::workloads::BuildUQ2(uq2), "UQ2"), 42);

  suj::tpch::TpchConfig uq3;
  uq3.scale_factor = 1.0;
  RunWorkload("UQ3", Unwrap(suj::workloads::BuildUQ3(uq3), "UQ3"), 43);
  return 0;
}
