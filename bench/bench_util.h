// Shared helpers for the figure-reproduction harnesses.
//
// Each bench binary regenerates the series of one paper figure (Fig 4-6 of
// "Sampling over Union of Joins") on laptop-scale data and prints the rows
// the figure plots. Absolute numbers differ from the paper's testbed; the
// shapes (who wins, how curves scale) are what EXPERIMENTS.md records.

#ifndef SUJ_BENCH_BENCH_UTIL_H_
#define SUJ_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/exact_overlap.h"
#include "core/histogram_overlap.h"
#include "core/random_walk_overlap.h"
#include "core/union_sampler.h"
#include "core/union_size_model.h"
#include "join/exact_weight.h"
#include "join/olken_sampler.h"
#include "workloads/synthetic.h"
#include "workloads/tpch_workloads.h"

namespace suj {
namespace bench {

/// Wall-clock seconds spent in `fn`.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Unwraps a Result or aborts with its status (bench binaries fail loudly).
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void UnwrapStatus(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

/// Mean relative error between estimated and exact |J_i|/|U| ratios (the
/// metric of Fig 4a/4b and Fig 5a).
inline double RatioError(const std::vector<double>& estimated_ratios,
                         const std::vector<double>& exact_ratios) {
  SUJ_CHECK(estimated_ratios.size() == exact_ratios.size());
  double total = 0.0;
  for (size_t i = 0; i < exact_ratios.size(); ++i) {
    if (exact_ratios[i] > 0.0) {
      total += std::fabs(estimated_ratios[i] - exact_ratios[i]) /
               exact_ratios[i];
    }
  }
  return total / static_cast<double>(exact_ratios.size());
}

/// The two single-join sampler instantiations compared throughout §9.
enum class WeightKind { kExactWeight, kExtendedOlken };

inline const char* WeightKindName(WeightKind kind) {
  return kind == WeightKind::kExactWeight ? "EW" : "EO";
}

inline std::vector<std::unique_ptr<JoinSampler>> MakeJoinSamplers(
    const std::vector<JoinSpecPtr>& joins, CompositeIndexCache* cache,
    WeightKind kind) {
  std::vector<std::unique_ptr<JoinSampler>> out;
  for (const auto& join : joins) {
    if (kind == WeightKind::kExactWeight) {
      out.push_back(Unwrap(ExactWeightSampler::Create(join, cache), "EW"));
    } else {
      out.push_back(Unwrap(OlkenJoinSampler::Create(join, cache), "EO"));
    }
  }
  return out;
}

/// Standard UQ1 configuration used by the benches.
inline tpch::OverlapConfig UQ1Config(double scale_factor,
                                     double overlap_scale,
                                     int num_variants = 5) {
  tpch::OverlapConfig config;
  config.per_variant.scale_factor = scale_factor;
  config.per_variant.seed = 42;
  config.num_variants = num_variants;
  config.overlap_scale = overlap_scale;
  return config;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// The union-sampling micro workload: an overlapping union of chain joins
/// with exact warm-up parameters. Shared by bench_micro_join_samplers
/// (whose numbers the CI perf gate baselines) and
/// bench_fig_parallel_scaling, so the scaling figure always measures the
/// gated workload.
struct UnionMicroWorkload {
  std::vector<JoinSpecPtr> joins;
  UnionEstimates estimates;
  std::vector<JoinMembershipProberPtr> probers;
  /// Shared (and internally synchronized) index cache; shared_ptr so the
  /// workload stays movable and samplers can co-own the cache.
  std::shared_ptr<CompositeIndexCache> cache =
      std::make_shared<CompositeIndexCache>();
  /// Prebuilt per-join weight indexes (immutable, shared across workers).
  std::vector<ExactWeightIndexPtr> weight_indexes;
};

inline UnionMicroWorkload BuildUnionMicroWorkload() {
  UnionMicroWorkload w;
  workloads::SyntheticChainOptions opts;
  opts.num_joins = 4;
  opts.master_rows = 400;
  opts.max_degree = 3;
  opts.seed = 42;
  w.joins = Unwrap(workloads::MakeOverlappingChains(opts), "chains");
  auto exact = Unwrap(ExactOverlapCalculator::Create(w.joins), "overlap");
  w.estimates = Unwrap(ComputeUnionEstimates(exact.get()), "estimates");
  w.probers = Unwrap(BuildProbers(w.joins), "probers");
  for (const auto& join : w.joins) {
    w.weight_indexes.push_back(
        Unwrap(ExactWeightIndex::Build(join, w.cache.get()), "EW index"));
  }
  return w;
}

/// One worker's exact-weight samplers over the workload's prebuilt weight
/// indexes: per-worker construction is O(1), so the sampler setup inside
/// a timed Sample() call doesn't grow with the thread count. `columnar`
/// false forces the row-oriented reference path (CDF draws over encoded
/// key probes) — the anchor the CI perf gate measures the columnar
/// speedup against.
inline UnionSampler::JoinSamplerFactory UnionMicroEwFactory(
    UnionMicroWorkload* w, bool columnar = true) {
  return [w, columnar]() -> Result<std::vector<std::unique_ptr<JoinSampler>>> {
    ExactWeightSampler::Options options;
    options.columnar = columnar;
    std::vector<std::unique_ptr<JoinSampler>> out;
    for (const auto& index : w->weight_indexes) {
      auto sampler = ExactWeightSampler::Create(index, options);
      if (!sampler.ok()) return sampler.status();
      out.push_back(std::move(*sampler));
    }
    return out;
  };
}

}  // namespace bench
}  // namespace suj

#endif  // SUJ_BENCH_BENCH_UTIL_H_
