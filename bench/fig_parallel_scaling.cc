// Parallel scaling of the batched union-sampling executor, both modes.
//
// Draws the same n union samples at 1, 2, 4, and 8 worker threads on the
// micro workload (an overlapping union of chain joins, exact warm-up
// parameters, exact-weight samplers) and prints wall time, throughput, and
// speedup per thread count — once for oracle mode (one fan-out per call)
// and once for revision mode (the epoch-reconciled ownership protocol of
// core/ownership_map.h). Because both paths seed per batch, every row of a
// mode must produce the byte-identical sample sequence — the harness
// hashes each sequence and fails loudly on divergence, so this doubles as
// an end-to-end determinism check on real hardware.
//
// Usage: bench_fig_parallel_scaling [num_samples]   (default 200000)

#include <cstdlib>
#include <cstring>

#include "bench_util.h"

namespace suj {
namespace bench {
namespace {

// FNV-1a over the encoded sample sequence: cheap, order-sensitive.
uint64_t SequenceHash(const std::vector<Tuple>& samples) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& t : samples) {
    for (char c : t.Encode()) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

int RunMode(UnionMicroWorkload& w, UnionSampler::Mode mode, size_t n) {
  const bool revision = mode == UnionSampler::Mode::kRevision;
  PrintHeader(revision
                  ? "parallel scaling: revision mode (epoch-reconciled, EW)"
                  : "parallel scaling: batched union sampling (oracle mode, "
                    "EW)");
  std::printf("union of %zu chain joins, n = %zu samples, batch = 512\n\n",
              w.joins.size(), n);
  std::printf("%8s %12s %14s %10s %18s\n", "threads", "seconds", "samples/s",
              "speedup", "sequence hash");

  double baseline_seconds = 0.0;
  double speedup_at_4 = 0.0;
  uint64_t reference_hash = 0;
  bool deterministic = true;

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    UnionSampler::Options opts;
    opts.mode = mode;
    opts.num_threads = threads;
    opts.batch_size = 512;
    opts.sampler_factory = UnionMicroEwFactory(&w);
    // The decentralized protocol never probes membership.
    std::vector<JoinMembershipProberPtr> probers;
    if (!revision) probers = w.probers;
    auto sampler = Unwrap(
        UnionSampler::Create(w.joins, {}, w.estimates, probers, opts),
        "union sampler");
    Rng rng(999);
    std::vector<Tuple> samples;
    double seconds = TimeSeconds([&] {
      samples = Unwrap(sampler->Sample(n, rng), "sample");
    });
    uint64_t hash = SequenceHash(samples);
    if (threads == 1) {
      baseline_seconds = seconds;
      reference_hash = hash;
    }
    if (hash != reference_hash) deterministic = false;
    double speedup = baseline_seconds / seconds;
    if (threads == 4) speedup_at_4 = speedup;
    std::printf("%8zu %12.3f %14.0f %9.2fx %18llx\n", threads, seconds,
                static_cast<double>(n) / seconds, speedup,
                static_cast<unsigned long long>(hash));
    if (revision) {
      const auto& stats = sampler->stats();
      std::printf("         epochs=%llu reconcile=%.3fs dropped=%llu "
                  "revisions=%llu\n",
                  static_cast<unsigned long long>(stats.revision_epochs),
                  stats.reconciliation_seconds,
                  static_cast<unsigned long long>(stats.reconcile_dropped),
                  static_cast<unsigned long long>(stats.revisions));
    }
  }

  std::printf("\ndeterminism: %s (identical sequence at every thread count)\n",
              deterministic ? "OK" : "FAILED");
  std::printf("speedup at 4 threads: %.2fx (target > %s on >= 4 cores)\n",
              speedup_at_4, revision ? "1.5x" : "2x");
  if (!deterministic) {
    std::fprintf(stderr, "FATAL: sample sequence depends on thread count\n");
    return 1;
  }
  return 0;
}

int Run(size_t n) {
  UnionMicroWorkload w = BuildUnionMicroWorkload();
  int rc = RunMode(w, UnionSampler::Mode::kMembershipOracle, n);
  if (rc != 0) return rc;
  return RunMode(w, UnionSampler::Mode::kRevision, n);
}

}  // namespace
}  // namespace bench
}  // namespace suj

int main(int argc, char** argv) {
  size_t n = 200000;
  if (argc > 1) {
    long parsed = std::atol(argv[1]);
    if (parsed <= 0) {
      std::fprintf(stderr, "usage: %s [num_samples]\n", argv[0]);
      return 2;
    }
    n = static_cast<size_t>(parsed);
  }
  return suj::bench::Run(n);
}
