// Fig 5f / 5g / 5h: runtime breakdown on UQ1 / UQ2 / UQ3 -- time spent on
// parameter estimation (warm-up), producing accepted answers, and producing
// rejected answers -- for hist+EW, hist+EO, and rw+EW.
//
// Paper shape: EO spends much more time on rejected answers than EW (EW's
// join-level rejection rate is zero); EO wins on the warm-up side; time on
// accepted answers is similar across instantiations, and duplicate (cover)
// rejections are a minor cost.

#include "bench_util.h"
#include "join/membership.h"

namespace suj {
namespace bench {
namespace {

constexpr size_t kSamples = 3000;

void RunOne(const char* figure, const char* name,
            workloads::UnionWorkload workload, uint64_t seed) {
  std::printf("\n=== %s: time breakdown (%s, N=%zu) ===\n", figure, name,
              kSamples);
  std::printf("%-10s %-12s %-14s %-14s %-12s %-12s\n", "method",
              "warmup_sec", "accepted_sec", "rejected_sec", "cover_rej",
              "join_rej");
  CompositeIndexCache cache;
  auto probers = Unwrap(BuildProbers(workload.joins), "probers");

  struct Config {
    const char* label;
    bool rw_warmup;
    WeightKind kind;
  };
  for (const Config& config :
       {Config{"hist+EW", false, WeightKind::kExactWeight},
        Config{"hist+EO", false, WeightKind::kExtendedOlken},
        Config{"rw+EW", true, WeightKind::kExactWeight}}) {
    UnionEstimates estimates;
    double warmup_sec = TimeSeconds([&] {
      if (config.rw_warmup) {
        auto rw = Unwrap(
            RandomWalkOverlapEstimator::Create(workload.joins, &cache),
            "rw estimator");
        Rng rng(seed);
        UnwrapStatus(rw->Warmup(rng), "rw warmup");
        estimates = Unwrap(ComputeUnionEstimates(rw.get()), "rw est");
      } else {
        HistogramCatalog histograms;
        auto hist = Unwrap(
            HistogramOverlapEstimator::Create(workload.joins, &histograms),
            "hist estimator");
        estimates = Unwrap(ComputeUnionEstimates(hist.get()), "hist est");
      }
      // Weight/index construction is part of parameter estimation cost.
      MakeJoinSamplers(workload.joins, &cache, config.kind);
    });

    auto samplers = MakeJoinSamplers(workload.joins, &cache, config.kind);
    UnionSampler::Options opts;
    opts.mode = UnionSampler::Mode::kMembershipOracle;
    auto sampler = Unwrap(
        UnionSampler::Create(workload.joins, std::move(samplers), estimates,
                             probers, opts),
        "union sampler");
    Rng rng(seed + 1);
    Unwrap(sampler->Sample(kSamples, rng), "sampling");
    const auto& stats = sampler->stats();
    auto join_stats = sampler->AggregatedJoinStats();
    std::printf("%-10s %-12.4f %-14.4f %-14.4f %-12llu %-12llu\n",
                config.label, warmup_sec, stats.accepted_seconds,
                stats.rejected_seconds,
                static_cast<unsigned long long>(stats.rejected_cover),
                static_cast<unsigned long long>(join_stats.rejections +
                                                join_stats.dead_ends));
  }
}

}  // namespace
}  // namespace bench
}  // namespace suj

int main() {
  using suj::bench::RunOne;
  using suj::bench::UQ1Config;
  using suj::bench::Unwrap;

  RunOne("Fig 5f", "UQ1",
         Unwrap(suj::workloads::BuildUQ1(UQ1Config(1.0, 0.2)), "UQ1"), 31);

  suj::tpch::TpchConfig uq2;
  uq2.scale_factor = 1.0;
  RunOne("Fig 5g", "UQ2", Unwrap(suj::workloads::BuildUQ2(uq2), "UQ2"), 32);

  suj::tpch::TpchConfig uq3;
  uq3.scale_factor = 1.0;
  RunOne("Fig 5h", "UQ3", Unwrap(suj::workloads::BuildUQ3(uq3), "UQ3"), 33);
  return 0;
}
