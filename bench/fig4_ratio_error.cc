// Fig 4a / 4b: error of the |J_i|/|U| ratio estimation using the
// histogram-based method (+EO join-size instantiation) as a function of the
// overlap scale, on UQ1 (4a) and UQ3 (4b).
//
// Paper shape: error is small and stable for large overlap scales and
// noisier for small ones; UQ3 (shorter/fewer joins) is more accurate than
// UQ1 (longer chains compound the max-degree bound).

#include "bench_util.h"

namespace suj {
namespace bench {
namespace {

void RunUQ1() {
  PrintHeader("Fig 4a: histogram-based |J_i|/|U| ratio error vs overlap (UQ1)");
  std::printf("%-14s %-12s %-14s %-14s\n", "overlap_scale", "exact_|U|",
              "est_|U|", "ratio_error");
  for (double overlap : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    auto workload =
        Unwrap(workloads::BuildUQ1(UQ1Config(0.5, overlap)), "UQ1");
    auto exact = Unwrap(
        ExactOverlapCalculator::Create(workload.joins), "FullJoinUnion");
    auto exact_est = Unwrap(ComputeUnionEstimates(exact.get()), "exact est");

    HistogramCatalog histograms;
    auto hist = Unwrap(
        HistogramOverlapEstimator::Create(workload.joins, &histograms),
        "histogram estimator");
    auto hist_est = Unwrap(ComputeUnionEstimates(hist.get()), "hist est");

    std::printf("%-14.2f %-12.0f %-14.0f %-14.4f\n", overlap,
                static_cast<double>(exact->UnionSize()),
                hist_est.union_size_eq1,
                RatioError(hist_est.JoinToUnionRatios(),
                           exact_est.JoinToUnionRatios()));
  }
}

void RunUQ3() {
  PrintHeader("Fig 4b: histogram-based |J_i|/|U| ratio error vs window (UQ3)");
  std::printf("%-14s %-12s %-14s %-14s\n", "window", "exact_|U|", "est_|U|",
              "ratio_error");
  for (double window : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    tpch::TpchConfig config;
    config.scale_factor = 0.4;
    auto workload = Unwrap(workloads::BuildUQ3(config, window), "UQ3");
    auto exact = Unwrap(
        ExactOverlapCalculator::Create(workload.joins), "FullJoinUnion");
    auto exact_est = Unwrap(ComputeUnionEstimates(exact.get()), "exact est");

    HistogramCatalog histograms;
    auto hist = Unwrap(
        HistogramOverlapEstimator::Create(workload.joins, &histograms),
        "histogram estimator");
    auto hist_est = Unwrap(ComputeUnionEstimates(hist.get()), "hist est");

    std::printf("%-14.2f %-12.0f %-14.0f %-14.4f\n", window,
                static_cast<double>(exact->UnionSize()),
                hist_est.union_size_eq1,
                RatioError(hist_est.JoinToUnionRatios(),
                           exact_est.JoinToUnionRatios()));
  }
}

}  // namespace
}  // namespace bench
}  // namespace suj

int main() {
  suj::bench::RunUQ1();
  suj::bench::RunUQ3();
  return 0;
}
