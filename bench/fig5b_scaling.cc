// Fig 5b: SetUnion sampling time vs data scale on UQ1, comparing the EW
// and EO join-sampler instantiations under histogram-based and random-walk
// warm-ups.
//
// Paper shape: EW scales better than EO (EO's rejection rate grows with
// relation size); the warm-up method has little effect on the sampling
// phase itself.

#include "bench_util.h"
#include "join/membership.h"

namespace suj {
namespace bench {
namespace {

constexpr size_t kSamples = 2000;

double SampleSeconds(const workloads::UnionWorkload& workload,
                     const UnionEstimates& estimates, WeightKind kind,
                     CompositeIndexCache* cache) {
  auto samplers = MakeJoinSamplers(workload.joins, cache, kind);
  auto probers = Unwrap(BuildProbers(workload.joins), "probers");
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = Unwrap(
      UnionSampler::Create(workload.joins, std::move(samplers), estimates,
                           probers, opts),
      "union sampler");
  Rng rng(11);
  return TimeSeconds([&] {
    Unwrap(sampler->Sample(kSamples, rng), "sampling");
  });
}

void Run() {
  PrintHeader("Fig 5b: SetUnion sampling time vs data scale (UQ1, N=2000)");
  std::printf("%-8s %-14s %-14s %-14s %-14s\n", "scale", "hist+EW_sec",
              "hist+EO_sec", "rw+EW_sec", "rw+EO_sec");
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    auto workload =
        Unwrap(workloads::BuildUQ1(UQ1Config(scale, 0.2)), "UQ1");
    CompositeIndexCache cache;

    HistogramCatalog histograms;
    auto hist = Unwrap(
        HistogramOverlapEstimator::Create(workload.joins, &histograms),
        "hist estimator");
    auto hist_est = Unwrap(ComputeUnionEstimates(hist.get()), "hist est");

    auto rw = Unwrap(
        RandomWalkOverlapEstimator::Create(workload.joins, &cache),
        "rw estimator");
    Rng rng(12);
    UnwrapStatus(rw->Warmup(rng), "rw warmup");
    auto rw_est = Unwrap(ComputeUnionEstimates(rw.get()), "rw est");

    std::printf("%-8.2f %-14.4f %-14.4f %-14.4f %-14.4f\n", scale,
                SampleSeconds(workload, hist_est, WeightKind::kExactWeight,
                              &cache),
                SampleSeconds(workload, hist_est,
                              WeightKind::kExtendedOlken, &cache),
                SampleSeconds(workload, rw_est, WeightKind::kExactWeight,
                              &cache),
                SampleSeconds(workload, rw_est, WeightKind::kExtendedOlken,
                              &cache));
  }
}

}  // namespace
}  // namespace bench
}  // namespace suj

int main() {
  suj::bench::Run();
  return 0;
}
