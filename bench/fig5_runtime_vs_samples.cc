// Fig 5c / 5d / 5e: SetUnion sampling runtime vs sample size N on UQ1,
// UQ2, and UQ3, for the hist+EW, hist+EO, and rw+EW instantiations.
//
// Paper shape: runtime grows linearly with N; EW-based instantiations are
// markedly faster than EO (zero join-level rejections); the warm-up choice
// (histogram vs random-walk) barely affects the per-sample cost.

#include "bench_util.h"
#include "join/membership.h"

namespace suj {
namespace bench {
namespace {

struct Prepared {
  workloads::UnionWorkload workload;
  UnionEstimates hist_est;
  UnionEstimates rw_est;
  std::vector<JoinMembershipProberPtr> probers;
  std::shared_ptr<CompositeIndexCache> cache;
};

Prepared Prepare(workloads::UnionWorkload workload, uint64_t seed) {
  Prepared p{std::move(workload), {}, {}, {}, nullptr};
  p.cache = std::make_shared<CompositeIndexCache>();
  HistogramCatalog histograms;
  auto hist = Unwrap(
      HistogramOverlapEstimator::Create(p.workload.joins, &histograms),
      "hist estimator");
  p.hist_est = Unwrap(ComputeUnionEstimates(hist.get()), "hist est");
  auto rw = Unwrap(
      RandomWalkOverlapEstimator::Create(p.workload.joins, p.cache.get()),
      "rw estimator");
  Rng rng(seed);
  UnwrapStatus(rw->Warmup(rng), "rw warmup");
  p.rw_est = Unwrap(ComputeUnionEstimates(rw.get()), "rw est");
  p.probers = Unwrap(BuildProbers(p.workload.joins), "probers");
  return p;
}

double SampleSeconds(Prepared& p, const UnionEstimates& estimates,
                     WeightKind kind, size_t n) {
  auto samplers = MakeJoinSamplers(p.workload.joins, p.cache.get(), kind);
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = Unwrap(
      UnionSampler::Create(p.workload.joins, std::move(samplers), estimates,
                           p.probers, opts),
      "union sampler");
  Rng rng(13);
  return TimeSeconds([&] { Unwrap(sampler->Sample(n, rng), "sampling"); });
}

void RunOne(const char* figure, const char* name,
            workloads::UnionWorkload workload, uint64_t seed) {
  std::printf("\n=== %s: sampling time vs N (%s) ===\n", figure, name);
  Prepared p = Prepare(std::move(workload), seed);
  std::printf("%-8s %-14s %-14s %-14s\n", "N", "hist+EW_sec", "hist+EO_sec",
              "rw+EW_sec");
  for (size_t n : {500, 1000, 2000, 4000, 8000}) {
    std::printf("%-8zu %-14.4f %-14.4f %-14.4f\n", n,
                SampleSeconds(p, p.hist_est, WeightKind::kExactWeight, n),
                SampleSeconds(p, p.hist_est, WeightKind::kExtendedOlken, n),
                SampleSeconds(p, p.rw_est, WeightKind::kExactWeight, n));
  }
}

}  // namespace
}  // namespace bench
}  // namespace suj

int main() {
  using suj::bench::RunOne;
  using suj::bench::UQ1Config;
  using suj::bench::Unwrap;

  RunOne("Fig 5c", "UQ1",
         Unwrap(suj::workloads::BuildUQ1(UQ1Config(1.0, 0.2)), "UQ1"), 21);

  suj::tpch::TpchConfig uq2;
  uq2.scale_factor = 1.0;
  RunOne("Fig 5d", "UQ2",
         Unwrap(suj::workloads::BuildUQ2(uq2), "UQ2"), 22);

  suj::tpch::TpchConfig uq3;
  uq3.scale_factor = 1.0;
  RunOne("Fig 5e", "UQ3",
         Unwrap(suj::workloads::BuildUQ3(uq3), "UQ3"), 23);
  return 0;
}
