// Ablation: union-level duplicate handling strategies.
//
// Compares, on UQ1 across overlap scales:
//  * Algorithm 1 in membership-oracle mode (centralized; exact cover check),
//  * Algorithm 1 in revision mode (decentralized; the paper's protocol),
//  * the Bernoulli union trick (§3's baseline).
// Reported: wall time, cover rejections, and revision counts. Expected
// shape: the non-Bernoulli cover selection rejects far less than the
// Bernoulli baseline as overlap grows; revision mode adds bookkeeping but
// needs no membership oracle.

#include "bench_util.h"
#include "join/membership.h"

namespace suj {
namespace bench {
namespace {

constexpr size_t kSamples = 3000;

void Run() {
  PrintHeader("Ablation: oracle vs revision vs Bernoulli (UQ1, N=3000)");
  std::printf("%-10s %-12s %-12s %-14s %-12s %-12s\n", "overlap", "method",
              "seconds", "cover_rej", "revisions", "rounds");
  for (double overlap : {0.1, 0.4, 0.8}) {
    auto workload =
        Unwrap(workloads::BuildUQ1(UQ1Config(1.0, overlap)), "UQ1");
    CompositeIndexCache cache;
    auto exact = Unwrap(ExactOverlapCalculator::Create(workload.joins),
                        "FullJoinUnion");
    auto estimates = Unwrap(ComputeUnionEstimates(exact.get()), "est");
    auto probers = Unwrap(BuildProbers(workload.joins), "probers");

    // Oracle mode.
    {
      UnionSampler::Options opts;
      opts.mode = UnionSampler::Mode::kMembershipOracle;
      auto sampler = Unwrap(
          UnionSampler::Create(
              workload.joins,
              MakeJoinSamplers(workload.joins, &cache,
                               WeightKind::kExactWeight),
              estimates, probers, opts),
          "oracle sampler");
      Rng rng(51);
      double sec = TimeSeconds(
          [&] { Unwrap(sampler->Sample(kSamples, rng), "sampling"); });
      std::printf("%-10.1f %-12s %-12.4f %-14llu %-12llu %-12llu\n", overlap,
                  "oracle", sec,
                  static_cast<unsigned long long>(
                      sampler->stats().rejected_cover),
                  0ULL,
                  static_cast<unsigned long long>(sampler->stats().rounds));
    }
    // Revision mode.
    {
      UnionSampler::Options opts;
      opts.mode = UnionSampler::Mode::kRevision;
      auto sampler = Unwrap(
          UnionSampler::Create(
              workload.joins,
              MakeJoinSamplers(workload.joins, &cache,
                               WeightKind::kExactWeight),
              estimates, {}, opts),
          "revision sampler");
      Rng rng(52);
      double sec = TimeSeconds(
          [&] { Unwrap(sampler->Sample(kSamples, rng), "sampling"); });
      std::printf("%-10.1f %-12s %-12.4f %-14llu %-12llu %-12llu\n", overlap,
                  "revision", sec,
                  static_cast<unsigned long long>(
                      sampler->stats().rejected_cover),
                  static_cast<unsigned long long>(
                      sampler->stats().revisions),
                  static_cast<unsigned long long>(sampler->stats().rounds));
    }
    // Bernoulli union trick.
    {
      auto sampler = Unwrap(
          BernoulliUnionSampler::Create(
              workload.joins,
              MakeJoinSamplers(workload.joins, &cache,
                               WeightKind::kExactWeight),
              estimates, probers),
          "bernoulli sampler");
      Rng rng(53);
      double sec = TimeSeconds(
          [&] { Unwrap(sampler->Sample(kSamples, rng), "sampling"); });
      std::printf("%-10.1f %-12s %-12.4f %-14llu %-12llu %-12llu\n", overlap,
                  "bernoulli", sec,
                  static_cast<unsigned long long>(
                      sampler->stats().rejected_cover),
                  0ULL,
                  static_cast<unsigned long long>(sampler->stats().rounds));
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace suj

int main() {
  suj::bench::Run();
  return 0;
}
