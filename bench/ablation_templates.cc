// Ablation: template choice and recurrence options of the histogram-based
// estimator (§5 / §8.1, Example 7).
//
// On UQ3 (where the splitting method is mandatory), compares the overlap
// bounds produced by:
//  * the score-selected standard template (the paper's method),
//  * a deliberately bad template (attributes shuffled; far-apart pairs),
//  * the selected template with best_rotation enabled (our extension:
//    evaluate the K recurrence from every start link and keep the min).
// Expected shape: the scored template yields a much tighter bound than the
// bad one; best_rotation can only tighten further.

#include <algorithm>

#include "bench_util.h"
#include "core/template_selector.h"

namespace suj {
namespace bench {
namespace {

double TotalPairwiseBound(HistogramOverlapEstimator* est, int n) {
  double total = 0.0;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      total += Unwrap(est->EstimateOverlap((1ULL << a) | (1ULL << b)),
                      "overlap bound");
    }
  }
  return total;
}

void Run() {
  PrintHeader("Ablation: template quality on UQ3 overlap bounds");
  tpch::TpchConfig config;
  config.scale_factor = 0.5;
  auto workload = Unwrap(workloads::BuildUQ3(config), "UQ3");
  const int n = static_cast<int>(workload.joins.size());

  auto exact = Unwrap(ExactOverlapCalculator::Create(workload.joins),
                      "FullJoinUnion");
  double exact_total = 0.0;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      exact_total += Unwrap(
          exact->EstimateOverlap((1ULL << a) | (1ULL << b)), "exact");
    }
  }

  auto scored = Unwrap(TemplateSelector::SelectTemplate(workload.joins),
                       "template");
  std::vector<std::string> bad = scored;
  // Example 7's bad template: maximize distance by interleaving ends.
  std::sort(bad.begin(), bad.end());
  std::vector<std::string> interleaved;
  for (size_t i = 0, j = bad.size(); i < j;) {
    interleaved.push_back(bad[i++]);
    if (i < j) interleaved.push_back(bad[--j]);
  }

  struct Config {
    const char* label;
    std::vector<std::string> tmpl;
    bool best_rotation;
    bool cap;
  };
  std::printf("%-26s %-18s %-18s %-12s\n", "template", "sum_pair_bounds",
              "exact_sum", "looseness");
  for (Config c : {Config{"scored", scored, false, true},
                   Config{"scored+rotation", scored, true, true},
                   Config{"interleaved(bad)", interleaved, false, true},
                   Config{"scored (no cap)", scored, false, false},
                   Config{"interleaved (no cap)", interleaved, false,
                          false}}) {
    HistogramCatalog histograms;
    HistogramOverlapEstimator::Options opts;
    opts.template_attrs = c.tmpl;
    opts.best_rotation = c.best_rotation;
    opts.cap_with_join_size = c.cap;
    auto est = Unwrap(HistogramOverlapEstimator::Create(
                          workload.joins, &histograms, opts),
                      "histogram estimator");
    double total = TotalPairwiseBound(est.get(), n);
    std::printf("%-26s %-18.0f %-18.0f %-12.1fx\n", c.label, total,
                exact_total, exact_total > 0 ? total / exact_total : 0.0);
  }
  std::printf(
      "template cost (score): scored=%.1f interleaved=%.1f\n",
      Unwrap(TemplateSelector::TemplateCost(workload.joins, scored), "cost"),
      Unwrap(TemplateSelector::TemplateCost(workload.joins, interleaved),
             "cost"));
}

}  // namespace
}  // namespace bench
}  // namespace suj

int main() {
  suj::bench::Run();
  return 0;
}
