// google-benchmark micro-benchmarks for the join/union sampling stack:
// EW / EO / wander-join draw throughput, weight-index construction,
// membership probes, and the batched (optionally parallel) union sampler.
//
// bench/check_regression.py gates CI on the JSON output of this binary
// against bench/baselines/micro_join_samplers.json; keep benchmark names
// stable or refresh the baseline in the same change.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/revision_state.h"
#include "join/membership.h"
#include "join/wander_join.h"
#include "obs/metrics.h"
#include "service/prepared_union.h"
#include "shard/shard_coordinator.h"
#include "shard/shard_plan.h"

namespace suj {
namespace bench {
namespace {

// One UQ1-style chain join at the given scale (built once per process).
JoinSpecPtr ChainJoin(double scale) {
  static std::map<double, JoinSpecPtr> cache;
  auto it = cache.find(scale);
  if (it != cache.end()) return it->second;
  auto workload = Unwrap(
      workloads::BuildUQ1(UQ1Config(scale, 0.2, /*num_variants=*/1)),
      "UQ1");
  cache[scale] = workload.joins[0];
  return workload.joins[0];
}

void BM_ExactWeightBuild(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  for (auto _ : state) {
    CompositeIndexCache cache;
    auto index = ExactWeightIndex::Build(join, &cache);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_ExactWeightBuild)->Arg(5)->Arg(10)->Arg(20);

// Columnar descent (the default): alias-table root draw, probe-array
// walks, first-assigner materialization.
void BM_ExactWeightSample(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  CompositeIndexCache cache;
  auto sampler = Unwrap(ExactWeightSampler::Create(join, &cache), "EW");
  Rng rng(1);
  for (auto _ : state) {
    auto t = sampler->TrySample(rng);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactWeightSample)->Arg(5)->Arg(10)->Arg(20);

// Row-oriented reference path: CDF binary search at the root, encoded
// Tuple key probes + CDF scans per level.
void BM_ExactWeightSampleRowPath(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  CompositeIndexCache cache;
  ExactWeightSampler::Options options;
  options.columnar = false;
  auto sampler =
      Unwrap(ExactWeightSampler::Create(join, &cache, options), "EW row");
  Rng rng(1);
  for (auto _ : state) {
    auto t = sampler->TrySample(rng);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactWeightSampleRowPath)->Arg(5)->Arg(10)->Arg(20);

// Level-synchronous batched columnar walks with software prefetch across
// in-flight walks (ExactWeightSampler::TrySampleBatch).
void BM_ExactWeightSampleBatch(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  CompositeIndexCache cache;
  auto sampler = Unwrap(ExactWeightSampler::Create(join, &cache), "EW");
  Rng rng(1);
  const size_t kBatch = 64;
  std::vector<Tuple> out;
  for (auto _ : state) {
    out.clear();
    size_t produced = sampler->TrySampleBatch(kBatch, rng, &out);
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_ExactWeightSampleBatch)->Arg(5)->Arg(10)->Arg(20);

void BM_OlkenSample(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  CompositeIndexCache cache;
  auto sampler = Unwrap(OlkenJoinSampler::Create(join, &cache), "EO");
  Rng rng(2);
  for (auto _ : state) {
    auto t = sampler->TrySample(rng);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OlkenSample)->Arg(5)->Arg(10)->Arg(20);

void BM_WanderJoinWalk(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  CompositeIndexCache cache;
  auto sampler = Unwrap(WanderJoinSampler::Create(join, &cache), "WJ");
  Rng rng(3);
  for (auto _ : state) {
    WalkOutcome outcome = sampler->Walk(rng);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WanderJoinWalk)->Arg(5)->Arg(10)->Arg(20);

void BM_MembershipProbe(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(1.0);
  auto prober = Unwrap(JoinMembershipProber::Build(join), "prober");
  CompositeIndexCache cache;
  auto sampler = Unwrap(ExactWeightSampler::Create(join, &cache), "EW");
  Rng rng(4);
  Tuple t = Unwrap(sampler->Sample(rng), "sample");
  for (auto _ : state) {
    bool in = prober->Contains(t);
    benchmark::DoNotOptimize(in);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MembershipProbe);

// The union workload is shared with bench_fig_parallel_scaling via
// bench_util.h (built once per process here).
UnionMicroWorkload& UnionSetup() {
  static UnionMicroWorkload* workload =
      new UnionMicroWorkload(BuildUnionMicroWorkload());
  return *workload;
}

// The classic sequential Algorithm-1 loop (no executor), as the 1x anchor.
void BM_UnionSampleSequential(benchmark::State& state) {
  UnionMicroWorkload& f = UnionSetup();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = Unwrap(
      UnionSampler::Create(f.joins, Unwrap(UnionMicroEwFactory(&f)(), "EW"),
                           f.estimates, f.probers, opts),
      "union sampler");
  Rng rng(11);
  const size_t kDraw = 4096;
  for (auto _ : state) {
    auto samples = sampler->Sample(kDraw, rng);
    UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_UnionSampleSequential)->UseRealTime();

// The identical loop with every obs instrument frozen: the CI perf gate
// compares this against BM_UnionSampleSequential (same run) and asserts
// metrics-on costs <= 5% — the observability overhead budget.
void BM_UnionSampleSequentialMetricsOff(benchmark::State& state) {
  UnionMicroWorkload& f = UnionSetup();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = Unwrap(
      UnionSampler::Create(f.joins, Unwrap(UnionMicroEwFactory(&f)(), "EW"),
                           f.estimates, f.probers, opts),
      "union sampler");
  Rng rng(11);
  const size_t kDraw = 4096;
  obs::SetMetricsEnabled(false);
  for (auto _ : state) {
    auto samples = sampler->Sample(kDraw, rng);
    UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
    benchmark::DoNotOptimize(samples);
  }
  obs::SetMetricsEnabled(true);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_UnionSampleSequentialMetricsOff)->UseRealTime();

// Same sequential loop over ROW-ORIENTED exact-weight samplers (columnar
// descent disabled): the anchor for the columnar speedup. The CI perf
// gate asserts the columnar row above stays >= 1.5x faster than this
// (same-run comparison; see .github/workflows/ci.yml).
void BM_UnionSampleSequentialRowOriented(benchmark::State& state) {
  UnionMicroWorkload& f = UnionSetup();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = Unwrap(
      UnionSampler::Create(
          f.joins,
          Unwrap(UnionMicroEwFactory(&f, /*columnar=*/false)(), "EW row"),
          f.estimates, f.probers, opts),
      "union sampler");
  Rng rng(11);
  const size_t kDraw = 4096;
  for (auto _ : state) {
    auto samples = sampler->Sample(kDraw, rng);
    UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_UnionSampleSequentialRowOriented)->UseRealTime();

// Batched executor path at 1..8 worker threads. Real time (not CPU time):
// the pool burns CPU on every core; wall clock is the quantity that scales.
void BM_UnionSampleParallel(benchmark::State& state) {
  UnionMicroWorkload& f = UnionSetup();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  opts.num_threads = static_cast<size_t>(state.range(0));
  opts.batch_size = 512;
  opts.sampler_factory = UnionMicroEwFactory(&f);
  auto sampler = Unwrap(UnionSampler::Create(f.joins, {}, f.estimates,
                                             f.probers, opts),
                        "union sampler");
  Rng rng(12);
  const size_t kDraw = 4096;
  for (auto _ : state) {
    auto samples = sampler->Sample(kDraw, rng);
    UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_UnionSampleParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// The classic sequential revision loop (decentralized Algorithm 1): the
// 1x anchor for the epoch-reconciled parallel path below. The CI perf
// gate asserts the 4-thread parallel row stays >= 1.5x faster than this
// (same-run comparison; see .github/workflows/ci.yml).
void BM_UnionSampleRevisionSequential(benchmark::State& state) {
  UnionMicroWorkload& f = UnionSetup();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  auto sampler = Unwrap(
      UnionSampler::Create(f.joins, Unwrap(UnionMicroEwFactory(&f)(), "EW"),
                           f.estimates, {}, opts),
      "union sampler");
  Rng rng(13);
  const size_t kDraw = 4096;
  for (auto _ : state) {
    auto samples = sampler->Sample(kDraw, rng);
    UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_UnionSampleRevisionSequential)->UseRealTime();

// Epoch-reconciled revision protocol at 1..8 worker threads
// (core/ownership_map.h): every row draws the byte-identical sequence;
// wall clock is what the epochs buy.
void BM_UnionSampleRevisionParallel(benchmark::State& state) {
  UnionMicroWorkload& f = UnionSetup();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  opts.num_threads = static_cast<size_t>(state.range(0));
  opts.batch_size = 512;
  opts.sampler_factory = UnionMicroEwFactory(&f);
  auto sampler = Unwrap(UnionSampler::Create(f.joins, {}, f.estimates, {},
                                             opts),
                        "union sampler");
  Rng rng(14);
  const size_t kDraw = 4096;
  for (auto _ : state) {
    auto samples = sampler->Sample(kDraw, rng);
    UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_UnionSampleRevisionParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Session-style resumable revision protocol (core/revision_state.h): the
// same 4096-tuple total drawn as range(0) chunked Sample calls per
// iteration against ONE long-lived RevisionState at 4 worker threads.
// The learned cover, epoch schedule, and buffered surplus carry across
// chunks (and iterations), so chunking adds only call dispatch and
// buffer drains — never extra epochs or re-learned covers. CI asserts
// the chunked row stays within 1.25x of the one-shot row (same-run
// --require-speedup with ratio 0.8; see .github/workflows/ci.yml).
void BM_UnionSampleRevisionResume(benchmark::State& state) {
  UnionMicroWorkload& f = UnionSetup();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  opts.num_threads = 4;
  opts.batch_size = 512;
  opts.sampler_factory = UnionMicroEwFactory(&f);
  auto sampler = Unwrap(UnionSampler::Create(f.joins, {}, f.estimates, {},
                                             opts),
                        "union sampler");
  Rng rng(15);
  RevisionState revision_state;
  const size_t kDraw = 4096;
  const size_t chunks = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    size_t left = kDraw;
    for (size_t c = 0; c < chunks; ++c) {
      const size_t take = c + 1 == chunks ? left : kDraw / chunks;
      auto samples = sampler->Sample(take, rng, revision_state);
      UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
      benchmark::DoNotOptimize(samples);
      left -= take;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_UnionSampleRevisionResume)->Arg(1)->Arg(8)->UseRealTime();

// Sharded execution context over the union micro workload (built once
// per shard count): prepare-time hash shard plan + coordinator whose
// routed samplers stand in for the plain per-join samplers, with union
// estimates from the per-shard merged overlap calculators and
// hash-routed membership probers. The cache member precedes the
// coordinator so per-shard indexes (which dedupe shared children
// through it) never outlive it.
struct ShardedUnionSetup {
  CompositeIndexCache cache;
  ShardPlanPtr plan;
  ShardCoordinatorPtr coord;
  UnionEstimates estimates;
  std::vector<JoinMembershipProberPtr> probers;
};

ShardedUnionSetup& ShardedUnionAt(int shards) {
  static std::map<int, ShardedUnionSetup*> cache;
  auto it = cache.find(shards);
  if (it != cache.end()) return *it->second;
  UnionMicroWorkload& f = UnionSetup();
  auto* s = new ShardedUnionSetup;
  ShardOptions options;
  options.num_shards = shards;
  s->plan = Unwrap(ShardPlanner::Plan(f.joins, options), "shard plan");
  s->coord = Unwrap(ShardCoordinator::Build(s->plan, &s->cache),
                    "shard coordinator");
  auto merged =
      Unwrap(ShardMergedOverlapEstimator::Create(s->plan, &s->cache),
             "merged overlap");
  s->estimates = Unwrap(ComputeUnionEstimates(merged.get()), "estimates");
  s->probers = Unwrap(s->coord->BuildRoutedProbers(), "routed probers");
  cache[shards] = s;
  return *s;
}

// Oracle-mode union draws through the shard coordinator's routed
// samplers at 1/2/4 shards. Sharded descent always takes the row path,
// so the routing overhead anchor is BM_UnionSampleSequentialRowOriented
// (and the 1-shard row isolates coordinator dispatch from fan-out).
void BM_UnionSampleSharded(benchmark::State& state) {
  ShardedUnionSetup& s = ShardedUnionAt(static_cast<int>(state.range(0)));
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = Unwrap(
      UnionSampler::Create(s.plan->canonical_joins(),
                           Unwrap(s.coord->MakeSamplers(), "routed"),
                           s.estimates, s.probers, opts),
      "union sampler");
  Rng rng(16);
  const size_t kDraw = 4096;
  for (auto _ : state) {
    auto samples = sampler->Sample(kDraw, rng);
    UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_UnionSampleSharded)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// ---------------------------------------------------------------------------
// Epoch machinery: incremental ApplyDelta vs. cold re-prepare.

// A smaller union than UnionSetup(): the cold-rebuild anchor below runs
// the FULL preparation pipeline (exact warm-up included) per iteration.
struct EpochBenchSetup {
  std::vector<JoinSpecPtr> joins;
  PreparedUnionPtr plan;            // epoch 0
  std::vector<RelationDelta> batch; // one append/delete batch against it
};

EpochBenchSetup& EpochSetup() {
  static EpochBenchSetup* setup = [] {
    auto* s = new EpochBenchSetup;
    workloads::SyntheticChainOptions opts;
    opts.num_joins = 3;
    opts.master_rows = 120;
    opts.max_degree = 3;
    opts.seed = 42;
    s->joins = Unwrap(workloads::MakeOverlappingChains(opts), "chains");
    s->plan = Unwrap(
        PreparedUnion::Build("epoch-bench", 1, s->joins,
                             PreparedQueryOptions()),
        "prepare");
    const RelationPtr& target = s->joins[0]->relation(0);
    RelationDelta delta;
    delta.relation = target->name();
    delta.deletes = {0, 7};
    for (int i = 0; i < 8; ++i) {
      std::vector<Value> fresh;
      for (size_t c = 0; c < target->num_columns(); ++c) {
        fresh.push_back(
            Value::Int64(90000 + i * 16 + static_cast<int64_t>(c)));
      }
      delta.appends.push_back(Tuple(std::move(fresh)));
    }
    s->batch = {std::move(delta)};
    return s;
  }();
  return *setup;
}

// One incremental epoch refresh: fold the batch, maintain indexes /
// estimates / weights in place (untouched joins shared by pointer).
void BM_ApplyDelta(benchmark::State& state) {
  EpochBenchSetup& s = EpochSetup();
  for (auto _ : state) {
    auto next = PreparedUnion::ApplyDelta(s.plan, s.batch);
    UnwrapStatus(next.ok() ? Status::OK() : next.status(), "apply delta");
    benchmark::DoNotOptimize(next);
  }
}
BENCHMARK(BM_ApplyDelta);

// The cold anchor: rebuild the whole plan over the already-folded joins.
// The CI perf gate asserts BM_ApplyDelta stays >= 1.5x faster than this
// (same-run comparison) — the reason the epoch path exists at all.
void BM_ApplyDeltaColdRebuild(benchmark::State& state) {
  EpochBenchSetup& s = EpochSetup();
  auto refreshed =
      Unwrap(PreparedUnion::ApplyDelta(s.plan, s.batch), "apply delta");
  for (auto _ : state) {
    auto cold = PreparedUnion::Build("epoch-bench-cold", 2,
                                     refreshed->base_joins(),
                                     PreparedQueryOptions());
    UnwrapStatus(cold.ok() ? Status::OK() : cold.status(), "cold build");
    benchmark::DoNotOptimize(cold);
  }
}
BENCHMARK(BM_ApplyDeltaColdRebuild);

// Union draw throughput from a plan that has absorbed several delta
// batches: churn must not degrade the sampling hot path (the folded
// epoch's indexes are structurally identical to a cold build's).
void BM_UnionSampleAfterChurn(benchmark::State& state) {
  static PreparedUnionPtr* churned = [] {
    EpochBenchSetup& s = EpochSetup();
    auto plan = s.plan;
    for (int i = 0; i < 3; ++i) {
      plan = Unwrap(PreparedUnion::ApplyDelta(plan, s.batch), "churn");
    }
    return new PreparedUnionPtr(std::move(plan));
  }();
  const PreparedUnionPtr& plan = *churned;
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  opts.num_threads = 1;
  opts.batch_size = 512;
  opts.sampler_factory = plan->MakeJoinSamplerFactory();
  auto sampler = Unwrap(UnionSampler::Create(plan->joins(), {},
                                             plan->estimates(), {}, opts),
                        "union sampler");
  Rng rng(17);
  const size_t kDraw = 4096;
  for (auto _ : state) {
    auto samples = sampler->Sample(kDraw, rng);
    UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_UnionSampleAfterChurn)->UseRealTime();

void BM_FullJoinExecute(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  for (auto _ : state) {
    CompositeIndexCache cache;
    FullJoinExecutor executor(&cache);
    auto result = executor.Execute(join);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullJoinExecute)->Arg(5)->Arg(10);

}  // namespace
}  // namespace bench
}  // namespace suj

BENCHMARK_MAIN();
