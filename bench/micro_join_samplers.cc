// google-benchmark micro-benchmarks for the single-join sampling stack:
// EW / EO / wander-join draw throughput, weight-index construction, and
// membership probes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "join/membership.h"
#include "join/wander_join.h"

namespace suj {
namespace bench {
namespace {

// One UQ1-style chain join at the given scale (built once per process).
JoinSpecPtr ChainJoin(double scale) {
  static std::map<double, JoinSpecPtr> cache;
  auto it = cache.find(scale);
  if (it != cache.end()) return it->second;
  auto workload = Unwrap(
      workloads::BuildUQ1(UQ1Config(scale, 0.2, /*num_variants=*/1)),
      "UQ1");
  cache[scale] = workload.joins[0];
  return workload.joins[0];
}

void BM_ExactWeightBuild(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  for (auto _ : state) {
    CompositeIndexCache cache;
    auto index = ExactWeightIndex::Build(join, &cache);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_ExactWeightBuild)->Arg(5)->Arg(10)->Arg(20);

void BM_ExactWeightSample(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  CompositeIndexCache cache;
  auto sampler = Unwrap(ExactWeightSampler::Create(join, &cache), "EW");
  Rng rng(1);
  for (auto _ : state) {
    auto t = sampler->TrySample(rng);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactWeightSample)->Arg(5)->Arg(10)->Arg(20);

void BM_OlkenSample(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  CompositeIndexCache cache;
  auto sampler = Unwrap(OlkenJoinSampler::Create(join, &cache), "EO");
  Rng rng(2);
  for (auto _ : state) {
    auto t = sampler->TrySample(rng);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OlkenSample)->Arg(5)->Arg(10)->Arg(20);

void BM_WanderJoinWalk(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  CompositeIndexCache cache;
  auto sampler = Unwrap(WanderJoinSampler::Create(join, &cache), "WJ");
  Rng rng(3);
  for (auto _ : state) {
    WalkOutcome outcome = sampler->Walk(rng);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WanderJoinWalk)->Arg(5)->Arg(10)->Arg(20);

void BM_MembershipProbe(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(1.0);
  auto prober = Unwrap(JoinMembershipProber::Build(join), "prober");
  CompositeIndexCache cache;
  auto sampler = Unwrap(ExactWeightSampler::Create(join, &cache), "EW");
  Rng rng(4);
  Tuple t = Unwrap(sampler->Sample(rng), "sample");
  for (auto _ : state) {
    bool in = prober->Contains(t);
    benchmark::DoNotOptimize(in);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MembershipProbe);

void BM_FullJoinExecute(benchmark::State& state) {
  JoinSpecPtr join = ChainJoin(state.range(0) / 10.0);
  for (auto _ : state) {
    CompositeIndexCache cache;
    FullJoinExecutor executor(&cache);
    auto result = executor.Execute(join);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullJoinExecute)->Arg(5)->Arg(10);

}  // namespace
}  // namespace bench
}  // namespace suj

BENCHMARK_MAIN();
