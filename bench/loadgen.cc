// Closed-loop multi-tenant load generator for SujServer.
//
// Spawns (by default) a SujServer in-process on an ephemeral port, then
// drives it over real TCP loopback with T tenants x S sessions each, a
// mix of closed-loop workers (next request the instant the previous
// response lands) and open-arrival workers (requests paced on a fixed
// schedule, issued late rather than skipped when the server is slow —
// the arrival pattern that exposes queueing). Request sizes come from a
// per-worker RNG substream of --seed, so the offered load is a pure
// function of the flags.
//
// Before the load phase, a determinism check opens one wire session and
// replays the same request sizes on an in-process SamplingService with
// the same seed: the wire bytes must equal the in-process bytes exactly
// (the protocol ships canonical tuple encodings, so this is memcmp).
//
// Output: google-benchmark-compatible JSON on --out (latency percentiles
// and mean as `real_time` ns entries, gateable by check_regression.py)
// plus a top-level "counters" object (requests, sheds, determinism) for
// check_regression.py --require-counter.
//
// --churn adds a mutation phase: delta batches are applied over the
// wire while the workers run (counted as `epochs_applied`), and the
// determinism check interleaves applies between its draws so the wire
// session's pinned epoch is asserted byte-for-byte against a
// never-churned in-process baseline.
//
// Quota-exceeded requests answer ResourceExhausted and are COUNTED, not
// retried and never fatal: under deliberate overload (e.g. --tenant-rps
// below the offered rate) the run must finish with sheds > 0 and
// latency percentiles measured over the admitted requests only.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "service/sampling_service.h"
#include "workloads/synthetic.h"

namespace {

using suj::Result;
using suj::SamplingService;
using suj::ServiceOptions;
using suj::Status;
using suj::StatusCode;
using suj::net::OpenSessionRequest;
using suj::net::ServerOptions;
using suj::net::SujClient;
using suj::net::SujServer;

struct Config {
  int tenants = 2;
  int sessions_per_tenant = 2;
  int requests_per_session = 50;
  int min_batch = 8;
  int max_batch = 64;
  uint8_t mode = 0;  // 0 oracle, 2 revision
  uint64_t seed = 42;
  /// Per-tenant request quota (0 = unlimited). Setting this below the
  /// offered rate is how CI manufactures a shedding overload.
  double tenant_rps = 0;
  double tenant_burst = 16;
  /// Open-arrival workers aim at this many requests/second each
  /// (0 = every worker runs closed-loop).
  double open_rps = 0;
  /// Fraction of workers on the open-arrival schedule.
  double open_fraction = 0.5;
  size_t max_inflight = 4;
  size_t max_admission_queue = 8;
  std::string out;  // JSON path; empty = stdout
  uint64_t master_rows = 40;
  /// Shard count for the prepared plan (1 = unsharded). The determinism
  /// gate and the measured phase both run against this shape, so the CI
  /// sharded-load job reuses the whole harness unchanged.
  uint32_t shards = 1;
  /// Churn mode: apply append/delete delta batches over the wire WHILE
  /// the load phase runs. The determinism gate also interleaves applies
  /// between its draws, so it asserts the pinned-epoch contract (a
  /// session keeps the epoch it opened on) end to end over TCP.
  bool churn = false;
  int churn_batches = 6;
};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The deterministic request-size schedule of one worker.
std::vector<size_t> MakeSchedule(const Config& config, int worker_index) {
  suj::Rng rng(config.seed);
  for (int i = 0; i <= worker_index; ++i) rng.Jump();
  std::vector<size_t> sizes;
  sizes.reserve(config.requests_per_session);
  for (int i = 0; i < config.requests_per_session; ++i) {
    sizes.push_back(static_cast<size_t>(
        rng.UniformRange(config.min_batch, config.max_batch)));
  }
  return sizes;
}

double Percentile(std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

struct WorkerResult {
  std::vector<int64_t> latencies_ns;  // admitted requests only
  uint64_t requests = 0;
  uint64_t shed = 0;
  uint64_t tuples = 0;
  Status fatal;  // non-quota failure aborts the worker
};

void RunWorker(const Config& config, uint16_t port, int worker_index,
               const std::string& tenant, WorkerResult* out) {
  auto run = [&]() -> Status {
    SUJ_ASSIGN_OR_RETURN(SujClient client,
                         SujClient::Connect("127.0.0.1", port, tenant));
    OpenSessionRequest open;
    open.query = "bench";
    open.mode = config.mode;
    SUJ_ASSIGN_OR_RETURN(uint64_t session, client.OpenSession(open));

    const auto schedule = MakeSchedule(config, worker_index);
    const bool open_loop =
        config.open_rps > 0 &&
        worker_index <
            static_cast<int>(config.open_fraction *
                             config.tenants * config.sessions_per_tenant);
    const int64_t interval_ns =
        open_loop ? static_cast<int64_t>(1e9 / config.open_rps) : 0;
    int64_t next_arrival = NowNs();

    for (size_t n : schedule) {
      if (open_loop) {
        // Paced arrivals: wait out the schedule, but a late request is
        // issued immediately (queueing shows up as latency, not as a
        // thinner schedule).
        int64_t now = NowNs();
        if (next_arrival > now) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(next_arrival - now));
        }
        next_arrival += interval_ns;
      }
      ++out->requests;
      const int64_t start = NowNs();
      auto batch = client.Sample(session, n, /*wait=*/true);
      if (!batch.ok()) {
        if (batch.status().code() == StatusCode::kResourceExhausted) {
          ++out->shed;  // quota/queue shed: expected under overload
          continue;
        }
        return batch.status();
      }
      out->latencies_ns.push_back(NowNs() - start);
      out->tuples += batch.value().size();
    }
    return client.CloseSession(session);
  };
  out->fatal = run();
}

/// One append/delete batch against the bench query's first relation.
/// Appended keys live in a disjoint high range so every batch adds
/// fresh rows; folds compact row ids, so a small distinct delete id is
/// valid in every epoch.
suj::net::WireRelationDelta MakeChurnDelta(const suj::RelationPtr& target,
                                           uint64_t salt) {
  suj::net::WireRelationDelta delta;
  delta.relation = target->name();
  delta.delete_rows = {
      static_cast<uint32_t>(salt % (target->num_rows() / 2))};
  for (int i = 0; i < 4; ++i) {
    std::vector<suj::Value> fresh;
    for (size_t c = 0; c < target->num_columns(); ++c) {
      fresh.push_back(suj::Value::Int64(
          1000000 + static_cast<int64_t>(salt) * 64 + i * 8 +
          static_cast<int64_t>(c)));
    }
    delta.encoded_appends.push_back(suj::Tuple(std::move(fresh)).Encode());
  }
  return delta;
}

/// Wire bytes vs in-process bytes for identical (seed, rank, sizes).
/// Runs against a FRESH server/service pair so session ranks line up.
/// With --churn, a delta batch is applied over the wire between draws:
/// the wire session pinned epoch 0 at open, the in-process baseline
/// never sees a delta, so the bytes must STILL match — that is the
/// pinned-epoch determinism contract, asserted over TCP.
Result<bool> CheckWireDeterminism(const Config& config,
                                  suj::net::SpecResolver resolver,
                                  size_t worker_threads,
                                  uint64_t* epochs_applied) {
  ServiceOptions service_options;
  service_options.seed = config.seed + 1;
  SUJ_ASSIGN_OR_RETURN(std::unique_ptr<SamplingService> served,
                       SamplingService::Create(service_options));
  SUJ_ASSIGN_OR_RETURN(std::unique_ptr<SamplingService> baseline,
                       SamplingService::Create(service_options));
  SujServer server(served.get(), resolver, ServerOptions());
  SUJ_RETURN_NOT_OK(server.Start());

  SUJ_ASSIGN_OR_RETURN(
      SujClient client,
      SujClient::Connect("127.0.0.1", server.port(), "determinism"));
  SUJ_RETURN_NOT_OK(client.Prepare("bench", config.shards).status());
  SUJ_ASSIGN_OR_RETURN(std::vector<suj::JoinSpecPtr> joins,
                       resolver("bench"));
  suj::PreparedQueryOptions prep = baseline->options().query_defaults;
  prep.shard.num_shards = static_cast<int>(config.shards);
  SUJ_RETURN_NOT_OK(
      baseline->Prepare("bench", std::move(joins), prep).status());

  OpenSessionRequest open;
  open.query = "bench";
  open.mode = config.mode;
  open.worker_threads = static_cast<uint32_t>(worker_threads);
  SUJ_ASSIGN_OR_RETURN(uint64_t wire_session, client.OpenSession(open));

  SUJ_ASSIGN_OR_RETURN(suj::SessionOptions session_options,
                       open.ToSessionOptions());
  SUJ_ASSIGN_OR_RETURN(uint64_t local_session,
                       baseline->OpenSession("bench", session_options));

  SUJ_ASSIGN_OR_RETURN(std::vector<suj::JoinSpecPtr> churn_joins,
                       resolver("bench"));
  const suj::RelationPtr churn_target = churn_joins[0]->relation(0);
  uint64_t salt = 0;
  for (size_t n : {11u, 64u, 3u, 96u}) {
    SUJ_ASSIGN_OR_RETURN(std::vector<std::string> wire,
                         client.Sample(wire_session, n));
    SUJ_ASSIGN_OR_RETURN(std::vector<suj::Tuple> local,
                         baseline->Sample(local_session, n));
    if (wire.size() != local.size()) return false;
    for (size_t i = 0; i < local.size(); ++i) {
      if (wire[i] != local[i].Encode()) return false;
    }
    if (config.churn) {
      suj::net::ApplyDeltaRequest apply;
      apply.query = "bench";
      apply.deltas = {MakeChurnDelta(churn_target, salt++)};
      SUJ_ASSIGN_OR_RETURN(suj::net::ApplyDeltaResponse applied,
                           client.ApplyDelta(apply));
      if (applied.epoch != salt) {
        std::cerr << "churn: expected epoch " << salt << ", got "
                  << applied.epoch << "\n";
        return false;
      }
      ++(*epochs_applied);
    }
  }
  server.Stop();
  return true;
}

/// The load-phase churn thread: applies delta batches over the wire
/// while the workers hammer Sample. Paced, not closed-loop — the point
/// is epochs landing MID-load, not an apply storm.
void RunChurn(const Config& config, uint16_t port,
              const suj::RelationPtr& target,
              const std::atomic<bool>* load_done, uint64_t* applied,
              Status* fatal) {
  auto run = [&]() -> Status {
    SUJ_ASSIGN_OR_RETURN(SujClient client,
                         SujClient::Connect("127.0.0.1", port, "churn"));
    for (int b = 0; b < config.churn_batches; ++b) {
      suj::net::ApplyDeltaRequest apply;
      apply.query = "bench";
      // Offset the salt so load-phase deletes never collide with the
      // determinism gate's (different server, but keep them disjoint
      // anyway for log readability).
      apply.deltas = {MakeChurnDelta(target, 100 + b)};
      SUJ_RETURN_NOT_OK(client.ApplyDelta(apply).status());
      ++(*applied);
      if (load_done->load(std::memory_order_relaxed)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return Status::OK();
  };
  *fatal = run();
}

// ---------------------------------------------------------------------------
// Metrics cross-check: the Prometheus counters scraped over the wire
// (kMetrics) must reconcile with what the load generator itself counted
// at the protocol level. The server runs in-process, so the registry
// values BEFORE the load phase can be snapshotted directly; the "after"
// side goes over the wire to exercise the scrape path end to end.

struct MetricsBaseline {
  uint64_t sample_requests = 0;
  uint64_t shed_tenant = 0;
  uint64_t shed_session = 0;
  uint64_t queue_overflows = 0;
};

MetricsBaseline SnapshotMetricsBaseline() {
  auto& registry = suj::obs::MetricsRegistry::Global();
  MetricsBaseline b;
  b.sample_requests =
      registry.GetCounter("suj_net_sample_requests_total")->Value();
  b.shed_tenant =
      registry.GetCounter("suj_tenant_shed_tenant_total")->Value();
  b.shed_session =
      registry.GetCounter("suj_tenant_shed_session_total")->Value();
  b.queue_overflows =
      registry.GetCounter("suj_admission_queue_overflow_total")->Value();
  return b;
}

/// Value of a bare `name value` exposition line (no '#', no labels);
/// 0 when absent.
uint64_t ScrapedValue(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while ((pos = text.find(name + " ", pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::stoull(text.substr(pos + name.size() + 1));
    }
    ++pos;
  }
  return 0;
}

/// Scrapes the server and checks the load-phase counter deltas against
/// the wire-level tallies. Valid because every worker samples with
/// wait=true: a shed response can only come from the tenant bucket, the
/// session bucket, or the bounded admission queue — exactly the three
/// scraped shed counters.
Result<bool> ReconcileScrapedMetrics(uint16_t port,
                                     const MetricsBaseline& before,
                                     uint64_t requests, uint64_t shed) {
  SUJ_ASSIGN_OR_RETURN(SujClient client,
                       SujClient::Connect("127.0.0.1", port, "scrape"));
  SUJ_ASSIGN_OR_RETURN(std::string text, client.Metrics());
  const uint64_t sample_requests =
      ScrapedValue(text, "suj_net_sample_requests_total") -
      before.sample_requests;
  const uint64_t scraped_shed =
      ScrapedValue(text, "suj_tenant_shed_tenant_total") -
      before.shed_tenant +
      ScrapedValue(text, "suj_tenant_shed_session_total") -
      before.shed_session +
      ScrapedValue(text, "suj_admission_queue_overflow_total") -
      before.queue_overflows;
  bool ok = true;
  if (sample_requests != requests) {
    std::cerr << "METRICS MISMATCH: scraped suj_net_sample_requests_total "
                 "delta "
              << sample_requests << " != loadgen requests " << requests
              << "\n";
    ok = false;
  }
  if (scraped_shed != shed) {
    std::cerr << "METRICS MISMATCH: scraped shed-counter delta "
              << scraped_shed << " != loadgen sheds " << shed << "\n";
    ok = false;
  }
  return ok;
}

void WriteJson(const Config& config, std::ostream& os,
               std::vector<int64_t>& latencies, double wall_seconds,
               uint64_t requests, uint64_t shed, uint64_t tuples,
               bool determinism_ok, bool metrics_ok, uint64_t epochs_applied,
               const suj::net::ServerStatsResponse& s) {
  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(latencies, 0.50);
  const double p95 = Percentile(latencies, 0.95);
  const double p99 = Percentile(latencies, 0.99);
  double mean = 0;
  for (int64_t v : latencies) mean += static_cast<double>(v);
  mean = latencies.empty() ? 0 : mean / latencies.size();
  const uint64_t admitted = requests - shed;
  // Throughput, gateable as a time: ns of wall clock per ADMITTED
  // request (smaller = faster, like every other benchmark entry).
  const double ns_per_request =
      admitted > 0 ? wall_seconds * 1e9 / admitted : 0;

  auto entry = [&](const std::string& name, double ns, bool last = false) {
    os << "    {\"name\": \"" << name
       << "\", \"run_type\": \"iteration\", \"iterations\": 1, "
          "\"real_time\": "
       << ns << ", \"cpu_time\": " << ns << ", \"time_unit\": \"ns\"}"
       << (last ? "\n" : ",\n");
  };
  os << "{\n  \"context\": {\"executable\": \"bench_loadgen\", \"seed\": "
     << config.seed << "},\n  \"benchmarks\": [\n";
  entry("loadgen/latency_p50", p50);
  entry("loadgen/latency_p95", p95);
  entry("loadgen/latency_p99", p99);
  entry("loadgen/latency_mean", mean);
  entry("loadgen/ns_per_request", ns_per_request, /*last=*/true);
  os << "  ],\n  \"counters\": {\n"
     << "    \"requests_total\": " << requests << ",\n"
     << "    \"requests_admitted\": " << admitted << ",\n"
     << "    \"requests_shed\": " << shed << ",\n"
     << "    \"tuples_total\": " << tuples << ",\n"
     << "    \"throughput_rps\": "
     << (wall_seconds > 0 ? admitted / wall_seconds : 0) << ",\n"
     << "    \"determinism_ok\": " << (determinism_ok ? 1 : 0) << ",\n"
     << "    \"metrics_reconcile_ok\": " << (metrics_ok ? 1 : 0) << ",\n"
     << "    \"epochs_applied\": " << epochs_applied << ",\n"
     << "    \"server_quota_shed\": " << s.quota_shed_total << ",\n"
     << "    \"server_quota_shed_tenant\": " << s.quota_shed_tenant << ",\n"
     << "    \"server_quota_shed_session\": " << s.quota_shed_session << ",\n"
     << "    \"server_queue_overflows\": " << s.queue_overflows << ",\n"
     << "    \"server_requests\": " << s.requests_served << ",\n"
     << "    \"shards\": " << config.shards << ",\n"
     << "    \"server_shard_draws\": " << s.shard_draws << ",\n"
     << "    \"server_shard_walk_draws\": " << s.shard_walk_draws << ",\n"
     << "    \"server_shard_unavailable\": " << s.shard_unavailable_errors
     << "\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    auto arg = std::string(argv[i]);
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout <<
          "bench_loadgen: closed-loop multi-tenant load generator over the\n"
          "TCP front end (spawns its own SujServer on loopback).\n\n"
          "  --tenants N        tenants (default " << config.tenants << ")\n"
          "  --sessions N       sessions per tenant (default "
              << config.sessions_per_tenant << ")\n"
          "  --requests N       requests per session (default "
              << config.requests_per_session << ")\n"
          "  --min-batch N      min tuples per request (default "
              << config.min_batch << ")\n"
          "  --max-batch N      max tuples per request (default "
              << config.max_batch << ")\n"
          "  --mode M           session mode: 0 online, 1 oracle, "
              "2 revision (default " << int(config.mode) << ")\n"
          "  --seed S           schedule seed (default " << config.seed
              << ")\n"
          "  --tenant-rps R     per-tenant token-bucket rate, 0 = unlimited "
              "(default " << config.tenant_rps << ")\n"
          "  --tenant-burst B   per-tenant bucket burst (default "
              << config.tenant_burst << ")\n"
          "  --open-rps R       per-worker open-arrival pacing rate "
              "(default " << config.open_rps << ")\n"
          "  --open-fraction F  fraction of workers paced open-loop "
              "(default " << config.open_fraction << ")\n"
          "  --max-inflight N   global admission slots (default "
              << config.max_inflight << ")\n"
          "  --max-queue N      bounded admission queue depth (default "
              << config.max_admission_queue << ")\n"
          "  --master-rows N    synthetic workload size (default "
              << config.master_rows << ")\n"
          "  --shards N         shard count for the prepared plan, 1 = "
              "unsharded (default " << config.shards << ")\n"
          "  --churn            apply delta batches over the wire during "
              "the load phase;\n"
          "                     the determinism gate then also asserts "
              "pinned-epoch bytes\n"
          "  --churn-batches N  delta batches in the load phase (default "
              << config.churn_batches << ")\n"
          "  --out PATH         write google-benchmark JSON here\n";
      return 0;
    }
    if (arg == "--tenants") config.tenants = std::stoi(next());
    else if (arg == "--sessions") config.sessions_per_tenant = std::stoi(next());
    else if (arg == "--requests") config.requests_per_session = std::stoi(next());
    else if (arg == "--min-batch") config.min_batch = std::stoi(next());
    else if (arg == "--max-batch") config.max_batch = std::stoi(next());
    else if (arg == "--mode") config.mode = static_cast<uint8_t>(std::stoi(next()));
    else if (arg == "--seed") config.seed = std::stoull(next());
    else if (arg == "--tenant-rps") config.tenant_rps = std::stod(next());
    else if (arg == "--tenant-burst") config.tenant_burst = std::stod(next());
    else if (arg == "--open-rps") config.open_rps = std::stod(next());
    else if (arg == "--open-fraction") config.open_fraction = std::stod(next());
    else if (arg == "--max-inflight") config.max_inflight = std::stoul(next());
    else if (arg == "--max-queue") config.max_admission_queue = std::stoul(next());
    else if (arg == "--master-rows") config.master_rows = std::stoull(next());
    else if (arg == "--shards") config.shards = static_cast<uint32_t>(std::stoul(next()));
    else if (arg == "--churn") config.churn = true;
    else if (arg == "--churn-batches") config.churn_batches = std::stoi(next());
    else if (arg == "--out") config.out = next();
    else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }

  suj::net::SpecResolver resolver =
      [&config](const std::string& name)
      -> Result<std::vector<suj::JoinSpecPtr>> {
    if (name != "bench") return Status::NotFound("unknown query");
    suj::workloads::SyntheticChainOptions options;
    options.master_rows = config.master_rows;
    options.seed = config.seed;
    return suj::workloads::MakeOverlappingChains(options);
  };

  // Determinism gate first (fresh servers, ranks line up), at 1 and 4
  // server worker threads.
  bool determinism_ok = true;
  uint64_t epochs_applied = 0;
  for (size_t threads : {1u, 4u}) {
    auto check = CheckWireDeterminism(config, resolver, threads,
                                      &epochs_applied);
    if (!check.ok()) {
      std::cerr << "determinism check failed to run: "
                << check.status().ToString() << "\n";
      return 1;
    }
    if (!check.value()) {
      std::cerr << "DETERMINISM VIOLATION: wire bytes != in-process bytes "
                   "at worker_threads="
                << threads << "\n";
      determinism_ok = false;
    }
  }

  // The measured load phase.
  ServiceOptions service_options;
  service_options.seed = config.seed;
  service_options.max_inflight = config.max_inflight;
  service_options.max_admission_queue = config.max_admission_queue;
  service_options.max_sessions =
      static_cast<size_t>(config.tenants) * config.sessions_per_tenant + 4;
  auto service = SamplingService::Create(service_options);
  if (!service.ok()) {
    std::cerr << service.status().ToString() << "\n";
    return 1;
  }
  ServerOptions server_options;
  server_options.max_connections =
      static_cast<size_t>(config.tenants) * config.sessions_per_tenant + 4;
  server_options.default_quota.requests_per_second = config.tenant_rps;
  server_options.default_quota.burst = config.tenant_burst;
  SujServer server(service.value().get(), resolver, server_options);
  if (auto started = server.Start(); !started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }
  {
    // One bootstrap connection pays the plan build outside the timed run.
    auto bootstrap =
        SujClient::Connect("127.0.0.1", server.port(), "bootstrap");
    if (!bootstrap.ok() ||
        !bootstrap.value().Prepare("bench", config.shards).ok()) {
      std::cerr << "bootstrap Prepare failed\n";
      return 1;
    }
  }

  // Counter baseline AFTER bootstrap, BEFORE the load phase: the deltas
  // the scrape cross-check reconciles are exactly the load phase's.
  const MetricsBaseline metrics_before = SnapshotMetricsBaseline();

  const int workers = config.tenants * config.sessions_per_tenant;
  std::vector<WorkerResult> results(workers);
  std::vector<std::thread> threads;
  std::atomic<bool> load_done{false};
  uint64_t churn_applied = 0;
  Status churn_fatal;
  std::thread churn_thread;
  const int64_t t0 = NowNs();
  for (int w = 0; w < workers; ++w) {
    const std::string tenant = "tenant" + std::to_string(w % config.tenants);
    threads.emplace_back(RunWorker, std::cref(config), server.port(), w,
                         tenant, &results[w]);
  }
  if (config.churn) {
    auto churn_joins = resolver("bench");
    if (!churn_joins.ok()) {
      std::cerr << churn_joins.status().ToString() << "\n";
      return 1;
    }
    churn_thread = std::thread(RunChurn, std::cref(config), server.port(),
                               churn_joins.value()[0]->relation(0),
                               &load_done, &churn_applied, &churn_fatal);
  }
  for (auto& t : threads) t.join();
  load_done.store(true, std::memory_order_relaxed);
  if (churn_thread.joinable()) churn_thread.join();
  const double wall_seconds = (NowNs() - t0) * 1e-9;
  if (!churn_fatal.ok()) {
    std::cerr << "churn thread failed: " << churn_fatal.ToString() << "\n";
    return 1;
  }
  epochs_applied += churn_applied;

  std::vector<int64_t> latencies;
  uint64_t requests = 0, shed = 0, tuples = 0;
  for (const auto& r : results) {
    if (!r.fatal.ok()) {
      std::cerr << "worker failed: " << r.fatal.ToString() << "\n";
      return 1;
    }
    latencies.insert(latencies.end(), r.latencies_ns.begin(),
                     r.latencies_ns.end());
    requests += r.requests;
    shed += r.shed;
    tuples += r.tuples;
  }
  auto server_stats = server.StatsSnapshot();

  bool metrics_ok = false;
  {
    auto reconciled = ReconcileScrapedMetrics(server.port(), metrics_before,
                                              requests, shed);
    if (!reconciled.ok()) {
      std::cerr << "metrics scrape failed: "
                << reconciled.status().ToString() << "\n";
    } else {
      metrics_ok = reconciled.value();
    }
  }
  server.Stop();

  if (!config.out.empty()) {
    std::ofstream f(config.out);
    WriteJson(config, f, latencies, wall_seconds, requests, shed, tuples,
              determinism_ok, metrics_ok, epochs_applied, server_stats);
  } else {
    WriteJson(config, std::cout, latencies, wall_seconds, requests, shed,
              tuples, determinism_ok, metrics_ok, epochs_applied,
              server_stats);
  }
  std::cerr << "loadgen: " << requests << " requests (" << shed
            << " shed), " << tuples << " tuples in " << wall_seconds
            << "s; determinism " << (determinism_ok ? "OK" : "VIOLATED")
            << "; metrics reconcile " << (metrics_ok ? "OK" : "FAILED")
            << "; epochs applied " << epochs_applied << "\n";
  return determinism_ok && metrics_ok ? 0 : 1;
}
