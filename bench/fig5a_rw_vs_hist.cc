// Fig 5a: error of the |J_i|/|U| ratio estimation -- histogram-based (+EO)
// vs random-walk -- per join of UQ1.
//
// Paper shape: random-walk is extremely accurate and stable (near-zero
// error for all joins); histogram-based is coarser, improving as overlap
// grows.

#include "bench_util.h"

namespace suj {
namespace bench {
namespace {

void Run() {
  PrintHeader("Fig 5a: per-join |J_i|/|U| ratio error, histogram vs random-walk (UQ1)");
  auto workload = Unwrap(workloads::BuildUQ1(UQ1Config(1.0, 0.2)), "UQ1");
  auto exact = Unwrap(ExactOverlapCalculator::Create(workload.joins),
                      "FullJoinUnion");
  auto exact_est = Unwrap(ComputeUnionEstimates(exact.get()), "exact est");

  HistogramCatalog histograms;
  auto hist = Unwrap(
      HistogramOverlapEstimator::Create(workload.joins, &histograms),
      "histogram estimator");
  auto hist_est = Unwrap(ComputeUnionEstimates(hist.get()), "hist est");

  CompositeIndexCache cache;
  RandomWalkOverlapEstimator::Options rw_opts;  // paper: 90% CI / 1000 walks
  auto rw = Unwrap(
      RandomWalkOverlapEstimator::Create(workload.joins, &cache, rw_opts),
      "random-walk estimator");
  Rng rng(7);
  UnwrapStatus(rw->Warmup(rng), "random-walk warmup");
  auto rw_est = Unwrap(ComputeUnionEstimates(rw.get()), "rw est");

  auto exact_ratios = exact_est.JoinToUnionRatios();
  auto hist_ratios = hist_est.JoinToUnionRatios();
  auto rw_ratios = rw_est.JoinToUnionRatios();
  std::printf("%-8s %-14s %-16s %-16s\n", "join", "exact_ratio",
              "hist_err", "rw_err");
  for (size_t j = 0; j < workload.joins.size(); ++j) {
    double he = exact_ratios[j] > 0
                    ? std::fabs(hist_ratios[j] - exact_ratios[j]) /
                          exact_ratios[j]
                    : 0.0;
    double re = exact_ratios[j] > 0
                    ? std::fabs(rw_ratios[j] - exact_ratios[j]) /
                          exact_ratios[j]
                    : 0.0;
    std::printf("J%-7zu %-14.4f %-16.4f %-16.4f\n", j, exact_ratios[j], he,
                re);
  }
  std::printf("mean     %-14s %-16.4f %-16.4f\n", "",
              RatioError(hist_ratios, exact_ratios),
              RatioError(rw_ratios, exact_ratios));
}

}  // namespace
}  // namespace bench
}  // namespace suj

int main() {
  suj::bench::Run();
  return 0;
}
