// Fig 4c / 4d: runtime of union-size estimation -- histogram-based method
// vs the FullJoinUnion brute force -- on UQ1 (4c) and UQ3 (4d), as data
// scales.
//
// Paper shape: histogram-based is orders of magnitude faster than the full
// join, and its advantage grows with data scale and overlap complexity.

#include "bench_util.h"

namespace suj {
namespace bench {
namespace {

void RunUQ1() {
  PrintHeader("Fig 4c: union-size estimation runtime vs data scale (UQ1)");
  std::printf("%-8s %-12s %-16s %-16s %-10s\n", "scale", "total_rows",
              "histogram_sec", "fulljoin_sec", "speedup");
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    auto workload =
        Unwrap(workloads::BuildUQ1(UQ1Config(scale, 0.2)), "UQ1");

    double hist_sec = TimeSeconds([&] {
      HistogramCatalog histograms;
      auto hist = Unwrap(
          HistogramOverlapEstimator::Create(workload.joins, &histograms),
          "histogram estimator");
      Unwrap(ComputeUnionEstimates(hist.get()), "hist est");
    });

    double full_sec = TimeSeconds([&] {
      auto exact = Unwrap(ExactOverlapCalculator::Create(workload.joins),
                          "FullJoinUnion");
      Unwrap(ComputeUnionEstimates(exact.get()), "exact est");
    });

    std::printf("%-8.2f %-12zu %-16.4f %-16.4f %-10.1fx\n", scale,
                workload.catalog.TotalRows(), hist_sec, full_sec,
                full_sec / hist_sec);
  }
}

void RunUQ3() {
  PrintHeader("Fig 4d: union-size estimation runtime vs data scale (UQ3)");
  std::printf("%-8s %-12s %-16s %-16s %-10s\n", "scale", "total_rows",
              "histogram_sec", "fulljoin_sec", "speedup");
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    tpch::TpchConfig config;
    config.scale_factor = scale;
    auto workload = Unwrap(workloads::BuildUQ3(config), "UQ3");

    double hist_sec = TimeSeconds([&] {
      HistogramCatalog histograms;
      auto hist = Unwrap(
          HistogramOverlapEstimator::Create(workload.joins, &histograms),
          "histogram estimator");
      Unwrap(ComputeUnionEstimates(hist.get()), "hist est");
    });

    double full_sec = TimeSeconds([&] {
      auto exact = Unwrap(ExactOverlapCalculator::Create(workload.joins),
                          "FullJoinUnion");
      Unwrap(ComputeUnionEstimates(exact.get()), "exact est");
    });

    std::printf("%-8.2f %-12zu %-16.4f %-16.4f %-10.1fx\n", scale,
                workload.catalog.TotalRows(), hist_sec, full_sec,
                full_sec / hist_sec);
  }
}

}  // namespace
}  // namespace bench
}  // namespace suj

int main() {
  suj::bench::RunUQ1();
  suj::bench::RunUQ3();
  return 0;
}
