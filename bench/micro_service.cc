// google-benchmark micro-benchmarks for the service layer: per-request
// latency of prepared-query sampling at 1/4/16 live sessions, session
// open/close cost, streaming delivery, and the cold-build baseline that
// re-runs the whole preparation pipeline (estimation + template selection
// + probers + weight indexes) for every request — the regime every
// consumer lived in before the service existed.
//
// The headline comparison the CI perf gate watches: at any session count,
// BM_ServicePreparedRequest must stay well under (>= 2x faster than)
// BM_ServiceColdRequest — the prepared path re-uses the pinned plan, the
// cold path rebuilds it.
//
// bench/check_regression.py gates CI on the JSON output of this binary
// against bench/baselines/micro_service.json; keep benchmark names stable
// or refresh the baseline in the same change.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "service/sampling_service.h"

namespace suj {
namespace bench {
namespace {

// Tuples per request: large enough that sampling (not bookkeeping)
// dominates the prepared path.
constexpr size_t kDraw = 1024;

// The service workload: the same overlapping-chain union the gated
// micro_join_samplers workload uses.
const std::vector<JoinSpecPtr>& ServiceJoins() {
  static const std::vector<JoinSpecPtr>* joins = [] {
    workloads::SyntheticChainOptions opts;
    opts.num_joins = 4;
    opts.master_rows = 400;
    opts.max_degree = 3;
    opts.seed = 42;
    return new std::vector<JoinSpecPtr>(
        Unwrap(workloads::MakeOverlappingChains(opts), "chains"));
  }();
  return *joins;
}

std::unique_ptr<SamplingService> MakeService(size_t max_sessions) {
  ServiceOptions options;
  options.seed = 42;
  options.max_sessions = max_sessions;
  options.max_inflight = 4;
  return Unwrap(SamplingService::Create(options), "service");
}

// Steady-state request latency against a prepared query: S live sessions
// round-robin their requests, each continuing its own protocol over the
// shared plan.
void BM_ServicePreparedRequest(benchmark::State& state) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  auto service = MakeService(sessions);
  UnwrapStatus(service->Prepare("q", ServiceJoins()).status(), "prepare");
  std::vector<uint64_t> ids;
  for (size_t s = 0; s < sessions; ++s) {
    ids.push_back(Unwrap(service->OpenSession("q"), "session"));
  }
  size_t next = 0;
  for (auto _ : state) {
    auto samples = service->Sample(ids[next], kDraw);
    UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
    benchmark::DoNotOptimize(samples);
    next = (next + 1) % sessions;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_ServicePreparedRequest)->Arg(1)->Arg(4)->Arg(16);

// The pre-service regime: every request pays plan construction (warm-up
// estimation, template selection, probers, weight indexes) before it can
// sample. The session-count arg mirrors BM_ServicePreparedRequest for
// side-by-side reading; a cold request costs the same no matter how many
// other clients exist, which is exactly the problem.
void BM_ServiceColdRequest(benchmark::State& state) {
  for (auto _ : state) {
    QueryRegistry registry;
    auto plan = Unwrap(
        registry.Prepare("q", ServiceJoins(), PreparedQueryOptions()),
        "prepare");
    SessionManager manager({/*seed=*/42, /*max_sessions=*/1});
    auto session =
        Unwrap(manager.Open(plan, SessionOptions()), "session");
    auto samples = session->Sample(kDraw);
    UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_ServiceColdRequest)->Arg(1)->Arg(4)->Arg(16);

// Session churn on a prepared query: open + first sample + close. The
// first sample forces the lazy sampler build, so this measures the real
// cost of putting a NEW client on an existing plan.
void BM_ServiceSessionChurn(benchmark::State& state) {
  auto service = MakeService(/*max_sessions=*/4);
  UnwrapStatus(service->Prepare("q", ServiceJoins()).status(), "prepare");
  for (auto _ : state) {
    uint64_t sid = Unwrap(service->OpenSession("q"), "session");
    auto samples = service->Sample(sid, /*n=*/64);
    UnwrapStatus(samples.ok() ? Status::OK() : samples.status(), "sample");
    benchmark::DoNotOptimize(samples);
    UnwrapStatus(service->CloseSession(sid), "close");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceSessionChurn);

// Streaming delivery: producer thread + bounded buffer + chunked pull,
// measured end to end. Real time: the producer overlaps the consumer.
void BM_ServiceStreamDelivery(benchmark::State& state) {
  auto service = MakeService(/*max_sessions=*/1);
  UnwrapStatus(service->Prepare("q", ServiceJoins()).status(), "prepare");
  uint64_t sid = Unwrap(service->OpenSession("q"), "session");
  SampleStream::Options stream_opts;
  stream_opts.chunk_size = 256;
  for (auto _ : state) {
    auto stream = Unwrap(service->OpenStream(sid, kDraw, stream_opts),
                         "stream");
    size_t delivered = 0;
    for (;;) {
      auto chunk = stream->Next();
      UnwrapStatus(chunk.ok() ? Status::OK() : chunk.status(), "chunk");
      if (chunk->empty()) break;
      delivered += chunk->size();
    }
    if (delivered != kDraw) {
      UnwrapStatus(Status::Internal("short stream"), "stream");
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kDraw));
}
BENCHMARK(BM_ServiceStreamDelivery)->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace suj

BENCHMARK_MAIN();
