// google-benchmark micro-benchmarks for the storage substrate: tuple
// encoding/hashing, relation scans, and index construction/probes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "index/hash_index.h"
#include "stats/column_histogram.h"
#include "tpch/generator.h"

namespace suj {
namespace bench {
namespace {

RelationPtr Lineitem() {
  static RelationPtr lineitem = [] {
    tpch::TpchConfig config;
    config.scale_factor = 2.0;
    auto catalog = Unwrap(tpch::TpchGenerator(config).Generate(), "tpch");
    return Unwrap(catalog.Get("lineitem"), "lineitem");
  }();
  return lineitem;
}

void BM_TupleEncode(benchmark::State& state) {
  Tuple t = Lineitem()->GetTuple(0);
  for (auto _ : state) {
    std::string enc = t.Encode();
    benchmark::DoNotOptimize(enc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleEncode);

void BM_TupleHash(benchmark::State& state) {
  Tuple t = Lineitem()->GetTuple(0);
  for (auto _ : state) {
    uint64_t h = t.Hash();
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleHash);

void BM_RelationScan(benchmark::State& state) {
  RelationPtr rel = Lineitem();
  int col = rel->schema().FieldIndex("l_quantity");
  for (auto _ : state) {
    int64_t sum = 0;
    for (size_t row = 0; row < rel->num_rows(); ++row) {
      sum += rel->GetInt64(row, col);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * Lineitem()->num_rows());
}
BENCHMARK(BM_RelationScan);

void BM_HashIndexBuild(benchmark::State& state) {
  RelationPtr rel = Lineitem();
  for (auto _ : state) {
    auto index = HashIndex::Build(rel, "orderkey");
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_HashIndexBuild);

void BM_HashIndexProbe(benchmark::State& state) {
  RelationPtr rel = Lineitem();
  auto index = Unwrap(HashIndex::Build(rel, "orderkey"), "index");
  Rng rng(1);
  int col = rel->schema().FieldIndex("orderkey");
  for (auto _ : state) {
    size_t row = rng.UniformInt(rel->num_rows());
    const auto& rows = index->Lookup(rel->GetValue(row, col));
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndexProbe);

void BM_CompositeIndexBuild(benchmark::State& state) {
  RelationPtr rel = Lineitem();
  for (auto _ : state) {
    auto index =
        CompositeIndex::Build(rel, {"orderkey", "l_linenumber"});
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_CompositeIndexBuild);

void BM_HistogramBuild(benchmark::State& state) {
  RelationPtr rel = Lineitem();
  for (auto _ : state) {
    auto hist = ColumnHistogram::Build(rel, "orderkey");
    benchmark::DoNotOptimize(hist);
  }
}
BENCHMARK(BM_HistogramBuild);

void BM_TpchGenerate(benchmark::State& state) {
  tpch::TpchConfig config;
  config.scale_factor = state.range(0) / 10.0;
  for (auto _ : state) {
    auto catalog = tpch::TpchGenerator(config).Generate();
    benchmark::DoNotOptimize(catalog);
  }
}
BENCHMARK(BM_TpchGenerate)->Arg(5)->Arg(10);

}  // namespace
}  // namespace bench
}  // namespace suj

BENCHMARK_MAIN();
