// Randomized differential property harness for the union-sampling stack:
// a fixed, seed-swept sweep of small random join graphs (no wall-clock or
// entropy dependence — every input is derived from the seed list below)
// asserting, per graph:
//
//  * oracle mode: the batched executor delivers byte-identical sequences
//    at every thread count (PR 2's contract — one worker draining all
//    batches IS the sequential execution of the batched schedule), and
//    the classic sequential loop stays sound on the same graph (the two
//    consume the caller's RNG differently — continuously vs. one
//    substream seed — so cross-loop byte equality is not a property);
//  * revision mode: the resumable epoch-reconciled protocol delivers the
//    same bytes one-shot and session-chunked, at 1/2/4 worker threads —
//    thread count 1 IS the sequential execution of the epoch protocol,
//    so this is the revision-mode sequential == parallel == chunked
//    equality. (The pre-epoch sequential revision loop follows the same
//    distribution but a different draw order, so byte equality against
//    it is not a property of the protocol; uniformity_test covers its
//    conformance statistically.)
//  * accounting: the conservation identity accepted − removed_by_revision
//    − reconcile_dropped == delivered + buffered holds per sampler and
//    survives MergeFrom across call-pattern stats (and MergeFrom still
//    refuses cross-plan merges);
//  * soundness: every delivered tuple is a member of the union.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/exact_overlap.h"
#include "core/revision_state.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "join/membership.h"
#include "service/prepared_union.h"
#include "stats/uniformity.h"
#include "storage/relation_delta.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

// The sweep: fixed seeds, fixed iteration budget. Graph shape is derived
// deterministically from each seed, so the harness explores different
// join counts / sizes / overlaps without ever touching entropy.
constexpr uint64_t kSweepSeeds[] = {800, 801, 802, 803, 804, 805};

struct GraphFixture {
  std::vector<JoinSpecPtr> joins;
  std::unique_ptr<ExactOverlapCalculator> exact;
  UnionEstimates estimates;
  std::vector<JoinMembershipProberPtr> probers;
  CompositeIndexCache cache;

  UnionSampler::JoinSamplerFactory Factory() {
    return [this]() -> Result<std::vector<std::unique_ptr<JoinSampler>>> {
      std::vector<std::unique_ptr<JoinSampler>> out;
      for (const auto& join : joins) {
        auto sampler = ExactWeightSampler::Create(join, &cache);
        if (!sampler.ok()) return sampler.status();
        out.push_back(std::move(*sampler));
      }
      return out;
    };
  }
};

GraphFixture MakeRandomGraph(uint64_t seed) {
  GraphFixture g;
  SyntheticChainOptions options;
  options.num_joins = 2 + static_cast<int>(seed % 3);       // 2..4 joins
  options.master_rows = 12 + static_cast<size_t>(seed % 5) * 4;  // 12..28
  options.seed = seed;
  g.joins = MakeOverlappingChains(options).value();
  g.exact = ExactOverlapCalculator::Create(g.joins).value();
  g.estimates = ComputeUnionEstimates(g.exact.get()).value();
  for (const auto& join : g.joins) {
    g.probers.push_back(JoinMembershipProber::Build(join).value());
  }
  return g;
}

std::vector<std::string> Encodings(const std::vector<Tuple>& samples) {
  std::vector<std::string> out;
  out.reserve(samples.size());
  for (const auto& t : samples) out.push_back(t.Encode());
  return out;
}

// A seed-derived split of `n` into 2..4 chunks.
std::vector<size_t> DeriveSplit(uint64_t seed, size_t n) {
  Rng rng(seed * 2654435761u + 17);
  const size_t chunks = 2 + rng.UniformInt(3);
  std::vector<size_t> split;
  size_t left = n;
  for (size_t c = 1; c < chunks && left > 1; ++c) {
    size_t take = 1 + rng.UniformInt(left - 1);
    split.push_back(take);
    left -= take;
  }
  split.push_back(left);
  return split;
}

void CheckMembership(const GraphFixture& g,
                     const std::vector<Tuple>& samples) {
  for (const auto& t : samples) {
    ASSERT_TRUE(g.exact->membership().count(t.Encode()))
        << "sampled tuple outside the union";
  }
}

TEST(DifferentialPropertyTest, OracleParallelMatchesItsSequentialExecution) {
  for (uint64_t seed : kSweepSeeds) {
    GraphFixture g = MakeRandomGraph(seed);
    const size_t n = 160;

    // The classic sequential loop stays sound on every random graph.
    UnionSampler::Options seq_opts;
    seq_opts.mode = UnionSampler::Mode::kMembershipOracle;
    auto factory = g.Factory();
    auto sequential =
        UnionSampler::Create(g.joins, factory().value(), g.estimates,
                             g.probers, seq_opts)
            .value();
    Rng seq_rng(seed + 1);
    auto expect = sequential->Sample(n, seq_rng);
    ASSERT_TRUE(expect.ok()) << expect.status().ToString();
    ASSERT_EQ(expect->size(), n);
    CheckMembership(g, *expect);

    // The batched executor: thread count 1 is the sequential execution
    // of the batched schedule, and every other count must reproduce it.
    std::vector<std::string> reference;
    for (size_t threads : {1u, 2u, 4u}) {
      UnionSampler::Options par_opts;
      par_opts.mode = UnionSampler::Mode::kMembershipOracle;
      par_opts.num_threads = threads;
      par_opts.batch_size = 32;
      par_opts.sampler_factory = g.Factory();
      auto parallel = UnionSampler::Create(g.joins, {}, g.estimates,
                                           g.probers, par_opts)
                          .value();
      Rng par_rng(seed + 1);
      auto got = parallel->Sample(n, par_rng);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      CheckMembership(g, *got);
      if (reference.empty()) {
        reference = Encodings(*got);
      } else {
        EXPECT_EQ(Encodings(*got), reference)
            << "seed=" << seed << " threads=" << threads;
      }
    }
  }
}

TEST(DifferentialPropertyTest, RevisionOneShotEqualsChunkedEverywhere) {
  for (uint64_t seed : kSweepSeeds) {
    GraphFixture g = MakeRandomGraph(seed);
    const size_t n = 200;
    const std::vector<size_t> split = DeriveSplit(seed, n);

    std::vector<std::string> reference;
    UnionSampleStats reference_stats;
    for (size_t threads : {1u, 2u, 4u}) {
      for (bool chunked : {false, true}) {
        UnionSampler::Options opts;
        opts.mode = UnionSampler::Mode::kRevision;
        opts.num_threads = threads;
        opts.batch_size = 32;
        opts.plan_id = seed;  // exercises the MergeFrom plan guard below
        opts.sampler_factory = g.Factory();
        auto sampler =
            UnionSampler::Create(g.joins, {}, g.estimates, {}, opts).value();
        RevisionState state;
        Rng rng(seed + 2);
        std::vector<std::string> got;
        std::vector<Tuple> all;
        if (chunked) {
          for (size_t c : split) {
            auto samples = sampler->Sample(c, rng, state);
            ASSERT_TRUE(samples.ok()) << samples.status().ToString();
            ASSERT_EQ(samples->size(), c);
            for (auto& t : *samples) all.push_back(std::move(t));
          }
        } else {
          auto samples = sampler->Sample(n, rng, state);
          ASSERT_TRUE(samples.ok()) << samples.status().ToString();
          all = std::move(*samples);
        }
        ASSERT_EQ(all.size(), n);
        CheckMembership(g, all);
        got = Encodings(all);

        // Conservation identity for THIS sampler's call pattern.
        const auto& st = sampler->stats();
        EXPECT_EQ(st.accepted - st.removed_by_revision -
                      st.reconcile_dropped,
                  state.delivered() + state.buffered())
            << "seed=" << seed << " threads=" << threads
            << " chunked=" << chunked;

        if (reference.empty()) {
          reference = got;
          reference_stats = st;
        } else {
          EXPECT_EQ(got, reference)
              << "seed=" << seed << " threads=" << threads
              << " chunked=" << chunked;
          // The identity survives folding the two call patterns' stats
          // together: MergeFrom sums both sides' conservation triples.
          UnionSampleStats merged = reference_stats;
          ASSERT_TRUE(merged.MergeFrom(st).ok());
          EXPECT_EQ(merged.accepted - merged.removed_by_revision -
                        merged.reconcile_dropped,
                    2 * (state.delivered() + state.buffered()));
        }
      }
    }
  }
}

TEST(DifferentialPropertyTest, ColumnarPathIsDeterministicAcrossThreadCounts) {
  // The columnar hot path (flat projections + alias tables +
  // level-synchronous batched walks) must not leak scheduling into the
  // sample stream: with the EW samplers pinned to the columnar plan,
  // every batch's output stays a pure function of (seed, batch index),
  // so the delivered stream is byte-identical at every worker count — in
  // oracle mode and in resumable revision mode. The row path is held to
  // the same bar; the two paths consume the RNG differently by design,
  // so each stream is only compared to itself.
  for (uint64_t seed : {810u, 813u}) {
    GraphFixture g = MakeRandomGraph(seed);
    auto make_factory = [&g](bool columnar) {
      return [&g, columnar]()
                 -> Result<std::vector<std::unique_ptr<JoinSampler>>> {
        ExactWeightSampler::Options options;
        options.columnar = columnar;
        std::vector<std::unique_ptr<JoinSampler>> out;
        for (const auto& join : g.joins) {
          auto sampler = ExactWeightSampler::Create(join, &g.cache, options);
          if (!sampler.ok()) return sampler.status();
          out.push_back(std::move(*sampler));
        }
        return out;
      };
    };
    // The synthetic chains must actually engage the columnar plan —
    // otherwise this pins nothing.
    {
      ExactWeightSampler::Options options;
      auto probe =
          ExactWeightSampler::Create(g.joins[0], &g.cache, options).value();
      ASSERT_TRUE(probe->columnar()) << "seed=" << seed;
    }
    const size_t n = 160;
    for (bool columnar : {true, false}) {
      std::vector<std::string> oracle_ref, revision_ref;
      for (size_t threads : {1u, 2u, 4u}) {
        UnionSampler::Options opts;
        opts.mode = UnionSampler::Mode::kMembershipOracle;
        opts.num_threads = threads;
        opts.batch_size = 32;
        opts.sampler_factory = make_factory(columnar);
        auto oracle = UnionSampler::Create(g.joins, {}, g.estimates,
                                           g.probers, opts)
                          .value();
        Rng rng(seed + 3);
        auto got = oracle->Sample(n, rng);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        CheckMembership(g, *got);
        if (oracle_ref.empty()) {
          oracle_ref = Encodings(*got);
        } else {
          EXPECT_EQ(Encodings(*got), oracle_ref)
              << "oracle seed=" << seed << " columnar=" << columnar
              << " threads=" << threads;
        }

        UnionSampler::Options rev;
        rev.mode = UnionSampler::Mode::kRevision;
        rev.num_threads = threads;
        rev.batch_size = 32;
        rev.sampler_factory = make_factory(columnar);
        auto revision =
            UnionSampler::Create(g.joins, {}, g.estimates, {}, rev).value();
        RevisionState state;
        Rng rev_rng(seed + 4);
        auto rev_got = revision->Sample(n, rev_rng, state);
        ASSERT_TRUE(rev_got.ok()) << rev_got.status().ToString();
        CheckMembership(g, *rev_got);
        if (revision_ref.empty()) {
          revision_ref = Encodings(*rev_got);
        } else {
          EXPECT_EQ(Encodings(*rev_got), revision_ref)
              << "revision seed=" << seed << " columnar=" << columnar
              << " threads=" << threads;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Churn harness: delta batches interleaved with Sample calls. Two
// properties, per shard count:
//  * a session pinned to epoch 0 (it holds that epoch's plan by
//    shared_ptr) delivers byte-identical streams at 1/2/4 worker threads
//    whether or not deltas land between its chunks — epochs are
//    immutable snapshots, so churn cannot leak into a pinned reader;
//  * the LATEST epoch, after all the churn, still serves a sample
//    consistent with uniformity over ITS union (the refreshed
//    estimates/weights describe the folded data correctly).

// One append/delete batch against the current epoch's base relations.
// `salt` varies the deleted row and the fresh-key values so consecutive
// batches are distinct.
RelationDelta ChurnDelta(const std::vector<JoinSpecPtr>& base_joins,
                         uint64_t salt) {
  const RelationPtr& target = base_joins[0]->relation(0);
  RelationDelta delta;
  delta.relation = target->name();
  delta.deletes = {static_cast<uint32_t>(salt % target->num_rows())};
  std::vector<Value> dup =
      target->GetTuple((salt + 1) % target->num_rows()).values();
  delta.appends.push_back(Tuple(std::move(dup)));  // duplicate-key append
  std::vector<Value> fresh;
  for (size_t c = 0; c < target->num_columns(); ++c) {
    fresh.push_back(Value::Int64(90000 + static_cast<int64_t>(salt) * 16 +
                                 static_cast<int64_t>(c)));
  }
  delta.appends.push_back(Tuple(std::move(fresh)));  // fresh-key append
  return delta;
}

// Chunked kRevision draws from one plan; `between` (if set) runs after
// every chunk — the churn runs use it to apply a delta batch mid-stream.
std::vector<std::string> DrawChunkedRevision(
    const PreparedUnionPtr& plan, size_t threads, uint64_t seed,
    const std::vector<size_t>& chunks,
    const std::function<void(size_t)>& between) {
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  opts.num_threads = threads;
  opts.batch_size = 32;
  opts.sampler_factory = plan->MakeJoinSamplerFactory();
  auto sampler =
      UnionSampler::Create(plan->joins(), {}, plan->estimates(), {}, opts)
          .value();
  RevisionState state;
  Rng rng(seed);
  std::vector<std::string> out;
  for (size_t i = 0; i < chunks.size(); ++i) {
    auto samples = sampler->Sample(chunks[i], rng, state);
    EXPECT_TRUE(samples.ok()) << samples.status().ToString();
    if (!samples.ok()) return out;
    for (const auto& t : *samples) out.push_back(t.Encode());
    if (between) between(i);
  }
  return out;
}

TEST(DifferentialPropertyTest, ChurnPinnedEpochsStayByteIdenticalAndUniform) {
  const uint64_t seed = 830;
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 24;
  options.seed = seed;
  auto joins = MakeOverlappingChains(options).value();
  const std::vector<size_t> chunks = {60, 20, 70};

  for (int num_shards : {1, 4}) {
    PreparedQueryOptions prep;
    prep.shard.num_shards = num_shards;
    QueryRegistry registry;
    auto pinned = registry.Prepare("churn", joins, prep).value();
    ASSERT_EQ(pinned->data_epoch(), 0u);

    // The no-churn reference: same plan content, cold-built, untouched.
    auto control =
        PreparedUnion::Build("churn-control", 99, joins, prep).value();

    uint64_t salt = 0;
    for (size_t threads : {1u, 2u, 4u}) {
      auto reference =
          DrawChunkedRevision(control, threads, seed + 7, chunks, nullptr);
      auto got = DrawChunkedRevision(
          pinned, threads, seed + 7, chunks, [&](size_t) {
            auto latest = registry.Get("churn").value();
            auto next = registry.ApplyDelta(
                "churn", {ChurnDelta(latest->base_joins(), salt++)});
            ASSERT_TRUE(next.ok()) << next.status().ToString();
            ASSERT_EQ(next.value()->data_epoch(),
                      latest->data_epoch() + 1);
          });
      EXPECT_EQ(got, reference)
          << "shards=" << num_shards << " threads=" << threads;
    }
    // The pinned plan never moved; the family did.
    EXPECT_EQ(pinned->data_epoch(), 0u);
    EXPECT_EQ(pinned->latest_epoch(), salt);
    ASSERT_GT(salt, 0u);

    // Post-churn: the latest epoch is uniform over ITS (folded) union.
    auto latest = registry.Get("churn").value();
    ASSERT_EQ(latest->data_epoch(), salt);
    auto exact = ExactOverlapCalculator::Create(latest->joins()).value();
    UnionSampler::Options opts;
    opts.mode = UnionSampler::Mode::kRevision;
    opts.num_threads = 2;
    opts.batch_size = 64;
    opts.sampler_factory = latest->MakeJoinSamplerFactory();
    auto sampler = UnionSampler::Create(latest->joins(), {},
                                        latest->estimates(), {}, opts)
                       .value();
    Rng rng(seed + 11);
    const size_t universe = exact->UnionSize();
    ASSERT_GT(universe, 0u);
    const size_t n = 60 * universe;
    auto samples = sampler->Sample(n, rng);
    ASSERT_TRUE(samples.ok()) << samples.status().ToString();
    for (const auto& t : *samples) {
      ASSERT_TRUE(exact->membership().count(t.Encode()))
          << "post-churn sample outside the folded union";
    }
    auto result = ChiSquareUniformityTest(*samples, universe);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->ConsistentWithUniform(/*alpha=*/1e-4))
        << "shards=" << num_shards << " chi2=" << result->statistic
        << " df=" << result->degrees_of_freedom
        << " p=" << result->p_value;
  }
}

TEST(DifferentialPropertyTest, MergeFromStillRefusesCrossPlanStats) {
  UnionSampleStats a;
  a.plan_id = 900;
  a.accepted = 10;
  UnionSampleStats b;
  b.plan_id = 901;
  b.accepted = 5;
  EXPECT_EQ(a.MergeFrom(b).code(), StatusCode::kInvalidArgument);
  b.plan_id = 900;
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.accepted, 15u);
}

}  // namespace
}  // namespace suj
