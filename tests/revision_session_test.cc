// Tests for session-scoped revision ownership (core/revision_state.h +
// UnionSampler::Sample(n, rng, RevisionState&) + kRevision sessions):
// split-across-calls == one-call byte equality at every worker-thread
// count, resumption across SampleStream chunks, eviction/teardown while
// a resumable state is live, worker-context-pool construction counts
// (once per STATE, carried across calls and epochs), the
// max_revision_surplus cap + high-water instrumentation, and
// state-binding validation.
// Runs under the TSan CI job (ctest -L concurrency).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/exact_overlap.h"
#include "core/revision_state.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "service/sampling_service.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

std::vector<std::string> Encodings(const std::vector<Tuple>& samples) {
  std::vector<std::string> out;
  out.reserve(samples.size());
  for (const auto& t : samples) out.push_back(t.Encode());
  return out;
}

std::vector<JoinSpecPtr> MakeJoins(uint64_t seed, int num_joins = 3,
                                   size_t master_rows = 20) {
  SyntheticChainOptions options;
  options.num_joins = num_joins;
  options.master_rows = master_rows;
  options.seed = seed;
  return MakeOverlappingChains(options).value();
}

std::unique_ptr<SamplingService> MakeService(uint64_t seed) {
  ServiceOptions options;
  options.seed = seed;
  return SamplingService::Create(options).value();
}

// Samples `chunks` on a fresh service (seed 700, query seed 701) in one
// kRevision session at `threads` workers; returns the concatenation.
std::vector<std::string> SampleChunkedSession(
    const std::vector<size_t>& chunks, size_t threads) {
  auto service = MakeService(700);
  EXPECT_TRUE(service->Prepare("q", MakeJoins(701)).ok());
  SessionOptions opts;
  opts.mode = SessionOptions::Mode::kRevision;
  opts.worker_threads = threads;
  opts.batch_size = 32;
  uint64_t sid = service->OpenSession("q", opts).value();
  std::vector<std::string> out;
  for (size_t n : chunks) {
    auto samples = service->Sample(sid, n);
    EXPECT_TRUE(samples.ok()) << samples.status().ToString();
    if (!samples.ok()) return out;
    EXPECT_EQ(samples->size(), n);
    auto enc = Encodings(*samples);
    out.insert(out.end(), enc.begin(), enc.end());
  }
  return out;
}

TEST(RevisionSessionTest, SplitEqualsWholeAtEveryThreadCount) {
  // The tentpole guarantee: a kRevision session's delivered sequence is a
  // function of (service seed, session rank, cumulative draw count) only
  // — NOT of how the draws are chunked into calls, and NOT of the worker
  // thread count. Every split of 300 draws must reproduce the one-call
  // sequence byte for byte.
  const std::vector<std::string> reference =
      SampleChunkedSession({300}, /*threads=*/1);
  ASSERT_EQ(reference.size(), 300u);
  const std::vector<std::vector<size_t>> splits = {
      {300},          {100, 100, 100}, {37, 263},
      {1, 299},       {150, 75, 75},   {299, 1},
  };
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    for (const auto& split : splits) {
      EXPECT_EQ(SampleChunkedSession(split, threads), reference)
          << "threads=" << threads << " splits=" << split.size();
    }
  }
}

TEST(RevisionSessionTest, ResumesAcrossStreamChunksAndDirectCalls) {
  // Chunked SampleStream delivery is just more Sample calls on the same
  // session state: direct call + stream + direct call must concatenate
  // to the one-call sequence.
  const std::vector<std::string> reference =
      SampleChunkedSession({300}, /*threads=*/2);
  ASSERT_EQ(reference.size(), 300u);

  auto service = MakeService(700);
  ASSERT_TRUE(service->Prepare("q", MakeJoins(701)).ok());
  SessionOptions opts;
  opts.mode = SessionOptions::Mode::kRevision;
  opts.worker_threads = 2;
  opts.batch_size = 32;
  uint64_t sid = service->OpenSession("q", opts).value();

  std::vector<std::string> got;
  auto first = service->Sample(sid, 50);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto enc = Encodings(*first);
  got.insert(got.end(), enc.begin(), enc.end());

  SampleStream::Options stream_opts;
  stream_opts.chunk_size = 64;
  auto stream = service->OpenStream(sid, 200, stream_opts);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  for (;;) {
    auto chunk = (*stream)->Next();
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (chunk->empty()) break;
    enc = Encodings(*chunk);
    got.insert(got.end(), enc.begin(), enc.end());
  }
  stream->reset();  // stream teardown must not disturb the session state

  auto last = service->Sample(sid, 50);
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  enc = Encodings(*last);
  got.insert(got.end(), enc.begin(), enc.end());

  EXPECT_EQ(got, reference);
}

TEST(RevisionSessionTest, EvictionAndCloseLeaveResumableStateUsable) {
  // Eviction unpins the plan and Close drops the manager's reference; a
  // caller still holding the session continues the resumed protocol
  // untouched, and the state is freed with the session's last reference.
  const std::vector<std::string> reference =
      SampleChunkedSession({300}, /*threads=*/4);
  ASSERT_EQ(reference.size(), 300u);

  auto service = MakeService(700);
  ASSERT_TRUE(service->Prepare("q", MakeJoins(701)).ok());
  SessionOptions opts;
  opts.mode = SessionOptions::Mode::kRevision;
  opts.worker_threads = 4;
  opts.batch_size = 32;
  uint64_t sid = service->OpenSession("q", opts).value();

  std::vector<std::string> got;
  auto first = service->Sample(sid, 120);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto enc = Encodings(*first);
  got.insert(got.end(), enc.begin(), enc.end());

  auto session = service->sessions().Get(sid).value();
  ASSERT_TRUE(service->Evict("q").ok());
  ASSERT_TRUE(service->CloseSession(sid).ok());
  EXPECT_FALSE(service->sessions().Get(sid).ok());

  auto rest = session->Sample(180);
  ASSERT_TRUE(rest.ok()) << rest.status().ToString();
  enc = Encodings(*rest);
  got.insert(got.end(), enc.begin(), enc.end());
  EXPECT_EQ(got, reference);

  // Releasing the last reference tears the state down with the session
  // (ASan/TSan verify there is nothing left pointing at it).
  session.reset();
}

TEST(RevisionSessionTest, SessionSurplusCapIsPlumbedAndReported) {
  // SessionOptions::max_revision_surplus reaches the sampler, bounds the
  // surplus the session parks between requests, and surfaces its peak in
  // the stats snapshot — without changing the split==whole contract.
  auto sample_all = [](size_t cap, const std::vector<size_t>& chunks) {
    auto service = MakeService(720);
    EXPECT_TRUE(service->Prepare("q", MakeJoins(721)).ok());
    SessionOptions opts;
    opts.mode = SessionOptions::Mode::kRevision;
    opts.worker_threads = 2;
    opts.batch_size = 32;
    opts.max_revision_surplus = cap;
    uint64_t sid = service->OpenSession("q", opts).value();
    std::vector<std::string> out;
    for (size_t n : chunks) {
      auto samples = service->Sample(sid, n);
      EXPECT_TRUE(samples.ok()) << samples.status().ToString();
      if (!samples.ok()) return std::pair{out, SessionStatsSnapshot{}};
      auto enc = Encodings(*samples);
      out.insert(out.end(), enc.begin(), enc.end());
      auto stats = service->SessionStats(sid).value();
      EXPECT_LE(stats.revision_buffered, cap);
      EXPECT_LE(stats.revision_surplus_high_water, cap);
    }
    return std::pair{out, service->SessionStats(sid).value()};
  };
  auto [whole, whole_stats] = sample_all(64, {300});
  ASSERT_EQ(whole.size(), 300u);
  auto [split, split_stats] = sample_all(64, {90, 110, 100});
  EXPECT_EQ(split, whole);
  // The peak is observed at request boundaries, so chunking can only
  // surface MORE peaks — never a higher one than the cap admits.
  EXPECT_GE(split_stats.revision_surplus_high_water,
            split_stats.revision_buffered);
  EXPECT_GE(whole_stats.revision_surplus_high_water,
            whole_stats.revision_buffered);
}

TEST(RevisionSessionTest, SessionStatsCloseTheConservationIdentity) {
  auto service = MakeService(700);
  ASSERT_TRUE(service->Prepare("q", MakeJoins(701)).ok());
  SessionOptions opts;
  opts.mode = SessionOptions::Mode::kRevision;
  opts.worker_threads = 2;
  opts.batch_size = 32;
  uint64_t sid = service->OpenSession("q", opts).value();
  for (size_t n : {40u, 200u, 15u}) {
    ASSERT_TRUE(service->Sample(sid, n).ok());
  }
  auto stats = service->SessionStats(sid).value();
  EXPECT_EQ(stats.tuples_delivered, 255u);
  // Every locally accepted tuple is delivered, buffered for the next
  // request, purged by a revision, or dropped at reconciliation.
  EXPECT_EQ(stats.sampler.accepted - stats.sampler.removed_by_revision -
                stats.sampler.reconcile_dropped,
            stats.tuples_delivered + stats.revision_buffered);
  EXPECT_GE(stats.sampler.revision_epochs, 1u);
}

// ---------------------------------------------------------------------------
// Core-level: worker-context pool construction counts + state binding.

struct CoreFixture {
  std::vector<JoinSpecPtr> joins;
  std::unique_ptr<ExactOverlapCalculator> exact;
  UnionEstimates estimates;
  CompositeIndexCache cache;
  size_t factory_calls = 0;

  UnionSampler::JoinSamplerFactory CountingFactory() {
    return [this]() -> Result<std::vector<std::unique_ptr<JoinSampler>>> {
      ++factory_calls;
      std::vector<std::unique_ptr<JoinSampler>> out;
      for (const auto& join : joins) {
        auto sampler = ExactWeightSampler::Create(join, &cache);
        if (!sampler.ok()) return sampler.status();
        out.push_back(std::move(*sampler));
      }
      return out;
    };
  }
};

CoreFixture MakeCoreSetup(uint64_t seed) {
  CoreFixture s;
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 20;
  options.seed = seed;
  s.joins = MakeOverlappingChains(options).value();
  s.exact = ExactOverlapCalculator::Create(s.joins).value();
  s.estimates = ComputeUnionEstimates(s.exact.get()).value();
  return s;
}

std::unique_ptr<UnionSampler> MakeRevisionSampler(CoreFixture& s,
                                                  size_t threads,
                                                  size_t batch_size) {
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  opts.num_threads = threads;
  opts.batch_size = batch_size;
  opts.sampler_factory = s.CountingFactory();
  return UnionSampler::Create(s.joins, {}, s.estimates, {}, opts).value();
}

TEST(RevisionSessionTest, ResumableBuildsWorkerContextsOncePerState) {
  CoreFixture s = MakeCoreSetup(702);
  const size_t kThreads = 4;
  auto sampler = MakeRevisionSampler(s, kThreads, /*batch_size=*/16);
  RevisionState state;
  Rng rng = testing::FixedSeedRng(703);

  // Call 1 spans several epochs (16, 64, 256, ... tuples); the factory
  // must run exactly pool-width times — reuse across epochs is the whole
  // point of the WorkerContextPool.
  auto first = sampler->Sample(600, rng, state);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(sampler->stats().revision_epochs, 1u);
  EXPECT_EQ(s.factory_calls, kThreads);

  // Call 2 is served from the state's buffered surplus: no pool at all.
  ASSERT_GT(state.buffered(), 100u);
  auto second = sampler->Sample(100, rng, state);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(s.factory_calls, kThreads);

  // Call 3 outruns the buffer — the pool carried in the state serves it
  // without a single new factory invocation. Before the carry, every
  // generating call rebuilt pool-width contexts (index lookups, sampler
  // construction) on the request path.
  auto third = sampler->Sample(state.buffered() + 200, rng, state);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(s.factory_calls, kThreads);
  // parallel_workers counts constructed contexts: once per state, too.
  EXPECT_EQ(sampler->stats().parallel_workers, kThreads);
}

TEST(RevisionSessionTest, SurplusCapBoundsBufferAndReportsHighWater) {
  // max_revision_surplus lowers the epoch ramp's cap until the largest
  // epoch fits, so the finalized surplus parked between calls can never
  // exceed the bound; the peak is reported as revision_surplus_high_water.
  CoreFixture s = MakeCoreSetup(712);
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  opts.num_threads = 2;
  opts.batch_size = 16;
  opts.max_revision_surplus = 32;  // ramp cap 1: epochs of 16 or 32
  opts.sampler_factory = s.CountingFactory();
  auto sampler = UnionSampler::Create(s.joins, {}, s.estimates, {}, opts)
                     .value();
  RevisionState state;
  Rng rng = testing::FixedSeedRng(713);
  for (size_t n : {10u, 100u, 7u, 150u}) {
    auto samples = sampler->Sample(n, rng, state);
    ASSERT_TRUE(samples.ok()) << samples.status().ToString();
    EXPECT_LE(state.buffered(), 32u);
  }
  const auto& st = sampler->stats();
  EXPECT_LE(st.revision_surplus_high_water, 32u);
  EXPECT_GE(st.revision_surplus_high_water, state.buffered());
  // Merging propagates the high water as a max, not a sum.
  UnionSampleStats merged;
  ASSERT_TRUE(merged.MergeFrom(st).ok());
  ASSERT_TRUE(merged.MergeFrom(st).ok());
  EXPECT_EQ(merged.revision_surplus_high_water,
            st.revision_surplus_high_water);
}

TEST(RevisionSessionTest, SurplusCapPreservesSplitEqualsWhole) {
  // The cap is a pure function of the options — never of the call
  // pattern — so a capped session still delivers the byte-identical
  // stream under every chunking and thread count.
  auto run = [](const std::vector<size_t>& chunks, size_t threads) {
    CoreFixture s = MakeCoreSetup(714);
    UnionSampler::Options opts;
    opts.mode = UnionSampler::Mode::kRevision;
    opts.num_threads = threads;
    opts.batch_size = 16;
    opts.max_revision_surplus = 32;
    opts.sampler_factory = s.CountingFactory();
    auto sampler = UnionSampler::Create(s.joins, {}, s.estimates, {}, opts)
                       .value();
    RevisionState state;
    Rng rng = testing::FixedSeedRng(715);
    std::vector<std::string> out;
    for (size_t n : chunks) {
      auto samples = sampler->Sample(n, rng, state);
      EXPECT_TRUE(samples.ok()) << samples.status().ToString();
      if (!samples.ok()) return out;
      auto enc = Encodings(*samples);
      out.insert(out.end(), enc.begin(), enc.end());
    }
    return out;
  };
  const std::vector<std::string> reference = run({240}, 1);
  ASSERT_EQ(reference.size(), 240u);
  for (size_t threads : {1u, 2u, 4u}) {
    EXPECT_EQ(run({80, 80, 80}, threads), reference) << threads;
    EXPECT_EQ(run({3, 237}, threads), reference) << threads;
  }
}

TEST(RevisionSessionTest, PerCallPathBuildsWorkerContextsOncePerCall) {
  // The legacy (per-call state) parallel revision path reuses one pool
  // across its epochs too.
  CoreFixture s = MakeCoreSetup(704);
  auto sampler = MakeRevisionSampler(s, /*threads=*/4, /*batch_size=*/16);
  Rng rng = testing::FixedSeedRng(705);
  auto samples = sampler->Sample(600, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  EXPECT_GT(sampler->stats().revision_epochs, 1u);
  EXPECT_EQ(s.factory_calls, 4u);
  EXPECT_EQ(sampler->stats().parallel_workers, 4u);
}

TEST(RevisionSessionTest, StateBindsToItsFirstSampler) {
  CoreFixture s = MakeCoreSetup(706);
  auto a = MakeRevisionSampler(s, 2, 32);
  auto b = MakeRevisionSampler(s, 2, 32);
  RevisionState state;
  Rng rng = testing::FixedSeedRng(707);
  ASSERT_TRUE(a->Sample(40, rng, state).ok());
  EXPECT_TRUE(state.initialized());
  auto migrated = b->Sample(40, rng, state);
  EXPECT_EQ(migrated.status().code(), StatusCode::kInvalidArgument);
  // The bound sampler keeps working.
  EXPECT_TRUE(a->Sample(40, rng, state).ok());
}

TEST(RevisionSessionTest, ResumableRequiresRevisionExecutorPath) {
  CoreFixture s = MakeCoreSetup(708);
  RevisionState state;
  Rng rng = testing::FixedSeedRng(709);
  // Sequential revision sampler (no factory): resumable entry refused.
  UnionSampler::Options seq;
  seq.mode = UnionSampler::Mode::kRevision;
  auto factory = s.CountingFactory();
  auto samplers = factory();
  ASSERT_TRUE(samplers.ok());
  auto sequential = UnionSampler::Create(s.joins, std::move(*samplers),
                                         s.estimates, {}, seq)
                        .value();
  EXPECT_EQ(sequential->Sample(10, rng, state).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(state.initialized());
}

TEST(RevisionSessionTest, CoreSplitEqualsWholeAndCountersAgree) {
  // Same guarantee as the service-level test, at the core API — plus
  // counter equality: the generation schedule (epochs, batches, claims)
  // is chunking-independent, so the deterministic counters agree between
  // a one-shot state and a chunked state, not just the bytes.
  CoreFixture s = MakeCoreSetup(710);
  std::vector<std::string> reference;
  std::vector<uint64_t> reference_counters;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    for (const std::vector<size_t>& split :
         std::vector<std::vector<size_t>>{{240}, {80, 80, 80}, {7, 233}}) {
      auto sampler = MakeRevisionSampler(s, threads, /*batch_size=*/32);
      RevisionState state;
      Rng rng = testing::FixedSeedRng(711);
      std::vector<std::string> got;
      for (size_t n : split) {
        auto samples = sampler->Sample(n, rng, state);
        ASSERT_TRUE(samples.ok()) << samples.status().ToString();
        ASSERT_EQ(samples->size(), n);
        auto enc = Encodings(*samples);
        got.insert(got.end(), enc.begin(), enc.end());
      }
      const auto& st = sampler->stats();
      std::vector<uint64_t> counters = {
          st.rounds,       st.join_draws,        st.accepted,
          st.rejected_cover, st.revisions,       st.removed_by_revision,
          st.abandoned_rounds, st.parallel_batches, st.revision_epochs,
          st.reconcile_dropped};
      // Conservation: accepted − purged − dropped == delivered + buffered.
      EXPECT_EQ(st.accepted - st.removed_by_revision - st.reconcile_dropped,
                state.delivered() + state.buffered());
      EXPECT_EQ(state.delivered(), 240u);
      if (reference.empty()) {
        reference = got;
        reference_counters = counters;
      } else {
        EXPECT_EQ(got, reference)
            << "threads=" << threads << " splits=" << split.size();
        EXPECT_EQ(counters, reference_counters)
            << "threads=" << threads << " splits=" << split.size();
      }
    }
  }
}

}  // namespace
}  // namespace suj
