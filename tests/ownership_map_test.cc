// Tests for core/ownership_map: the sequential protocol's
// accept/drop/revise/purge semantics under epoch replay, and a
// claim/reconcile churn stress that exercises the Owner()-vs-Reconcile()
// synchronization contract (run under TSan in the debug-tsan CI suite).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/ownership_map.h"
#include "storage/value.h"

namespace suj {
namespace {

Tuple T(int64_t v) { return Tuple({Value::Int64(v)}); }

TEST(OwnershipMapTest, UnclaimedIsMinusOne) {
  OwnershipMap map;
  EXPECT_EQ(map.Owner(T(1).Encode()), -1);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.epochs(), 0u);
}

TEST(OwnershipMapTest, SequentialProtocolSemantics) {
  OwnershipMap map;
  std::vector<Tuple> result;
  std::vector<std::string> keys;

  // Epoch 1: A claimed twice by join 2 (duplicates from the owner are
  // legitimate — sampling is with replacement), B by join 1.
  {
    std::vector<OwnershipClaim> claims = {
        {T(1).Encode(), 2}, {T(1).Encode(), 2}, {T(2).Encode(), 1}};
    std::vector<Tuple> tuples = {T(1), T(1), T(2)};
    ReconcileOutcome out =
        map.Reconcile(std::move(claims), std::move(tuples), &result, &keys);
    EXPECT_EQ(out.appended, 3u);
    EXPECT_EQ(out.dropped, 0u);
    EXPECT_EQ(out.revisions, 0u);
    EXPECT_EQ(out.purged, 0u);
    EXPECT_EQ(map.Owner(T(1).Encode()), 2);
    EXPECT_EQ(map.Owner(T(2).Encode()), 1);
    EXPECT_EQ(result.size(), 3u);
  }

  // Epoch 2: A re-claimed by join 0 — a revision that purges BOTH standing
  // copies from the earlier epoch before appending the new one; B claimed
  // by join 3 — dropped (join 1 owns it).
  {
    std::vector<OwnershipClaim> claims = {{T(1).Encode(), 0},
                                          {T(2).Encode(), 3}};
    std::vector<Tuple> tuples = {T(1), T(2)};
    ReconcileOutcome out =
        map.Reconcile(std::move(claims), std::move(tuples), &result, &keys);
    EXPECT_EQ(out.appended, 1u);
    EXPECT_EQ(out.dropped, 1u);
    EXPECT_EQ(out.revisions, 1u);
    EXPECT_EQ(out.purged, 2u);
    EXPECT_EQ(map.Owner(T(1).Encode()), 0);
    EXPECT_EQ(map.Owner(T(2).Encode()), 1);
    ASSERT_EQ(result.size(), 2u);
    // Purge removed the stale copies in place; the revised copy appended.
    EXPECT_EQ(result[0].Encode(), T(2).Encode());
    EXPECT_EQ(result[1].Encode(), T(1).Encode());
  }

  // Epoch 3: within-epoch (cross-batch) collision on a fresh value C:
  // claimed by join 2, revised to join 1, then a later join-2 claim of the
  // now-owned value drops.
  {
    std::vector<OwnershipClaim> claims = {
        {T(3).Encode(), 2}, {T(3).Encode(), 1}, {T(3).Encode(), 2}};
    std::vector<Tuple> tuples = {T(3), T(3), T(3)};
    ReconcileOutcome out =
        map.Reconcile(std::move(claims), std::move(tuples), &result, &keys);
    EXPECT_EQ(out.appended, 2u);
    EXPECT_EQ(out.dropped, 1u);
    EXPECT_EQ(out.revisions, 1u);
    EXPECT_EQ(out.purged, 1u);
    EXPECT_EQ(map.Owner(T(3).Encode()), 1);
  }

  EXPECT_EQ(map.epochs(), 3u);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(result.size(), keys.size());

  // The lock-free fan-out view agrees with the locked accessor.
  OwnershipMap::View view = map.UnsynchronizedView();
  EXPECT_EQ(view.Owner(T(1).Encode()), 0);
  EXPECT_EQ(view.Owner(T(2).Encode()), 1);
  EXPECT_EQ(view.Owner(T(3).Encode()), 1);
  EXPECT_EQ(view.Owner(T(99).Encode()), -1);
}

// Concurrent claim/reconcile churn: reader threads hammer Owner() while
// the reconciler applies epoch after epoch. Under TSan this verifies the
// shared/exclusive locking of the map; the final owners must equal the
// minimum join ever claimed per key (ownership only ever migrates to
// earlier joins).
constexpr uint64_t kKeys = 64;
constexpr int kJoins = 5;
constexpr int kEpochs = 200;

TEST(OwnershipMapTest, ConcurrentClaimReconcileChurn) {
  OwnershipMap map;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> lookups{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&map, &stop, &lookups, r] {
      Rng rng(500 + static_cast<uint64_t>(r));
      uint64_t count = 0;
      // A floor of lookups keeps the race meaningful even when the
      // scheduler starts this thread only after the reconciler is done
      // (single-core CI under load).
      while (count < 200 || !stop.load(std::memory_order_relaxed)) {
        std::string key = T(static_cast<int64_t>(rng.UniformInt(kKeys)))
                              .Encode();
        int owner = map.Owner(key);
        ASSERT_GE(owner, -1);
        ASSERT_LT(owner, kJoins);
        ++count;
      }
      lookups.fetch_add(count, std::memory_order_relaxed);
    });
  }

  std::vector<Tuple> result;
  std::vector<std::string> keys;
  std::vector<int> expected_min(kKeys, -1);
  Rng rng(499);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    std::vector<OwnershipClaim> claims;
    std::vector<Tuple> tuples;
    for (int i = 0; i < 32; ++i) {
      int64_t v = static_cast<int64_t>(rng.UniformInt(kKeys));
      int join = static_cast<int>(rng.UniformInt(kJoins));
      claims.push_back(OwnershipClaim{T(v).Encode(), join});
      tuples.push_back(T(v));
      int& m = expected_min[static_cast<size_t>(v)];
      if (m < 0 || join < m) m = join;
    }
    map.Reconcile(std::move(claims), std::move(tuples), &result, &keys);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(map.epochs(), static_cast<uint64_t>(kEpochs));
  EXPECT_GT(lookups.load(), 0u);
  ASSERT_EQ(result.size(), keys.size());
  for (uint64_t v = 0; v < kKeys; ++v) {
    EXPECT_EQ(map.Owner(T(static_cast<int64_t>(v)).Encode()),
              expected_min[v])
        << "key " << v;
  }
}

}  // namespace
}  // namespace suj
