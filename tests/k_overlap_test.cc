// Tests for core/k_overlap: Theorem 3's A^k_j recovery and the Eq-1 union
// size, validated against brute-force set decompositions of random set
// systems (property-style TEST_P sweeps).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "core/k_overlap.h"

namespace suj {
namespace {

// A random family of n sets over a small integer universe.
std::vector<std::set<int>> RandomSets(int n, int universe, double density,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<std::set<int>> sets(n);
  for (int j = 0; j < n; ++j) {
    for (int u = 0; u < universe; ++u) {
      if (rng.Bernoulli(density)) sets[j].insert(u);
    }
  }
  return sets;
}

// Exact |O_mask| by intersection.
double ExactOverlap(const std::vector<std::set<int>>& sets, SubsetMask mask) {
  auto members = MaskToIndices(mask);
  double count = 0;
  for (int u : sets[members[0]]) {
    bool in_all = true;
    for (size_t i = 1; i < members.size() && in_all; ++i) {
      in_all = sets[members[i]].count(u) > 0;
    }
    if (in_all) ++count;
  }
  return count;
}

// Brute-force |A^k_j|: elements of set j present in exactly k sets total.
double BruteForceAkj(const std::vector<std::set<int>>& sets, int j, int k) {
  double count = 0;
  for (int u : sets[j]) {
    int containing = 0;
    for (const auto& s : sets) containing += s.count(u) > 0 ? 1 : 0;
    if (containing == k) ++count;
  }
  return count;
}

struct Params {
  int n;
  int universe;
  double density;
  uint64_t seed;
};

class KOverlapSweep : public ::testing::TestWithParam<Params> {};

TEST_P(KOverlapSweep, RecoversBruteForceDecomposition) {
  const Params p = GetParam();
  auto sets = RandomSets(p.n, p.universe, p.density, p.seed);
  auto table = SolveKOverlaps(p.n, [&](SubsetMask mask) -> Result<double> {
    return ExactOverlap(sets, mask);
  });
  ASSERT_TRUE(table.ok());
  for (int j = 0; j < p.n; ++j) {
    for (int k = 1; k <= p.n; ++k) {
      EXPECT_NEAR(table->At(j, k), BruteForceAkj(sets, j, k), 1e-9)
          << "A^" << k << "_" << j;
    }
  }
  // Eq 1 recovers the exact union size.
  std::set<int> uni;
  for (const auto& s : sets) uni.insert(s.begin(), s.end());
  EXPECT_NEAR(table->UnionSize(), static_cast<double>(uni.size()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KOverlapSweep,
    ::testing::Values(Params{2, 30, 0.5, 1}, Params{2, 30, 0.9, 2},
                      Params{3, 40, 0.5, 3}, Params{3, 40, 0.2, 4},
                      Params{4, 50, 0.6, 5}, Params{4, 50, 0.3, 6},
                      Params{5, 60, 0.5, 7}, Params{5, 25, 0.8, 8},
                      Params{6, 40, 0.4, 9}, Params{1, 20, 0.5, 10}));

TEST(KOverlapTest, SingleJoin) {
  auto table = SolveKOverlaps(1, [](SubsetMask) -> Result<double> {
    return 42.0;
  });
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->At(0, 1), 42.0);
  EXPECT_DOUBLE_EQ(table->UnionSize(), 42.0);
}

TEST(KOverlapTest, IdenticalSets) {
  // Three identical sets of size 10: A^3_j = 10, everything else 0, union
  // size 10.
  auto table = SolveKOverlaps(3, [](SubsetMask) -> Result<double> {
    return 10.0;
  });
  ASSERT_TRUE(table.ok());
  for (int j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(table->At(j, 3), 10.0);
    EXPECT_DOUBLE_EQ(table->At(j, 2), 0.0);
    EXPECT_DOUBLE_EQ(table->At(j, 1), 0.0);
  }
  EXPECT_DOUBLE_EQ(table->UnionSize(), 10.0);
}

TEST(KOverlapTest, DisjointSets) {
  auto table = SolveKOverlaps(3, [](SubsetMask mask) -> Result<double> {
    return PopCount(mask) == 1 ? 5.0 : 0.0;
  });
  ASSERT_TRUE(table.ok());
  for (int j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(table->At(j, 1), 5.0);
    EXPECT_DOUBLE_EQ(table->At(j, 2), 0.0);
  }
  EXPECT_DOUBLE_EQ(table->UnionSize(), 15.0);
}

TEST(KOverlapTest, ClampsNegativeEstimates) {
  // Inconsistent (over-)estimates of high-order overlaps must not produce
  // negative A^k values.
  auto table = SolveKOverlaps(3, [](SubsetMask mask) -> Result<double> {
    // Claim a huge triple overlap but small pairwise overlaps.
    if (PopCount(mask) == 3) return 100.0;
    if (PopCount(mask) == 2) return 1.0;
    return 50.0;
  });
  ASSERT_TRUE(table.ok());
  for (int j = 0; j < 3; ++j) {
    for (int k = 1; k <= 3; ++k) {
      EXPECT_GE(table->At(j, k), 0.0);
    }
  }
}

TEST(KOverlapTest, PropagatesOracleErrors) {
  auto table = SolveKOverlaps(2, [](SubsetMask) -> Result<double> {
    return Status::Internal("boom");
  });
  EXPECT_FALSE(table.ok());
}

TEST(KOverlapTest, RejectsBadArity) {
  auto oracle = [](SubsetMask) -> Result<double> { return 1.0; };
  EXPECT_FALSE(SolveKOverlaps(0, oracle).ok());
  EXPECT_FALSE(SolveKOverlaps(64, oracle).ok());
}

}  // namespace
}  // namespace suj
