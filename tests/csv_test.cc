// Tests for storage/csv: round-trips, quoting, malformed input.

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"
#include "storage/csv.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

RelationPtr MixedRelation() {
  RelationBuilder builder("mixed", Schema({{"k", ValueType::kInt64},
                                           {"w", ValueType::kDouble},
                                           {"s", ValueType::kString}}));
  SUJ_CHECK(builder
                .AppendRow({Value::Int64(1), Value::Double(1.5),
                            Value::String("plain")})
                .ok());
  SUJ_CHECK(builder
                .AppendRow({Value::Int64(-7), Value::Double(0.1),
                            Value::String("with,comma")})
                .ok());
  SUJ_CHECK(builder
                .AppendRow({Value::Int64(0), Value::Double(-2.25),
                            Value::String("with \"quotes\"")})
                .ok());
  return builder.Finish();
}

TEST(CsvTest, RoundTripPreservesEverything) {
  RelationPtr original = MixedRelation();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*original, &out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadCsv(&in, "mixed2", original->schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_rows(), original->num_rows());
  for (size_t row = 0; row < original->num_rows(); ++row) {
    EXPECT_EQ((*loaded)->GetTuple(row).Encode(),
              original->GetTuple(row).Encode())
        << "row " << row;
  }
}

TEST(CsvTest, HeaderValidation) {
  Schema schema({{"a", ValueType::kInt64}});
  std::istringstream wrong_name("b\n1\n");
  EXPECT_FALSE(ReadCsv(&wrong_name, "r", schema).ok());
  std::istringstream wrong_arity("a,b\n1,2\n");
  EXPECT_FALSE(ReadCsv(&wrong_arity, "r", schema).ok());
  std::istringstream empty("");
  EXPECT_FALSE(ReadCsv(&empty, "r", schema).ok());
}

TEST(CsvTest, TypeValidation) {
  Schema schema({{"a", ValueType::kInt64}});
  std::istringstream not_int("a\nxyz\n");
  auto result = ReadCsv(&not_int, "r", schema);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  Schema dschema({{"d", ValueType::kDouble}});
  std::istringstream not_double("d\n1.2.3\n");
  EXPECT_FALSE(ReadCsv(&not_double, "r", dschema).ok());
}

TEST(CsvTest, QuotedCellsAndCrlf) {
  Schema schema({{"s", ValueType::kString}, {"k", ValueType::kInt64}});
  std::istringstream in("s,k\r\n\"a,b\",1\r\n\"say \"\"hi\"\"\",2\r\n");
  auto loaded = ReadCsv(&in, "r", schema);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_rows(), 2u);
  EXPECT_EQ((*loaded)->GetString(0, 0), "a,b");
  EXPECT_EQ((*loaded)->GetString(1, 0), "say \"hi\"");
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  Schema schema({{"s", ValueType::kString}});
  std::istringstream in("s\n\"oops\n");
  EXPECT_FALSE(ReadCsv(&in, "r", schema).ok());
}

TEST(CsvTest, EmptyLinesSkipped) {
  Schema schema({{"a", ValueType::kInt64}});
  std::istringstream in("a\n1\n\n2\n");
  auto loaded = ReadCsv(&in, "r", schema);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_rows(), 2u);
}

TEST(CsvTest, FileRoundTrip) {
  RelationPtr original = MixedRelation();
  std::string path = ::testing::TempDir() + "/suj_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*original, path).ok());
  auto loaded = ReadCsvFile(path, "back", original->schema());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_rows(), original->num_rows());
  EXPECT_FALSE(ReadCsvFile("/nonexistent/nope.csv", "r",
                           original->schema())
                   .ok());
}

TEST(CsvTest, DoubleRoundTripExact) {
  RelationBuilder builder("d", Schema({{"w", ValueType::kDouble}}));
  ASSERT_TRUE(builder.AppendRow({Value::Double(0.1)}).ok());
  ASSERT_TRUE(builder.AppendRow({Value::Double(1e-300)}).ok());
  ASSERT_TRUE(builder.AppendRow({Value::Double(12345.6789012345678)}).ok());
  RelationPtr original = builder.Finish();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*original, &out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadCsv(&in, "d2", original->schema());
  ASSERT_TRUE(loaded.ok());
  for (size_t row = 0; row < original->num_rows(); ++row) {
    EXPECT_EQ((*loaded)->GetDouble(row, 0), original->GetDouble(row, 0));
  }
}

}  // namespace
}  // namespace suj
