// Tests for join/full_join: the executor against the brute-force
// reference, across chain / acyclic / cyclic joins and predicates.

#include <gtest/gtest.h>

#include <algorithm>

#include "join/full_join.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::MakeRelation;
using workloads::MakeStarJoin;
using workloads::MakeTriangleJoin;
using workloads::SyntheticChainOptions;

std::multiset<std::string> Encodings(const JoinResult& result) {
  std::multiset<std::string> out;
  for (const auto& t : result.tuples) out.insert(t.Encode());
  return out;
}

TEST(FullJoinTest, TwoRelationChain) {
  auto r = MakeRelation("r", {"a", "b"}, {{1, 10}, {2, 20}, {3, 10}}).value();
  auto s = MakeRelation("s", {"b", "c"}, {{10, 100}, {10, 200}, {30, 300}})
               .value();
  auto join = JoinSpec::Create("j", {r, s}).value();
  FullJoinExecutor executor;
  auto result = executor.Execute(join);
  ASSERT_TRUE(result.ok());
  // b=10 matches rows a=1,a=3 with c=100,c=200 -> 4 tuples.
  EXPECT_EQ(result->size(), 4u);
  EXPECT_EQ(Encodings(*result), testing::BruteForceJoin(join));
}

TEST(FullJoinTest, MatchesBruteForceOnRandomChains) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    SyntheticChainOptions options;
    options.num_joins = 1;
    options.num_relations = 3;
    options.master_rows = 12;
    options.seed = seed;
    options.mode = workloads::OverlapMode::kIdentical;
    auto joins = MakeOverlappingChains(options).value();
    FullJoinExecutor executor;
    auto result = executor.Execute(joins[0]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Encodings(*result), testing::BruteForceJoin(joins[0]))
        << "seed " << seed;
  }
}

TEST(FullJoinTest, StarJoinMatchesBruteForce) {
  auto join = MakeStarJoin(10, 7).value();
  ASSERT_EQ(join->type(), JoinType::kAcyclic);
  FullJoinExecutor executor;
  auto result = executor.Execute(join);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Encodings(*result), testing::BruteForceJoin(join));
}

TEST(FullJoinTest, TriangleJoinMatchesBruteForce) {
  auto join = MakeTriangleJoin(12, 3).value();
  ASSERT_EQ(join->type(), JoinType::kCyclic);
  FullJoinExecutor executor;
  auto result = executor.Execute(join);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Encodings(*result), testing::BruteForceJoin(join));
}

TEST(FullJoinTest, SelfJoinStyleSharedKeys) {
  // Three relations all sharing attribute k (clique), joined as a declared
  // chain; the result must satisfy the transitive equality.
  auto r1 = MakeRelation("r1", {"k", "x"}, {{1, 1}, {2, 2}}).value();
  auto r2 = MakeRelation("r2", {"k", "y"}, {{1, 5}, {1, 6}, {2, 7}}).value();
  auto r3 = MakeRelation("r3", {"k", "z"}, {{1, 9}, {3, 8}}).value();
  auto join = JoinSpec::Create("j", {r1, r2, r3}, {{0, 1}, {1, 2}}).value();
  FullJoinExecutor executor;
  auto result = executor.Execute(join);
  ASSERT_TRUE(result.ok());
  // k=1: 1 * 2 * 1 = 2 results; k=2: r3 has no k=2 -> 0.
  EXPECT_EQ(result->size(), 2u);
  EXPECT_EQ(Encodings(*result), testing::BruteForceJoin(join));
}

TEST(FullJoinTest, EmptyResult) {
  auto r = MakeRelation("r", {"a", "b"}, {{1, 10}}).value();
  auto s = MakeRelation("s", {"b", "c"}, {{99, 1}}).value();
  auto join = JoinSpec::Create("j", {r, s}).value();
  FullJoinExecutor executor;
  auto result = executor.Execute(join);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST(FullJoinTest, EmptyBaseRelation) {
  auto r = MakeRelation("r", {"a", "b"}, {}).value();
  auto s = MakeRelation("s", {"b", "c"}, {{1, 2}}).value();
  auto join = JoinSpec::Create("j", {r, s}).value();
  FullJoinExecutor executor;
  auto result = executor.Execute(join);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST(FullJoinTest, PredicatesFilterOutput) {
  auto r = MakeRelation("r", {"a", "b"}, {{1, 10}, {2, 20}}).value();
  auto s = MakeRelation("s", {"b", "c"}, {{10, 1}, {20, 2}}).value();
  auto join = JoinSpec::Create(
                  "j", {r, s}, {},
                  {Predicate("a", CompareOp::kEq, Value::Int64(2))})
                  .value();
  FullJoinExecutor executor;
  auto result = executor.Execute(join);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(Encodings(*result), testing::BruteForceJoin(join));
}

TEST(FullJoinTest, CountMatchesExecute) {
  auto join = MakeTriangleJoin(15, 5).value();
  FullJoinExecutor executor;
  auto count = executor.Count(join);
  auto result = executor.Execute(join);
  ASSERT_TRUE(count.ok() && result.ok());
  EXPECT_EQ(*count, result->size());
}

TEST(FullJoinTest, IntermediateGuardTrips) {
  // A high-fanout cross-ish join exceeds a tiny intermediate budget.
  std::vector<std::vector<int64_t>> rows;
  for (int i = 0; i < 40; ++i) rows.push_back({0, i});
  auto r = MakeRelation("r", {"a", "b"}, rows).value();
  std::vector<std::vector<int64_t>> rows2;
  for (int i = 0; i < 40; ++i) rows2.push_back({i, 0});
  auto s = MakeRelation("s", {"b", "c"}, rows2).value();
  auto join = JoinSpec::Create("j", {r, s}).value();
  FullJoinExecutor executor(nullptr, /*max_intermediate_rows=*/10);
  auto result = executor.Execute(join);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(FullJoinTest, OutputSchemaIsJoinOutputSchema) {
  auto r = MakeRelation("r", {"b", "a"}, {{1, 2}}).value();
  auto s = MakeRelation("s", {"b", "c"}, {{1, 3}}).value();
  auto join = JoinSpec::Create("j", {r, s}).value();
  FullJoinExecutor executor;
  auto result = executor.Execute(join);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema, join->output_schema());
  ASSERT_EQ(result->size(), 1u);
  // Sorted attribute order: a=2, b=1, c=3.
  EXPECT_EQ(result->tuples[0].value(0), Value::Int64(2));
  EXPECT_EQ(result->tuples[0].value(1), Value::Int64(1));
  EXPECT_EQ(result->tuples[0].value(2), Value::Int64(3));
}

}  // namespace
}  // namespace suj
