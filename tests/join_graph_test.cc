// Tests for join/join_graph and join/join_spec: classification, walk
// orders, spanning trees, hidden constraints, output schemas.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "join/join_spec.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeRelation;

RelationPtr Rel(const std::string& name,
                const std::vector<std::string>& attrs) {
  std::vector<std::vector<int64_t>> rows = {{0}};
  rows[0].assign(attrs.size(), 0);
  return MakeRelation(name, attrs, rows).value();
}

TEST(JoinGraphTest, SingleRelationIsChain) {
  auto spec = JoinSpec::Create("j", {Rel("r", {"a"})});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->type(), JoinType::kChain);
  EXPECT_EQ((*spec)->graph().walk_order(), std::vector<int>{0});
}

TEST(JoinGraphTest, TwoRelationChain) {
  auto spec =
      JoinSpec::Create("j", {Rel("r", {"a", "b"}), Rel("s", {"b", "c"})});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->type(), JoinType::kChain);
  const auto& graph = (*spec)->graph();
  ASSERT_EQ(graph.edges().size(), 1u);
  EXPECT_EQ(graph.edges()[0].attrs, std::vector<std::string>{"b"});
  EXPECT_TRUE(graph.tree_captures_all_constraints());
}

TEST(JoinGraphTest, ChainWalkOrderFollowsPath) {
  auto spec = JoinSpec::Create(
      "j", {Rel("r1", {"a", "b"}), Rel("r2", {"b", "c"}),
            Rel("r3", {"c", "d"}), Rel("r4", {"d", "e"})});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->type(), JoinType::kChain);
  const auto& order = (*spec)->graph().walk_order();
  // Path order from one endpoint: either 0,1,2,3 or 3,2,1,0.
  EXPECT_TRUE(order == (std::vector<int>{0, 1, 2, 3}) ||
              order == (std::vector<int>{3, 2, 1, 0}));
  // Every step past the first binds exactly one attribute.
  for (size_t pos = 1; pos < order.size(); ++pos) {
    EXPECT_EQ((*spec)->graph().bound_attrs()[pos].size(), 1u);
  }
}

TEST(JoinGraphTest, ThreeNodeStarIsTopologicallyAChain) {
  // A hub with two leaves is a path (l1 - hub - l2): chain, not acyclic.
  auto spec = JoinSpec::Create(
      "j", {Rel("hub", {"a", "b", "c"}), Rel("l1", {"b", "d"}),
            Rel("l2", {"c", "e"})});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->type(), JoinType::kChain);
}

TEST(JoinGraphTest, StarIsAcyclic) {
  // A hub of degree 3 cannot be a path: acyclic (tree) classification.
  auto spec = JoinSpec::Create(
      "j", {Rel("hub", {"a", "b", "c", "d"}), Rel("l1", {"b", "e"}),
            Rel("l2", {"c", "f"}), Rel("l3", {"d", "g"})});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->type(), JoinType::kAcyclic);
  EXPECT_TRUE((*spec)->graph().tree_captures_all_constraints());
}

TEST(JoinGraphTest, TriangleIsCyclic) {
  auto spec = JoinSpec::Create(
      "j", {Rel("r", {"a", "b"}), Rel("s", {"b", "c"}), Rel("t", {"c", "a"})});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->type(), JoinType::kCyclic);
  EXPECT_FALSE((*spec)->graph().tree_captures_all_constraints());
  // The last relation in the walk binds both its attributes.
  const auto& bound = (*spec)->graph().bound_attrs();
  EXPECT_EQ(bound.back().size(), 2u);
}

TEST(JoinGraphTest, SharedAttributeCliqueIsImpliedByDeclaredChain) {
  // nationkey lives in three relations; the declared chain still captures
  // the transitive equality, so the join is a chain, not cyclic.
  auto sup = Rel("sup", {"suppkey", "nationkey"});
  auto nat = Rel("nat", {"nationkey", "n_name"});
  auto cust = Rel("cust", {"custkey", "nationkey"});
  auto spec = JoinSpec::Create("j", {sup, nat, cust}, {{0, 1}, {1, 2}});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->type(), JoinType::kChain);
  EXPECT_TRUE((*spec)->graph().tree_captures_all_constraints());
}

TEST(JoinGraphTest, HiddenConstraintMakesDeclaredTreeCyclic) {
  // Declared chain r1 - r2 - r3, but r1 and r3 share `x` which r2 lacks:
  // the equality r1.x = r3.x is NOT implied by the tree.
  auto r1 = Rel("r1", {"a", "x"});
  auto r2 = Rel("r2", {"a", "b"});
  auto r3 = Rel("r3", {"b", "x"});
  auto spec = JoinSpec::Create("j", {r1, r2, r3}, {{0, 1}, {1, 2}});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->type(), JoinType::kCyclic);
  EXPECT_FALSE((*spec)->graph().tree_captures_all_constraints());
}

TEST(JoinGraphTest, DisconnectedJoinRejected) {
  auto spec =
      JoinSpec::Create("j", {Rel("r", {"a", "b"}), Rel("s", {"c", "d"})});
  EXPECT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

TEST(JoinGraphTest, DeclaredEdgeWithoutSharedAttrRejected) {
  auto spec = JoinSpec::Create(
      "j", {Rel("r", {"a", "b"}), Rel("s", {"b", "c"}), Rel("t", {"c", "d"})},
      {{0, 2}, {0, 1}});
  EXPECT_FALSE(spec.ok());
}

TEST(JoinGraphTest, DuplicateDeclaredEdgeRejected) {
  auto spec = JoinSpec::Create(
      "j", {Rel("r", {"a", "b"}), Rel("s", {"b", "c"})}, {{0, 1}, {1, 0}});
  EXPECT_FALSE(spec.ok());
}

TEST(JoinGraphTest, SpanningTreeStructure) {
  auto spec = JoinSpec::Create(
      "j", {Rel("hub", {"a", "b", "c"}), Rel("l1", {"b", "d"}),
            Rel("l2", {"c", "e"})});
  ASSERT_TRUE(spec.ok());
  const auto& graph = (*spec)->graph();
  int roots = 0;
  for (int r = 0; r < graph.num_relations(); ++r) {
    if (graph.tree_parent()[r] < 0) ++roots;
  }
  EXPECT_EQ(roots, 1);
  EXPECT_EQ(graph.tree_order().size(), 3u);
  // Parents precede children in tree order.
  std::vector<int> position(3);
  for (int i = 0; i < 3; ++i) position[graph.tree_order()[i]] = i;
  for (int r = 0; r < 3; ++r) {
    if (graph.tree_parent()[r] >= 0) {
      EXPECT_LT(position[graph.tree_parent()[r]], position[r]);
    }
  }
}

TEST(JoinSpecTest, OutputSchemaSortedAndTyped) {
  auto spec =
      JoinSpec::Create("j", {Rel("r", {"b", "a"}), Rel("s", {"a", "c"})});
  ASSERT_TRUE(spec.ok());
  const Schema& out = (*spec)->output_schema();
  ASSERT_EQ(out.num_fields(), 3u);
  EXPECT_EQ(out.field(0).name, "a");
  EXPECT_EQ(out.field(1).name, "b");
  EXPECT_EQ(out.field(2).name, "c");
}

TEST(JoinSpecTest, ConflictingAttributeTypesRejected) {
  RelationBuilder b1("r", Schema({{"a", ValueType::kInt64}}));
  ASSERT_TRUE(b1.AppendRow({Value::Int64(1)}).ok());
  RelationBuilder b2("s", Schema({{"a", ValueType::kString},
                                  {"b", ValueType::kInt64}}));
  ASSERT_TRUE(b2.AppendRow({Value::String("x"), Value::Int64(1)}).ok());
  auto spec = JoinSpec::Create("j", {b1.Finish(), b2.Finish()});
  EXPECT_FALSE(spec.ok());
}

TEST(JoinSpecTest, ValidateUnionCompatible) {
  auto j1 =
      JoinSpec::Create("a", {Rel("r", {"a", "b"}), Rel("s", {"b", "c"})})
          .value();
  auto j2 =
      JoinSpec::Create("b", {Rel("t", {"a", "b", "c"})}).value();
  EXPECT_TRUE(ValidateUnionCompatible({j1, j2}).ok());
  auto j3 = JoinSpec::Create("c", {Rel("u", {"a", "b"})}).value();
  EXPECT_FALSE(ValidateUnionCompatible({j1, j3}).ok());
  EXPECT_FALSE(ValidateUnionCompatible({}).ok());
}

TEST(JoinSpecTest, PredicateEvaluation) {
  auto spec = JoinSpec::Create(
      "j", {Rel("r", {"a", "b"})}, {},
      {Predicate("a", CompareOp::kGe, Value::Int64(0))});
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE((*spec)->has_predicates());
  EXPECT_TRUE(
      (*spec)->SatisfiesPredicates(Tuple({Value::Int64(1), Value::Int64(0)})));
  EXPECT_FALSE((*spec)->SatisfiesPredicates(
      Tuple({Value::Int64(-1), Value::Int64(0)})));
}

TEST(JoinTypeNameTest, Renders) {
  EXPECT_STREQ(JoinTypeName(JoinType::kChain), "chain");
  EXPECT_STREQ(JoinTypeName(JoinType::kAcyclic), "acyclic");
  EXPECT_STREQ(JoinTypeName(JoinType::kCyclic), "cyclic");
}

}  // namespace
}  // namespace suj
