// Tests for workloads/: UQ1/UQ2/UQ3 construction, shapes, and semantics.

#include <gtest/gtest.h>

#include <set>

#include "core/exact_overlap.h"
#include "join/full_join.h"
#include "workloads/synthetic.h"
#include "workloads/tpch_workloads.h"

namespace suj {
namespace {

using workloads::BuildUQ1;
using workloads::BuildUQ2;
using workloads::BuildUQ3;

tpch::OverlapConfig SmallUQ1Config(double overlap) {
  tpch::OverlapConfig config;
  // Small but not tiny: UQ1 joins supplier and customer through the shared
  // 25-nation dimension, so both tables need enough rows per nation for
  // the chain to be non-empty.
  config.per_variant.scale_factor = 0.5;
  config.num_variants = 3;
  config.overlap_scale = overlap;
  return config;
}

TEST(UQ1Test, FiveVariantChains) {
  tpch::OverlapConfig config = SmallUQ1Config(0.2);
  config.num_variants = 5;
  auto workload = BuildUQ1(config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->joins.size(), 5u);
  for (const auto& join : workload->joins) {
    EXPECT_EQ(join->type(), JoinType::kChain);
    EXPECT_EQ(join->num_relations(), 5);
  }
  EXPECT_TRUE(ValidateUnionCompatible(workload->joins).ok());
}

TEST(UQ1Test, JoinsAreExecutableAndOverlap) {
  auto workload = BuildUQ1(SmallUQ1Config(0.5));
  ASSERT_TRUE(workload.ok());
  auto exact = ExactOverlapCalculator::Create(workload->joins);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  for (size_t j = 0; j < workload->joins.size(); ++j) {
    EXPECT_GT((*exact)->JoinSize(j), 0u) << "join " << j;
  }
  auto overlap = (*exact)->EstimateOverlap(0b111);
  ASSERT_TRUE(overlap.ok());
  EXPECT_GT(overlap.value(), 0.0) << "variants must share join results";
}

TEST(UQ1Test, OverlapGrowsWithOverlapScale) {
  auto low = BuildUQ1(SmallUQ1Config(0.1));
  auto high = BuildUQ1(SmallUQ1Config(0.8));
  ASSERT_TRUE(low.ok() && high.ok());
  auto exact_low = ExactOverlapCalculator::Create(low->joins).value();
  auto exact_high = ExactOverlapCalculator::Create(high->joins).value();
  double ratio_low = exact_low->EstimateOverlap(0b111).value() /
                     static_cast<double>(exact_low->UnionSize());
  double ratio_high = exact_high->EstimateOverlap(0b111).value() /
                      static_cast<double>(exact_high->UnionSize());
  EXPECT_GT(ratio_high, ratio_low);
}

TEST(UQ2Test, ThreePredicateVariantsOverlapHeavily) {
  tpch::TpchConfig config;
  config.scale_factor = 0.05;
  auto workload = BuildUQ2(config, /*pushdown=*/true);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->joins.size(), 3u);
  EXPECT_TRUE(ValidateUnionCompatible(workload->joins).ok());
  auto exact = ExactOverlapCalculator::Create(workload->joins);
  ASSERT_TRUE(exact.ok());
  // Same data, different predicates: the paper's "large overlap scale".
  double o = (*exact)->EstimateOverlap(0b111).value();
  double min_join = static_cast<double>(
      std::min({(*exact)->JoinSize(0), (*exact)->JoinSize(1),
                (*exact)->JoinSize(2)}));
  EXPECT_GT(o, 0.25 * min_join);
}

TEST(UQ2Test, PushdownAndOnTheFlyAgree) {
  tpch::TpchConfig config;
  config.scale_factor = 0.04;
  auto pushed = BuildUQ2(config, /*pushdown=*/true);
  auto lazy = BuildUQ2(config, /*pushdown=*/false);
  ASSERT_TRUE(pushed.ok() && lazy.ok());
  FullJoinExecutor executor;
  for (int q = 0; q < 3; ++q) {
    auto r1 = executor.Execute(pushed->joins[q]);
    auto r2 = executor.Execute(lazy->joins[q]);
    ASSERT_TRUE(r1.ok() && r2.ok());
    std::multiset<std::string> e1, e2;
    for (const auto& t : r1->tuples) e1.insert(t.Encode());
    for (const auto& t : r2->tuples) e2.insert(t.Encode());
    EXPECT_EQ(e1, e2) << "query " << q;
  }
}

TEST(UQ2Test, OnTheFlyJoinsCarryPredicates) {
  tpch::TpchConfig config;
  config.scale_factor = 0.04;
  auto lazy = BuildUQ2(config, /*pushdown=*/false);
  ASSERT_TRUE(lazy.ok());
  for (const auto& join : lazy->joins) {
    EXPECT_TRUE(join->has_predicates());
  }
}

TEST(UQ3Test, ShapesRequireSplitting) {
  tpch::TpchConfig config;
  config.scale_factor = 0.05;
  auto workload = BuildUQ3(config);
  ASSERT_TRUE(workload.ok());
  ASSERT_EQ(workload->joins.size(), 3u);
  EXPECT_TRUE(ValidateUnionCompatible(workload->joins).ok());
  // One acyclic join and two chain joins of different lengths.
  EXPECT_EQ(workload->joins[0]->type(), JoinType::kChain);
  EXPECT_EQ(workload->joins[0]->num_relations(), 3);
  EXPECT_EQ(workload->joins[1]->type(), JoinType::kChain);
  EXPECT_EQ(workload->joins[1]->num_relations(), 4);
  EXPECT_EQ(workload->joins[2]->type(), JoinType::kAcyclic);
  EXPECT_EQ(workload->joins[2]->num_relations(), 5);
}

TEST(UQ3Test, JoinsExecutableAndOverlapping) {
  tpch::TpchConfig config;
  config.scale_factor = 0.05;
  auto workload = BuildUQ3(config, /*window=*/0.9);
  ASSERT_TRUE(workload.ok());
  auto exact = ExactOverlapCalculator::Create(workload->joins);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  for (int j = 0; j < 3; ++j) {
    EXPECT_GT((*exact)->JoinSize(j), 0u);
  }
  EXPECT_GT((*exact)->EstimateOverlap(0b111).value(), 0.0);
}

TEST(UQ3Test, WindowValidation) {
  tpch::TpchConfig config;
  EXPECT_FALSE(BuildUQ3(config, 0.0).ok());
  EXPECT_FALSE(BuildUQ3(config, 1.5).ok());
}

TEST(SyntheticTest, SliceRelation) {
  auto rel = workloads::MakeRelation("r", {"a"}, {{0}, {1}, {2}, {3}, {4}})
                 .value();
  auto sliced = workloads::SliceRelation(rel, 0.2, 0.8, "s");
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ((*sliced)->num_rows(), 3u);
  EXPECT_EQ((*sliced)->GetInt64(0, 0), 1);
  EXPECT_FALSE(workloads::SliceRelation(rel, 0.8, 0.2, "bad").ok());
}

TEST(SyntheticTest, ProjectRelation) {
  auto rel =
      workloads::MakeRelation("r", {"a", "b", "c"}, {{1, 2, 3}, {4, 5, 6}})
          .value();
  auto projected = workloads::ProjectRelation(rel, {"c", "a"}, "p");
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ((*projected)->num_columns(), 2u);
  EXPECT_EQ((*projected)->GetInt64(0, 0), 3);
  EXPECT_EQ((*projected)->GetInt64(0, 1), 1);
  EXPECT_FALSE(workloads::ProjectRelation(rel, {"zz"}, "bad").ok());
}

TEST(SyntheticTest, OverlapModesBehave) {
  workloads::SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 15;
  options.mode = workloads::OverlapMode::kIdentical;
  auto identical = workloads::MakeOverlappingChains(options).value();
  auto exact_id = ExactOverlapCalculator::Create(identical).value();
  EXPECT_EQ(exact_id->UnionSize(), exact_id->JoinSize(0));

  options.mode = workloads::OverlapMode::kDisjoint;
  auto disjoint = workloads::MakeOverlappingChains(options).value();
  auto exact_dis = ExactOverlapCalculator::Create(disjoint).value();
  EXPECT_DOUBLE_EQ(exact_dis->EstimateOverlap(0b11).value(), 0.0);
}

}  // namespace
}  // namespace suj
