// End-to-end tests for the network front end (src/net/): server spawn on
// an ephemeral port, the full request surface over real TCP loopback,
// the wire determinism contract (wire bytes == in-process bytes, at
// worker_threads 1 and 4), remote surplus-cap enforcement with
// over-the-wire instrumentation, tenant quota shedding, connection-cap
// shedding, and idle-session reaping that leaves sibling sessions'
// sample streams untouched. Runs under the TSan CI job (`concurrency`
// label): server threads, stream producers, and client threads overlap.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "service/sampling_service.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using net::OpenSessionRequest;
using net::SujClient;
using net::SujServer;
using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

std::vector<JoinSpecPtr> MakeJoins(uint64_t seed, size_t master_rows = 20) {
  SyntheticChainOptions options;
  options.master_rows = master_rows;
  options.seed = seed;
  return MakeOverlappingChains(options).value();
}

// The resolver every test server uses: any query name of the form
// "chains<seed>" maps to a deterministic synthetic union, so wire
// clients and in-process baselines can prepare identical plans.
net::SpecResolver ChainsResolver() {
  return [](const std::string& name) -> Result<std::vector<JoinSpecPtr>> {
    if (name.rfind("chains", 0) != 0) {
      return Status::NotFound("unknown query '" + name + "'");
    }
    uint64_t seed = std::stoull(name.substr(6));
    return MakeJoins(seed);
  };
}

std::unique_ptr<SamplingService> MakeService(uint64_t seed) {
  ServiceOptions options;
  options.seed = seed;
  return SamplingService::Create(options).value();
}

struct ServerFixture {
  std::unique_ptr<SamplingService> service;
  std::unique_ptr<SujServer> server;

  explicit ServerFixture(uint64_t seed,
                         net::ServerOptions options = net::ServerOptions()) {
    service = MakeService(seed);
    server = std::make_unique<SujServer>(service.get(), ChainsResolver(),
                                         options);
    auto started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~ServerFixture() { server->Stop(); }

  SujClient Client(const std::string& tenant) {
    return SujClient::Connect("127.0.0.1", server->port(), tenant).value();
  }
};

// ---------------------------------------------------------------------------
// Basic request surface

TEST(SujServerTest, PrepareOpenSampleCloseOverTheWire) {
  ServerFixture fx(500);
  auto client = fx.Client("t");

  auto prepared = client.Prepare("chains500");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_GT(prepared.value().plan_id, 0u);
  EXPECT_GT(prepared.value().approx_memory_bytes, 0u);
  // Idempotent: a second Prepare reports the same pinned plan.
  EXPECT_EQ(client.Prepare("chains500").value().plan_id,
            prepared.value().plan_id);

  OpenSessionRequest open;
  open.query = "chains500";
  auto session = client.OpenSession(open);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  auto batch = client.Sample(session.value(), 40);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch.value().size(), 40u);
  // Tuples arrive as canonical encodings and decode cleanly.
  for (const auto& bytes : batch.value()) {
    EXPECT_TRUE(DecodeTuple(bytes).ok());
  }

  auto stats = client.SessionStats(session.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().tuples_delivered, 40u);
  EXPECT_EQ(stats.value().requests, 1u);

  EXPECT_TRUE(client.CloseSession(session.value()).ok());
  // Closed session: the error comes back over the wire, the connection
  // survives it.
  EXPECT_EQ(client.Sample(session.value(), 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(client.ServerStats().ok());
}

TEST(SujServerTest, UnknownQueryAndBadRequestsAreClean) {
  ServerFixture fx(501);
  auto client = fx.Client("t");
  EXPECT_EQ(client.Prepare("nope").status().code(), StatusCode::kNotFound);

  OpenSessionRequest open;
  open.query = "chains501";
  ASSERT_TRUE(client.Prepare("chains501").ok());
  open.mode = 42;  // invalid mode must be rejected server-side
  EXPECT_EQ(client.OpenSession(open).status().code(),
            StatusCode::kInvalidArgument);
  // Connection still usable after both errors.
  open.mode = 0;
  EXPECT_TRUE(client.OpenSession(open).ok());
}

TEST(SujServerTest, HelloVersionMismatchIsRejected) {
  ServerFixture fx(502);
  auto conn = ConnectTcp("127.0.0.1", fx.server->port()).value();
  net::HelloRequest hello;
  hello.version = net::kProtocolVersion + 1;
  hello.tenant = "t";
  ASSERT_TRUE(
      net::WriteFrame(conn, net::MessageType::kHello, hello.Encode()).ok());
  auto rsp = net::ReadFrame(conn).value();
  ASSERT_EQ(rsp.type, net::MessageType::kStatus);
  EXPECT_EQ(net::StatusPayload::Decode(rsp.body).value().ToStatus().code(),
            StatusCode::kInvalidArgument);
  EXPECT_GE(fx.server->StatsSnapshot().version_rejects, 1u);
}

// ---------------------------------------------------------------------------
// Metrics scrape (kMetrics frame -> Prometheus text)

// Extracts the value of a bare `name value` exposition line; -1 when the
// metric is absent.
int64_t ScrapedValue(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while ((pos = text.find(name + " ", pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::stoll(text.substr(pos + name.size() + 1));
    }
    ++pos;
  }
  return -1;
}

TEST(SujServerTest, MetricsScrapeExposesServingCounters) {
  ServerFixture fx(503);
  auto client = fx.Client("t");
  ASSERT_TRUE(client.Prepare("chains503").ok());
  OpenSessionRequest open;
  open.query = "chains503";
  auto session = client.OpenSession(open).value();
  ASSERT_TRUE(client.Sample(session, 16).ok());

  auto scrape = client.Metrics();
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  const std::string& text = scrape.value();

  // Counters are process-global (other suites in this binary feed them
  // too), so the assertions are lower bounds.
  EXPECT_NE(text.find("# TYPE suj_net_requests_total counter"),
            std::string::npos);
  EXPECT_GE(ScrapedValue(text, "suj_net_requests_total"), 3);
  EXPECT_GE(ScrapedValue(text, "suj_net_sample_requests_total"), 1);
  EXPECT_GE(ScrapedValue(text, "suj_net_connections_accepted_total"), 1);
  EXPECT_GE(ScrapedValue(text, "suj_service_prepares_total"), 1);
  EXPECT_GE(ScrapedValue(text, "suj_core_accepted_total"), 16);
  // Latency histograms render the full cumulative series.
  EXPECT_NE(text.find("# TYPE suj_net_request_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("suj_net_request_ns_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_GE(ScrapedValue(text, "suj_net_request_ns_count"), 3);
  EXPECT_GE(ScrapedValue(text, "suj_service_sample_ns_count"), 1);
  // Scrape-time gauges reflect THIS server's live state.
  EXPECT_EQ(ScrapedValue(text, "suj_sessions_open"), 1);
  EXPECT_EQ(ScrapedValue(text, "suj_plans_resident"), 1);
  EXPECT_GT(ScrapedValue(text, "suj_registry_resident_bytes"), 0);
}

// ---------------------------------------------------------------------------
// Wire determinism: the bytes a remote client receives are exactly the
// bytes an in-process caller with the same seed, session rank, and
// request sizes gets.

void CheckWireMatchesInProcess(uint32_t worker_threads, uint8_t mode) {
  const uint64_t seed = 510;
  ServerFixture fx(seed);
  auto baseline = MakeService(seed);
  ASSERT_TRUE(baseline->Prepare("chains510", MakeJoins(510)).ok());

  auto client = fx.Client("t");
  ASSERT_TRUE(client.Prepare("chains510").ok());

  OpenSessionRequest open;
  open.query = "chains510";
  open.mode = mode;
  open.worker_threads = worker_threads;
  auto wire_session = client.OpenSession(open);
  ASSERT_TRUE(wire_session.ok()) << wire_session.status().ToString();

  SessionOptions in_process;
  in_process.mode = mode == 2 ? SessionOptions::Mode::kRevision
                              : SessionOptions::Mode::kOracle;
  in_process.worker_threads = worker_threads;
  auto local_session = baseline->OpenSession("chains510", in_process).value();

  // Same request-size sequence on both sides.
  for (size_t n : {7u, 64u, 1u, 130u}) {
    auto wire = client.Sample(wire_session.value(), n);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    auto local = baseline->Sample(local_session, n);
    ASSERT_TRUE(local.ok());
    ASSERT_EQ(wire.value().size(), local.value().size());
    for (size_t i = 0; i < local.value().size(); ++i) {
      ASSERT_EQ(wire.value()[i], local.value()[i].Encode())
          << "divergence at tuple " << i << " (n=" << n
          << ", worker_threads=" << worker_threads << ")";
    }
  }
}

TEST(WireDeterminismTest, OracleMatchesInProcess) {
  CheckWireMatchesInProcess(/*worker_threads=*/1, /*mode=*/0);
}

TEST(WireDeterminismTest, RevisionMatchesInProcessSingleThread) {
  CheckWireMatchesInProcess(/*worker_threads=*/1, /*mode=*/2);
}

TEST(WireDeterminismTest, RevisionMatchesInProcessFourThreads) {
  // The acceptance bar: byte-identical at 4 server worker threads.
  CheckWireMatchesInProcess(/*worker_threads=*/4, /*mode=*/2);
}

TEST(WireDeterminismTest, StreamDeliversInProcessBytesInOrder) {
  const uint64_t seed = 511;
  ServerFixture fx(seed);
  auto baseline = MakeService(seed);
  ASSERT_TRUE(baseline->Prepare("chains511", MakeJoins(511)).ok());

  auto client = fx.Client("t");
  ASSERT_TRUE(client.Prepare("chains511").ok());
  OpenSessionRequest open;
  open.query = "chains511";
  open.mode = 2;  // revision: chunking-invariant by contract
  auto wire_session = client.OpenSession(open).value();

  SessionOptions in_process;
  in_process.mode = SessionOptions::Mode::kRevision;
  auto local_session = baseline->OpenSession("chains511", in_process).value();

  const size_t total = 300;
  const uint32_t chunk_size = 64;
  std::vector<std::string> wire_bytes;
  ASSERT_TRUE(client
                  .StreamSample(wire_session, total, chunk_size,
                                [&](const net::TupleChunk& chunk) {
                                  for (const auto& t : chunk.encoded_tuples) {
                                    wire_bytes.push_back(t);
                                  }
                                  return Status::OK();
                                })
                  .ok());
  ASSERT_EQ(wire_bytes.size(), total);

  auto stream = baseline->OpenStream(local_session, total,
                                     {.chunk_size = chunk_size}).value();
  size_t i = 0;
  for (;;) {
    auto batch = stream->Next();
    ASSERT_TRUE(batch.ok());
    if (batch.value().empty()) break;
    for (const auto& t : batch.value()) {
      ASSERT_LT(i, wire_bytes.size());
      ASSERT_EQ(wire_bytes[i], t.Encode()) << "divergence at tuple " << i;
      ++i;
    }
  }
  EXPECT_EQ(i, total);
}

// ---------------------------------------------------------------------------
// Remote surplus cap: a SessionOptions::max_revision_surplus set over
// the wire is honored, and the high-water instrumentation travels back.

TEST(SujServerTest, RemoteRevisionSurplusCapIsHonored) {
  ServerFixture fx(520);
  auto client = fx.Client("t");
  ASSERT_TRUE(client.Prepare("chains520").ok());

  const uint64_t cap = 48;
  OpenSessionRequest open;
  open.query = "chains520";
  open.mode = 2;
  open.batch_size = 16;
  open.max_revision_surplus = cap;
  auto session = client.OpenSession(open).value();

  // Odd request sizes force epoch overshoot (surplus buffering).
  uint64_t delivered = 0;
  for (size_t n : {5u, 23u, 57u, 9u, 111u, 3u}) {
    auto batch = client.Sample(session, n);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    delivered += batch.value().size();
  }
  auto stats = client.SessionStats(session).value();
  EXPECT_EQ(stats.tuples_delivered, delivered);
  EXPECT_LE(stats.revision_surplus_high_water, cap)
      << "remote cap not enforced";
  EXPECT_LE(stats.revision_buffered, cap);
  // The wire stats mirror the in-process snapshot exactly.
  auto local = fx.service->SessionStats(stats.session_id).value();
  EXPECT_EQ(stats.revision_surplus_high_water,
            local.revision_surplus_high_water);
  EXPECT_EQ(stats.sampler_accepted, local.sampler.accepted);
}

// ---------------------------------------------------------------------------
// Multi-tenant shedding

TEST(SujServerTest, TenantAtQuotaShedsWhileOthersProceed) {
  net::ServerOptions options;
  options.default_quota.requests_per_second = 0.001;  // ~never refills
  options.default_quota.burst = 3;
  ServerFixture fx(530, options);

  auto greedy = fx.Client("greedy");
  auto polite = fx.Client("polite");
  ASSERT_TRUE(greedy.Prepare("chains530").ok());

  OpenSessionRequest open;
  open.query = "chains530";
  auto greedy_session = greedy.OpenSession(open).value();
  auto polite_session = polite.OpenSession(open).value();

  // Burn greedy's burst (each Sample charges one token).
  int shed = 0;
  for (int i = 0; i < 8; ++i) {
    auto batch = greedy.Sample(greedy_session, 5);
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_GE(shed, 5) << "tenant quota never engaged";

  // The polite tenant's bucket is its own: it keeps sampling.
  for (int i = 0; i < 3; ++i) {
    auto batch = polite.Sample(polite_session, 5);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  }
  auto stats = polite.ServerStats().value();
  EXPECT_GE(stats.quota_shed_total, 5u);
  // v2 breakdown: every shed here came from the TENANT bucket (no
  // per-session rate is configured), and the parts sum to the total.
  EXPECT_EQ(stats.quota_shed_tenant, stats.quota_shed_total);
  EXPECT_EQ(stats.quota_shed_session, 0u);
  EXPECT_EQ(fx.server->governor().snapshot("polite").shed_tenant_quota, 0u);
}

TEST(SujServerTest, ConnectionCapShedsWithExplicitStatus) {
  net::ServerOptions options;
  options.max_connections = 1;
  ServerFixture fx(531, options);

  auto first = fx.Client("a");  // occupies the only slot
  auto second = SujClient::Connect("127.0.0.1", fx.server->port(), "b");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(fx.server->StatsSnapshot().connections_shed, 1u);
}

// ---------------------------------------------------------------------------
// Idle-session reaping over the wire

TEST(SujServerTest, ReaperClosesAbandonedSessionsWithoutPerturbingSiblings) {
  const uint64_t seed = 540;
  net::ServerOptions options;
  options.session_idle_timeout_ns = 50'000'000;  // 50 ms
  options.reap_interval_ns = 10'000'000;         // 10 ms
  ServerFixture fx(seed, options);
  auto baseline = MakeService(seed);
  ASSERT_TRUE(baseline->Prepare("chains540", MakeJoins(540)).ok());

  auto client = fx.Client("t");
  ASSERT_TRUE(client.Prepare("chains540").ok());
  OpenSessionRequest open;
  open.query = "chains540";
  // Session rank 0: abandoned. Rank 1: the survivor we check.
  auto abandoned = client.OpenSession(open).value();
  auto survivor = client.OpenSession(open).value();

  auto local_abandoned = baseline->OpenSession("chains540").value();
  (void)local_abandoned;
  auto local_survivor = baseline->OpenSession("chains540").value();

  // Prefix before the reap...
  auto before = client.Sample(survivor, 30).value();
  // ...abandon the other session long enough for the reaper.
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (!fx.service->sessions().Get(abandoned).ok()) break;
    // Keep the survivor warm so only the abandoned session idles out.
    ASSERT_TRUE(client.SessionStats(survivor).ok());
  }
  EXPECT_FALSE(fx.service->sessions().Get(abandoned).ok())
      << "reaper never fired";
  EXPECT_EQ(client.Sample(abandoned, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_GE(fx.server->StatsSnapshot().sessions_reaped, 1u);

  // The survivor's stream continues exactly where an unperturbed
  // in-process session (same rank, same request sizes) would be.
  auto after = client.Sample(survivor, 30).value();
  auto local = baseline->Sample(local_survivor, 60).value();
  ASSERT_EQ(local.size(), 60u);
  std::vector<std::string> wire_bytes = before;
  wire_bytes.insert(wire_bytes.end(), after.begin(), after.end());
  ASSERT_EQ(wire_bytes.size(), 60u);
  for (size_t i = 0; i < 60; ++i) {
    ASSERT_EQ(wire_bytes[i], local[i].Encode()) << "divergence at " << i;
  }
  // The reaped slot went back to the governor.
  EXPECT_EQ(fx.server->governor().snapshot("t").sessions_open, 1u);
}

TEST(SujServerTest, SlowStreamKeepsSessionAliveAcrossIdleTimeout) {
  const uint64_t seed = 541;
  const int64_t timeout_ms = 400;
  net::ServerOptions options;
  options.session_idle_timeout_ns = timeout_ms * 1'000'000;
  options.reap_interval_ns = 10'000'000;  // 10 ms
  ServerFixture fx(seed, options);

  auto client = fx.Client("t");
  ASSERT_TRUE(client.Prepare("chains541").ok());
  OpenSessionRequest open;
  open.query = "chains541";
  // Oracle mode: per-chunk cost is uniform, so the inter-touch gap
  // stays far below the timeout even under TSan. (Revision mode's
  // first chunk pays cover learning and can alone outlast the
  // timeout under sanitizers — a chunk no per-chunk Touch can cover.)
  open.mode = 1;
  auto session = client.OpenSession(open).value();

  // The reaper must be starved of excuses by a stream whose PRODUCTION
  // outlasts the idle timeout many times over (loopback kernel buffers
  // absorb megabytes, so client-side pacing cannot reliably block the
  // server's writes — production time is the only deterministic pacer).
  // A fixed tuple count can't do that portably: it is trivially short
  // on a fast Release runner (the test passes with the bug present) and
  // minutes long under oversubscribed TSan. So calibrate: a short
  // stream measures THIS machine's wire throughput, and the main
  // stream is sized to ~4x the timeout from it.
  size_t delivered = 0;
  auto count_tuples = [&](const net::TupleChunk& chunk) {
    delivered += chunk.encoded_tuples.size();
    return Status::OK();
  };
  const auto calib_start = std::chrono::steady_clock::now();
  ASSERT_TRUE(
      client.StreamSample(session, 4096, /*chunk_size=*/256, count_tuples)
          .ok());
  const double calib_ms = std::max<double>(
      1.0, std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - calib_start)
               .count());
  const double tuples_per_ms = static_cast<double>(delivered) / calib_ms;
  const uint64_t total = std::clamp<uint64_t>(
      static_cast<uint64_t>(tuples_per_ms * 4 * timeout_ms), 20'000,
      500'000);

  // The session's only liveness signal across the stream is the
  // per-chunk Touch in HandleStreamSample; the regression this pins
  // was a single post-loop Touch, which let the reaper close the
  // session mid-stream (the stream itself finished — it pins the
  // session shared_ptr — but the follow-up Sample below failed
  // NotFound). Small chunks keep the inter-touch gap tiny relative to
  // the timeout even when a parallel ctest run oversubscribes the box.
  // The client drains at full speed, so the Sample lands within
  // milliseconds of the server's final chunk.
  delivered = 0;
  const auto stream_start = std::chrono::steady_clock::now();
  auto streamed =
      client.StreamSample(session, total, /*chunk_size=*/64, count_tuples);
  const auto stream_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - stream_start).count();
  ASSERT_TRUE(streamed.ok()) << streamed.ToString();
  EXPECT_EQ(delivered, total);
  EXPECT_GT(stream_ms, timeout_ms)
      << "stream too fast to exercise the reaper — raise the calibration "
         "multiplier to keep this test meaningful";

  EXPECT_TRUE(fx.service->sessions().Get(session).ok())
      << "idle reaper closed a session that was mid-stream the whole time";
  auto after = client.Sample(session, 5);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().size(), 5u);
  EXPECT_EQ(fx.server->StatsSnapshot().sessions_reaped, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency smoke: many tenants hammering one server under TSan.

TEST(SujServerTest, ConcurrentTenantsSeeOnlyTheirOwnStreams) {
  const uint64_t seed = 550;
  ServerFixture fx(seed);
  {
    auto bootstrap = fx.Client("setup");
    ASSERT_TRUE(bootstrap.Prepare("chains550").ok());
  }
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<Status> results(kThreads, Status::OK());
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&fx, &results, i] {
      auto run = [&]() -> Status {
        SUJ_ASSIGN_OR_RETURN(
            SujClient client,
            SujClient::Connect("127.0.0.1", fx.server->port(),
                               "tenant" + std::to_string(i)));
        OpenSessionRequest open;
        open.query = "chains550";
        open.mode = i % 2 == 0 ? 0 : 2;
        SUJ_ASSIGN_OR_RETURN(uint64_t session, client.OpenSession(open));
        size_t got = 0;
        for (int r = 0; r < 5; ++r) {
          SUJ_ASSIGN_OR_RETURN(std::vector<std::string> batch,
                               client.Sample(session, 20));
          got += batch.size();
        }
        if (got != 100) return Status::Internal("short delivery");
        return client.CloseSession(session);
      };
      results[i] = run();
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_TRUE(results[i].ok()) << "thread " << i << ": "
                                 << results[i].ToString();
  }
  auto stats = fx.server->StatsSnapshot();
  EXPECT_GE(stats.connections_accepted, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.sessions_open, 0u);
}

// ---------------------------------------------------------------------------
// Sharded serving over the wire: shard-aware Prepare, byte identity
// against an in-process sharded baseline, and shard fault injection with
// counter reconciliation.

TEST(SujServerTest, ShardedPrepareReportsPlanShape) {
  ServerFixture fx(560);
  auto client = fx.Client("t");

  auto prepared = client.Prepare("chains560", /*num_shards=*/4);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared.value().num_shards, 4u);

  // The plan is pinned: a later Prepare with a different shard count
  // reports the existing shape instead of rebuilding.
  auto again = client.Prepare("chains560", 8);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().plan_id, prepared.value().plan_id);
  EXPECT_EQ(again.value().num_shards, 4u);

  // Unknown partition schemes are rejected cleanly, connection intact.
  EXPECT_EQ(client.Prepare("chains561", 2, /*scheme=*/7).status().code(),
            StatusCode::kInvalidArgument);

  // Sampling from the sharded plan works end to end.
  OpenSessionRequest open;
  open.query = "chains560";
  auto session = client.OpenSession(open);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto batch = client.Sample(session.value(), 25);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch.value().size(), 25u);
}

TEST(WireDeterminismTest, ShardedPlanMatchesInProcessShardedBaseline) {
  const uint64_t seed = 563;
  ServerFixture fx(seed);
  auto baseline = MakeService(seed);
  PreparedQueryOptions prep = baseline->options().query_defaults;
  prep.shard.num_shards = 4;
  ASSERT_TRUE(baseline->Prepare("chains563", MakeJoins(563), prep).ok());

  auto client = fx.Client("t");
  auto prepared = client.Prepare("chains563", /*num_shards=*/4);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_EQ(prepared.value().num_shards, 4u);

  OpenSessionRequest open;
  open.query = "chains563";
  open.mode = 2;  // revision
  open.worker_threads = 4;
  auto wire_session = client.OpenSession(open).value();

  SessionOptions in_process;
  in_process.mode = SessionOptions::Mode::kRevision;
  in_process.worker_threads = 4;
  auto local_session = baseline->OpenSession("chains563", in_process).value();

  for (size_t n : {9u, 64u, 1u, 110u}) {
    auto wire = client.Sample(wire_session, n);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    auto local = baseline->Sample(local_session, n);
    ASSERT_TRUE(local.ok());
    ASSERT_EQ(wire.value().size(), local.value().size());
    for (size_t i = 0; i < local.value().size(); ++i) {
      ASSERT_EQ(wire.value()[i], local.value()[i].Encode())
          << "sharded wire divergence at tuple " << i << " (n=" << n << ")";
    }
  }
}

TEST(SujServerTest, ShardFailureSurfacesUnavailableAndCountersReconcile) {
  ServerFixture fx(564);
  auto client = fx.Client("t");
  ASSERT_TRUE(client.Prepare("chains564", /*num_shards=*/4).ok());
  auto plan = fx.service->GetQuery("chains564").value();
  ASSERT_NE(plan->shards(), nullptr);

  // Deltas, not absolutes: the shard counters in ServerStats read
  // process-global metrics shared with every suite in this binary.
  const auto before = client.ServerStats().value();
  const uint64_t coord_before = plan->shards()->unavailable_errors();

  OpenSessionRequest open;
  open.query = "chains564";
  auto session = client.OpenSession(open).value();
  ASSERT_TRUE(client.Sample(session, 10).ok());

  // Shard 2 dies. Every subsequent draw on the plan — request or stream
  // chunk — must fail promptly with kUnavailable: a routed draw could
  // land on the dead shard, and silently re-routing would bias the
  // sample.
  plan->shards()->FailShard(2);

  EXPECT_EQ(client.Sample(session, 5).status().code(),
            StatusCode::kUnavailable);

  size_t delivered = 0;
  Status stream_status =
      client.StreamSample(session, 200, 16, [&](const net::TupleChunk& c) {
        delivered += c.encoded_tuples.size();
        return Status::OK();
      });
  EXPECT_EQ(stream_status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(delivered, 0u) << "stream produced chunks from a failed plan";

  // Client-observed failures reconcile with the coordinator's ledger and
  // with the wire-exposed counter delta.
  const uint64_t coord_errors =
      plan->shards()->unavailable_errors() - coord_before;
  EXPECT_GE(coord_errors, 2u);
  const auto after = client.ServerStats().value();
  EXPECT_EQ(after.shard_unavailable_errors - before.shard_unavailable_errors,
            coord_errors);

  // Restore: the same session resumes where it left off.
  plan->shards()->RestoreShard(2);
  auto resumed = client.Sample(session, 10);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value().size(), 10u);
  EXPECT_TRUE(client.CloseSession(session).ok());
}

}  // namespace
}  // namespace suj
