// End-to-end integration tests that cross module boundaries in ways the
// per-module suites do not: unions of CYCLIC joins (the paper's framework
// claims generality beyond its chain/acyclic evaluation), unions of mixed
// join shapes, histogram-parameterized sampling robustness, and the public
// uniformity diagnostics applied to sampler output.

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/exact_overlap.h"
#include "core/histogram_overlap.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "join/olken_sampler.h"
#include "stats/uniformity.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeRelation;
using workloads::MakeStarJoin;
using workloads::MakeTriangleJoin;

// Two overlapping triangle (cyclic) joins built from subsets of shared
// master relations.
std::vector<JoinSpecPtr> OverlappingTriangles(uint64_t seed) {
  Rng rng(seed);
  const int64_t domain = 7;
  auto random_rows = [&](double keep) {
    std::vector<std::vector<int64_t>> all;
    for (int64_t a = 0; a < domain; ++a) {
      for (int64_t b = 0; b < domain; ++b) {
        all.push_back({a, b});
      }
    }
    std::vector<std::vector<int64_t>> out;
    for (auto& row : all) {
      if (rng.Bernoulli(keep)) out.push_back(row);
    }
    return out;
  };
  // Masters.
  auto m_r = random_rows(0.6);
  auto m_s = random_rows(0.6);
  auto m_t = random_rows(0.6);
  auto subset = [&](const std::vector<std::vector<int64_t>>& master) {
    std::vector<std::vector<int64_t>> out;
    for (const auto& row : master) {
      if (rng.Bernoulli(0.8)) out.push_back(row);
    }
    return out;
  };
  std::vector<JoinSpecPtr> joins;
  for (int j = 0; j < 2; ++j) {
    auto r = MakeRelation("J" + std::to_string(j) + "_R", {"A", "B"},
                          subset(m_r))
                 .value();
    auto s = MakeRelation("J" + std::to_string(j) + "_S", {"B", "C"},
                          subset(m_s))
                 .value();
    auto t = MakeRelation("J" + std::to_string(j) + "_T", {"C", "A"},
                          subset(m_t))
                 .value();
    joins.push_back(
        JoinSpec::Create("tri" + std::to_string(j), {r, s, t}).value());
  }
  return joins;
}

TEST(CyclicUnionTest, UniformOverUnionOfTriangles) {
  auto joins = OverlappingTriangles(7);
  ASSERT_EQ(joins[0]->type(), JoinType::kCyclic);
  auto exact = ExactOverlapCalculator::Create(joins).value();
  ASSERT_GT(exact->UnionSize(), 10u);
  ASSERT_GT(exact->EstimateOverlap(0b11).value(), 0.0)
      << "triangles must overlap for this test to be interesting";

  auto estimates = ComputeUnionEstimates(exact.get()).value();
  CompositeIndexCache cache;
  std::vector<std::unique_ptr<JoinSampler>> samplers;
  for (const auto& join : joins) {
    samplers.push_back(ExactWeightSampler::Create(join, &cache).value());
  }
  auto probers = BuildProbers(joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(joins, std::move(samplers), estimates,
                                      probers, opts)
                     .value();
  Rng rng(71);
  size_t n = 60 * exact->UnionSize();
  auto samples = sampler->Sample(n, rng).value();

  auto verdict = ChiSquareUniformityTest(samples, exact->UnionSize());
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->ConsistentWithUniform(1e-6))
      << "chi2=" << verdict->statistic << " p=" << verdict->p_value;
}

TEST(CyclicUnionTest, OlkenSamplersAlsoUniform) {
  auto joins = OverlappingTriangles(8);
  auto exact = ExactOverlapCalculator::Create(joins).value();
  auto estimates = ComputeUnionEstimates(exact.get()).value();
  CompositeIndexCache cache;
  std::vector<std::unique_ptr<JoinSampler>> samplers;
  for (const auto& join : joins) {
    samplers.push_back(OlkenJoinSampler::Create(join, &cache).value());
  }
  auto probers = BuildProbers(joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(joins, std::move(samplers), estimates,
                                      probers, opts)
                     .value();
  Rng rng(72);
  size_t n = 50 * exact->UnionSize();
  auto samples = sampler->Sample(n, rng).value();
  auto verdict = ChiSquareUniformityTest(samples, exact->UnionSize());
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->ConsistentWithUniform(1e-6));
}

TEST(MixedShapeUnionTest, ChainStarAndTriangleInOneUnion) {
  // Same output schema is required; build three joins over attributes
  // {A,B,C} with different shapes: a 2-relation chain, a 3-relation
  // triangle, and a single wide relation (trivial chain).
  Rng rng(9);
  auto rows2 = [&](size_t n, int64_t domain) {
    std::vector<std::vector<int64_t>> out;
    std::unordered_set<int64_t> seen;
    while (out.size() < n && seen.size() < static_cast<size_t>(domain * domain)) {
      int64_t a = static_cast<int64_t>(rng.UniformInt(domain));
      int64_t b = static_cast<int64_t>(rng.UniformInt(domain));
      if (seen.insert(a * 100 + b).second) out.push_back({a, b});
    }
    return out;
  };
  auto rows3 = [&](size_t n, int64_t domain) {
    std::vector<std::vector<int64_t>> out;
    std::unordered_set<int64_t> seen;
    while (out.size() < n &&
           seen.size() < static_cast<size_t>(domain * domain * domain)) {
      int64_t a = static_cast<int64_t>(rng.UniformInt(domain));
      int64_t b = static_cast<int64_t>(rng.UniformInt(domain));
      int64_t c = static_cast<int64_t>(rng.UniformInt(domain));
      if (seen.insert(a * 10000 + b * 100 + c).second) {
        out.push_back({a, b, c});
      }
    }
    return out;
  };

  auto chain = JoinSpec::Create(
                   "chain", {MakeRelation("c_ab", {"A", "B"},
                                          rows2(20, 5))
                                 .value(),
                             MakeRelation("c_bc", {"B", "C"}, rows2(20, 5))
                                 .value()})
                   .value();
  auto tri = JoinSpec::Create(
                 "tri", {MakeRelation("t_ab", {"A", "B"}, rows2(20, 5))
                             .value(),
                         MakeRelation("t_bc", {"B", "C"}, rows2(20, 5))
                             .value(),
                         MakeRelation("t_ca", {"C", "A"}, rows2(20, 5))
                             .value()})
                 .value();
  auto wide =
      JoinSpec::Create("wide", {MakeRelation("w", {"A", "B", "C"},
                                             rows3(30, 5))
                                    .value()})
          .value();
  std::vector<JoinSpecPtr> joins = {chain, tri, wide};
  ASSERT_TRUE(ValidateUnionCompatible(joins).ok());
  ASSERT_EQ(chain->type(), JoinType::kChain);
  ASSERT_EQ(tri->type(), JoinType::kCyclic);

  auto exact = ExactOverlapCalculator::Create(joins).value();
  ASSERT_GT(exact->UnionSize(), 10u);
  auto estimates = ComputeUnionEstimates(exact.get()).value();
  CompositeIndexCache cache;
  std::vector<std::unique_ptr<JoinSampler>> samplers;
  for (const auto& join : joins) {
    samplers.push_back(ExactWeightSampler::Create(join, &cache).value());
  }
  auto probers = BuildProbers(joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(joins, std::move(samplers), estimates,
                                      probers, opts)
                     .value();
  Rng rng2(91);
  size_t n = 60 * exact->UnionSize();
  auto samples = sampler->Sample(n, rng2).value();
  auto verdict = ChiSquareUniformityTest(samples, exact->UnionSize());
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->ConsistentWithUniform(1e-6));
}

TEST(HistogramParameterizedSamplingTest, RunsAndStaysInsideUnion) {
  // Histogram bounds are loose; the sampler must neither hang nor emit
  // tuples outside the union. (Uniformity under bounds is approximate;
  // that trade-off is measured in the benches, not asserted here.)
  workloads::SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 25;
  options.seed = 77;
  auto joins = workloads::MakeOverlappingChains(options).value();
  auto exact = ExactOverlapCalculator::Create(joins).value();
  HistogramCatalog histograms;
  auto hist = HistogramOverlapEstimator::Create(joins, &histograms).value();
  auto estimates = ComputeUnionEstimates(hist.get()).value();

  CompositeIndexCache cache;
  std::vector<std::unique_ptr<JoinSampler>> samplers;
  for (const auto& join : joins) {
    samplers.push_back(OlkenJoinSampler::Create(join, &cache).value());
  }
  auto probers = BuildProbers(joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  opts.max_draws_per_round = 20000;
  auto sampler = UnionSampler::Create(joins, std::move(samplers), estimates,
                                      probers, opts)
                     .value();
  Rng rng(78);
  auto samples = sampler->Sample(1500, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  for (const auto& t : *samples) {
    ASSERT_TRUE(exact->membership().count(t.Encode()));
  }
}

TEST(StarUnionTest, AcyclicUnionUniform) {
  // Two star joins sharing one leaf relation's data region.
  std::vector<JoinSpecPtr> joins = {MakeStarJoin(14, 61, "sA").value(),
                                    MakeStarJoin(14, 61, "sB").value()};
  // Identical seeds -> identical joins (full overlap); still valid.
  auto exact = ExactOverlapCalculator::Create(joins).value();
  if (exact->UnionSize() < 5) GTEST_SKIP() << "degenerate star data";
  auto estimates = ComputeUnionEstimates(exact.get()).value();
  CompositeIndexCache cache;
  std::vector<std::unique_ptr<JoinSampler>> samplers;
  for (const auto& join : joins) {
    samplers.push_back(ExactWeightSampler::Create(join, &cache).value());
  }
  auto probers = BuildProbers(joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(joins, std::move(samplers), estimates,
                                      probers, opts)
                     .value();
  Rng rng(62);
  size_t n = 40 * exact->UnionSize();
  auto samples = sampler->Sample(n, rng).value();
  auto verdict = ChiSquareUniformityTest(samples, exact->UnionSize());
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->ConsistentWithUniform(1e-6));
}

}  // namespace
}  // namespace suj
