// Empirical checks of the paper's analytical claims: Theorem 2's
// O(N + N log N) expected total sampling cost, and the independence of
// consecutive samples (i.i.d. claim of Theorem 1).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/logging.h"
#include "core/exact_overlap.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "join/membership.h"
#include "stats/uniformity.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

struct Fixture {
  std::vector<JoinSpecPtr> joins;
  std::unique_ptr<ExactOverlapCalculator> exact;
  UnionEstimates estimates;
  CompositeIndexCache cache;
};

Fixture MakeFixture(uint64_t seed, int num_joins = 3) {
  Fixture f;
  SyntheticChainOptions options;
  options.num_joins = num_joins;
  options.master_rows = 24;
  options.seed = seed;
  f.joins = MakeOverlappingChains(options).value();
  f.exact = ExactOverlapCalculator::Create(f.joins).value();
  f.estimates = ComputeUnionEstimates(f.exact.get()).value();
  return f;
}

std::unique_ptr<UnionSampler> MakeSampler(Fixture& f) {
  std::vector<std::unique_ptr<JoinSampler>> samplers;
  for (const auto& join : f.joins) {
    samplers.push_back(ExactWeightSampler::Create(join, &f.cache).value());
  }
  auto probers = BuildProbers(f.joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  return UnionSampler::Create(f.joins, std::move(samplers), f.estimates,
                              probers, opts)
      .value();
}

TEST(CostModelTest, TotalDrawsWithinTheorem2Band) {
  // Theorem 2: expected total join draws for N samples is <= N + N log N.
  // The bound is loose (union-bound + coupon collector), so we check the
  // measured cost sits under it with margin, and that cost grows
  // near-linearly (not quadratically) in N.
  Fixture f = MakeFixture(201);
  std::map<size_t, uint64_t> draws;
  for (size_t n : {512, 1024, 2048, 4096}) {
    auto sampler = MakeSampler(f);
    Rng rng(202);
    ASSERT_TRUE(sampler->Sample(n, rng).ok());
    draws[n] = sampler->stats().join_draws;
    double bound = static_cast<double>(n) +
                   static_cast<double>(n) * std::log(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(draws[n]), bound)
        << "N=" << n << " draws=" << draws[n];
  }
  // Near-linear growth: doubling N should not quadruple the draws.
  EXPECT_LT(draws[4096], 3 * draws[2048]);
  EXPECT_LT(draws[2048], 3 * draws[1024]);
}

TEST(CostModelTest, CostGrowsWithOverlap) {
  // More overlap -> more cover rejections per accepted sample (the
  // efficiency trade-off §3 describes).
  SyntheticChainOptions low_opts, high_opts;
  low_opts.num_joins = high_opts.num_joins = 3;
  low_opts.master_rows = high_opts.master_rows = 24;
  low_opts.seed = high_opts.seed = 203;
  low_opts.keep_probability = 0.35;  // sparse subsets: little overlap
  high_opts.keep_probability = 0.95;  // dense subsets: heavy overlap

  auto run = [](const SyntheticChainOptions& options) {
    Fixture f;
    f.joins = MakeOverlappingChains(options).value();
    f.exact = ExactOverlapCalculator::Create(f.joins).value();
    f.estimates = ComputeUnionEstimates(f.exact.get()).value();
    auto sampler = MakeSampler(f);
    Rng rng(204);
    SUJ_CHECK(sampler->Sample(2000, rng).ok());
    return sampler->stats().CoverRejectionRatio();
  };
  EXPECT_GT(run(high_opts), run(low_opts));
}

TEST(IndependenceTest, ConsecutivePairsUniform) {
  // If samples are i.i.d. uniform over U, consecutive pairs are uniform
  // over U x U. Use a small union so the pair space is testable.
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.num_relations = 2;
  options.master_rows = 10;
  options.seed = 205;
  Fixture f;
  f.joins = MakeOverlappingChains(options).value();
  f.exact = ExactOverlapCalculator::Create(f.joins).value();
  f.estimates = ComputeUnionEstimates(f.exact.get()).value();
  size_t u = f.exact->UnionSize();
  ASSERT_GE(u, 4u);
  ASSERT_LE(u, 40u);

  auto sampler = MakeSampler(f);
  Rng rng(206);
  size_t n = 60 * u * u;
  auto samples = sampler->Sample(n, rng).value();

  // Pair tuples (t_{2i}, t_{2i+1}) as concatenated encodings.
  std::vector<Tuple> pairs;
  pairs.reserve(n / 2);
  for (size_t i = 0; i + 1 < samples.size(); i += 2) {
    std::vector<Value> both = samples[i].values();
    for (const auto& v : samples[i + 1].values()) both.push_back(v);
    pairs.emplace_back(std::move(both));
  }
  auto verdict = ChiSquareUniformityTest(pairs, u * u);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->ConsistentWithUniform(1e-6))
      << "pair chi2=" << verdict->statistic << " p=" << verdict->p_value;
}

TEST(IndependenceTest, LagOneCorrelationNearZero) {
  // Numeric check: correlation between consecutive samples' first
  // attribute should be ~0 for an i.i.d. sampler.
  Fixture f = MakeFixture(207, 2);
  auto sampler = MakeSampler(f);
  Rng rng(208);
  auto samples = sampler->Sample(20000, rng).value();
  double mean = 0;
  for (const auto& t : samples) mean += static_cast<double>(t.value(0).int64());
  mean /= static_cast<double>(samples.size());
  double cov = 0, var = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    double x = static_cast<double>(samples[i].value(0).int64()) - mean;
    var += x * x;
    if (i + 1 < samples.size()) {
      double y =
          static_cast<double>(samples[i + 1].value(0).int64()) - mean;
      cov += x * y;
    }
  }
  double rho = cov / var;
  EXPECT_LT(std::fabs(rho), 0.03);
}

}  // namespace
}  // namespace suj
