// Deterministic-seed audit: a meta-test that scans the test sources
// themselves and fails if any suite seeds randomness from entropy or the
// wall clock. The chi-square uniformity checks in uniformity_test.cc and
// union_sampler_test.cc are only reproducible if every RNG in the suite is
// constructed from a fixed seed (see FixedSeedRng in test_util.h).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.h"

#ifndef SUJ_TEST_SOURCE_DIR
#error "SUJ_TEST_SOURCE_DIR must point at the tests/ source directory"
#endif

namespace suj {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Strip // line comments, /* */ block comments, and string/char literal
// CONTENTS (quotes are kept, contents dropped) so that neither prose nor
// string data mentioning a forbidden construct trips the audit, and a
// "//" inside a string does not hide real code on the rest of the line.
// (Heuristic: raw strings and digit separators are not modeled; neither
// appears in the suite.)
std::string StripComments(const std::string& text) {
  enum class State { kCode, kString, kChar, kLineComment, kBlockComment };
  std::string out;
  out.reserve(text.size());
  State state = State::kCode;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else {
          if (c == '"') state = State::kString;
          if (c == '\'') state = State::kChar;
          out.push_back(c);
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          ++i;  // skip the escaped character without emitting it
          break;
        }
        if ((state == State::kString && c == '"') ||
            (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out.push_back(c);  // keep the closing quote only
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out.push_back(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out.push_back(c);  // keep line structure for readable offsets
        }
        break;
    }
  }
  return out;
}

// Constructs that make a test's random stream differ between runs. Spelled
// as fragments so this very file does not contain the assembled tokens
// outside the table.
const std::vector<std::string>& ForbiddenSeedSources() {
  static const std::vector<std::string> kSources = {
      std::string("std::random") + "_device",
      std::string("random") + "_device{",
      std::string("time(") + "nullptr)",
      std::string("time(") + "NULL)",
      std::string("time(") + "0)",
      std::string("srand") + "(",
      std::string("clo") + "ck()",
      std::string("::no") + "w().time_since_epoch",
  };
  return kSources;
}

TEST(SeedAudit, NoNondeterministicSeedsInTestSources) {
  const fs::path dir(SUJ_TEST_SOURCE_DIR);
  ASSERT_TRUE(fs::is_directory(dir)) << "missing test source dir: " << dir;

  size_t files_scanned = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const fs::path& p = entry.path();
    if (p.extension() != ".cc" && p.extension() != ".h") continue;
    ++files_scanned;
    const std::string code = StripComments(ReadFile(p));
    for (const std::string& bad : ForbiddenSeedSources()) {
      EXPECT_EQ(code.find(bad), std::string::npos)
          << p.filename() << " uses nondeterministic seed source \"" << bad
          << "\"; construct RNGs via FixedSeedRng() from test_util.h instead";
    }
  }
  // Guard against the scan silently matching nothing (which would
  // vacuously pass); a loose floor so merging/removing a suite or two
  // doesn't spuriously trip the audit.
  EXPECT_GE(files_scanned, 10u) << "seed audit scanned suspiciously few files";
}

TEST(SeedAudit, FixedSeedRngIsDeterministic) {
  Rng a = ::suj::testing::FixedSeedRng();
  Rng b = ::suj::testing::FixedSeedRng();
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(a.Next(), b.Next())
        << "FixedSeedRng must yield identical streams per seed";
  }
  Rng offset = ::suj::testing::FixedSeedRng(1);
  EXPECT_NE(::suj::testing::FixedSeedRng().Next(), offset.Next())
      << "distinct offsets should yield distinct streams";
}

}  // namespace
}  // namespace suj
