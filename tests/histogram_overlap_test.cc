// Tests for core/histogram_overlap: the Theorem-4 bound must upper-bound
// the exact overlap on randomized workloads (property sweeps), tighten with
// overlap, and drive valid union estimates.

#include <gtest/gtest.h>

#include "core/exact_overlap.h"
#include "core/histogram_overlap.h"
#include "core/union_size_model.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

struct Params {
  int num_joins;
  int num_relations;
  size_t rows;
  double keep;
  uint64_t seed;
};

class HistogramBoundSweep : public ::testing::TestWithParam<Params> {};

TEST_P(HistogramBoundSweep, BoundsExactOverlapFromAbove) {
  const Params p = GetParam();
  SyntheticChainOptions options;
  options.num_joins = p.num_joins;
  options.num_relations = p.num_relations;
  options.master_rows = p.rows;
  options.keep_probability = p.keep;
  options.seed = p.seed;
  auto joins = MakeOverlappingChains(options).value();

  auto exact = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(exact.ok());
  HistogramCatalog histograms;
  auto hist = HistogramOverlapEstimator::Create(joins, &histograms);
  ASSERT_TRUE(hist.ok());
  EXPECT_TRUE((*hist)->IsUpperBound());

  const int n = p.num_joins;
  for (SubsetMask mask = 1; mask < (1ULL << n); ++mask) {
    auto bound = (*hist)->EstimateOverlap(mask);
    auto truth = (*exact)->EstimateOverlap(mask);
    ASSERT_TRUE(bound.ok() && truth.ok());
    EXPECT_GE(bound.value() + 1e-9, truth.value())
        << "mask " << mask << " seed " << p.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistogramBoundSweep,
    ::testing::Values(Params{2, 2, 30, 0.7, 1}, Params{2, 3, 30, 0.7, 2},
                      Params{3, 2, 25, 0.5, 3}, Params{3, 3, 25, 0.8, 4},
                      Params{3, 4, 20, 0.6, 5}, Params{4, 3, 20, 0.7, 6},
                      Params{2, 3, 40, 0.9, 7}, Params{3, 3, 30, 0.3, 8}));

TEST(HistogramOverlapTest, BestRotationNeverLoosens) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.num_relations = 4;
  options.master_rows = 30;
  options.seed = 70;
  auto joins = MakeOverlappingChains(options).value();
  HistogramCatalog histograms;
  HistogramOverlapEstimator::Options base;
  auto plain = HistogramOverlapEstimator::Create(joins, &histograms, base);
  base.best_rotation = true;
  auto rotated = HistogramOverlapEstimator::Create(joins, &histograms, base);
  ASSERT_TRUE(plain.ok() && rotated.ok());
  for (SubsetMask mask = 1; mask < 8; ++mask) {
    EXPECT_LE((*rotated)->EstimateOverlap(mask).value(),
              (*plain)->EstimateOverlap(mask).value() + 1e-9)
        << "mask " << mask;
  }
}

TEST(HistogramOverlapTest, DisjointJoinsGetZeroOverlapBound) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 20;
  options.mode = workloads::OverlapMode::kDisjoint;
  auto joins = MakeOverlappingChains(options).value();
  HistogramCatalog histograms;
  auto hist = HistogramOverlapEstimator::Create(joins, &histograms);
  ASSERT_TRUE(hist.ok());
  // K(1) sums min degrees over shared first-attr values; disjoint domains
  // share none, so the bound collapses to zero.
  EXPECT_DOUBLE_EQ((*hist)->EstimateOverlap(0b11).value(), 0.0);
}

TEST(HistogramOverlapTest, IdenticalJoinsBoundAtLeastJoinSize) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 20;
  options.mode = workloads::OverlapMode::kIdentical;
  options.seed = 71;
  auto joins = MakeOverlappingChains(options).value();
  auto exact = ExactOverlapCalculator::Create(joins);
  HistogramCatalog histograms;
  auto hist = HistogramOverlapEstimator::Create(joins, &histograms);
  ASSERT_TRUE(exact.ok() && hist.ok());
  EXPECT_GE((*hist)->EstimateOverlap(0b11).value() + 1e-9,
            static_cast<double>((*exact)->JoinSize(0)));
}

TEST(HistogramOverlapTest, UnionEstimatesUpperBoundTruth) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 25;
  options.seed = 72;
  auto joins = MakeOverlappingChains(options).value();
  auto exact = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(exact.ok());
  HistogramCatalog histograms;
  auto hist = HistogramOverlapEstimator::Create(joins, &histograms);
  ASSERT_TRUE(hist.ok());
  auto estimates = ComputeUnionEstimates(hist->get());
  ASSERT_TRUE(estimates.ok());
  // Join-size bounds dominate the exact sizes.
  for (int j = 0; j < 3; ++j) {
    EXPECT_GE(estimates->join_sizes[j] + 1e-9,
              static_cast<double>((*exact)->JoinSize(j)));
  }
  // The estimated union must be positive and at least... the bound can cut
  // both ways for |U| (overlap overestimates shrink it), so just check
  // it is within a sane multiplicative band of the truth.
  double truth = static_cast<double>((*exact)->UnionSize());
  EXPECT_GT(estimates->union_size_eq1, 0.0);
  EXPECT_LT(estimates->union_size_eq1, 1000.0 * truth);
}

TEST(HistogramOverlapTest, ExplicitTemplateHonored) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.num_relations = 2;
  options.master_rows = 15;
  auto joins = MakeOverlappingChains(options).value();
  HistogramCatalog histograms;
  HistogramOverlapEstimator::Options opts;
  opts.template_attrs = {"A1", "A0", "A2"};
  auto hist = HistogramOverlapEstimator::Create(joins, &histograms, opts);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ((*hist)->template_attrs(), opts.template_attrs);
}

TEST(HistogramOverlapTest, AvgDegreeOptionNotUpperBound) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 15;
  auto joins = MakeOverlappingChains(options).value();
  HistogramCatalog histograms;
  HistogramOverlapEstimator::Options opts;
  opts.use_avg_degree = true;
  auto hist = HistogramOverlapEstimator::Create(joins, &histograms, opts);
  ASSERT_TRUE(hist.ok());
  EXPECT_FALSE((*hist)->IsUpperBound());
}

TEST(HistogramOverlapTest, RejectsIncompatibleJoins) {
  SyntheticChainOptions a, b;
  a.num_joins = 1;
  b.num_joins = 1;
  b.num_relations = 4;  // different output schema (more attributes)
  auto j1 = MakeOverlappingChains(a).value()[0];
  auto j2 = MakeOverlappingChains(b).value()[0];
  HistogramCatalog histograms;
  EXPECT_FALSE(HistogramOverlapEstimator::Create({j1, j2}, &histograms).ok());
}

}  // namespace
}  // namespace suj
