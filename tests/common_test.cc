// Tests for common/: Status, Result, Rng, combinatorics.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/combinatorics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace suj {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
  EXPECT_EQ(Status::Unimplemented("x").ToString(), "Unimplemented: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r(std::string("abc"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "abc");
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(123);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
  }
  EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(2);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 * 0.9);
    EXPECT_LT(c, n / 10 * 1.1);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(4);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, BernoulliRate) {
  Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(7);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(8);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng rng(9);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Zipf(10, 1.5);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 10u);
    ++counts[v];
  }
  // Rank 1 must dominate rank 10 under s = 1.5.
  EXPECT_GT(counts[1], counts[10] * 5);
}

TEST(RngTest, ZipfHandlesSLessEqualOne) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Zipf(10, 1.0);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 10u);
  }
  EXPECT_EQ(rng.Zipf(1, 0.5), 1u);
}

TEST(CombinatoricsTest, PopCount) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_EQ(PopCount(FullMask(6)), 6);
}

TEST(CombinatoricsTest, Binomial) {
  EXPECT_DOUBLE_EQ(Binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(Binomial(10, 5), 252.0);
  EXPECT_DOUBLE_EQ(Binomial(4, -1), 0.0);
}

TEST(CombinatoricsTest, SubsetsOfSizeCountsAndContents) {
  auto subsets = SubsetsOfSize(5, 3);
  EXPECT_EQ(subsets.size(), 10u);
  std::set<SubsetMask> unique(subsets.begin(), subsets.end());
  EXPECT_EQ(unique.size(), 10u);
  for (SubsetMask m : subsets) {
    EXPECT_EQ(PopCount(m), 3);
    EXPECT_LT(m, 1ULL << 5);
  }
  EXPECT_EQ(SubsetsOfSize(4, 0).size(), 1u);
  EXPECT_EQ(SubsetsOfSize(4, 0)[0], 0u);
  EXPECT_TRUE(SubsetsOfSize(3, 4).empty());
}

TEST(CombinatoricsTest, SubsetsContainingElement) {
  auto subsets = SubsetsOfSizeContaining(5, 3, 2);
  EXPECT_EQ(subsets.size(), 6u);  // C(4, 2)
  for (SubsetMask m : subsets) {
    EXPECT_EQ(PopCount(m), 3);
    EXPECT_TRUE(m & (1ULL << 2));
  }
  auto singletons = SubsetsOfSizeContaining(4, 1, 3);
  ASSERT_EQ(singletons.size(), 1u);
  EXPECT_EQ(singletons[0], 1ULL << 3);
}

TEST(CombinatoricsTest, NonEmptySubsetsAscending) {
  auto subs = NonEmptySubsetsOf(0b101);
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0], 0b001u);
  EXPECT_EQ(subs[1], 0b100u);
  EXPECT_EQ(subs[2], 0b101u);
  EXPECT_TRUE(std::is_sorted(subs.begin(), subs.end()));
}

TEST(CombinatoricsTest, MaskToIndices) {
  auto idx = MaskToIndices(0b10110);
  EXPECT_EQ(idx, (std::vector<int>{1, 2, 4}));
  EXPECT_TRUE(MaskToIndices(0).empty());
}

}  // namespace
}  // namespace suj
