// Tests for stats/: histograms, running stats, HT estimation, CIs,
// reservoir sampling.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/column_histogram.h"
#include "stats/estimators.h"
#include "stats/reservoir.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeRelation;

TEST(ColumnHistogramTest, DegreesAndSummary) {
  auto rel =
      MakeRelation("r", {"a"}, {{1}, {1}, {2}, {3}, {3}, {3}}).value();
  auto hist = ColumnHistogram::Build(rel, "a");
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ((*hist)->Degree(Value::Int64(1)), 2u);
  EXPECT_EQ((*hist)->Degree(Value::Int64(3)), 3u);
  EXPECT_EQ((*hist)->Degree(Value::Int64(9)), 0u);
  EXPECT_EQ((*hist)->MaxDegree(), 3u);
  EXPECT_EQ((*hist)->NumDistinct(), 3u);
  EXPECT_EQ((*hist)->NumRows(), 6u);
  EXPECT_DOUBLE_EQ((*hist)->AvgDegree(), 2.0);
}

TEST(ColumnHistogramTest, MissingAttributeFails) {
  auto rel = MakeRelation("r", {"a"}, {{1}}).value();
  EXPECT_FALSE(ColumnHistogram::Build(rel, "b").ok());
}

TEST(HistogramCatalogTest, CachesAndNameLookup) {
  HistogramCatalog catalog;
  auto rel = MakeRelation("r", {"a"}, {{1}, {2}}).value();
  auto h1 = catalog.GetOrBuild(rel, "a");
  auto h2 = catalog.GetOrBuild(rel, "a");
  ASSERT_TRUE(h1.ok() && h2.ok());
  EXPECT_EQ(h1.value().get(), h2.value().get());
  auto by_name = catalog.Get("r", "a");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name.value().get(), h1.value().get());
  EXPECT_FALSE(catalog.Get("r", "zz").ok());
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  RunningStats stats;
  std::vector<double> xs = {1.0, 4.0, 9.0, 16.0, 25.0};
  for (double x : xs) stats.Add(x);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 11.0);
  // Unbiased sample variance: sum((x - 11)^2) / 4 = (100+49+4+25+196)/4.
  EXPECT_DOUBLE_EQ(stats.variance(), 374.0 / 4.0);
}

TEST(RunningStatsTest, MergeEqualsConcatenation) {
  Rng rng(11);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    double x = rng.UniformDouble() * 10;
    a.Add(x);
    all.Add(x);
  }
  for (int i = 0; i < 300; ++i) {
    double x = rng.Gaussian();
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStatsTest, DegenerateCases) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(ZCriticalTest, StandardLevels) {
  EXPECT_NEAR(ZCritical(0.90), 1.6449, 1e-3);
  EXPECT_NEAR(ZCritical(0.95), 1.9600, 1e-3);
  EXPECT_NEAR(ZCritical(0.99), 2.5758, 1e-3);
}

TEST(ConfidenceTest, HalfWidthShrinksWithSamples) {
  Rng rng(12);
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.Add(rng.Gaussian());
  double hw100 = ConfidenceHalfWidth(s, 0.95);
  for (int i = 0; i < 9900; ++i) s.Add(rng.Gaussian());
  double hw10000 = ConfidenceHalfWidth(s, 0.95);
  EXPECT_LT(hw10000, hw100);
  EXPECT_NEAR(hw10000 * std::sqrt(10000.0 / 100.0), hw100, hw100 * 0.5);
}

TEST(ConfidenceTest, InfiniteWithoutData) {
  RunningStats s;
  EXPECT_TRUE(std::isinf(ConfidenceHalfWidth(s, 0.9)));
  s.Add(1.0);
  EXPECT_TRUE(std::isinf(ConfidenceHalfWidth(s, 0.9)));
}

TEST(HorvitzThompsonTest, UnbiasedOnKnownPopulation) {
  // Population of 1000 items sampled with per-item probability p_i
  // proportional to (i % 5 + 1); the HT estimate of the population size
  // must converge to 1000.
  const int population = 1000;
  std::vector<double> weights(population);
  double total_weight = 0;
  for (int i = 0; i < population; ++i) {
    weights[i] = static_cast<double>(i % 5 + 1);
    total_weight += weights[i];
  }
  Rng rng(13);
  HorvitzThompsonEstimator ht;
  for (int draw = 0; draw < 50000; ++draw) {
    size_t item = rng.Categorical(weights);
    ht.AddSuccess(weights[item] / total_weight);
  }
  EXPECT_NEAR(ht.Estimate(), population, population * 0.03);
}

TEST(HorvitzThompsonTest, FailuresLowerTheEstimate) {
  HorvitzThompsonEstimator ht;
  for (int i = 0; i < 50; ++i) ht.AddSuccess(0.01);  // each contributes 100
  EXPECT_DOUBLE_EQ(ht.Estimate(), 100.0);
  for (int i = 0; i < 50; ++i) ht.AddFailure();
  EXPECT_DOUBLE_EQ(ht.Estimate(), 50.0);
  EXPECT_EQ(ht.num_draws(), 100u);
}

TEST(HorvitzThompsonTest, RelativeHalfWidth) {
  HorvitzThompsonEstimator ht;
  EXPECT_TRUE(std::isinf(ht.RelativeHalfWidth(0.9)));
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    ht.AddSuccess(0.009 + 0.002 * rng.UniformDouble());
  }
  EXPECT_LT(ht.RelativeHalfWidth(0.9), 0.05);
}

TEST(ReservoirTest, HoldsAllWhenUnderCapacity) {
  ReservoirSampler<int> sampler(10);
  Rng rng(15);
  for (int i = 0; i < 5; ++i) sampler.Offer(i, rng);
  EXPECT_EQ(sampler.sample().size(), 5u);
  EXPECT_EQ(sampler.seen(), 5u);
}

TEST(ReservoirTest, ApproximatelyUniformInclusion) {
  // Each of 100 items should appear in a size-10 reservoir with
  // probability ~0.1 across many trials.
  std::vector<int> inclusion(100, 0);
  Rng rng(16);
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    ReservoirSampler<int> sampler(10);
    for (int i = 0; i < 100; ++i) sampler.Offer(i, rng);
    for (int v : sampler.sample()) ++inclusion[v];
  }
  for (int i = 0; i < 100; ++i) {
    double rate = inclusion[i] / static_cast<double>(trials);
    EXPECT_NEAR(rate, 0.1, 0.035) << "item " << i;
  }
}

}  // namespace
}  // namespace suj
