// Tests for core/random_walk_overlap: convergence to exact sizes and
// overlaps, membership masks, confidence tracking, walk budget.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_overlap.h"
#include "core/random_walk_overlap.h"
#include "core/union_size_model.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

RandomWalkOverlapEstimator::Options BigBudget() {
  RandomWalkOverlapEstimator::Options options;
  options.min_walks = 4000;
  options.max_walks = 4000;
  return options;
}

TEST(RandomWalkOverlapTest, JoinSizesConverge) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 25;
  options.seed = 80;
  auto joins = MakeOverlappingChains(options).value();
  auto exact = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(exact.ok());
  CompositeIndexCache cache;
  auto rw = RandomWalkOverlapEstimator::Create(joins, &cache, BigBudget());
  ASSERT_TRUE(rw.ok());
  Rng rng(81);
  ASSERT_TRUE((*rw)->Warmup(rng).ok());
  for (int j = 0; j < 3; ++j) {
    double truth = static_cast<double>((*exact)->JoinSize(j));
    auto est = (*rw)->EstimateJoinSize(j);
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(est.value(), truth, 0.15 * truth + 1.0) << "join " << j;
  }
}

TEST(RandomWalkOverlapTest, OverlapsConverge) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 25;
  options.keep_probability = 0.8;  // sizeable overlaps
  options.seed = 82;
  auto joins = MakeOverlappingChains(options).value();
  auto exact = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(exact.ok());
  CompositeIndexCache cache;
  auto rw = RandomWalkOverlapEstimator::Create(joins, &cache, BigBudget());
  ASSERT_TRUE(rw.ok());
  Rng rng(83);
  ASSERT_TRUE((*rw)->Warmup(rng).ok());
  for (SubsetMask mask = 1; mask < 8; ++mask) {
    double truth = (*exact)->EstimateOverlap(mask).value();
    auto est = (*rw)->EstimateOverlap(mask);
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(est.value(), truth, 0.2 * truth + 2.0) << "mask " << mask;
  }
}

TEST(RandomWalkOverlapTest, MembershipMasksMatchGroundTruth) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 20;
  options.seed = 84;
  auto joins = MakeOverlappingChains(options).value();
  auto exact = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(exact.ok());
  CompositeIndexCache cache;
  RandomWalkOverlapEstimator::Options opts;
  opts.min_walks = 300;
  opts.max_walks = 300;
  auto rw = RandomWalkOverlapEstimator::Create(joins, &cache, opts);
  ASSERT_TRUE(rw.ok());
  Rng rng(85);
  ASSERT_TRUE((*rw)->Warmup(rng).ok());
  for (int j = 0; j < 2; ++j) {
    for (const auto& rec : (*rw)->records(j)) {
      auto it = (*exact)->membership().find(rec.tuple.Encode());
      ASSERT_NE(it, (*exact)->membership().end());
      EXPECT_EQ(rec.membership, it->second);
    }
  }
}

TEST(RandomWalkOverlapTest, WarmupRespectsBudgetAndConfidence) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 25;
  options.seed = 86;
  auto joins = MakeOverlappingChains(options).value();
  CompositeIndexCache cache;
  RandomWalkOverlapEstimator::Options opts;
  opts.min_walks = 32;
  opts.max_walks = 1000;
  opts.confidence = 0.9;
  opts.relative_halfwidth = 0.2;  // loose target, should stop early
  auto rw = RandomWalkOverlapEstimator::Create(joins, &cache, opts);
  ASSERT_TRUE(rw.ok());
  Rng rng(87);
  ASSERT_TRUE((*rw)->Warmup(rng).ok());
  for (int j = 0; j < 2; ++j) {
    EXPECT_GE((*rw)->num_walks(j), 32u);
    EXPECT_LE((*rw)->num_walks(j), 1000u);
    EXPECT_LE((*rw)->JoinSizeRelativeHalfWidth(j, 0.9), 0.2 + 1e-9);
  }
}

TEST(RandomWalkOverlapTest, HalfWidthFiniteAfterWalks) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 20;
  options.seed = 88;
  auto joins = MakeOverlappingChains(options).value();
  CompositeIndexCache cache;
  RandomWalkOverlapEstimator::Options opts;
  opts.min_walks = 200;
  opts.max_walks = 200;
  auto rw = RandomWalkOverlapEstimator::Create(joins, &cache, opts);
  ASSERT_TRUE(rw.ok());
  Rng rng(89);
  ASSERT_TRUE((*rw)->Warmup(rng).ok());
  auto hw = (*rw)->OverlapHalfWidth(0b11, 0.9);
  ASSERT_TRUE(hw.ok());
  EXPECT_TRUE(std::isfinite(hw.value()));
  EXPECT_GT(hw.value(), 0.0);
}

TEST(RandomWalkOverlapTest, FeedsUnionEstimates) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 25;
  options.seed = 90;
  auto joins = MakeOverlappingChains(options).value();
  auto exact = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(exact.ok());
  CompositeIndexCache cache;
  auto rw = RandomWalkOverlapEstimator::Create(joins, &cache, BigBudget());
  ASSERT_TRUE(rw.ok());
  Rng rng(91);
  ASSERT_TRUE((*rw)->Warmup(rng).ok());
  auto estimates = ComputeUnionEstimates(rw->get());
  ASSERT_TRUE(estimates.ok());
  double truth = static_cast<double>((*exact)->UnionSize());
  EXPECT_NEAR(estimates->union_size_eq1, truth, 0.2 * truth + 2.0);
}

TEST(RandomWalkOverlapTest, DisjointJoinsEstimateZeroOverlap) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 20;
  options.mode = workloads::OverlapMode::kDisjoint;
  options.seed = 92;
  auto joins = MakeOverlappingChains(options).value();
  CompositeIndexCache cache;
  RandomWalkOverlapEstimator::Options opts;
  opts.min_walks = 400;
  opts.max_walks = 400;
  auto rw = RandomWalkOverlapEstimator::Create(joins, &cache, opts);
  ASSERT_TRUE(rw.ok());
  Rng rng(93);
  ASSERT_TRUE((*rw)->Warmup(rng).ok());
  EXPECT_DOUBLE_EQ((*rw)->EstimateOverlap(0b11).value(), 0.0);
}

TEST(RandomWalkOverlapTest, EstimateBeforeWarmupFails) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 15;
  auto joins = MakeOverlappingChains(options).value();
  CompositeIndexCache cache;
  auto rw = RandomWalkOverlapEstimator::Create(joins, &cache);
  ASSERT_TRUE(rw.ok());
  EXPECT_FALSE((*rw)->EstimateOverlap(0b11).ok());
}

TEST(RandomWalkOverlapTest, InvalidArgumentsRejected) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 15;
  auto joins = MakeOverlappingChains(options).value();
  CompositeIndexCache cache;
  auto rw = RandomWalkOverlapEstimator::Create(joins, &cache);
  ASSERT_TRUE(rw.ok());
  Rng rng(1);
  EXPECT_FALSE((*rw)->WalkAndRecord(5, rng).ok());
  EXPECT_FALSE((*rw)->EstimateOverlap(0).ok());
  EXPECT_FALSE(
      RandomWalkOverlapEstimator::Create(joins, nullptr).ok());
}

}  // namespace
}  // namespace suj
