// Tests for core/online_union_sampler: Algorithm 2's sample reuse and
// backtracking, uniformity, and pool accounting.

#include <gtest/gtest.h>

#include "core/exact_overlap.h"
#include "core/histogram_overlap.h"
#include "core/online_union_sampler.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

struct Fixture {
  std::vector<JoinSpecPtr> joins;
  std::unique_ptr<ExactOverlapCalculator> exact;
  CompositeIndexCache cache;
  std::unique_ptr<RandomWalkOverlapEstimator> walker;
};

Fixture MakeSetup(uint64_t seed, uint64_t walk_budget, int num_joins = 3) {
  Fixture s;
  SyntheticChainOptions options;
  options.num_joins = num_joins;
  options.master_rows = 20;
  options.seed = seed;
  s.joins = MakeOverlappingChains(options).value();
  s.exact = ExactOverlapCalculator::Create(s.joins).value();
  RandomWalkOverlapEstimator::Options rw_opts;
  rw_opts.min_walks = walk_budget;
  rw_opts.max_walks = walk_budget;
  s.walker =
      RandomWalkOverlapEstimator::Create(s.joins, &s.cache, rw_opts).value();
  return s;
}

void ExpectUniformOverUnion(const std::vector<Tuple>& samples,
                            const ExactOverlapCalculator& exact,
                            double slack) {
  auto counts = testing::CountByValue(samples);
  for (const auto& [key, c] : counts) {
    ASSERT_TRUE(exact.membership().count(key))
        << "sampled tuple outside the union";
  }
  double chi2 = testing::ChiSquareUniform(counts, exact.UnionSize(),
                                          samples.size());
  EXPECT_LT(chi2, slack * testing::ChiSquareThreshold(exact.UnionSize() - 1));
}

TEST(OnlineUnionSamplerTest, UniformWithReuseAndExactParameters) {
  Fixture s = MakeSetup(130, 3000);
  Rng rng(131);
  ASSERT_TRUE(s.walker->Warmup(rng).ok());
  auto estimates = ComputeUnionEstimates(s.exact.get()).value();
  OnlineUnionSampler::Options opts;
  opts.enable_reuse = true;
  auto sampler = OnlineUnionSampler::Create(s.joins, s.walker.get(),
                                            estimates, opts);
  ASSERT_TRUE(sampler.ok());
  size_t n = 40 * s.exact->UnionSize();
  auto samples = (*sampler)->Sample(n, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  EXPECT_EQ(samples->size(), n);
  // Reuse + fresh-walk acceptance both target uniformity; multi-instance
  // accepts add small correlation, so allow a modest chi-square slack.
  ExpectUniformOverUnion(*samples, *s.exact, 3.0);
  EXPECT_GT((*sampler)->stats().reuse_accepted, 0u);
}

TEST(OnlineUnionSamplerTest, UniformWithoutReuse) {
  Fixture s = MakeSetup(132, 500);
  Rng rng(133);
  ASSERT_TRUE(s.walker->Warmup(rng).ok());
  auto estimates = ComputeUnionEstimates(s.exact.get()).value();
  OnlineUnionSampler::Options opts;
  opts.enable_reuse = false;
  auto sampler = OnlineUnionSampler::Create(s.joins, s.walker.get(),
                                            estimates, opts);
  ASSERT_TRUE(sampler.ok());
  size_t n = 40 * s.exact->UnionSize();
  auto samples = (*sampler)->Sample(n, rng);
  ASSERT_TRUE(samples.ok());
  ExpectUniformOverUnion(*samples, *s.exact, 3.0);
  EXPECT_EQ((*sampler)->stats().reuse_accepted, 0u);
  EXPECT_GT((*sampler)->stats().fresh_accepted, 0u);
}

TEST(OnlineUnionSamplerTest, ReusePhaseFasterPathIsExercised) {
  Fixture s = MakeSetup(134, 2000);
  Rng rng(135);
  ASSERT_TRUE(s.walker->Warmup(rng).ok());
  auto estimates = ComputeUnionEstimates(s.walker.get()).value();
  OnlineUnionSampler::Options opts;
  opts.enable_reuse = true;
  auto sampler = OnlineUnionSampler::Create(s.joins, s.walker.get(),
                                            estimates, opts);
  ASSERT_TRUE(sampler.ok());
  auto samples = (*sampler)->Sample(300, rng);
  ASSERT_TRUE(samples.ok());
  const auto& stats = (*sampler)->stats();
  EXPECT_GT(stats.reuse_draws, 0u);
  // Fig 6b's contrast: pool draws happen without any join-graph walk.
  EXPECT_EQ(stats.reuse_draws + stats.fresh_walks, stats.join_draws);
}

TEST(OnlineUnionSamplerTest, HistogramInitWithBacktrackingStaysUniform) {
  Fixture s = MakeSetup(136, 800);
  Rng rng(137);
  // No warm-up walks: Algorithm 2's online setting -- initialize from the
  // histogram method, refine during sampling, backtrack periodically.
  HistogramCatalog histograms;
  auto hist =
      HistogramOverlapEstimator::Create(s.joins, &histograms).value();
  auto initial = ComputeUnionEstimates(hist.get()).value();
  OnlineUnionSampler::Options opts;
  opts.enable_reuse = true;
  opts.backtrack_interval = 200;
  opts.ci_threshold = 0.05;
  auto sampler = OnlineUnionSampler::Create(s.joins, s.walker.get(),
                                            initial, opts);
  ASSERT_TRUE(sampler.ok());
  size_t n = 30 * s.exact->UnionSize();
  auto samples = (*sampler)->Sample(n, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  // Histogram initialization biases early rounds; backtracking corrects
  // them, so tolerate a wider band (asymptotically this tightens).
  ExpectUniformOverUnion(*samples, *s.exact, 6.0);
  EXPECT_GT((*sampler)->stats().backtracks, 0u);
  // Estimates must have moved toward the random-walk values.
  const auto& refined = (*sampler)->current_estimates();
  double truth = static_cast<double>(s.exact->UnionSize());
  EXPECT_NEAR(refined.union_size_eq1, truth, 0.35 * truth + 2.0);
}

TEST(OnlineUnionSamplerTest, PoolsDrainWithoutReplacement) {
  Fixture s = MakeSetup(138, 50, /*num_joins=*/2);
  Rng rng(139);
  ASSERT_TRUE(s.walker->Warmup(rng).ok());
  auto estimates = ComputeUnionEstimates(s.exact.get()).value();
  OnlineUnionSampler::Options opts;
  opts.enable_reuse = true;
  auto sampler = OnlineUnionSampler::Create(s.joins, s.walker.get(),
                                            estimates, opts);
  ASSERT_TRUE(sampler.ok());
  auto samples = (*sampler)->Sample(400, rng);
  ASSERT_TRUE(samples.ok());
  const auto& stats = (*sampler)->stats();
  // The 50-walk pools cannot cover 400 samples: the sampler must have
  // fallen back to fresh walks after draining them.
  size_t pool_capacity = s.walker->records(0).size() +
                         s.walker->records(1).size() + 100;
  EXPECT_LE(stats.reuse_draws, pool_capacity);
  EXPECT_GT(stats.fresh_walks, 0u);
}

TEST(OnlineUnionSamplerTest, CreateValidation) {
  Fixture s = MakeSetup(140, 50);
  auto estimates = ComputeUnionEstimates(s.exact.get()).value();
  EXPECT_FALSE(
      OnlineUnionSampler::Create(s.joins, nullptr, estimates).ok());
  UnionEstimates zero = estimates;
  zero.cover_sizes.assign(zero.cover_sizes.size(), 0.0);
  EXPECT_FALSE(
      OnlineUnionSampler::Create(s.joins, s.walker.get(), zero).ok());
}

TEST(OnlineUnionSamplerTest, RevisionModeWorks) {
  Fixture s = MakeSetup(141, 1500);
  Rng rng(142);
  ASSERT_TRUE(s.walker->Warmup(rng).ok());
  auto estimates = ComputeUnionEstimates(s.exact.get()).value();
  OnlineUnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  auto sampler = OnlineUnionSampler::Create(s.joins, s.walker.get(),
                                            estimates, opts);
  ASSERT_TRUE(sampler.ok());
  size_t n = 30 * s.exact->UnionSize();
  auto samples = (*sampler)->Sample(n, rng);
  ASSERT_TRUE(samples.ok());
  ExpectUniformOverUnion(*samples, *s.exact, 5.0);
}

}  // namespace
}  // namespace suj
