// Tests for the observability layer (src/obs/, common/logging.h):
// counter exactness under concurrency, histogram bucket boundary
// placement, registry idempotency and isolation, the Prometheus text
// golden, the metrics on/off determinism contract (samples must be
// byte-identical), span recording, the lock-free span ring, the
// slow-request log trigger, and the leveled logging sink. The
// concurrency tests run under the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/sampling_service.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

// ---------------------------------------------------------------------------
// Counters / gauges / histograms

TEST(MetricsTest, CounterIsExactUnderConcurrentIncrements) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  // Sharding may spread the adds across cells, but never lose one.
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(MetricsTest, CounterSupportsDeltas) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test_delta_total");
  counter->Increment(41);
  counter->Increment();
  EXPECT_EQ(counter->Value(), 42u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  obs::MetricsRegistry registry;
  obs::Gauge* gauge = registry.GetGauge("test_level");
  gauge->Set(7);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 4);
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusiveUpper) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("test_ns", {10, 100, 1000});
  h->Observe(0);     // bucket 0 (le 10)
  h->Observe(10);    // bucket 0: bounds are inclusive upper
  h->Observe(11);    // bucket 1 (le 100)
  h->Observe(100);   // bucket 1
  h->Observe(1000);  // bucket 2 (le 1000)
  h->Observe(1001);  // +Inf
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->Count(), 6u);
  EXPECT_EQ(h->Sum(), 0u + 10 + 11 + 100 + 1000 + 1001);
}

TEST(MetricsTest, HistogramIsExactUnderConcurrentObserves) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("test_conc_ns", {100});
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h->Observe(t % 2 == 0 ? 1 : 200);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->Count(), kThreads * kPerThread);
  const std::vector<uint64_t> counts = h->BucketCounts();
  EXPECT_EQ(counts[0], 3 * kPerThread);  // the value-1 observers
  EXPECT_EQ(counts[1], 3 * kPerThread);  // the value-200 observers
}

// ---------------------------------------------------------------------------
// Registry semantics

TEST(MetricsTest, RegistrationIsIdempotentWithStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("test_total");
  obs::Counter* b = registry.GetCounter("test_total");
  EXPECT_EQ(a, b);
  obs::Histogram* h1 = registry.GetHistogram("test_h_ns", {1, 2});
  // Later bounds are ignored; the first registration wins.
  obs::Histogram* h2 = registry.GetHistogram("test_h_ns", {5, 6, 7});
  EXPECT_EQ(h1, h2);
  ASSERT_EQ(h2->bounds().size(), 2u);
  EXPECT_EQ(h2->bounds()[1], 2u);
}

TEST(MetricsTest, RegistriesAreIsolated) {
  // Tests render against private registries precisely so the global
  // one (fed by any instrumented code running in this process) cannot
  // leak into goldens — assert that isolation holds.
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.GetCounter("test_isolated_total")->Increment();
  EXPECT_EQ(b.GetCounter("test_isolated_total")->Value(), 0u);
  EXPECT_NE(a.GetCounter("test_isolated_total"),
            b.GetCounter("test_isolated_total"));
}

TEST(MetricsTest, DisableFreezesEveryInstrument) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test_frozen_total");
  obs::Histogram* h = registry.GetHistogram("test_frozen_ns", {10});
  counter->Increment();
  obs::SetMetricsEnabled(false);
  counter->Increment(100);
  h->Observe(5);
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(counter->Value(), 1u);
  EXPECT_EQ(h->Count(), 0u);
  counter->Increment();
  EXPECT_EQ(counter->Value(), 2u);
}

TEST(MetricsTest, PrometheusTextGolden) {
  obs::MetricsRegistry registry;
  registry.GetCounter("suj_demo_requests_total")->Increment(3);
  registry.GetGauge("suj_demo_open")->Set(-2);
  obs::Histogram* h = registry.GetHistogram("suj_demo_ns", {1000, 1000000});
  h->Observe(500);      // le 1000
  h->Observe(2000);     // le 1000000
  h->Observe(5000000);  // +Inf
  const std::string expected =
      "# TYPE suj_demo_requests_total counter\n"
      "suj_demo_requests_total 3\n"
      "# TYPE suj_demo_open gauge\n"
      "suj_demo_open -2\n"
      "# TYPE suj_demo_ns histogram\n"
      "suj_demo_ns_bucket{le=\"1000\"} 1\n"
      "suj_demo_ns_bucket{le=\"1000000\"} 2\n"
      "suj_demo_ns_bucket{le=\"+Inf\"} 3\n"
      "suj_demo_ns_sum 5002500\n"
      "suj_demo_ns_count 3\n";
  EXPECT_EQ(registry.RenderPrometheusText(), expected);
}

// ---------------------------------------------------------------------------
// Determinism contract: metrics and tracing never touch the samples

TEST(MetricsTest, SamplesAreByteIdenticalWithObservabilityOnAndOff) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 30;
  options.seed = 4242;
  auto joins = MakeOverlappingChains(options).value();

  // The full serving stack under one request, so the assertion covers
  // every instrumented layer (prepare, admission, session, core).
  auto run = [&joins]() {
    ServiceOptions options;
    options.seed = 99;
    auto service = SamplingService::Create(options).value();
    SUJ_CHECK(service->Prepare("q", joins).ok());
    uint64_t session = service->OpenSession("q", SessionOptions{}).value();
    auto tuples = service->Sample(session, 64, AdmitMode::kWait).value();
    std::vector<std::string> encodings;
    encodings.reserve(tuples.size());
    for (const auto& t : tuples) encodings.push_back(t.Encode());
    return encodings;
  };

  obs::SetMetricsEnabled(true);
  obs::TraceContext trace(obs::Tracer::Global().NextTraceId(), "test");
  std::vector<std::string> with_obs;
  {
    obs::TraceScope scope(&trace);
    with_obs = run();
  }
  obs::SetMetricsEnabled(false);
  const std::vector<std::string> without_obs = run();
  obs::SetMetricsEnabled(true);

  EXPECT_EQ(with_obs, without_obs);
  EXPECT_FALSE(with_obs.empty());
}

// ---------------------------------------------------------------------------
// Tracing

TEST(TraceTest, ScopedSpanRecordsIntoInstalledTrace) {
  obs::TraceContext trace(1, "test_op");
  {
    obs::TraceScope scope(&trace);
    obs::ScopedSpan span(obs::Stage::kWalk);
  }
  ASSERT_EQ(trace.span_count(), 1u);
  EXPECT_EQ(trace.spans()[0].stage, obs::Stage::kWalk);
  EXPECT_EQ(trace.spans()[0].trace_id, 1u);
  EXPECT_GE(trace.spans()[0].duration_ns, 0);
}

TEST(TraceTest, ScopedSpanIsANoOpWithoutATrace) {
  ASSERT_EQ(obs::CurrentTrace(), nullptr);
  obs::ScopedSpan span(obs::Stage::kWalk);  // must not crash or record
}

TEST(TraceTest, TraceScopesNest) {
  obs::TraceContext outer(1, "outer");
  obs::TraceContext inner(2, "inner");
  obs::TraceScope outer_scope(&outer);
  {
    obs::TraceScope inner_scope(&inner);
    EXPECT_EQ(obs::CurrentTrace(), &inner);
  }
  EXPECT_EQ(obs::CurrentTrace(), &outer);
}

TEST(TraceTest, OverflowingSpansAreCountedNotStored) {
  obs::TraceContext trace(1, "op");
  for (size_t i = 0; i < obs::TraceContext::kMaxSpans + 5; ++i) {
    trace.Record(obs::Stage::kWalk, 0, 1);
  }
  EXPECT_EQ(trace.span_count(), obs::TraceContext::kMaxSpans);
  EXPECT_EQ(trace.dropped(), 5u);
}

TEST(TraceTest, SpanRingSnapshotReturnsPushedRecordsOldestFirst) {
  obs::SpanRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 1; i <= 3; ++i) {
    ring.Push(obs::SpanRecord{i, obs::Stage::kWalk,
                              static_cast<int64_t>(i * 10), 1});
  }
  auto snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].trace_id, 1u);
  EXPECT_EQ(snapshot[2].trace_id, 3u);
}

TEST(TraceTest, SpanRingOverwritesOldestWhenFull) {
  obs::SpanRing ring(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    ring.Push(obs::SpanRecord{i, obs::Stage::kWalk, 0, 0});
  }
  auto snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot.front().trace_id, 7u);
  EXPECT_EQ(snapshot.back().trace_id, 10u);
}

TEST(TraceTest, SpanRingIsSafeUnderConcurrentPushAndSnapshot) {
  obs::SpanRing ring(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&ring, &stop, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ring.Push(obs::SpanRecord{static_cast<uint64_t>(w) * 1'000'000 + ++i,
                                  obs::Stage::kStreamChunk, 1, 2});
      }
    });
  }
  for (int r = 0; r < 200; ++r) {
    auto snapshot = ring.Snapshot();
    for (const auto& record : snapshot) {
      // A published record is never torn: fields are all-or-nothing.
      EXPECT_EQ(record.start_ns, 1);
      EXPECT_EQ(record.duration_ns, 2);
      EXPECT_EQ(record.stage, obs::Stage::kStreamChunk);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

// ---------------------------------------------------------------------------
// Slow-request log

std::vector<std::string>& CapturedLogs() {
  static std::vector<std::string> logs;
  return logs;
}

void CaptureSink(LogLevel, const char*, int, const std::string& message) {
  CapturedLogs().push_back(message);
}

TEST(TraceTest, SlowRequestsEmitTheStructuredLogLine) {
  obs::Tracer& tracer = obs::Tracer::Global();
  const int64_t prev_threshold = tracer.slow_threshold_ns();
  const LogLevel prev_level = GetLogLevel();
  CapturedLogs().clear();
  LogSink prev_sink = SetLogSink(CaptureSink);
  SetLogLevel(LogLevel::kWarn);
  tracer.set_slow_threshold_ns(1);  // everything is slow

  obs::TraceContext trace(tracer.NextTraceId(), "sample");
  trace.Record(obs::Stage::kWalk, trace.start_ns(), 5'000'000);
  trace.Record(obs::Stage::kAdmissionWait, trace.start_ns(), 2'000'000);
  tracer.Finish(trace, "tenant=acme");

  tracer.set_slow_threshold_ns(prev_threshold);
  SetLogSink(prev_sink);
  SetLogLevel(prev_level);

  ASSERT_EQ(CapturedLogs().size(), 1u);
  const std::string& line = CapturedLogs()[0];
  EXPECT_NE(line.find("slow request"), std::string::npos) << line;
  EXPECT_NE(line.find("op=sample"), std::string::npos) << line;
  EXPECT_NE(line.find("walk_us=5000"), std::string::npos) << line;
  EXPECT_NE(line.find("admission_wait_us=2000"), std::string::npos) << line;
  EXPECT_NE(line.find("tenant=acme"), std::string::npos) << line;
}

TEST(TraceTest, FastRequestsStayOutOfTheSlowLog) {
  obs::Tracer& tracer = obs::Tracer::Global();
  const int64_t prev_threshold = tracer.slow_threshold_ns();
  CapturedLogs().clear();
  LogSink prev_sink = SetLogSink(CaptureSink);
  tracer.set_slow_threshold_ns(int64_t{60} * 1'000'000'000);  // a minute

  obs::TraceContext trace(tracer.NextTraceId(), "sample");
  tracer.Finish(trace);

  tracer.set_slow_threshold_ns(prev_threshold);
  SetLogSink(prev_sink);
  EXPECT_TRUE(CapturedLogs().empty());
}

// ---------------------------------------------------------------------------
// Leveled logging

TEST(LoggingTest, ThresholdFiltersAndSinkReceives) {
  const LogLevel prev_level = GetLogLevel();
  CapturedLogs().clear();
  LogSink prev_sink = SetLogSink(CaptureSink);

  SetLogLevel(LogLevel::kWarn);
  SUJ_LOG(INFO) << "below threshold";  // filtered: never reaches the sink
  SUJ_LOG(ERROR) << "boom " << 42;
  SetLogLevel(LogLevel::kOff);
  SUJ_LOG(ERROR) << "silenced";

  SetLogSink(prev_sink);
  SetLogLevel(prev_level);
  ASSERT_EQ(CapturedLogs().size(), 1u);
  EXPECT_EQ(CapturedLogs()[0], "boom 42");
}

TEST(LoggingTest, FilteredStatementsDoNotEvaluateOperands) {
  const LogLevel prev_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  SUJ_LOG(INFO) << expensive();
  SetLogLevel(prev_level);
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace suj
