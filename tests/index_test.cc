// Tests for index/: HashIndex, CompositeIndex, RowMembershipIndex, caches.

#include <gtest/gtest.h>

#include "index/composite_index.h"
#include "index/hash_index.h"
#include "index/row_membership_index.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeRelation;

RelationPtr TestRelation() {
  return MakeRelation("r", {"a", "b"},
                      {{1, 10}, {1, 11}, {2, 10}, {3, 12}, {1, 12}})
      .value();
}

TEST(HashIndexTest, DegreesAndLookup) {
  auto index = HashIndex::Build(TestRelation(), "a");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->Degree(Value::Int64(1)), 3u);
  EXPECT_EQ((*index)->Degree(Value::Int64(2)), 1u);
  EXPECT_EQ((*index)->Degree(Value::Int64(9)), 0u);
  EXPECT_EQ((*index)->MaxDegree(), 3u);
  EXPECT_EQ((*index)->NumDistinct(), 3u);
  EXPECT_DOUBLE_EQ((*index)->AvgDegree(), 5.0 / 3.0);
  const auto& rows = (*index)->Lookup(Value::Int64(1));
  EXPECT_EQ(rows.size(), 3u);
}

TEST(HashIndexTest, MissingAttributeFails) {
  auto index = HashIndex::Build(TestRelation(), "zz");
  EXPECT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kNotFound);
}

TEST(HashIndexTest, EmptyRelation) {
  auto rel = MakeRelation("e", {"a"}, {}).value();
  auto index = HashIndex::Build(rel, "a");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->MaxDegree(), 0u);
  EXPECT_DOUBLE_EQ((*index)->AvgDegree(), 0.0);
}

TEST(IndexCacheTest, ReusesIndexes) {
  IndexCache cache;
  auto rel = TestRelation();
  auto i1 = cache.GetOrBuild(rel, "a");
  auto i2 = cache.GetOrBuild(rel, "a");
  auto i3 = cache.GetOrBuild(rel, "b");
  ASSERT_TRUE(i1.ok() && i2.ok() && i3.ok());
  EXPECT_EQ(i1.value().get(), i2.value().get());
  EXPECT_NE(i1.value().get(), i3.value().get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CompositeIndexTest, SingleAttribute) {
  auto index = CompositeIndex::Build(TestRelation(), {"a"});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->Degree(Tuple({Value::Int64(1)})), 3u);
  EXPECT_EQ((*index)->MaxDegree(), 3u);
}

TEST(CompositeIndexTest, TwoAttributes) {
  auto index = CompositeIndex::Build(TestRelation(), {"a", "b"});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->Degree(Tuple({Value::Int64(1), Value::Int64(10)})), 1u);
  EXPECT_EQ((*index)->Degree(Tuple({Value::Int64(1), Value::Int64(99)})), 0u);
  EXPECT_EQ((*index)->NumKeys(), 5u);
  EXPECT_EQ((*index)->MaxDegree(), 1u);
}

TEST(CompositeIndexTest, KeyOrderMatters) {
  auto ab = CompositeIndex::Build(TestRelation(), {"a", "b"});
  auto ba = CompositeIndex::Build(TestRelation(), {"b", "a"});
  ASSERT_TRUE(ab.ok() && ba.ok());
  Tuple key_ab({Value::Int64(1), Value::Int64(10)});
  Tuple key_ba({Value::Int64(10), Value::Int64(1)});
  EXPECT_EQ((*ab)->Degree(key_ab), 1u);
  EXPECT_EQ((*ba)->Degree(key_ba), 1u);
  EXPECT_EQ((*ab)->Degree(key_ba), 0u);
}

TEST(CompositeIndexTest, EmptyAttributeListFails) {
  EXPECT_FALSE(CompositeIndex::Build(TestRelation(), {}).ok());
}

TEST(CompositeIndexCacheTest, KeyedByRelationAndAttrs) {
  CompositeIndexCache cache;
  auto rel = TestRelation();
  auto i1 = cache.GetOrBuild(rel, {"a", "b"});
  auto i2 = cache.GetOrBuild(rel, {"a", "b"});
  auto i3 = cache.GetOrBuild(rel, {"b"});
  ASSERT_TRUE(i1.ok() && i2.ok() && i3.ok());
  EXPECT_EQ(i1.value().get(), i2.value().get());
  EXPECT_NE(i1.value().get(), i3.value().get());
}

TEST(RowMembershipIndexTest, ContainsProjectedRows) {
  auto index = RowMembershipIndex::Build(TestRelation(), {"a", "b"});
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->Contains(Tuple({Value::Int64(1), Value::Int64(10)})));
  EXPECT_TRUE((*index)->Contains(Tuple({Value::Int64(3), Value::Int64(12)})));
  EXPECT_FALSE(
      (*index)->Contains(Tuple({Value::Int64(3), Value::Int64(10)})));
  EXPECT_EQ((*index)->NumDistinctRows(), 5u);
}

TEST(RowMembershipIndexTest, SubsetOfAttributes) {
  auto index = RowMembershipIndex::Build(TestRelation(), {"b"});
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->Contains(Tuple({Value::Int64(10)})));
  EXPECT_FALSE((*index)->Contains(Tuple({Value::Int64(13)})));
  EXPECT_EQ((*index)->NumDistinctRows(), 3u);  // distinct b values
}

TEST(RowMembershipIndexTest, MissingAttributeFails) {
  EXPECT_FALSE(RowMembershipIndex::Build(TestRelation(), {"zz"}).ok());
}

}  // namespace
}  // namespace suj
