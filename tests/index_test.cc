// Tests for index/: HashIndex, CompositeIndex, RowMembershipIndex, caches.

#include <gtest/gtest.h>

#include "index/composite_index.h"
#include "index/hash_index.h"
#include "index/row_membership_index.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeRelation;

RelationPtr TestRelation() {
  return MakeRelation("r", {"a", "b"},
                      {{1, 10}, {1, 11}, {2, 10}, {3, 12}, {1, 12}})
      .value();
}

TEST(HashIndexTest, DegreesAndLookup) {
  auto index = HashIndex::Build(TestRelation(), "a");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->Degree(Value::Int64(1)), 3u);
  EXPECT_EQ((*index)->Degree(Value::Int64(2)), 1u);
  EXPECT_EQ((*index)->Degree(Value::Int64(9)), 0u);
  EXPECT_EQ((*index)->MaxDegree(), 3u);
  EXPECT_EQ((*index)->NumDistinct(), 3u);
  EXPECT_DOUBLE_EQ((*index)->AvgDegree(), 5.0 / 3.0);
  const auto& rows = (*index)->Lookup(Value::Int64(1));
  EXPECT_EQ(rows.size(), 3u);
}

TEST(HashIndexTest, MissingAttributeFails) {
  auto index = HashIndex::Build(TestRelation(), "zz");
  EXPECT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kNotFound);
}

TEST(HashIndexTest, EmptyRelation) {
  auto rel = MakeRelation("e", {"a"}, {}).value();
  auto index = HashIndex::Build(rel, "a");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->MaxDegree(), 0u);
  EXPECT_DOUBLE_EQ((*index)->AvgDegree(), 0.0);
}

TEST(IndexCacheTest, ReusesIndexes) {
  IndexCache cache;
  auto rel = TestRelation();
  auto i1 = cache.GetOrBuild(rel, "a");
  auto i2 = cache.GetOrBuild(rel, "a");
  auto i3 = cache.GetOrBuild(rel, "b");
  ASSERT_TRUE(i1.ok() && i2.ok() && i3.ok());
  EXPECT_EQ(i1.value().get(), i2.value().get());
  EXPECT_NE(i1.value().get(), i3.value().get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CompositeIndexTest, SingleAttribute) {
  auto index = CompositeIndex::Build(TestRelation(), {"a"});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->Degree(Tuple({Value::Int64(1)})), 3u);
  EXPECT_EQ((*index)->MaxDegree(), 3u);
}

TEST(CompositeIndexTest, TwoAttributes) {
  auto index = CompositeIndex::Build(TestRelation(), {"a", "b"});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->Degree(Tuple({Value::Int64(1), Value::Int64(10)})), 1u);
  EXPECT_EQ((*index)->Degree(Tuple({Value::Int64(1), Value::Int64(99)})), 0u);
  EXPECT_EQ((*index)->NumKeys(), 5u);
  EXPECT_EQ((*index)->MaxDegree(), 1u);
}

TEST(CompositeIndexTest, KeyOrderMatters) {
  auto ab = CompositeIndex::Build(TestRelation(), {"a", "b"});
  auto ba = CompositeIndex::Build(TestRelation(), {"b", "a"});
  ASSERT_TRUE(ab.ok() && ba.ok());
  Tuple key_ab({Value::Int64(1), Value::Int64(10)});
  Tuple key_ba({Value::Int64(10), Value::Int64(1)});
  EXPECT_EQ((*ab)->Degree(key_ab), 1u);
  EXPECT_EQ((*ba)->Degree(key_ba), 1u);
  EXPECT_EQ((*ab)->Degree(key_ba), 0u);
}

TEST(CompositeIndexTest, EmptyAttributeListFails) {
  EXPECT_FALSE(CompositeIndex::Build(TestRelation(), {}).ok());
}

TEST(CompositeIndexTest, CsrArraysAgreeWithLookups) {
  // The raw CSR accessors are what the columnar walk loops read; they
  // must describe exactly the groups the encoded-key API serves.
  auto rel = TestRelation();
  auto index = CompositeIndex::Build(rel, {"a"}).value();
  const auto& offsets = index->group_offsets();
  const auto& rows = index->group_rows();
  ASSERT_EQ(offsets.size(), index->NumKeys() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), rows.size());
  EXPECT_EQ(rows.size(), rel->num_rows());

  // Every row appears exactly once, in the group its key maps to.
  std::vector<int> seen(rel->num_rows(), 0);
  for (uint32_t g = 0; g + 1 < offsets.size(); ++g) {
    RowSpan span = index->GroupRows(g);
    EXPECT_EQ(span.data(), rows.data() + offsets[g]);
    EXPECT_EQ(span.size(), offsets[g + 1] - offsets[g]);
    for (uint32_t row : span) {
      ++seen[row];
      EXPECT_EQ(index->GroupOfEncoded(rel->ProjectRow(row, {0}).Encode()), g);
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  // kNoGroup resolves to the empty span, never a CSR slice.
  EXPECT_TRUE(index->GroupRows(CompositeIndex::kNoGroup).empty());
}

TEST(CompositeIndexTest, MapRowsTranslatesRowsToGroups) {
  // MapRows is the probe-array build: for each row of the probe
  // relation, the group its projection maps to — kNoGroup for dangling
  // rows. This is what lets walk loops skip key encoding entirely.
  auto target = TestRelation();  // keyed on b below
  auto probe = MakeRelation("p", {"b", "c"},
                            {{10, 1}, {12, 2}, {99, 3}, {11, 4}})
                   .value();
  auto index = CompositeIndex::Build(target, {"b"}).value();
  auto mapped = index->MapRows(*probe);
  ASSERT_TRUE(mapped.ok());
  ASSERT_EQ(mapped->size(), probe->num_rows());
  for (size_t row = 0; row < probe->num_rows(); ++row) {
    const uint32_t expected =
        index->GroupOfEncoded(probe->ProjectRow(row, {0}).Encode());
    EXPECT_EQ((*mapped)[row], expected) << "row=" << row;
  }
  EXPECT_EQ((*mapped)[2], CompositeIndex::kNoGroup) << "dangling b=99";

  // A probe relation missing an indexed attribute fails loudly.
  auto bad = MakeRelation("q", {"z", "w"}, {{1, 0}}).value();
  EXPECT_FALSE(index->MapRows(*bad).ok());
}

TEST(CompositeIndexCacheTest, ProbeArraysAreCachedByIndexAndRelation) {
  CompositeIndexCache cache;
  auto target = TestRelation();
  auto probe = MakeRelation("p", {"a", "b"}, {{1, 10}, {9, 99}}).value();
  auto index = cache.GetOrBuild(target, {"a"}).value();
  auto p1 = cache.GetOrBuildProbe(index, probe);
  auto p2 = cache.GetOrBuildProbe(index, probe);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->get(), p2->get()) << "same (index, probe) must share";
  ASSERT_EQ((*p1)->size(), 2u);
  EXPECT_NE((**p1)[0], CompositeIndex::kNoGroup);
  EXPECT_EQ((**p1)[1], CompositeIndex::kNoGroup);

  auto other_index = cache.GetOrBuild(target, {"b"}).value();
  auto p3 = cache.GetOrBuildProbe(other_index, probe);
  ASSERT_TRUE(p3.ok());
  EXPECT_NE(p1->get(), p3->get()) << "different index, different array";
}

TEST(CompositeIndexCacheTest, KeyedByRelationAndAttrs) {
  CompositeIndexCache cache;
  auto rel = TestRelation();
  auto i1 = cache.GetOrBuild(rel, {"a", "b"});
  auto i2 = cache.GetOrBuild(rel, {"a", "b"});
  auto i3 = cache.GetOrBuild(rel, {"b"});
  ASSERT_TRUE(i1.ok() && i2.ok() && i3.ok());
  EXPECT_EQ(i1.value().get(), i2.value().get());
  EXPECT_NE(i1.value().get(), i3.value().get());
}

TEST(RowMembershipIndexTest, ContainsProjectedRows) {
  auto index = RowMembershipIndex::Build(TestRelation(), {"a", "b"});
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->Contains(Tuple({Value::Int64(1), Value::Int64(10)})));
  EXPECT_TRUE((*index)->Contains(Tuple({Value::Int64(3), Value::Int64(12)})));
  EXPECT_FALSE(
      (*index)->Contains(Tuple({Value::Int64(3), Value::Int64(10)})));
  EXPECT_EQ((*index)->NumDistinctRows(), 5u);
}

TEST(RowMembershipIndexTest, SubsetOfAttributes) {
  auto index = RowMembershipIndex::Build(TestRelation(), {"b"});
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->Contains(Tuple({Value::Int64(10)})));
  EXPECT_FALSE((*index)->Contains(Tuple({Value::Int64(13)})));
  EXPECT_EQ((*index)->NumDistinctRows(), 3u);  // distinct b values
}

TEST(RowMembershipIndexTest, MissingAttributeFails) {
  EXPECT_FALSE(RowMembershipIndex::Build(TestRelation(), {"zz"}).ok());
}

}  // namespace
}  // namespace suj
