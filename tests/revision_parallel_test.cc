// Tests for the parallel revision-mode protocol (epoch-reconciled
// ownership, core/ownership_map.h + UnionSampler::SampleRevisionParallel):
// byte-identical samples across thread counts, revision/purge counter
// invariants, resume-across-Sample()-calls equivalence, the next-call
// abandonment boundary, and Create validation of the lifted
// kRevision-requires-sequential restriction.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/exact_overlap.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

std::vector<std::string> Encodings(const std::vector<Tuple>& samples) {
  std::vector<std::string> out;
  out.reserve(samples.size());
  for (const auto& t : samples) out.push_back(t.Encode());
  return out;
}

struct Fixture {
  std::vector<JoinSpecPtr> joins;
  std::unique_ptr<ExactOverlapCalculator> exact;
  UnionEstimates estimates;
  CompositeIndexCache cache;
};

Fixture MakeSetup(uint64_t seed, int num_joins = 3, int master_rows = 20) {
  Fixture s;
  SyntheticChainOptions options;
  options.num_joins = num_joins;
  options.master_rows = master_rows;
  options.seed = seed;
  s.joins = MakeOverlappingChains(options).value();
  s.exact = ExactOverlapCalculator::Create(s.joins).value();
  s.estimates = ComputeUnionEstimates(s.exact.get()).value();
  return s;
}

UnionSampler::JoinSamplerFactory EwFactory(Fixture& s) {
  return [&s]() -> Result<std::vector<std::unique_ptr<JoinSampler>>> {
    std::vector<std::unique_ptr<JoinSampler>> out;
    for (const auto& join : s.joins) {
      auto sampler = ExactWeightSampler::Create(join, &s.cache);
      if (!sampler.ok()) return sampler.status();
      out.push_back(std::move(*sampler));
    }
    return out;
  };
}

std::unique_ptr<UnionSampler> MakeRevisionParallelSampler(
    Fixture& s, size_t threads, size_t batch_size = 64) {
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  opts.num_threads = threads;
  opts.batch_size = batch_size;
  opts.sampler_factory = EwFactory(s);
  // No probers: the decentralized protocol never probes membership.
  return UnionSampler::Create(s.joins, {}, s.estimates, {}, opts).value();
}

// The deterministic (non-timing, non-scheduling) counters of a stats
// block, for cross-thread-count equality checks.
std::vector<uint64_t> DeterministicCounters(const UnionSampleStats& s) {
  return {s.rounds,           s.join_draws,        s.accepted,
          s.rejected_cover,   s.revisions,         s.removed_by_revision,
          s.abandoned_rounds, s.parallel_batches,  s.revision_epochs,
          s.reconcile_dropped};
}

TEST(RevisionParallelTest, ByteIdenticalAcrossThreadCounts) {
  Fixture s = MakeSetup(300);
  const size_t n = 999;  // deliberately not a batch multiple
  std::vector<std::string> reference;
  std::vector<uint64_t> reference_counters;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto sampler = MakeRevisionParallelSampler(s, threads);
    Rng rng(301);
    auto samples = sampler->Sample(n, rng);
    ASSERT_TRUE(samples.ok()) << samples.status().ToString();
    ASSERT_EQ(samples->size(), n);
    auto encodings = Encodings(*samples);
    auto counters = DeterministicCounters(sampler->stats());
    if (reference.empty()) {
      reference = encodings;
      reference_counters = counters;
    } else {
      EXPECT_EQ(encodings, reference) << "threads=" << threads;
      // Epoch layout, claims, and reconciliation are schedule-independent
      // too, so every counter (not just the sample bytes) must agree.
      EXPECT_EQ(counters, reference_counters) << "threads=" << threads;
    }
  }
}

TEST(RevisionParallelTest, RevisionAndPurgeCountInvariants) {
  Fixture s = MakeSetup(302);
  auto sampler = MakeRevisionParallelSampler(s, /*threads=*/4,
                                             /*batch_size=*/32);
  Rng rng(303);
  const size_t n = 60 * s.exact->UnionSize();
  auto samples = sampler->Sample(n, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  ASSERT_EQ(samples->size(), n);
  const auto& stats = sampler->stats();
  // Every locally accepted tuple either stands in the delivered result,
  // was purged by a (batch-local or reconciliation) revision, or was
  // dropped by reconciliation — nothing else can happen to it.
  EXPECT_EQ(stats.accepted - stats.removed_by_revision -
                stats.reconcile_dropped,
            n);
  // An overlapping workload must actually exercise the revision path.
  EXPECT_GT(stats.revisions, 0u);
  EXPECT_GE(stats.revision_epochs, 1u);
  EXPECT_GE(stats.parallel_batches, stats.revision_epochs);
  EXPECT_GE(stats.reconciliation_seconds, 0.0);
  // Everything delivered lies inside the union.
  for (const auto& t : *samples) {
    ASSERT_TRUE(s.exact->membership().count(t.Encode()))
        << "sampled tuple outside the union";
  }
}

TEST(RevisionParallelTest, ResumeAcrossCallsMatchesEveryThreadCount) {
  // The protocol is resumable: repeated Sample calls continue it. The
  // guarantee under resumption is thread-count independence — the SAME
  // call pattern delivers the SAME bytes at every thread count (the
  // per-call revision state and per-call epoch seeds make the sequence a
  // function of the call pattern, which is the caller's contract).
  Fixture s = MakeSetup(304);
  std::vector<std::string> reference;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto sampler = MakeRevisionParallelSampler(s, threads,
                                               /*batch_size=*/32);
    Rng rng(305);
    std::vector<std::string> concatenated;
    for (int call = 0; call < 3; ++call) {
      auto batch = sampler->Sample(40, rng);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      for (const auto& t : *batch) concatenated.push_back(t.Encode());
    }
    if (reference.empty()) {
      reference = concatenated;
    } else {
      EXPECT_EQ(concatenated, reference) << "threads=" << threads;
    }
  }
}

TEST(RevisionParallelTest, AbandonmentTakesEffectNextCall) {
  // Same boundary as the oracle executor path (see
  // parallel_executor_test.cc): a join whose lying estimate is exposed
  // mid-call keeps its call-start weight for every batch of that call and
  // is excluded only from the next call on.
  Fixture s = MakeSetup(306);
  auto empty_r =
      workloads::MakeRelation("er", {"A0", "A1"}, {{1, 2}}).value();
  auto empty_s =
      workloads::MakeRelation("es", {"A1", "A2"}, {{99, 3}}).value();
  auto empty_t =
      workloads::MakeRelation("et", {"A2", "A3"}, {{3, 4}}).value();
  s.joins.push_back(
      JoinSpec::Create("empty", {empty_r, empty_s, empty_t}).value());
  s.exact = ExactOverlapCalculator::Create(s.joins).value();
  s.estimates = ComputeUnionEstimates(s.exact.get()).value();
  ASSERT_DOUBLE_EQ(s.estimates.cover_sizes.back(), 0.0);
  s.estimates.cover_sizes.back() = s.estimates.cover_sizes[0];  // the lie

  std::vector<std::string> first_call, second_call;
  for (size_t threads : {1u, 4u}) {
    UnionSampler::Options opts;
    opts.mode = UnionSampler::Mode::kRevision;
    opts.num_threads = threads;
    opts.batch_size = 32;
    opts.max_draws_per_round = 200;
    opts.sampler_factory = EwFactory(s);
    auto sampler =
        UnionSampler::Create(s.joins, {}, s.estimates, {}, opts).value();
    Rng rng(307);
    auto call1 = sampler->Sample(300, rng);
    ASSERT_TRUE(call1.ok()) << call1.status().ToString();
    ASSERT_EQ(call1->size(), 300u);
    uint64_t abandoned_after_call1 = sampler->stats().abandoned_rounds;
    EXPECT_GE(abandoned_after_call1, 1u);
    auto call2 = sampler->Sample(300, rng);
    ASSERT_TRUE(call2.ok()) << call2.status().ToString();
    EXPECT_EQ(sampler->stats().abandoned_rounds, abandoned_after_call1);
    auto enc1 = Encodings(*call1);
    auto enc2 = Encodings(*call2);
    if (threads == 1) {
      first_call = enc1;
      second_call = enc2;
    } else {
      EXPECT_EQ(enc1, first_call);
      EXPECT_EQ(enc2, second_call);
    }
  }
}

TEST(RevisionParallelTest, StatsMergeCarriesEpochCounters) {
  UnionSampleStats a;
  a.revision_epochs = 2;
  a.reconcile_dropped = 5;
  a.reconciliation_seconds = 0.25;
  UnionSampleStats b;
  b.revision_epochs = 3;
  b.reconcile_dropped = 1;
  b.reconciliation_seconds = 0.5;
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.revision_epochs, 5u);
  EXPECT_EQ(a.reconcile_dropped, 6u);
  EXPECT_DOUBLE_EQ(a.reconciliation_seconds, 0.75);
}

TEST(RevisionParallelTest, CreateValidation) {
  Fixture s = MakeSetup(308, /*num_joins=*/2);
  // Revision + factory + no probers: the lifted restriction.
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  opts.sampler_factory = EwFactory(s);
  EXPECT_TRUE(UnionSampler::Create(s.joins, {}, s.estimates, {}, opts).ok());
  // Create-time samplers are still rejected alongside a factory.
  auto samplers = EwFactory(s)();
  ASSERT_TRUE(samplers.ok());
  EXPECT_FALSE(UnionSampler::Create(s.joins, std::move(*samplers),
                                    s.estimates, {}, opts)
                   .ok());
  // Zero batch size is still invalid.
  UnionSampler::Options zero_batch = opts;
  zero_batch.sampler_factory = EwFactory(s);
  zero_batch.batch_size = 0;
  EXPECT_FALSE(
      UnionSampler::Create(s.joins, {}, s.estimates, {}, zero_batch).ok());
}

}  // namespace
}  // namespace suj
