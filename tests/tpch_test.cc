// Tests for tpch/: generator row counts, determinism, referential
// integrity, and overlap-variant construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "tpch/generator.h"
#include "tpch/overlap_generator.h"
#include "tpch/text_pool.h"

namespace suj {
namespace tpch {
namespace {

TEST(TextPoolTest, FixedNamesAndMapping) {
  EXPECT_STREQ(RegionName(0), "AFRICA");
  EXPECT_STREQ(RegionName(4), "MIDDLE EAST");
  EXPECT_STREQ(NationName(0), "ALGERIA");
  EXPECT_STREQ(NationName(24), "UNITED STATES");
  EXPECT_EQ(NationRegion(0), 0);   // ALGERIA -> AFRICA
  EXPECT_EQ(NationRegion(6), 3);   // FRANCE -> EUROPE
  EXPECT_EQ(NationRegion(24), 1);  // UNITED STATES -> AMERICA
}

TEST(TextPoolTest, PhraseAndEntityNames) {
  Rng rng(1);
  std::string phrase = RandomPhrase(rng, 3);
  EXPECT_EQ(std::count(phrase.begin(), phrase.end(), ' '), 2);
  EXPECT_EQ(EntityName("Supplier", 7), "Supplier#7");
}

TEST(TpchGeneratorTest, RowCountsScale) {
  TpchConfig config;
  config.scale_factor = 2.0;
  TpchGenerator gen(config);
  auto catalog = gen.Generate();
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->Get("region").value()->num_rows(), 5u);
  EXPECT_EQ(catalog->Get("nation").value()->num_rows(), 25u);
  EXPECT_EQ(catalog->Get("supplier").value()->num_rows(), 20u);
  EXPECT_EQ(catalog->Get("customer").value()->num_rows(), 300u);
  EXPECT_EQ(catalog->Get("orders").value()->num_rows(), 3000u);
  EXPECT_EQ(catalog->Get("part").value()->num_rows(), 400u);
  // lineitem: 1..7 lines per order, expectation 4.
  size_t li = catalog->Get("lineitem").value()->num_rows();
  EXPECT_GT(li, 3000u * 2);
  EXPECT_LT(li, 3000u * 7);
  // partsupp: 4 per part (enough suppliers exist).
  EXPECT_EQ(catalog->Get("partsupp").value()->num_rows(), 1600u);
}

TEST(TpchGeneratorTest, MinimumCountsAtTinyScale) {
  TpchConfig config;
  config.scale_factor = 0.001;
  auto catalog = TpchGenerator(config).Generate();
  ASSERT_TRUE(catalog.ok());
  EXPECT_GE(catalog->Get("supplier").value()->num_rows(), 2u);
  EXPECT_GE(catalog->Get("customer").value()->num_rows(), 3u);
  EXPECT_GE(catalog->Get("orders").value()->num_rows(), 5u);
}

TEST(TpchGeneratorTest, DeterministicAcrossRuns) {
  TpchConfig config;
  config.scale_factor = 0.5;
  auto c1 = TpchGenerator(config).Generate();
  auto c2 = TpchGenerator(config).Generate();
  ASSERT_TRUE(c1.ok() && c2.ok());
  for (const char* table : {"supplier", "customer", "orders", "lineitem"}) {
    RelationPtr r1 = c1->Get(table).value();
    RelationPtr r2 = c2->Get(table).value();
    ASSERT_EQ(r1->num_rows(), r2->num_rows()) << table;
    for (size_t row = 0; row < r1->num_rows(); ++row) {
      ASSERT_EQ(r1->GetTuple(row).Encode(), r2->GetTuple(row).Encode())
          << table << " row " << row;
    }
  }
}

TEST(TpchGeneratorTest, SeedChangesData) {
  TpchConfig a, b;
  a.seed = 1;
  b.seed = 2;
  auto ca = TpchGenerator(a).Generate();
  auto cb = TpchGenerator(b).Generate();
  ASSERT_TRUE(ca.ok() && cb.ok());
  RelationPtr sa = ca->Get("supplier").value();
  RelationPtr sb = cb->Get("supplier").value();
  bool any_diff = false;
  for (size_t row = 0; row < sa->num_rows(); ++row) {
    if (sa->GetTuple(row).Encode() != sb->GetTuple(row).Encode()) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(TpchGeneratorTest, ReferentialIntegrity) {
  TpchConfig config;
  config.scale_factor = 0.2;
  auto catalog = TpchGenerator(config).Generate();
  ASSERT_TRUE(catalog.ok());

  auto key_set = [&](const char* table, const char* attr) {
    RelationPtr rel = catalog->Get(table).value();
    int col = rel->schema().FieldIndex(attr);
    std::unordered_set<int64_t> keys;
    for (size_t row = 0; row < rel->num_rows(); ++row) {
      keys.insert(rel->GetInt64(row, col));
    }
    return keys;
  };

  auto custkeys = key_set("customer", "custkey");
  auto orderkeys = key_set("orders", "orderkey");
  auto suppkeys = key_set("supplier", "suppkey");
  auto partkeys = key_set("part", "partkey");

  RelationPtr orders = catalog->Get("orders").value();
  int ck = orders->schema().FieldIndex("custkey");
  for (size_t row = 0; row < orders->num_rows(); ++row) {
    ASSERT_TRUE(custkeys.count(orders->GetInt64(row, ck)));
  }
  RelationPtr lineitem = catalog->Get("lineitem").value();
  int ok = lineitem->schema().FieldIndex("orderkey");
  for (size_t row = 0; row < lineitem->num_rows(); ++row) {
    ASSERT_TRUE(orderkeys.count(lineitem->GetInt64(row, ok)));
  }
  RelationPtr partsupp = catalog->Get("partsupp").value();
  int pk = partsupp->schema().FieldIndex("partkey");
  int sk = partsupp->schema().FieldIndex("suppkey");
  for (size_t row = 0; row < partsupp->num_rows(); ++row) {
    ASSERT_TRUE(partkeys.count(partsupp->GetInt64(row, pk)));
    ASSERT_TRUE(suppkeys.count(partsupp->GetInt64(row, sk)));
  }
  // Nation keys of customers/suppliers lie in [0, 25).
  RelationPtr supplier = catalog->Get("supplier").value();
  int nk = supplier->schema().FieldIndex("nationkey");
  for (size_t row = 0; row < supplier->num_rows(); ++row) {
    int64_t n = supplier->GetInt64(row, nk);
    ASSERT_GE(n, 0);
    ASSERT_LT(n, 25);
  }
}

TEST(TpchGeneratorTest, PrimaryKeysUnique) {
  TpchConfig config;
  config.scale_factor = 0.3;
  auto catalog = TpchGenerator(config).Generate();
  ASSERT_TRUE(catalog.ok());
  for (const char* spec : {"supplier/suppkey", "customer/custkey",
                           "orders/orderkey", "part/partkey"}) {
    std::string s(spec);
    auto slash = s.find('/');
    RelationPtr rel = catalog->Get(s.substr(0, slash)).value();
    int col = rel->schema().FieldIndex(s.substr(slash + 1));
    std::unordered_set<int64_t> keys;
    for (size_t row = 0; row < rel->num_rows(); ++row) {
      ASSERT_TRUE(keys.insert(rel->GetInt64(row, col)).second)
          << "duplicate key in " << spec;
    }
  }
}

TEST(TpchGeneratorTest, LineitemCompositeKeyUnique) {
  TpchConfig config;
  config.scale_factor = 0.3;
  auto catalog = TpchGenerator(config).Generate();
  ASSERT_TRUE(catalog.ok());
  RelationPtr li = catalog->Get("lineitem").value();
  int ok = li->schema().FieldIndex("orderkey");
  int ln = li->schema().FieldIndex("l_linenumber");
  std::set<std::pair<int64_t, int64_t>> keys;
  for (size_t row = 0; row < li->num_rows(); ++row) {
    ASSERT_TRUE(
        keys.emplace(li->GetInt64(row, ok), li->GetInt64(row, ln)).second)
        << "duplicate (orderkey, linenumber)";
  }
}

TEST(TpchGeneratorTest, PartsuppCompositeKeyUnique) {
  TpchConfig config;
  config.scale_factor = 0.5;
  auto catalog = TpchGenerator(config).Generate();
  ASSERT_TRUE(catalog.ok());
  RelationPtr ps = catalog->Get("partsupp").value();
  int pk = ps->schema().FieldIndex("partkey");
  int sk = ps->schema().FieldIndex("suppkey");
  std::set<std::pair<int64_t, int64_t>> keys;
  for (size_t row = 0; row < ps->num_rows(); ++row) {
    ASSERT_TRUE(
        keys.emplace(ps->GetInt64(row, pk), ps->GetInt64(row, sk)).second)
        << "duplicate (partkey, suppkey)";
  }
}

TEST(TpchGeneratorTest, OrderSkewConcentratesCustomers) {
  TpchConfig uniform, skewed;
  uniform.scale_factor = skewed.scale_factor = 1.0;
  skewed.customer_order_skew = 2.0;
  auto cu = TpchGenerator(uniform).Generate();
  auto cs = TpchGenerator(skewed).Generate();
  ASSERT_TRUE(cu.ok() && cs.ok());
  auto max_orders_per_customer = [](const Catalog& catalog) {
    RelationPtr orders = catalog.Get("orders").value();
    int ck = orders->schema().FieldIndex("custkey");
    std::unordered_map<int64_t, size_t> counts;
    size_t max_count = 0;
    for (size_t row = 0; row < orders->num_rows(); ++row) {
      size_t c = ++counts[orders->GetInt64(row, ck)];
      max_count = std::max(max_count, c);
    }
    return max_count;
  };
  EXPECT_GT(max_orders_per_customer(*cs), 2 * max_orders_per_customer(*cu));
}

TEST(OverlapGeneratorTest, SharedSliceIdenticalAcrossVariants) {
  OverlapConfig config;
  config.per_variant.scale_factor = 0.5;
  config.num_variants = 3;
  config.overlap_scale = 0.4;
  auto variants = OverlapVariantGenerator(config).Generate();
  ASSERT_TRUE(variants.ok());
  ASSERT_EQ(variants->size(), 3u);

  size_t shared_suppliers = static_cast<size_t>(
      0.4 * static_cast<double>(config.per_variant.NumSuppliers()) + 0.5);
  for (int v = 1; v < 3; ++v) {
    for (size_t row = 0; row < shared_suppliers; ++row) {
      ASSERT_EQ((*variants)[0].supplier->GetTuple(row).Encode(),
                (*variants)[v].supplier->GetTuple(row).Encode());
    }
  }
  // Region and nation are the same relations in every variant.
  EXPECT_EQ((*variants)[0].nation.get(), (*variants)[1].nation.get());
}

TEST(OverlapGeneratorTest, PrivateSlicesDisjointAcrossVariants) {
  OverlapConfig config;
  config.per_variant.scale_factor = 0.5;
  config.num_variants = 2;
  config.overlap_scale = 0.3;
  auto variants = OverlapVariantGenerator(config).Generate();
  ASSERT_TRUE(variants.ok());
  auto custkeys = [](const RelationPtr& rel) {
    std::set<int64_t> keys;
    int col = rel->schema().FieldIndex("custkey");
    for (size_t row = 0; row < rel->num_rows(); ++row) {
      keys.insert(rel->GetInt64(row, col));
    }
    return keys;
  };
  auto k0 = custkeys((*variants)[0].customer);
  auto k1 = custkeys((*variants)[1].customer);
  std::vector<int64_t> common;
  std::set_intersection(k0.begin(), k0.end(), k1.begin(), k1.end(),
                        std::back_inserter(common));
  // The intersection is exactly the shared key range [0, shared).
  size_t shared = static_cast<size_t>(
      0.3 * static_cast<double>(config.per_variant.NumCustomers()) + 0.5);
  EXPECT_EQ(common.size(), shared);
  for (int64_t k : common) EXPECT_LT(k, static_cast<int64_t>(shared));
}

TEST(OverlapGeneratorTest, ZeroOverlapScale) {
  OverlapConfig config;
  config.per_variant.scale_factor = 0.2;
  config.num_variants = 2;
  config.overlap_scale = 0.0;
  auto variants = OverlapVariantGenerator(config).Generate();
  ASSERT_TRUE(variants.ok());
  EXPECT_EQ((*variants)[0].customer->num_rows(),
            config.per_variant.NumCustomers());
}

TEST(OverlapGeneratorTest, FullOverlapScaleMakesIdenticalVariants) {
  OverlapConfig config;
  config.per_variant.scale_factor = 0.2;
  config.num_variants = 2;
  config.overlap_scale = 1.0;
  auto variants = OverlapVariantGenerator(config).Generate();
  ASSERT_TRUE(variants.ok());
  const auto& a = (*variants)[0];
  const auto& b = (*variants)[1];
  ASSERT_EQ(a.lineitem->num_rows(), b.lineitem->num_rows());
  for (size_t row = 0; row < a.lineitem->num_rows(); ++row) {
    ASSERT_EQ(a.lineitem->GetTuple(row).Encode(),
              b.lineitem->GetTuple(row).Encode());
  }
}

TEST(OverlapGeneratorTest, InvalidConfigRejected) {
  OverlapConfig config;
  config.num_variants = 0;
  EXPECT_FALSE(OverlapVariantGenerator(config).Generate().ok());
  config.num_variants = 2;
  config.overlap_scale = 1.5;
  EXPECT_FALSE(OverlapVariantGenerator(config).Generate().ok());
}

}  // namespace
}  // namespace tpch
}  // namespace suj
