// Tests for the multi-tenant hardening layer: TenantGovernor token
// buckets (manual clock — quota decisions are a pure function of
// options + timestamps), the bounded admission wait queue, and
// QueryRegistry LRU / memory-budget eviction with live sessions.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/prepared_union.h"
#include "service/sampling_service.h"
#include "service/tenant.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

constexpr int64_t kSecond = 1'000'000'000;

std::vector<JoinSpecPtr> MakeJoins(uint64_t seed, size_t master_rows = 20) {
  SyntheticChainOptions options;
  options.master_rows = master_rows;
  options.seed = seed;
  return MakeOverlappingChains(options).value();
}

// ---------------------------------------------------------------------------
// TenantGovernor

TEST(TenantGovernorTest, DefaultQuotaAdmitsEverything) {
  TenantGovernor governor(TenantGovernor::Options{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(governor.AdmitRequest("t", 1, /*now_ns=*/0).ok());
  }
  EXPECT_EQ(governor.total_shed(), 0u);
}

TEST(TenantGovernorTest, TenantBucketShedsBeyondBurstThenRefills) {
  TenantGovernor::Options options;
  options.default_quota.requests_per_second = 10;
  options.default_quota.burst = 3;
  TenantGovernor governor(options);

  int64_t now = 0;
  // Full bucket: exactly `burst` requests pass back to back.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(governor.AdmitRequest("t", 1, now).ok()) << i;
  }
  Status shed = governor.AdmitRequest("t", 1, now);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);

  // 100 ms at 10 rps refills exactly one token.
  now += kSecond / 10;
  EXPECT_TRUE(governor.AdmitRequest("t", 1, now).ok());
  EXPECT_EQ(governor.AdmitRequest("t", 1, now).code(),
            StatusCode::kResourceExhausted);

  auto snap = governor.snapshot("t");
  EXPECT_EQ(snap.admitted, 4u);
  EXPECT_EQ(snap.shed_tenant_quota, 2u);
}

TEST(TenantGovernorTest, TenantsAreIsolated) {
  TenantGovernor::Options options;
  options.default_quota.requests_per_second = 1;
  options.default_quota.burst = 2;
  TenantGovernor governor(options);

  // Tenant A exhausts its bucket; tenant B is untouched.
  EXPECT_TRUE(governor.AdmitRequest("a", 1, 0).ok());
  EXPECT_TRUE(governor.AdmitRequest("a", 1, 0).ok());
  EXPECT_FALSE(governor.AdmitRequest("a", 1, 0).ok());
  EXPECT_TRUE(governor.AdmitRequest("b", 2, 0).ok());
  EXPECT_TRUE(governor.AdmitRequest("b", 2, 0).ok());
  EXPECT_EQ(governor.snapshot("b").shed_tenant_quota, 0u);
}

TEST(TenantGovernorTest, SessionBucketLimitsOneSessionWithinTenant) {
  TenantGovernor::Options options;
  options.default_quota.session_requests_per_second = 10;
  options.default_quota.session_burst = 1;
  TenantGovernor governor(options);

  // Session 1 burns its bucket; session 2 of the SAME tenant proceeds.
  EXPECT_TRUE(governor.AdmitRequest("t", 1, 0).ok());
  EXPECT_EQ(governor.AdmitRequest("t", 1, 0).code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(governor.AdmitRequest("t", 2, 0).ok());
  EXPECT_EQ(governor.snapshot("t").shed_session_quota, 1u);
}

TEST(TenantGovernorTest, MaxSessionsEnforcedAndReleasedOnClose) {
  TenantGovernor::Options options;
  options.default_quota.max_sessions = 2;
  TenantGovernor governor(options);

  EXPECT_TRUE(governor.AdmitSession("t", 1, 0).ok());
  EXPECT_TRUE(governor.AdmitSession("t", 2, 0).ok());
  EXPECT_EQ(governor.AdmitSession("t", 3, 0).code(),
            StatusCode::kResourceExhausted);
  governor.OnSessionClosed("t", 1);
  EXPECT_TRUE(governor.AdmitSession("t", 4, 0).ok());
  auto snap = governor.snapshot("t");
  EXPECT_EQ(snap.sessions_open, 2u);
  EXPECT_EQ(snap.sessions_rejected, 1u);
  // Idempotent close of an unknown id is a no-op.
  governor.OnSessionClosed("t", 999);
  EXPECT_EQ(governor.snapshot("t").sessions_open, 2u);
}

TEST(TenantGovernorTest, SetQuotaOverridesDefault) {
  TenantGovernor::Options options;
  options.default_quota.requests_per_second = 1;
  options.default_quota.burst = 1;
  TenantGovernor governor(options);

  TenantQuotaOptions wide;
  wide.requests_per_second = 1000;
  wide.burst = 100;
  governor.SetQuota("vip", wide);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(governor.AdmitRequest("vip", 1, 0).ok()) << i;
  }
  // The default tenant still has its one-token bucket.
  EXPECT_TRUE(governor.AdmitRequest("pleb", 1, 0).ok());
  EXPECT_FALSE(governor.AdmitRequest("pleb", 1, 0).ok());
}

TEST(TenantGovernorTest, StaleTimestampNeverRefills) {
  TenantGovernor::Options options;
  options.default_quota.requests_per_second = 10;
  options.default_quota.burst = 1;
  TenantGovernor governor(options);

  EXPECT_TRUE(governor.AdmitRequest("t", 1, kSecond).ok());
  // Time going backwards must not mint tokens.
  EXPECT_FALSE(governor.AdmitRequest("t", 1, 0).ok());
  EXPECT_FALSE(governor.AdmitRequest("t", 1, kSecond).ok());
}

// ---------------------------------------------------------------------------
// Bounded admission queue

TEST(AdmissionQueueTest, OverflowShedsInsteadOfQueueing) {
  AdmissionController::Options options;
  options.max_inflight = 1;
  options.max_queue_depth = 1;
  AdmissionController admission(options);

  auto slot = admission.Admit().value();  // occupies the only slot

  // One waiter parks (fills the queue); the second Admit must shed.
  std::atomic<bool> parked{false};
  std::thread waiter([&] {
    parked.store(true);
    auto permit = admission.Admit();
    EXPECT_TRUE(permit.ok());
  });
  while (!parked.load()) std::this_thread::yield();
  // Give the waiter time to actually enter the queue.
  while (admission.snapshot().peak_queue_depth < 1) {
    std::this_thread::yield();
  }

  auto shed = admission.Admit();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.snapshot().queue_overflows, 1u);

  slot.Release();  // waiter proceeds
  waiter.join();
  EXPECT_EQ(admission.snapshot().admitted, 2u);
}

TEST(AdmissionQueueTest, ZeroDepthKeepsLegacyUnboundedQueueing) {
  AdmissionController::Options options;
  options.max_inflight = 1;
  options.max_queue_depth = 0;
  AdmissionController admission(options);

  auto slot = admission.Admit().value();
  std::vector<std::thread> waiters;
  std::atomic<int> admitted{0};
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      auto permit = admission.Admit();
      EXPECT_TRUE(permit.ok());
      admitted.fetch_add(1);
    });
  }
  while (admission.snapshot().peak_queue_depth < 4) {
    std::this_thread::yield();
  }
  slot.Release();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(admitted.load(), 4);
  EXPECT_EQ(admission.snapshot().queue_overflows, 0u);
}

// ---------------------------------------------------------------------------
// QueryRegistry budgets

TEST(RegistryBudgetTest, MaxPlansEvictsLeastRecentlyUsed) {
  QueryRegistry::Options options;
  options.max_plans = 2;
  QueryRegistry registry(options);

  ASSERT_TRUE(
      registry.Prepare("a", MakeJoins(1), PreparedQueryOptions()).ok());
  ASSERT_TRUE(
      registry.Prepare("b", MakeJoins(2), PreparedQueryOptions()).ok());
  // Touch "a" so "b" is the LRU victim when "c" arrives.
  ASSERT_TRUE(registry.Get("a").ok());
  ASSERT_TRUE(
      registry.Prepare("c", MakeJoins(3), PreparedQueryOptions()).ok());

  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.Get("a").ok());
  EXPECT_FALSE(registry.Get("b").ok());
  EXPECT_TRUE(registry.Get("c").ok());
  EXPECT_EQ(registry.snapshot().evicted_for_budget, 1u);
}

TEST(RegistryBudgetTest, MemoryBudgetEvictsButNeverTheNewestPlan) {
  auto joins = MakeJoins(10);
  size_t one_plan_bytes =
      PreparedUnion::Build("probe", 1, joins, PreparedQueryOptions())
          .value()
          ->approx_memory_bytes();
  ASSERT_GT(one_plan_bytes, 0u);

  // Budget for about one plan: preparing a second must evict the first,
  // and a single over-budget plan must stay resident (Prepare cannot
  // succeed yet leave its plan unusable).
  QueryRegistry::Options options;
  options.memory_budget_bytes = one_plan_bytes + one_plan_bytes / 2;
  QueryRegistry registry(options);

  ASSERT_TRUE(
      registry.Prepare("a", MakeJoins(11), PreparedQueryOptions()).ok());
  ASSERT_TRUE(
      registry.Prepare("b", MakeJoins(12), PreparedQueryOptions()).ok());
  EXPECT_FALSE(registry.Get("a").ok());
  EXPECT_TRUE(registry.Get("b").ok());
  auto snap = registry.snapshot();
  EXPECT_EQ(snap.evicted_for_budget, 1u);
  EXPECT_LE(snap.resident_bytes, options.memory_budget_bytes);
}

TEST(RegistryBudgetTest, EvictedPlanStaysServableForLiveSessions) {
  ServiceOptions options;
  options.seed = 77;
  options.registry.max_plans = 1;
  auto service = SamplingService::Create(options).value();

  ASSERT_TRUE(service->Prepare("old", MakeJoins(20)).ok());
  auto session = service->OpenSession("old").value();
  // Preparing a second plan evicts "old" from the registry...
  ASSERT_TRUE(service->Prepare("new", MakeJoins(21)).ok());
  EXPECT_FALSE(service->GetQuery("old").ok());
  EXPECT_EQ(service->registry().snapshot().evicted_for_budget, 1u);
  // ...but the live session keeps sampling from the plan it holds.
  auto samples = service->Sample(session, 50);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  EXPECT_EQ(samples.value().size(), 50u);
  ASSERT_TRUE(service->CloseSession(session).ok());
}

// ---------------------------------------------------------------------------
// Session idle reaping (in-process half; the wire half lives in
// net_server_test.cc)

TEST(ReapIdleTest, NeverTouchedSessionsAreExempt) {
  ServiceOptions options;
  options.seed = 88;
  auto service = SamplingService::Create(options).value();
  ASSERT_TRUE(service->Prepare("q", MakeJoins(30)).ok());
  auto in_process = service->OpenSession("q").value();
  auto remote = service->OpenSession("q").value();
  service->sessions().Get(remote).value()->Touch(/*now_ns=*/1);

  // Far future: the touched session is idle-reaped, the untouched one
  // (a pure in-process client) must survive.
  auto reaped = service->sessions().ReapIdle(/*now_ns=*/kSecond,
                                             /*idle_ns=*/kSecond / 2);
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_EQ(reaped[0], remote);
  EXPECT_TRUE(service->sessions().Get(in_process).ok());
  EXPECT_FALSE(service->sessions().Get(remote).ok());
}

TEST(ReapIdleTest, FreshActivityDefersReaping) {
  ServiceOptions options;
  options.seed = 89;
  auto service = SamplingService::Create(options).value();
  ASSERT_TRUE(service->Prepare("q", MakeJoins(31)).ok());
  auto id = service->OpenSession("q").value();
  service->sessions().Get(id).value()->Touch(kSecond);
  EXPECT_TRUE(
      service->sessions().ReapIdle(kSecond + 10, kSecond).empty());
  EXPECT_TRUE(service->sessions().Get(id).ok());
}

}  // namespace
}  // namespace suj
