// Tests for exec/parallel_executor and the batched-executor paths of
// UnionSampler / OnlineUnionSampler: thread-count-independent determinism
// (the per-batch seeding contract), uniformity of the parallel samplers,
// per-worker stats aggregation, and option validation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/exact_overlap.h"
#include "core/online_union_sampler.h"
#include "core/union_sampler.h"
#include "exec/parallel_executor.h"
#include "join/exact_weight.h"
#include "join/membership.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

std::vector<std::string> Encodings(const std::vector<Tuple>& samples) {
  std::vector<std::string> out;
  out.reserve(samples.size());
  for (const auto& t : samples) out.push_back(t.Encode());
  return out;
}

// ---------------------------------------------------------------------------
// Executor-level tests with a synthetic batch sampler.

// Emits tuples whose values come straight from the batch RNG: any
// scheduling dependence would show up as a changed sequence.
class RngEchoBatchSampler : public BatchSampler {
 public:
  Result<std::vector<Tuple>> SampleBatch(size_t count, Rng& rng) override {
    std::vector<Tuple> out;
    for (size_t i = 0; i < count; ++i) {
      out.push_back(
          Tuple({Value::Int64(static_cast<int64_t>(rng.UniformInt(1000)))}));
    }
    stats_.accepted += count;
    ++stats_.rounds;
    return out;
  }
  UnionSampleStats stats() const override { return stats_; }

 private:
  UnionSampleStats stats_;
};

Result<std::unique_ptr<BatchSampler>> MakeRngEcho(size_t /*worker*/) {
  return std::unique_ptr<BatchSampler>(new RngEchoBatchSampler());
}

TEST(ParallelExecutorTest, DeterministicAcrossThreadCounts) {
  const size_t n = 103;  // deliberately not a batch multiple
  std::vector<std::string> reference;
  for (size_t threads : {1u, 2u, 8u}) {
    ParallelUnionExecutor::Options opts;
    opts.num_threads = threads;
    opts.batch_size = 10;
    ParallelUnionExecutor executor(opts);
    auto result = executor.Execute(n, /*seed=*/77, MakeRngEcho);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->size(), n);
    auto encodings = Encodings(*result);
    if (reference.empty()) {
      reference = encodings;
    } else {
      EXPECT_EQ(encodings, reference) << "threads=" << threads;
    }
  }
}

TEST(ParallelExecutorTest, SeedChangesSequence) {
  ParallelUnionExecutor executor({/*num_threads=*/2, /*batch_size=*/16});
  auto a = executor.Execute(64, 1, MakeRngEcho);
  auto b = executor.Execute(64, 2, MakeRngEcho);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(Encodings(*a), Encodings(*b));
}

TEST(ParallelExecutorTest, StatsAggregation) {
  ParallelUnionExecutor::Options opts;
  opts.num_threads = 4;
  opts.batch_size = 10;
  ParallelUnionExecutor executor(opts);
  UnionSampleStats stats;
  auto result = executor.Execute(95, 5, MakeRngEcho, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.accepted, 95u);          // summed over workers
  EXPECT_EQ(stats.rounds, 10u);            // one per batch here
  EXPECT_EQ(stats.parallel_batches, 10u);  // ceil(95 / 10)
  EXPECT_EQ(stats.parallel_workers, 4u);
  EXPECT_GE(stats.parallel_seconds, 0.0);
}

TEST(ParallelExecutorTest, WorkerErrorPropagates) {
  class Failing : public BatchSampler {
   public:
    Result<std::vector<Tuple>> SampleBatch(size_t, Rng&) override {
      return Status::Internal("boom");
    }
    UnionSampleStats stats() const override { return {}; }
  };
  ParallelUnionExecutor executor({/*num_threads=*/2, /*batch_size=*/8});
  auto result = executor.Execute(
      32, 9, [](size_t) -> Result<std::unique_ptr<BatchSampler>> {
        return std::unique_ptr<BatchSampler>(new Failing());
      });
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("boom"), std::string::npos);
}

TEST(ParallelExecutorTest, ShortBatchIsAnError) {
  class Short : public BatchSampler {
   public:
    Result<std::vector<Tuple>> SampleBatch(size_t count, Rng&) override {
      return std::vector<Tuple>(count > 0 ? count - 1 : 0);
    }
    UnionSampleStats stats() const override { return {}; }
  };
  ParallelUnionExecutor executor({/*num_threads=*/1, /*batch_size=*/8});
  auto result = executor.Execute(
      16, 9, [](size_t) -> Result<std::unique_ptr<BatchSampler>> {
        return std::unique_ptr<BatchSampler>(new Short());
      });
  EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------------------
// UnionSampler parallel path.

struct Fixture {
  std::vector<JoinSpecPtr> joins;
  std::unique_ptr<ExactOverlapCalculator> exact;
  UnionEstimates estimates;
  std::vector<JoinMembershipProberPtr> probers;
  CompositeIndexCache cache;
};

Fixture MakeSetup(uint64_t seed, int num_joins = 3) {
  Fixture s;
  SyntheticChainOptions options;
  options.num_joins = num_joins;
  options.master_rows = 20;
  options.seed = seed;
  s.joins = MakeOverlappingChains(options).value();
  s.exact = ExactOverlapCalculator::Create(s.joins).value();
  s.estimates = ComputeUnionEstimates(s.exact.get()).value();
  s.probers = BuildProbers(s.joins).value();
  return s;
}

// Factory building one worker's exact-weight samplers; the shared cache is
// only touched on the calling thread (executor contract), and the weight
// indexes it holds are immutable once built.
UnionSampler::JoinSamplerFactory EwFactory(Fixture& s) {
  return [&s]() -> Result<std::vector<std::unique_ptr<JoinSampler>>> {
    std::vector<std::unique_ptr<JoinSampler>> out;
    for (const auto& join : s.joins) {
      auto sampler = ExactWeightSampler::Create(join, &s.cache);
      if (!sampler.ok()) return sampler.status();
      out.push_back(std::move(*sampler));
    }
    return out;
  };
}

std::unique_ptr<UnionSampler> MakeParallelUnionSampler(Fixture& s,
                                                       size_t threads,
                                                       size_t batch_size) {
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  opts.num_threads = threads;
  opts.batch_size = batch_size;
  opts.sampler_factory = EwFactory(s);
  return UnionSampler::Create(s.joins, {}, s.estimates, s.probers, opts)
      .value();
}

TEST(ParallelUnionSamplerTest, DeterministicAcrossThreadCounts) {
  Fixture s = MakeSetup(200);
  const size_t n = 999;
  std::vector<std::string> reference;
  for (size_t threads : {1u, 2u, 8u}) {
    auto sampler = MakeParallelUnionSampler(s, threads, /*batch_size=*/64);
    Rng rng(201);
    auto samples = sampler->Sample(n, rng);
    ASSERT_TRUE(samples.ok()) << samples.status().ToString();
    ASSERT_EQ(samples->size(), n);
    auto encodings = Encodings(*samples);
    if (reference.empty()) {
      reference = encodings;
    } else {
      EXPECT_EQ(encodings, reference) << "threads=" << threads;
    }
  }
}

TEST(ParallelUnionSamplerTest, ParallelSamplesAreUniform) {
  Fixture s = MakeSetup(202);
  auto sampler = MakeParallelUnionSampler(s, /*threads=*/4, /*batch_size=*/64);
  Rng rng(203);
  size_t n = 40 * s.exact->UnionSize();
  auto samples = sampler->Sample(n, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  auto counts = testing::CountByValue(*samples);
  for (const auto& [key, c] : counts) {
    ASSERT_TRUE(s.exact->membership().count(key))
        << "sampled tuple outside the union";
  }
  double chi2 =
      testing::ChiSquareUniform(counts, s.exact->UnionSize(), samples->size());
  EXPECT_LT(chi2, testing::ChiSquareThreshold(s.exact->UnionSize() - 1));
}

TEST(ParallelUnionSamplerTest, StatsAggregateAcrossWorkers) {
  Fixture s = MakeSetup(204);
  auto sampler = MakeParallelUnionSampler(s, /*threads=*/4, /*batch_size=*/50);
  Rng rng(205);
  auto samples = sampler->Sample(500, rng);
  ASSERT_TRUE(samples.ok());
  const auto& stats = sampler->stats();
  EXPECT_EQ(stats.accepted, 500u);
  EXPECT_EQ(stats.rounds, 500u);  // oracle rounds end in exactly one accept
  EXPECT_GE(stats.join_draws, stats.accepted);
  EXPECT_EQ(stats.parallel_batches, 10u);
  EXPECT_EQ(stats.parallel_workers, 4u);
}

TEST(ParallelUnionSamplerTest, CallerRngAdvancesIdenticallyForAnyThreadCount) {
  // Sample() consumes exactly one caller draw on the parallel path, so
  // downstream draws are thread-count independent too.
  Fixture s = MakeSetup(206);
  std::vector<uint64_t> next_draws;
  for (size_t threads : {1u, 8u}) {
    auto sampler = MakeParallelUnionSampler(s, threads, 32);
    Rng rng(207);
    ASSERT_TRUE(sampler->Sample(100, rng).ok());
    next_draws.push_back(rng.Next());
  }
  EXPECT_EQ(next_draws[0], next_draws[1]);
}

// The documented abandonment boundary on the batched executor path: a
// cover abandoned DURING a call keeps its call-start selection weight for
// every batch of that call (so batch contents never depend on which worker
// discovered the dead cover), and only the NEXT call excludes the join.
// SampleParallel additionally SUJ_CHECKs that the exclusion set is
// untouched until its post-fan-out fold.
TEST(ParallelUnionSamplerTest, AbandonmentTakesEffectNextCall) {
  Fixture s = MakeSetup(230);
  // Append an empty join (the middle relation's key never matches) whose
  // estimates falsely claim a big cover: every round that selects it
  // exhausts the draw budget and must be abandoned.
  auto empty_r =
      workloads::MakeRelation("er", {"A0", "A1"}, {{1, 2}}).value();
  auto empty_s =
      workloads::MakeRelation("es", {"A1", "A2"}, {{99, 3}}).value();
  auto empty_t =
      workloads::MakeRelation("et", {"A2", "A3"}, {{3, 4}}).value();
  s.joins.push_back(
      JoinSpec::Create("empty", {empty_r, empty_s, empty_t}).value());
  s.exact = ExactOverlapCalculator::Create(s.joins).value();
  s.estimates = ComputeUnionEstimates(s.exact.get()).value();
  s.probers = BuildProbers(s.joins).value();
  ASSERT_DOUBLE_EQ(s.estimates.cover_sizes.back(), 0.0);
  s.estimates.cover_sizes.back() = s.estimates.cover_sizes[0];  // the lie

  std::vector<std::string> first_call, second_call;
  for (size_t threads : {1u, 4u}) {
    UnionSampler::Options opts;
    opts.mode = UnionSampler::Mode::kMembershipOracle;
    opts.num_threads = threads;
    opts.batch_size = 32;
    opts.max_draws_per_round = 200;
    opts.sampler_factory = EwFactory(s);
    auto sampler =
        UnionSampler::Create(s.joins, {}, s.estimates, s.probers, opts)
            .value();
    Rng rng(231);
    auto call1 = sampler->Sample(300, rng);
    ASSERT_TRUE(call1.ok()) << call1.status().ToString();
    ASSERT_EQ(call1->size(), 300u);
    // The dead cover was discovered (and paid for) in this call...
    uint64_t abandoned_after_call1 = sampler->stats().abandoned_rounds;
    EXPECT_GE(abandoned_after_call1, 1u);
    auto call2 = sampler->Sample(300, rng);
    ASSERT_TRUE(call2.ok()) << call2.status().ToString();
    // ...and from the next call the join is excluded from selection
    // outright: no further rounds can be abandoned on it.
    EXPECT_EQ(sampler->stats().abandoned_rounds, abandoned_after_call1);
    auto enc1 = Encodings(*call1);
    auto enc2 = Encodings(*call2);
    if (threads == 1) {
      first_call = enc1;
      second_call = enc2;
    } else {
      // Abandonment mid-call must not perturb thread-count determinism.
      EXPECT_EQ(enc1, first_call);
      EXPECT_EQ(enc2, second_call);
    }
  }
}

TEST(ParallelUnionSamplerTest, CreateValidation) {
  Fixture s = MakeSetup(208, /*num_joins=*/2);
  // Revision mode runs the batched path too (epoch-reconciled ownership,
  // core/ownership_map.h; covered in revision_parallel_test.cc) — and
  // needs no probers.
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  opts.sampler_factory = EwFactory(s);
  EXPECT_TRUE(UnionSampler::Create(s.joins, {}, s.estimates, {}, opts).ok());
  // num_threads != 1 without a factory.
  UnionSampler::Options no_factory;
  no_factory.mode = UnionSampler::Mode::kMembershipOracle;
  no_factory.num_threads = 4;
  EXPECT_FALSE(UnionSampler::Create(s.joins, EwFactory(s)().value(),
                                    s.estimates, s.probers, no_factory)
                   .ok());
  // Zero batch size.
  UnionSampler::Options zero_batch;
  zero_batch.mode = UnionSampler::Mode::kMembershipOracle;
  zero_batch.batch_size = 0;
  zero_batch.sampler_factory = EwFactory(s);
  EXPECT_FALSE(UnionSampler::Create(s.joins, {}, s.estimates, s.probers,
                                    zero_batch)
                   .ok());
}

// ---------------------------------------------------------------------------
// OnlineUnionSampler parallel fresh-walk phase.

struct OnlineFixture {
  std::vector<JoinSpecPtr> joins;
  std::unique_ptr<ExactOverlapCalculator> exact;
  std::shared_ptr<CompositeIndexCache> cache =
      std::make_shared<CompositeIndexCache>();
  std::unique_ptr<RandomWalkOverlapEstimator> walker;
  UnionEstimates estimates;
};

// Small walk budget: pools drain quickly, so the parallel tail engages.
OnlineFixture MakeOnlineSetup(uint64_t seed, uint64_t walk_budget = 50) {
  OnlineFixture s;
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 20;
  options.seed = seed;
  s.joins = MakeOverlappingChains(options).value();
  s.exact = ExactOverlapCalculator::Create(s.joins).value();
  RandomWalkOverlapEstimator::Options rw_opts;
  rw_opts.min_walks = walk_budget;
  rw_opts.max_walks = walk_budget;
  s.walker =
      RandomWalkOverlapEstimator::Create(s.joins, s.cache.get(), rw_opts)
          .value();
  Rng warmup_rng(seed + 1);
  EXPECT_TRUE(s.walker->Warmup(warmup_rng).ok());
  s.estimates = ComputeUnionEstimates(s.exact.get()).value();
  return s;
}

TEST(ParallelOnlineUnionSamplerTest, DeterministicAcrossThreadCounts) {
  const size_t n = 600;
  std::vector<std::string> reference;
  for (size_t threads : {1u, 2u, 8u}) {
    // A fresh fixture per run: the walker accumulates records, so reusing
    // one would change the sequential prefix between runs.
    OnlineFixture s = MakeOnlineSetup(220);
    OnlineUnionSampler::Options opts;
    opts.enable_reuse = true;
    opts.num_threads = threads;
    opts.batch_size = 64;
    opts.index_cache = s.cache;
    auto sampler =
        OnlineUnionSampler::Create(s.joins, s.walker.get(), s.estimates, opts)
            .value();
    Rng rng(221);
    auto samples = sampler->Sample(n, rng);
    ASSERT_TRUE(samples.ok()) << samples.status().ToString();
    ASSERT_EQ(samples->size(), n);
    // The tail must actually have fanned out for this test to mean much.
    EXPECT_GT(sampler->stats().parallel_batches, 0u);
    auto encodings = Encodings(*samples);
    if (reference.empty()) {
      reference = encodings;
    } else {
      EXPECT_EQ(encodings, reference) << "threads=" << threads;
    }
  }
}

TEST(ParallelOnlineUnionSamplerTest, ParallelTailStaysUniform) {
  OnlineFixture s = MakeOnlineSetup(222);
  OnlineUnionSampler::Options opts;
  opts.enable_reuse = false;  // all samples from the parallel walk phase
  opts.num_threads = 4;
  opts.batch_size = 64;
  opts.index_cache = s.cache;
  auto sampler =
      OnlineUnionSampler::Create(s.joins, s.walker.get(), s.estimates, opts)
          .value();
  Rng rng(223);
  size_t n = 40 * s.exact->UnionSize();
  auto samples = sampler->Sample(n, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  auto counts = testing::CountByValue(*samples);
  for (const auto& [key, c] : counts) {
    ASSERT_TRUE(s.exact->membership().count(key))
        << "sampled tuple outside the union";
  }
  double chi2 =
      testing::ChiSquareUniform(counts, s.exact->UnionSize(), samples->size());
  // Same slack as the sequential online tests: multi-instance accepts add
  // small correlation.
  EXPECT_LT(chi2,
            3.0 * testing::ChiSquareThreshold(s.exact->UnionSize() - 1));
  EXPECT_EQ(sampler->stats().reuse_accepted, 0u);
  EXPECT_GT(sampler->stats().fresh_accepted, 0u);
}

TEST(ParallelOnlineUnionSamplerTest, ReusePhaseStaysSequential) {
  OnlineFixture s = MakeOnlineSetup(224, /*walk_budget=*/800);
  OnlineUnionSampler::Options opts;
  opts.enable_reuse = true;
  opts.num_threads = 4;
  opts.batch_size = 32;
  opts.index_cache = s.cache;
  auto sampler =
      OnlineUnionSampler::Create(s.joins, s.walker.get(), s.estimates, opts)
          .value();
  Rng rng(225);
  // Small n against a large pool: everything should come from reuse, and
  // the executor must never engage.
  auto samples = sampler->Sample(100, rng);
  ASSERT_TRUE(samples.ok());
  EXPECT_GT(sampler->stats().reuse_accepted, 0u);
  EXPECT_EQ(sampler->stats().parallel_batches, 0u);
}

TEST(ParallelOnlineUnionSamplerTest, CreateValidation) {
  OnlineFixture s = MakeOnlineSetup(226);
  // num_threads != 1 without an index cache.
  OnlineUnionSampler::Options no_cache;
  no_cache.num_threads = 2;
  EXPECT_FALSE(OnlineUnionSampler::Create(s.joins, s.walker.get(),
                                          s.estimates, no_cache)
                   .ok());
  // Revision mode cannot run the batched tail.
  OnlineUnionSampler::Options revision;
  revision.mode = UnionSampler::Mode::kRevision;
  revision.index_cache = s.cache;
  EXPECT_FALSE(OnlineUnionSampler::Create(s.joins, s.walker.get(),
                                          s.estimates, revision)
                   .ok());
}

}  // namespace
}  // namespace suj
