// Tests for join/predicate: operators, tuple evaluation, pushdown filter.

#include <gtest/gtest.h>

#include "join/predicate.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeRelation;

TEST(PredicateTest, ComparisonOperators) {
  Value five = Value::Int64(5);
  EXPECT_TRUE(Predicate("a", CompareOp::kEq, five).Eval(Value::Int64(5)));
  EXPECT_FALSE(Predicate("a", CompareOp::kEq, five).Eval(Value::Int64(6)));
  EXPECT_TRUE(Predicate("a", CompareOp::kNe, five).Eval(Value::Int64(6)));
  EXPECT_TRUE(Predicate("a", CompareOp::kLt, five).Eval(Value::Int64(4)));
  EXPECT_FALSE(Predicate("a", CompareOp::kLt, five).Eval(Value::Int64(5)));
  EXPECT_TRUE(Predicate("a", CompareOp::kLe, five).Eval(Value::Int64(5)));
  EXPECT_TRUE(Predicate("a", CompareOp::kGt, five).Eval(Value::Int64(6)));
  EXPECT_FALSE(Predicate("a", CompareOp::kGt, five).Eval(Value::Int64(5)));
  EXPECT_TRUE(Predicate("a", CompareOp::kGe, five).Eval(Value::Int64(5)));
}

TEST(PredicateTest, Between) {
  Predicate p("a", Value::Int64(2), Value::Int64(4));
  EXPECT_FALSE(p.Eval(Value::Int64(1)));
  EXPECT_TRUE(p.Eval(Value::Int64(2)));
  EXPECT_TRUE(p.Eval(Value::Int64(3)));
  EXPECT_TRUE(p.Eval(Value::Int64(4)));
  EXPECT_FALSE(p.Eval(Value::Int64(5)));
}

TEST(PredicateTest, StringAndDoubleOperands) {
  EXPECT_TRUE(Predicate("s", CompareOp::kEq, Value::String("x"))
                  .Eval(Value::String("x")));
  EXPECT_TRUE(Predicate("d", CompareOp::kGe, Value::Double(1.5))
                  .Eval(Value::Double(1.5)));
  EXPECT_FALSE(Predicate("d", CompareOp::kGe, Value::Double(1.5))
                   .Eval(Value::Double(1.49)));
}

TEST(PredicateTest, EvalOnTuple) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  Tuple t({Value::Int64(1), Value::Int64(9)});
  EXPECT_TRUE(
      Predicate("b", CompareOp::kGt, Value::Int64(5)).EvalOnTuple(t, schema));
  EXPECT_FALSE(
      Predicate("a", CompareOp::kGt, Value::Int64(5)).EvalOnTuple(t, schema));
  // Predicates on absent attributes do not apply.
  EXPECT_TRUE(
      Predicate("z", CompareOp::kEq, Value::Int64(0)).EvalOnTuple(t, schema));
}

TEST(PredicateTest, ToStringRendering) {
  EXPECT_EQ(Predicate("a", CompareOp::kLe, Value::Int64(3)).ToString(),
            "a <= 3");
  EXPECT_EQ(Predicate("a", Value::Int64(1), Value::Int64(2)).ToString(),
            "a BETWEEN 1 AND 2");
}

TEST(FilterRelationTest, KeepsMatchingRows) {
  auto rel =
      MakeRelation("r", {"a", "b"}, {{1, 10}, {2, 20}, {3, 30}, {4, 40}})
          .value();
  auto filtered =
      FilterRelation(rel, {Predicate("a", CompareOp::kGe, Value::Int64(2)),
                           Predicate("b", CompareOp::kLt, Value::Int64(40))});
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ((*filtered)->num_rows(), 2u);
  EXPECT_EQ((*filtered)->GetInt64(0, 0), 2);
  EXPECT_EQ((*filtered)->GetInt64(1, 0), 3);
  EXPECT_EQ((*filtered)->name(), "r#f");
}

TEST(FilterRelationTest, PredicateOnAbsentAttributeIsNoop) {
  auto rel = MakeRelation("r", {"a"}, {{1}, {2}}).value();
  auto filtered =
      FilterRelation(rel, {Predicate("zz", CompareOp::kEq, Value::Int64(0))});
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ((*filtered)->num_rows(), 2u);
}

TEST(RowSatisfiesTest, ChecksApplicablePredicates) {
  auto rel = MakeRelation("r", {"a", "b"}, {{1, 10}, {5, 50}}).value();
  std::vector<Predicate> preds = {
      Predicate("a", CompareOp::kLt, Value::Int64(3))};
  EXPECT_TRUE(RowSatisfies(*rel, 0, preds));
  EXPECT_FALSE(RowSatisfies(*rel, 1, preds));
}

}  // namespace
}  // namespace suj
