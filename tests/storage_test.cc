// Tests for storage/: Value, Schema, Tuple, Relation, Catalog.

#include <gtest/gtest.h>

#include <set>

#include "storage/catalog.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/key_codec.h"
#include "storage/tuple.h"
#include "storage/value.h"

namespace suj {
namespace {

TEST(ValueTest, EqualityAndType) {
  EXPECT_EQ(Value::Int64(3), Value::Int64(3));
  EXPECT_NE(Value::Int64(3), Value::Int64(4));
  EXPECT_NE(Value::Int64(3), Value::Double(3.0));  // typed equality
  EXPECT_EQ(Value::String("ab"), Value::String("ab"));
  EXPECT_NE(Value::String("ab"), Value::String("ac"));
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::Double(1.5), Value::Double(2.5));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  // Cross-type ordering is by type tag, and is total.
  EXPECT_LT(Value::Int64(100), Value::Double(0.0));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Int64(42).Hash());
  EXPECT_EQ(Value::String("xyz").Hash(), Value::String("xyz").Hash());
  EXPECT_NE(Value::Int64(1).Hash(), Value::Int64(2).Hash());
}

TEST(ValueTest, EncodingInjective) {
  std::set<std::string> encodings;
  std::vector<Value> values = {
      Value::Int64(0),      Value::Int64(1),     Value::Int64(-1),
      Value::Double(0.0),   Value::Double(1.0),  Value::String(""),
      Value::String("a"),   Value::String("ab"), Value::String("b"),
      Value::Int64(256),
  };
  for (const auto& v : values) {
    std::string enc;
    v.EncodeTo(&enc);
    EXPECT_TRUE(encodings.insert(enc).second)
        << "duplicate encoding for " << v.ToString();
  }
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(5).ToString(), "5");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.FieldIndex("a"), 0);
  EXPECT_EQ(s.FieldIndex("b"), 1);
  EXPECT_EQ(s.FieldIndex("c"), -1);
  EXPECT_TRUE(s.HasField("a"));
  EXPECT_FALSE(s.HasField("z"));
}

TEST(SchemaTest, CommonFields) {
  Schema s1({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  Schema s2({{"b", ValueType::kInt64}, {"c", ValueType::kInt64}});
  EXPECT_EQ(s1.CommonFields(s2), std::vector<std::string>{"b"});
  EXPECT_TRUE(Schema().CommonFields(s1).empty());
}

TEST(SchemaTest, Project) {
  Schema s({{"a", ValueType::kInt64},
            {"b", ValueType::kString},
            {"c", ValueType::kDouble}});
  auto p = s.Project({"c", "a"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->field(0).name, "c");
  EXPECT_EQ(p->field(1).name, "a");
  EXPECT_FALSE(s.Project({"z"}).ok());
}

TEST(SchemaTest, Equality) {
  Schema s1({{"a", ValueType::kInt64}});
  Schema s2({{"a", ValueType::kInt64}});
  Schema s3({{"a", ValueType::kDouble}});
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, s3);
}

TEST(TupleTest, EncodeInjectiveAcrossArity) {
  Tuple t1({Value::Int64(1), Value::Int64(2)});
  Tuple t2({Value::Int64(1), Value::Int64(3)});
  Tuple t3({Value::Int64(1)});
  EXPECT_NE(t1.Encode(), t2.Encode());
  EXPECT_NE(t1.Encode(), t3.Encode());
  EXPECT_EQ(t1.Encode(), Tuple({Value::Int64(1), Value::Int64(2)}).Encode());
}

TEST(TupleTest, ProjectAndMap) {
  Tuple t({Value::Int64(10), Value::Int64(20), Value::Int64(30)});
  Tuple p = t.Project({2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.value(0), Value::Int64(30));
  EXPECT_EQ(p.value(1), Value::Int64(10));

  Schema from({{"x", ValueType::kInt64},
               {"y", ValueType::kInt64},
               {"z", ValueType::kInt64}});
  Schema to({{"z", ValueType::kInt64}, {"x", ValueType::kInt64}});
  Tuple m = t.MapToSchema(from, to);
  EXPECT_EQ(m.value(0), Value::Int64(30));
  EXPECT_EQ(m.value(1), Value::Int64(10));
}

TEST(RelationBuilderTest, BuildAndAccess) {
  RelationBuilder b("r", Schema({{"k", ValueType::kInt64},
                                 {"name", ValueType::kString},
                                 {"w", ValueType::kDouble}}));
  ASSERT_TRUE(b.AppendRow({Value::Int64(1), Value::String("one"),
                           Value::Double(1.5)})
                  .ok());
  ASSERT_TRUE(b.AppendRow({Value::Int64(2), Value::String("two"),
                           Value::Double(2.5)})
                  .ok());
  RelationPtr r = b.Finish();
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->num_columns(), 3u);
  EXPECT_EQ(r->GetInt64(0, 0), 1);
  EXPECT_EQ(r->GetString(1, 1), "two");
  EXPECT_DOUBLE_EQ(r->GetDouble(1, 2), 2.5);
  EXPECT_EQ(r->GetValue(0, 1), Value::String("one"));
  Tuple t = r->GetTuple(1);
  EXPECT_EQ(t.value(0), Value::Int64(2));
}

TEST(RelationBuilderTest, RejectsArityMismatch) {
  RelationBuilder b("r", Schema({{"k", ValueType::kInt64}}));
  EXPECT_FALSE(b.AppendRow({Value::Int64(1), Value::Int64(2)}).ok());
}

TEST(RelationBuilderTest, RejectsTypeMismatch) {
  RelationBuilder b("r", Schema({{"k", ValueType::kInt64}}));
  Status s = b.AppendRow({Value::String("oops")});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(RelationBuilderTest, FinishResetsBuilder) {
  RelationBuilder b("r", Schema({{"k", ValueType::kInt64}}));
  ASSERT_TRUE(b.AppendRow({Value::Int64(1)}).ok());
  RelationPtr first = b.Finish();
  EXPECT_EQ(first->num_rows(), 1u);
  ASSERT_TRUE(b.AppendRow({Value::Int64(2)}).ok());
  RelationPtr second = b.Finish();
  EXPECT_EQ(second->num_rows(), 1u);
  EXPECT_EQ(first->num_rows(), 1u);  // first unaffected
}

TEST(RelationTest, ProjectRow) {
  RelationBuilder b("r", Schema({{"a", ValueType::kInt64},
                                 {"b", ValueType::kInt64}}));
  ASSERT_TRUE(b.AppendRow({Value::Int64(7), Value::Int64(8)}).ok());
  RelationPtr r = b.Finish();
  Tuple p = r->ProjectRow(0, {1});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.value(0), Value::Int64(8));
}

TEST(KeyCodecTest, ByteIdenticalToTupleEncode) {
  // The codec is the hot-loop form of ProjectRow(...).Encode(): it must
  // produce the exact same bytes for every type, row, and column order,
  // or the columnar indexes would disagree with the row path's probes.
  RelationBuilder b("r", Schema({{"k", ValueType::kInt64},
                                 {"name", ValueType::kString},
                                 {"w", ValueType::kDouble}}));
  ASSERT_TRUE(b.AppendRow({Value::Int64(1), Value::String("one"),
                           Value::Double(1.5)})
                  .ok());
  ASSERT_TRUE(b.AppendRow({Value::Int64(-7), Value::String(""),
                           Value::Double(-0.25)})
                  .ok());
  ASSERT_TRUE(b.AppendRow({Value::Int64(1), Value::String("one|x"),
                           Value::Double(0.0)})
                  .ok());
  RelationPtr r = b.Finish();

  std::string scratch;
  const std::vector<std::vector<int>> projections = {
      {0}, {1}, {2}, {0, 1}, {2, 0}, {1, 2, 0}};
  for (const auto& cols : projections) {
    for (size_t row = 0; row < r->num_rows(); ++row) {
      // Scratch reuse across iterations must not leak previous bytes.
      const std::string& key = EncodeRowKey(*r, cols, row, &scratch);
      EXPECT_EQ(key, r->ProjectRow(row, cols).Encode())
          << "row=" << row << " cols=" << cols.size();
    }
  }

  // Append form composes into a larger buffer without separators lost.
  std::string combined = "prefix:";
  AppendRowKey(*r, {0, 1}, 0, &combined);
  EXPECT_EQ(combined,
            "prefix:" + r->ProjectRow(0, {0, 1}).Encode());
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  RelationBuilder b("t", Schema({{"a", ValueType::kInt64}}));
  ASSERT_TRUE(b.AppendRow({Value::Int64(1)}).ok());
  RelationPtr r = b.Finish();
  ASSERT_TRUE(catalog.Register(r).ok());
  EXPECT_TRUE(catalog.Contains("t"));
  EXPECT_FALSE(catalog.Contains("u"));
  auto got = catalog.Get("t");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().get(), r.get());
  EXPECT_FALSE(catalog.Get("u").ok());
  EXPECT_FALSE(catalog.Register(r).ok());  // duplicate
  EXPECT_EQ(catalog.TotalRows(), 1u);
  catalog.Upsert(r);  // idempotent
  EXPECT_EQ(catalog.size(), 1u);
}

}  // namespace
}  // namespace suj
