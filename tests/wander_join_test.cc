// Tests for join/wander_join: probability bookkeeping, HT size estimation,
// confidence-based termination.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "join/full_join.h"
#include "join/wander_join.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeRelation;
using workloads::MakeStarJoin;
using workloads::MakeTriangleJoin;

JoinSpecPtr SkewedChain() {
  auto r = MakeRelation("r", {"a", "b"},
                        {{1, 10}, {2, 10}, {3, 10}, {4, 20}, {5, 30}})
               .value();
  auto s = MakeRelation("s", {"b", "c"},
                        {{10, 1}, {10, 2}, {20, 3}, {30, 4}, {30, 5}})
               .value();
  return JoinSpec::Create("skewed", {r, s}).value();
}

TEST(WanderJoinTest, WalkProbabilitiesAreExact) {
  // For the first walk relation r (5 rows) and a sampled match among d
  // candidates, p(t) must be 1 / (5 * d). Verify against expectations per
  // tuple value.
  auto join = SkewedChain();
  CompositeIndexCache cache;
  auto sampler = WanderJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  Rng rng(31);
  const Schema& out = join->output_schema();
  int b_idx = out.FieldIndex("b");
  ASSERT_GE(b_idx, 0);
  for (int i = 0; i < 200; ++i) {
    WalkOutcome outcome = (*sampler)->Walk(rng);
    if (!outcome.success) continue;
    int64_t b = outcome.tuple.value(b_idx).int64();
    double expected =
        b == 10 ? 1.0 / (5 * 2) : (b == 20 ? 1.0 / (5 * 1) : 1.0 / (5 * 2));
    EXPECT_DOUBLE_EQ(outcome.probability, expected);
  }
}

TEST(WanderJoinTest, HTEstimateConvergesOnChain) {
  auto join = SkewedChain();
  FullJoinExecutor executor;
  auto count = executor.Count(join);
  ASSERT_TRUE(count.ok());
  CompositeIndexCache cache;
  auto sampler = WanderJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  WanderJoinSizeEstimator estimator(sampler->get());
  Rng rng(32);
  for (int i = 0; i < 20000; ++i) estimator.Step(rng);
  EXPECT_NEAR(estimator.Estimate(), static_cast<double>(*count),
              0.05 * static_cast<double>(*count));
}

TEST(WanderJoinTest, HTEstimateConvergesOnStarAndTriangle) {
  for (int kind = 0; kind < 2; ++kind) {
    JoinSpecPtr join = kind == 0 ? MakeStarJoin(15, 8).value()
                                 : MakeTriangleJoin(25, 9).value();
    FullJoinExecutor executor;
    auto count = executor.Count(join);
    ASSERT_TRUE(count.ok());
    if (*count == 0) continue;
    CompositeIndexCache cache;
    auto sampler = WanderJoinSampler::Create(join, &cache);
    ASSERT_TRUE(sampler.ok());
    WanderJoinSizeEstimator estimator(sampler->get());
    Rng rng(33 + kind);
    for (int i = 0; i < 30000; ++i) estimator.Step(rng);
    EXPECT_NEAR(estimator.Estimate(), static_cast<double>(*count),
                0.08 * static_cast<double>(*count) + 1.0)
        << (kind == 0 ? "star" : "triangle");
  }
}

TEST(WanderJoinTest, FailedWalksLowerEstimate) {
  // r has a dangling tuple; the estimator must still be unbiased because
  // failures contribute zero.
  auto r = MakeRelation("r", {"a", "b"}, {{1, 10}, {2, 99}}).value();
  auto s = MakeRelation("s", {"b", "c"}, {{10, 1}, {10, 2}}).value();
  auto join = JoinSpec::Create("j", {r, s}).value();
  CompositeIndexCache cache;
  auto sampler = WanderJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  WanderJoinSizeEstimator estimator(sampler->get());
  Rng rng(34);
  for (int i = 0; i < 20000; ++i) estimator.Step(rng);
  EXPECT_NEAR(estimator.Estimate(), 2.0, 0.15);
  EXPECT_LT((*sampler)->num_successes(), (*sampler)->num_walks());
}

TEST(WanderJoinTest, PredicatesEstimateFilteredSize) {
  auto join_all = SkewedChain();
  auto join_filtered =
      JoinSpec::Create("f", join_all->relations(), {},
                       {Predicate("c", CompareOp::kLe, Value::Int64(2))})
          .value();
  FullJoinExecutor executor;
  auto count = executor.Count(join_filtered);
  ASSERT_TRUE(count.ok());
  CompositeIndexCache cache;
  auto sampler = WanderJoinSampler::Create(join_filtered, &cache);
  ASSERT_TRUE(sampler.ok());
  WanderJoinSizeEstimator estimator(sampler->get());
  Rng rng(35);
  for (int i = 0; i < 20000; ++i) estimator.Step(rng);
  EXPECT_NEAR(estimator.Estimate(), static_cast<double>(*count),
              0.1 * static_cast<double>(*count) + 0.5);
}

TEST(WanderJoinTest, ConfidenceTerminationStopsEarly) {
  auto join = SkewedChain();
  CompositeIndexCache cache;
  auto sampler = WanderJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  WanderJoinSizeEstimator estimator(sampler->get());
  Rng rng(36);
  estimator.RunUntilConfident(rng, 0.9, 0.05, 16, 100000);
  EXPECT_LT(estimator.num_walks(), 100000u);
  EXPECT_GE(estimator.num_walks(), 16u);
  EXPECT_LE(estimator.estimator().RelativeHalfWidth(0.9), 0.05);
}

TEST(WanderJoinTest, HalfWidthShrinks) {
  auto join = SkewedChain();
  CompositeIndexCache cache;
  auto sampler = WanderJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  WanderJoinSizeEstimator estimator(sampler->get());
  Rng rng(37);
  for (int i = 0; i < 100; ++i) estimator.Step(rng);
  double early = estimator.HalfWidth(0.9);
  for (int i = 0; i < 9900; ++i) estimator.Step(rng);
  EXPECT_LT(estimator.HalfWidth(0.9), early);
}

TEST(WanderJoinTest, EmptyFirstRelation) {
  auto r = MakeRelation("r", {"a", "b"}, {}).value();
  auto s = MakeRelation("s", {"b", "c"}, {{1, 2}}).value();
  auto join = JoinSpec::Create("j", {r, s}).value();
  CompositeIndexCache cache;
  auto sampler = WanderJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  Rng rng(38);
  WalkOutcome outcome = (*sampler)->Walk(rng);
  EXPECT_FALSE(outcome.success);
}

}  // namespace
}  // namespace suj
