// Tests for common/rng substreams: Jump()/Split() must advance by exactly
// 2^128 engine steps so per-batch generators of the parallel executor are
// provably non-overlapping.
//
// The centerpiece verifies the jump polynomial from first principles: the
// xoshiro256** state transition is linear over GF(2), so advancing 2^128
// steps equals multiplying the state by M^(2^128) for the 256x256 transition
// matrix M. The test builds M from the engine update, exponentiates it by
// 128 squarings, and checks Jump() lands on the identical state — without
// ever referencing the jump constants themselves.

#include <gtest/gtest.h>

#include <array>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "test_util.h"

namespace suj {
namespace {

using State = std::array<uint64_t, 4>;

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// The engine's linear state update (the part of Next() that advances s_).
State StepLinear(State s) {
  const uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = Rotl(s[3], 45);
  return s;
}

// The output scrambler applied to the pre-update state.
uint64_t Scramble(const State& s) { return Rotl(s[1] * 5, 7) * 9; }

// Rng's seeding procedure (splitmix64), restated here so the test can
// reconstruct the hidden state from a literal seed.
State SeedState(uint64_t seed) {
  State s;
  uint64_t x = seed;
  for (auto& w : s) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    w = z ^ (z >> 31);
  }
  return s;
}

// 256x256 bit-matrix over GF(2), stored as 256 column states: column j is
// the image of unit vector e_j.
struct BitMatrix {
  std::vector<State> cols = std::vector<State>(256, State{0, 0, 0, 0});
};

State MatVec(const BitMatrix& m, const State& v) {
  State out{0, 0, 0, 0};
  for (int j = 0; j < 256; ++j) {
    if (v[j / 64] & (1ULL << (j % 64))) {
      for (int w = 0; w < 4; ++w) out[w] ^= m.cols[j][w];
    }
  }
  return out;
}

BitMatrix MatMul(const BitMatrix& a, const BitMatrix& b) {
  BitMatrix out;
  for (int j = 0; j < 256; ++j) out.cols[j] = MatVec(a, b.cols[j]);
  return out;
}

BitMatrix TransitionMatrix() {
  BitMatrix m;
  for (int j = 0; j < 256; ++j) {
    State e{0, 0, 0, 0};
    e[j / 64] = 1ULL << (j % 64);
    m.cols[j] = StepLinear(e);
  }
  return m;
}

TEST(RngStreamTest, JumpMatchesMatrixPower) {
  // M^(2^128) by 128 squarings of the transition matrix.
  BitMatrix m = TransitionMatrix();
  for (int i = 0; i < 128; ++i) m = MatMul(m, m);

  for (uint64_t seed : {42ULL, 0ULL, 0xdeadbeefULL}) {
    State expected = MatVec(m, SeedState(seed));
    Rng rng(seed);
    rng.Jump();
    // Compare through the outputs: scramble-and-step the expected state and
    // check the next 8 draws agree.
    for (int k = 0; k < 8; ++k) {
      ASSERT_EQ(rng.Next(), Scramble(expected))
          << "seed " << seed << " draw " << k;
      expected = StepLinear(expected);
    }
  }
}

TEST(RngStreamTest, GoldenJumpVectors) {
  // Cross-platform pinning: first draws after one jump from seed 42 and
  // after Split(3) from seed 12345 (values recorded from the verified
  // implementation; JumpMatchesMatrixPower establishes correctness).
  Rng a(42);
  a.Jump();
  const uint64_t kAfterJump42[4] = {
      0x50086ef83cbf4f4aULL, 0xba285ec21347d703ULL, 0x5ea1247b4dc6452aULL,
      0x03a5c66424702131ULL};
  for (uint64_t expect : kAfterJump42) EXPECT_EQ(a.Next(), expect);

  Rng b = Rng(12345).Split(3);
  const uint64_t kSplit3From12345[4] = {
      0x1a5442dc8aa8e92bULL, 0xbb2a2b8436842362ULL, 0xcc6b09085e64d857ULL,
      0x2496399f4348b925ULL};
  for (uint64_t expect : kSplit3From12345) EXPECT_EQ(b.Next(), expect);
}

TEST(RngStreamTest, SplitEqualsIteratedJumps) {
  for (uint64_t i : {0ULL, 1ULL, 2ULL, 5ULL}) {
    Rng split = Rng(7).Split(i);
    Rng jumped(7);
    for (uint64_t k = 0; k < i; ++k) jumped.Jump();
    for (int k = 0; k < 16; ++k) ASSERT_EQ(split.Next(), jumped.Next());
  }
}

TEST(RngStreamTest, SplitDoesNotAdvanceParent) {
  Rng parent(11);
  Rng untouched(11);
  (void)parent.Split(4);
  for (int k = 0; k < 16; ++k) ASSERT_EQ(parent.Next(), untouched.Next());
}

TEST(RngStreamTest, SubstreamsAreDisjoint) {
  // Substreams are 2^128 draws apart; any collision within small prefixes
  // would indicate a broken jump. 8 substreams x 1024 draws, all distinct.
  std::unordered_set<uint64_t> seen;
  size_t total = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    Rng rng = Rng(3).Split(i);
    for (int k = 0; k < 1024; ++k) {
      seen.insert(rng.Next());
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(RngStreamTest, JumpClearsGaussianCache) {
  // Box-Muller caches its second half; a jump starts a fresh stream, so the
  // cached value must not leak past it. Both generators consume two draws
  // (one Gaussian == two UniformDouble), jump, then must agree.
  Rng a = testing::FixedSeedRng(9);
  (void)a.Gaussian();
  a.Jump();
  Rng b = testing::FixedSeedRng(9);
  b.Next();
  b.Next();
  b.Jump();
  EXPECT_DOUBLE_EQ(a.Gaussian(), b.Gaussian());
}

}  // namespace
}  // namespace suj
