// Cross-shard determinism & conformance suite for src/shard/ — the
// contract that makes horizontal sharding invisible to clients:
//
//  * the canonical (vp-major) root order is a pure function of the data
//    and the virtual-partition count, NOT of the shard count, and every
//    shard plan partitions the canonical rows exactly;
//  * ShardMergedOverlapEstimator equals the canonical exact calculator
//    to the last bit (shard root slices partition every join result and
//    every intersection), so sharded warm-ups are provably identical;
//  * oracle mode: a sharded union sampler at K in {1,2,4,8} shards is
//    byte-identical to the unsharded row-path sampler over the same
//    canonical specs, at 1/2/4 worker threads, for both partition
//    schemes (comparisons are at EQUAL thread counts — thread count
//    changes how the caller RNG is consumed, sharding must not);
//  * revision mode: the resumable protocol delivers the same bytes
//    one-shot and split-across-calls on every shard count;
//  * hash-routed membership probers agree with the canonical probers on
//    every union member and on non-members;
//  * the full serving stack (PreparedUnion + SamplingSession) delivers
//    byte-identical streams from a sharded plan and its unsharded
//    reference in all three session modes (oracle / online / revision).
//
// Runs under the TSan CI job (`concurrency` label): the parallel
// executor fans sharded samplers out across worker threads.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/wire.h"
#include "core/exact_overlap.h"
#include "core/revision_state.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "join/membership.h"
#include "obs/metrics.h"
#include "service/prepared_union.h"
#include "service/session.h"
#include "shard/shard_coordinator.h"
#include "shard/shard_plan.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

constexpr int kShardCounts[] = {1, 2, 4, 8};
constexpr size_t kThreadCounts[] = {1, 2, 4};

std::vector<JoinSpecPtr> MakeJoins(uint64_t seed) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 24;
  options.seed = seed;
  return MakeOverlappingChains(options).value();
}

// A sharded execution context. The cache member must precede the
// coordinator: per-shard EW indexes dedupe shared children through it,
// so it has to outlive them.
struct ShardedSetup {
  CompositeIndexCache cache;
  ShardPlanPtr plan;
  std::shared_ptr<ShardCoordinator> coord;
};

std::unique_ptr<ShardedSetup> MakeSharded(
    const std::vector<JoinSpecPtr>& joins, int num_shards,
    ShardScheme scheme = ShardScheme::kHashKey) {
  auto s = std::make_unique<ShardedSetup>();
  ShardOptions options;
  options.num_shards = num_shards;
  options.scheme = scheme;
  s->plan = ShardPlanner::Plan(joins, options).value();
  s->coord = ShardCoordinator::Build(s->plan, &s->cache).value();
  return s;
}

// The unsharded byte-identity reference: plain exact-weight samplers on
// the ROW path (sharded samplers always sample the row path) over the
// canonical specs.
UnionSampler::JoinSamplerFactory RowFactory(std::vector<JoinSpecPtr> joins,
                                            CompositeIndexCache* cache) {
  return [joins = std::move(joins),
          cache]() -> Result<std::vector<std::unique_ptr<JoinSampler>>> {
    ExactWeightSampler::Options options;
    options.columnar = false;
    std::vector<std::unique_ptr<JoinSampler>> out;
    for (const auto& join : joins) {
      auto sampler = ExactWeightSampler::Create(join, cache, options);
      if (!sampler.ok()) return sampler.status();
      out.push_back(std::move(*sampler));
    }
    return out;
  };
}

UnionSampler::JoinSamplerFactory ShardFactory(
    std::shared_ptr<ShardCoordinator> coord) {
  return [coord = std::move(coord)]() { return coord->MakeSamplers(); };
}

std::vector<std::string> Encodings(const std::vector<Tuple>& samples) {
  std::vector<std::string> out;
  out.reserve(samples.size());
  for (const auto& t : samples) out.push_back(t.Encode());
  return out;
}

std::vector<std::string> RelationRows(const Relation& rel) {
  std::vector<std::string> out;
  out.reserve(rel.num_rows());
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    std::vector<Value> values;
    for (size_t c = 0; c < rel.schema().num_fields(); ++c) {
      values.push_back(rel.GetValue(r, c));
    }
    out.push_back(Tuple(std::move(values)).Encode());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Plan-level invariants

TEST(ShardPlanTest, CanonicalOrderIsShardCountInvariant) {
  for (uint64_t seed : {700u, 701u}) {
    auto joins = MakeJoins(seed);
    for (ShardScheme scheme :
         {ShardScheme::kHashKey, ShardScheme::kRowRange}) {
      // K=1 defines the canonical order for this scheme; every other
      // shard count must reproduce it exactly and slice it contiguously.
      std::vector<std::vector<std::string>> reference;
      for (int k : kShardCounts) {
        ShardOptions options;
        options.num_shards = k;
        options.scheme = scheme;
        auto plan = ShardPlanner::Plan(joins, options).value();
        ASSERT_EQ(plan->num_joins(), joins.size());
        for (size_t j = 0; j < plan->num_joins(); ++j) {
          const ShardedJoinPlan& jp = plan->join_plan(j);
          const Relation& root = *jp.canonical->relations()[jp.root];
          auto rows = RelationRows(root);
          if (k == kShardCounts[0]) {
            // The canonical root is a permutation of the input root.
            const Relation& input = *joins[j]->relations()[jp.root];
            auto input_rows = RelationRows(input);
            EXPECT_EQ(std::multiset<std::string>(rows.begin(), rows.end()),
                      std::multiset<std::string>(input_rows.begin(),
                                                 input_rows.end()))
                << "seed=" << seed << " join=" << j;
            reference.push_back(rows);
          } else {
            EXPECT_EQ(rows, reference[j])
                << "seed=" << seed << " scheme="
                << static_cast<int>(scheme) << " shards=" << k
                << " join=" << j;
          }
          // Shard slices partition the canonical rows.
          ASSERT_EQ(jp.row_begin.size(), static_cast<size_t>(k) + 1);
          EXPECT_EQ(jp.row_begin.front(), 0u);
          EXPECT_EQ(jp.row_begin.back(), root.num_rows());
          for (int s = 0; s < k; ++s) {
            ASSERT_LE(jp.row_begin[s], jp.row_begin[s + 1]);
            const Relation& slice =
                *jp.shard_specs[s]->relations()[jp.root];
            EXPECT_EQ(slice.num_rows(),
                      jp.row_begin[s + 1] - jp.row_begin[s]);
          }
          // vp-major: the virtual-partition sequence is non-decreasing.
          for (size_t r = 1; r < jp.vp_of_row.size(); ++r) {
            ASSERT_GE(jp.vp_of_row[r], jp.vp_of_row[r - 1]);
          }
        }
      }
    }
  }
}

TEST(ShardPlanTest, MergedOverlapEstimatorEqualsCanonicalExactly) {
  auto joins = MakeJoins(702);
  auto base = MakeSharded(joins, 1);
  auto exact =
      ExactOverlapCalculator::Create(base->plan->canonical_joins()).value();
  const SubsetMask full = (SubsetMask{1} << joins.size()) - 1;
  for (int k : kShardCounts) {
    // kRowRange exercises the canonical-fallback path (range slices are
    // not content-addressed, so per-shard merging would undercount
    // cross-shard intersections); kHashKey the true per-shard merge.
    for (ShardScheme scheme :
         {ShardScheme::kHashKey, ShardScheme::kRowRange}) {
      auto range_sharded = MakeSharded(joins, k, scheme);
      auto range_merged =
          ShardMergedOverlapEstimator::Create(range_sharded->plan).value();
      for (SubsetMask mask = 1; mask <= full; ++mask) {
        EXPECT_EQ(range_merged->EstimateOverlap(mask).value(),
                  exact->EstimateOverlap(mask).value())
            << "shards=" << k << " scheme=" << static_cast<int>(scheme)
            << " mask=" << mask;
      }
    }
    auto sharded = MakeSharded(joins, k);
    auto merged = ShardMergedOverlapEstimator::Create(sharded->plan).value();
    EXPECT_FALSE(merged->IsUpperBound());
    for (SubsetMask mask = 1; mask <= full; ++mask) {
      // Bit-exact, not approximate: overlaps are integer counts and the
      // shard slices partition every intersection.
      EXPECT_EQ(merged->EstimateOverlap(mask).value(),
                exact->EstimateOverlap(mask).value())
          << "shards=" << k << " mask=" << mask;
    }
    // The coordinator's weight ledger merges exactly too: sum_s w_s ==
    // sum_j TotalWeight_j (verified internally by RefreshWeights, which
    // fails the Build if the invariant breaks; re-check the exposed
    // numbers anyway).
    double ledger = 0.0;
    for (double w : sharded->coord->shard_union_weights()) ledger += w;
    double direct = 0.0;
    for (size_t j = 0; j < joins.size(); ++j) {
      direct += sharded->coord->join_index(static_cast<int>(j))
                    ->TotalWeight();
    }
    EXPECT_EQ(ledger, direct) << "shards=" << k;
    EXPECT_GE(sharded->coord->weight_refreshes(), 1u);
    ASSERT_TRUE(sharded->coord->RefreshWeights().ok());
  }
}

TEST(ShardPlanTest, RoutedProbersMatchCanonicalOnMembersAndNonMembers) {
  auto joins = MakeJoins(703);
  auto base = MakeSharded(joins, 1);
  const auto& canonical = base->plan->canonical_joins();
  auto exact = ExactOverlapCalculator::Create(canonical).value();
  for (int k : {2, 4, 8}) {
    auto sharded = MakeSharded(joins, k);
    auto routed = sharded->coord->BuildRoutedProbers().value();
    std::vector<JoinMembershipProberPtr> plain;
    for (const auto& join : sharded->plan->canonical_joins()) {
      plain.push_back(JoinMembershipProber::Build(join).value());
    }
    ASSERT_EQ(routed.size(), plain.size());
    for (const auto& [encoded, multiplicity] : exact->membership()) {
      Tuple t = DecodeTuple(encoded).value();
      for (size_t j = 0; j < routed.size(); ++j) {
        EXPECT_EQ(routed[j]->Contains(t), plain[j]->Contains(t))
            << "shards=" << k << " join=" << j;
      }
    }
    // A tuple outside every join routes somewhere and answers false.
    std::vector<Value> absent;
    for (size_t c = 0; c < canonical[0]->output_schema().num_fields();
         ++c) {
      absent.push_back(Value::Int64(987654321 + static_cast<int64_t>(c)));
    }
    Tuple missing(std::move(absent));
    for (size_t j = 0; j < routed.size(); ++j) {
      EXPECT_FALSE(routed[j]->Contains(missing)) << "shards=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Union-protocol byte identity

TEST(ShardDeterminismTest, OracleShardedMatchesUnshardedRowPath) {
  for (uint64_t seed : {710u, 711u}) {
    auto joins = MakeJoins(seed);
    const size_t n = 150;
    for (ShardScheme scheme :
         {ShardScheme::kHashKey, ShardScheme::kRowRange}) {
      auto base = MakeSharded(joins, 1, scheme);
      const auto& canonical = base->plan->canonical_joins();
      auto exact = ExactOverlapCalculator::Create(canonical).value();
      auto estimates = ComputeUnionEstimates(exact.get()).value();
      std::vector<JoinMembershipProberPtr> plain_probers;
      for (const auto& join : canonical) {
        plain_probers.push_back(JoinMembershipProber::Build(join).value());
      }

      // Reference per thread count: the unsharded row-path sampler over
      // the canonical specs. Thread count changes how the caller RNG is
      // consumed, so each sharded run compares at ITS thread count.
      std::vector<std::vector<std::string>> reference;
      for (size_t threads : kThreadCounts) {
        UnionSampler::Options opts;
        opts.mode = UnionSampler::Mode::kMembershipOracle;
        opts.num_threads = threads;
        opts.batch_size = 32;
        opts.sampler_factory = RowFactory(canonical, &base->cache);
        auto sampler = UnionSampler::Create(canonical, {}, estimates,
                                            plain_probers, opts)
                           .value();
        Rng rng(seed + 1);
        auto got = sampler->Sample(n, rng);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        reference.push_back(Encodings(*got));
        for (const auto& t : *got) {
          ASSERT_TRUE(exact->membership().count(t.Encode()));
        }
      }

      for (int k : kShardCounts) {
        auto sharded = MakeSharded(joins, k, scheme);
        auto merged =
            ShardMergedOverlapEstimator::Create(sharded->plan).value();
        auto shard_estimates = ComputeUnionEstimates(merged.get()).value();
        auto probers = scheme == ShardScheme::kHashKey
                           ? sharded->coord->BuildRoutedProbers().value()
                           : plain_probers;
        for (size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
          UnionSampler::Options opts;
          opts.mode = UnionSampler::Mode::kMembershipOracle;
          opts.num_threads = kThreadCounts[ti];
          opts.batch_size = 32;
          opts.sampler_factory = ShardFactory(sharded->coord);
          auto sampler =
              UnionSampler::Create(sharded->coord->joins(), {},
                                   shard_estimates, probers, opts)
                  .value();
          Rng rng(seed + 1);
          auto got = sampler->Sample(n, rng);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          EXPECT_EQ(Encodings(*got), reference[ti])
              << "seed=" << seed << " scheme="
              << static_cast<int>(scheme) << " shards=" << k
              << " threads=" << kThreadCounts[ti];
        }
      }
    }
  }
}

TEST(ShardDeterminismTest, RevisionOneShotEqualsChunkedOnEveryShardCount) {
  const uint64_t seed = 712;
  auto joins = MakeJoins(seed);
  const size_t n = 180;
  const std::vector<size_t> split = {47, 1, 90, 42};

  auto base = MakeSharded(joins, 1);
  const auto& canonical = base->plan->canonical_joins();
  auto exact = ExactOverlapCalculator::Create(canonical).value();
  auto estimates = ComputeUnionEstimates(exact.get()).value();

  // Reference per thread count: unsharded row path, one-shot.
  std::vector<std::vector<std::string>> reference;
  for (size_t threads : kThreadCounts) {
    UnionSampler::Options opts;
    opts.mode = UnionSampler::Mode::kRevision;
    opts.num_threads = threads;
    opts.batch_size = 32;
    opts.sampler_factory = RowFactory(canonical, &base->cache);
    auto sampler =
        UnionSampler::Create(canonical, {}, estimates, {}, opts).value();
    RevisionState state;
    Rng rng(seed + 2);
    auto got = sampler->Sample(n, rng, state);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    reference.push_back(Encodings(*got));
  }

  for (int k : kShardCounts) {
    auto sharded = MakeSharded(joins, k);
    auto merged = ShardMergedOverlapEstimator::Create(sharded->plan).value();
    auto shard_estimates = ComputeUnionEstimates(merged.get()).value();
    for (size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
      for (bool chunked : {false, true}) {
        UnionSampler::Options opts;
        opts.mode = UnionSampler::Mode::kRevision;
        opts.num_threads = kThreadCounts[ti];
        opts.batch_size = 32;
        opts.sampler_factory = ShardFactory(sharded->coord);
        auto sampler = UnionSampler::Create(sharded->coord->joins(), {},
                                            shard_estimates, {}, opts)
                           .value();
        RevisionState state;
        Rng rng(seed + 2);
        std::vector<Tuple> all;
        if (chunked) {
          for (size_t c : split) {
            auto samples = sampler->Sample(c, rng, state);
            ASSERT_TRUE(samples.ok()) << samples.status().ToString();
            for (auto& t : *samples) all.push_back(std::move(t));
          }
        } else {
          auto samples = sampler->Sample(n, rng, state);
          ASSERT_TRUE(samples.ok()) << samples.status().ToString();
          all = std::move(*samples);
        }
        ASSERT_EQ(all.size(), n);
        EXPECT_EQ(Encodings(all), reference[ti])
            << "shards=" << k << " threads=" << kThreadCounts[ti]
            << " chunked=" << chunked;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Serving-stack byte identity: PreparedUnion + SamplingSession

std::vector<std::string> SessionRun(const PreparedUnionPtr& plan,
                                    SessionOptions::Mode mode,
                                    size_t threads) {
  SessionOptions opts;
  opts.mode = mode;
  opts.worker_threads = threads;
  opts.batch_size = 32;
  auto session = SamplingSession::Create(1, plan, opts, Rng(777)).value();
  // Chunked on purpose: resuming across calls is the session contract.
  std::vector<std::string> out;
  for (size_t c : {40u, 3u, 77u}) {
    auto chunk = session->Sample(c);
    EXPECT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (!chunk.ok()) return out;
    for (const auto& t : *chunk) out.push_back(t.Encode());
  }
  return out;
}

TEST(ShardDeterminismTest, ServiceSessionsMatchUnshardedInEveryMode) {
  const uint64_t seed = 720;
  auto joins = MakeJoins(seed);
  // The reference plan: unsharded, over the canonical specs, row-path
  // samplers (the sharding reference path).
  auto base_plan = ShardPlanner::Plan(joins, ShardOptions()).value();
  PreparedQueryOptions ref_opts;
  ref_opts.columnar_samplers = false;
  auto reference_plan =
      PreparedUnion::Build("shard-ref", 1, base_plan->canonical_joins(),
                           ref_opts)
          .value();

  const SessionOptions::Mode kModes[] = {SessionOptions::Mode::kOracle,
                                         SessionOptions::Mode::kOnline,
                                         SessionOptions::Mode::kRevision};
  uint64_t plan_id = 2;
  for (int k : {2, 4, 8}) {
    PreparedQueryOptions opts;
    opts.shard.num_shards = k;
    auto plan =
        PreparedUnion::Build("shard-" + std::to_string(k), plan_id++,
                             joins, opts)
            .value();
    ASSERT_NE(plan->shards(), nullptr);
    EXPECT_EQ(plan->shards()->num_shards(), k);
    EXPECT_TRUE(plan->weight_indexes().empty());
    for (SessionOptions::Mode mode : kModes) {
      for (size_t threads : kThreadCounts) {
        auto reference = SessionRun(reference_plan, mode, threads);
        auto got = SessionRun(plan, mode, threads);
        EXPECT_EQ(got, reference)
            << "shards=" << k << " mode=" << static_cast<int>(mode)
            << " threads=" << threads;
      }
    }
  }
}

TEST(ShardDeterminismTest, RowRangeOverlapDelegationIsCounted) {
  // kRowRange warm-ups are NOT shard-local: range slices are not
  // content-addressed, so the merged estimator silently delegates to one
  // canonical ExactOverlapCalculator (still exact, but centralized).
  // That delegation is surfaced via suj_shard_overlap_delegated_total so
  // operators can see kRowRange plans pay a central warm-up; this pins
  // the counter to exactly one bump per kRowRange estimator build and
  // none for kHashKey (which truly merges per shard).
  auto joins = MakeJoins(722);
  obs::Counter* const delegated = obs::MetricsRegistry::Global().GetCounter(
      "suj_shard_overlap_delegated_total");

  uint64_t before = delegated->Value();
  auto hashed = MakeSharded(joins, 4, ShardScheme::kHashKey);
  ASSERT_TRUE(
      ShardMergedOverlapEstimator::Create(hashed->plan).ok());
  EXPECT_EQ(delegated->Value(), before) << "kHashKey must not delegate";

  before = delegated->Value();
  auto ranged = MakeSharded(joins, 4, ShardScheme::kRowRange);
  ASSERT_TRUE(
      ShardMergedOverlapEstimator::Create(ranged->plan).ok());
  EXPECT_EQ(delegated->Value(), before + 1)
      << "kRowRange delegates exactly once per estimator build";
}

TEST(ShardDeterminismTest, FailedShardSurfacesAsUnavailable) {
  auto joins = MakeJoins(721);
  PreparedQueryOptions opts;
  opts.shard.num_shards = 4;
  auto plan = PreparedUnion::Build("shard-fail", 9, joins, opts).value();
  SessionOptions sopts;
  auto session = SamplingSession::Create(1, plan, sopts, Rng(5)).value();
  ASSERT_TRUE(session->Sample(10).ok());

  plan->shards()->FailShard(2);
  EXPECT_TRUE(plan->shards()->shard_failed(2));
  const uint64_t before = plan->shards()->unavailable_errors();
  auto blocked = session->Sample(10);
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(plan->shards()->unavailable_errors(), before);

  // Restore and resume: the session picks up where it left off.
  plan->shards()->RestoreShard(2);
  EXPECT_FALSE(plan->shards()->shard_failed(2));
  auto resumed = session->Sample(10);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->size(), 10u);
}

}  // namespace
}  // namespace suj
