// Tests for core/exact_overlap: ground-truth overlaps via full joins.

#include <gtest/gtest.h>

#include <set>

#include "core/exact_overlap.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

TEST(ExactOverlapTest, SingletonEqualsJoinSize) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 25;
  options.seed = 50;
  auto joins = MakeOverlappingChains(options).value();
  auto calc = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(calc.ok());
  for (int j = 0; j < 3; ++j) {
    std::multiset<std::string> brute = testing::BruteForceJoin(joins[j]);
    std::set<std::string> distinct(brute.begin(), brute.end());
    auto size = (*calc)->EstimateJoinSize(j);
    ASSERT_TRUE(size.ok());
    EXPECT_DOUBLE_EQ(size.value(), static_cast<double>(distinct.size()));
    EXPECT_EQ((*calc)->JoinSize(j), distinct.size());
  }
}

TEST(ExactOverlapTest, PairwiseOverlapMatchesSetIntersection) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 25;
  options.seed = 51;
  auto joins = MakeOverlappingChains(options).value();
  auto calc = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(calc.ok());
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      size_t expected = 0;
      for (const auto& enc : (*calc)->join_set(a)) {
        if ((*calc)->join_set(b).count(enc)) ++expected;
      }
      auto overlap =
          (*calc)->EstimateOverlap((1ULL << a) | (1ULL << b));
      ASSERT_TRUE(overlap.ok());
      EXPECT_DOUBLE_EQ(overlap.value(), static_cast<double>(expected));
    }
  }
}

TEST(ExactOverlapTest, UnionSizeMatchesSetUnion) {
  SyntheticChainOptions options;
  options.num_joins = 4;
  options.master_rows = 20;
  options.seed = 52;
  auto joins = MakeOverlappingChains(options).value();
  auto calc = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(calc.ok());
  std::set<std::string> all;
  for (int j = 0; j < 4; ++j) {
    all.insert((*calc)->join_set(j).begin(), (*calc)->join_set(j).end());
  }
  EXPECT_EQ((*calc)->UnionSize(), all.size());
}

TEST(ExactOverlapTest, IdenticalJoinsFullyOverlap) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 15;
  options.mode = workloads::OverlapMode::kIdentical;
  auto joins = MakeOverlappingChains(options).value();
  auto calc = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(calc.ok());
  auto o = (*calc)->EstimateOverlap(0b11);
  ASSERT_TRUE(o.ok());
  EXPECT_DOUBLE_EQ(o.value(), static_cast<double>((*calc)->JoinSize(0)));
  EXPECT_EQ((*calc)->UnionSize(), (*calc)->JoinSize(0));
}

TEST(ExactOverlapTest, DisjointJoinsNoOverlap) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 15;
  options.mode = workloads::OverlapMode::kDisjoint;
  auto joins = MakeOverlappingChains(options).value();
  auto calc = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(calc.ok());
  auto o = (*calc)->EstimateOverlap(0b111);
  ASSERT_TRUE(o.ok());
  EXPECT_DOUBLE_EQ(o.value(), 0.0);
  EXPECT_EQ((*calc)->UnionSize(), (*calc)->JoinSize(0) + (*calc)->JoinSize(1) +
                                      (*calc)->JoinSize(2));
}

TEST(ExactOverlapTest, InvalidMaskRejected) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 10;
  auto joins = MakeOverlappingChains(options).value();
  auto calc = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(calc.ok());
  EXPECT_FALSE((*calc)->EstimateOverlap(0).ok());
  EXPECT_FALSE((*calc)->EstimateOverlap(0b100).ok());
}

}  // namespace
}  // namespace suj
