// Tests for the uniform join samplers: exact-weight (EW) and extended
// Olken (EO), across chain / acyclic / cyclic joins.

#include <gtest/gtest.h>

#include <map>

#include "join/exact_weight.h"
#include "join/full_join.h"
#include "join/join_size_bound.h"
#include "join/olken_sampler.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeRelation;
using workloads::MakeStarJoin;
using workloads::MakeTriangleJoin;

// Draws `n` samples and chi-square-tests them against the uniform
// distribution over the join's exact result.
void ExpectUniform(JoinSampler* sampler, const JoinSpecPtr& join, size_t n,
                   uint64_t seed) {
  FullJoinExecutor executor;
  auto full = executor.Execute(join);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->size(), 0u);

  Rng rng(seed);
  std::vector<Tuple> samples;
  for (size_t i = 0; i < n; ++i) {
    auto t = sampler->Sample(rng);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    samples.push_back(std::move(t).value());
  }
  auto counts = testing::CountByValue(samples);
  // Every sampled tuple must be a genuine result tuple.
  std::set<std::string> universe;
  for (const auto& t : full->tuples) universe.insert(t.Encode());
  for (const auto& [key, c] : counts) {
    ASSERT_TRUE(universe.count(key)) << "sampler produced a non-result tuple";
  }
  double chi2 = testing::ChiSquareUniform(counts, universe.size(), n);
  EXPECT_LT(chi2, testing::ChiSquareThreshold(universe.size() - 1));
}

JoinSpecPtr SmallChain() {
  auto r = MakeRelation("r", {"a", "b"},
                        {{1, 10}, {2, 10}, {3, 20}, {4, 30}, {5, 20}})
               .value();
  auto s = MakeRelation("s", {"b", "c"},
                        {{10, 1}, {10, 2}, {20, 3}, {40, 4}, {10, 5}})
               .value();
  auto t = MakeRelation("t", {"c", "d"},
                        {{1, 7}, {2, 7}, {3, 7}, {3, 8}, {5, 9}})
               .value();
  return JoinSpec::Create("chain", {r, s, t}).value();
}

TEST(ExactWeightTest, TotalWeightEqualsJoinSizeOnChain) {
  auto join = SmallChain();
  CompositeIndexCache cache;
  auto index = ExactWeightIndex::Build(join, &cache);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->exact());
  FullJoinExecutor executor;
  auto count = executor.Count(join);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ((*index)->TotalWeight(), static_cast<double>(*count));
}

TEST(ExactWeightTest, TotalWeightEqualsJoinSizeOnStar) {
  auto join = MakeStarJoin(14, 21).value();
  CompositeIndexCache cache;
  auto index = ExactWeightIndex::Build(join, &cache);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->exact());
  FullJoinExecutor executor;
  auto count = executor.Count(join);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ((*index)->TotalWeight(), static_cast<double>(*count));
}

TEST(ExactWeightTest, TriangleWeightIsUpperBound) {
  auto join = MakeTriangleJoin(18, 4).value();
  CompositeIndexCache cache;
  auto index = ExactWeightIndex::Build(join, &cache);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE((*index)->exact());
  FullJoinExecutor executor;
  auto count = executor.Count(join);
  ASSERT_TRUE(count.ok());
  EXPECT_GE((*index)->TotalWeight(), static_cast<double>(*count));
}

TEST(ExactWeightSamplerTest, UniformOnChainNoRejections) {
  auto join = SmallChain();
  CompositeIndexCache cache;
  auto sampler = ExactWeightSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  ExpectUniform(sampler->get(), join, 30000, 100);
  EXPECT_EQ((*sampler)->stats().rejections, 0u);
  EXPECT_EQ((*sampler)->stats().dead_ends, 0u);
}

TEST(ExactWeightSamplerTest, UniformOnStar) {
  auto join = MakeStarJoin(12, 22).value();
  CompositeIndexCache cache;
  auto sampler = ExactWeightSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  ExpectUniform(sampler->get(), join, 30000, 101);
  EXPECT_EQ((*sampler)->stats().rejections, 0u);
}

TEST(ExactWeightSamplerTest, UniformOnTriangleWithRejections) {
  auto join = MakeTriangleJoin(20, 5).value();
  FullJoinExecutor executor;
  auto count = executor.Count(join);
  ASSERT_TRUE(count.ok() && *count > 0) << "need a non-empty triangle";
  CompositeIndexCache cache;
  auto sampler = ExactWeightSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  ExpectUniform(sampler->get(), join, 20000, 102);
}

TEST(ExactWeightSamplerTest, EmptyJoin) {
  auto r = MakeRelation("r", {"a", "b"}, {{1, 1}}).value();
  auto s = MakeRelation("s", {"b", "c"}, {{2, 2}}).value();
  auto join = JoinSpec::Create("empty", {r, s}).value();
  CompositeIndexCache cache;
  auto sampler = ExactWeightSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  EXPECT_TRUE((*sampler)->IsEmpty());
  Rng rng(1);
  EXPECT_FALSE((*sampler)->Sample(rng).ok());
}

TEST(ExactWeightSamplerTest, PredicateRejectionKeepsUniformity) {
  auto r = MakeRelation("r", {"a", "b"},
                        {{1, 10}, {2, 10}, {3, 20}, {4, 20}})
               .value();
  auto s = MakeRelation("s", {"b", "c"}, {{10, 1}, {20, 2}, {20, 3}}).value();
  auto join = JoinSpec::Create(
                  "j", {r, s}, {},
                  {Predicate("a", CompareOp::kGe, Value::Int64(2))})
                  .value();
  CompositeIndexCache cache;
  auto sampler = ExactWeightSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  EXPECT_FALSE((*sampler)->weight_index()->exact());
  ExpectUniform(sampler->get(), join, 20000, 103);
  EXPECT_GT((*sampler)->stats().rejections, 0u);
}

TEST(ResolveCumulativeDrawTest, InteriorDrawsUseUpperBound) {
  const std::vector<double> weights = {2.0, 1.0, 3.0};
  const std::vector<double> cumulative = {2.0, 3.0, 6.0};
  EXPECT_EQ(ResolveCumulativeDraw(cumulative, weights, 0.0), 0u);
  EXPECT_EQ(ResolveCumulativeDraw(cumulative, weights, 1.9), 0u);
  EXPECT_EQ(ResolveCumulativeDraw(cumulative, weights, 2.0), 1u);
  EXPECT_EQ(ResolveCumulativeDraw(cumulative, weights, 2.5), 1u);
  EXPECT_EQ(ResolveCumulativeDraw(cumulative, weights, 5.9), 2u);
}

TEST(ResolveCumulativeDrawTest, BoundaryDrawSkipsZeroWeightTail) {
  // The regression this helper exists for: u * total can round up to
  // exactly `total`, and upper_bound then lands one past the end. The
  // old clamp (min(idx, size - 1)) returned the LAST row — wrong when
  // trailing rows are dangling (zero weight), because a zero-weight row
  // yields no join results and must never be drawn. The resolution must
  // walk back to the last positive-weight row instead.
  const std::vector<double> weights = {2.0, 1.0, 0.0, 0.0};
  const std::vector<double> cumulative = {2.0, 3.0, 3.0, 3.0};
  EXPECT_EQ(ResolveCumulativeDraw(cumulative, weights, 3.0), 1u);
  // Above-total draws (floating-point overshoot) resolve the same way.
  EXPECT_EQ(ResolveCumulativeDraw(cumulative, weights, 3.0000001), 1u);
  // Interior draws never see zero-weight rows anyway: the cumulative
  // array is flat across them, so upper_bound skips them.
  EXPECT_EQ(ResolveCumulativeDraw(cumulative, weights, 2.9), 1u);

  // Single positive row with a zero tail.
  EXPECT_EQ(
      ResolveCumulativeDraw({5.0, 5.0}, {5.0, 0.0}, 5.0), 0u);
}

TEST(ExactWeightSamplerTest, ZeroWeightTailRowsAreNeverDrawn) {
  // End-to-end regression shape: the ROOT relation's trailing rows are
  // dangling (no matching s rows), so their exact weights are zero and
  // the root CDF is flat at its tail. Every drawn sample must be a
  // genuine result tuple on both paths — the old boundary clamp could
  // select row "r4"/"r5" and descend into an empty candidate set.
  auto r = MakeRelation("r", {"a", "b"},
                        {{1, 10}, {2, 10}, {3, 20}, {4, 99}, {5, 99}})
               .value();
  auto s = MakeRelation("s", {"b", "c"}, {{10, 1}, {20, 2}, {20, 3}}).value();
  auto join = JoinSpec::Create("zero_tail", {r, s}).value();
  CompositeIndexCache cache;
  auto index = ExactWeightIndex::Build(join, &cache).value();
  const auto& root_weights = index->weights(0);
  ASSERT_EQ(root_weights.back(), 0.0) << "fixture must have a zero tail";
  ASSERT_EQ(root_weights[3], 0.0);

  // Unit-level: a draw at exactly TotalWeight resolves to a positive row.
  size_t j = ResolveCumulativeDraw(index->root_cumulative(), root_weights,
                                   index->TotalWeight());
  EXPECT_GT(root_weights[j], 0.0);

  for (bool columnar : {false, true}) {
    ExactWeightSampler::Options options;
    options.columnar = columnar;
    auto sampler = ExactWeightSampler::Create(index, options).value();
    ExpectUniform(sampler.get(), join, 20000, columnar ? 104 : 105);
    EXPECT_EQ(sampler->stats().dead_ends, 0u)
        << (columnar ? "columnar" : "row")
        << " path drew a zero-weight root row";
  }
}

TEST(OlkenSamplerTest, BoundMatchesExtendedOlkenFormula) {
  auto join = SmallChain();
  CompositeIndexCache cache;
  auto sampler = OlkenJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  auto bound = ComputeExtendedOlkenBound(join, &cache);
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ((*sampler)->SizeUpperBound(), bound->bound);
  FullJoinExecutor executor;
  auto count = executor.Count(join);
  ASSERT_TRUE(count.ok());
  EXPECT_GE(bound->bound, static_cast<double>(*count));
}

TEST(OlkenSamplerTest, UniformOnChain) {
  auto join = SmallChain();
  CompositeIndexCache cache;
  auto sampler = OlkenJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  ExpectUniform(sampler->get(), join, 30000, 104);
  // The chain has degree skew, so EO must reject sometimes.
  EXPECT_GT((*sampler)->stats().rejections + (*sampler)->stats().dead_ends,
            0u);
}

TEST(OlkenSamplerTest, UniformOnTriangle) {
  auto join = MakeTriangleJoin(20, 5).value();
  CompositeIndexCache cache;
  auto sampler = OlkenJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  ExpectUniform(sampler->get(), join, 20000, 105);
}

TEST(OlkenSamplerTest, DeadEndsOnDanglingTuples) {
  // Half of r's tuples have no match in s: walks from them must dead-end,
  // realizing the zero-weight extension for non-key-FK joins.
  auto r = MakeRelation("r", {"a", "b"}, {{1, 10}, {2, 99}}).value();
  auto s = MakeRelation("s", {"b", "c"}, {{10, 1}}).value();
  auto join = JoinSpec::Create("j", {r, s}).value();
  CompositeIndexCache cache;
  auto sampler = OlkenJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  Rng rng(2);
  for (int i = 0; i < 200; ++i) (*sampler)->TrySample(rng);
  EXPECT_GT((*sampler)->stats().dead_ends, 0u);
  EXPECT_GT((*sampler)->stats().successes, 0u);
}

TEST(OlkenSamplerTest, EmptyJoinWithLiveKeysOnlyDeadEnds) {
  // Max-degree information alone cannot prove this join empty (each side
  // has keys of degree 1), so the bound is positive and every walk
  // dead-ends -- the documented EO behavior on disjoint key sets.
  auto r = MakeRelation("r", {"a", "b"}, {{1, 1}}).value();
  auto s = MakeRelation("s", {"b", "c"}, {{2, 2}}).value();
  auto join = JoinSpec::Create("empty", {r, s}).value();
  CompositeIndexCache cache;
  auto sampler = OlkenJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  EXPECT_DOUBLE_EQ((*sampler)->SizeUpperBound(), 1.0);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE((*sampler)->TrySample(rng).has_value());
  }
  EXPECT_EQ((*sampler)->stats().dead_ends, 50u);
}

TEST(OlkenSamplerTest, EmptyRelationBoundZero) {
  auto r = MakeRelation("r", {"a", "b"}, {{1, 1}}).value();
  auto s = MakeRelation("s", {"b", "c"}, {}).value();
  auto join = JoinSpec::Create("empty", {r, s}).value();
  CompositeIndexCache cache;
  auto sampler = OlkenJoinSampler::Create(join, &cache);
  ASSERT_TRUE(sampler.ok());
  EXPECT_TRUE((*sampler)->IsEmpty());
  EXPECT_DOUBLE_EQ((*sampler)->SizeUpperBound(), 0.0);
}

TEST(ExactWeightTest, PerRowWeightsCountCompletions) {
  // w(t) for a root row must equal the number of join results that row
  // yields -- checked against per-row brute force.
  auto join = SmallChain();
  CompositeIndexCache cache;
  auto index = ExactWeightIndex::Build(join, &cache);
  ASSERT_TRUE(index.ok());
  int root = join->graph().tree_order()[0];
  const RelationPtr& root_rel = join->relation(root);
  FullJoinExecutor executor(&cache);
  auto full = executor.Execute(join);
  ASSERT_TRUE(full.ok());
  const Schema& out = join->output_schema();
  for (size_t row = 0; row < root_rel->num_rows(); ++row) {
    // Count results whose projection onto the root relation equals row.
    std::vector<int> fields;
    for (const auto& f : root_rel->schema().fields()) {
      fields.push_back(out.FieldIndex(f.name));
    }
    std::string row_enc = root_rel->GetTuple(row).Encode();
    size_t completions = 0;
    for (const auto& t : full->tuples) {
      if (t.Project(fields).Encode() == row_enc) ++completions;
    }
    EXPECT_DOUBLE_EQ((*index)->weights(root)[row],
                     static_cast<double>(completions))
        << "root row " << row;
  }
}

TEST(JoinSizeBoundTest, HistogramBoundAtLeastIndexBound) {
  auto join = SmallChain();
  CompositeIndexCache cache;
  HistogramCatalog histograms;
  auto index_bound = ComputeExtendedOlkenBound(join, &cache);
  auto hist_bound = ComputeOlkenBoundFromHistograms(join, &histograms);
  ASSERT_TRUE(index_bound.ok() && hist_bound.ok());
  // The histogram bound uses per-attribute max degrees (a superset of the
  // composite-key information), so it can only be looser or equal.
  EXPECT_GE(hist_bound->bound, index_bound->bound);
}

TEST(JoinSampleStatsTest, RejectionRatio) {
  JoinSampleStats stats;
  EXPECT_DOUBLE_EQ(stats.RejectionRatio(), 0.0);
  stats.attempts = 10;
  stats.successes = 7;
  EXPECT_NEAR(stats.RejectionRatio(), 0.3, 1e-12);
}

}  // namespace
}  // namespace suj
