// §8.3 integration: the two selection-predicate paradigms (pushdown vs
// on-the-fly) must produce the same sampling distribution over the same
// filtered union.

#include <gtest/gtest.h>

#include "core/exact_overlap.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "join/membership.h"
#include "stats/uniformity.h"
#include "workloads/synthetic.h"
#include "workloads/tpch_workloads.h"

namespace suj {
namespace {

using workloads::MakeRelation;

// A small two-join union with a predicate attribute.
struct PredicateFixture {
  std::vector<JoinSpecPtr> pushdown_joins;
  std::vector<JoinSpecPtr> lazy_joins;
};

PredicateFixture MakeFixture() {
  auto r0 = MakeRelation("R0", {"A", "B"},
                         {{1, 10}, {2, 10}, {3, 20}, {4, 20}, {5, 30}})
                .value();
  auto s0 = MakeRelation("S0", {"B", "C"},
                         {{10, 1}, {10, 2}, {20, 3}, {30, 4}})
                .value();
  auto r1 = MakeRelation("R1", {"A", "B"},
                         {{1, 10}, {3, 20}, {6, 20}, {7, 30}})
                .value();
  auto s1 = MakeRelation("S1", {"B", "C"},
                         {{10, 1}, {20, 3}, {20, 5}, {30, 4}})
                .value();
  std::vector<Predicate> preds = {
      Predicate("A", CompareOp::kLe, Value::Int64(5)),
      Predicate("C", CompareOp::kNe, Value::Int64(4))};

  PredicateFixture f;
  // Pushdown: filter the base relations before building the joins.
  auto fr0 = FilterRelation(r0, preds).value();
  auto fs0 = FilterRelation(s0, preds).value();
  auto fr1 = FilterRelation(r1, preds).value();
  auto fs1 = FilterRelation(s1, preds).value();
  f.pushdown_joins = {JoinSpec::Create("J0", {fr0, fs0}).value(),
                      JoinSpec::Create("J1", {fr1, fs1}).value()};
  // On-the-fly: unfiltered relations, predicates on the join outputs.
  f.lazy_joins = {JoinSpec::Create("J0", {r0, s0}, {}, preds).value(),
                  JoinSpec::Create("J1", {r1, s1}, {}, preds).value()};
  return f;
}

std::vector<Tuple> SampleUnion(const std::vector<JoinSpecPtr>& joins,
                               size_t n, uint64_t seed) {
  auto exact = ExactOverlapCalculator::Create(joins).value();
  auto estimates = ComputeUnionEstimates(exact.get()).value();
  CompositeIndexCache cache;
  std::vector<std::unique_ptr<JoinSampler>> samplers;
  for (const auto& join : joins) {
    samplers.push_back(ExactWeightSampler::Create(join, &cache).value());
  }
  auto probers = BuildProbers(joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(joins, std::move(samplers), estimates,
                                      probers, opts)
                     .value();
  Rng rng(seed);
  return sampler->Sample(n, rng).value();
}

TEST(PredicateSamplingTest, ParadigmsShareTheFilteredUniverse) {
  PredicateFixture f = MakeFixture();
  auto exact_pushdown =
      ExactOverlapCalculator::Create(f.pushdown_joins).value();
  auto exact_lazy = ExactOverlapCalculator::Create(f.lazy_joins).value();
  ASSERT_GT(exact_pushdown->UnionSize(), 2u);
  // Identical filtered result sets.
  EXPECT_EQ(exact_pushdown->UnionSize(), exact_lazy->UnionSize());
  for (const auto& [enc, mask] : exact_pushdown->membership()) {
    auto it = exact_lazy->membership().find(enc);
    ASSERT_NE(it, exact_lazy->membership().end());
    EXPECT_EQ(mask, it->second);
  }
}

TEST(PredicateSamplingTest, BothParadigmsSampleUniformly) {
  PredicateFixture f = MakeFixture();
  auto exact = ExactOverlapCalculator::Create(f.pushdown_joins).value();
  size_t u = exact->UnionSize();
  size_t n = 50 * u;

  auto pushdown_samples = SampleUnion(f.pushdown_joins, n, 301);
  auto lazy_samples = SampleUnion(f.lazy_joins, n, 302);

  auto v1 = ChiSquareUniformityTest(pushdown_samples, u);
  auto v2 = ChiSquareUniformityTest(lazy_samples, u);
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_TRUE(v1->ConsistentWithUniform(1e-6)) << "pushdown";
  EXPECT_TRUE(v2->ConsistentWithUniform(1e-6)) << "on-the-fly";
  // Every lazy sample satisfies the predicates.
  const Schema& schema = f.lazy_joins[0]->output_schema();
  int a = schema.FieldIndex("A"), c = schema.FieldIndex("C");
  for (const auto& t : lazy_samples) {
    ASSERT_LE(t.value(a).int64(), 5);
    ASSERT_NE(t.value(c).int64(), 4);
  }
}

TEST(PredicateSamplingTest, OnTheFlyCostsMoreRejections) {
  // The on-the-fly paradigm pays an extra rejection factor (§8.3).
  PredicateFixture f = MakeFixture();
  CompositeIndexCache cache;
  auto lazy_sampler =
      ExactWeightSampler::Create(f.lazy_joins[0], &cache).value();
  auto pushdown_sampler =
      ExactWeightSampler::Create(f.pushdown_joins[0], &cache).value();
  Rng rng(303);
  for (int i = 0; i < 2000; ++i) {
    lazy_sampler->TrySample(rng);
    pushdown_sampler->TrySample(rng);
  }
  EXPECT_GT(lazy_sampler->stats().rejections,
            pushdown_sampler->stats().rejections);
}

TEST(PredicateSamplingTest, UQ2OnTheFlySamplingWorks) {
  tpch::TpchConfig config;
  config.scale_factor = 0.2;
  auto lazy = workloads::BuildUQ2(config, /*pushdown=*/false).value();
  auto exact = ExactOverlapCalculator::Create(lazy.joins).value();
  if (exact->UnionSize() == 0) GTEST_SKIP() << "empty filtered union";
  auto estimates = ComputeUnionEstimates(exact.get()).value();
  CompositeIndexCache cache;
  std::vector<std::unique_ptr<JoinSampler>> samplers;
  for (const auto& join : lazy.joins) {
    samplers.push_back(ExactWeightSampler::Create(join, &cache).value());
  }
  auto probers = BuildProbers(lazy.joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(lazy.joins, std::move(samplers),
                                      estimates, probers, opts)
                     .value();
  Rng rng(304);
  auto samples = sampler->Sample(1000, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  for (const auto& t : *samples) {
    ASSERT_TRUE(exact->membership().count(t.Encode()));
  }
}

}  // namespace
}  // namespace suj
