// Tests for the sampling service layer (src/service/): prepared-query
// registry semantics, per-session RNG-substream determinism under
// concurrent interleavings, protocol resumability across requests,
// admission-limit rejection and FIFO blocking, prepared-query eviction
// while sessions are live, and streaming delivery. The concurrency tests
// run under the TSan CI job (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/exact_overlap.h"
#include "service/admission.h"
#include "service/prepared_union.h"
#include "service/sampling_service.h"
#include "service/session.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

std::vector<JoinSpecPtr> MakeJoins(uint64_t seed, int num_joins = 3,
                                   size_t master_rows = 20) {
  SyntheticChainOptions options;
  options.num_joins = num_joins;
  options.master_rows = master_rows;
  options.seed = seed;
  return MakeOverlappingChains(options).value();
}

std::unique_ptr<SamplingService> MakeService(uint64_t seed,
                                             size_t max_inflight = 4,
                                             size_t max_sessions = 64) {
  ServiceOptions options;
  options.seed = seed;
  options.max_inflight = max_inflight;
  options.max_sessions = max_sessions;
  return SamplingService::Create(options).value();
}

std::vector<std::string> Encodings(const std::vector<Tuple>& samples) {
  std::vector<std::string> out;
  out.reserve(samples.size());
  for (const auto& t : samples) out.push_back(t.Encode());
  return out;
}

// ---------------------------------------------------------------------------
// PreparedUnion / QueryRegistry

TEST(PreparedUnionTest, BuildPinsTheFullPlan) {
  auto joins = MakeJoins(300);
  auto plan = PreparedUnion::Build("q", /*plan_id=*/7, joins,
                                   PreparedQueryOptions())
                  .value();
  EXPECT_EQ(plan->name(), "q");
  EXPECT_EQ(plan->plan_id(), 7u);
  EXPECT_EQ(plan->joins().size(), joins.size());
  EXPECT_EQ(plan->estimates().cover_sizes.size(), joins.size());
  EXPECT_EQ(plan->probers().size(), joins.size());
  EXPECT_EQ(plan->weight_indexes().size(), joins.size());
  EXPECT_FALSE(plan->standard_template().empty());
  EXPECT_GT(plan->index_cache()->size(), 0u);
  EXPECT_GT(plan->build_seconds(), 0.0);
  // The factory hands out fresh sampler sets over the shared indexes.
  auto samplers = plan->MakeJoinSamplerFactory()().value();
  EXPECT_EQ(samplers.size(), joins.size());
}

TEST(PreparedUnionTest, BuildValidates) {
  auto joins = MakeJoins(301);
  EXPECT_FALSE(
      PreparedUnion::Build("", 1, joins, PreparedQueryOptions()).ok());
  EXPECT_FALSE(
      PreparedUnion::Build("q", 0, joins, PreparedQueryOptions()).ok());
}

TEST(QueryRegistryTest, PrepareGetEvict) {
  QueryRegistry registry;
  auto joins = MakeJoins(302);
  auto plan = registry.Prepare("q", joins, PreparedQueryOptions());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT((*plan)->plan_id(), 0u);
  EXPECT_EQ(registry.size(), 1u);

  // Prepare-once: the name is taken.
  EXPECT_FALSE(registry.Prepare("q", joins, PreparedQueryOptions()).ok());

  EXPECT_TRUE(registry.Get("q").ok());
  EXPECT_EQ(registry.Get("nope").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(registry.Evict("q").ok());
  EXPECT_EQ(registry.Get("q").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Evict("q").code(), StatusCode::kNotFound);

  auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.prepared, 1u);
  EXPECT_EQ(snapshot.hits, 1u);
  EXPECT_EQ(snapshot.misses, 2u);
  EXPECT_EQ(snapshot.evicted, 1u);
}

TEST(QueryRegistryTest, DistinctPlansGetDistinctIds) {
  QueryRegistry registry;
  auto a = registry.Prepare("a", MakeJoins(303), PreparedQueryOptions());
  auto b = registry.Prepare("b", MakeJoins(304), PreparedQueryOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)->plan_id(), (*b)->plan_id());
}

// ---------------------------------------------------------------------------
// Session determinism

// Runs `calls` Sample calls of `per_call` tuples on each of `num_sessions`
// sessions of a fresh service, optionally concurrently (one thread per
// session), and returns the per-session concatenated encodings.
std::vector<std::vector<std::string>> RunSessions(uint64_t service_seed,
                                                  int num_sessions, int calls,
                                                  size_t per_call,
                                                  bool concurrent,
                                                  SessionOptions session_opts =
                                                      SessionOptions()) {
  auto service = MakeService(service_seed);
  auto joins = MakeJoins(310);
  EXPECT_TRUE(service->Prepare("q", joins).ok());
  std::vector<uint64_t> ids;
  for (int s = 0; s < num_sessions; ++s) {
    ids.push_back(service->OpenSession("q", session_opts).value());
  }
  std::vector<std::vector<std::string>> sequences(num_sessions);
  auto run_one = [&](int s) {
    for (int c = 0; c < calls; ++c) {
      auto batch = service->Sample(ids[s], per_call);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      for (const auto& e : Encodings(*batch)) sequences[s].push_back(e);
    }
  };
  if (concurrent) {
    std::vector<std::thread> threads;
    for (int s = 0; s < num_sessions; ++s) threads.emplace_back(run_one, s);
    for (auto& t : threads) t.join();
  } else {
    for (int s = 0; s < num_sessions; ++s) run_one(s);
  }
  return sequences;
}

TEST(ServiceSessionTest, ConcurrentSessionsMatchSequentialExecution) {
  // The acceptance property: per-session sequences are a function of
  // (service seed, session rank, call pattern) — never of interleaving.
  auto sequential = RunSessions(400, 3, /*calls=*/2, /*per_call=*/60,
                                /*concurrent=*/false);
  auto concurrent = RunSessions(400, 3, /*calls=*/2, /*per_call=*/60,
                                /*concurrent=*/true);
  ASSERT_EQ(sequential.size(), concurrent.size());
  for (size_t s = 0; s < sequential.size(); ++s) {
    EXPECT_EQ(sequential[s], concurrent[s]) << "session rank " << s;
  }
  // Disjoint substreams: distinct sessions draw distinct sequences.
  EXPECT_NE(sequential[0], sequential[1]);
  EXPECT_NE(sequential[1], sequential[2]);
}

TEST(ServiceSessionTest, OnlineSessionsMatchSequentialExecution) {
  SessionOptions online;
  online.mode = SessionOptions::Mode::kOnline;
  online.warmup_walks = 40;
  auto sequential = RunSessions(401, 2, /*calls=*/2, /*per_call=*/50,
                                /*concurrent=*/false, online);
  auto concurrent = RunSessions(401, 2, /*calls=*/2, /*per_call=*/50,
                                /*concurrent=*/true, online);
  for (size_t s = 0; s < sequential.size(); ++s) {
    EXPECT_EQ(sequential[s], concurrent[s]) << "session rank " << s;
  }
  EXPECT_NE(sequential[0], sequential[1]);
}

TEST(ServiceSessionTest, RepeatedCallsContinueTheProtocol) {
  // Two Sample(50) calls on one session == one Sample(100) on an
  // identically seeded twin: sessions resume, never restart.
  auto service_a = MakeService(402);
  auto service_b = MakeService(402);
  auto joins = MakeJoins(311);
  ASSERT_TRUE(service_a->Prepare("q", joins).ok());
  ASSERT_TRUE(service_b->Prepare("q", joins).ok());
  uint64_t sid_a = service_a->OpenSession("q").value();
  uint64_t sid_b = service_b->OpenSession("q").value();

  std::vector<std::string> split;
  for (int c = 0; c < 2; ++c) {
    auto batch = service_a->Sample(sid_a, 50);
    ASSERT_TRUE(batch.ok());
    for (const auto& e : Encodings(*batch)) split.push_back(e);
  }
  auto whole = service_b->Sample(sid_b, 100);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(split, Encodings(*whole));

  auto stats = service_a->SessionStats(sid_a).value();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.tuples_delivered, 100u);
  EXPECT_EQ(stats.sampler.accepted, 100u);
}

TEST(ServiceSessionTest, SamplesAreUniformOverTheUnion) {
  auto service = MakeService(403);
  auto joins = MakeJoins(312);
  ASSERT_TRUE(service->Prepare("q", joins).ok());
  uint64_t sid = service->OpenSession("q").value();
  auto exact = ExactOverlapCalculator::Create(joins).value();
  size_t n = 40 * exact->UnionSize();
  auto samples = service->Sample(sid, n);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  auto counts = testing::CountByValue(*samples);
  for (const auto& [key, c] : counts) {
    ASSERT_TRUE(exact->membership().count(key))
        << "sampled tuple outside the union";
  }
  double chi2 =
      testing::ChiSquareUniform(counts, exact->UnionSize(), samples->size());
  EXPECT_LT(chi2, testing::ChiSquareThreshold(exact->UnionSize() - 1));
}

TEST(ServiceSessionTest, ParallelWorkerCountDoesNotChangeTheSequence) {
  // On the executor path (worker_threads > 1) the worker count only
  // changes who does the work, not what comes out — the per-batch RNG
  // substream contract. (worker_threads == 1 is the classic sequential
  // loop, a deliberately different code path with its own sequence.)
  std::vector<std::string> reference;
  for (size_t threads : {2u, 8u}) {
    auto service = MakeService(404);
    ASSERT_TRUE(service->Prepare("q", MakeJoins(313)).ok());
    SessionOptions opts;
    opts.worker_threads = threads;
    opts.batch_size = 32;
    uint64_t sid = service->OpenSession("q", opts).value();
    auto samples = service->Sample(sid, 300);
    ASSERT_TRUE(samples.ok()) << samples.status().ToString();
    auto encodings = Encodings(*samples);
    if (reference.empty()) {
      reference = encodings;
    } else {
      EXPECT_EQ(encodings, reference);
    }
  }
}

TEST(ServiceSessionTest, RevisionSessionsSampleAndScaleDeterministically) {
  // Prepared revision-mode plans get parallel sessions too: a kRevision
  // session runs the epoch-reconciled executor path at EVERY
  // worker_threads (including 1), so the session sequence is a function
  // of (service seed, session rank, call pattern) alone — the worker
  // count never shows in the bytes.
  std::vector<std::string> reference;
  for (size_t threads : {1u, 2u, 8u}) {
    auto service = MakeService(406);
    ASSERT_TRUE(service->Prepare("q", MakeJoins(326)).ok());
    SessionOptions opts;
    opts.mode = SessionOptions::Mode::kRevision;
    opts.worker_threads = threads;
    opts.batch_size = 32;
    uint64_t sid = service->OpenSession("q", opts).value();
    std::vector<std::string> concatenated;
    for (int call = 0; call < 2; ++call) {
      auto samples = service->Sample(sid, 150);
      ASSERT_TRUE(samples.ok()) << samples.status().ToString();
      auto encodings = Encodings(*samples);
      concatenated.insert(concatenated.end(), encodings.begin(),
                          encodings.end());
    }
    auto stats = service->SessionStats(sid).value();
    EXPECT_EQ(stats.tuples_delivered, 300u);
    EXPECT_GE(stats.sampler.revision_epochs, 2u);  // one or more per call
    if (reference.empty()) {
      reference = concatenated;
    } else {
      EXPECT_EQ(concatenated, reference) << "threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Admission control

TEST(AdmissionControllerTest, TryAdmitRejectsWhenSaturated) {
  AdmissionController admission({/*max_inflight=*/2});
  auto a = admission.TryAdmit();
  auto b = admission.TryAdmit();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = admission.TryAdmit();
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  a->Release();
  EXPECT_TRUE(admission.TryAdmit().ok());
  auto snapshot = admission.snapshot();
  EXPECT_EQ(snapshot.admitted, 3u);
  EXPECT_EQ(snapshot.rejected, 1u);
  EXPECT_EQ(snapshot.peak_in_flight, 2u);
}

TEST(AdmissionControllerTest, BlockingAdmitWaitsForASlot) {
  AdmissionController admission({/*max_inflight=*/1});
  auto held = admission.TryAdmit();
  ASSERT_TRUE(held.ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto permit = admission.Admit();
    ASSERT_TRUE(permit.ok());
    admitted.store(true);
  });
  // The waiter must queue (FIFO ticket taken) before we release.
  while (admission.snapshot().waited == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(admitted.load());
  held->Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

TEST(ServiceAdmissionTest, RejectModeShedsLoadWhenSaturated) {
  auto service = MakeService(405, /*max_inflight=*/1);
  ASSERT_TRUE(service->Prepare("q", MakeJoins(314)).ok());
  uint64_t sid = service->OpenSession("q").value();
  // Occupy the only slot out-of-band, then demand fail-fast admission.
  auto held = service->admission().TryAdmit();
  ASSERT_TRUE(held.ok());
  auto rejected = service->Sample(sid, 10, AdmitMode::kReject);
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  held->Release();
  EXPECT_TRUE(service->Sample(sid, 10, AdmitMode::kReject).ok());
}

TEST(ServiceSessionTest, SessionLimitRejects) {
  auto service = MakeService(406, /*max_inflight=*/4, /*max_sessions=*/1);
  ASSERT_TRUE(service->Prepare("q", MakeJoins(315)).ok());
  ASSERT_TRUE(service->OpenSession("q").ok());
  auto second = service->OpenSession("q");
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Eviction vs live sessions

TEST(ServiceSessionTest, EvictionLeavesLiveSessionsSampling) {
  auto service = MakeService(407);
  ASSERT_TRUE(service->Prepare("q", MakeJoins(316)).ok());
  uint64_t sid = service->OpenSession("q").value();
  ASSERT_TRUE(service->Sample(sid, 20).ok());

  ASSERT_TRUE(service->Evict("q").ok());
  EXPECT_EQ(service->GetQuery("q").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service->OpenSession("q").status().code(), StatusCode::kNotFound);

  // The live session holds the plan; it keeps serving.
  auto samples = service->Sample(sid, 20);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  EXPECT_EQ(samples->size(), 20u);
  EXPECT_EQ(service->SessionStats(sid).value().tuples_delivered, 40u);
}

TEST(ServiceSessionTest, EvictionWhileSamplingConcurrently) {
  // TSan coverage: eviction races an in-flight request; the request's
  // shared_ptr keeps the plan alive.
  auto service = MakeService(408);
  ASSERT_TRUE(service->Prepare("q", MakeJoins(317)).ok());
  uint64_t sid = service->OpenSession("q").value();
  std::thread sampler_thread([&] {
    for (int i = 0; i < 5; ++i) {
      auto samples = service->Sample(sid, 50);
      ASSERT_TRUE(samples.ok()) << samples.status().ToString();
    }
  });
  ASSERT_TRUE(service->Evict("q").ok());
  sampler_thread.join();
  EXPECT_EQ(service->SessionStats(sid).value().tuples_delivered, 250u);
}

// ---------------------------------------------------------------------------
// Streaming delivery

TEST(SampleStreamTest, StreamMatchesDirectCallsAndTerminates) {
  auto service_a = MakeService(409);
  auto service_b = MakeService(409);
  auto joins = MakeJoins(318);
  ASSERT_TRUE(service_a->Prepare("q", joins).ok());
  ASSERT_TRUE(service_b->Prepare("q", joins).ok());
  uint64_t sid_a = service_a->OpenSession("q").value();
  uint64_t sid_b = service_b->OpenSession("q").value();

  const size_t total = 500;
  SampleStream::Options stream_opts;
  stream_opts.chunk_size = 64;
  auto stream = service_a->OpenStream(sid_a, total, stream_opts).value();
  std::vector<std::string> streamed;
  size_t chunks = 0;
  for (;;) {
    auto chunk = stream->Next();
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (chunk->empty()) break;
    ++chunks;
    EXPECT_LE(chunk->size(), stream_opts.chunk_size);
    for (const auto& e : Encodings(*chunk)) streamed.push_back(e);
  }
  EXPECT_EQ(streamed.size(), total);
  EXPECT_EQ(chunks, (total + stream_opts.chunk_size - 1) /
                        stream_opts.chunk_size);
  // End-of-stream is sticky.
  EXPECT_TRUE(stream->Next().value().empty());

  // Same session twin, same chunking via direct calls: same sequence.
  std::vector<std::string> direct;
  size_t remaining = total;
  while (remaining > 0) {
    size_t count = std::min<size_t>(stream_opts.chunk_size, remaining);
    auto batch = service_b->Sample(sid_b, count);
    ASSERT_TRUE(batch.ok());
    remaining -= batch->size();
    for (const auto& e : Encodings(*batch)) direct.push_back(e);
  }
  EXPECT_EQ(streamed, direct);
}

TEST(SampleStreamTest, CancelStopsProduction) {
  auto service = MakeService(410);
  ASSERT_TRUE(service->Prepare("q", MakeJoins(319)).ok());
  uint64_t sid = service->OpenSession("q").value();
  auto stream = service->OpenStream(sid, 1 << 20).value();
  auto first = stream->Next();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->empty());
  stream->Cancel();
  // After cancellation Next() drains to the cancel signal; destruction
  // joins the producer without hanging.
  for (;;) {
    auto chunk = stream->Next();
    if (!chunk.ok()) {
      EXPECT_EQ(chunk.status().code(), StatusCode::kFailedPrecondition);
      break;
    }
    if (chunk->empty()) break;
  }
}

TEST(SampleStreamTest, StreamLimitBoundsProducerThreads) {
  ServiceOptions options;
  options.seed = 414;
  options.max_streams = 1;
  auto service = SamplingService::Create(options).value();
  ASSERT_TRUE(service->Prepare("q", MakeJoins(323)).ok());
  uint64_t sid = service->OpenSession("q").value();
  auto first = service->OpenStream(sid, 100).value();
  EXPECT_EQ(service->OpenStream(sid, 100).status().code(),
            StatusCode::kResourceExhausted);
  first.reset();  // releases the slot
  EXPECT_TRUE(service->OpenStream(sid, 100).ok());
}

TEST(SampleStreamTest, CancelInterruptsSaturatedAdmissionWait) {
  // With the only admission slot held externally, the stream's producer
  // parks in the FIFO queue; Cancel + destruction must return promptly
  // (abandoning the queue place) instead of waiting out the saturation.
  auto service = MakeService(415, /*max_inflight=*/1);
  ASSERT_TRUE(service->Prepare("q", MakeJoins(324)).ok());
  uint64_t sid = service->OpenSession("q").value();
  auto held = service->admission().TryAdmit();
  ASSERT_TRUE(held.ok());
  {
    auto stream = service->OpenStream(sid, 1 << 20).value();
    stream->Cancel();
  }  // destructor joins the producer; completing at all is the assertion
  EXPECT_EQ(service->admission().in_flight(), 1u);  // only the held permit
  held->Release();
  EXPECT_TRUE(service->Sample(sid, 10).ok());
}

TEST(AdmissionControllerTest, CancelledWaiterAbandonsItsQueuePlace) {
  AdmissionController admission({/*max_inflight=*/1});
  auto held = admission.TryAdmit();
  ASSERT_TRUE(held.ok());
  std::atomic<bool> cancel{false};
  std::thread waiter([&] {
    auto permit = admission.Admit(&cancel);
    EXPECT_EQ(permit.status().code(), StatusCode::kResourceExhausted);
  });
  while (admission.snapshot().waited == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cancel.store(true);
  admission.CancelWake();
  waiter.join();
  // The abandoned ticket must not wedge the queue for later callers.
  held->Release();
  EXPECT_TRUE(admission.TryAdmit().ok());
}

TEST(SampleStreamTest, UnknownSessionAndBadOptionsFail) {
  auto service = MakeService(411);
  ASSERT_TRUE(service->Prepare("q", MakeJoins(320)).ok());
  uint64_t sid = service->OpenSession("q").value();
  EXPECT_FALSE(service->OpenStream(999, 100).ok());
  SampleStream::Options zero_chunk;
  zero_chunk.chunk_size = 0;
  EXPECT_FALSE(service->OpenStream(sid, 100, zero_chunk).ok());
}

// ---------------------------------------------------------------------------
// Stats identity

TEST(ServiceStatsTest, SessionStatsCarryThePlanId) {
  auto service = MakeService(412);
  ASSERT_TRUE(service->Prepare("a", MakeJoins(321)).ok());
  ASSERT_TRUE(service->Prepare("b", MakeJoins(322)).ok());
  uint64_t sa = service->OpenSession("a").value();
  uint64_t sb = service->OpenSession("b").value();
  ASSERT_TRUE(service->Sample(sa, 10).ok());
  ASSERT_TRUE(service->Sample(sb, 10).ok());
  auto stats_a = service->SessionStats(sa).value();
  auto stats_b = service->SessionStats(sb).value();
  EXPECT_NE(stats_a.plan_id, stats_b.plan_id);
  EXPECT_EQ(stats_a.sampler.plan_id, stats_a.plan_id);
  EXPECT_EQ(stats_b.sampler.plan_id, stats_b.plan_id);

  // Same query: merging across sessions is legitimate aggregation.
  auto stats_a2 =
      service->SessionStats(service->OpenSession("a").value()).value();
  EXPECT_TRUE(stats_a.sampler.MergeFrom(stats_a2.sampler).ok());
  // Different queries: a checked error, not silent corruption.
  EXPECT_EQ(stats_a.sampler.MergeFrom(stats_b.sampler).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace suj
