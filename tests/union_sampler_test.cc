// Tests for core/union_sampler: uniformity of Algorithm 1 (both modes),
// the Bernoulli baseline, disjoint-union sampling, and the broken naive
// baseline's bias.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/exact_overlap.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "join/olken_sampler.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

enum class JoinSamplerKind { kExactWeight, kOlken };

std::vector<std::unique_ptr<JoinSampler>> MakeJoinSamplers(
    const std::vector<JoinSpecPtr>& joins, CompositeIndexCache* cache,
    JoinSamplerKind kind) {
  std::vector<std::unique_ptr<JoinSampler>> out;
  for (const auto& join : joins) {
    if (kind == JoinSamplerKind::kExactWeight) {
      out.push_back(ExactWeightSampler::Create(join, cache).value());
    } else {
      out.push_back(OlkenJoinSampler::Create(join, cache).value());
    }
  }
  return out;
}

struct Fixture {
  std::vector<JoinSpecPtr> joins;
  std::unique_ptr<ExactOverlapCalculator> exact;
  UnionEstimates estimates;
};

Fixture MakeSetup(const SyntheticChainOptions& options) {
  Fixture s;
  s.joins = MakeOverlappingChains(options).value();
  s.exact = ExactOverlapCalculator::Create(s.joins).value();
  s.estimates = ComputeUnionEstimates(s.exact.get()).value();
  return s;
}

// Chi-square uniformity over the exact union universe.
void ExpectUniformOverUnion(const std::vector<Tuple>& samples,
                            const ExactOverlapCalculator& exact,
                            double slack = 1.0) {
  auto counts = testing::CountByValue(samples);
  for (const auto& [key, c] : counts) {
    ASSERT_TRUE(exact.membership().count(key))
        << "sampled tuple outside the union";
  }
  double chi2 = testing::ChiSquareUniform(counts, exact.UnionSize(),
                                          samples.size());
  EXPECT_LT(chi2, slack * testing::ChiSquareThreshold(exact.UnionSize() - 1));
}

TEST(UnionSamplerTest, OracleModeUniformWithExactParameters) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 22;
  options.seed = 100;
  Fixture s = MakeSetup(options);
  CompositeIndexCache cache;
  auto probers = BuildProbers(s.joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(
      s.joins,
      MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight),
      s.estimates, probers, opts);
  ASSERT_TRUE(sampler.ok());
  Rng rng(101);
  size_t n = 40 * s.exact->UnionSize();
  auto samples = (*sampler)->Sample(n, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  ExpectUniformOverUnion(*samples, *s.exact);
  EXPECT_EQ((*sampler)->stats().accepted, n);
}

TEST(UnionSamplerTest, OracleModeUniformWithOlkenSamplers) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 20;
  options.seed = 102;
  Fixture s = MakeSetup(options);
  CompositeIndexCache cache;
  auto probers = BuildProbers(s.joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(
      s.joins, MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kOlken),
      s.estimates, probers, opts);
  ASSERT_TRUE(sampler.ok());
  Rng rng(103);
  size_t n = 40 * s.exact->UnionSize();
  auto samples = (*sampler)->Sample(n, rng);
  ASSERT_TRUE(samples.ok());
  ExpectUniformOverUnion(*samples, *s.exact);
}

TEST(UnionSamplerTest, RevisionModeApproachesUniformity) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 20;
  options.seed = 104;
  Fixture s = MakeSetup(options);
  CompositeIndexCache cache;
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  auto sampler = UnionSampler::Create(
      s.joins,
      MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight),
      s.estimates, {}, opts);
  ASSERT_TRUE(sampler.ok());
  Rng rng(105);
  size_t n = 60 * s.exact->UnionSize();
  auto samples = (*sampler)->Sample(n, rng);
  ASSERT_TRUE(samples.ok());
  // The revision protocol learns the cover online; until every overlap
  // value has been claimed by its first join the distribution is slightly
  // off, so allow a wider chi-square band (3x) than the exact modes.
  ExpectUniformOverUnion(*samples, *s.exact, 3.0);
  // Revisions must actually have occurred on an overlapping workload.
  EXPECT_GT((*sampler)->stats().revisions, 0u);
}

TEST(UnionSamplerTest, BernoulliUnionTrickUniform) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 20;
  options.seed = 106;
  Fixture s = MakeSetup(options);
  CompositeIndexCache cache;
  auto probers = BuildProbers(s.joins).value();
  auto sampler = BernoulliUnionSampler::Create(
      s.joins,
      MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight),
      s.estimates, probers);
  ASSERT_TRUE(sampler.ok());
  Rng rng(107);
  size_t n = 40 * s.exact->UnionSize();
  auto samples = (*sampler)->Sample(n, rng);
  ASSERT_TRUE(samples.ok());
  ExpectUniformOverUnion(*samples, *s.exact);
  // The union trick re-samples overlap tuples from later joins and rejects
  // them, so rejections are expected on overlapping joins.
  EXPECT_GT((*sampler)->stats().rejected_cover, 0u);
}

TEST(UnionSamplerTest, IdenticalJoinsStillUniform) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 18;
  options.mode = workloads::OverlapMode::kIdentical;
  options.seed = 108;
  Fixture s = MakeSetup(options);
  CompositeIndexCache cache;
  auto probers = BuildProbers(s.joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(
      s.joins,
      MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight),
      s.estimates, probers, opts);
  ASSERT_TRUE(sampler.ok());
  Rng rng(109);
  size_t n = 40 * s.exact->UnionSize();
  auto samples = (*sampler)->Sample(n, rng);
  ASSERT_TRUE(samples.ok());
  ExpectUniformOverUnion(*samples, *s.exact);
}

TEST(UnionSamplerTest, DisjointJoinsNeverReject) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 18;
  options.mode = workloads::OverlapMode::kDisjoint;
  options.seed = 110;
  Fixture s = MakeSetup(options);
  CompositeIndexCache cache;
  auto probers = BuildProbers(s.joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(
      s.joins,
      MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight),
      s.estimates, probers, opts);
  ASSERT_TRUE(sampler.ok());
  Rng rng(111);
  size_t n = 30 * s.exact->UnionSize();
  auto samples = (*sampler)->Sample(n, rng);
  ASSERT_TRUE(samples.ok());
  ExpectUniformOverUnion(*samples, *s.exact);
  EXPECT_EQ((*sampler)->stats().rejected_cover, 0u);
}

TEST(UnionSamplerTest, DisjointUnionSamplerWeightsBySize) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 20;
  options.mode = workloads::OverlapMode::kDisjoint;
  options.seed = 112;
  Fixture s = MakeSetup(options);
  CompositeIndexCache cache;
  auto sampler = DisjointUnionSampler::Create(
      s.joins,
      MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight),
      s.estimates.join_sizes);
  ASSERT_TRUE(sampler.ok());
  Rng rng(113);
  size_t total =
      static_cast<size_t>(s.estimates.join_sizes[0] +
                          s.estimates.join_sizes[1]);
  auto samples = (*sampler)->Sample(30 * total, rng);
  ASSERT_TRUE(samples.ok());
  // Disjoint union of disjoint joins == set union: uniform over it.
  ExpectUniformOverUnion(*samples, *s.exact);
}

TEST(UnionSamplerTest, NaiveUnionOfSamplesIsBiased) {
  // Example 2: overlap tuples are UNDER-represented relative to a uniform
  // union sample (they are deduplicated after non-selective sampling).
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 24;
  options.keep_probability = 0.8;
  options.seed = 114;
  Fixture s = MakeSetup(options);
  double overlap = s.exact->EstimateOverlap(0b11).value();
  ASSERT_GT(overlap, 4.0) << "need overlapping joins to show bias";
  CompositeIndexCache cache;
  auto samplers =
      MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight);
  Rng rng(115);
  // Heavy per-join sampling: every join tuple appears with high
  // probability, so the naive "union" approaches the full union and each
  // overlap value appears once -- but so does each non-overlap value,
  // even though non-overlap values were sampled half as often. Bias shows
  // in repeated trials as the overlap values' inclusion probability
  // differing from non-overlap ones at LOW sampling rates.
  std::map<std::string, size_t> inclusion;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    auto naive = NaiveUnionOfSamples(s.joins, samplers, 3, rng);
    ASSERT_TRUE(naive.ok());
    for (const auto& tuple : *naive) ++inclusion[tuple.Encode()];
  }
  // Average inclusion rate of overlap vs exclusive tuples.
  double overlap_rate = 0, exclusive_rate = 0;
  size_t overlap_count = 0, exclusive_count = 0;
  for (const auto& [enc, mask] : s.exact->membership()) {
    auto it = inclusion.find(enc);
    double rate =
        it == inclusion.end() ? 0.0 : static_cast<double>(it->second);
    if (mask == 0b11) {
      overlap_rate += rate;
      ++overlap_count;
    } else {
      exclusive_rate += rate;
      ++exclusive_count;
    }
  }
  overlap_rate /= static_cast<double>(overlap_count);
  exclusive_rate /= static_cast<double>(exclusive_count);
  // Overlap tuples can be drawn from both joins, so naive union includes
  // them significantly more often per trial: the distribution is biased.
  EXPECT_GT(overlap_rate, 1.3 * exclusive_rate);
}

TEST(UnionSamplerTest, SingleJoinUnion) {
  SyntheticChainOptions options;
  options.num_joins = 1;
  options.master_rows = 20;
  options.seed = 116;
  Fixture s = MakeSetup(options);
  CompositeIndexCache cache;
  auto probers = BuildProbers(s.joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(
      s.joins,
      MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight),
      s.estimates, probers, opts);
  ASSERT_TRUE(sampler.ok());
  Rng rng(117);
  auto samples = (*sampler)->Sample(500, rng);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->size(), 500u);
  EXPECT_EQ((*sampler)->stats().rejected_cover, 0u);
}

TEST(UnionSamplerTest, CreateValidation) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 15;
  Fixture s = MakeSetup(options);
  CompositeIndexCache cache;
  // Mismatched sampler count.
  std::vector<std::unique_ptr<JoinSampler>> one;
  one.push_back(ExactWeightSampler::Create(s.joins[0], &cache).value());
  EXPECT_FALSE(UnionSampler::Create(s.joins, std::move(one), s.estimates)
                   .ok());
  // Oracle mode without probers.
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  EXPECT_FALSE(
      UnionSampler::Create(
          s.joins,
          MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight),
          s.estimates, {}, opts)
          .ok());
  // Zero covers.
  UnionEstimates zero = s.estimates;
  zero.cover_sizes.assign(2, 0.0);
  EXPECT_FALSE(
      UnionSampler::Create(
          s.joins,
          MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight),
          zero)
          .ok());
}

TEST(UnionSamplerTest, EmptyMemberJoinIsNeverSelected) {
  // One join of the union is empty; with exact parameters its cover is 0,
  // so sampling proceeds over the remaining joins only.
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 18;
  options.seed = 120;
  Fixture s = MakeSetup(options);
  // Same output schema as the chains (A0..A3) but an empty result: the
  // middle relation's key never matches.
  auto empty_r =
      workloads::MakeRelation("er", {"A0", "A1"}, {{1, 2}}).value();
  auto empty_s =
      workloads::MakeRelation("es", {"A1", "A2"}, {{99, 3}}).value();
  auto empty_t =
      workloads::MakeRelation("et", {"A2", "A3"}, {{3, 4}}).value();
  auto empty_join =
      JoinSpec::Create("empty", {empty_r, empty_s, empty_t}).value();
  std::vector<JoinSpecPtr> joins = s.joins;
  joins.push_back(empty_join);

  auto exact = ExactOverlapCalculator::Create(joins).value();
  auto estimates = ComputeUnionEstimates(exact.get()).value();
  EXPECT_DOUBLE_EQ(estimates.cover_sizes[2], 0.0);

  CompositeIndexCache cache;
  auto probers = BuildProbers(joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(
      joins, MakeJoinSamplers(joins, &cache, JoinSamplerKind::kExactWeight),
      estimates, probers, opts);
  ASSERT_TRUE(sampler.ok());
  Rng rng(121);
  auto samples = (*sampler)->Sample(500, rng);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->size(), 500u);
}

TEST(UnionSamplerTest, AbandonsJoinWithOverstatedCover) {
  // Join 1 is a strict subset of join 0 (identical relations, so its true
  // cover is empty), but we hand the sampler estimates claiming join 1
  // owns half the union. The round budget must trip, the join must be
  // abandoned, and sampling must still complete.
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 18;
  options.mode = workloads::OverlapMode::kIdentical;
  options.seed = 122;
  Fixture s = MakeSetup(options);
  UnionEstimates lying = s.estimates;
  lying.cover_sizes[1] = lying.cover_sizes[0] / 2;  // false claim

  CompositeIndexCache cache;
  auto probers = BuildProbers(s.joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  opts.max_draws_per_round = 2000;
  auto sampler = UnionSampler::Create(
      s.joins,
      MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight),
      lying, probers, opts);
  ASSERT_TRUE(sampler.ok());
  Rng rng(123);
  auto samples = (*sampler)->Sample(800, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  EXPECT_EQ(samples->size(), 800u);
  EXPECT_GE((*sampler)->stats().abandoned_rounds, 1u);
}

TEST(UnionSamplerTest, StatsAccounting) {
  SyntheticChainOptions options;
  options.num_joins = 2;
  options.master_rows = 20;
  options.seed = 118;
  Fixture s = MakeSetup(options);
  CompositeIndexCache cache;
  auto probers = BuildProbers(s.joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(
      s.joins,
      MakeJoinSamplers(s.joins, &cache, JoinSamplerKind::kExactWeight),
      s.estimates, probers, opts);
  ASSERT_TRUE(sampler.ok());
  Rng rng(119);
  auto samples = (*sampler)->Sample(200, rng);
  ASSERT_TRUE(samples.ok());
  const auto& stats = (*sampler)->stats();
  EXPECT_EQ(stats.accepted, 200u);
  EXPECT_EQ(stats.rounds, 200u);
  EXPECT_GE(stats.join_draws, stats.accepted);
  EXPECT_EQ(stats.join_draws,
            stats.accepted + stats.rejected_cover +
                ((*sampler)->AggregatedJoinStats().attempts -
                 (*sampler)->AggregatedJoinStats().successes));
  (*sampler)->ResetStats();
  EXPECT_EQ((*sampler)->stats().accepted, 0u);
}

// Regression: MergeFrom used to silently pool stats of different queries;
// now the plan id makes that a checked error.
TEST(UnionSampleStatsTest, MergeFromChecksPlanIdentity) {
  UnionSampleStats a;
  a.plan_id = 1;
  a.accepted = 10;
  UnionSampleStats b;
  b.plan_id = 2;
  b.accepted = 5;
  auto mismatch = a.MergeFrom(b);
  EXPECT_EQ(mismatch.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(a.accepted, 10u);  // the refused merge changed nothing

  // Same plan: fine.
  UnionSampleStats a2;
  a2.plan_id = 1;
  a2.accepted = 7;
  ASSERT_TRUE(a.MergeFrom(a2).ok());
  EXPECT_EQ(a.accepted, 17u);

  // Unbound (0) merges with anything and adopts the non-zero id.
  UnionSampleStats unbound;
  unbound.accepted = 3;
  ASSERT_TRUE(a.MergeFrom(unbound).ok());
  EXPECT_EQ(a.accepted, 20u);
  UnionSampleStats fresh;
  ASSERT_TRUE(fresh.MergeFrom(a).ok());
  EXPECT_EQ(fresh.plan_id, 1u);
}

TEST(UnionSamplerTest, ResumableAcrossCalls) {
  // Two Sample(n/2) calls on one instance produce the same sequence as
  // one Sample(n) on an identically constructed twin (oracle mode): the
  // sampler continues, never restarts.
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 20;
  options.seed = 130;
  Fixture s = MakeSetup(options);
  CompositeIndexCache cache;
  auto probers = BuildProbers(s.joins).value();
  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kMembershipOracle;
  auto make = [&] {
    return UnionSampler::Create(
               s.joins,
               MakeJoinSamplers(s.joins, &cache,
                                JoinSamplerKind::kExactWeight),
               s.estimates, probers, opts)
        .value();
  };
  auto split = make();
  auto whole = make();
  Rng rng_split(131);
  Rng rng_whole(131);
  std::vector<std::string> split_keys;
  for (int c = 0; c < 2; ++c) {
    auto batch = split->Sample(60, rng_split);
    ASSERT_TRUE(batch.ok());
    for (const auto& t : *batch) split_keys.push_back(t.Encode());
  }
  auto full = whole->Sample(120, rng_whole);
  ASSERT_TRUE(full.ok());
  std::vector<std::string> whole_keys;
  for (const auto& t : *full) whole_keys.push_back(t.Encode());
  EXPECT_EQ(split_keys, whole_keys);
}

}  // namespace
}  // namespace suj
