// Tests for common/alias_table.h: Walker/Vose construction validity,
// zero-weight unreachability (the structural guarantee the CDF clamp bug
// lacked), frequency conformance of O(1) draws, FlatAliasGroups group
// addressing, and WeightedSelector's zero-and-rebuild semantics.

#include "common/alias_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "test_util.h"

namespace suj {
namespace {

TEST(AliasTableTest, BuildRejectsInvalidWeights) {
  EXPECT_FALSE(AliasTable::Build({}).ok());
  EXPECT_FALSE(AliasTable::Build({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasTable::Build({1.0, -0.5}).ok());
  EXPECT_FALSE(
      AliasTable::Build({1.0, std::numeric_limits<double>::infinity()}).ok());
  EXPECT_FALSE(
      AliasTable::Build({1.0, std::numeric_limits<double>::quiet_NaN()}).ok());
}

TEST(AliasTableTest, SingleEntryAlwaysDrawn) {
  auto table = AliasTable::Build({3.5});
  ASSERT_TRUE(table.ok());
  Rng rng = testing::FixedSeedRng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightEntriesAreUnreachable) {
  // Zero-weight entries interleaved and TRAILING: the trailing case is
  // the regression shape — a CDF search clamped to the last index could
  // return index 4 even though its weight is zero. The alias form makes
  // that structurally impossible.
  auto table = AliasTable::Build({2.0, 0.0, 1.0, 0.0, 0.0});
  ASSERT_TRUE(table.ok());
  Rng rng = testing::FixedSeedRng(2);
  for (int i = 0; i < 20000; ++i) {
    size_t j = table->Sample(rng);
    EXPECT_TRUE(j == 0 || j == 2) << "drew zero-weight index " << j;
  }
}

TEST(AliasTableTest, DrawFrequenciesMatchWeights) {
  // Chi-square of observed draw counts against the build weights. Fixed
  // seed keeps this deterministic; the threshold (mean + 6 sigma) only
  // trips on real bias.
  const std::vector<double> weights = {1.0, 4.0, 2.0, 0.0, 3.0};
  auto table = AliasTable::Build(weights);
  ASSERT_TRUE(table.ok());
  const size_t kDraws = 100000;
  std::vector<size_t> counts(weights.size(), 0);
  Rng rng = testing::FixedSeedRng(3);
  for (size_t i = 0; i < kDraws; ++i) ++counts[table->Sample(rng)];
  EXPECT_EQ(counts[3], 0u);
  double total = 10.0;
  double chi2 = 0.0;
  size_t df = 0;
  for (size_t j = 0; j < weights.size(); ++j) {
    if (weights[j] == 0.0) continue;
    double expected = static_cast<double>(kDraws) * weights[j] / total;
    double d = static_cast<double>(counts[j]) - expected;
    chi2 += d * d / expected;
    ++df;
  }
  EXPECT_LT(chi2, testing::ChiSquareThreshold(df - 1));
}

TEST(FlatAliasGroupsTest, GroupsAreIndependentlyAddressable) {
  FlatAliasGroups groups;
  const std::vector<double> g0 = {1.0, 1.0};
  const std::vector<double> g1 = {0.0, 5.0, 1.0};
  auto b0 = groups.AppendGroup(g0.data(), g0.size());
  auto b1 = groups.AppendGroup(g1.data(), g1.size());
  ASSERT_TRUE(b0.ok());
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(*b0, 0u);
  EXPECT_EQ(*b1, 2u);
  EXPECT_EQ(groups.num_elements(), 5u);

  Rng rng = testing::FixedSeedRng(4);
  std::vector<size_t> counts1(3, 0);
  for (int i = 0; i < 30000; ++i) {
    size_t local0 = groups.SampleGroup(*b0, g0.size(), rng);
    EXPECT_LT(local0, 2u);
    size_t local1 = groups.SampleGroup(*b1, g1.size(), rng);
    ASSERT_LT(local1, 3u);
    ++counts1[local1];
  }
  // Group 1's zero-weight head is unreachable and 5:1 dominates.
  EXPECT_EQ(counts1[0], 0u);
  EXPECT_GT(counts1[1], counts1[2]);
}

TEST(FlatAliasGroupsTest, RejectsInvalidGroups) {
  FlatAliasGroups groups;
  const double all_zero[] = {0.0, 0.0};
  const double negative[] = {1.0, -1.0};
  EXPECT_FALSE(groups.AppendGroup(all_zero, 2).ok());
  EXPECT_FALSE(groups.AppendGroup(negative, 2).ok());
  // Failed appends must not corrupt the flat arrays.
  const double good[] = {1.0};
  auto b = groups.AppendGroup(good, 1);
  ASSERT_TRUE(b.ok());
  Rng rng = testing::FixedSeedRng(5);
  EXPECT_EQ(groups.SampleGroup(*b, 1, rng), 0u);
}

TEST(WeightedSelectorTest, ZeroMakesIndexUnreachable) {
  auto selector = WeightedSelector::Build({1.0, 1.0, 1.0});
  ASSERT_TRUE(selector.ok());
  ASSERT_TRUE(selector->Zero(1).ok());
  EXPECT_EQ(selector->weights()[1], 0.0);
  Rng rng = testing::FixedSeedRng(6);
  for (int i = 0; i < 20000; ++i) {
    size_t j = selector->Sample(rng);
    EXPECT_TRUE(j == 0 || j == 2) << "drew zeroed index " << j;
  }
}

TEST(WeightedSelectorTest, ZeroingLastPositiveWeightFails) {
  // The caller maps this failure to its "every join's cover was
  // abandoned" Internal error; the old per-round remaining-weight scan
  // detected the same condition one round later.
  auto selector = WeightedSelector::Build({2.0, 3.0});
  ASSERT_TRUE(selector.ok());
  ASSERT_TRUE(selector->Zero(0).ok());
  EXPECT_FALSE(selector->Zero(1).ok());
}

TEST(WeightedSelectorTest, BuildFailsLikeAliasTable) {
  EXPECT_FALSE(WeightedSelector::Build({}).ok());
  EXPECT_FALSE(WeightedSelector::Build({0.0}).ok());
  EXPECT_FALSE(WeightedSelector::Build({-1.0, 2.0}).ok());
}

TEST(AliasTableTest, BuildConsumesNoRandomness) {
  // Determinism contract: alias construction is RNG-free, so inserting a
  // build between draws must not perturb the stream.
  Rng a = testing::FixedSeedRng(7);
  Rng b = testing::FixedSeedRng(7);
  (void)a.Next();
  (void)b.Next();
  auto table = AliasTable::Build({1.0, 2.0, 3.0});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace suj
