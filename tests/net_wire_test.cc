// Tests for the wire codec (common/wire.h, net/protocol.h): primitive
// little-endian round trips, bounds-checked decoding (truncation and
// trailing bytes are errors, never UB), StatusCode mapping stability,
// message struct round trips, and canonical tuple decode.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/wire.h"
#include "net/protocol.h"
#include "storage/tuple.h"

namespace suj {
namespace {

using net::kProtocolVersion;

// ---------------------------------------------------------------------------
// WireWriter / WireReader primitives

TEST(WireTest, PrimitiveRoundTrip) {
  std::string buf;
  WireWriter w(&buf);
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutDouble(3.14159);
  w.PutBytes("hello");

  WireReader r(buf);
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.GetDouble().value(), 3.14159);
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_TRUE(r.ExpectDone().ok());
}

TEST(WireTest, LittleEndianLayoutIsPinned) {
  // The wire format is a contract: u32 1 must be 01 00 00 00 regardless
  // of host endianness.
  std::string buf;
  WireWriter w(&buf);
  w.PutU32(1);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 1);
  EXPECT_EQ(static_cast<unsigned char>(buf[1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(buf[2]), 0);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0);
}

TEST(WireTest, TruncationIsAnErrorNotUB) {
  std::string buf;
  WireWriter w(&buf);
  w.PutU64(42);
  for (size_t cut = 0; cut < 8; ++cut) {
    WireReader r(std::string_view(buf).substr(0, cut));
    EXPECT_FALSE(r.GetU64().ok()) << "cut=" << cut;
  }
}

TEST(WireTest, StringLengthBeyondPayloadFails) {
  std::string buf;
  WireWriter w(&buf);
  w.PutU32(1000);  // claims 1000 bytes...
  buf += "abc";    // ...delivers 3
  WireReader r(buf);
  EXPECT_FALSE(r.GetString().ok());
}

TEST(WireTest, TrailingBytesRejected) {
  std::string buf;
  WireWriter w(&buf);
  w.PutU8(1);
  w.PutU8(2);
  WireReader r(buf);
  ASSERT_TRUE(r.GetU8().ok());
  EXPECT_FALSE(r.ExpectDone().ok());
}

TEST(WireTest, StatusCodeMappingRoundTripsEveryCode) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
      StatusCode::kInternal,     StatusCode::kResourceExhausted,
      StatusCode::kUnavailable,  StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : codes) {
    EXPECT_EQ(StatusCodeFromWire(StatusCodeToWire(code)), code);
  }
  // Unknown wire bytes decode to Internal, never to OK.
  EXPECT_EQ(StatusCodeFromWire(0xFF), StatusCode::kInternal);
  // Deadline byte is pinned: v3 peers rely on 9 meaning "slow, not
  // broken".
  EXPECT_EQ(StatusCodeToWire(StatusCode::kDeadlineExceeded), 9);
}

TEST(WireTest, DecodeTupleRoundTripsCanonicalEncoding) {
  Tuple tuple;
  tuple.Append(Value::Int64(-7));
  tuple.Append(Value::Double(2.5));
  tuple.Append(Value::String("abc"));
  auto decoded = DecodeTuple(tuple.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), tuple);
  // And the decode is itself canonical: re-encoding gives the same bytes.
  EXPECT_EQ(decoded.value().Encode(), tuple.Encode());
}

TEST(WireTest, DecodeTupleRejectsGarbage) {
  EXPECT_FALSE(DecodeTuple("\xFF").ok());           // unknown type tag
  EXPECT_FALSE(DecodeTuple(std::string("\x00", 1)).ok());  // truncated i64
}

// ---------------------------------------------------------------------------
// Message structs

TEST(ProtocolTest, HelloRoundTrip) {
  net::HelloRequest msg;
  msg.version = kProtocolVersion;
  msg.tenant = "tenant-a";
  auto decoded = net::HelloRequest::Decode(msg.Encode()).value();
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.tenant, "tenant-a");
}

TEST(ProtocolTest, OpenSessionRoundTripAndValidation) {
  net::OpenSessionRequest msg;
  msg.query = "q";
  msg.mode = 2;
  msg.worker_threads = 4;
  msg.batch_size = 32;
  msg.max_revision_surplus = 128;
  auto decoded = net::OpenSessionRequest::Decode(msg.Encode()).value();
  EXPECT_EQ(decoded.query, "q");
  EXPECT_EQ(decoded.mode, 2);
  auto options = decoded.ToSessionOptions().value();
  EXPECT_EQ(options.mode, SessionOptions::Mode::kRevision);
  EXPECT_EQ(options.worker_threads, 4u);
  EXPECT_EQ(options.batch_size, 32u);
  EXPECT_EQ(options.max_revision_surplus, 128u);

  decoded.mode = 9;
  EXPECT_FALSE(decoded.ToSessionOptions().ok());
}

TEST(ProtocolTest, StatusPayloadCarriesErrors) {
  auto payload = net::StatusPayload::FromStatus(
      Status::ResourceExhausted("over quota"));
  auto decoded = net::StatusPayload::Decode(payload.Encode()).value();
  Status status = decoded.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.message(), "over quota");

  auto ok = net::StatusPayload::FromStatus(Status::OK());
  EXPECT_TRUE(net::StatusPayload::Decode(ok.Encode()).value().ToStatus().ok());
}

TEST(ProtocolTest, TupleChunkRoundTrip) {
  net::TupleChunk chunk;
  Tuple t1;
  t1.Append(Value::Int64(1));
  Tuple t2;
  t2.Append(Value::String("xyz"));
  chunk.encoded_tuples = {t1.Encode(), t2.Encode()};
  auto decoded = net::TupleChunk::Decode(chunk.Encode()).value();
  ASSERT_EQ(decoded.encoded_tuples.size(), 2u);
  EXPECT_EQ(decoded.encoded_tuples[0], t1.Encode());
  EXPECT_EQ(decoded.encoded_tuples[1], t2.Encode());
}

TEST(ProtocolTest, TupleChunkRejectsAbsurdCount) {
  // A hostile count must fail cleanly before any large allocation.
  std::string body;
  WireWriter w(&body);
  w.PutU32(std::numeric_limits<uint32_t>::max());
  EXPECT_FALSE(net::TupleChunk::Decode(body).ok());
}

TEST(ProtocolTest, SessionStatsRoundTripCarriesSurplusInstrumentation) {
  net::SessionStatsResponse msg;
  msg.session_id = 3;
  msg.plan_id = 9;
  msg.query = "q";
  msg.requests = 5;
  msg.tuples_delivered = 500;
  msg.revision_buffered = 17;
  msg.revision_surplus_high_water = 63;
  msg.sampler_accepted = 520;
  msg.sampler_join_draws = 900;
  auto decoded = net::SessionStatsResponse::Decode(msg.Encode()).value();
  EXPECT_EQ(decoded.revision_buffered, 17u);
  EXPECT_EQ(decoded.revision_surplus_high_water, 63u);
  EXPECT_EQ(decoded.sampler_accepted, 520u);
  EXPECT_EQ(decoded.sampler_join_draws, 900u);
}

TEST(ProtocolTest, ServerStatsRoundTrip) {
  net::ServerStatsResponse msg;
  msg.admitted = 1;
  msg.queue_overflows = 2;
  msg.plans_evicted_for_budget = 3;
  msg.sessions_reaped = 4;
  msg.quota_shed_total = 5;
  msg.connections_shed = 6;
  msg.version_rejects = 7;
  msg.quota_shed_tenant = 8;
  msg.quota_shed_session = 9;
  msg.sessions_quota_rejected = 10;
  msg.plans_evicted = 11;
  msg.shard_draws = 12;
  msg.shard_walk_draws = 13;
  msg.shard_weight_refreshes = 14;
  msg.shard_unavailable_errors = 15;
  auto decoded = net::ServerStatsResponse::Decode(msg.Encode()).value();
  EXPECT_EQ(decoded.admitted, 1u);
  EXPECT_EQ(decoded.queue_overflows, 2u);
  EXPECT_EQ(decoded.plans_evicted_for_budget, 3u);
  EXPECT_EQ(decoded.sessions_reaped, 4u);
  EXPECT_EQ(decoded.quota_shed_total, 5u);
  EXPECT_EQ(decoded.connections_shed, 6u);
  EXPECT_EQ(decoded.version_rejects, 7u);
  EXPECT_EQ(decoded.quota_shed_tenant, 8u);
  EXPECT_EQ(decoded.quota_shed_session, 9u);
  EXPECT_EQ(decoded.sessions_quota_rejected, 10u);
  EXPECT_EQ(decoded.plans_evicted, 11u);
  EXPECT_EQ(decoded.shard_draws, 12u);
  EXPECT_EQ(decoded.shard_walk_draws, 13u);
  EXPECT_EQ(decoded.shard_weight_refreshes, 14u);
  EXPECT_EQ(decoded.shard_unavailable_errors, 15u);
}

TEST(ProtocolTest, PrepareCarriesShardShape) {
  net::PrepareRequest req;
  req.query = "q7";
  req.num_shards = 4;
  req.shard_scheme = 1;
  req.virtual_partitions = 128;
  auto req_decoded = net::PrepareRequest::Decode(req.Encode()).value();
  EXPECT_EQ(req_decoded.query, "q7");
  EXPECT_EQ(req_decoded.num_shards, 4u);
  EXPECT_EQ(req_decoded.shard_scheme, 1);
  EXPECT_EQ(req_decoded.virtual_partitions, 128u);

  net::PrepareResponse rsp;
  rsp.plan_id = 9;
  rsp.build_seconds = 0.5;
  rsp.approx_memory_bytes = 1024;
  rsp.num_shards = 4;
  auto rsp_decoded = net::PrepareResponse::Decode(rsp.Encode()).value();
  EXPECT_EQ(rsp_decoded.plan_id, 9u);
  EXPECT_EQ(rsp_decoded.num_shards, 4u);
}

TEST(ProtocolTest, ServerStatsWireLayoutIsPinned) {
  // The v3 stats body is a fixed sequence of 25 little-endian u64s in
  // declaration order; the five v2 shed-breakdown fields and the four
  // v3 shard counters sit at the tail. This pins the LAYOUT, not just a
  // round trip — a field reorder that still round-trips would break
  // deployed v3 peers.
  net::ServerStatsResponse msg;
  msg.admitted = 0x0101;
  msg.requests_served = 0x0202;
  msg.version_rejects = 0x0303;
  msg.quota_shed_tenant = 0x0404;
  msg.quota_shed_session = 0x0505;
  msg.sessions_quota_rejected = 0x0606;
  msg.plans_evicted = 0x0707;
  msg.shard_draws = 0x0808;
  msg.shard_walk_draws = 0x0909;
  msg.shard_weight_refreshes = 0x0A0A;
  msg.shard_unavailable_errors = 0x0B0B;
  const std::string body = msg.Encode();
  ASSERT_EQ(body.size(), 25u * 8u);
  auto u64_at = [&](size_t index) {
    uint64_t v = 0;
    for (size_t b = 0; b < 8; ++b) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(body[index * 8 + b]))
           << (8 * b);
    }
    return v;
  };
  EXPECT_EQ(u64_at(0), 0x0101u);   // admitted leads
  EXPECT_EQ(u64_at(15), 0x0202u);  // requests_served ends the v1 block
  EXPECT_EQ(u64_at(16), 0x0303u);  // version_rejects
  EXPECT_EQ(u64_at(17), 0x0404u);  // quota_shed_tenant
  EXPECT_EQ(u64_at(18), 0x0505u);  // quota_shed_session
  EXPECT_EQ(u64_at(19), 0x0606u);  // sessions_quota_rejected
  EXPECT_EQ(u64_at(20), 0x0707u);  // plans_evicted
  EXPECT_EQ(u64_at(21), 0x0808u);  // shard_draws opens the v3 block
  EXPECT_EQ(u64_at(22), 0x0909u);  // shard_walk_draws
  EXPECT_EQ(u64_at(23), 0x0A0Au);  // shard_weight_refreshes
  EXPECT_EQ(u64_at(24), 0x0B0Bu);  // shard_unavailable_errors
}

TEST(ProtocolTest, MetricsResponseRoundTrip) {
  net::MetricsResponse msg;
  msg.text = "# TYPE suj_net_requests_total counter\nsuj_net_requests_total 3\n";
  auto decoded = net::MetricsResponse::Decode(msg.Encode()).value();
  EXPECT_EQ(decoded.text, msg.text);
  EXPECT_FALSE(net::MetricsResponse::Decode(msg.Encode() + "x").ok());
}

TEST(ProtocolTest, DecodeRejectsTrailingBytes) {
  net::CloseSessionRequest msg;
  msg.session_id = 1;
  std::string body = msg.Encode() + "extra";
  EXPECT_FALSE(net::CloseSessionRequest::Decode(body).ok());
}

// ---------------------------------------------------------------------------
// Socket deadline discrimination. A peer that STALLS, a peer that
// CLOSES mid-frame, and a peer that closes cleanly between frames must
// surface as three different codes (kDeadlineExceeded /
// kInvalidArgument / kUnavailable) — callers react differently to each
// (retry elsewhere vs drop the conn vs reconnect), so the mapping is
// load-bearing wire behaviour, pinned here next to the codec.

// Loopback (client, server) pair. Connect lands in the kernel accept
// queue, so Accept() below returns without a helper thread.
void MakeLoopbackPair(TcpConn* client, TcpConn* server) {
  auto listener = TcpListener::Listen("127.0.0.1", 0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  auto conn = ConnectTcp("127.0.0.1", listener->port());
  ASSERT_TRUE(conn.ok()) << conn.status().message();
  auto accepted = listener->Accept();
  ASSERT_TRUE(accepted.ok()) << accepted.status().message();
  *client = std::move(*conn);
  *server = std::move(*accepted);
}

TEST(SocketDeadlineTest, StalledPeerIsDeadlineExceeded) {
  TcpConn client, server;
  ASSERT_NO_FATAL_FAILURE(MakeLoopbackPair(&client, &server));
  ASSERT_TRUE(client.SetIoDeadlines(/*recv_timeout_ms=*/50,
                                    /*send_timeout_ms=*/50)
                  .ok());
  // The server holds the connection open but never writes a byte.
  auto frame = net::ReadFrame(client);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SocketDeadlineTest, TruncatedFrameIsInvalidArgumentEvenWithDeadline) {
  TcpConn client, server;
  ASSERT_NO_FATAL_FAILURE(MakeLoopbackPair(&client, &server));
  ASSERT_TRUE(client.SetIoDeadlines(200, 200).ok());
  // Header promises a 10-byte payload; the peer delivers 3 and hangs
  // up. EOF mid-frame must NOT be reported as a timeout.
  std::string partial;
  WireWriter w(&partial);
  w.PutU32(10);
  partial.append("abc");
  ASSERT_TRUE(server.WriteFull(partial.data(), partial.size()).ok());
  server.Close();
  auto frame = net::ReadFrame(client);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(SocketDeadlineTest, CleanCloseBetweenFramesIsUnavailable) {
  TcpConn client, server;
  ASSERT_NO_FATAL_FAILURE(MakeLoopbackPair(&client, &server));
  ASSERT_TRUE(client.SetIoDeadlines(200, 200).ok());
  server.Close();
  auto frame = net::ReadFrame(client);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(SocketDeadlineTest, DisarmedDeadlineRestoresBlockingReads) {
  TcpConn client, server;
  ASSERT_NO_FATAL_FAILURE(MakeLoopbackPair(&client, &server));
  ASSERT_TRUE(client.SetIoDeadlines(50, 50).ok());
  ASSERT_TRUE(client.SetIoDeadlines(0, 0).ok());  // 0 = block forever
  ASSERT_TRUE(net::WriteFrame(server, net::MessageType::kStatus, "ok").ok());
  auto frame = net::ReadFrame(client);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->body, "ok");
}

}  // namespace
}  // namespace suj
