// Tests for core/union_size_model: cover sizes, Eq-1 union size, and
// consistency between the two union formulations with exact overlaps.

#include <gtest/gtest.h>

#include <set>

#include "core/exact_overlap.h"
#include "core/union_size_model.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::SyntheticChainOptions;

class UnionSizeModelSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionSizeModelSweep, ExactOverlapsGiveExactUnionAndCover) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 25;
  options.seed = GetParam();
  auto joins = MakeOverlappingChains(options).value();
  auto calc = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(calc.ok());
  auto estimates = ComputeUnionEstimates(calc->get());
  ASSERT_TRUE(estimates.ok());

  double exact_union = static_cast<double>((*calc)->UnionSize());
  EXPECT_NEAR(estimates->union_size_eq1, exact_union, 1e-6);
  EXPECT_NEAR(estimates->union_size_cover, exact_union, 1e-6);

  // Cover sizes: |J'_0| = |J_0|; |J'_i| = |J_i \ union of earlier|.
  EXPECT_NEAR(estimates->cover_sizes[0],
              static_cast<double>((*calc)->JoinSize(0)), 1e-6);
  std::set<std::string> earlier((*calc)->join_set(0).begin(),
                                (*calc)->join_set(0).end());
  for (int i = 1; i < 3; ++i) {
    double expected = 0;
    for (const auto& enc : (*calc)->join_set(i)) {
      if (!earlier.count(enc)) ++expected;
    }
    EXPECT_NEAR(estimates->cover_sizes[i], expected, 1e-6) << "cover " << i;
    earlier.insert((*calc)->join_set(i).begin(), (*calc)->join_set(i).end());
  }

  // Join-to-union ratios match definition.
  auto ratios = estimates->JoinToUnionRatios();
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(ratios[j], estimates->join_sizes[j] / exact_union, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionSizeModelSweep,
                         ::testing::Values(60, 61, 62, 63, 64));

TEST(UnionSizeModelTest, IdenticalJoins) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 20;
  options.mode = workloads::OverlapMode::kIdentical;
  auto joins = MakeOverlappingChains(options).value();
  auto calc = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(calc.ok());
  auto estimates = ComputeUnionEstimates(calc->get());
  ASSERT_TRUE(estimates.ok());
  // Only the first join has a non-empty cover.
  EXPECT_GT(estimates->cover_sizes[0], 0.0);
  EXPECT_NEAR(estimates->cover_sizes[1], 0.0, 1e-9);
  EXPECT_NEAR(estimates->cover_sizes[2], 0.0, 1e-9);
  EXPECT_NEAR(estimates->union_size_eq1, estimates->join_sizes[0], 1e-6);
}

TEST(UnionSizeModelTest, DisjointJoins) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 20;
  options.mode = workloads::OverlapMode::kDisjoint;
  auto joins = MakeOverlappingChains(options).value();
  auto calc = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(calc.ok());
  auto estimates = ComputeUnionEstimates(calc->get());
  ASSERT_TRUE(estimates.ok());
  double sum = 0;
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(estimates->cover_sizes[j], estimates->join_sizes[j], 1e-9);
    sum += estimates->join_sizes[j];
  }
  EXPECT_NEAR(estimates->union_size_eq1, sum, 1e-6);
}

TEST(UnionSizeModelTest, SingleJoin) {
  SyntheticChainOptions options;
  options.num_joins = 1;
  options.master_rows = 20;
  auto joins = MakeOverlappingChains(options).value();
  auto calc = ExactOverlapCalculator::Create(joins);
  ASSERT_TRUE(calc.ok());
  auto estimates = ComputeUnionEstimates(calc->get());
  ASSERT_TRUE(estimates.ok());
  EXPECT_NEAR(estimates->union_size_eq1, estimates->join_sizes[0], 1e-9);
  EXPECT_NEAR(estimates->cover_sizes[0], estimates->join_sizes[0], 1e-9);
}

TEST(UnionSizeModelTest, NullEstimatorRejected) {
  EXPECT_FALSE(ComputeUnionEstimates(nullptr).ok());
}

}  // namespace
}  // namespace suj
