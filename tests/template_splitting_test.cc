// Tests for core/template_selector and core/splitting: pairwise distances,
// Hamiltonian-path optimality, link classification (real / virtual / fake).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/splitting.h"
#include "core/template_selector.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeRelation;

RelationPtr Rel(const std::string& name,
                const std::vector<std::string>& attrs) {
  std::vector<std::vector<int64_t>> rows = {{0}};
  rows[0].assign(attrs.size(), 0);
  return MakeRelation(name, attrs, rows).value();
}

JoinSpecPtr ChainABCD() {
  // r1(a,b) - r2(b,c) - r3(c,d): a 4-attribute chain join.
  return JoinSpec::Create(
             "chain", {Rel("r1", {"a", "b"}), Rel("r2", {"b", "c"}),
                       Rel("r3", {"c", "d"})})
      .value();
}

TEST(TemplateSelectorTest, DistanceZeroWhenColocated) {
  auto join = ChainABCD();
  EXPECT_EQ(TemplateSelector::Distance(join, "a", "b").value(), 0);
  EXPECT_EQ(TemplateSelector::Distance(join, "b", "c").value(), 0);
  EXPECT_EQ(TemplateSelector::Distance(join, "b", "b").value(), 0);
}

TEST(TemplateSelectorTest, DistanceCountsJoinSteps) {
  auto join = ChainABCD();
  EXPECT_EQ(TemplateSelector::Distance(join, "a", "c").value(), 1);
  EXPECT_EQ(TemplateSelector::Distance(join, "a", "d").value(), 2);
}

TEST(TemplateSelectorTest, MissingAttributeFails) {
  auto join = ChainABCD();
  EXPECT_FALSE(TemplateSelector::Distance(join, "a", "zz").ok());
}

TEST(TemplateSelectorTest, PairScoreSumsOverJoins) {
  auto j1 = ChainABCD();
  // Second join: single wide relation, all distances 0.
  auto j2 =
      JoinSpec::Create("wide", {Rel("w", {"a", "b", "c", "d"})}).value();
  TemplateSelector::Options options;
  EXPECT_DOUBLE_EQ(
      TemplateSelector::PairScore({j1, j2}, "a", "d", options).value(), 2.0);
  options.zero_dist_weight = 0.5;
  // Dist 0 in j2 now contributes 0.5.
  EXPECT_DOUBLE_EQ(
      TemplateSelector::PairScore({j1, j2}, "a", "d", options).value(), 2.5);
}

TEST(TemplateSelectorTest, SelectsMinimumCostOrdering) {
  auto join = ChainABCD();
  auto tmpl = TemplateSelector::SelectTemplate({join});
  ASSERT_TRUE(tmpl.ok());
  // The natural chain order (or its reverse) has cost 0: every consecutive
  // pair is co-located.
  auto cost = TemplateSelector::TemplateCost({join}, *tmpl);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 0.0);
  // Verify optimality against all permutations (4 attributes -> 24).
  std::vector<std::string> perm = {"a", "b", "c", "d"};
  std::sort(perm.begin(), perm.end());
  double best = 1e18;
  do {
    best = std::min(best,
                    TemplateSelector::TemplateCost({join}, perm).value());
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_DOUBLE_EQ(*cost, best);
}

TEST(TemplateSelectorTest, BadTemplateCostsMore) {
  auto join = ChainABCD();
  // Example 7's observation: interleaving far-apart attributes is worse.
  double bad =
      TemplateSelector::TemplateCost({join}, {"a", "d", "b", "c"}).value();
  double good =
      TemplateSelector::TemplateCost({join}, {"a", "b", "c", "d"}).value();
  EXPECT_GT(bad, good);
}

TEST(TemplateSelectorTest, GreedyFallbackAboveExactLimit) {
  auto join = ChainABCD();
  TemplateSelector::Options options;
  options.exact_limit = 2;  // force the greedy path
  auto tmpl = TemplateSelector::SelectTemplate({join}, options);
  ASSERT_TRUE(tmpl.ok());
  EXPECT_EQ(tmpl->size(), 4u);
  // Greedy still finds a zero-cost path on a chain.
  EXPECT_DOUBLE_EQ(TemplateSelector::TemplateCost({join}, *tmpl).value(),
                   0.0);
}

TEST(SplitJoinTest, RealLinksOnNaturalOrder) {
  auto join = ChainABCD();
  auto chain = SplitJoinToChain(join, {"a", "b", "c", "d"});
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->links.size(), 3u);
  for (const auto& link : chain->links) {
    EXPECT_FALSE(link.is_virtual());
  }
  // (a,b) from r1, (b,c) from r2, (c,d) from r3: no fake joins.
  EXPECT_EQ(chain->links[0].source_relation, 0);
  EXPECT_EQ(chain->links[1].source_relation, 1);
  EXPECT_EQ(chain->links[2].source_relation, 2);
  EXPECT_FALSE(chain->links[0].fake_join_to_next);
  EXPECT_FALSE(chain->links[1].fake_join_to_next);
}

TEST(SplitJoinTest, FakeJoinWhenSameSource) {
  auto join =
      JoinSpec::Create("j", {Rel("w", {"a", "b", "c"}), Rel("x", {"c", "d"})})
          .value();
  auto chain = SplitJoinToChain(join, {"a", "b", "c", "d"});
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->links.size(), 3u);
  // (a,b) and (b,c) both come from w -> fake join between them.
  EXPECT_EQ(chain->links[0].source_relation, 0);
  EXPECT_EQ(chain->links[1].source_relation, 0);
  EXPECT_TRUE(chain->links[0].fake_join_to_next);
  EXPECT_FALSE(chain->links[1].fake_join_to_next);
}

TEST(SplitJoinTest, VirtualLinkGetsJoinPath) {
  auto join = ChainABCD();
  // Template pairs (a,c) and (a,d) are not co-located anywhere.
  auto chain = SplitJoinToChain(join, {"b", "a", "c", "d"});
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->links.size(), 3u);
  EXPECT_FALSE(chain->links[0].is_virtual());  // (b,a) in r1
  EXPECT_TRUE(chain->links[1].is_virtual());   // (a,c): r1 -> r2
  ASSERT_GE(chain->links[1].path.size(), 2u);
  EXPECT_EQ(chain->links[1].path.front(), 0);
  EXPECT_EQ(chain->links[1].path.back(), 1);
  EXPECT_FALSE(chain->links[2].is_virtual());  // (c,d) in r3
}

TEST(SplitJoinTest, SmallestSourcePreferred) {
  // Both relations contain (a,b); the smaller one supplies the stats.
  auto big = MakeRelation("big", {"a", "b"},
                          {{1, 1}, {2, 2}, {3, 3}, {4, 4}})
                 .value();
  auto small = MakeRelation("small", {"a", "b", "c"}, {{1, 1, 1}}).value();
  auto join = JoinSpec::Create("j", {big, small}).value();
  auto chain = SplitJoinToChain(join, {"a", "b", "c"});
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->links[0].source_relation, 1);  // "small"
}

TEST(SplitJoinTest, TemplateValidation) {
  auto join = ChainABCD();
  EXPECT_FALSE(SplitJoinToChain(join, {"a", "b", "c"}).ok());  // missing d
  EXPECT_FALSE(
      SplitJoinToChain(join, {"a", "b", "c", "c"}).ok());  // duplicate
  EXPECT_FALSE(
      SplitJoinToChain(join, {"a", "b", "c", "zz"}).ok());  // unknown
}

TEST(SplitJoinTest, UnionWideTemplateAcrossDifferentShapes) {
  // Two joins with the same output schema but different structures must
  // split against one shared template.
  auto j1 = ChainABCD();
  auto j2 =
      JoinSpec::Create("wide", {Rel("w", {"a", "b", "c", "d"})}).value();
  auto tmpl = TemplateSelector::SelectTemplate({j1, j2});
  ASSERT_TRUE(tmpl.ok());
  auto c1 = SplitJoinToChain(j1, *tmpl);
  auto c2 = SplitJoinToChain(j2, *tmpl);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_EQ(c1->links.size(), c2->links.size());
  // The single-relation join sources every link from relation 0, so all
  // its inter-link joins are fake.
  for (size_t i = 0; i + 1 < c2->links.size(); ++i) {
    EXPECT_TRUE(c2->links[i].fake_join_to_next);
  }
}

}  // namespace
}  // namespace suj
