// Tests for the data-epoch machinery: FoldDelta / VersionedRelation
// (storage), Catalog::ApplyDelta, CompositeIndex::BuildIncremental /
// MapRowsIncremental (index), ExactOverlapCalculator::CreateIncremental
// (core), and PreparedUnion / QueryRegistry::ApplyDelta (service). The
// load-bearing oracle throughout: an incremental epoch refresh must be
// indistinguishable — in sampling bytes and estimator output — from a
// cold rebuild over the folded relations.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/exact_overlap.h"
#include "index/composite_index.h"
#include "service/prepared_union.h"
#include "service/sampling_service.h"
#include "storage/catalog.h"
#include "storage/relation_delta.h"
#include "test_util.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

using workloads::MakeOverlappingChains;
using workloads::MakeRelation;
using workloads::SyntheticChainOptions;

Tuple Int2(int64_t a, int64_t b) {
  return Tuple({Value::Int64(a), Value::Int64(b)});
}

// ---------------------------------------------------------------------------
// FoldDelta / VersionedRelation

TEST(FoldDeltaTest, SurvivorsKeepOrderAppendsGoToTail) {
  auto base = MakeRelation("r", {"a", "b"},
                           {{1, 10}, {2, 20}, {3, 30}, {4, 40}})
                  .value();
  RelationDelta delta;
  delta.relation = "r";
  delta.deletes = {1, 3};
  delta.appends = {Int2(5, 50), Int2(6, 60)};

  auto folded = FoldDelta(*base, delta);
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  const Relation& next = *folded.value().relation;
  ASSERT_EQ(next.num_rows(), 4u);
  EXPECT_EQ(next.GetTuple(0).Encode(), Int2(1, 10).Encode());
  EXPECT_EQ(next.GetTuple(1).Encode(), Int2(3, 30).Encode());
  EXPECT_EQ(next.GetTuple(2).Encode(), Int2(5, 50).Encode());
  EXPECT_EQ(next.GetTuple(3).Encode(), Int2(6, 60).Encode());
  EXPECT_EQ(folded.value().first_appended_row, 2u);
  EXPECT_EQ(folded.value().num_appended(), 2u);
  const auto& remap = folded.value().remap;
  ASSERT_EQ(remap.size(), 4u);
  EXPECT_EQ(remap[0], 0u);
  EXPECT_EQ(remap[1], kDeletedRow);
  EXPECT_EQ(remap[2], 1u);
  EXPECT_EQ(remap[3], kDeletedRow);
}

TEST(FoldDeltaTest, RejectsBadDeletesAndSchemaMismatch) {
  auto base = MakeRelation("r", {"a", "b"}, {{1, 10}, {2, 20}}).value();
  RelationDelta out_of_range;
  out_of_range.relation = "r";
  out_of_range.deletes = {2};
  EXPECT_FALSE(FoldDelta(*base, out_of_range).ok());

  RelationDelta duplicate;
  duplicate.relation = "r";
  duplicate.deletes = {0, 0};
  EXPECT_FALSE(FoldDelta(*base, duplicate).ok());

  RelationDelta bad_arity;
  bad_arity.relation = "r";
  bad_arity.appends = {Tuple({Value::Int64(1)})};
  EXPECT_FALSE(FoldDelta(*base, bad_arity).ok());
}

TEST(VersionedRelationTest, EpochsAdvanceAndChainCompacts) {
  auto base = MakeRelation("r", {"a", "b"}, {{1, 10}}).value();
  VersionedRelation versioned(base, /*compaction_threshold=*/2);
  EXPECT_EQ(versioned.epoch(), 0u);
  EXPECT_EQ(versioned.chain_length(), 1u);

  for (int i = 0; i < 5; ++i) {
    RelationDelta delta;
    delta.relation = "r";
    delta.appends = {Int2(100 + i, 0)};
    auto folded = versioned.Apply(delta);
    ASSERT_TRUE(folded.ok()) << folded.status().ToString();
    EXPECT_EQ(versioned.epoch(), static_cast<uint64_t>(i + 1));
    EXPECT_LE(versioned.chain_length(), 2u);
  }
  // 1 base row + 5 appended rows, regardless of compactions in between.
  EXPECT_EQ(versioned.snapshot()->num_rows(), 6u);
}

TEST(CatalogTest, ApplyDeltaUpsertsWithoutInvalidatingReaders) {
  Catalog catalog;
  auto base = MakeRelation("r", {"a", "b"}, {{1, 10}, {2, 20}}).value();
  ASSERT_TRUE(catalog.Register(base).ok());
  EXPECT_EQ(catalog.Epoch("r"), 0u);

  RelationPtr pinned = catalog.Get("r").value();  // epoch-0 reader

  RelationDelta delta;
  delta.relation = "r";
  delta.appends = {Int2(3, 30)};
  ASSERT_TRUE(catalog.ApplyDelta(delta).ok());
  EXPECT_EQ(catalog.Epoch("r"), 1u);
  EXPECT_EQ(catalog.Get("r").value()->num_rows(), 3u);
  // The pinned snapshot is untouched.
  EXPECT_EQ(pinned->num_rows(), 2u);

  RelationDelta unknown;
  unknown.relation = "nope";
  EXPECT_FALSE(catalog.ApplyDelta(unknown).ok());
}

// ---------------------------------------------------------------------------
// CompositeIndex incremental maintenance

TEST(CompositeIndexIncrementalTest, MatchesColdBuildPerKey) {
  auto base = MakeRelation("r", {"a", "b"},
                           {{1, 10}, {1, 11}, {2, 20}, {3, 30}, {1, 12}})
                  .value();
  auto prev = CompositeIndex::Build(base, {"a"}).value();

  RelationDelta delta;
  delta.relation = "r";
  delta.deletes = {2, 4};                       // drops key 2; shrinks key 1
  delta.appends = {Int2(1, 13), Int2(4, 40)};   // grows key 1; new key 4
  auto folded = FoldDelta(*base, delta).value();

  auto incremental =
      CompositeIndex::BuildIncremental(*prev, folded.relation, folded.remap,
                                       folded.first_appended_row);
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
  auto cold = CompositeIndex::Build(folded.relation, {"a"}).value();

  // Group numbering may differ; the per-key row lists (content AND order)
  // must not — that is what sampling walks.
  for (int64_t key = 0; key <= 5; ++key) {
    Tuple probe({Value::Int64(key)});
    RowSpan inc_rows = (*incremental)->Lookup(probe);
    RowSpan cold_rows = cold->Lookup(probe);
    ASSERT_EQ(inc_rows.size(), cold_rows.size()) << "key " << key;
    for (size_t i = 0; i < inc_rows.size(); ++i) {
      EXPECT_EQ(inc_rows[i], cold_rows[i]) << "key " << key << " pos " << i;
    }
  }
  EXPECT_EQ((*incremental)->MaxDegree(), cold->MaxDegree());
}

TEST(CompositeIndexIncrementalTest, MapRowsIncrementalRechecksNoGroup) {
  auto indexed = MakeRelation("r", {"a", "b"}, {{1, 10}, {2, 20}}).value();
  auto probe = MakeRelation("p", {"a", "c"}, {{1, 0}, {7, 0}}).value();
  auto prev_index = CompositeIndex::Build(indexed, {"a"}).value();
  auto prev_map = prev_index->MapRows(*probe).value();
  ASSERT_EQ(prev_map[1], CompositeIndex::kNoGroup);  // key 7 dangling

  // Append the missing key 7 to the indexed side; probe side unchanged.
  RelationDelta delta;
  delta.relation = "r";
  delta.appends = {Int2(7, 70)};
  auto folded = FoldDelta(*indexed, delta).value();
  auto next_index =
      CompositeIndex::BuildIncremental(*prev_index, folded.relation,
                                       folded.remap,
                                       folded.first_appended_row)
          .value();

  auto next_map = next_index->MapRowsIncremental(
      prev_map, /*probe_remap=*/nullptr,
      /*first_appended_row=*/static_cast<uint32_t>(probe->num_rows()), *probe,
      /*index_gained_rows=*/true);
  ASSERT_TRUE(next_map.ok()) << next_map.status().ToString();
  auto cold_map = next_index->MapRows(*probe).value();
  EXPECT_EQ(next_map.value(), cold_map);
  // The formerly dangling probe row now resolves.
  EXPECT_NE(next_map.value()[1], CompositeIndex::kNoGroup);
}

// ---------------------------------------------------------------------------
// ExactOverlapCalculator incremental refresh

TEST(ExactOverlapIncrementalTest, MatchesColdCreateOverFoldedJoins) {
  auto joins = [] {
    SyntheticChainOptions options;
    options.num_joins = 3;
    options.master_rows = 24;
    options.seed = 910;
    return MakeOverlappingChains(options).value();
  }();
  auto prev = ExactOverlapCalculator::Create(joins).value();

  // Fold a delta into join 0's first relation only.
  const RelationPtr& target = joins[0]->relation(0);
  RelationDelta delta;
  delta.relation = target->name();
  delta.deletes = {0};
  auto folded = FoldDelta(*target, delta).value();

  std::vector<JoinSpecPtr> next_joins = joins;
  std::vector<RelationPtr> rels = joins[0]->relations();
  rels[0] = folded.relation;
  std::vector<JoinEdge> edges;
  for (const auto& e : joins[0]->graph().edges()) {
    edges.push_back(JoinEdge{e.left, e.right});
  }
  next_joins[0] =
      JoinSpec::Create(joins[0]->name(), rels, edges).value();

  auto incremental = ExactOverlapCalculator::CreateIncremental(
      next_joins, *prev, /*affected_mask=*/1u);
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
  auto cold = ExactOverlapCalculator::Create(next_joins).value();

  EXPECT_EQ((*incremental)->UnionSize(), cold->UnionSize());
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ((*incremental)->JoinSize(j), cold->JoinSize(j)) << "join " << j;
  }
  for (SubsetMask mask = 1; mask < 8; ++mask) {
    EXPECT_EQ((*incremental)->EstimateOverlap(mask).value(),
              cold->EstimateOverlap(mask).value())
        << "mask " << mask;
  }
  // Unaffected joins share the previous result sets by pointer.
  EXPECT_EQ(&(*incremental)->join_set(1), &prev->join_set(1));
  EXPECT_EQ(&(*incremental)->join_set(2), &prev->join_set(2));
}

// ---------------------------------------------------------------------------
// PreparedUnion::ApplyDelta — the end-to-end oracle

std::vector<JoinSpecPtr> EpochJoins(uint64_t seed) {
  SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 30;
  options.seed = seed;
  return MakeOverlappingChains(options).value();
}

// Builds the delta every PreparedUnion test applies: delete one row of
// and append two rows to the named relation of the given joins.
RelationDelta ProbeDelta(const std::vector<JoinSpecPtr>& joins) {
  const RelationPtr& target = joins[0]->relation(0);
  RelationDelta delta;
  delta.relation = target->name();
  delta.deletes = {0};
  std::vector<Value> a = target->GetTuple(1).values();
  delta.appends.push_back(Tuple(a));  // duplicate-key append
  std::vector<Value> b;
  for (size_t c = 0; c < target->num_columns(); ++c) {
    b.push_back(Value::Int64(90000 + static_cast<int64_t>(c)));
  }
  delta.appends.push_back(Tuple(b));  // fresh-key append
  return delta;
}

// The folded base joins ApplyDelta is expected to be equivalent to.
std::vector<JoinSpecPtr> FoldJoins(const std::vector<JoinSpecPtr>& joins,
                                   const RelationDelta& delta) {
  const RelationPtr& target = joins[0]->relation(0);
  auto folded = FoldDelta(*target, delta).value();
  std::vector<JoinSpecPtr> out;
  for (const auto& join : joins) {
    std::vector<RelationPtr> rels = join->relations();
    bool touched = false;
    for (auto& rel : rels) {
      if (rel == target) {
        rel = folded.relation;
        touched = true;
      }
    }
    if (!touched) {
      out.push_back(join);
      continue;
    }
    std::vector<JoinEdge> edges;
    for (const auto& e : join->graph().edges()) {
      edges.push_back(JoinEdge{e.left, e.right});
    }
    out.push_back(JoinSpec::Create(join->name(), rels, edges).value());
  }
  return out;
}

void ExpectSameSampling(const PreparedUnionPtr& refreshed,
                        const PreparedUnionPtr& cold, uint64_t seed) {
  ASSERT_EQ(refreshed->estimates().cover_sizes.size(),
            cold->estimates().cover_sizes.size());
  for (size_t j = 0; j < cold->estimates().cover_sizes.size(); ++j) {
    EXPECT_EQ(refreshed->estimates().cover_sizes[j],
              cold->estimates().cover_sizes[j])
        << "cover size " << j;
  }
  // Same seed, same data, same epoch -> byte-identical samples.
  auto draw = [seed](const PreparedUnionPtr& plan) {
    UnionSampler::Options options;
    options.sampler_factory = plan->MakeJoinSamplerFactory();
    auto sampler = UnionSampler::Create(plan->joins(), /*samplers=*/{},
                                        plan->estimates(), plan->probers(),
                                        options)
                       .value();
    Rng rng(seed);
    std::vector<Tuple> tuples = sampler->Sample(200, rng).value();
    std::vector<std::string> out;
    for (const auto& t : tuples) out.push_back(t.Encode());
    return out;
  };
  EXPECT_EQ(draw(refreshed), draw(cold));
}

TEST(PreparedUnionApplyDeltaTest, RefreshMatchesColdRebuild) {
  auto joins = EpochJoins(920);
  auto prev =
      PreparedUnion::Build("q", 1, joins, PreparedQueryOptions()).value();
  RelationDelta delta = ProbeDelta(joins);

  auto refreshed = PreparedUnion::ApplyDelta(prev, {delta});
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(refreshed.value()->data_epoch(), 1u);
  EXPECT_EQ(refreshed.value()->delta_rows(), delta.num_rows());
  EXPECT_EQ(refreshed.value()->latest_epoch(), 1u);
  // The superseded plan sees the family's latest epoch too.
  EXPECT_EQ(prev->latest_epoch(), 1u);
  EXPECT_EQ(prev->data_epoch(), 0u);

  auto cold = PreparedUnion::Build("q", 1, FoldJoins(joins, delta),
                                   PreparedQueryOptions())
                  .value();
  ExpectSameSampling(refreshed.value(), cold, 7001);
}

TEST(PreparedUnionApplyDeltaTest, ShardedRefreshMatchesColdRebuild) {
  auto joins = EpochJoins(921);
  PreparedQueryOptions options;
  options.shard.num_shards = 4;
  auto prev = PreparedUnion::Build("q", 1, joins, options).value();
  RelationDelta delta = ProbeDelta(joins);

  auto refreshed = PreparedUnion::ApplyDelta(prev, {delta});
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  ASSERT_NE(refreshed.value()->shards(), nullptr);

  auto cold =
      PreparedUnion::Build("q", 1, FoldJoins(joins, delta), options).value();
  ExpectSameSampling(refreshed.value(), cold, 7002);

  // The weight ledger re-verified its exact merge invariant on refresh.
  auto weights = refreshed.value()->shards()->shard_union_weights();
  auto cold_weights = cold->shards()->shard_union_weights();
  EXPECT_EQ(weights, cold_weights);
}

TEST(PreparedUnionApplyDeltaTest, ChainedEpochsStayConsistent) {
  auto joins = EpochJoins(922);
  auto plan =
      PreparedUnion::Build("q", 1, joins, PreparedQueryOptions()).value();
  std::vector<JoinSpecPtr> current = joins;
  for (int e = 1; e <= 3; ++e) {
    RelationDelta delta = ProbeDelta(current);
    current = FoldJoins(current, delta);
    auto refreshed = PreparedUnion::ApplyDelta(plan, {delta});
    ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
    plan = std::move(refreshed).value();
    EXPECT_EQ(plan->data_epoch(), static_cast<uint64_t>(e));
  }
  auto cold =
      PreparedUnion::Build("q", 1, current, PreparedQueryOptions()).value();
  ExpectSameSampling(plan, cold, 7003);
}

TEST(PreparedUnionApplyDeltaTest, ValidatesDeltas) {
  auto joins = EpochJoins(923);
  auto prev =
      PreparedUnion::Build("q", 1, joins, PreparedQueryOptions()).value();

  RelationDelta unknown;
  unknown.relation = "no_such_relation";
  unknown.deletes = {0};
  EXPECT_FALSE(PreparedUnion::ApplyDelta(prev, {unknown}).ok());

  RelationDelta dup = ProbeDelta(joins);
  EXPECT_FALSE(PreparedUnion::ApplyDelta(prev, {dup, dup}).ok());

  EXPECT_FALSE(PreparedUnion::ApplyDelta(prev, {}).ok());
}

// ---------------------------------------------------------------------------
// QueryRegistry / SamplingService integration

TEST(QueryRegistryApplyDeltaTest, SwapsPlanAndKeepsOldSessionsValid) {
  ServiceOptions service_options;
  service_options.seed = 930;
  auto service = SamplingService::Create(service_options).value();
  auto joins = EpochJoins(930);
  ASSERT_TRUE(service->Prepare("q", joins).ok());

  // A session opened on epoch 0 pins its plan.
  auto session = service->OpenSession("q").value();
  auto before = service->GetQuery("q").value();

  RelationDelta delta = ProbeDelta(joins);
  auto refreshed = service->ApplyDelta("q", {delta});
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(refreshed.value()->data_epoch(), 1u);

  // Registry now serves the new epoch; the pinned plan still samples.
  EXPECT_EQ(service->GetQuery("q").value()->data_epoch(), 1u);
  EXPECT_EQ(before->data_epoch(), 0u);
  EXPECT_EQ(before->latest_epoch(), 1u);
  auto samples = service->Sample(session, 50);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  EXPECT_EQ(samples.value().size(), 50u);
  ASSERT_TRUE(service->CloseSession(session).ok());

  EXPECT_FALSE(service->ApplyDelta("nope", {delta}).ok());
}

// Satellite 2: the sharded memory estimate must include per-shard state,
// so a budget generous enough for two BASE-byte estimates still evicts
// when the plans are sharded.
TEST(QueryRegistryApplyDeltaTest, ShardedPlansAccountShardStateInBudget) {
  auto joins_a = EpochJoins(931);
  auto joins_b = EpochJoins(932);
  PreparedQueryOptions unsharded;
  PreparedQueryOptions sharded;
  sharded.shard.num_shards = 4;

  size_t base_bytes =
      PreparedUnion::Build("probe", 1, joins_a, unsharded).value()
          ->approx_memory_bytes();
  size_t sharded_bytes =
      PreparedUnion::Build("probe", 1, joins_a, sharded).value()
          ->approx_memory_bytes();
  // The sharded estimate must exceed the unsharded one: per-shard
  // EW/wander indexes and coordinator state are real resident bytes.
  ASSERT_GT(sharded_bytes, base_bytes);

  // Budget sized for two unsharded plans but NOT two sharded ones: with
  // the old base-bytes-only accounting both sharded plans would appear
  // to fit and no eviction would fire.
  QueryRegistry::Options options;
  options.memory_budget_bytes = 2 * base_bytes + base_bytes / 2;
  ASSERT_LT(options.memory_budget_bytes, 2 * sharded_bytes);
  QueryRegistry registry(options);
  ASSERT_TRUE(registry.Prepare("a", joins_a, sharded).ok());
  ASSERT_TRUE(registry.Prepare("b", joins_b, sharded).ok());
  EXPECT_EQ(registry.snapshot().evicted_for_budget, 1u);
  EXPECT_FALSE(registry.Get("a").ok());
  EXPECT_TRUE(registry.Get("b").ok());
}

TEST(QueryRegistryApplyDeltaTest, DeltaReaccountsResidentBytes) {
  auto joins = EpochJoins(933);
  QueryRegistry registry;
  ASSERT_TRUE(registry.Prepare("q", joins, PreparedQueryOptions()).ok());
  size_t before = registry.snapshot().resident_bytes;
  ASSERT_GT(before, 0u);

  RelationDelta delta = ProbeDelta(joins);
  auto refreshed = registry.ApplyDelta("q", {delta});
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(registry.snapshot().resident_bytes,
            refreshed.value()->approx_memory_bytes());
}

}  // namespace
}  // namespace suj
