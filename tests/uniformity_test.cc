// Tests for stats/uniformity: the public chi-square diagnostics, plus the
// statistical conformance suite for the parallel revision-mode sampler —
// uniformity over the union is the correctness contract, so the
// epoch-reconciled protocol is validated with the same public machinery
// downstream users get, including a skew-rejection negative control.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/exact_overlap.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "service/prepared_union.h"
#include "service/session.h"
#include "shard/shard_coordinator.h"
#include "shard/shard_plan.h"
#include "stats/uniformity.h"
#include "workloads/synthetic.h"

namespace suj {
namespace {

Tuple T(int64_t v) { return Tuple({Value::Int64(v)}); }

std::vector<Tuple> UniformSamples(size_t universe, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(T(static_cast<int64_t>(rng.UniformInt(universe))));
  }
  return out;
}

TEST(UniformityTest, AcceptsGenuinelyUniformSamples) {
  auto samples = UniformSamples(50, 20000, 1);
  auto result = ChiSquareUniformityTest(samples, 50);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ConsistentWithUniform());
  EXPECT_EQ(result->degrees_of_freedom, 49u);
  EXPECT_EQ(result->num_samples, 20000u);
  EXPECT_GT(result->p_value, 0.001);
}

TEST(UniformityTest, RejectsSkewedSamples) {
  // Value 0 drawn 3x as often as the others.
  Rng rng(2);
  std::vector<Tuple> samples;
  for (size_t i = 0; i < 20000; ++i) {
    uint64_t v = rng.UniformInt(52);
    samples.push_back(T(static_cast<int64_t>(v >= 50 ? 0 : v)));
  }
  auto result = ChiSquareUniformityTest(samples, 50);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ConsistentWithUniform());
}

TEST(UniformityTest, RejectsMissingMass) {
  // Samples cover only half the claimed universe.
  auto samples = UniformSamples(25, 10000, 3);
  auto result = ChiSquareUniformityTest(samples, 50);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ConsistentWithUniform());
}

TEST(UniformityTest, InputValidation) {
  auto samples = UniformSamples(10, 100, 4);
  EXPECT_FALSE(ChiSquareUniformityTest(samples, 1).ok());
  EXPECT_FALSE(ChiSquareUniformityTest({}, 10).ok());
  // More distinct values than the universe claims.
  EXPECT_FALSE(ChiSquareUniformityTest(samples, 2).ok());
}

TEST(UniformityTest, ExplicitProportions) {
  // 2:1 distribution tested against matching expectations.
  Rng rng(5);
  std::vector<Tuple> samples;
  for (size_t i = 0; i < 15000; ++i) {
    samples.push_back(T(rng.UniformInt(3) < 2 ? 1 : 2));
  }
  std::unordered_map<std::string, double> expected = {
      {T(1).Encode(), 2.0 / 3.0}, {T(2).Encode(), 1.0 / 3.0}};
  auto good = ChiSquareTest(samples, expected);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->ConsistentWithUniform());

  std::unordered_map<std::string, double> wrong = {
      {T(1).Encode(), 0.5}, {T(2).Encode(), 0.5}};
  auto bad = ChiSquareTest(samples, wrong);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->ConsistentWithUniform());
}

TEST(UniformityTest, UnexpectedValueFailsImmediately) {
  std::vector<Tuple> samples = {T(1), T(2), T(99)};
  std::unordered_map<std::string, double> expected = {
      {T(1).Encode(), 0.5}, {T(2).Encode(), 0.5}};
  auto result = ChiSquareTest(samples, expected);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->p_value, 0.0);
}

TEST(UniformityTest, SurvivalFunctionSanity) {
  // Chi-square with df degrees of freedom has mean df: survival at the
  // mean should be mid-range, far tails near 0/1.
  EXPECT_GT(ChiSquareSurvival(50.0, 50), 0.3);
  EXPECT_LT(ChiSquareSurvival(50.0, 50), 0.7);
  EXPECT_LT(ChiSquareSurvival(200.0, 50), 1e-6);
  EXPECT_GT(ChiSquareSurvival(10.0, 50), 0.999);
}

TEST(UniformityTest, CountSamples) {
  std::vector<Tuple> samples = {T(1), T(1), T(2)};
  auto counts = CountSamples(samples);
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[T(1).Encode()], 2u);
  EXPECT_EQ(counts[T(2).Encode()], 1u);
}

// ---------------------------------------------------------------------------
// Statistical conformance of the parallel revision-mode sampler: a union
// of chain joins with known (exactly computed) overlap, sampled on the
// epoch-reconciled executor path, checked with the public chi-square API.

struct ConformanceFixture {
  std::vector<JoinSpecPtr> joins;
  std::unique_ptr<ExactOverlapCalculator> exact;
  UnionEstimates estimates;
  CompositeIndexCache cache;

  UnionSampler::JoinSamplerFactory Factory() {
    return [this]() -> Result<std::vector<std::unique_ptr<JoinSampler>>> {
      std::vector<std::unique_ptr<JoinSampler>> out;
      for (const auto& join : joins) {
        auto sampler = ExactWeightSampler::Create(join, &cache);
        if (!sampler.ok()) return sampler.status();
        out.push_back(std::move(*sampler));
      }
      return out;
    };
  }
};

ConformanceFixture MakeConformanceSetup(uint64_t seed) {
  ConformanceFixture s;
  workloads::SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 20;
  options.seed = seed;
  s.joins = workloads::MakeOverlappingChains(options).value();
  s.exact = ExactOverlapCalculator::Create(s.joins).value();
  s.estimates = ComputeUnionEstimates(s.exact.get()).value();
  return s;
}

TEST(UniformityTest, ParallelRevisionModeIsUniformOverUnion) {
  ConformanceFixture s = MakeConformanceSetup(600);
  // Verify the workload genuinely overlaps — otherwise the revision
  // protocol is never exercised and the test proves nothing.
  double overlap = s.exact->EstimateOverlap(0b11).value();
  ASSERT_GT(overlap, 0.0);

  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  opts.num_threads = 4;
  opts.batch_size = 64;
  opts.sampler_factory = s.Factory();
  auto sampler =
      UnionSampler::Create(s.joins, {}, s.estimates, {}, opts).value();
  Rng rng(601);
  const size_t universe = s.exact->UnionSize();
  const size_t n = 80 * universe;
  auto samples = sampler->Sample(n, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  ASSERT_EQ(samples->size(), n);
  EXPECT_GT(sampler->stats().revisions, 0u);

  // Nothing outside the union may ever be delivered.
  for (const auto& [key, c] : CountSamples(*samples)) {
    ASSERT_TRUE(s.exact->membership().count(key))
        << "sampled tuple outside the union";
  }
  auto result = ChiSquareUniformityTest(*samples, universe);
  ASSERT_TRUE(result.ok());
  // The revision protocol learns the cover online, so the distribution
  // carries a small transient bias until every overlap value is claimed;
  // at this sample size the chi-square must still be comfortably
  // consistent with uniformity.
  EXPECT_TRUE(result->ConsistentWithUniform(/*alpha=*/1e-4))
      << "chi2=" << result->statistic << " df="
      << result->degrees_of_freedom << " p=" << result->p_value;
}

TEST(UniformityTest, SessionResumedRevisionPathIsUniformOverUnion) {
  // The session-lived protocol (core/revision_state.h): many chunked
  // Sample calls on ONE kRevision session, whose learned cover, epoch
  // schedule, and buffered surplus persist across calls. Treating the
  // whole multi-call sequence as one sample set, it must be just as
  // consistent with uniformity as the per-call path above — the
  // epoch-confined purge horizon only ever leaves the same
  // constant-NUMBER-of-draws learning transient standing. The skew
  // negative control below keeps guarding this harness too: the same
  // machinery must still reject a genuinely biased sampler.
  ConformanceFixture s = MakeConformanceSetup(604);
  double overlap = s.exact->EstimateOverlap(0b11).value();
  ASSERT_GT(overlap, 0.0);

  auto plan = PreparedUnion::Build("uniformity", /*plan_id=*/11, s.joins,
                                   PreparedQueryOptions())
                  .value();
  SessionOptions opts;
  opts.mode = SessionOptions::Mode::kRevision;
  opts.worker_threads = 4;
  opts.batch_size = 64;
  auto session =
      SamplingSession::Create(1, plan, opts, Rng(605)).value();

  const size_t universe = s.exact->UnionSize();
  const size_t n = 80 * universe;
  // Uneven chunking on purpose: crossing epoch boundaries mid-call and
  // serving calls from the buffered surplus are the resumed path's
  // distinctive code paths.
  std::vector<Tuple> samples;
  samples.reserve(n);
  const size_t chunks[] = {97, 1, 500, 13, 1024};
  size_t next = 0;
  while (samples.size() < n) {
    size_t take = std::min(chunks[next++ % 5], n - samples.size());
    auto chunk = session->Sample(take);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    for (auto& t : *chunk) samples.push_back(std::move(t));
  }
  ASSERT_EQ(samples.size(), n);
  auto stats = session->stats();
  EXPECT_GT(stats.sampler.revisions, 0u);
  EXPECT_GT(stats.sampler.revision_epochs, 1u);

  for (const auto& [key, c] : CountSamples(samples)) {
    ASSERT_TRUE(s.exact->membership().count(key))
        << "sampled tuple outside the union";
  }
  auto result = ChiSquareUniformityTest(samples, universe);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ConsistentWithUniform(/*alpha=*/1e-4))
      << "chi2=" << result->statistic << " df="
      << result->degrees_of_freedom << " p=" << result->p_value;
}

TEST(UniformityTest, SkewedUnionSamplingFailsConformance) {
  // Negative control for the conformance harness: DISJOINT-union sampling
  // (Definition 1) over an OVERLAPPING union over-represents the overlap
  // values — the exact bias Example 2 warns about — and the same
  // chi-square machinery must reject it decisively.
  ConformanceFixture s = MakeConformanceSetup(602);
  double overlap = s.exact->EstimateOverlap(0b11).value();
  ASSERT_GT(overlap, 2.0) << "need overlap for the negative control";

  auto factory = s.Factory();
  auto samplers = factory();
  ASSERT_TRUE(samplers.ok());
  auto sampler = DisjointUnionSampler::Create(s.joins, std::move(*samplers),
                                              s.estimates.join_sizes)
                     .value();
  Rng rng(603);
  const size_t universe = s.exact->UnionSize();
  auto samples = sampler->Sample(80 * universe, rng);
  ASSERT_TRUE(samples.ok());
  auto result = ChiSquareUniformityTest(*samples, universe);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ConsistentWithUniform(/*alpha=*/1e-4))
      << "disjoint-union sampling of an overlapping union must not look "
         "uniform (p=" << result->p_value << ")";
}

TEST(UniformityTest, ColumnarAliasDrawsMatchRowCdfDistribution) {
  // Statistical equivalence of the two exact-weight hot paths: the
  // columnar sampler (O(1) alias-table draws over flat projections) and
  // the row-oriented reference (binary-searched CDF over encoded key
  // probes) target the SAME uniform distribution over one join's result.
  // Each path is chi-square-tested against that exact universe — the
  // strongest equivalence a fixed-seed suite can assert, since the two
  // paths consume the RNG differently by design.
  ConformanceFixture s = MakeConformanceSetup(606);
  const JoinSpecPtr& join = s.joins[0];
  const size_t universe = s.exact->JoinSize(0);
  ASSERT_GT(universe, 1u);
  const size_t n = 80 * universe;

  ExactWeightSampler::Options columnar_opts;
  columnar_opts.columnar = true;
  auto columnar =
      ExactWeightSampler::Create(join, &s.cache, columnar_opts).value();
  ASSERT_TRUE(columnar->columnar());
  ExactWeightSampler::Options row_opts;
  row_opts.columnar = false;
  auto row = ExactWeightSampler::Create(join, &s.cache, row_opts).value();
  ASSERT_FALSE(row->columnar());

  auto draw = [&](ExactWeightSampler* sampler, uint64_t seed) {
    Rng rng(seed);
    std::vector<Tuple> out;
    out.reserve(n);
    while (out.size() < n) {
      auto t = sampler->Sample(rng);
      EXPECT_TRUE(t.ok()) << t.status().ToString();
      if (!t.ok()) break;
      out.push_back(std::move(t).value());
    }
    return out;
  };
  for (auto& [name, samples] :
       {std::pair<const char*, std::vector<Tuple>>{"columnar",
                                                   draw(columnar.get(), 607)},
        {"row", draw(row.get(), 608)}}) {
    ASSERT_EQ(samples.size(), n) << name;
    for (const auto& [key, c] : CountSamples(samples)) {
      ASSERT_TRUE(s.exact->join_set(0).count(key))
          << name << " produced a non-result tuple";
    }
    auto result = ChiSquareUniformityTest(samples, universe);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_TRUE(result->ConsistentWithUniform(/*alpha=*/1e-4))
        << name << " chi2=" << result->statistic
        << " df=" << result->degrees_of_freedom << " p=" << result->p_value;
  }

  // The batched columnar walk (level-major RNG order) targets the same
  // distribution again.
  Rng rng(609);
  std::vector<Tuple> batched;
  batched.reserve(n);
  while (batched.size() < n) {
    columnar->TrySampleBatch(std::min<size_t>(64, n - batched.size()), rng,
                             &batched);
  }
  batched.resize(n);
  auto result = ChiSquareUniformityTest(batched, universe);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ConsistentWithUniform(/*alpha=*/1e-4))
      << "batched chi2=" << result->statistic << " p=" << result->p_value;
}

// ---------------------------------------------------------------------------
// Sharded conformance: routed draws target the same uniform distribution
// over the union, and the harness still rejects a sampler whose shard
// routing ignores the weight ledger.

TEST(UniformityTest, ShardedRevisionSamplingIsUniformOverUnion) {
  // Sharding changes WHERE a root draw is resolved, never its
  // probability: the 4-shard coordinator path (revision mode, 4 worker
  // threads, per-shard exact-weight samplers behind the routed facade)
  // is held to the same chi-square bar as the unsharded suites above.
  ConformanceFixture s = MakeConformanceSetup(610);
  double overlap = s.exact->EstimateOverlap(0b11).value();
  ASSERT_GT(overlap, 0.0);

  ShardOptions shard_options;
  shard_options.num_shards = 4;
  auto plan = ShardPlanner::Plan(s.joins, shard_options).value();
  CompositeIndexCache cache;
  auto coord = ShardCoordinator::Build(plan, &cache).value();
  auto merged = ShardMergedOverlapEstimator::Create(plan).value();
  auto estimates = ComputeUnionEstimates(merged.get()).value();

  UnionSampler::Options opts;
  opts.mode = UnionSampler::Mode::kRevision;
  opts.num_threads = 4;
  opts.batch_size = 64;
  opts.sampler_factory = [coord]() { return coord->MakeSamplers(); };
  auto sampler =
      UnionSampler::Create(coord->joins(), {}, estimates, {}, opts).value();
  Rng rng(611);
  const size_t universe = s.exact->UnionSize();
  const size_t n = 80 * universe;
  auto samples = sampler->Sample(n, rng);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  ASSERT_EQ(samples->size(), n);

  // The canonical specs reorder root rows but never change content, so
  // the union universe is the input calculator's.
  for (const auto& [key, c] : CountSamples(*samples)) {
    ASSERT_TRUE(s.exact->membership().count(key))
        << "sharded sampling left the union";
  }
  auto result = ChiSquareUniformityTest(*samples, universe);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ConsistentWithUniform(/*alpha=*/1e-4))
      << "chi2=" << result->statistic << " df="
      << result->degrees_of_freedom << " p=" << result->p_value;
}

TEST(UniformityTest, ShardSkewedRoutingFailsConformance) {
  // Negative control for the sharded harness: route every root draw to
  // a UNIFORMLY chosen shard instead of weight-proportionally. Light
  // shards' tuples get over-represented — exactly the bias the
  // coordinator's weight ledger exists to prevent — and the same
  // chi-square machinery must reject it decisively.
  ConformanceFixture s = MakeConformanceSetup(612);
  ShardOptions shard_options;
  shard_options.num_shards = 4;
  auto plan = ShardPlanner::Plan(s.joins, shard_options).value();
  const ShardedJoinPlan& jp = plan->join_plan(0);

  CompositeIndexCache cache;
  std::vector<std::unique_ptr<ExactWeightSampler>> shard_samplers;
  for (int shard = 0; shard < shard_options.num_shards; ++shard) {
    const Relation& slice = *jp.shard_specs[shard]->relations()[jp.root];
    if (slice.num_rows() == 0) continue;
    ExactWeightSampler::Options o;
    o.columnar = false;
    shard_samplers.push_back(
        ExactWeightSampler::Create(jp.shard_specs[shard], &cache, o)
            .value());
  }
  ASSERT_GT(shard_samplers.size(), 1u) << "need >1 populated shard";
  // The control only bites when shard weights genuinely differ.
  double min_w = shard_samplers.front()->weight_index()->TotalWeight();
  double max_w = min_w;
  for (const auto& sampler : shard_samplers) {
    double w = sampler->weight_index()->TotalWeight();
    min_w = std::min(min_w, w);
    max_w = std::max(max_w, w);
  }
  ASSERT_GT(max_w, min_w) << "hash partition produced equal shard weights";

  const size_t universe = s.exact->JoinSize(0);
  ASSERT_GT(universe, 1u);
  const size_t n = 60 * universe;
  Rng rng(613);
  std::vector<Tuple> samples;
  samples.reserve(n);
  while (samples.size() < n) {
    auto& sampler = *shard_samplers[rng.UniformInt(shard_samplers.size())];
    auto t = sampler.Sample(rng);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    samples.push_back(std::move(t).value());
  }
  for (const auto& [key, c] : CountSamples(samples)) {
    ASSERT_TRUE(s.exact->join_set(0).count(key))
        << "skew control produced a non-result tuple";
  }
  auto result = ChiSquareUniformityTest(samples, universe);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ConsistentWithUniform(/*alpha=*/1e-4))
      << "uniform-shard routing of a skewed partition must not look "
         "uniform (p=" << result->p_value << ")";
}

}  // namespace
}  // namespace suj
