// Tests for stats/uniformity: the public chi-square diagnostics.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/uniformity.h"

namespace suj {
namespace {

Tuple T(int64_t v) { return Tuple({Value::Int64(v)}); }

std::vector<Tuple> UniformSamples(size_t universe, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(T(static_cast<int64_t>(rng.UniformInt(universe))));
  }
  return out;
}

TEST(UniformityTest, AcceptsGenuinelyUniformSamples) {
  auto samples = UniformSamples(50, 20000, 1);
  auto result = ChiSquareUniformityTest(samples, 50);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ConsistentWithUniform());
  EXPECT_EQ(result->degrees_of_freedom, 49u);
  EXPECT_EQ(result->num_samples, 20000u);
  EXPECT_GT(result->p_value, 0.001);
}

TEST(UniformityTest, RejectsSkewedSamples) {
  // Value 0 drawn 3x as often as the others.
  Rng rng(2);
  std::vector<Tuple> samples;
  for (size_t i = 0; i < 20000; ++i) {
    uint64_t v = rng.UniformInt(52);
    samples.push_back(T(static_cast<int64_t>(v >= 50 ? 0 : v)));
  }
  auto result = ChiSquareUniformityTest(samples, 50);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ConsistentWithUniform());
}

TEST(UniformityTest, RejectsMissingMass) {
  // Samples cover only half the claimed universe.
  auto samples = UniformSamples(25, 10000, 3);
  auto result = ChiSquareUniformityTest(samples, 50);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ConsistentWithUniform());
}

TEST(UniformityTest, InputValidation) {
  auto samples = UniformSamples(10, 100, 4);
  EXPECT_FALSE(ChiSquareUniformityTest(samples, 1).ok());
  EXPECT_FALSE(ChiSquareUniformityTest({}, 10).ok());
  // More distinct values than the universe claims.
  EXPECT_FALSE(ChiSquareUniformityTest(samples, 2).ok());
}

TEST(UniformityTest, ExplicitProportions) {
  // 2:1 distribution tested against matching expectations.
  Rng rng(5);
  std::vector<Tuple> samples;
  for (size_t i = 0; i < 15000; ++i) {
    samples.push_back(T(rng.UniformInt(3) < 2 ? 1 : 2));
  }
  std::unordered_map<std::string, double> expected = {
      {T(1).Encode(), 2.0 / 3.0}, {T(2).Encode(), 1.0 / 3.0}};
  auto good = ChiSquareTest(samples, expected);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->ConsistentWithUniform());

  std::unordered_map<std::string, double> wrong = {
      {T(1).Encode(), 0.5}, {T(2).Encode(), 0.5}};
  auto bad = ChiSquareTest(samples, wrong);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->ConsistentWithUniform());
}

TEST(UniformityTest, UnexpectedValueFailsImmediately) {
  std::vector<Tuple> samples = {T(1), T(2), T(99)};
  std::unordered_map<std::string, double> expected = {
      {T(1).Encode(), 0.5}, {T(2).Encode(), 0.5}};
  auto result = ChiSquareTest(samples, expected);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->p_value, 0.0);
}

TEST(UniformityTest, SurvivalFunctionSanity) {
  // Chi-square with df degrees of freedom has mean df: survival at the
  // mean should be mid-range, far tails near 0/1.
  EXPECT_GT(ChiSquareSurvival(50.0, 50), 0.3);
  EXPECT_LT(ChiSquareSurvival(50.0, 50), 0.7);
  EXPECT_LT(ChiSquareSurvival(200.0, 50), 1e-6);
  EXPECT_GT(ChiSquareSurvival(10.0, 50), 0.999);
}

TEST(UniformityTest, CountSamples) {
  std::vector<Tuple> samples = {T(1), T(1), T(2)};
  auto counts = CountSamples(samples);
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[T(1).Encode()], 2u);
  EXPECT_EQ(counts[T(2).Encode()], 1u);
}

}  // namespace
}  // namespace suj
