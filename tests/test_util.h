// Shared helpers for the suj test suite: a brute-force natural-join
// reference implementation, chi-square uniformity checks, and sampling
// histograms.

#ifndef SUJ_TESTS_TEST_UTIL_H_
#define SUJ_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "join/join_spec.h"
#include "storage/relation.h"

namespace suj {
namespace testing {

/// Convenience deterministic RNG for tests (optionally offset so
/// independent draws within one test use distinct-but-fixed streams).
/// Suites may equivalently construct Rng from any literal seed; the
/// invariant — enforced by seed_audit_test — is only that no test seeds
/// from entropy or wall-clock time, which keeps the chi-square uniformity
/// checks reproducible instead of flaky.
inline Rng FixedSeedRng(uint64_t offset = 0) { return Rng(42 + offset); }

/// Brute-force natural join: enumerates the cartesian product of all base
/// relations, keeps combinations where every shared attribute agrees, and
/// projects onto the join's output schema. Exponential -- test-size only.
inline std::multiset<std::string> BruteForceJoin(const JoinSpecPtr& join) {
  std::multiset<std::string> result;
  const auto& rels = join->relations();
  const Schema& out = join->output_schema();
  std::vector<size_t> idx(rels.size(), 0);
  for (;;) {
    // Check shared-attribute consistency of the current combination.
    std::map<std::string, Value> assignment;
    bool ok = true;
    for (size_t r = 0; r < rels.size() && ok; ++r) {
      const Schema& s = rels[r]->schema();
      for (size_t c = 0; c < s.num_fields() && ok; ++c) {
        Value v = rels[r]->GetValue(idx[r], c);
        auto [it, inserted] = assignment.emplace(s.field(c).name, v);
        if (!inserted && !(it->second == v)) ok = false;
      }
    }
    if (ok) {
      std::vector<Value> values;
      for (const auto& f : out.fields()) values.push_back(assignment[f.name]);
      Tuple t(std::move(values));
      if (join->SatisfiesPredicates(t)) result.insert(t.Encode());
    }
    // Advance the odometer.
    size_t r = 0;
    for (; r < rels.size(); ++r) {
      if (rels[r]->num_rows() == 0) return {};
      if (++idx[r] < rels[r]->num_rows()) break;
      idx[r] = 0;
    }
    if (r == rels.size()) break;
  }
  return result;
}

/// Chi-square statistic of observed counts against a uniform expectation.
inline double ChiSquareUniform(const std::map<std::string, size_t>& counts,
                               size_t universe_size, size_t num_samples) {
  double expected =
      static_cast<double>(num_samples) / static_cast<double>(universe_size);
  double chi2 = 0.0;
  size_t seen = 0;
  for (const auto& [key, c] : counts) {
    double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
    ++seen;
  }
  // Tuples never sampled contribute (0 - expected)^2 / expected each.
  chi2 += static_cast<double>(universe_size - seen) * expected;
  return chi2;
}

/// A generous acceptance threshold for a chi-square with df degrees of
/// freedom: mean + 6 sigma. With fixed seeds this keeps the suite
/// deterministic while still catching any real bias.
inline double ChiSquareThreshold(size_t df) {
  return static_cast<double>(df) +
         6.0 * std::sqrt(2.0 * static_cast<double>(df));
}

/// Counts samples by encoded value.
inline std::map<std::string, size_t> CountByValue(
    const std::vector<Tuple>& samples) {
  std::map<std::string, size_t> counts;
  for (const auto& t : samples) ++counts[t.Encode()];
  return counts;
}

}  // namespace testing
}  // namespace suj

#endif  // SUJ_TESTS_TEST_UTIL_H_
