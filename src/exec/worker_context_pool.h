// WorkerContextPool: worker BatchSampler contexts built once and reused
// across many executor fan-outs.
//
// The revision-mode epoch driver runs one ParallelUnionExecutor fan-out
// per epoch. Before this pool existed, every fan-out re-invoked the
// caller's BatchSamplerFactory per worker, so a call spanning E epochs
// paid E full sampler-set constructions per worker — free with the
// prebuilt-index factories the service layer hands out, but a real cost
// for factories that build indexes or open storage. The pool splits
// context construction from fan-out: contexts are built exactly once
// (serially, on the constructing thread, so factories need not be
// thread-safe) and each subsequent Execute reuses them.
//
// Reuse and determinism: the executor's determinism contract
// (exec/parallel_executor.h) already requires batch output to be a pure
// function of (count, rng) plus immutable-or-reset-per-batch state, so
// running later fan-outs on the same contexts cannot change any batch's
// bytes — only per-context accumulators (stats) observe the reuse.
//
// Stats: because contexts now live across fan-outs, their cumulative
// stats() must be folded into the caller's block exactly once, at the end
// of the pool's life (MergeStatsInto) — merging after every fan-out, the
// way the factory-based Execute does with its per-call contexts, would
// double-count every earlier epoch.

#ifndef SUJ_EXEC_WORKER_CONTEXT_POOL_H_
#define SUJ_EXEC_WORKER_CONTEXT_POOL_H_

#include <memory>
#include <vector>

#include "exec/parallel_executor.h"

namespace suj {

/// \brief A fixed set of worker contexts shared by successive fan-outs.
class WorkerContextPool {
 public:
  /// Builds `workers` contexts by invoking `factory` once per worker
  /// index, serially on the calling thread (factories may share
  /// non-thread-safe caches). Fails if the factory fails or produces a
  /// null context.
  static Result<WorkerContextPool> Build(size_t workers,
                                         const BatchSamplerFactory& factory);

  WorkerContextPool(WorkerContextPool&&) = default;
  WorkerContextPool& operator=(WorkerContextPool&&) = default;
  WorkerContextPool(const WorkerContextPool&) = delete;
  WorkerContextPool& operator=(const WorkerContextPool&) = delete;

  size_t size() const { return contexts_.size(); }
  BatchSampler& context(size_t w) { return *contexts_[w]; }
  const BatchSampler& context(size_t w) const { return *contexts_[w]; }

  /// Folds every context's cumulative stats into `*stats`. Call exactly
  /// once, after the pool's last fan-out — the contexts' stats blocks
  /// span their whole life, so a per-fan-out merge would double-count.
  Status MergeStatsInto(UnionSampleStats* stats) const;

  /// Incremental form for pools that outlive single calls (the resumable
  /// revision path carries its pool in the RevisionState): folds only the
  /// stats each context accumulated SINCE the previous MergeStatsDeltaInto
  /// on this pool, so a session can surface accounting at every call
  /// boundary without double-counting earlier calls' epochs. Safe to mix
  /// with nothing else: do not also call MergeStatsInto on the same pool.
  Status MergeStatsDeltaInto(UnionSampleStats* stats);

 private:
  WorkerContextPool() = default;

  std::vector<std::unique_ptr<BatchSampler>> contexts_;
  /// Per-context snapshot at the last MergeStatsDeltaInto (delta baseline).
  std::vector<UnionSampleStats> merged_;
};

}  // namespace suj

#endif  // SUJ_EXEC_WORKER_CONTEXT_POOL_H_
