#include "exec/worker_context_pool.h"

#include <utility>

namespace suj {

Result<WorkerContextPool> WorkerContextPool::Build(
    size_t workers, const BatchSamplerFactory& factory) {
  if (factory == nullptr) {
    return Status::InvalidArgument("null batch-sampler factory");
  }
  WorkerContextPool pool;
  pool.contexts_.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    auto context = factory(w);
    if (!context.ok()) return context.status();
    if (*context == nullptr) {
      return Status::InvalidArgument("factory produced a null BatchSampler");
    }
    pool.contexts_.push_back(std::move(*context));
  }
  return pool;
}

Status WorkerContextPool::MergeStatsInto(UnionSampleStats* stats) const {
  if (stats == nullptr) {
    return Status::InvalidArgument("null stats sink");
  }
  for (const auto& context : contexts_) {
    SUJ_RETURN_NOT_OK(stats->MergeFrom(context->stats()));
  }
  return Status::OK();
}

namespace {

// Fieldwise stats delta. Counters and timings are monotone accumulators,
// so cur - prev is the work since the baseline; the high-water mark is a
// level whose MergeFrom is a max, so the current value passes through.
UnionSampleStats DeltaSince(const UnionSampleStats& cur,
                            const UnionSampleStats& prev) {
  UnionSampleStats d;
  d.plan_id = cur.plan_id;
  d.rounds = cur.rounds - prev.rounds;
  d.join_draws = cur.join_draws - prev.join_draws;
  d.accepted = cur.accepted - prev.accepted;
  d.rejected_cover = cur.rejected_cover - prev.rejected_cover;
  d.revisions = cur.revisions - prev.revisions;
  d.removed_by_revision = cur.removed_by_revision - prev.removed_by_revision;
  d.abandoned_rounds = cur.abandoned_rounds - prev.abandoned_rounds;
  d.accepted_seconds = cur.accepted_seconds - prev.accepted_seconds;
  d.rejected_seconds = cur.rejected_seconds - prev.rejected_seconds;
  d.parallel_batches = cur.parallel_batches - prev.parallel_batches;
  d.parallel_workers = cur.parallel_workers - prev.parallel_workers;
  d.parallel_clipped = cur.parallel_clipped - prev.parallel_clipped;
  d.parallel_seconds = cur.parallel_seconds - prev.parallel_seconds;
  d.revision_epochs = cur.revision_epochs - prev.revision_epochs;
  d.reconcile_dropped = cur.reconcile_dropped - prev.reconcile_dropped;
  d.reconciliation_seconds =
      cur.reconciliation_seconds - prev.reconciliation_seconds;
  d.revision_surplus_high_water = cur.revision_surplus_high_water;
  return d;
}

}  // namespace

Status WorkerContextPool::MergeStatsDeltaInto(UnionSampleStats* stats) {
  if (stats == nullptr) {
    return Status::InvalidArgument("null stats sink");
  }
  if (merged_.size() != contexts_.size()) merged_.resize(contexts_.size());
  for (size_t i = 0; i < contexts_.size(); ++i) {
    UnionSampleStats cur = contexts_[i]->stats();
    SUJ_RETURN_NOT_OK(stats->MergeFrom(DeltaSince(cur, merged_[i])));
    merged_[i] = std::move(cur);
  }
  return Status::OK();
}

}  // namespace suj
