#include "exec/worker_context_pool.h"

#include <utility>

namespace suj {

Result<WorkerContextPool> WorkerContextPool::Build(
    size_t workers, const BatchSamplerFactory& factory) {
  if (factory == nullptr) {
    return Status::InvalidArgument("null batch-sampler factory");
  }
  WorkerContextPool pool;
  pool.contexts_.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    auto context = factory(w);
    if (!context.ok()) return context.status();
    if (*context == nullptr) {
      return Status::InvalidArgument("factory produced a null BatchSampler");
    }
    pool.contexts_.push_back(std::move(*context));
  }
  return pool;
}

Status WorkerContextPool::MergeStatsInto(UnionSampleStats* stats) const {
  if (stats == nullptr) {
    return Status::InvalidArgument("null stats sink");
  }
  for (const auto& context : contexts_) {
    SUJ_RETURN_NOT_OK(stats->MergeFrom(context->stats()));
  }
  return Status::OK();
}

}  // namespace suj
