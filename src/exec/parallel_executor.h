// ParallelUnionExecutor: deterministic worker-pool fan-out for union
// sampling.
//
// A request for n tuples is cut into fixed-size batches. Batch i is drawn
// with its own RNG substream — Rng(seed) advanced i jumps (2^128 steps
// each, common/rng.h) — by whichever worker claims it, and the per-batch
// results are reassembled in batch order. Because every batch's output is a
// function of (seed, batch index) alone and never of the claiming thread,
// the concatenated sample sequence is byte-identical for any thread count,
// including 1. That per-batch (not per-thread) seeding is the entire
// determinism story; the pool is otherwise a plain claim-next-batch loop.
//
// Workers run against shared read-only state (indexes, probers, overlap
// estimates); everything mutable — per-join samplers, stats, RNG — is
// per-worker. Worker contexts are created on the calling thread before the
// pool starts, so factories need not be thread-safe.
//
// Two entry points: the factory-based Execute builds fresh contexts for
// one fan-out (one-shot callers), while the WorkerContextPool overload
// runs a fan-out over contexts the caller built once and reuses — the
// revision-mode epoch driver fans out once per epoch, and re-running
// heavy factories per epoch is exactly what the pool overload removes
// (see exec/worker_context_pool.h for the stats-merge contract).

#ifndef SUJ_EXEC_PARALLEL_EXECUTOR_H_
#define SUJ_EXEC_PARALLEL_EXECUTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/union_sampler.h"

namespace suj {

/// \brief One worker's sampling context.
///
/// Contract for determinism: SampleBatch(count, rng) must be a pure
/// function of (count, rng) plus state that is immutable or reset per call.
/// Memoization of pure functions (e.g. ownership caches) is fine; carrying
/// sampling-relevant state between batches is not.
class BatchSampler {
 public:
  virtual ~BatchSampler() = default;

  /// Draws at least `count` tuples (overshoot is truncated by the
  /// executor, deterministically, since truncation happens per batch).
  virtual Result<std::vector<Tuple>> SampleBatch(size_t count, Rng& rng) = 0;

  /// The executor's actual entry point. Samplers that journal per-batch
  /// side data (e.g. the revision protocol's ownership claims, placed
  /// into slot `batch_index` so the post-fan-out reconciliation can
  /// replay them in batch order) override this; the batch index is part
  /// of the schedule, not the randomness, so the determinism contract is
  /// unchanged. Each batch index is claimed by exactly one worker, which
  /// is what makes per-batch-slot journaling race-free. The default
  /// forwards to SampleBatch.
  virtual Result<std::vector<Tuple>> SampleBatchAt(size_t batch_index,
                                                  size_t count, Rng& rng) {
    (void)batch_index;
    return SampleBatch(count, rng);
  }

  /// Cumulative union-level stats over every batch this worker ran.
  virtual UnionSampleStats stats() const = 0;
};

/// Builds the context for worker `worker_index` (0 <= index <
/// EffectiveThreads(n), each passed exactly once). The index lets callers
/// bind per-worker output slots without trusting call order or count.
using BatchSamplerFactory =
    std::function<Result<std::unique_ptr<BatchSampler>>(size_t worker_index)>;

class WorkerContextPool;

/// \brief Deterministic batched fan-out over a worker pool.
class ParallelUnionExecutor {
 public:
  struct Options {
    /// Worker threads; 0 resolves to std::thread::hardware_concurrency().
    size_t num_threads = 0;
    /// Tuples per batch: the determinism and scheduling unit. Smaller
    /// batches balance load better; larger ones amortize per-batch setup.
    size_t batch_size = 64;
  };

  explicit ParallelUnionExecutor(Options options);

  /// Draws `n` tuples using worker contexts from `factory` (one per
  /// worker, created up front on the calling thread). The result is
  /// identical for every `num_threads` given the same (n, seed, factory
  /// semantics). Merged per-worker stats (plus batch/worker/wall-time
  /// accounting) are added into `*stats` when non-null.
  Result<std::vector<Tuple>> Execute(size_t n, uint64_t seed,
                                     const BatchSamplerFactory& factory,
                                     UnionSampleStats* stats = nullptr);

  /// Same fan-out over caller-owned reusable contexts: batches are
  /// drained by up to min(pool.size(), batch count) workers, each bound
  /// to one pool context. Unlike the factory overload, `*stats` receives
  /// ONLY the fan-out accounting (parallel_batches, parallel_clipped,
  /// parallel_seconds) — the contexts outlive this call, so their
  /// cumulative sampler stats and the context count must be folded in
  /// exactly once by the pool's owner (WorkerContextPool::MergeStatsInto)
  /// when the pool retires, never per fan-out.
  Result<std::vector<Tuple>> Execute(size_t n, uint64_t seed,
                                     WorkerContextPool& pool,
                                     UnionSampleStats* stats = nullptr);

  /// Threads the pool will actually use for a request of `n` tuples.
  size_t EffectiveThreads(size_t n) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace suj

#endif  // SUJ_EXEC_PARALLEL_EXECUTOR_H_
