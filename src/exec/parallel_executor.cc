#include "exec/parallel_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "exec/worker_context_pool.h"
#include "obs/metrics.h"

namespace suj {

namespace {

size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace

ParallelUnionExecutor::ParallelUnionExecutor(Options options)
    : options_(options) {
  if (options_.num_threads == 0) options_.num_threads = HardwareThreads();
  if (options_.batch_size == 0) options_.batch_size = 64;
}

size_t ParallelUnionExecutor::EffectiveThreads(size_t n) const {
  size_t batches = (n + options_.batch_size - 1) / options_.batch_size;
  return std::min(options_.num_threads, batches == 0 ? size_t{1} : batches);
}

Result<std::vector<Tuple>> ParallelUnionExecutor::Execute(
    size_t n, uint64_t seed, WorkerContextPool& pool,
    UnionSampleStats* stats) {
  auto wall_start = std::chrono::steady_clock::now();
  const size_t batch = options_.batch_size;
  const size_t num_batches = (n + batch - 1) / batch;
  if (num_batches > 0 && pool.size() == 0) {
    return Status::InvalidArgument("empty worker-context pool");
  }
  // One worker per context up to the batch count; surplus contexts stay
  // idle this fan-out (a pool is sized for the call's LARGEST fan-out,
  // and small epochs simply engage a prefix of it).
  const size_t workers = std::min(pool.size(), num_batches);

  std::vector<std::vector<Tuple>> slots(num_batches);
  std::vector<Status> worker_status(workers, Status::OK());
  std::vector<uint64_t> worker_clipped(workers, 0);
  std::atomic<size_t> next_batch{0};
  std::atomic<bool> failed{false};

  auto run_worker = [&](size_t w) {
    // Batch i's generator is Rng(seed) jumped i times. Claimed indexes are
    // strictly increasing per worker, so each worker advances one cursor
    // incrementally instead of re-deriving Split(i) from scratch.
    Rng cursor(seed);
    size_t cursor_jumps = 0;
    for (;;) {
      const size_t i = next_batch.fetch_add(1);
      if (i >= num_batches || failed.load(std::memory_order_relaxed)) break;
      while (cursor_jumps < i) {
        cursor.Jump();
        ++cursor_jumps;
      }
      Rng batch_rng = cursor;
      const size_t count = std::min(batch, n - i * batch);
      auto drawn = pool.context(w).SampleBatchAt(i, count, batch_rng);
      if (!drawn.ok()) {
        worker_status[w] = drawn.status();
        failed.store(true, std::memory_order_relaxed);
        break;
      }
      if (drawn->size() > count) {
        worker_clipped[w] += drawn->size() - count;
        drawn->resize(count);
      }
      if (drawn->size() < count) {
        worker_status[w] = Status::Internal(
            "batch sampler returned " + std::to_string(drawn->size()) +
            " of " + std::to_string(count) + " requested tuples");
        failed.store(true, std::memory_order_relaxed);
        break;
      }
      slots[i] = std::move(*drawn);
    }
  };

  if (workers == 1) {
    run_worker(0);
  } else if (workers > 1) {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) threads.emplace_back(run_worker, w);
    for (auto& t : threads) t.join();
  }

  for (const Status& s : worker_status) {
    if (!s.ok()) return s;
  }

  if (stats != nullptr) {
    // Fan-out accounting only: the contexts belong to the pool's owner,
    // whose MergeStatsInto folds their cumulative stats (and the context
    // count) in exactly once when the pool retires.
    for (uint64_t clipped : worker_clipped) stats->parallel_clipped += clipped;
    stats->parallel_batches += num_batches;
    stats->parallel_seconds += std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   wall_start)
                                   .count();
  }
  static obs::Counter* const batches =
      obs::MetricsRegistry::Global().GetCounter("suj_exec_batches_total");
  static obs::Histogram* const fanout_ns =
      obs::MetricsRegistry::Global().GetHistogram(
          "suj_exec_fanout_ns", obs::Histogram::DefaultLatencyBoundsNs());
  batches->Increment(num_batches);
  fanout_ns->Observe(static_cast<uint64_t>(
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - wall_start)
          .count()));

  std::vector<Tuple> result;
  result.reserve(n);
  for (auto& slot : slots) {
    for (auto& t : slot) result.push_back(std::move(t));
  }
  return result;
}

Result<std::vector<Tuple>> ParallelUnionExecutor::Execute(
    size_t n, uint64_t seed, const BatchSamplerFactory& factory,
    UnionSampleStats* stats) {
  if (factory == nullptr) {
    return Status::InvalidArgument("null batch-sampler factory");
  }
  // One-shot contexts: built for this fan-out, retired right after it, so
  // (unlike the pool overload) their stats merge here.
  auto pool = WorkerContextPool::Build(EffectiveThreads(n), factory);
  if (!pool.ok()) return pool.status();
  auto result = Execute(n, seed, *pool, stats);
  if (!result.ok()) return result.status();
  if (stats != nullptr) {
    SUJ_RETURN_NOT_OK(pool->MergeStatsInto(stats));
    stats->parallel_workers += pool->size();
  }
  return result;
}

}  // namespace suj
