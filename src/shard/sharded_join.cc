#include "shard/sharded_join.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace suj {

namespace {

std::vector<obs::Counter*> ShardCounters(const std::string& prefix, int k) {
  std::vector<obs::Counter*> out;
  out.reserve(k);
  for (int s = 0; s < k; ++s) {
    out.push_back(obs::MetricsRegistry::Global().GetCounter(
        prefix + std::to_string(s)));
  }
  return out;
}

}  // namespace

Result<std::shared_ptr<const ShardedJoinIndex>> ShardedJoinIndex::Build(
    ShardPlanPtr plan, int join_index, CompositeIndexCache* cache) {
  if (plan == nullptr) return Status::InvalidArgument("null shard plan");
  if (join_index < 0 || static_cast<size_t>(join_index) >= plan->num_joins()) {
    return Status::InvalidArgument("join_index out of range");
  }
  auto index = std::shared_ptr<ShardedJoinIndex>(
      new ShardedJoinIndex(std::move(plan), join_index));
  const ShardedJoinPlan& jp = index->join_plan();
  const int k = static_cast<int>(jp.shard_specs.size());
  index->total_rows_ = jp.canonical->relation(jp.root)->num_rows();
  index->weight_boundary_.assign(1, 0.0);
  index->shard_weights_.reserve(k);
  index->global_cumulative_.reserve(k);
  for (int s = 0; s < k; ++s) {
    auto weights = ExactWeightIndex::Build(jp.shard_specs[s], cache);
    if (!weights.ok()) return weights.status();
    const ExactWeightIndexPtr& w =
        index->shard_weights_.emplace_back(std::move(weights).value());
    index->exact_ = index->exact_ && w->exact();
    // EW weights are integer-valued (join/skeleton counts), so B[s] and
    // every global cumulative entry is an exact integer sum: the global
    // arrays are bit-identical to the canonical index's root cumulative.
    const double base = index->weight_boundary_.back();
    std::vector<double> global_cum;
    global_cum.reserve(w->root_cumulative().size());
    for (double c : w->root_cumulative()) global_cum.push_back(base + c);
    index->global_cumulative_.push_back(std::move(global_cum));
    index->weight_boundary_.push_back(base + w->TotalWeight());
  }
  return std::shared_ptr<const ShardedJoinIndex>(index);
}

int ShardedJoinIndex::RouteWeight(double x) const {
  const int k = num_shards();
  int s = static_cast<int>(
      std::upper_bound(weight_boundary_.begin() + 1, weight_boundary_.end(),
                       x) -
      (weight_boundary_.begin() + 1));
  if (s >= k) {
    // x at/above B[K] (a draw u * total that rounded up to total): resolve
    // to the last shard with positive total, mirroring the tail rule of
    // ResolveCumulativeDraw so the routed row equals the unrouted one.
    for (s = k - 1;
         s > 0 && weight_boundary_[s + 1] <= weight_boundary_[s]; --s) {
    }
  }
  return s;
}

int ShardedJoinIndex::RouteRow(uint64_t global_row, uint32_t* local_row) const {
  const std::vector<uint32_t>& rb = join_plan().row_begin;
  const uint32_t row = static_cast<uint32_t>(global_row);
  const int s = static_cast<int>(
      std::upper_bound(rb.begin() + 1, rb.end(), row) - (rb.begin() + 1));
  *local_row = row - rb[s];
  return s;
}

Result<std::unique_ptr<ShardedJoinSampler>> ShardedJoinSampler::Create(
    ShardedJoinIndexPtr index) {
  if (index == nullptr) return Status::InvalidArgument("null sharded index");
  auto sampler = std::unique_ptr<ShardedJoinSampler>(
      new ShardedJoinSampler(index->join(), index));
  const int k = index->num_shards();
  for (int s = 0; s < k; ++s) {
    ExactWeightSampler::Options options;
    options.columnar = false;  // the row path is the sharding reference
    auto inner = ExactWeightSampler::Create(index->shard_weights(s), options);
    if (!inner.ok()) return inner.status();
    sampler->shard_samplers_.push_back(std::move(inner).value());
  }
  sampler->draw_counters_ = ShardCounters("suj_shard_draws_total_s", k);
  sampler->total_draws_ =
      obs::MetricsRegistry::Global().GetCounter("suj_shard_draws_total");
  sampler->latency_ns_.reserve(k);
  for (int s = 0; s < k; ++s) {
    sampler->latency_ns_.push_back(obs::MetricsRegistry::Global().GetHistogram(
        "suj_shard_sample_ns_s" + std::to_string(s),
        obs::Histogram::DefaultLatencyBoundsNs()));
  }
  return sampler;
}

std::optional<Tuple> ShardedJoinSampler::TrySample(Rng& rng) {
  ++stats_.attempts;
  const double total = index_->TotalWeight();
  if (total <= 0.0) {
    ++stats_.dead_ends;
    return std::nullopt;
  }
  const bool timed = obs::MetricsEnabled();
  const int64_t start_ns = timed ? obs::MonotonicNs() : 0;
  // Same draw as the unsharded row path: x = u * total, resolved against
  // cumulative root weights — here the global-offset copy of shard s's
  // array, so the resolved row is the same root row either way.
  const double x = rng.UniformDouble() * total;
  const int s = index_->RouteWeight(x);
  const ExactWeightIndexPtr& w = index_->shard_weights(s);
  const size_t local = ResolveCumulativeDraw(
      index_->global_cumulative(s),
      w->weights(w->join()->graph().tree_order()[0]), x);
  ExactWeightSampler& inner = *shard_samplers_[s];
  const JoinSampleStats& inner_stats = inner.stats();
  const uint64_t dead0 = inner_stats.dead_ends;
  const uint64_t rej0 = inner_stats.rejections;
  std::optional<Tuple> out =
      inner.TrySampleRowFromRoot(static_cast<uint32_t>(local), rng);
  stats_.dead_ends += inner_stats.dead_ends - dead0;
  stats_.rejections += inner_stats.rejections - rej0;
  if (out.has_value()) ++stats_.successes;
  draw_counters_[s]->Increment();
  total_draws_->Increment();
  if (timed) {
    latency_ns_[s]->Observe(
        static_cast<uint64_t>(obs::MonotonicNs() - start_ns));
  }
  return out;
}

Result<std::unique_ptr<ShardedWanderJoinSampler>>
ShardedWanderJoinSampler::Create(ShardedJoinIndexPtr index,
                                 CompositeIndexCache* cache) {
  if (index == nullptr) return Status::InvalidArgument("null sharded index");
  auto sampler = std::unique_ptr<ShardedWanderJoinSampler>(
      new ShardedWanderJoinSampler(index->join(), index));
  const ShardedJoinPlan& jp = sampler->index_->join_plan();
  for (const JoinSpecPtr& spec : jp.shard_specs) {
    auto walker = WanderJoinSampler::Create(spec, cache);
    if (!walker.ok()) return walker.status();
    sampler->shard_walkers_.push_back(std::move(walker).value());
  }
  sampler->draw_counters_ =
      ShardCounters("suj_shard_walk_draws_total_s",
                    static_cast<int>(jp.shard_specs.size()));
  sampler->total_draws_ =
      obs::MetricsRegistry::Global().GetCounter("suj_shard_walk_draws_total");
  return sampler;
}

WalkOutcome ShardedWanderJoinSampler::Walk(Rng& rng) {
  ++num_walks_;
  const uint64_t n = index_->total_rows();
  if (n == 0) return WalkOutcome{};
  // Same draw as the unsharded walk: a uniform canonical root row; the
  // shard's local offset points at the identical row contents.
  uint32_t local = 0;
  const int s = index_->RouteRow(rng.UniformInt(n), &local);
  WalkOutcome out =
      shard_walkers_[s]->WalkFromRoot(local, 1.0 / static_cast<double>(n), rng);
  if (out.success) ++num_successes_;
  draw_counters_[s]->Increment();
  total_draws_->Increment();
  return out;
}

Result<std::shared_ptr<const ShardedMembershipProber>>
ShardedMembershipProber::Build(ShardPlanPtr plan, int join_index) {
  if (plan == nullptr) return Status::InvalidArgument("null shard plan");
  if (plan->options().scheme != ShardScheme::kHashKey) {
    return Status::InvalidArgument(
        "routed membership probes require ShardScheme::kHashKey");
  }
  const ShardedJoinPlan& jp = plan->join_plan(join_index);
  auto prober = std::shared_ptr<ShardedMembershipProber>(
      new ShardedMembershipProber(jp.canonical, plan));
  for (const JoinSpecPtr& spec : jp.shard_specs) {
    auto inner = JoinMembershipProber::Build(spec);
    if (!inner.ok()) return inner.status();
    prober->shard_probers_.push_back(std::move(inner).value());
  }
  const Schema& root_schema = jp.canonical->relation(jp.root)->schema();
  const Schema& out_schema = jp.canonical->output_schema();
  for (const Field& field : root_schema.fields()) {
    const int idx = out_schema.FieldIndex(field.name);
    if (idx < 0) {
      return Status::Internal("root attribute '" + field.name +
                              "' missing from output schema");
    }
    prober->root_projection_.push_back(idx);
  }
  return std::shared_ptr<const ShardedMembershipProber>(prober);
}

bool ShardedMembershipProber::Contains(const Tuple& output_tuple) const {
  // The projection of an output tuple onto the root schema IS a full root
  // row, so its encoding hashes to the vp the planner assigned that row:
  // exactly one shard's root slice can contain it.
  Tuple root_row = output_tuple.Project(root_projection_);
  const uint32_t vp = static_cast<uint32_t>(
      ShardKeyHash64(root_row.Encode()) %
      static_cast<uint64_t>(plan_->options().virtual_partitions));
  return shard_probers_[plan_->shard_of_vp(vp)]->Contains(output_tuple);
}

}  // namespace suj
