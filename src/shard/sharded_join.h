// Shard-routed samplers: the per-join execution half of the shard plan.
//
// ShardedJoinIndex pins the immutable routing state of one sharded join:
// per-shard exact-weight indexes, the global weight boundaries B[s] (exact
// integer prefix sums of the shard totals), and each shard's root
// cumulative array stored AT GLOBAL OFFSET (local prefix + B[s], every
// addition an exact integer sum). Routing compares the caller's global CDF
// draw x against those arrays directly — never x - B[s], whose
// floating-point subtraction could flip a boundary comparison — so a
// sharded root draw resolves to exactly the row the unsharded row path
// resolves for the same x.
//
// ShardedJoinSampler and ShardedWanderJoinSampler wrap one routing step
// around the existing descent entry points (ExactWeightSampler::
// TrySampleRowFromRoot, WanderJoinSampler::WalkFromRoot), consuming the
// caller's RNG identically to their unsharded counterparts; the union
// protocol cannot tell them apart byte-for-byte. ShardedMembershipProber
// routes membership probes to the one shard whose root slice can contain
// the tuple (kHashKey scheme: the root projection hashes to its vp).

#ifndef SUJ_SHARD_SHARDED_JOIN_H_
#define SUJ_SHARD_SHARDED_JOIN_H_

#include <memory>
#include <vector>

#include "join/exact_weight.h"
#include "join/membership.h"
#include "join/wander_join.h"
#include "obs/metrics.h"
#include "shard/shard_plan.h"

namespace suj {

/// \brief Immutable routing + weight state of one sharded join.
class ShardedJoinIndex {
 public:
  /// Builds per-shard EW indexes for join `join_index` of `plan` over
  /// `cache` (children are shared RelationPtrs, so their composite
  /// indexes build once and are reused by every shard).
  static Result<std::shared_ptr<const ShardedJoinIndex>> Build(
      ShardPlanPtr plan, int join_index, CompositeIndexCache* cache);

  const JoinSpecPtr& join() const { return join_plan().canonical; }
  const ShardedJoinPlan& join_plan() const {
    return plan_->join_plan(join_index_);
  }
  int num_shards() const { return static_cast<int>(shard_weights_.size()); }

  /// Sum of shard totals == the canonical index's TotalWeight (exact
  /// integer sums).
  double TotalWeight() const { return weight_boundary_.back(); }
  bool exact() const { return exact_; }
  /// Canonical root row count (for uniform walk-root routing).
  uint64_t total_rows() const { return total_rows_; }

  const ExactWeightIndexPtr& shard_weights(int s) const {
    return shard_weights_[s];
  }
  /// B[0..K]: global weight prefix of the shards.
  const std::vector<double>& weight_boundary() const {
    return weight_boundary_;
  }
  /// Shard s's root cumulative array at global offset (entry i is the
  /// global cumulative weight through local row i).
  const std::vector<double>& global_cumulative(int s) const {
    return global_cumulative_[s];
  }

  /// Shard owning a global root CDF draw x in [0, TotalWeight()]. A draw
  /// at/above B[K] (floating-point boundary) resolves to the last shard
  /// with positive total, mirroring ResolveCumulativeDraw's tail rule.
  int RouteWeight(double x) const;
  /// Shard owning canonical root row `global_row`; sets `*local_row`.
  int RouteRow(uint64_t global_row, uint32_t* local_row) const;

 private:
  ShardedJoinIndex(ShardPlanPtr plan, int join_index)
      : plan_(std::move(plan)), join_index_(join_index) {}

  ShardPlanPtr plan_;
  int join_index_;
  std::vector<ExactWeightIndexPtr> shard_weights_;
  std::vector<double> weight_boundary_;
  std::vector<std::vector<double>> global_cumulative_;
  uint64_t total_rows_ = 0;
  bool exact_ = true;
};

using ShardedJoinIndexPtr = std::shared_ptr<const ShardedJoinIndex>;

/// \brief Uniform join sampler that routes root draws across shards.
///
/// join() is the CANONICAL spec (pointer-identical to the plan's joins),
/// so the union layer's sampler-set validation and cover bookkeeping see
/// the sharded set as the plan itself.
class ShardedJoinSampler : public JoinSampler {
 public:
  /// O(K) over prebuilt indexes: cheap enough for per-worker factories.
  static Result<std::unique_ptr<ShardedJoinSampler>> Create(
      ShardedJoinIndexPtr index);

  std::optional<Tuple> TrySample(Rng& rng) override;
  double SizeUpperBound() const override { return index_->TotalWeight(); }

  const ShardedJoinIndexPtr& shard_index() const { return index_; }

 private:
  ShardedJoinSampler(JoinSpecPtr join, ShardedJoinIndexPtr index)
      : JoinSampler(std::move(join)), index_(std::move(index)) {}

  ShardedJoinIndexPtr index_;
  /// Row-path samplers, one per shard (the row path is the sharding
  /// reference: its root draw is the CDF resolution being routed).
  std::vector<std::unique_ptr<ExactWeightSampler>> shard_samplers_;
  std::vector<obs::Counter*> draw_counters_;     // suj_shard_draws_total_s<k>
  obs::Counter* total_draws_ = nullptr;          // suj_shard_draws_total
  std::vector<obs::Histogram*> latency_ns_;      // suj_shard_sample_ns_s<k>
};

/// \brief Wander-join walker that routes the uniform root draw by row
/// ranges, then continues the walk inside the owning shard.
class ShardedWanderJoinSampler : public WanderJoinSampler {
 public:
  static Result<std::unique_ptr<ShardedWanderJoinSampler>> Create(
      ShardedJoinIndexPtr index, CompositeIndexCache* cache);

  WalkOutcome Walk(Rng& rng) override;

 private:
  ShardedWanderJoinSampler(JoinSpecPtr join, ShardedJoinIndexPtr index)
      : WanderJoinSampler(std::move(join)), index_(std::move(index)) {}

  ShardedJoinIndexPtr index_;
  std::vector<std::unique_ptr<WanderJoinSampler>> shard_walkers_;
  std::vector<obs::Counter*> draw_counters_;  // suj_shard_walk_draws_total_s<k>
  obs::Counter* total_draws_ = nullptr;       // suj_shard_walk_draws_total
};

/// \brief Membership prober routed by the shard key hash.
///
/// Requires ShardScheme::kHashKey: an output tuple's projection onto the
/// root schema is the full root row, so its hash names the one shard
/// whose root slice can contain it. Probe results are bit-identical to
/// the canonical prober's (children are shared; the root sets partition
/// the canonical root), which the conformance tests assert.
class ShardedMembershipProber : public JoinMembershipProber {
 public:
  static Result<std::shared_ptr<const ShardedMembershipProber>> Build(
      ShardPlanPtr plan, int join_index);

  bool Contains(const Tuple& output_tuple) const override;

 private:
  ShardedMembershipProber(JoinSpecPtr join, ShardPlanPtr plan)
      : JoinMembershipProber(std::move(join)), plan_(std::move(plan)) {}

  ShardPlanPtr plan_;
  std::vector<JoinMembershipProberPtr> shard_probers_;
  /// Output-schema indexes of the root attributes in root schema order
  /// (the projection whose encoding is the shard key).
  std::vector<int> root_projection_;
};

}  // namespace suj

#endif  // SUJ_SHARD_SHARDED_JOIN_H_
