#include "shard/shard_plan.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace suj {

namespace {

// Materializes a slice [begin, end) of `rows` (canonical row order) of
// `source` as a fresh relation named `name`.
Result<RelationPtr> MaterializeRows(const Relation& source,
                                    const std::vector<uint32_t>& rows,
                                    size_t begin, size_t end,
                                    std::string name) {
  RelationBuilder builder(std::move(name), source.schema());
  for (size_t i = begin; i < end; ++i) {
    SUJ_RETURN_NOT_OK(builder.AppendTuple(source.GetTuple(rows[i])));
  }
  return builder.Finish();
}

// Partitions one join into its ShardedJoinPlan — the per-join body shared
// by the cold plan and the epoch-refresh overload.
Result<ShardedJoinPlan> PlanJoin(const JoinSpecPtr& join,
                                 const ShardOptions& options) {
  const int k = options.num_shards;
  const int v = options.virtual_partitions;
  const JoinGraph& graph = join->graph();
  const int root = graph.walk_order()[0];
  if (graph.tree_order()[0] != root) {
    // join_graph.cc roots the spanning tree at the walk start, so this
    // is unreachable for its graphs; reject rather than mis-shard if
    // that invariant ever changes.
    return Status::Unimplemented(
        "join '" + join->name() +
        "': EW-tree root and walk root differ; cannot root-partition");
  }
  const Relation& root_rel = *join->relation(root);
  const size_t n = root_rel.num_rows();

  ShardedJoinPlan jp;
  jp.root = root;

  // Virtual-partition assignment, then a vp-major stable reorder. The
  // canonical order is a pure function of (relation contents, scheme, V)
  // — never of K — which is what keeps every shard count on one byte
  // stream.
  std::vector<uint32_t> vp(n);
  for (size_t row = 0; row < n; ++row) {
    vp[row] = options.scheme == ShardScheme::kHashKey
                  ? static_cast<uint32_t>(
                        ShardKeyHash64(root_rel.GetTuple(row).Encode()) %
                        static_cast<uint64_t>(v))
                  : static_cast<uint32_t>(row * static_cast<size_t>(v) / n);
  }
  std::vector<uint32_t> canonical_rows(n);
  {
    std::vector<uint32_t> vp_count(v + 1, 0);
    for (size_t row = 0; row < n; ++row) ++vp_count[vp[row] + 1];
    for (int p = 0; p < v; ++p) vp_count[p + 1] += vp_count[p];
    for (size_t row = 0; row < n; ++row) {
      canonical_rows[vp_count[vp[row]]++] = static_cast<uint32_t>(row);
    }
  }
  jp.vp_of_row.resize(n);
  for (size_t i = 0; i < n; ++i) jp.vp_of_row[i] = vp[canonical_rows[i]];

  // Shard slice boundaries: first canonical row whose vp falls in the
  // shard's vp range.
  jp.row_begin.assign(k + 1, static_cast<uint32_t>(n));
  jp.row_begin[0] = 0;
  for (int s = 1; s < k; ++s) {
    const uint32_t vp_lo = static_cast<uint32_t>(s * v / k);
    jp.row_begin[s] = static_cast<uint32_t>(
        std::lower_bound(jp.vp_of_row.begin(), jp.vp_of_row.end(), vp_lo) -
        jp.vp_of_row.begin());
  }

  // Canonical spec: the reordered root + shared children, same edges and
  // predicates as the input join.
  auto canonical_root =
      MaterializeRows(root_rel, canonical_rows, 0, n, root_rel.name());
  if (!canonical_root.ok()) return canonical_root.status();
  std::vector<RelationPtr> canonical_rels = join->relations();
  canonical_rels[root] = std::move(canonical_root).value();
  std::vector<JoinEdge> edges;
  for (const auto& e : join->graph().edges()) {
    edges.push_back(JoinEdge{e.left, e.right});
  }
  auto canonical = JoinSpec::Create(join->name(), canonical_rels, edges,
                                    join->output_predicates());
  if (!canonical.ok()) return canonical.status();
  jp.canonical = std::move(canonical).value();

  // Per-shard specs: a slice of the canonical root, everything else the
  // shared RelationPtr (the broadcast half of the partition).
  const auto& canon_root_rel = *jp.canonical->relation(root);
  std::vector<uint32_t> identity(n);
  for (size_t i = 0; i < n; ++i) identity[i] = static_cast<uint32_t>(i);
  for (int s = 0; s < k; ++s) {
    auto slice = MaterializeRows(canon_root_rel, identity, jp.row_begin[s],
                                 jp.row_begin[s + 1],
                                 root_rel.name() + "#s" + std::to_string(s));
    if (!slice.ok()) return slice.status();
    std::vector<RelationPtr> rels = jp.canonical->relations();
    rels[root] = std::move(slice).value();
    auto spec = JoinSpec::Create(join->name() + "#s" + std::to_string(s),
                                 std::move(rels), edges,
                                 join->output_predicates());
    if (!spec.ok()) return spec.status();
    jp.shard_specs.push_back(std::move(spec).value());
  }
  return jp;
}

}  // namespace

Result<std::shared_ptr<ShardPlan>> ShardPlanner::PlanShell(
    const std::vector<JoinSpecPtr>& joins, const ShardOptions& options) {
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  const int k = options.num_shards;
  const int v = options.virtual_partitions;
  if (k < 1) return Status::InvalidArgument("num_shards must be >= 1");
  if (v < k) {
    return Status::InvalidArgument(
        "virtual_partitions (" + std::to_string(v) +
        ") must be >= num_shards (" + std::to_string(k) +
        "): every shard needs at least one vp");
  }
  auto plan = std::shared_ptr<ShardPlan>(new ShardPlan());
  plan->options_ = options;
  // vp -> shard: shard s covers [floor(s*V/K), floor((s+1)*V/K)).
  plan->shard_of_vp_.resize(v);
  for (int s = 0; s < k; ++s) {
    const int lo = s * v / k;
    const int hi = (s + 1) * v / k;
    for (int p = lo; p < hi; ++p) plan->shard_of_vp_[p] = s;
  }
  return plan;
}

Result<ShardPlanPtr> ShardPlanner::Plan(const std::vector<JoinSpecPtr>& joins,
                                        const ShardOptions& options) {
  auto shell = PlanShell(joins, options);
  if (!shell.ok()) return shell.status();
  auto plan = std::move(shell).value();
  for (const auto& join : joins) {
    auto jp = PlanJoin(join, options);
    if (!jp.ok()) return jp.status();
    plan->canonical_joins_.push_back(jp.value().canonical);
    plan->join_plans_.push_back(std::move(jp).value());
  }
  return std::shared_ptr<const ShardPlan>(plan);
}

Result<ShardPlanPtr> ShardPlanner::Plan(const std::vector<JoinSpecPtr>& joins,
                                        const ShardOptions& options,
                                        const ShardPlan& previous,
                                        uint64_t rebuild_mask) {
  if (joins.size() != previous.num_joins()) {
    return Status::InvalidArgument(
        "epoch re-plan requires positionally matching joins");
  }
  if (options.num_shards != previous.options().num_shards ||
      options.scheme != previous.options().scheme ||
      options.virtual_partitions != previous.options().virtual_partitions) {
    return Status::InvalidArgument(
        "epoch re-plan requires identical shard options");
  }
  auto shell = PlanShell(joins, options);
  if (!shell.ok()) return shell.status();
  auto plan = std::move(shell).value();
  for (size_t j = 0; j < joins.size(); ++j) {
    if ((rebuild_mask >> j) & 1) {
      auto jp = PlanJoin(joins[j], options);
      if (!jp.ok()) return jp.status();
      plan->join_plans_.push_back(std::move(jp).value());
    } else {
      // Unchanged join: the previous decomposition (canonical spec, shard
      // slices, vp map) is immutable and carries over by copy of shared
      // pointers — no rows are re-materialized.
      plan->join_plans_.push_back(previous.join_plan(static_cast<int>(j)));
    }
    plan->canonical_joins_.push_back(plan->join_plans_.back().canonical);
  }
  return std::shared_ptr<const ShardPlan>(plan);
}

}  // namespace suj
