#include "shard/shard_coordinator.h"

#include <cmath>
#include <string>
#include <utility>

namespace suj {

Result<std::unique_ptr<ShardMergedOverlapEstimator>>
ShardMergedOverlapEstimator::Create(ShardPlanPtr plan,
                                    CompositeIndexCache* cache) {
  if (plan == nullptr) return Status::InvalidArgument("null shard plan");
  auto est = std::unique_ptr<ShardMergedOverlapEstimator>(
      new ShardMergedOverlapEstimator(std::move(plan)));
  if (est->plan_->options().scheme != ShardScheme::kHashKey) {
    // Per-shard merging is only exact under CONTENT-ADDRESSED
    // partitioning: an intersection tuple then comes from the same shard
    // in every join. Range partitioning assigns the same root content to
    // different shards in different joins, so cross-shard intersection
    // mass would be lost — fall back to one canonical calculator. The
    // fallback is still exact but NOT shard-local; it is surfaced via
    // suj_shard_overlap_delegated_total so operators can see that kRowRange
    // warm-ups run centrally (see docs/ARCHITECTURE.md, "Sharding").
    auto canonical = ExactOverlapCalculator::Create(
        est->plan_->canonical_joins(), cache);
    if (!canonical.ok()) return canonical.status();
    est->canonical_ = std::move(canonical).value();
    static obs::Counter* const delegated =
        obs::MetricsRegistry::Global().GetCounter(
            "suj_shard_overlap_delegated_total");
    delegated->Increment();
    return est;
  }
  const int k = est->plan_->num_shards();
  for (int s = 0; s < k; ++s) {
    std::vector<JoinSpecPtr> shard_joins;
    shard_joins.reserve(est->plan_->num_joins());
    for (size_t j = 0; j < est->plan_->num_joins(); ++j) {
      shard_joins.push_back(
          est->plan_->join_plan(static_cast<int>(j)).shard_specs[s]);
    }
    auto calc = ExactOverlapCalculator::Create(std::move(shard_joins), cache);
    if (!calc.ok()) return calc.status();
    est->per_shard_.push_back(std::move(calc).value());
  }
  return est;
}

Result<std::unique_ptr<ShardMergedOverlapEstimator>>
ShardMergedOverlapEstimator::CreateIncremental(
    ShardPlanPtr plan, const ShardMergedOverlapEstimator& prev,
    uint64_t affected_mask, CompositeIndexCache* cache) {
  if (plan == nullptr) return Status::InvalidArgument("null shard plan");
  if (plan->num_joins() != prev.plan_->num_joins() ||
      plan->options().scheme != prev.plan_->options().scheme ||
      plan->num_shards() != prev.plan_->num_shards()) {
    return Status::InvalidArgument(
        "incremental merged-overlap refresh requires a matching plan");
  }
  auto est = std::unique_ptr<ShardMergedOverlapEstimator>(
      new ShardMergedOverlapEstimator(std::move(plan)));
  if (est->plan_->options().scheme != ShardScheme::kHashKey) {
    auto canonical = ExactOverlapCalculator::CreateIncremental(
        est->plan_->canonical_joins(), *prev.canonical_, affected_mask, cache);
    if (!canonical.ok()) return canonical.status();
    est->canonical_ = std::move(canonical).value();
    static obs::Counter* const delegated =
        obs::MetricsRegistry::Global().GetCounter(
            "suj_shard_overlap_delegated_total");
    delegated->Increment();
    return est;
  }
  const int k = est->plan_->num_shards();
  for (int s = 0; s < k; ++s) {
    std::vector<JoinSpecPtr> shard_joins;
    shard_joins.reserve(est->plan_->num_joins());
    for (size_t j = 0; j < est->plan_->num_joins(); ++j) {
      shard_joins.push_back(
          est->plan_->join_plan(static_cast<int>(j)).shard_specs[s]);
    }
    // Unaffected joins' shard specs are the SAME pointers as the previous
    // plan's, so the per-shard calculator can share their result sets.
    auto calc = ExactOverlapCalculator::CreateIncremental(
        std::move(shard_joins), *prev.per_shard_[s], affected_mask, cache);
    if (!calc.ok()) return calc.status();
    est->per_shard_.push_back(std::move(calc).value());
  }
  return est;
}

Result<double> ShardMergedOverlapEstimator::EstimateOverlap(
    SubsetMask subset) {
  if (canonical_ != nullptr) return canonical_->EstimateOverlap(subset);
  // Hash scheme: every join result (and every intersection — the hash
  // routes identical root content to one shard in all joins) is
  // partitioned by the shard root slices, so overlap cardinalities are
  // additive across shards — integer counts, so the sum is exact.
  double total = 0.0;
  for (auto& calc : per_shard_) {
    auto part = calc->EstimateOverlap(subset);
    if (!part.ok()) return part.status();
    total += part.value();
  }
  return total;
}

ShardCoordinator::ShardCoordinator(ShardPlanPtr plan)
    : plan_(std::move(plan)) {
  refresh_counter_ = obs::MetricsRegistry::Global().GetCounter(
      "suj_shard_weight_refresh_total");
  unavailable_counter_ = obs::MetricsRegistry::Global().GetCounter(
      "suj_shard_unavailable_total");
}

Result<std::shared_ptr<ShardCoordinator>> ShardCoordinator::Build(
    ShardPlanPtr plan, CompositeIndexCache* cache) {
  if (plan == nullptr) return Status::InvalidArgument("null shard plan");
  if (plan->num_shards() > 64) {
    return Status::InvalidArgument(
        "coordinator supports at most 64 shards (fail-mask word)");
  }
  auto coord =
      std::shared_ptr<ShardCoordinator>(new ShardCoordinator(std::move(plan)));
  coord->cache_ = cache;
  for (size_t j = 0; j < coord->plan_->num_joins(); ++j) {
    auto index =
        ShardedJoinIndex::Build(coord->plan_, static_cast<int>(j), cache);
    if (!index.ok()) return index.status();
    coord->join_indexes_.push_back(std::move(index).value());
  }
  SUJ_RETURN_NOT_OK(coord->RefreshWeights());
  return coord;
}

Result<std::shared_ptr<ShardCoordinator>> ShardCoordinator::Build(
    ShardPlanPtr plan, CompositeIndexCache* cache,
    const ShardCoordinator& previous, uint64_t rebuild_mask) {
  if (plan == nullptr) return Status::InvalidArgument("null shard plan");
  if (plan->num_joins() != previous.plan_->num_joins()) {
    return Status::InvalidArgument(
        "epoch coordinator refresh requires positionally matching joins");
  }
  auto coord =
      std::shared_ptr<ShardCoordinator>(new ShardCoordinator(std::move(plan)));
  coord->cache_ = cache;
  for (size_t j = 0; j < coord->plan_->num_joins(); ++j) {
    if ((rebuild_mask >> j) & 1) {
      auto index =
          ShardedJoinIndex::Build(coord->plan_, static_cast<int>(j), cache);
      if (!index.ok()) return index.status();
      coord->join_indexes_.push_back(std::move(index).value());
    } else {
      // Unchanged join: the sharded index is immutable and built over the
      // same canonical spec the new plan carries forward — share it.
      coord->join_indexes_.push_back(previous.join_indexes_[j]);
    }
  }
  SUJ_RETURN_NOT_OK(coord->RefreshWeights());
  return coord;
}

Result<std::vector<std::unique_ptr<JoinSampler>>>
ShardCoordinator::MakeSamplers() const {
  std::vector<std::unique_ptr<JoinSampler>> samplers;
  samplers.reserve(join_indexes_.size());
  for (const auto& index : join_indexes_) {
    auto sampler = ShardedJoinSampler::Create(index);
    if (!sampler.ok()) return sampler.status();
    samplers.push_back(std::move(sampler).value());
  }
  return samplers;
}

Result<std::unique_ptr<WanderJoinSampler>> ShardCoordinator::MakeWanderSampler(
    int j) const {
  if (j < 0 || static_cast<size_t>(j) >= join_indexes_.size()) {
    return Status::InvalidArgument("join index out of range");
  }
  auto walker = ShardedWanderJoinSampler::Create(join_indexes_[j], cache_);
  if (!walker.ok()) return walker.status();
  return std::unique_ptr<WanderJoinSampler>(std::move(walker).value());
}

Result<std::vector<JoinMembershipProberPtr>>
ShardCoordinator::BuildRoutedProbers() const {
  std::vector<JoinMembershipProberPtr> probers;
  probers.reserve(plan_->num_joins());
  for (size_t j = 0; j < plan_->num_joins(); ++j) {
    auto prober = ShardedMembershipProber::Build(plan_, static_cast<int>(j));
    if (!prober.ok()) return prober.status();
    probers.push_back(std::move(prober).value());
  }
  return probers;
}

std::vector<double> ShardCoordinator::shard_union_weights() const {
  std::lock_guard<std::mutex> lock(weights_mu_);
  return shard_union_weights_;
}

Status ShardCoordinator::RefreshWeights() {
  const int k = num_shards();
  std::vector<double> weights(k, 0.0);
  double global = 0.0;
  for (const auto& index : join_indexes_) {
    const std::vector<double>& boundary = index->weight_boundary();
    for (int s = 0; s < k; ++s) {
      weights[s] += boundary[s + 1] - boundary[s];
    }
    global += index->TotalWeight();
  }
  double merged = 0.0;
  for (double w : weights) merged += w;
  // All addends are integer-valued EW totals, so the two sums must agree
  // to the last bit; a mismatch means a shard's index drifted from the
  // plan (or weights stopped being integers) and routing is unsound.
  if (merged != global) {
    return Status::Internal(
        "shard weight merge mismatch: sum of shard weights " +
        std::to_string(merged) + " != union total " + std::to_string(global));
  }
  {
    std::lock_guard<std::mutex> lock(weights_mu_);
    shard_union_weights_ = std::move(weights);
  }
  weight_refreshes_.fetch_add(1, std::memory_order_relaxed);
  refresh_counter_->Increment();
  return Status::OK();
}

void ShardCoordinator::FailShard(int s) {
  if (s < 0 || s >= num_shards()) return;
  failed_mask_.fetch_or(uint64_t{1} << s, std::memory_order_acq_rel);
}

void ShardCoordinator::RestoreShard(int s) {
  if (s < 0 || s >= num_shards()) return;
  failed_mask_.fetch_and(~(uint64_t{1} << s), std::memory_order_acq_rel);
}

Status ShardCoordinator::CheckAvailable() const {
  const uint64_t mask = failed_mask_.load(std::memory_order_acquire);
  if (mask == 0) return Status::OK();
  unavailable_errors_.fetch_add(1, std::memory_order_relaxed);
  unavailable_counter_->Increment();
  int first = 0;
  while (((mask >> first) & 1) == 0) ++first;
  return Status::Unavailable("shard " + std::to_string(first) +
                             " unreachable; union draws cannot be routed");
}

}  // namespace suj
