// ShardPlanner: prepare-time horizontal partitioning of a union-of-joins
// query into N in-process shards.
//
// The union protocol (Algorithm 1/2) only ever talks to a join through two
// uniform draws: a root row proportional to exact weights (EW) or a uniform
// root row (wander walks), followed by a descent whose randomness depends
// only on the chosen rows. Partitioning the ROOT relation of each join's
// spanning tree therefore shards the whole sampler: every non-root relation
// is broadcast (shared by pointer, zero copy), shard s owns a slice of the
// root rows, and a draw routes to exactly one shard. The root of the EW
// spanning tree and of the walk order coincide by construction
// (join_graph.cc roots both at walk_order()[0]), so one partition serves
// both machineries.
//
// Cross-shard determinism rests on a K-invariant canonical order: rows are
// assigned to V fixed VIRTUAL partitions (V independent of the shard count)
// and reordered vp-major into a canonical root relation; shard s of K takes
// the contiguous vp range [floor(s*V/K), floor((s+1)*V/K)). The canonical
// relations — and hence every weight, index, and RNG draw — are identical
// for every K, which is what makes N-shard output byte-identical to the
// unsharded sampler over the same canonical specs.

#ifndef SUJ_SHARD_SHARD_PLAN_H_
#define SUJ_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "join/join_spec.h"

namespace suj {

/// How root rows map to virtual partitions.
enum class ShardScheme {
  /// vp = Hash64(encoded root row) % V. Content-addressed: an output
  /// tuple's root projection hashes to the same vp, so membership probes
  /// route to exactly one shard. The default.
  kHashKey,
  /// vp = row * V / num_rows: contiguous row ranges, the classic range
  /// partition. Cheapest to compute; membership probes cannot be routed
  /// by content and fall back to the canonical probers.
  kRowRange,
};

/// Prepare-time sharding knobs.
struct ShardOptions {
  /// Shard count; 1 disables sharding (callers get the classic plan).
  int num_shards = 1;
  ShardScheme scheme = ShardScheme::kHashKey;
  /// Fixed virtual-partition count V. Every supported shard count must
  /// divide the canonical order identically, so V is part of the plan's
  /// identity: two deployments agree on bytes iff they agree on V.
  int virtual_partitions = 64;
};

/// Deterministic 64-bit FNV-1a over bytes: the shard key hash. Pinned here
/// (not std::hash) so canonical orders are stable across platforms and
/// library versions.
inline uint64_t ShardKeyHash64(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// \brief One join's shard decomposition.
struct ShardedJoinPlan {
  /// The join over the canonical (vp-major reordered) root relation.
  /// This is the spec the union layer sees; byte-identity is defined
  /// against an unsharded sampler over exactly this spec.
  JoinSpecPtr canonical;
  /// Relation index of the partitioned root (== graph().tree_order()[0]
  /// == graph().walk_order()[0]).
  int root = 0;
  /// Per-shard specs: shard s's root holds canonical rows
  /// [row_begin[s], row_begin[s+1]); all other relations are the shared
  /// RelationPtr of `canonical`.
  std::vector<JoinSpecPtr> shard_specs;
  /// K+1 canonical row offsets of the shard slices.
  std::vector<uint32_t> row_begin;
  /// Virtual partition of each canonical root row (vp-major, so this is
  /// non-decreasing).
  std::vector<uint32_t> vp_of_row;
};

/// \brief Immutable shard plan for a whole union.
class ShardPlan {
 public:
  int num_shards() const { return options_.num_shards; }
  const ShardOptions& options() const { return options_; }
  /// Canonical joins, one per input join (cover order preserved). An
  /// unsharded sampler over these is the byte-identity reference.
  const std::vector<JoinSpecPtr>& canonical_joins() const {
    return canonical_joins_;
  }
  const ShardedJoinPlan& join_plan(int j) const { return join_plans_[j]; }
  size_t num_joins() const { return join_plans_.size(); }
  /// Shard covering virtual partition vp (same mapping for every join).
  int shard_of_vp(uint32_t vp) const { return shard_of_vp_[vp]; }

 private:
  friend class ShardPlanner;
  ShardPlan() = default;

  ShardOptions options_;
  std::vector<JoinSpecPtr> canonical_joins_;
  std::vector<ShardedJoinPlan> join_plans_;
  std::vector<int> shard_of_vp_;
};

using ShardPlanPtr = std::shared_ptr<const ShardPlan>;

/// \brief Builds ShardPlans.
class ShardPlanner {
 public:
  /// Partitions every join of the union. Fails when a join's EW-tree root
  /// and walk root disagree (cannot happen for graphs built by
  /// JoinGraph::Build; checked defensively) or options are out of range.
  static Result<ShardPlanPtr> Plan(const std::vector<JoinSpecPtr>& joins,
                                   const ShardOptions& options);

  /// Epoch refresh: re-partitions ONLY the joins whose bit is set in
  /// `rebuild_mask` (those touching a relation folded by a delta) and
  /// copies the previous plan's per-join decomposition — canonical spec,
  /// shard slices, vp map — for the rest. `previous` must have been built
  /// with the same options over positionally matching joins, and for every
  /// clear bit `joins[j]` must be unchanged since `previous` was planned.
  static Result<ShardPlanPtr> Plan(const std::vector<JoinSpecPtr>& joins,
                                   const ShardOptions& options,
                                   const ShardPlan& previous,
                                   uint64_t rebuild_mask);

 private:
  /// Validates options and builds an empty plan with the vp -> shard map.
  static Result<std::shared_ptr<ShardPlan>> PlanShell(
      const std::vector<JoinSpecPtr>& joins, const ShardOptions& options);
};

}  // namespace suj

#endif  // SUJ_SHARD_SHARD_PLAN_H_
