// ShardCoordinator: the union-level owner of a shard plan.
//
// The coordinator holds the per-join ShardedJoinIndexes, hands the union
// protocol routed samplers/walkers/probers that are byte-compatible with
// their unsharded counterparts, and owns the cross-shard weight ledger:
// each shard's union weight is the sum over joins of that shard's EW
// total, and the merge invariant sum_s w_s == sum_j TotalWeight_j holds
// EXACTLY (integer sums). Shard failure is modeled as a coordinator-level
// fail mask — in-process shards cannot crash, so fault-injection tests
// (and the serving stack's availability check) flow through
// FailShard/CheckAvailable.
//
// ShardMergedOverlapEstimator is the warm-up half of the merge math: it
// answers |O_Delta| as the sum of per-shard overlaps (the shard root
// slices partition every join result, so every intersection partitions
// too), making the sharded exact warm-up provably equal to the canonical
// one — the determinism suite asserts equality to the last bit.

#ifndef SUJ_SHARD_SHARD_COORDINATOR_H_
#define SUJ_SHARD_SHARD_COORDINATOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "core/exact_overlap.h"
#include "core/overlap_estimator.h"
#include "obs/metrics.h"
#include "shard/sharded_join.h"

namespace suj {

/// \brief Exact overlap estimator that merges per-shard calculators.
class ShardMergedOverlapEstimator : public OverlapEstimator {
 public:
  /// Builds one ExactOverlapCalculator per shard (over that shard's join
  /// slices). joins() reports the CANONICAL specs: callers cannot tell
  /// this estimator from ExactOverlapCalculator over the canonical union.
  /// Per-shard merging requires content-addressed partitioning
  /// (kHashKey); for kRowRange the estimator transparently delegates to
  /// one canonical calculator (still exact — just not shard-local).
  static Result<std::unique_ptr<ShardMergedOverlapEstimator>> Create(
      ShardPlanPtr plan, CompositeIndexCache* cache = nullptr);

  /// Epoch refresh: re-materializes ONLY the joins whose bit is set in
  /// `affected_mask`, sharing `prev`'s per-shard (or canonical-fallback)
  /// result sets for the rest. `plan` must be the epoch re-plan of
  /// `prev.plan_` with the same mask and options.
  static Result<std::unique_ptr<ShardMergedOverlapEstimator>>
  CreateIncremental(ShardPlanPtr plan, const ShardMergedOverlapEstimator& prev,
                    uint64_t affected_mask,
                    CompositeIndexCache* cache = nullptr);

  const std::vector<JoinSpecPtr>& joins() const override {
    return plan_->canonical_joins();
  }
  /// Sum over shards of the shard's exact |O_Delta| — exact because the
  /// shard root slices partition every join result and every overlap.
  Result<double> EstimateOverlap(SubsetMask subset) override;
  bool IsUpperBound() const override { return false; }

  const ExactOverlapCalculator& shard_calculator(int s) const {
    return *per_shard_[s];
  }

 private:
  explicit ShardMergedOverlapEstimator(ShardPlanPtr plan)
      : plan_(std::move(plan)) {}

  ShardPlanPtr plan_;
  std::vector<std::unique_ptr<ExactOverlapCalculator>> per_shard_;
  /// kRowRange fallback: one calculator over the canonical union.
  std::unique_ptr<ExactOverlapCalculator> canonical_;
};

/// \brief Owns the sharded execution state of one prepared union.
class ShardCoordinator {
 public:
  /// Builds the per-join sharded indexes over `cache` (which must outlive
  /// the coordinator; shared children dedupe through it).
  static Result<std::shared_ptr<ShardCoordinator>> Build(
      ShardPlanPtr plan, CompositeIndexCache* cache);

  /// Epoch refresh: rebuilds ONLY the joins whose bit is set in
  /// `rebuild_mask` and shares the previous coordinator's immutable
  /// ShardedJoinIndexes for the rest (a shared index keeps its own — old —
  /// ShardPlanPtr alive; bounded retention, at most one plan per join),
  /// then re-derives the weight ledger and re-verifies the merge invariant.
  /// `plan` must come from ShardPlanner's epoch re-plan over
  /// `previous.plan()` with the same mask.
  static Result<std::shared_ptr<ShardCoordinator>> Build(
      ShardPlanPtr plan, CompositeIndexCache* cache,
      const ShardCoordinator& previous, uint64_t rebuild_mask);

  const ShardPlanPtr& plan() const { return plan_; }
  int num_shards() const { return plan_->num_shards(); }
  const std::vector<JoinSpecPtr>& joins() const {
    return plan_->canonical_joins();
  }
  const ShardedJoinIndexPtr& join_index(int j) const {
    return join_indexes_[j];
  }

  /// One routed sampler per join, in cover order. Cheap (indexes are
  /// prebuilt), so per-worker sampler factories call this per worker.
  Result<std::vector<std::unique_ptr<JoinSampler>>> MakeSamplers() const;
  /// Routed wander walker for join j (for warm-up estimators and the
  /// online sampler; per-step RNG stream identical to the plain walker).
  Result<std::unique_ptr<WanderJoinSampler>> MakeWanderSampler(int j) const;
  /// Hash-routed membership probers (kHashKey scheme only; callers fall
  /// back to canonical probers for kRowRange).
  Result<std::vector<JoinMembershipProberPtr>> BuildRoutedProbers() const;

  /// Per-shard union weights w_s = sum_j (shard s's EW total of join j),
  /// refreshed by RefreshWeights(). w_s / sum w_s is shard s's share of
  /// root draws in the long run.
  std::vector<double> shard_union_weights() const;
  /// Recomputes the ledger from the indexes and verifies the merge
  /// invariant sum_s w_s == sum_j TotalWeight_j exactly.
  Status RefreshWeights();
  uint64_t weight_refreshes() const {
    return weight_refreshes_.load(std::memory_order_relaxed);
  }

  /// Marks shard `s` unreachable/reachable. Sampling through a plan whose
  /// coordinator has any failed shard fails fast with kUnavailable (a
  /// routed draw could land on the dead shard, and silently re-routing
  /// would bias the sample).
  void FailShard(int s);
  void RestoreShard(int s);
  bool shard_failed(int s) const {
    return (failed_mask_.load(std::memory_order_acquire) >> s) & 1;
  }
  /// OK iff no shard is failed; otherwise kUnavailable (and counts the
  /// rejection in unavailable_errors / suj_shard_unavailable_total).
  Status CheckAvailable() const;
  uint64_t unavailable_errors() const {
    return unavailable_errors_.load(std::memory_order_relaxed);
  }

 private:
  explicit ShardCoordinator(ShardPlanPtr plan);

  ShardPlanPtr plan_;
  CompositeIndexCache* cache_ = nullptr;
  std::vector<ShardedJoinIndexPtr> join_indexes_;

  mutable std::mutex weights_mu_;
  std::vector<double> shard_union_weights_;  // guarded by weights_mu_
  std::atomic<uint64_t> weight_refreshes_{0};

  std::atomic<uint64_t> failed_mask_{0};
  mutable std::atomic<uint64_t> unavailable_errors_{0};
  obs::Counter* refresh_counter_ = nullptr;      // suj_shard_weight_refresh_total
  obs::Counter* unavailable_counter_ = nullptr;  // suj_shard_unavailable_total
};

using ShardCoordinatorPtr = std::shared_ptr<ShardCoordinator>;

}  // namespace suj

#endif  // SUJ_SHARD_SHARD_COORDINATOR_H_
