#include "workloads/tpch_workloads.h"

#include "workloads/synthetic.h"

namespace suj {
namespace workloads {

Result<UnionWorkload> BuildUQ1(const tpch::OverlapConfig& config) {
  tpch::OverlapVariantGenerator generator(config);
  auto variants = generator.Generate();
  if (!variants.ok()) return variants.status();

  UnionWorkload workload;
  for (int v = 0; v < static_cast<int>(variants->size()); ++v) {
    const tpch::VariantDb& db = (*variants)[v];
    // Chain: supplier - nation - customer - orders - lineitem. The chain is
    // declared explicitly because `nationkey` is shared by three relations
    // (supplier/nation/customer), which would otherwise read as a clique.
    std::vector<RelationPtr> rels = {db.supplier, db.nation, db.customer,
                                     db.orders, db.lineitem};
    std::vector<JoinEdge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
    auto join = JoinSpec::Create("UQ1_J" + std::to_string(v),
                                 std::move(rels), std::move(edges));
    if (!join.ok()) return join.status();
    workload.joins.push_back(std::move(join).value());
    workload.catalog.Upsert(db.supplier);
    workload.catalog.Upsert(db.nation);
    workload.catalog.Upsert(db.customer);
    workload.catalog.Upsert(db.orders);
    workload.catalog.Upsert(db.lineitem);
  }
  return workload;
}

Result<UnionWorkload> BuildUQ2(const tpch::TpchConfig& config,
                               bool pushdown) {
  tpch::TpchGenerator generator(config);
  auto catalog = generator.Generate();
  if (!catalog.ok()) return catalog.status();

  auto get = [&](const char* name) {
    return catalog->Get(name).value();  // generator registers all tables
  };
  RelationPtr region = get("region");
  RelationPtr nation = get("nation");
  RelationPtr supplier = get("supplier");
  RelationPtr partsupp = get("partsupp");
  RelationPtr part = get("part");

  // Predicate families after Q2^N / Q2^S / Q2^P: one moderately selective
  // attribute per "branch" of the union. Selectivities (~0.6 / ~0.65 /
  // ~0.7) are chosen so the three results overlap heavily (the paper's
  // "large overlap scale") while each join keeps a non-empty exclusive
  // region.
  std::vector<std::vector<Predicate>> predicate_sets = {
      {Predicate("regionkey", CompareOp::kLe, Value::Int64(2))},
      {Predicate("s_acctbal", CompareOp::kGe, Value::Double(2500.0))},
      {Predicate("p_size", CompareOp::kLe, Value::Int64(35))},
  };
  const char* names[] = {"UQ2_N", "UQ2_S", "UQ2_P"};

  UnionWorkload workload;
  for (int q = 0; q < 3; ++q) {
    std::vector<RelationPtr> rels = {region, nation, supplier, partsupp,
                                     part};
    std::vector<Predicate> on_the_fly;
    if (pushdown) {
      // Pre-filter every relation the predicate applies to (§8.3 first
      // paradigm). FilterRelation skips predicates on absent attributes.
      for (auto& rel : rels) {
        bool applies = false;
        for (const auto& p : predicate_sets[q]) {
          if (rel->schema().HasField(p.attribute())) applies = true;
        }
        if (applies) {
          auto filtered = FilterRelation(rel, predicate_sets[q]);
          if (!filtered.ok()) return filtered.status();
          rel = std::move(filtered).value();
        }
      }
    } else {
      on_the_fly = predicate_sets[q];
    }
    std::vector<JoinEdge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
    auto join = JoinSpec::Create(names[q], rels, std::move(edges),
                                 std::move(on_the_fly));
    if (!join.ok()) return join.status();
    workload.joins.push_back(std::move(join).value());
    for (const auto& rel : rels) workload.catalog.Upsert(rel);
  }
  return workload;
}

Result<UnionWorkload> BuildUQ3(const tpch::TpchConfig& config,
                               double window) {
  if (window <= 0.0 || window > 1.0) {
    return Status::InvalidArgument("window must be in (0, 1]");
  }
  tpch::TpchGenerator generator(config);
  auto catalog = generator.Generate();
  if (!catalog.ok()) return catalog.status();
  RelationPtr supplier = catalog->Get("supplier").value();
  RelationPtr customer = catalog->Get("customer").value();
  RelationPtr orders = catalog->Get("orders").value();

  // Horizontal windows: join q sees rows [q * step, q * step + window) of
  // each base table, so consecutive joins overlap on most of their data.
  const double step = (1.0 - window) / 2.0;
  auto slice = [&](const RelationPtr& rel, int q, const char* tag) {
    double lo = step * q;
    return SliceRelation(rel, lo, lo + window,
                         std::string(rel->name()) + "_" + tag);
  };

  UnionWorkload workload;

  // J0: chain supplier - customer - orders.
  {
    auto sup = slice(supplier, 0, "q0");
    if (!sup.ok()) return sup.status();
    auto cust = slice(customer, 0, "q0");
    if (!cust.ok()) return cust.status();
    auto ord = slice(orders, 0, "q0");
    if (!ord.ok()) return ord.status();
    std::vector<RelationPtr> rels = {std::move(sup).value(),
                                     std::move(cust).value(),
                                     std::move(ord).value()};
    std::vector<JoinEdge> edges = {{0, 1}, {1, 2}};
    auto join = JoinSpec::Create("UQ3_J0", rels, std::move(edges));
    if (!join.ok()) return join.status();
    workload.joins.push_back(std::move(join).value());
    for (const auto& r : rels) workload.catalog.Upsert(r);
  }

  // J1: chain with customer split vertically in two:
  // supplier - custA(custkey, nationkey) - custB(rest) - orders.
  {
    auto sup = slice(supplier, 1, "q1");
    if (!sup.ok()) return sup.status();
    auto cust = slice(customer, 1, "q1");
    if (!cust.ok()) return cust.status();
    auto ord = slice(orders, 1, "q1");
    if (!ord.ok()) return ord.status();
    auto cust_a = ProjectRelation(*cust, {"custkey", "nationkey"},
                                  "customer_q1A");
    if (!cust_a.ok()) return cust_a.status();
    auto cust_b = ProjectRelation(
        *cust, {"custkey", "c_mktsegment", "c_acctbal"}, "customer_q1B");
    if (!cust_b.ok()) return cust_b.status();
    std::vector<RelationPtr> rels = {
        std::move(sup).value(), std::move(cust_a).value(),
        std::move(cust_b).value(), std::move(ord).value()};
    std::vector<JoinEdge> edges = {{0, 1}, {1, 2}, {2, 3}};
    auto join = JoinSpec::Create("UQ3_J1", rels, std::move(edges));
    if (!join.ok()) return join.status();
    workload.joins.push_back(std::move(join).value());
    for (const auto& r : rels) workload.catalog.Upsert(r);
  }

  // J2: acyclic star with customer split in three around the custkey hub.
  {
    auto sup = slice(supplier, 2, "q2");
    if (!sup.ok()) return sup.status();
    auto cust = slice(customer, 2, "q2");
    if (!cust.ok()) return cust.status();
    auto ord = slice(orders, 2, "q2");
    if (!ord.ok()) return ord.status();
    auto cust_a = ProjectRelation(*cust, {"custkey", "nationkey"},
                                  "customer_q2A");
    if (!cust_a.ok()) return cust_a.status();
    auto cust_b = ProjectRelation(*cust, {"custkey", "c_acctbal"},
                                  "customer_q2B");
    if (!cust_b.ok()) return cust_b.status();
    auto cust_c = ProjectRelation(*cust, {"custkey", "c_mktsegment"},
                                  "customer_q2C");
    if (!cust_c.ok()) return cust_c.status();
    std::vector<RelationPtr> rels = {
        std::move(sup).value(), std::move(cust_a).value(),
        std::move(cust_b).value(), std::move(cust_c).value(),
        std::move(ord).value()};
    // Star around custA: supplier via nationkey; custB, custC, orders via
    // custkey.
    std::vector<JoinEdge> edges = {{0, 1}, {1, 2}, {1, 3}, {1, 4}};
    auto join = JoinSpec::Create("UQ3_J2", rels, std::move(edges));
    if (!join.ok()) return join.status();
    workload.joins.push_back(std::move(join).value());
    for (const auto& r : rels) workload.catalog.Upsert(r);
  }
  return workload;
}

}  // namespace workloads
}  // namespace suj
