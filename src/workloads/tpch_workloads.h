// The paper's evaluation workloads (§9), built on the TPC-H generator:
//
//  * UQ1 -- five chain joins, one per region-variant database, each over
//    supplier |><| nation |><| customer |><| orders |><| lineitem, with the
//    overlap scale P controlling the shared row fraction across variants.
//  * UQ2 -- three chain joins over region |><| nation |><| supplier |><|
//    partsupp |><| part on the SAME data, differentiated by selection
//    predicates (after Carmeli et al.'s Q2^N + Q2^P + Q2^S), giving a large
//    overlap scale. Predicates can be pushed down (pre-filtered relations)
//    or evaluated on the fly during sampling (§8.3).
//  * UQ3 -- one acyclic join and two chain joins over supplier, customer,
//    and orders, split vertically and horizontally so the joins have
//    different lengths and schemas; exercising UQ3 therefore requires the
//    splitting method (§5.2).

#ifndef SUJ_WORKLOADS_TPCH_WORKLOADS_H_
#define SUJ_WORKLOADS_TPCH_WORKLOADS_H_

#include <vector>

#include "common/result.h"
#include "join/join_spec.h"
#include "storage/catalog.h"
#include "tpch/overlap_generator.h"

namespace suj {
namespace workloads {

/// A union-of-joins workload: the joins plus the owning data.
struct UnionWorkload {
  std::vector<JoinSpecPtr> joins;
  /// Keeps every relation referenced by the joins alive.
  Catalog catalog;
};

/// UQ1: `config.num_variants` chain joins over the variant databases.
Result<UnionWorkload> BuildUQ1(const tpch::OverlapConfig& config);

/// UQ2: three predicate-differentiated chain joins over one database.
/// `pushdown` selects §8.3's predicate paradigm: true pre-filters the base
/// relations; false attaches on-the-fly output predicates to the joins.
Result<UnionWorkload> BuildUQ2(const tpch::TpchConfig& config,
                               bool pushdown = true);

/// UQ3: one acyclic + two chain joins over vertically/horizontally split
/// supplier/customer/orders. `window` controls the horizontal row windows
/// (larger window -> larger overlap between the joins' base data).
Result<UnionWorkload> BuildUQ3(const tpch::TpchConfig& config,
                               double window = 0.85);

}  // namespace workloads
}  // namespace suj

#endif  // SUJ_WORKLOADS_TPCH_WORKLOADS_H_
