#include "workloads/synthetic.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"

namespace suj {
namespace workloads {

Result<RelationPtr> MakeRelation(
    const std::string& name, const std::vector<std::string>& attrs,
    const std::vector<std::vector<int64_t>>& rows) {
  std::vector<Field> fields;
  fields.reserve(attrs.size());
  for (const auto& a : attrs) fields.push_back({a, ValueType::kInt64});
  RelationBuilder builder(name, Schema(std::move(fields)));
  for (const auto& row : rows) {
    std::vector<Value> values;
    values.reserve(row.size());
    for (int64_t v : row) values.push_back(Value::Int64(v));
    SUJ_RETURN_NOT_OK(builder.AppendRow(std::move(values)));
  }
  return builder.Finish();
}

Result<RelationPtr> SliceRelation(const RelationPtr& rel, double start_frac,
                                  double end_frac, std::string name) {
  if (rel == nullptr) return Status::InvalidArgument("null relation");
  if (start_frac < 0.0 || end_frac > 1.0 || start_frac > end_frac) {
    return Status::InvalidArgument("invalid slice range");
  }
  size_t n = rel->num_rows();
  size_t begin = static_cast<size_t>(start_frac * static_cast<double>(n));
  size_t end = static_cast<size_t>(end_frac * static_cast<double>(n));
  RelationBuilder builder(std::move(name), rel->schema());
  for (size_t row = begin; row < end; ++row) {
    SUJ_RETURN_NOT_OK(builder.AppendTuple(rel->GetTuple(row)));
  }
  return builder.Finish();
}

Result<RelationPtr> ProjectRelation(const RelationPtr& rel,
                                    const std::vector<std::string>& attrs,
                                    std::string name) {
  if (rel == nullptr) return Status::InvalidArgument("null relation");
  auto schema = rel->schema().Project(attrs);
  if (!schema.ok()) return schema.status();
  std::vector<int> cols;
  for (const auto& a : attrs) cols.push_back(rel->schema().FieldIndex(a));
  RelationBuilder builder(std::move(name), std::move(schema).value());
  for (size_t row = 0; row < rel->num_rows(); ++row) {
    SUJ_RETURN_NOT_OK(builder.AppendTuple(rel->ProjectRow(row, cols)));
  }
  return builder.Finish();
}

Result<std::vector<JoinSpecPtr>> MakeOverlappingChains(
    const SyntheticChainOptions& options) {
  if (options.num_joins < 1 || options.num_relations < 1) {
    return Status::InvalidArgument("need >= 1 join and >= 1 relation");
  }
  if (options.keep_probability <= 0.0 || options.keep_probability > 1.0) {
    return Status::InvalidArgument("keep_probability must be in (0, 1]");
  }
  Rng rng(options.seed);
  const int m = options.num_relations;
  const size_t domain = std::max<size_t>(
      1, options.master_rows / std::max(1, options.max_degree));

  // Master relations M_i over attributes (A_{i-1}, A_i); rows are distinct.
  std::vector<std::vector<std::vector<int64_t>>> masters(m);
  for (int i = 0; i < m; ++i) {
    std::unordered_set<int64_t> seen;
    while (masters[i].size() < options.master_rows) {
      int64_t a = static_cast<int64_t>(rng.UniformInt(domain));
      int64_t b = static_cast<int64_t>(rng.UniformInt(domain));
      int64_t packed = a * static_cast<int64_t>(domain + 1) + b;
      if (seen.insert(packed).second) {
        masters[i].push_back({a, b});
      }
      if (seen.size() >= domain * domain) break;  // domain exhausted
    }
  }

  std::vector<JoinSpecPtr> joins;
  for (int j = 0; j < options.num_joins; ++j) {
    std::vector<RelationPtr> relations;
    for (int i = 0; i < m; ++i) {
      std::vector<std::string> attrs = {"A" + std::to_string(i),
                                        "A" + std::to_string(i + 1)};
      std::vector<std::vector<int64_t>> rows;
      for (const auto& row : masters[i]) {
        switch (options.mode) {
          case OverlapMode::kIdentical:
            rows.push_back(row);
            break;
          case OverlapMode::kDisjoint: {
            int64_t off = static_cast<int64_t>(j + 1) * 1'000'000;
            rows.push_back({row[0] + off, row[1] + off});
            break;
          }
          case OverlapMode::kRandomSubset:
            if (rng.Bernoulli(options.keep_probability)) {
              rows.push_back(row);
            }
            break;
        }
      }
      auto rel = MakeRelation(
          "J" + std::to_string(j) + "_R" + std::to_string(i), attrs, rows);
      if (!rel.ok()) return rel.status();
      relations.push_back(std::move(rel).value());
    }
    auto spec = JoinSpec::Create("J" + std::to_string(j),
                                 std::move(relations));
    if (!spec.ok()) return spec.status();
    joins.push_back(std::move(spec).value());
  }
  return joins;
}

Result<JoinSpecPtr> MakeTriangleJoin(size_t rows, uint64_t seed,
                                     const std::string& prefix) {
  Rng rng(seed);
  const size_t domain = std::max<size_t>(2, rows / 3);
  auto random_rows = [&](size_t n) {
    std::vector<std::vector<int64_t>> out;
    std::unordered_set<int64_t> seen;
    while (out.size() < n && seen.size() < domain * domain) {
      int64_t a = static_cast<int64_t>(rng.UniformInt(domain));
      int64_t b = static_cast<int64_t>(rng.UniformInt(domain));
      if (seen.insert(a * static_cast<int64_t>(domain + 1) + b).second) {
        out.push_back({a, b});
      }
    }
    return out;
  };
  auto r = MakeRelation(prefix + "_R", {"A", "B"}, random_rows(rows));
  if (!r.ok()) return r.status();
  auto s = MakeRelation(prefix + "_S", {"B", "C"}, random_rows(rows));
  if (!s.ok()) return s.status();
  auto t = MakeRelation(prefix + "_T", {"C", "A"}, random_rows(rows));
  if (!t.ok()) return t.status();
  return JoinSpec::Create(prefix, {std::move(r).value(), std::move(s).value(),
                                   std::move(t).value()});
}

Result<JoinSpecPtr> MakeStarJoin(size_t rows, uint64_t seed,
                                 const std::string& prefix) {
  Rng rng(seed);
  const size_t domain = std::max<size_t>(2, rows / 3);
  std::vector<std::vector<int64_t>> hub_rows;
  {
    std::unordered_set<std::string> seen;
    while (hub_rows.size() < rows) {
      std::vector<int64_t> row(4);
      std::string key;
      for (auto& v : row) {
        v = static_cast<int64_t>(rng.UniformInt(domain));
        key += std::to_string(v) + "/";
      }
      if (seen.insert(key).second) hub_rows.push_back(std::move(row));
      if (seen.size() >= domain * domain * domain * domain) break;
    }
  }
  auto leaf_rows = [&](size_t n) {
    std::vector<std::vector<int64_t>> out;
    std::unordered_set<int64_t> seen;
    while (out.size() < n && seen.size() < domain * domain) {
      int64_t a = static_cast<int64_t>(rng.UniformInt(domain));
      int64_t b = static_cast<int64_t>(rng.UniformInt(domain));
      if (seen.insert(a * static_cast<int64_t>(domain + 1) + b).second) {
        out.push_back({a, b});
      }
    }
    return out;
  };
  auto hub = MakeRelation(prefix + "_H", {"A", "B", "C", "D"}, hub_rows);
  if (!hub.ok()) return hub.status();
  auto l1 = MakeRelation(prefix + "_L1", {"B", "E"}, leaf_rows(rows));
  if (!l1.ok()) return l1.status();
  auto l2 = MakeRelation(prefix + "_L2", {"C", "F"}, leaf_rows(rows));
  if (!l2.ok()) return l2.status();
  auto l3 = MakeRelation(prefix + "_L3", {"D", "G"}, leaf_rows(rows));
  if (!l3.ok()) return l3.status();
  return JoinSpec::Create(
      prefix, {std::move(hub).value(), std::move(l1).value(),
               std::move(l2).value(), std::move(l3).value()});
}

}  // namespace workloads
}  // namespace suj
