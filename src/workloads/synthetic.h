// Synthetic workloads: small, fully controllable unions of joins used by
// unit tests, property sweeps, and micro-benchmarks.
//
// The central generator draws every join's relations as random subsets of
// shared master relations, which produces unions whose overlap structure is
// rich (all orders of k-overlap occur) yet exactly computable by the
// FullJoinUnion baseline -- ideal for validating Theorem 3, the cover
// computation, and sampler uniformity.

#ifndef SUJ_WORKLOADS_SYNTHETIC_H_
#define SUJ_WORKLOADS_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "join/join_spec.h"

namespace suj {
namespace workloads {

/// Builds an INT64 relation from literal rows (tests).
Result<RelationPtr> MakeRelation(
    const std::string& name, const std::vector<std::string>& attrs,
    const std::vector<std::vector<int64_t>>& rows);

/// Horizontal slice: rows in [start_frac, end_frac) of `rel`.
Result<RelationPtr> SliceRelation(const RelationPtr& rel, double start_frac,
                                  double end_frac, std::string name);

/// Vertical split: projection onto `attrs` (row order preserved; callers
/// must keep a key attribute to preserve duplicate-freeness).
Result<RelationPtr> ProjectRelation(const RelationPtr& rel,
                                    const std::vector<std::string>& attrs,
                                    std::string name);

/// How the joins of a synthetic union relate to each other.
enum class OverlapMode {
  kRandomSubset,  ///< each relation is a random subset of a shared master
  kIdentical,     ///< all joins identical (maximum overlap)
  kDisjoint,      ///< disjoint value domains (zero overlap)
};

/// Parameters for MakeOverlappingChains.
struct SyntheticChainOptions {
  int num_joins = 3;
  int num_relations = 3;      ///< chain length of every join
  size_t master_rows = 60;    ///< rows of each master relation
  double keep_probability = 0.7;  ///< subset density (kRandomSubset)
  int max_degree = 3;         ///< approximate join-value multiplicity
  OverlapMode mode = OverlapMode::kRandomSubset;
  uint64_t seed = 42;
};

/// n chain joins J_j = R_j1(A0,A1) |><| R_j2(A1,A2) |><| ... with identical
/// output schemas and controllable overlap.
Result<std::vector<JoinSpecPtr>> MakeOverlappingChains(
    const SyntheticChainOptions& options);

/// A cyclic triangle join R(A,B) |><| S(B,C) |><| T(C,A).
Result<JoinSpecPtr> MakeTriangleJoin(size_t rows, uint64_t seed,
                                     const std::string& prefix = "tri");

/// An acyclic (non-chain) star join: hub H(A,B,C,D) with three leaves
/// L1(B,E), L2(C,F), L3(D,G) -- the hub has degree 3, so the join tree is a
/// genuine tree rather than a path.
Result<JoinSpecPtr> MakeStarJoin(size_t rows, uint64_t seed,
                                 const std::string& prefix = "star");

}  // namespace workloads
}  // namespace suj

#endif  // SUJ_WORKLOADS_SYNTHETIC_H_
