// TextPool: deterministic text content for the TPC-H-style generator.
//
// Region and nation names (and the nation->region mapping) follow the TPC-H
// specification; free-text fields are short phrases assembled from fixed
// word lists, driven by the caller's Rng so generation stays reproducible.

#ifndef SUJ_TPCH_TEXT_POOL_H_
#define SUJ_TPCH_TEXT_POOL_H_

#include <string>

#include "common/rng.h"

namespace suj {
namespace tpch {

/// Number of regions / nations in the TPC-H specification.
inline constexpr int kNumRegions = 5;
inline constexpr int kNumNations = 25;

/// TPC-H region name for regionkey in [0, kNumRegions).
const char* RegionName(int regionkey);

/// TPC-H nation name for nationkey in [0, kNumNations).
const char* NationName(int nationkey);

/// TPC-H region of a nation.
int NationRegion(int nationkey);

/// Market segments (5, per spec).
const char* MarketSegment(int i);
inline constexpr int kNumMarketSegments = 5;

/// Short pseudo-random phrase of `words` words.
std::string RandomPhrase(Rng& rng, int words);

/// "Supplier#<k>"-style entity name.
std::string EntityName(const char* prefix, int64_t key);

}  // namespace tpch
}  // namespace suj

#endif  // SUJ_TPCH_TEXT_POOL_H_
