#include "tpch/text_pool.h"

#include "common/logging.h"

namespace suj {
namespace tpch {

namespace {

const char* kRegions[kNumRegions] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};

// nationkey -> (name, regionkey), per the TPC-H spec's nation table.
const NationDef kNations[kNumNations] = {
    {"ALGERIA", 0},        {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},         {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},         {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},      {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},          {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},        {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},          {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},        {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[kNumMarketSegments] = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"};

const char* kWords[] = {
    "quick",   "silent", "final",   "ruthless", "ironic",  "bold",
    "even",    "special", "pending", "express",  "regular", "unusual",
    "deposits", "foxes",  "requests", "accounts", "packages", "ideas",
    "theodolites", "platelets", "instructions", "pinto",  "beans", "asymptotes"};
constexpr int kNumWords = sizeof(kWords) / sizeof(kWords[0]);

}  // namespace

const char* RegionName(int regionkey) {
  SUJ_CHECK(regionkey >= 0 && regionkey < kNumRegions);
  return kRegions[regionkey];
}

const char* NationName(int nationkey) {
  SUJ_CHECK(nationkey >= 0 && nationkey < kNumNations);
  return kNations[nationkey].name;
}

int NationRegion(int nationkey) {
  SUJ_CHECK(nationkey >= 0 && nationkey < kNumNations);
  return kNations[nationkey].region;
}

const char* MarketSegment(int i) {
  SUJ_CHECK(i >= 0 && i < kNumMarketSegments);
  return kSegments[i];
}

std::string RandomPhrase(Rng& rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += kWords[rng.UniformInt(kNumWords)];
  }
  return out;
}

std::string EntityName(const char* prefix, int64_t key) {
  std::string out = prefix;
  out += '#';
  out += std::to_string(key);
  return out;
}

}  // namespace tpch
}  // namespace suj
