#include "tpch/overlap_generator.h"

#include <cmath>

namespace suj {
namespace tpch {

namespace {

// Key offset of variant v's private rows; the shared slice owns [0, offset).
int64_t VariantKeyOffset(int v) {
  return static_cast<int64_t>(v + 1) * 100'000'000;
}

// Appends every row of `source` into `builder`.
Status AppendAll(RelationBuilder* builder, const RelationPtr& source) {
  for (size_t row = 0; row < source->num_rows(); ++row) {
    SUJ_RETURN_NOT_OK(builder->AppendTuple(source->GetTuple(row)));
  }
  return Status::OK();
}

std::vector<int64_t> KeyRange(int64_t start, size_t n) {
  std::vector<int64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = start + static_cast<int64_t>(i);
  return keys;
}

}  // namespace

Result<std::vector<VariantDb>> OverlapVariantGenerator::Generate() const {
  if (config_.num_variants < 1) {
    return Status::InvalidArgument("num_variants must be >= 1");
  }
  if (config_.overlap_scale < 0.0 || config_.overlap_scale > 1.0) {
    return Status::InvalidArgument("overlap_scale must be in [0, 1]");
  }
  const TpchConfig& tc = config_.per_variant;

  auto shared_count = [&](size_t total) {
    return static_cast<size_t>(
        std::llround(config_.overlap_scale * static_cast<double>(total)));
  };
  size_t sup_shared = shared_count(tc.NumSuppliers());
  size_t cust_shared = shared_count(tc.NumCustomers());
  size_t ord_shared = shared_count(tc.NumOrders());
  size_t part_shared = shared_count(tc.NumParts());
  // A shared child row must reference shared parents; without shared
  // parents there can be no shared children.
  if (cust_shared == 0) ord_shared = 0;
  if (sup_shared == 0 || part_shared == 0) ord_shared = 0;

  // ---- Shared slice: a pure function of the base seed. ----
  Rng shared_rng(tc.seed ^ 0x517ED0115EEDULL);
  std::vector<int64_t> shared_suppkeys = KeyRange(0, sup_shared);
  std::vector<int64_t> shared_custkeys = KeyRange(0, cust_shared);
  std::vector<int64_t> shared_partkeys = KeyRange(0, part_shared);
  std::vector<int64_t> shared_orderkeys;

  RelationBuilder shared_sup("shared", SupplierSchema());
  SUJ_RETURN_NOT_OK(
      detail::AppendSuppliers(&shared_sup, sup_shared, 0, shared_rng));
  RelationPtr shared_supplier = shared_sup.Finish();

  RelationBuilder shared_cust("shared", CustomerSchema());
  SUJ_RETURN_NOT_OK(
      detail::AppendCustomers(&shared_cust, cust_shared, 0, shared_rng));
  RelationPtr shared_customer = shared_cust.Finish();

  RelationBuilder shared_ord("shared", OrdersSchema());
  SUJ_RETURN_NOT_OK(detail::AppendOrders(
      &shared_ord, ord_shared, 0, shared_custkeys, tc.customer_order_skew,
      shared_rng, &shared_orderkeys));
  RelationPtr shared_orders = shared_ord.Finish();

  RelationBuilder shared_part_b("shared", PartSchema());
  SUJ_RETURN_NOT_OK(
      detail::AppendParts(&shared_part_b, part_shared, 0, shared_rng));
  RelationPtr shared_part = shared_part_b.Finish();

  RelationBuilder shared_li("shared", LineitemSchema());
  if (!shared_orderkeys.empty()) {
    SUJ_RETURN_NOT_OK(detail::AppendLineitems(
        &shared_li, shared_orderkeys, tc.max_lines_per_order,
        shared_suppkeys, shared_partkeys, shared_rng));
  }
  RelationPtr shared_lineitem = shared_li.Finish();

  RelationBuilder shared_ps("shared", PartsuppSchema());
  if (!shared_partkeys.empty() && !shared_suppkeys.empty()) {
    SUJ_RETURN_NOT_OK(detail::AppendPartsupp(&shared_ps, shared_partkeys,
                                             shared_suppkeys, shared_rng));
  }
  RelationPtr shared_partsupp = shared_ps.Finish();

  // ---- Region / nation: identical in every variant. ----
  RelationBuilder region_b("region", RegionSchema());
  SUJ_RETURN_NOT_OK(detail::AppendRegions(&region_b));
  RelationPtr region = region_b.Finish();
  RelationBuilder nation_b("nation", NationSchema());
  SUJ_RETURN_NOT_OK(detail::AppendNations(&nation_b));
  RelationPtr nation = nation_b.Finish();

  // ---- Variants: shared slice + private slice. ----
  std::vector<VariantDb> variants;
  variants.reserve(config_.num_variants);
  for (int v = 0; v < config_.num_variants; ++v) {
    Rng rng(tc.seed + 101 + static_cast<uint64_t>(v));
    const int64_t off = VariantKeyOffset(v);
    const std::string suffix = "_v" + std::to_string(v);

    size_t sup_own = tc.NumSuppliers() - sup_shared;
    size_t cust_own = tc.NumCustomers() - cust_shared;
    size_t ord_own = tc.NumOrders() - ord_shared;
    size_t part_own = tc.NumParts() - part_shared;

    VariantDb db;
    db.region = region;
    db.nation = nation;

    RelationBuilder sup("supplier" + suffix, SupplierSchema());
    SUJ_RETURN_NOT_OK(AppendAll(&sup, shared_supplier));
    SUJ_RETURN_NOT_OK(detail::AppendSuppliers(&sup, sup_own, off, rng));
    db.supplier = sup.Finish();
    std::vector<int64_t> suppkeys = shared_suppkeys;
    for (int64_t k : KeyRange(off, sup_own)) suppkeys.push_back(k);

    RelationBuilder cust("customer" + suffix, CustomerSchema());
    SUJ_RETURN_NOT_OK(AppendAll(&cust, shared_customer));
    SUJ_RETURN_NOT_OK(detail::AppendCustomers(&cust, cust_own, off, rng));
    db.customer = cust.Finish();
    std::vector<int64_t> custkeys = shared_custkeys;
    for (int64_t k : KeyRange(off, cust_own)) custkeys.push_back(k);

    RelationBuilder part("part" + suffix, PartSchema());
    SUJ_RETURN_NOT_OK(AppendAll(&part, shared_part));
    SUJ_RETURN_NOT_OK(detail::AppendParts(&part, part_own, off, rng));
    db.part = part.Finish();
    std::vector<int64_t> partkeys = shared_partkeys;
    for (int64_t k : KeyRange(off, part_own)) partkeys.push_back(k);

    RelationBuilder ord("orders" + suffix, OrdersSchema());
    SUJ_RETURN_NOT_OK(AppendAll(&ord, shared_orders));
    std::vector<int64_t> own_orderkeys;
    SUJ_RETURN_NOT_OK(detail::AppendOrders(&ord, ord_own, off, custkeys,
                                           tc.customer_order_skew, rng,
                                           &own_orderkeys));
    db.orders = ord.Finish();

    RelationBuilder li("lineitem" + suffix, LineitemSchema());
    SUJ_RETURN_NOT_OK(AppendAll(&li, shared_lineitem));
    if (!own_orderkeys.empty()) {
      SUJ_RETURN_NOT_OK(detail::AppendLineitems(&li, own_orderkeys,
                                                tc.max_lines_per_order,
                                                suppkeys, partkeys, rng));
    }
    db.lineitem = li.Finish();

    RelationBuilder ps("partsupp" + suffix, PartsuppSchema());
    SUJ_RETURN_NOT_OK(AppendAll(&ps, shared_partsupp));
    std::vector<int64_t> own_partkeys = KeyRange(off, part_own);
    if (!own_partkeys.empty()) {
      SUJ_RETURN_NOT_OK(
          detail::AppendPartsupp(&ps, own_partkeys, suppkeys, rng));
    }
    db.partsupp = ps.Finish();

    variants.push_back(std::move(db));
  }
  return variants;
}

}  // namespace tpch
}  // namespace suj
