// TpchGenerator: self-contained TPC-H-style data generator.
//
// Substitutes for TPCH-DBGen (which the paper uses): table ratios follow the
// benchmark (customer : orders : lineitem = 150 : 1500 : ~6000 per scale
// unit) at laptop-scale absolute sizes. Join attributes are standardized to
// shared names (nationkey, custkey, orderkey, suppkey, partkey) per the
// paper's §2 convention; non-join attributes carry table prefixes so natural
// joins only equate intended keys. An optional Zipf skew on foreign-key
// assignment exercises the degree-skew sensitivity of the estimators.

#ifndef SUJ_TPCH_GENERATOR_H_
#define SUJ_TPCH_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "storage/catalog.h"

namespace suj {
namespace tpch {

/// Generation parameters. scale_factor 1.0 produces the "unit" database of
/// ~8k rows total; row counts scale linearly.
struct TpchConfig {
  double scale_factor = 1.0;
  uint64_t seed = 42;
  /// Zipf exponent for orders-per-customer skew; 0 = uniform assignment.
  double customer_order_skew = 0.0;
  /// Average lineitems per order is (1 + max_lines_per_order) / 2.
  int max_lines_per_order = 7;

  size_t NumSuppliers() const { return ScaleCount(10, 2); }
  size_t NumCustomers() const { return ScaleCount(150, 3); }
  size_t NumOrders() const { return ScaleCount(1500, 5); }
  size_t NumParts() const { return ScaleCount(200, 2); }

 private:
  size_t ScaleCount(double per_unit, size_t minimum) const {
    auto n = static_cast<size_t>(per_unit * scale_factor);
    return n < minimum ? minimum : n;
  }
};

/// Schemas of the generated tables (shared with the overlap generator and
/// the workload builders).
Schema RegionSchema();
Schema NationSchema();
Schema SupplierSchema();
Schema CustomerSchema();
Schema OrdersSchema();
Schema LineitemSchema();
Schema PartSchema();
Schema PartsuppSchema();

/// \brief Generates a complete single database.
class TpchGenerator {
 public:
  explicit TpchGenerator(TpchConfig config = {}) : config_(config) {}

  const TpchConfig& config() const { return config_; }

  /// Generates all eight tables into a catalog, registered under their
  /// standard names ("region", "nation", "supplier", "customer", "orders",
  /// "lineitem", "part", "partsupp").
  Result<Catalog> Generate() const;

 private:
  TpchConfig config_;
};

/// Piecewise generation primitives, exposed for the overlap-variant
/// generator (tpch/overlap_generator.h) and for tests.
namespace detail {

/// Appends the fixed region/nation content.
Status AppendRegions(RelationBuilder* builder);
Status AppendNations(RelationBuilder* builder);

/// Appends `count` suppliers with keys [key_start, key_start + count).
Status AppendSuppliers(RelationBuilder* builder, size_t count,
                       int64_t key_start, Rng& rng);
Status AppendCustomers(RelationBuilder* builder, size_t count,
                       int64_t key_start, Rng& rng);

/// Appends `count` orders with keys [key_start, ...), each referencing a
/// customer from `custkeys` (Zipf-skewed pick when skew > 1, favoring
/// earlier pool entries). Appends the generated order keys to `out_keys`
/// when non-null.
Status AppendOrders(RelationBuilder* builder, size_t count,
                    int64_t key_start, const std::vector<int64_t>& custkeys,
                    double skew, Rng& rng,
                    std::vector<int64_t>* out_keys);

/// Appends 1..max_lines lineitems per order of `orderkeys`.
Status AppendLineitems(RelationBuilder* builder,
                       const std::vector<int64_t>& orderkeys, int max_lines,
                       const std::vector<int64_t>& suppkeys,
                       const std::vector<int64_t>& partkeys, Rng& rng);

Status AppendParts(RelationBuilder* builder, size_t count, int64_t key_start,
                   Rng& rng);

/// Appends up to 4 partsupp rows per part (distinct suppliers per part).
Status AppendPartsupp(RelationBuilder* builder,
                      const std::vector<int64_t>& partkeys,
                      const std::vector<int64_t>& suppkeys, Rng& rng);

}  // namespace detail

}  // namespace tpch
}  // namespace suj

#endif  // SUJ_TPCH_GENERATOR_H_
