#include "tpch/generator.h"

#include <algorithm>

#include "tpch/text_pool.h"

namespace suj {
namespace tpch {

Schema RegionSchema() {
  return Schema({{"regionkey", ValueType::kInt64},
                 {"r_name", ValueType::kString}});
}

Schema NationSchema() {
  return Schema({{"nationkey", ValueType::kInt64},
                 {"regionkey", ValueType::kInt64},
                 {"n_name", ValueType::kString}});
}

Schema SupplierSchema() {
  return Schema({{"suppkey", ValueType::kInt64},
                 {"nationkey", ValueType::kInt64},
                 {"s_name", ValueType::kString},
                 {"s_acctbal", ValueType::kDouble}});
}

Schema CustomerSchema() {
  return Schema({{"custkey", ValueType::kInt64},
                 {"nationkey", ValueType::kInt64},
                 {"c_mktsegment", ValueType::kString},
                 {"c_acctbal", ValueType::kDouble}});
}

Schema OrdersSchema() {
  return Schema({{"orderkey", ValueType::kInt64},
                 {"custkey", ValueType::kInt64},
                 {"o_totalprice", ValueType::kDouble},
                 {"o_orderpriority", ValueType::kInt64}});
}

Schema LineitemSchema() {
  return Schema({{"orderkey", ValueType::kInt64},
                 {"l_linenumber", ValueType::kInt64},
                 {"l_suppkey", ValueType::kInt64},
                 {"l_partkey", ValueType::kInt64},
                 {"l_quantity", ValueType::kInt64},
                 {"l_extendedprice", ValueType::kDouble}});
}

Schema PartSchema() {
  return Schema({{"partkey", ValueType::kInt64},
                 {"p_name", ValueType::kString},
                 {"p_size", ValueType::kInt64},
                 {"p_retailprice", ValueType::kDouble}});
}

Schema PartsuppSchema() {
  return Schema({{"partkey", ValueType::kInt64},
                 {"suppkey", ValueType::kInt64},
                 {"ps_availqty", ValueType::kInt64},
                 {"ps_supplycost", ValueType::kDouble}});
}

namespace detail {

namespace {
// Two-decimal monetary value in [lo, hi).
double Money(Rng& rng, double lo, double hi) {
  double v = lo + rng.UniformDouble() * (hi - lo);
  return static_cast<double>(static_cast<int64_t>(v * 100)) / 100.0;
}

// Pool pick, Zipf-skewed toward the front of the pool when skew > 1.
int64_t PickFromPool(const std::vector<int64_t>& pool, double skew,
                     Rng& rng) {
  if (skew > 1.0) {
    uint64_t rank = rng.Zipf(pool.size(), skew);  // in [1, size]
    return pool[rank - 1];
  }
  return pool[rng.UniformInt(pool.size())];
}
}  // namespace

Status AppendRegions(RelationBuilder* builder) {
  for (int r = 0; r < kNumRegions; ++r) {
    SUJ_RETURN_NOT_OK(builder->AppendRow(
        {Value::Int64(r), Value::String(RegionName(r))}));
  }
  return Status::OK();
}

Status AppendNations(RelationBuilder* builder) {
  for (int n = 0; n < kNumNations; ++n) {
    SUJ_RETURN_NOT_OK(builder->AppendRow({Value::Int64(n),
                                          Value::Int64(NationRegion(n)),
                                          Value::String(NationName(n))}));
  }
  return Status::OK();
}

Status AppendSuppliers(RelationBuilder* builder, size_t count,
                       int64_t key_start, Rng& rng) {
  for (size_t i = 0; i < count; ++i) {
    int64_t key = key_start + static_cast<int64_t>(i);
    SUJ_RETURN_NOT_OK(builder->AppendRow(
        {Value::Int64(key), Value::Int64(rng.UniformInt(kNumNations)),
         Value::String(EntityName("Supplier", key)),
         Value::Double(Money(rng, -999.99, 9999.99))}));
  }
  return Status::OK();
}

Status AppendCustomers(RelationBuilder* builder, size_t count,
                       int64_t key_start, Rng& rng) {
  for (size_t i = 0; i < count; ++i) {
    int64_t key = key_start + static_cast<int64_t>(i);
    SUJ_RETURN_NOT_OK(builder->AppendRow(
        {Value::Int64(key), Value::Int64(rng.UniformInt(kNumNations)),
         Value::String(MarketSegment(rng.UniformInt(kNumMarketSegments))),
         Value::Double(Money(rng, -999.99, 9999.99))}));
  }
  return Status::OK();
}

Status AppendOrders(RelationBuilder* builder, size_t count,
                    int64_t key_start, const std::vector<int64_t>& custkeys,
                    double skew, Rng& rng,
                    std::vector<int64_t>* out_keys) {
  if (custkeys.empty() && count > 0) {
    return Status::InvalidArgument("orders need a non-empty customer pool");
  }
  for (size_t i = 0; i < count; ++i) {
    int64_t key = key_start + static_cast<int64_t>(i);
    SUJ_RETURN_NOT_OK(builder->AppendRow(
        {Value::Int64(key), Value::Int64(PickFromPool(custkeys, skew, rng)),
         Value::Double(Money(rng, 100.0, 400000.0)),
         Value::Int64(1 + static_cast<int64_t>(rng.UniformInt(5)))}));
    if (out_keys != nullptr) out_keys->push_back(key);
  }
  return Status::OK();
}

Status AppendLineitems(RelationBuilder* builder,
                       const std::vector<int64_t>& orderkeys, int max_lines,
                       const std::vector<int64_t>& suppkeys,
                       const std::vector<int64_t>& partkeys, Rng& rng) {
  if (max_lines < 1) {
    return Status::InvalidArgument("max_lines_per_order must be >= 1");
  }
  if (suppkeys.empty() || partkeys.empty()) {
    return Status::InvalidArgument("lineitems need supplier and part pools");
  }
  for (int64_t orderkey : orderkeys) {
    int lines = 1 + static_cast<int>(rng.UniformInt(max_lines));
    for (int ln = 1; ln <= lines; ++ln) {
      SUJ_RETURN_NOT_OK(builder->AppendRow(
          {Value::Int64(orderkey), Value::Int64(ln),
           Value::Int64(suppkeys[rng.UniformInt(suppkeys.size())]),
           Value::Int64(partkeys[rng.UniformInt(partkeys.size())]),
           Value::Int64(1 + static_cast<int64_t>(rng.UniformInt(50))),
           Value::Double(Money(rng, 900.0, 105000.0))}));
    }
  }
  return Status::OK();
}

Status AppendParts(RelationBuilder* builder, size_t count, int64_t key_start,
                   Rng& rng) {
  for (size_t i = 0; i < count; ++i) {
    int64_t key = key_start + static_cast<int64_t>(i);
    SUJ_RETURN_NOT_OK(builder->AppendRow(
        {Value::Int64(key), Value::String(RandomPhrase(rng, 3)),
         Value::Int64(1 + static_cast<int64_t>(rng.UniformInt(50))),
         Value::Double(Money(rng, 900.0, 2000.0))}));
  }
  return Status::OK();
}

Status AppendPartsupp(RelationBuilder* builder,
                      const std::vector<int64_t>& partkeys,
                      const std::vector<int64_t>& suppkeys, Rng& rng) {
  if (suppkeys.empty() && !partkeys.empty()) {
    return Status::InvalidArgument("partsupp needs a supplier pool");
  }
  const size_t per_part = std::min<size_t>(4, suppkeys.size());
  for (int64_t partkey : partkeys) {
    // Distinct suppliers per part: random starting offset, stride 1.
    size_t start = rng.UniformInt(suppkeys.size());
    for (size_t k = 0; k < per_part; ++k) {
      int64_t suppkey = suppkeys[(start + k) % suppkeys.size()];
      SUJ_RETURN_NOT_OK(builder->AppendRow(
          {Value::Int64(partkey), Value::Int64(suppkey),
           Value::Int64(1 + static_cast<int64_t>(rng.UniformInt(9999))),
           Value::Double(Money(rng, 1.0, 1000.0))}));
    }
  }
  return Status::OK();
}

}  // namespace detail

Result<Catalog> TpchGenerator::Generate() const {
  Rng rng(config_.seed);
  Catalog catalog;

  RelationBuilder region("region", RegionSchema());
  SUJ_RETURN_NOT_OK(detail::AppendRegions(&region));
  SUJ_RETURN_NOT_OK(catalog.Register(region.Finish()));

  RelationBuilder nation("nation", NationSchema());
  SUJ_RETURN_NOT_OK(detail::AppendNations(&nation));
  SUJ_RETURN_NOT_OK(catalog.Register(nation.Finish()));

  auto keys_in = [](int64_t start, size_t n) {
    std::vector<int64_t> keys(n);
    for (size_t i = 0; i < n; ++i) keys[i] = start + static_cast<int64_t>(i);
    return keys;
  };

  RelationBuilder supplier("supplier", SupplierSchema());
  SUJ_RETURN_NOT_OK(
      detail::AppendSuppliers(&supplier, config_.NumSuppliers(), 0, rng));
  SUJ_RETURN_NOT_OK(catalog.Register(supplier.Finish()));
  std::vector<int64_t> suppkeys = keys_in(0, config_.NumSuppliers());

  RelationBuilder customer("customer", CustomerSchema());
  SUJ_RETURN_NOT_OK(
      detail::AppendCustomers(&customer, config_.NumCustomers(), 0, rng));
  SUJ_RETURN_NOT_OK(catalog.Register(customer.Finish()));
  std::vector<int64_t> custkeys = keys_in(0, config_.NumCustomers());

  RelationBuilder orders("orders", OrdersSchema());
  std::vector<int64_t> orderkeys;
  SUJ_RETURN_NOT_OK(detail::AppendOrders(&orders, config_.NumOrders(), 0,
                                         custkeys,
                                         config_.customer_order_skew, rng,
                                         &orderkeys));
  SUJ_RETURN_NOT_OK(catalog.Register(orders.Finish()));

  RelationBuilder part("part", PartSchema());
  SUJ_RETURN_NOT_OK(detail::AppendParts(&part, config_.NumParts(), 0, rng));
  SUJ_RETURN_NOT_OK(catalog.Register(part.Finish()));
  std::vector<int64_t> partkeys = keys_in(0, config_.NumParts());

  RelationBuilder lineitem("lineitem", LineitemSchema());
  SUJ_RETURN_NOT_OK(detail::AppendLineitems(&lineitem, orderkeys,
                                            config_.max_lines_per_order,
                                            suppkeys, partkeys, rng));
  SUJ_RETURN_NOT_OK(catalog.Register(lineitem.Finish()));

  RelationBuilder partsupp("partsupp", PartsuppSchema());
  SUJ_RETURN_NOT_OK(
      detail::AppendPartsupp(&partsupp, partkeys, suppkeys, rng));
  SUJ_RETURN_NOT_OK(catalog.Register(partsupp.Finish()));

  return catalog;
}

}  // namespace tpch
}  // namespace suj
