// OverlapVariantGenerator: per-region database variants with a controlled
// overlap scale.
//
// Reproduces the paper's UQ1 data construction (§9): "when generating
// different queries, we keep P% of the data the same in the original
// corresponding relations", which makes the overlap ratio between the join
// results proportional to P without being exactly P (join-level overlap is
// not directly controllable; the paper makes the same remark).
//
// Mechanically: a shared slice (seeded only by the base seed, identical in
// every variant, with keys in the shared range) is concatenated with a
// variant-private slice (variant-specific seed and disjoint key range).
// Children in the shared slice reference only shared parents, so a fully
// shared join path stays shared; private children may reference either.

#ifndef SUJ_TPCH_OVERLAP_GENERATOR_H_
#define SUJ_TPCH_OVERLAP_GENERATOR_H_

#include <vector>

#include "common/result.h"
#include "tpch/generator.h"

namespace suj {
namespace tpch {

/// Parameters for variant generation.
struct OverlapConfig {
  /// Size/seed/skew of EACH variant database.
  TpchConfig per_variant;
  /// Number of variant databases (the paper's per-region sources).
  int num_variants = 5;
  /// Fraction of each table's rows shared identically across all variants.
  double overlap_scale = 0.2;
};

/// One variant database. `region` and `nation` point to the same relations
/// in every variant; the other tables are variant-specific relations named
/// "<table>_v<i>".
struct VariantDb {
  RelationPtr region;
  RelationPtr nation;
  RelationPtr supplier;
  RelationPtr customer;
  RelationPtr orders;
  RelationPtr lineitem;
  RelationPtr part;
  RelationPtr partsupp;
};

/// \brief Generates `num_variants` databases with shared row slices.
class OverlapVariantGenerator {
 public:
  explicit OverlapVariantGenerator(OverlapConfig config) : config_(config) {}

  const OverlapConfig& config() const { return config_; }

  /// Generates all variants deterministically from the base seed.
  Result<std::vector<VariantDb>> Generate() const;

 private:
  OverlapConfig config_;
};

}  // namespace tpch
}  // namespace suj

#endif  // SUJ_TPCH_OVERLAP_GENERATOR_H_
