#include "storage/key_codec.h"

#include <cstring>

namespace suj {

void AppendRowKey(const Relation& rel, const std::vector<int>& cols,
                  size_t row, std::string* out) {
  for (int col : cols) {
    const auto type = rel.schema().field(static_cast<size_t>(col)).type;
    out->push_back(static_cast<char>(type));
    switch (type) {
      case ValueType::kInt64: {
        const int64_t v = rel.Int64Column(static_cast<size_t>(col))[row];
        char buf[8];
        std::memcpy(buf, &v, 8);
        out->append(buf, 8);
        break;
      }
      case ValueType::kDouble: {
        const double v = rel.DoubleColumn(static_cast<size_t>(col))[row];
        char buf[8];
        std::memcpy(buf, &v, 8);
        out->append(buf, 8);
        break;
      }
      case ValueType::kString: {
        const std::string& v = rel.StringColumn(static_cast<size_t>(col))[row];
        const uint32_t len = static_cast<uint32_t>(v.size());
        char buf[4];
        std::memcpy(buf, &len, 4);
        out->append(buf, 4);
        out->append(v);
        break;
      }
    }
  }
}

}  // namespace suj
