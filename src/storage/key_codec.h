// KeyCodec: encode a row's join-key projection straight from column
// storage.
//
// `rel.ProjectRow(row, cols).Encode()` materializes a Tuple of Value
// variants just to throw it away after encoding. Index and projection
// builds encode every row of a relation, so the hot build loops use this
// codec instead: it reads the typed column vectors directly and appends
// the byte encoding into a reusable scratch string. The bytes produced
// are identical to the Tuple path — the codec is an implementation detail
// of the same canonical `t.val` convention, not a second encoding.

#ifndef SUJ_STORAGE_KEY_CODEC_H_
#define SUJ_STORAGE_KEY_CODEC_H_

#include <string>
#include <vector>

#include "storage/relation.h"

namespace suj {

/// Appends the canonical encoding of row `row` projected onto `cols`
/// (byte-identical to `rel.ProjectRow(row, cols).Encode()` appended to
/// `*out`). `cols` must be valid schema indexes.
void AppendRowKey(const Relation& rel, const std::vector<int>& cols,
                  size_t row, std::string* out);

/// Convenience: clears `*scratch`, appends the key, and returns a view of
/// it via the same string. Usage pattern for probe loops:
/// \code
///   std::string scratch;
///   for (...) {
///     EncodeRowKey(rel, cols, row, &scratch);
///     index.LookupEncoded(scratch);
///   }
/// \endcode
inline const std::string& EncodeRowKey(const Relation& rel,
                                       const std::vector<int>& cols,
                                       size_t row, std::string* scratch) {
  scratch->clear();
  AppendRowKey(rel, cols, row, scratch);
  return *scratch;
}

}  // namespace suj

#endif  // SUJ_STORAGE_KEY_CODEC_H_
