// RelationDelta: append/delete mutation batches and the epoch-versioned
// snapshot chain they produce.
//
// Relations stay immutable — a delta never mutates a Relation in place.
// FoldDelta materializes a NEW Relation (survivors keep their relative
// order, appends go to the tail) plus the old-row -> new-row remap that
// lets index and estimator layers carry their state forward incrementally
// instead of rebuilding from scratch. VersionedRelation strings folds into
// a base + delta chain and compacts the chain past a threshold, so any
// reader holding an old snapshot keeps a fully valid, immutable view (the
// data-epoch analogue of the revision sampler's snapshot-per-epoch rule).

#ifndef SUJ_STORAGE_RELATION_DELTA_H_
#define SUJ_STORAGE_RELATION_DELTA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace suj {

/// \brief One mutation batch against a named relation.
struct RelationDelta {
  /// Target relation name (resolved against a catalog or a plan's joins).
  std::string relation;
  /// Rows to append; each tuple must match the relation schema.
  std::vector<Tuple> appends;
  /// Row ids (in the version the delta is applied to) to delete.
  std::vector<uint32_t> deletes;

  size_t num_rows() const { return appends.size() + deletes.size(); }
  bool empty() const { return appends.empty() && deletes.empty(); }
};

/// Remap value for rows removed by the fold.
inline constexpr uint32_t kDeletedRow = UINT32_MAX;

/// \brief A folded snapshot: the new relation plus the row remap.
struct FoldedRelation {
  RelationPtr relation;
  /// old row id -> new row id; kDeletedRow for deleted rows. Survivors keep
  /// their relative order, so remap is monotone over surviving rows.
  std::vector<uint32_t> remap;
  /// First appended row id in the new relation (== number of survivors).
  uint32_t first_appended_row = 0;

  size_t num_appended() const {
    return relation->num_rows() - first_appended_row;
  }
};

/// Materializes `delta` over `base` into a new immutable Relation (same
/// name/schema). Fails if a delete id is out of range or duplicated, or an
/// appended tuple does not match the schema.
Result<FoldedRelation> FoldDelta(const Relation& base,
                                 const RelationDelta& delta);

/// \brief Base + delta chain with epoch numbering and compaction.
///
/// Apply() folds a delta into a new snapshot and bumps the epoch. The chain
/// of retained snapshots (base .. latest) is kept so in-flight readers of
/// any epoch stay valid; once the retained chain exceeds
/// `compaction_threshold`, the chain is compacted: the latest snapshot
/// becomes the new base and intermediate snapshots are released (readers
/// holding shared_ptrs keep their copies alive independently).
class VersionedRelation {
 public:
  explicit VersionedRelation(RelationPtr base, size_t compaction_threshold = 8);

  /// Monotone data epoch; 0 for the base snapshot.
  uint64_t epoch() const { return epoch_; }
  /// Latest folded snapshot.
  const RelationPtr& snapshot() const { return chain_.back(); }
  /// Oldest retained snapshot (the compaction root).
  const RelationPtr& base() const { return chain_.front(); }
  /// Number of retained snapshots (1 = fully compacted).
  size_t chain_length() const { return chain_.size(); }
  size_t compaction_threshold() const { return compaction_threshold_; }

  /// Folds `delta` against the latest snapshot, retains the result, bumps
  /// the epoch, and compacts if the chain grew past the threshold.
  Result<FoldedRelation> Apply(const RelationDelta& delta);

 private:
  size_t compaction_threshold_;
  uint64_t epoch_ = 0;
  std::vector<RelationPtr> chain_;  // oldest .. latest
};

}  // namespace suj

#endif  // SUJ_STORAGE_RELATION_DELTA_H_
