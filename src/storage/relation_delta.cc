#include "storage/relation_delta.h"

#include <utility>

namespace suj {

Result<FoldedRelation> FoldDelta(const Relation& base,
                                 const RelationDelta& delta) {
  const size_t old_rows = base.num_rows();
  std::vector<bool> deleted(old_rows, false);
  for (uint32_t row : delta.deletes) {
    if (row >= old_rows) {
      return Status::InvalidArgument(
          "delete row id " + std::to_string(row) + " out of range for '" +
          base.name() + "' (" + std::to_string(old_rows) + " rows)");
    }
    if (deleted[row]) {
      return Status::InvalidArgument("duplicate delete row id " +
                                     std::to_string(row));
    }
    deleted[row] = true;
  }

  FoldedRelation out;
  out.remap.resize(old_rows);
  RelationBuilder builder(base.name(), base.schema());
  for (size_t row = 0; row < old_rows; ++row) {
    if (deleted[row]) {
      out.remap[row] = kDeletedRow;
      continue;
    }
    out.remap[row] = static_cast<uint32_t>(builder.num_rows());
    Status appended = builder.AppendTuple(base.GetTuple(row));
    if (!appended.ok()) return appended;
  }
  out.first_appended_row = static_cast<uint32_t>(builder.num_rows());
  for (const Tuple& tuple : delta.appends) {
    Status appended = builder.AppendTuple(tuple);
    if (!appended.ok()) return appended;
  }
  out.relation = builder.Finish();
  return out;
}

VersionedRelation::VersionedRelation(RelationPtr base,
                                     size_t compaction_threshold)
    : compaction_threshold_(compaction_threshold < 2 ? 2
                                                     : compaction_threshold) {
  chain_.push_back(std::move(base));
}

Result<FoldedRelation> VersionedRelation::Apply(const RelationDelta& delta) {
  auto folded = FoldDelta(*chain_.back(), delta);
  if (!folded.ok()) return folded.status();
  chain_.push_back(folded.value().relation);
  ++epoch_;
  if (chain_.size() > compaction_threshold_) {
    // Compact: the latest snapshot becomes the new base. Readers that hold
    // shared_ptrs to intermediate snapshots keep them alive on their own.
    RelationPtr latest = chain_.back();
    chain_.clear();
    chain_.push_back(std::move(latest));
  }
  return folded;
}

}  // namespace suj
