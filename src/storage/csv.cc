#include "storage/csv.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

namespace suj {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void WriteCell(const std::string& s, std::ostream* out) {
  if (!NeedsQuoting(s)) {
    *out << s;
    return;
  }
  *out << '"';
  for (char c : s) {
    if (c == '"') *out << '"';
    *out << c;
  }
  *out << '"';
}

// Splits one CSV line into cells, honoring quotes. Returns false on a
// malformed line (unterminated quote).
bool SplitLine(const std::string& line, std::vector<std::string>* cells) {
  cells->clear();
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells->push_back(std::move(cell));
      cell.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cell += c;
    }
  }
  if (in_quotes) return false;
  cells->push_back(std::move(cell));
  return true;
}

Result<Value> ParseCell(const std::string& cell, ValueType type,
                        size_t line_no, const std::string& attr) {
  switch (type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(cell.data(), cell.data() + cell.size(), v);
      if (ec != std::errc() || ptr != cell.data() + cell.size()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": '" + cell +
            "' is not an INT64 (column '" + attr + "')");
      }
      return Value::Int64(v);
    }
    case ValueType::kDouble: {
      // std::from_chars for double is not universally available; strtod
      // with full-consumption check is equivalent here.
      char* end = nullptr;
      double v = std::strtod(cell.c_str(), &end);
      if (cell.empty() || end != cell.c_str() + cell.size()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": '" + cell +
            "' is not a DOUBLE (column '" + attr + "')");
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(cell);
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status WriteCsv(const Relation& relation, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  const Schema& schema = relation.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) *out << ',';
    WriteCell(schema.field(c).name, out);
  }
  *out << '\n';
  for (size_t row = 0; row < relation.num_rows(); ++row) {
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      if (c > 0) *out << ',';
      switch (schema.field(c).type) {
        case ValueType::kInt64:
          *out << relation.GetInt64(row, c);
          break;
        case ValueType::kDouble: {
          // Round-trip-exact double formatting.
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.17g",
                        relation.GetDouble(row, c));
          *out << buf;
          break;
        }
        case ValueType::kString:
          WriteCell(relation.GetString(row, c), out);
          break;
      }
    }
    *out << '\n';
  }
  return out->good() ? Status::OK() : Status::Internal("stream write failed");
}

Status WriteCsvFile(const Relation& relation, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  return WriteCsv(relation, &file);
}

Result<RelationPtr> ReadCsv(std::istream* in, const std::string& name,
                            const Schema& schema) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("missing CSV header");
  }
  std::vector<std::string> cells;
  if (!SplitLine(line, &cells)) {
    return Status::InvalidArgument("malformed CSV header");
  }
  if (cells.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "header arity " + std::to_string(cells.size()) +
        " != schema arity " + std::to_string(schema.num_fields()));
  }
  for (size_t c = 0; c < cells.size(); ++c) {
    if (cells[c] != schema.field(c).name) {
      return Status::InvalidArgument("header column '" + cells[c] +
                                     "' does not match schema attribute '" +
                                     schema.field(c).name + "'");
    }
  }

  RelationBuilder builder(name, schema);
  size_t line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!SplitLine(line, &cells)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unterminated quote");
    }
    if (cells.size() != schema.num_fields()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(schema.num_fields()) + " cells, got " +
          std::to_string(cells.size()));
    }
    std::vector<Value> values;
    values.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      auto v = ParseCell(cells[c], schema.field(c).type, line_no,
                         schema.field(c).name);
      if (!v.ok()) return v.status();
      values.push_back(std::move(v).value());
    }
    SUJ_RETURN_NOT_OK(builder.AppendRow(std::move(values)));
  }
  return builder.Finish();
}

Result<RelationPtr> ReadCsvFile(const std::string& path,
                                const std::string& name,
                                const Schema& schema) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return ReadCsv(&file, name, schema);
}

}  // namespace suj
