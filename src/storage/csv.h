// CSV import/export for relations.
//
// Lets workloads be persisted and external data be loaded into the engine.
// Format: header row of attribute names, comma-separated; string cells may
// be double-quoted (with "" escaping); INT64/DOUBLE cells are parsed
// strictly. Round-trips exactly for the value types the engine supports.

#ifndef SUJ_STORAGE_CSV_H_
#define SUJ_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "storage/relation.h"

namespace suj {

/// Writes `relation` as CSV (header + rows) to `out`.
Status WriteCsv(const Relation& relation, std::ostream* out);

/// Writes `relation` to a file at `path` (overwrites).
Status WriteCsvFile(const Relation& relation, const std::string& path);

/// Reads a CSV with a header row into a relation named `name`, using
/// `schema` for the column types. The header must match the schema's
/// attribute names in order.
Result<RelationPtr> ReadCsv(std::istream* in, const std::string& name,
                            const Schema& schema);

/// Reads from a file at `path`.
Result<RelationPtr> ReadCsvFile(const std::string& path,
                                const std::string& name,
                                const Schema& schema);

}  // namespace suj

#endif  // SUJ_STORAGE_CSV_H_
