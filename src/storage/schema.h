// Schema: ordered, named, typed attributes of a relation or join output.

#ifndef SUJ_STORAGE_SCHEMA_H_
#define SUJ_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace suj {

/// A single attribute: name + physical type.
struct Field {
  std::string name;
  ValueType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered collection of fields.
///
/// The paper assumes join attributes are standardized to the same names
/// across relations (§2); schemas here follow that convention, so equi-join
/// edges are expressed purely by shared attribute names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the attribute with `name`, or -1 if absent.
  int FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const {
    return FieldIndex(name) >= 0;
  }

  /// All attribute names in schema order.
  std::vector<std::string> FieldNames() const;

  /// Attribute names shared with `other` (in this schema's order).
  std::vector<std::string> CommonFields(const Schema& other) const;

  /// Schema restricted to `names` (in the given order). Fails if a name is
  /// missing.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace suj

#endif  // SUJ_STORAGE_SCHEMA_H_
