#include "storage/tuple.h"

#include "common/logging.h"

namespace suj {

std::string Tuple::Encode() const {
  std::string out;
  out.reserve(values_.size() * 9);
  for (const auto& v : values_) v.EncodeTo(&out);
  return out;
}

uint64_t Tuple::Hash() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& v : values_) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

Tuple Tuple::Project(const std::vector<int>& indices) const {
  std::vector<Value> out;
  out.reserve(indices.size());
  for (int i : indices) {
    SUJ_DCHECK(i >= 0 && static_cast<size_t>(i) < values_.size());
    out.push_back(values_[i]);
  }
  return Tuple(std::move(out));
}

Tuple Tuple::MapToSchema(const Schema& from, const Schema& to) const {
  SUJ_DCHECK(values_.size() == from.num_fields());
  std::vector<Value> out;
  out.reserve(to.num_fields());
  for (const auto& f : to.fields()) {
    int idx = from.FieldIndex(f.name);
    SUJ_CHECK(idx >= 0);
    out.push_back(values_[idx]);
  }
  return Tuple(std::move(out));
}

std::string Tuple::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace suj
