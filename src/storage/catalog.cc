#include "storage/catalog.h"

namespace suj {

Status Catalog::Register(RelationPtr relation) {
  if (relation == nullptr) {
    return Status::InvalidArgument("cannot register null relation");
  }
  auto [it, inserted] = relations_.emplace(relation->name(), relation);
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("relation '" + relation->name() +
                                   "' already registered");
  }
  return Status::OK();
}

void Catalog::Upsert(RelationPtr relation) {
  relations_[relation->name()] = std::move(relation);
}

Result<RelationPtr> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not in catalog");
  }
  return it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

size_t Catalog::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel->num_rows();
  return total;
}

}  // namespace suj
