#include "storage/catalog.h"

namespace suj {

Status Catalog::Register(RelationPtr relation) {
  if (relation == nullptr) {
    return Status::InvalidArgument("cannot register null relation");
  }
  auto [it, inserted] = relations_.emplace(relation->name(), relation);
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("relation '" + relation->name() +
                                   "' already registered");
  }
  return Status::OK();
}

void Catalog::Upsert(RelationPtr relation) {
  relations_[relation->name()] = std::move(relation);
}

Result<RelationPtr> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not in catalog");
  }
  return it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

size_t Catalog::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel->num_rows();
  return total;
}

Result<FoldedRelation> Catalog::ApplyDelta(const RelationDelta& delta) {
  auto it = relations_.find(delta.relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + delta.relation +
                            "' not in catalog");
  }
  auto vit = versions_.find(delta.relation);
  if (vit == versions_.end()) {
    vit = versions_.emplace(delta.relation, VersionedRelation(it->second))
              .first;
  }
  auto folded = vit->second.Apply(delta);
  if (!folded.ok()) return folded.status();
  it->second = folded.value().relation;
  return folded;
}

uint64_t Catalog::Epoch(const std::string& name) const {
  auto it = versions_.find(name);
  return it == versions_.end() ? 0 : it->second.epoch();
}

}  // namespace suj
