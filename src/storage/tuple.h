// Tuple: a row of values, with the canonical encoding that defines
// set-union identity.
//
// The paper (§3, Example 3) identifies output tuples by `t.val`, "obtained by
// concatenating its attribute values using a standard convention". Tuple's
// Encode() is that convention: the injective byte encoding of each Value in
// schema order. Two tuples from different joins are the same element of the
// union universe U iff their encodings are equal.

#ifndef SUJ_STORAGE_TUPLE_H_
#define SUJ_STORAGE_TUPLE_H_

#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace suj {

/// \brief An ordered row of values.
///
/// Tuples do not carry their schema; callers pair a Tuple with the Schema of
/// the relation or join output that produced it.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }
  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Canonical injective byte encoding (the paper's `t.val`).
  std::string Encode() const;

  /// Hash consistent with operator== (combines per-value hashes).
  uint64_t Hash() const;

  /// Projection onto the given column indices, in the given order.
  Tuple Project(const std::vector<int>& indices) const;

  /// Reorders/projects this tuple (described by `from`) onto schema `to`.
  /// All attributes of `to` must exist in `from`.
  Tuple MapToSchema(const Schema& from, const Schema& to) const;

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Hasher for unordered containers keyed by Tuple.
struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace suj

#endif  // SUJ_STORAGE_TUPLE_H_
