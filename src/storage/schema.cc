#include "storage/schema.h"

namespace suj {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

int Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

std::vector<std::string> Schema::FieldNames() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const auto& f : fields_) names.push_back(f.name);
  return names;
}

std::vector<std::string> Schema::CommonFields(const Schema& other) const {
  std::vector<std::string> out;
  for (const auto& f : fields_) {
    if (other.HasField(f.name)) out.push_back(f.name);
  }
  return out;
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Field> projected;
  projected.reserve(names.size());
  for (const auto& n : names) {
    int idx = FieldIndex(n);
    if (idx < 0) {
      return Status::NotFound("schema has no attribute named '" + n + "'");
    }
    projected.push_back(fields_[idx]);
  }
  return Schema(std::move(projected));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace suj
