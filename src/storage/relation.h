// Relation: columnar in-memory table.
//
// Storage is column-major with typed columns (like Arrow arrays) so scans,
// histogram builds, and index builds touch contiguous memory. Rows are
// addressed by index; samplers pick uniform row ids in O(1).

#ifndef SUJ_STORAGE_RELATION_H_
#define SUJ_STORAGE_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace suj {

/// \brief An immutable, named, columnar table.
///
/// Build with RelationBuilder; once built, Relations are shared read-only
/// (std::shared_ptr<const Relation>) across indexes, samplers, and joins.
class Relation {
 public:
  Relation(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_fields(); }

  /// Cell accessors. `col` is a schema index; `row` in [0, num_rows()).
  Value GetValue(size_t row, size_t col) const;
  int64_t GetInt64(size_t row, size_t col) const;
  double GetDouble(size_t row, size_t col) const;
  const std::string& GetString(size_t row, size_t col) const;

  /// Materializes row `row` as a Tuple over schema().
  Tuple GetTuple(size_t row) const;

  /// Materializes the projection of row `row` onto the given column indices.
  Tuple ProjectRow(size_t row, const std::vector<int>& cols) const;

  /// Raw column storage (used by histogram/index builds for fast scans).
  const std::vector<int64_t>& Int64Column(size_t col) const;
  const std::vector<double>& DoubleColumn(size_t col) const;
  const std::vector<std::string>& StringColumn(size_t col) const;

 private:
  friend class RelationBuilder;

  std::string name_;
  Schema schema_;
  size_t num_rows_ = 0;
  // Parallel to schema fields; only the vector matching the field type is
  // populated for each column.
  std::vector<std::vector<int64_t>> int_cols_;
  std::vector<std::vector<double>> double_cols_;
  std::vector<std::vector<std::string>> string_cols_;
};

using RelationPtr = std::shared_ptr<const Relation>;

/// \brief Row-at-a-time builder for Relation.
class RelationBuilder {
 public:
  RelationBuilder(std::string name, Schema schema);

  /// Appends a row. The tuple must match the schema arity and types.
  Status AppendTuple(const Tuple& tuple);

  /// Appends a row of values (checked like AppendTuple).
  Status AppendRow(std::vector<Value> values);

  size_t num_rows() const { return relation_->num_rows_; }

  /// Finalizes and returns the relation. The builder is left empty.
  RelationPtr Finish();

 private:
  std::shared_ptr<Relation> relation_;
};

}  // namespace suj

#endif  // SUJ_STORAGE_RELATION_H_
