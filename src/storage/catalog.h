// Catalog: named registry of relations, shared by workloads and examples.

#ifndef SUJ_STORAGE_CATALOG_H_
#define SUJ_STORAGE_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"
#include "storage/relation_delta.h"

namespace suj {

/// \brief Name -> Relation registry.
///
/// Joins reference relations by pointer; the catalog is the ownership root
/// that keeps them alive and lets workload code look them up by name.
class Catalog {
 public:
  /// Registers `relation` under its name. Fails on duplicate names.
  Status Register(RelationPtr relation);

  /// Replaces or inserts a relation under its name.
  void Upsert(RelationPtr relation);

  /// Looks up by name.
  Result<RelationPtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return relations_.count(name) > 0;
  }
  size_t size() const { return relations_.size(); }

  /// All registered names (unordered).
  std::vector<std::string> Names() const;

  /// Sum of rows across all relations (used in scaling reports).
  size_t TotalRows() const;

  /// Applies a mutation batch to the named relation: folds it into a new
  /// immutable snapshot through the relation's version chain (creating the
  /// chain on first mutation), bumps that relation's data epoch, and
  /// upserts the snapshot so subsequent Get() calls see the new version.
  /// Existing readers holding the old RelationPtr are never invalidated.
  Result<FoldedRelation> ApplyDelta(const RelationDelta& delta);

  /// Data epoch of `name`: number of deltas applied (0 if never mutated).
  uint64_t Epoch(const std::string& name) const;

 private:
  std::unordered_map<std::string, RelationPtr> relations_;
  // Version chains, created lazily on first ApplyDelta per name.
  std::unordered_map<std::string, VersionedRelation> versions_;
};

}  // namespace suj

#endif  // SUJ_STORAGE_CATALOG_H_
