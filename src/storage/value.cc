#include "storage/value.h"

#include <cstring>

#include "common/logging.h"

namespace suj {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case ValueType::kInt64:
      return int_ == other.int_;
    case ValueType::kDouble:
      return double_ == other.double_;
    case ValueType::kString:
      return string_ == other.string_;
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  if (type_ != other.type_) return type_ < other.type_;
  switch (type_) {
    case ValueType::kInt64:
      return int_ < other.int_;
    case ValueType::kDouble:
      return double_ < other.double_;
    case ValueType::kString:
      return string_ < other.string_;
  }
  return false;
}

uint64_t Value::Hash() const {
  // FNV-1a over the typed payload; mixed at the end for avalanche.
  uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<uint64_t>(type_);
  auto mix_bytes = [&h](const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
  };
  switch (type_) {
    case ValueType::kInt64:
      mix_bytes(&int_, sizeof(int_));
      break;
    case ValueType::kDouble:
      mix_bytes(&double_, sizeof(double_));
      break;
    case ValueType::kString:
      mix_bytes(string_.data(), string_.size());
      break;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

void Value::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type_));
  switch (type_) {
    case ValueType::kInt64: {
      char buf[8];
      std::memcpy(buf, &int_, 8);
      out->append(buf, 8);
      break;
    }
    case ValueType::kDouble: {
      char buf[8];
      std::memcpy(buf, &double_, 8);
      out->append(buf, 8);
      break;
    }
    case ValueType::kString: {
      uint32_t len = static_cast<uint32_t>(string_.size());
      char buf[4];
      std::memcpy(buf, &len, 4);
      out->append(buf, 4);
      out->append(string_);
      break;
    }
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kInt64:
      return std::to_string(int_);
    case ValueType::kDouble:
      return std::to_string(double_);
    case ValueType::kString:
      return string_;
  }
  return "?";
}

}  // namespace suj
