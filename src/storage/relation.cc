#include "storage/relation.h"

#include "common/logging.h"

namespace suj {

Relation::Relation(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  size_t n = schema_.num_fields();
  int_cols_.resize(n);
  double_cols_.resize(n);
  string_cols_.resize(n);
}

Value Relation::GetValue(size_t row, size_t col) const {
  SUJ_DCHECK(row < num_rows_ && col < schema_.num_fields());
  switch (schema_.field(col).type) {
    case ValueType::kInt64:
      return Value::Int64(int_cols_[col][row]);
    case ValueType::kDouble:
      return Value::Double(double_cols_[col][row]);
    case ValueType::kString:
      return Value::String(string_cols_[col][row]);
  }
  return Value();
}

int64_t Relation::GetInt64(size_t row, size_t col) const {
  SUJ_DCHECK(schema_.field(col).type == ValueType::kInt64);
  return int_cols_[col][row];
}

double Relation::GetDouble(size_t row, size_t col) const {
  SUJ_DCHECK(schema_.field(col).type == ValueType::kDouble);
  return double_cols_[col][row];
}

const std::string& Relation::GetString(size_t row, size_t col) const {
  SUJ_DCHECK(schema_.field(col).type == ValueType::kString);
  return string_cols_[col][row];
}

Tuple Relation::GetTuple(size_t row) const {
  std::vector<Value> values;
  values.reserve(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    values.push_back(GetValue(row, c));
  }
  return Tuple(std::move(values));
}

Tuple Relation::ProjectRow(size_t row, const std::vector<int>& cols) const {
  std::vector<Value> values;
  values.reserve(cols.size());
  for (int c : cols) {
    values.push_back(GetValue(row, static_cast<size_t>(c)));
  }
  return Tuple(std::move(values));
}

const std::vector<int64_t>& Relation::Int64Column(size_t col) const {
  SUJ_DCHECK(schema_.field(col).type == ValueType::kInt64);
  return int_cols_[col];
}

const std::vector<double>& Relation::DoubleColumn(size_t col) const {
  SUJ_DCHECK(schema_.field(col).type == ValueType::kDouble);
  return double_cols_[col];
}

const std::vector<std::string>& Relation::StringColumn(size_t col) const {
  SUJ_DCHECK(schema_.field(col).type == ValueType::kString);
  return string_cols_[col];
}

RelationBuilder::RelationBuilder(std::string name, Schema schema)
    : relation_(std::make_shared<Relation>(std::move(name),
                                           std::move(schema))) {}

Status RelationBuilder::AppendTuple(const Tuple& tuple) {
  const Schema& schema = relation_->schema();
  if (tuple.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema arity " +
        std::to_string(schema.num_fields()));
  }
  for (size_t c = 0; c < tuple.size(); ++c) {
    if (tuple.value(c).type() != schema.field(c).type) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema.field(c).name + "': expected " +
          ValueTypeName(schema.field(c).type) + ", got " +
          ValueTypeName(tuple.value(c).type()));
    }
  }
  for (size_t c = 0; c < tuple.size(); ++c) {
    const Value& v = tuple.value(c);
    switch (v.type()) {
      case ValueType::kInt64:
        relation_->int_cols_[c].push_back(v.int64());
        break;
      case ValueType::kDouble:
        relation_->double_cols_[c].push_back(v.dbl());
        break;
      case ValueType::kString:
        relation_->string_cols_[c].push_back(v.str());
        break;
    }
  }
  relation_->num_rows_++;
  return Status::OK();
}

Status RelationBuilder::AppendRow(std::vector<Value> values) {
  return AppendTuple(Tuple(std::move(values)));
}

RelationPtr RelationBuilder::Finish() {
  RelationPtr out = relation_;
  relation_ = std::make_shared<Relation>(out->name(), out->schema());
  return out;
}

}  // namespace suj
