// Value: the cell type of the storage layer.
//
// A Value is a tagged union over the three column types the workloads need
// (INT64, DOUBLE, STRING). Values are totally ordered and hashable so they
// can serve as join keys and as components of the canonical tuple encoding
// (`t.val` in the paper) that defines set-union identity.

#ifndef SUJ_STORAGE_VALUE_H_
#define SUJ_STORAGE_VALUE_H_

#include <cstdint>
#include <string>

namespace suj {

/// Physical type of a column / value.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

const char* ValueTypeName(ValueType type);

/// \brief A single cell value.
class Value {
 public:
  /// Default: INT64 zero (needed by container resizing only).
  Value() : type_(ValueType::kInt64), int_(0), double_(0) {}

  static Value Int64(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt64;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.double_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = std::move(v);
    return out;
  }

  ValueType type() const { return type_; }
  int64_t int64() const { return int_; }
  double dbl() const { return double_; }
  const std::string& str() const { return string_; }

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  /// 64-bit hash, consistent with operator==.
  uint64_t Hash() const;

  /// Appends a self-delimiting binary encoding to `out`. Distinct values
  /// always produce distinct encodings (type tag + fixed width or length
  /// prefix), which makes the concatenated tuple encoding injective.
  void EncodeTo(std::string* out) const;

  /// Human-readable rendering for examples and debugging.
  std::string ToString() const;

 private:
  ValueType type_;
  int64_t int_;
  double double_;
  std::string string_;
};

/// Hasher for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace suj

#endif  // SUJ_STORAGE_VALUE_H_
