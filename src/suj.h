// Umbrella header: the full public API of the suj library.
//
// Include this for quick starts; production code should include the
// specific module headers it needs.

#ifndef SUJ_SUJ_H_
#define SUJ_SUJ_H_

#include "common/combinatorics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/exact_overlap.h"
#include "core/histogram_overlap.h"
#include "core/k_overlap.h"
#include "core/online_union_sampler.h"
#include "core/overlap_estimator.h"
#include "core/random_walk_overlap.h"
#include "core/splitting.h"
#include "core/template_selector.h"
#include "core/union_sampler.h"
#include "core/union_size_model.h"
#include "exec/parallel_executor.h"
#include "index/composite_index.h"
#include "index/hash_index.h"
#include "index/row_membership_index.h"
#include "join/exact_weight.h"
#include "join/full_join.h"
#include "join/join_graph.h"
#include "join/join_sampler.h"
#include "join/join_size_bound.h"
#include "join/join_spec.h"
#include "join/membership.h"
#include "join/olken_sampler.h"
#include "join/predicate.h"
#include "join/wander_join.h"
#include "stats/column_histogram.h"
#include "stats/estimators.h"
#include "stats/reservoir.h"
#include "stats/uniformity.h"
#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "storage/value.h"
#include "tpch/generator.h"
#include "tpch/overlap_generator.h"
#include "tpch/text_pool.h"
#include "workloads/synthetic.h"
#include "workloads/tpch_workloads.h"

#endif  // SUJ_SUJ_H_
