// Subset enumeration and binomial coefficients.
//
// The union-size machinery works over the powerset lattice of the join set:
// Theorem 3 sums k-overlaps over all size-k subsets containing a join, and
// the cover sizes are inclusion-exclusion sums over subsets of earlier joins.
// Join sets are small in practice (the paper's workloads have 3-5 joins), so
// subsets are represented as 64-bit masks.

#ifndef SUJ_COMMON_COMBINATORICS_H_
#define SUJ_COMMON_COMBINATORICS_H_

#include <cstdint>
#include <vector>

namespace suj {

/// A subset of up to 64 joins, bit i set iff join i is in the subset.
using SubsetMask = uint64_t;

/// Number of elements in the subset.
int PopCount(SubsetMask mask);

/// Binomial coefficient C(n, k) as double (exact for the small n used here).
double Binomial(int n, int k);

/// All subsets of {0..n-1} of size exactly k, in lexicographic mask order.
std::vector<SubsetMask> SubsetsOfSize(int n, int k);

/// All subsets of {0..n-1} of size exactly k that contain element `must`.
std::vector<SubsetMask> SubsetsOfSizeContaining(int n, int k, int must);

/// All non-empty subsets of the elements selected by `universe`, in
/// increasing mask order (bottom-up traversal of the powerset lattice).
std::vector<SubsetMask> NonEmptySubsetsOf(SubsetMask universe);

/// Indices of set bits, ascending.
std::vector<int> MaskToIndices(SubsetMask mask);

/// Mask with bits [0, n) set.
inline SubsetMask FullMask(int n) {
  return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

}  // namespace suj

#endif  // SUJ_COMMON_COMBINATORICS_H_
