#include "common/alias_table.h"

#include <cmath>
#include <limits>

#include "common/status.h"

namespace suj {
namespace internal {

bool BuildAliasInto(const double* weights, size_t n, double* prob,
                    uint32_t* alias) {
  if (n == 0 || n > std::numeric_limits<uint32_t>::max()) return false;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (!(weights[i] >= 0.0) || !std::isfinite(weights[i])) return false;
    total += weights[i];
  }
  if (!(total > 0.0) || !std::isfinite(total)) return false;

  // Vose's method: scale every weight to mean 1, then repeatedly pair an
  // underfull ("small") column with an overfull ("large") one. prob[] is
  // filled with scaled weights first and overwritten as columns settle,
  // so no extra scratch array is needed beyond the two worklists.
  const double scale = static_cast<double>(n) / total;
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  uint32_t any_positive = 0;
  for (size_t i = 0; i < n; ++i) {
    prob[i] = weights[i] * scale;
    if (weights[i] > 0.0) any_positive = static_cast<uint32_t>(i);
    if (prob[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    alias[s] = l;
    // Column s keeps acceptance probability prob[s]; the remainder of its
    // bucket is donated by l. Deduct that donation from l's mass.
    prob[l] = (prob[l] + prob[s]) - 1.0;
    if (prob[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers hold (up to rounding) exactly one unit of mass each. A
  // zero-weight entry can only end up here through floating-point drift in
  // prob[l] above; keep such entries unreachable by aliasing them to a
  // positive-weight column instead of rounding them up to 1.
  for (uint32_t l : large) {
    prob[l] = 1.0;
    alias[l] = l;
  }
  for (uint32_t s : small) {
    if (weights[s] > 0.0) {
      prob[s] = 1.0;
      alias[s] = s;
    } else {
      prob[s] = 0.0;
      alias[s] = any_positive;
    }
  }
  return true;
}

}  // namespace internal

Result<AliasTable> AliasTable::Build(const std::vector<double>& weights) {
  AliasTable out;
  out.prob_.resize(weights.size());
  out.alias_.resize(weights.size());
  if (!internal::BuildAliasInto(weights.data(), weights.size(),
                                out.prob_.data(), out.alias_.data())) {
    return Status::InvalidArgument(
        "AliasTable::Build requires a non-empty vector of finite, "
        "non-negative weights with a positive sum");
  }
  return out;
}

Result<WeightedSelector> WeightedSelector::Build(std::vector<double> weights) {
  WeightedSelector out;
  SUJ_ASSIGN_OR_RETURN(out.table_, AliasTable::Build(weights));
  out.weights_ = std::move(weights);
  return out;
}

Status WeightedSelector::Zero(size_t i) {
  weights_[i] = 0.0;
  auto rebuilt = AliasTable::Build(weights_);
  if (!rebuilt.ok()) return rebuilt.status();
  table_ = std::move(*rebuilt);
  return Status::OK();
}

Result<size_t> FlatAliasGroups::AppendGroup(const double* weights, size_t n) {
  const size_t begin = prob_.size();
  prob_.resize(begin + n);
  alias_.resize(begin + n);
  if (!internal::BuildAliasInto(weights, n, prob_.data() + begin,
                                alias_.data() + begin)) {
    prob_.resize(begin);
    alias_.resize(begin);
    return Status::InvalidArgument(
        "FlatAliasGroups::AppendGroup requires a non-empty group of finite, "
        "non-negative weights with a positive sum");
  }
  return begin;
}

}  // namespace suj
