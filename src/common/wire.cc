#include "common/wire.h"

#include <cstring>

#include "storage/tuple.h"
#include "storage/value.h"

namespace suj {

uint8_t StatusCodeToWire(StatusCode code) {
  // StatusCode is already a dense enum starting at 0; pin the mapping
  // explicitly so reordering the enum can never silently change the
  // protocol.
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kOutOfRange:
      return 3;
    case StatusCode::kFailedPrecondition:
      return 4;
    case StatusCode::kUnimplemented:
      return 5;
    case StatusCode::kInternal:
      return 6;
    case StatusCode::kResourceExhausted:
      return 7;
    case StatusCode::kUnavailable:
      return 8;
    case StatusCode::kDeadlineExceeded:
      return 9;
  }
  return 6;  // kInternal
}

StatusCode StatusCodeFromWire(uint8_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kOutOfRange;
    case 4:
      return StatusCode::kFailedPrecondition;
    case 5:
      return StatusCode::kUnimplemented;
    case 6:
      return StatusCode::kInternal;
    case 7:
      return StatusCode::kResourceExhausted;
    case 8:
      return StatusCode::kUnavailable;
    case 9:
      return StatusCode::kDeadlineExceeded;
    default:
      return StatusCode::kInternal;
  }
}

Result<Tuple> DecodeTuple(std::string_view encoded) {
  // Mirrors Value::EncodeTo: type tag byte, then a fixed 8-byte payload
  // (INT64/DOUBLE, host bit pattern — the storage encoding is defined in
  // memcpy terms, and the protocol inherits it verbatim so wire bytes
  // stay comparable to Tuple::Encode()) or u32 length + string bytes.
  std::vector<Value> values;
  size_t pos = 0;
  while (pos < encoded.size()) {
    uint8_t tag = static_cast<uint8_t>(encoded[pos++]);
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kInt64: {
        if (encoded.size() - pos < 8) {
          return Status::InvalidArgument("truncated INT64 in tuple encoding");
        }
        int64_t v;
        std::memcpy(&v, encoded.data() + pos, 8);
        pos += 8;
        values.push_back(Value::Int64(v));
        break;
      }
      case ValueType::kDouble: {
        if (encoded.size() - pos < 8) {
          return Status::InvalidArgument("truncated DOUBLE in tuple encoding");
        }
        double v;
        std::memcpy(&v, encoded.data() + pos, 8);
        pos += 8;
        values.push_back(Value::Double(v));
        break;
      }
      case ValueType::kString: {
        if (encoded.size() - pos < 4) {
          return Status::InvalidArgument(
              "truncated STRING length in tuple encoding");
        }
        uint32_t len;
        std::memcpy(&len, encoded.data() + pos, 4);
        pos += 4;
        if (encoded.size() - pos < len) {
          return Status::InvalidArgument("truncated STRING in tuple encoding");
        }
        values.push_back(Value::String(std::string(encoded.substr(pos, len))));
        pos += len;
        break;
      }
      default:
        return Status::InvalidArgument("unknown value type tag " +
                                       std::to_string(tag) +
                                       " in tuple encoding");
    }
  }
  return Tuple(std::move(values));
}

}  // namespace suj
