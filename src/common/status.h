// Status: lightweight error propagation for database-style code paths.
//
// Follows the RocksDB/Arrow convention: functions that can fail return a
// Status (or Result<T>, see result.h) instead of throwing. Exceptions are
// reserved for programmer errors (assertion-style) only.

#ifndef SUJ_COMMON_STATUS_H_
#define SUJ_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace suj {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// A bounded resource (admission slots, session table) is at capacity;
  /// the request may succeed if retried after load drains. The service
  /// layer's backpressure signal.
  kResourceExhausted,
  /// The serving endpoint is going away (shutdown/drain) or the peer hung
  /// up; retrying on THIS connection cannot succeed, but another endpoint
  /// or a reconnect may. Distinct from kResourceExhausted so clients can
  /// tell "back off and retry here" from "re-resolve and reconnect".
  kUnavailable,
  /// An I/O deadline expired before the operation completed (socket
  /// read/write timeout). Distinct from kUnavailable (the peer may still
  /// be alive, just slow) and from kInvalidArgument truncation (the frame
  /// was not malformed; it simply never finished arriving in time).
  kDeadlineExceeded,
};

/// \brief Outcome of an operation that can fail.
///
/// A Status is cheap to copy in the OK case (no allocation). Failed statuses
/// carry a code and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define SUJ_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::suj::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace suj

#endif  // SUJ_COMMON_STATUS_H_
