// Software-prefetch shim.
//
// The batched walk loops issue prefetches for the NEXT level's probe and
// alias cache lines while finishing the current one, so the dependent
// misses of independent walks overlap instead of serializing. Prefetch is
// a hint: the macro compiles to nothing on toolchains without
// __builtin_prefetch, and correctness never depends on it.

#ifndef SUJ_COMMON_PREFETCH_H_
#define SUJ_COMMON_PREFETCH_H_

#if defined(__GNUC__) || defined(__clang__)
#define SUJ_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define SUJ_PREFETCH(addr) ((void)0)
#endif

#endif  // SUJ_COMMON_PREFETCH_H_
