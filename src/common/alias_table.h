// AliasTable: O(1) draws from a discrete distribution (Walker/Vose).
//
// The sampling hot paths draw from fixed weight vectors over and over —
// the exact-weight root row, the per-group child rows of a walk step, the
// union sampler's join selection. A binary-searched CDF costs O(log n)
// per draw and a data-dependent chain of cache misses; the alias method
// preprocesses the weights once into two flat arrays (`prob`, `alias`)
// and then serves every draw with one uniform integer, one uniform
// double, and at most two array reads. Zero-weight entries are
// structurally unreachable: their acceptance probability is exactly 0 and
// their alias always points at a positive-weight entry, so the
// exact-weight guarantee cannot be violated by boundary clamping the way
// a CDF search can (see ResolveCumulativeDraw in join/exact_weight.h for
// the CDF path's fix).

#ifndef SUJ_COMMON_ALIAS_TABLE_H_
#define SUJ_COMMON_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace suj {

/// \brief One discrete distribution preprocessed for O(1) sampling.
class AliasTable {
 public:
  /// Empty table; Sample on it is invalid (size() == 0).
  AliasTable() = default;

  /// Builds the table for `weights` (not necessarily normalized). Fails
  /// when `weights` is empty, contains a negative or non-finite entry, or
  /// sums to zero.
  static Result<AliasTable> Build(const std::vector<double>& weights);

  size_t size() const { return prob_.size(); }

  /// Draws an index proportionally to the build weights. Consumes one
  /// UniformInt and one UniformDouble from `rng`; never returns an index
  /// whose build weight was zero.
  size_t Sample(Rng& rng) const {
    const size_t k = static_cast<size_t>(rng.UniformInt(prob_.size()));
    return rng.UniformDouble() < prob_[k] ? k
                                          : static_cast<size_t>(alias_[k]);
  }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

/// \brief Many small alias tables flattened into shared arrays.
///
/// Per-group weighted draws (one group per join key, thousands of groups
/// of a handful of rows each) would waste space and locality as separate
/// AliasTable objects. The flat form stores every group's `prob`/`alias`
/// entries contiguously in append order; a group is addressed by its
/// element range [begin, begin + n), and `alias` entries are LOCAL to the
/// group (0..n-1), so a draw is `begin + local`.
class FlatAliasGroups {
 public:
  /// Appends one group built from `weights[0..n)`. Entries with zero
  /// weight are unreachable, as in AliasTable::Build. Returns the group's
  /// begin offset into the flat arrays, or fails on a negative,
  /// non-finite, or all-zero group.
  Result<size_t> AppendGroup(const double* weights, size_t n);

  size_t num_elements() const { return prob_.size(); }

  /// Draws a LOCAL index in [0, n) for the group at [begin, begin + n).
  size_t SampleGroup(size_t begin, size_t n, Rng& rng) const {
    const size_t k = static_cast<size_t>(rng.UniformInt(n));
    return rng.UniformDouble() < prob_[begin + k]
               ? k
               : static_cast<size_t>(alias_[begin + k]);
  }

  /// Raw array access for prefetching.
  const double* prob_data() const { return prob_.data(); }
  const uint32_t* alias_data() const { return alias_.data(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

/// \brief Alias-backed categorical draw whose weights can be zeroed.
///
/// The union-level selection loops share one pattern: a weight vector is
/// fixed up front (cover sizes), drawn from many times per call, and
/// occasionally an entry is zeroed when a round abandons its join. This
/// wraps that pattern over an AliasTable: draws are O(1), and Zero()
/// rebuilds the table — O(n), but abandonment is rare by construction
/// (each join is zeroed at most once per selector).
class WeightedSelector {
 public:
  WeightedSelector() = default;

  /// Builds from `weights`; fails exactly as AliasTable::Build does
  /// (empty, negative, non-finite, or all-zero weights).
  static Result<WeightedSelector> Build(std::vector<double> weights);

  /// Draws an index proportionally to the current weights; never returns
  /// a zero-weight index. Same RNG consumption as AliasTable::Sample.
  size_t Sample(Rng& rng) const { return table_.Sample(rng); }

  /// Zeroes weight `i` and rebuilds the table. Fails (leaving the
  /// selector unusable) when no positive weight remains — the caller's
  /// "every cover abandoned" condition.
  Status Zero(size_t i);

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  AliasTable table_;
};

namespace internal {
/// Shared Vose construction: writes n entries at prob/alias (alias values
/// are local indexes). Returns false on negative/non-finite/all-zero
/// weights.
bool BuildAliasInto(const double* weights, size_t n, double* prob,
                    uint32_t* alias);
}  // namespace internal

}  // namespace suj

#endif  // SUJ_COMMON_ALIAS_TABLE_H_
