// Seeded pseudo-random number generation used across the sampling stack.
//
// All randomized components take a Rng& so experiments are reproducible from
// a single seed. The generator is xoshiro256** — fast, high quality, and
// stable across platforms (unlike std::mt19937 distributions, whose outputs
// are implementation-defined for some distribution types).

#ifndef SUJ_COMMON_RNG_H_
#define SUJ_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace suj {

/// \brief Deterministic, seedable random number generator.
class Rng {
 public:
  /// Seeds the generator. Identical seeds give identical streams.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index from a discrete distribution proportional to
  /// `weights` (need not be normalized; all weights must be >= 0 and their
  /// sum > 0).
  size_t Categorical(const std::vector<double>& weights);

  /// Standard normal via Box-Muller (used by synthetic data generators).
  double Gaussian();

  /// Zipf-distributed integer in [1, n] with exponent s (used to generate
  /// skewed join-attribute degree distributions).
  uint64_t Zipf(uint64_t n, double s);

  /// Advances this generator by 2^128 steps of Next() in O(1), using the
  /// published xoshiro256** jump polynomial. Generators `i` jumps apart
  /// produce non-overlapping streams for any realistic draw count (each
  /// substream is 2^128 values long), which is what makes per-batch
  /// substreams of the parallel executor provably independent — unlike the
  /// `Rng(seed + i)` pattern, whose splitmix-seeded states carry no spacing
  /// guarantee.
  void Jump();

  /// Substream `i`: a copy of this generator advanced by i * 2^128 steps
  /// (i sequential Jump()s, so cost is O(i); callers iterating over batch
  /// indexes should jump incrementally instead of calling Split(i) per
  /// batch). Split(0) is an exact copy. `*this` is not advanced.
  Rng Split(uint64_t i) const;

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace suj

#endif  // SUJ_COMMON_RNG_H_
