#include "common/rng.h"

#include <cmath>

namespace suj {

namespace {
// splitmix64: seeds the xoshiro state from a single 64-bit seed.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling over the largest multiple of n below 2^64.
  const uint64_t threshold = -n % n;  // (2^64 - n) mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return (Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: return the last index with positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

void Rng::Jump() {
  // Blackman & Vigna's jump() for xoshiro256**: the characteristic
  // polynomial of the state transition raised to 2^128, applied by
  // accumulating f^b(s) for every set bit b. rng_stream_test verifies the
  // constants against an independent GF(2) matrix exponentiation.
  static constexpr uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  uint64_t acc[4] = {0, 0, 0, 0};
  for (uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (int i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      Next();  // advance one step (output discarded)
    }
  }
  for (int i = 0; i < 4; ++i) s_[i] = acc[i];
  // A jumped generator is a fresh stream; a cached Box-Muller half from the
  // pre-jump stream must not leak into it.
  has_cached_gaussian_ = false;
}

Rng Rng::Split(uint64_t i) const {
  // Split(0) is an exact copy (cached Gaussian half included); any actual
  // jump clears the cache inside Jump().
  Rng out = *this;
  for (uint64_t k = 0; k < i; ++k) out.Jump();
  return out;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  // Rejection-inversion sampling (Hormann & Derflinger) is overkill for the
  // generator sizes used here; inverse-CDF over the harmonic weights with
  // a cached normalizer would need per-(n,s) state. We use the standard
  // rejection method which is exact and stateless.
  if (n == 1) return 1;
  if (s <= 1.0) {
    // The rejection method below needs s > 1. For s <= 1 we invert the
    // continuous approximation of the CDF (exact enough for synthetic data
    // generation, which is the only caller of this regime).
    double u = UniformDouble();
    double x = std::exp(u * std::log(static_cast<double>(n) + 1.0)) - 1.0;
    uint64_t k = static_cast<uint64_t>(x) + 1;
    return k > n ? n : k;
  }
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    double u = UniformDouble();
    double v = UniformDouble();
    double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<uint64_t>(x);
    }
  }
}

}  // namespace suj
