// Assertion-style checks for programmer errors, plus leveled logging.
//
// SUJ_CHECK is used for invariants that indicate a bug when violated (never
// for data-dependent failures, which return Status). Active in all build
// types, like RocksDB's assert usage in critical paths.
//
// SUJ_LOG(severity) is the operational log: INFO for rare lifecycle
// events, WARN for degraded-but-serving conditions (the slow-request log
// uses this), ERROR for conditions an operator must act on. Messages
// below the threshold are filtered BEFORE their stream arguments are
// evaluated, so a disabled log line costs one branch. The threshold
// defaults to WARN (tests stay quiet), is overridable with the
// SUJ_LOG_LEVEL environment variable (debug|info|warn|error|off, or
// 0..4), and the sink is pluggable (SetLogSink) so servers can route
// the slow-request log into their own collection.

#ifndef SUJ_COMMON_LOGGING_H_
#define SUJ_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

namespace suj {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "SUJ_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

inline const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

/// Receives every emitted (already level-filtered) log message. Must be
/// callable from any thread.
using LogSink = void (*)(LogLevel level, const char* file, int line,
                         const std::string& message);

inline void DefaultLogSink(LogLevel level, const char* file, int line,
                           const std::string& message) {
  std::fprintf(stderr, "[%s] %s:%d %s\n", LogLevelName(level), file, line,
               message.c_str());
}

namespace internal {

inline LogLevel ParseLogLevel(const char* s, LogLevel fallback) {
  if (s == nullptr || *s == '\0') return fallback;
  if (std::strcmp(s, "debug") == 0 || std::strcmp(s, "0") == 0)
    return LogLevel::kDebug;
  if (std::strcmp(s, "info") == 0 || std::strcmp(s, "1") == 0)
    return LogLevel::kInfo;
  if (std::strcmp(s, "warn") == 0 || std::strcmp(s, "warning") == 0 ||
      std::strcmp(s, "2") == 0)
    return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0 || std::strcmp(s, "3") == 0)
    return LogLevel::kError;
  if (std::strcmp(s, "off") == 0 || std::strcmp(s, "none") == 0 ||
      std::strcmp(s, "4") == 0)
    return LogLevel::kOff;
  return fallback;
}

inline std::atomic<int>& LogThreshold() {
  static std::atomic<int> threshold{static_cast<int>(
      ParseLogLevel(std::getenv("SUJ_LOG_LEVEL"), LogLevel::kWarn))};
  return threshold;
}

inline std::atomic<LogSink>& LogSinkSlot() {
  static std::atomic<LogSink> sink{&DefaultLogSink};
  return sink;
}

}  // namespace internal

inline void SetLogLevel(LogLevel level) {
  internal::LogThreshold().store(static_cast<int>(level),
                                 std::memory_order_relaxed);
}

inline LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      internal::LogThreshold().load(std::memory_order_relaxed));
}

/// True when a message at `level` would be emitted. SUJ_LOG's filter.
inline bool LogEnabled(LogLevel level) {
  return level != LogLevel::kOff &&
         static_cast<int>(level) >=
             internal::LogThreshold().load(std::memory_order_relaxed);
}

/// Installs a new sink and returns the previous one (restore it when a
/// test-scoped capture ends). Thread-safe.
inline LogSink SetLogSink(LogSink sink) {
  return internal::LogSinkSlot().exchange(
      sink != nullptr ? sink : &DefaultLogSink, std::memory_order_acq_rel);
}

/// One in-flight log statement: collects the streamed message and hands
/// it to the installed sink on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    internal::LogSinkSlot().load(std::memory_order_acquire)(
        level_, file_, line_, stream_.str());
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  const LogLevel level_;
  const char* const file_;
  const int line_;
  std::ostringstream stream_;
};

}  // namespace suj

#define SUJ_CHECK(expr)                                 \
  do {                                                  \
    if (!(expr)) ::suj::CheckFailed(#expr, __FILE__, __LINE__); \
  } while (0)

#define SUJ_DCHECK(expr) SUJ_CHECK(expr)

// Severity tokens accepted by SUJ_LOG. Token-pasted so call sites read
// SUJ_LOG(WARN) << ...; misspelled severities fail to compile.
#define SUJ_LOG_SEVERITY_DEBUG ::suj::LogLevel::kDebug
#define SUJ_LOG_SEVERITY_INFO ::suj::LogLevel::kInfo
#define SUJ_LOG_SEVERITY_WARN ::suj::LogLevel::kWarn
#define SUJ_LOG_SEVERITY_ERROR ::suj::LogLevel::kError

// Statement-shaped (usable as the body of an unbraced if) and filtered
// before argument evaluation: the for-loop runs the LogMessage exactly
// once when enabled, never otherwise.
#define SUJ_LOG(severity)                                                   \
  for (bool suj_log_once =                                                  \
           ::suj::LogEnabled(SUJ_LOG_SEVERITY_##severity);                  \
       suj_log_once; suj_log_once = false)                                  \
  ::suj::LogMessage(SUJ_LOG_SEVERITY_##severity, __FILE__, __LINE__).stream()

#endif  // SUJ_COMMON_LOGGING_H_
