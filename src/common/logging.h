// Assertion-style checks for programmer errors.
//
// SUJ_CHECK is used for invariants that indicate a bug when violated (never
// for data-dependent failures, which return Status). Active in all build
// types, like RocksDB's assert usage in critical paths.

#ifndef SUJ_COMMON_LOGGING_H_
#define SUJ_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace suj {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "SUJ_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace suj

#define SUJ_CHECK(expr)                                 \
  do {                                                  \
    if (!(expr)) ::suj::CheckFailed(#expr, __FILE__, __LINE__); \
  } while (0)

#define SUJ_DCHECK(expr) SUJ_CHECK(expr)

#endif  // SUJ_COMMON_LOGGING_H_
