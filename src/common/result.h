// Result<T>: a value-or-Status holder, the return type of fallible factories.

#ifndef SUJ_COMMON_RESULT_H_
#define SUJ_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace suj {

/// \brief Holds either a successfully produced T or the Status describing
/// why production failed.
///
/// Usage:
/// \code
///   Result<Relation> r = builder.Finish();
///   if (!r.ok()) return r.status();
///   Relation rel = std::move(r).value();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SUJ_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // value() on an error Result is a programmer error; the check stays on
  // in release builds (like CHECK in production database code) so misuse
  // aborts with a message instead of undefined behavior.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Unwraps a Result into `lhs`, propagating errors to the caller.
#define SUJ_ASSIGN_OR_RETURN(lhs, expr)          \
  auto SUJ_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!SUJ_CONCAT_(_res_, __LINE__).ok())        \
    return SUJ_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(SUJ_CONCAT_(_res_, __LINE__)).value()

#define SUJ_CONCAT_INNER_(a, b) a##b
#define SUJ_CONCAT_(a, b) SUJ_CONCAT_INNER_(a, b)

}  // namespace suj

#endif  // SUJ_COMMON_RESULT_H_
