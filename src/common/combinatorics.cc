#include "common/combinatorics.h"

#include <cassert>

#if defined(__has_include)
#if __has_include(<version>)
#include <version>
#endif
#endif

#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
#include <bit>
#define SUJ_HAS_STD_POPCOUNT 1
#endif

namespace suj {

int PopCount(SubsetMask mask) {
#if SUJ_HAS_STD_POPCOUNT
  return std::popcount(mask);
#else
  // Portable fallback (pre-C++20): Kernighan's bit-clearing loop.
  int count = 0;
  while (mask != 0) {
    mask &= mask - 1;
    ++count;
  }
  return count;
#endif
}

double Binomial(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
  }
  return result;
}

std::vector<SubsetMask> SubsetsOfSize(int n, int k) {
  assert(n >= 0 && n < 64);
  std::vector<SubsetMask> out;
  if (k < 0 || k > n) return out;
  if (k == 0) {
    out.push_back(0);
    return out;
  }
  // Gosper's hack: iterate masks with exactly k bits in increasing order.
  SubsetMask mask = (1ULL << k) - 1;
  const SubsetMask limit = 1ULL << n;
  while (mask < limit) {
    out.push_back(mask);
    SubsetMask c = mask & -mask;
    SubsetMask r = mask + c;
    mask = (((r ^ mask) >> 2) / c) | r;
    if (c == 0) break;  // defensive: mask == 0 cannot happen for k >= 1
  }
  return out;
}

std::vector<SubsetMask> SubsetsOfSizeContaining(int n, int k, int must) {
  assert(must >= 0 && must < n);
  std::vector<SubsetMask> out;
  if (k < 1 || k > n) return out;
  // Choose the remaining k-1 elements from {0..n-1} \ {must}: enumerate
  // subsets of size k-1 of n-1 "virtual" positions, then expand indices
  // >= must by one.
  for (SubsetMask sub : SubsetsOfSize(n - 1, k - 1)) {
    SubsetMask expanded = 0;
    for (int i = 0; i < n - 1; ++i) {
      if (sub & (1ULL << i)) {
        int real = i < must ? i : i + 1;
        expanded |= 1ULL << real;
      }
    }
    out.push_back(expanded | (1ULL << must));
  }
  return out;
}

std::vector<SubsetMask> NonEmptySubsetsOf(SubsetMask universe) {
  std::vector<SubsetMask> out;
  // Standard submask enumeration, collected then reversed to ascending order.
  for (SubsetMask sub = universe; sub != 0; sub = (sub - 1) & universe) {
    out.push_back(sub);
  }
  std::vector<SubsetMask> asc(out.rbegin(), out.rend());
  return asc;
}

std::vector<int> MaskToIndices(SubsetMask mask) {
  std::vector<int> idx;
  for (int i = 0; i < 64; ++i) {
    if (mask & (1ULL << i)) idx.push_back(i);
  }
  return idx;
}

}  // namespace suj
