// Wire codec primitives: explicit little-endian serialization for the
// net layer's length-prefixed binary protocol (net/protocol.h).
//
// WireWriter appends fixed-width integers, doubles, and length-prefixed
// byte strings to a growing buffer; WireReader parses the same encoding
// with bounds checking and returns Status (never reads past the end, so
// a malformed or truncated frame from an untrusted peer degrades into
// InvalidArgument, not undefined behavior). Byte order is fixed
// little-endian regardless of host: two machines always agree on the
// encoding, and on LE hosts the shifts compile down to plain loads.
//
// Tuples cross the wire in their canonical storage encoding
// (Tuple::Encode(), the paper's `t.val`): it is self-delimiting and
// injective, so the bytes a client receives are directly comparable to
// in-process output — the wire determinism tests compare raw bytes.
// DecodeTuple is the inverse, for clients that want Values back.

#ifndef SUJ_COMMON_WIRE_H_
#define SUJ_COMMON_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"

namespace suj {

/// \brief Appends little-endian primitives to a byte buffer.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) {
    char buf[4];
    for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)));
    out_->append(buf, 4);
  }
  void PutU64(uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)));
    out_->append(buf, 8);
  }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    PutU64(bits);
  }
  /// Length-prefixed bytes (u32 length + raw payload).
  void PutBytes(std::string_view bytes) {
    PutU32(static_cast<uint32_t>(bytes.size()));
    out_->append(bytes.data(), bytes.size());
  }

 private:
  std::string* out_;
};

/// \brief Bounds-checked reader over one received payload.
///
/// Every getter returns InvalidArgument instead of reading past the end;
/// callers finish with ExpectDone() to reject trailing garbage.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8() {
    SUJ_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> GetU32() {
    SUJ_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  Result<uint64_t> GetU64() {
    SUJ_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  Result<double> GetDouble() {
    auto bits = GetU64();
    if (!bits.ok()) return bits.status();
    double v;
    uint64_t b = *bits;
    std::memcpy(&v, &b, 8);
    return v;
  }
  /// Length-prefixed bytes; the view aliases the reader's buffer.
  Result<std::string_view> GetBytes() {
    auto len = GetU32();
    if (!len.ok()) return len.status();
    SUJ_RETURN_NOT_OK(Need(*len));
    std::string_view out = data_.substr(pos_, *len);
    pos_ += *len;
    return out;
  }
  Result<std::string> GetString() {
    auto bytes = GetBytes();
    if (!bytes.ok()) return bytes.status();
    return std::string(*bytes);
  }

  size_t remaining() const { return data_.size() - pos_; }
  /// Rejects payloads longer than their message's fields.
  Status ExpectDone() const {
    if (pos_ != data_.size()) {
      return Status::InvalidArgument(
          "wire payload has " + std::to_string(remaining()) +
          " trailing byte(s)");
    }
    return Status::OK();
  }

 private:
  Status Need(size_t n) const {
    if (data_.size() - pos_ < n) {
      return Status::InvalidArgument("wire payload truncated: need " +
                                     std::to_string(n) + " byte(s), have " +
                                     std::to_string(data_.size() - pos_));
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// StatusCode <-> wire byte. Unknown wire bytes decode to kInternal
/// rather than failing: a newer peer's codes must not brick an older one.
uint8_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint8_t wire);

class Tuple;  // storage/tuple.h

/// Parses one canonical tuple encoding (Tuple::Encode()) back into
/// values. Inverse of the storage encoding: `DecodeTuple(t.Encode())`
/// equals `t` and re-encodes to the same bytes.
Result<Tuple> DecodeTuple(std::string_view encoded);

}  // namespace suj

#endif  // SUJ_COMMON_WIRE_H_
