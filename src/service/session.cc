#include "service/session.h"

#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace suj {

Result<std::unique_ptr<SamplingSession>> SamplingSession::Create(
    uint64_t id, PreparedUnionPtr plan, SessionOptions options, Rng rng) {
  if (plan == nullptr) {
    return Status::InvalidArgument("null prepared plan");
  }
  if (options.worker_threads == 0) {
    return Status::InvalidArgument(
        "worker_threads must be >= 1 (it is a per-request executor width, "
        "not an off switch)");
  }
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  return std::unique_ptr<SamplingSession>(
      new SamplingSession(id, std::move(plan), options, rng));
}

Status SamplingSession::EnsureSampler() {
  if (union_sampler_ != nullptr || online_sampler_ != nullptr) {
    return Status::OK();
  }
  if (options_.mode == SessionOptions::Mode::kOracle ||
      options_.mode == SessionOptions::Mode::kRevision) {
    UnionSampler::Options o;
    o.plan_id = plan_->plan_id();
    o.max_draws_per_round = options_.max_draws_per_round;
    std::vector<std::unique_ptr<JoinSampler>> samplers;
    if (options_.mode == SessionOptions::Mode::kRevision) {
      // Decentralized Algorithm 1 on the epoch-reconciled executor path
      // — at EVERY worker_threads, so the session's sequence does not
      // depend on the serving host's thread configuration. The protocol
      // runs on a session-lived RevisionState: ownership learned for one
      // request keeps paying for every later request and stream chunk.
      o.mode = UnionSampler::Mode::kRevision;
      o.num_threads = options_.worker_threads;
      o.batch_size = options_.batch_size;
      o.sampler_factory = plan_->MakeJoinSamplerFactory();
      o.max_revision_surplus = options_.max_revision_surplus;
      revision_state_ = std::make_unique<RevisionState>();
    } else {
      o.mode = UnionSampler::Mode::kMembershipOracle;
      if (options_.worker_threads > 1) {
        o.num_threads = options_.worker_threads;
        o.batch_size = options_.batch_size;
        o.sampler_factory = plan_->MakeJoinSamplerFactory();
      } else {
        auto built = plan_->MakeJoinSamplerFactory()();
        if (!built.ok()) return built.status();
        samplers = std::move(built).value();
      }
    }
    auto sampler =
        UnionSampler::Create(plan_->joins(), std::move(samplers),
                             plan_->estimates(), plan_->probers(), o);
    if (!sampler.ok()) return sampler.status();
    union_sampler_ = std::move(sampler).value();
    return Status::OK();
  }

  // kOnline: private walker over the shared cache + probers, then the
  // online sampler warm-started from the plan's estimates. The session's
  // warm-up walks (if any) run here — on the first request's thread, so
  // a stream's producer overlaps them with the consumer's setup — and
  // their records become this session's reuse pool.
  RandomWalkOverlapEstimator::Options w;
  w.probers = plan_->probers();
  w.min_walks = options_.warmup_walks;
  w.max_walks = options_.warmup_walks;
  w.wander_factory = plan_->MakeWanderFactory();  // null when unsharded
  auto walker = RandomWalkOverlapEstimator::Create(
      plan_->joins(), plan_->index_cache().get(), w);
  if (!walker.ok()) return walker.status();
  walker_ = std::move(walker).value();
  if (options_.warmup_walks > 0) {
    SUJ_RETURN_NOT_OK(walker_->Warmup(rng_));
  }

  OnlineUnionSampler::Options o;
  o.mode = UnionSampler::Mode::kMembershipOracle;
  o.plan_id = plan_->plan_id();
  o.probers = plan_->probers();
  o.enable_reuse = options_.enable_reuse;
  o.backtrack_interval = options_.backtrack_interval;
  o.max_draws_per_round = options_.max_draws_per_round;
  o.wander_factory = plan_->MakeWanderFactory();
  if (options_.worker_threads > 1) {
    o.index_cache = plan_->index_cache();
    o.num_threads = options_.worker_threads;
    o.batch_size = options_.batch_size;
  }
  auto sampler = OnlineUnionSampler::Create(plan_->joins(), walker_.get(),
                                            plan_->estimates(), o);
  if (!sampler.ok()) return sampler.status();
  online_sampler_ = std::move(sampler).value();
  return Status::OK();
}

Result<std::vector<Tuple>> SamplingSession::SampleLocked(size_t n) {
  if (plan_->shards() != nullptr) {
    // Every request and every stream chunk passes through here, so a
    // shard failing mid-stream surfaces as kUnavailable on the next
    // chunk — a routed draw could land on the dead shard, and silently
    // re-routing would bias the sample.
    SUJ_RETURN_NOT_OK(plan_->shards()->CheckAvailable());
  }
  SUJ_RETURN_NOT_OK(EnsureSampler());
  static obs::Histogram* const sample_ns =
      obs::MetricsRegistry::Global().GetHistogram(
          "suj_service_sample_ns", obs::Histogram::DefaultLatencyBoundsNs());
  const int64_t start_ns = obs::MonotonicNs();
  obs::ScopedSpan walk_span(obs::Stage::kWalk);
  auto result = options_.mode == SessionOptions::Mode::kOnline
                    ? online_sampler_->Sample(n, rng_)
                : options_.mode == SessionOptions::Mode::kRevision
                    ? union_sampler_->Sample(n, rng_, *revision_state_)
                    : union_sampler_->Sample(n, rng_);
  sample_ns->Observe(
      static_cast<uint64_t>(obs::MonotonicNs() - start_ns));
  if (!result.ok()) return result.status();
  ++requests_;
  tuples_delivered_ += result->size();
  UpdateStatsSnapshot();
  return result;
}

Result<std::vector<Tuple>> SamplingSession::Sample(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  return SampleLocked(n);
}

Result<std::vector<Tuple>> SamplingSession::Sample(
    size_t n, AdmissionController& admission, AdmitMode mode,
    const std::atomic<bool>* cancelled) {
  auto is_cancelled = [&] {
    return cancelled != nullptr &&
           cancelled->load(std::memory_order_relaxed);
  };
  if (mode == AdmitMode::kReject) {
    // Fail-fast end to end: a busy session is backpressure just like a
    // full admission controller — never park a load-shedding caller.
    std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    if (!lock.owns_lock()) {
      return Status::ResourceExhausted(
          "session " + std::to_string(id_) +
          " is busy with another request; retry later or use blocking "
          "admission");
    }
    auto permit = admission.TryAdmit();
    if (!permit.ok()) return permit.status();
    return SampleLocked(n);
  }
  // Session turn first, admission second (see header). No deadlock:
  // admission slots are released by requests that hold OTHER sessions'
  // mutexes (or none), never this one — only we hold it here.
  //
  // Cancellable callers poll for the mutex instead of parking on it: the
  // current holder may itself be waiting out a saturated admission
  // queue, and a cancellation must not wait behind that.
  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  if (cancelled != nullptr) {
    while (!lock.try_lock()) {
      if (is_cancelled()) {
        return Status::ResourceExhausted("request cancelled");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  } else {
    lock.lock();
  }
  if (is_cancelled()) {
    return Status::ResourceExhausted("request cancelled");
  }
  Result<AdmissionController::Permit> permit = [&] {
    obs::ScopedSpan admit_span(obs::Stage::kAdmissionWait);
    return admission.Admit(cancelled);
  }();
  if (!permit.ok()) return permit.status();
  if (is_cancelled()) {
    // Cancelled between admission and sampling: don't burn the slot on
    // a result nobody will read.
    return Status::ResourceExhausted("request cancelled");
  }
  return SampleLocked(n);
}

void SamplingSession::UpdateStatsSnapshot() {
  SessionStatsSnapshot s;
  s.session_id = id_;
  s.plan_id = plan_->plan_id();
  s.query = plan_->name();
  s.requests = requests_;
  s.tuples_delivered = tuples_delivered_;
  s.sampler.plan_id = plan_->plan_id();
  if (online_sampler_ != nullptr) {
    s.sampler = online_sampler_->stats();
  } else if (union_sampler_ != nullptr) {
    static_cast<UnionSampleStats&>(s.sampler) = union_sampler_->stats();
  }
  if (revision_state_ != nullptr) {
    s.revision_buffered = revision_state_->buffered();
    s.revision_surplus_high_water = s.sampler.revision_surplus_high_water;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_snapshot_ = std::move(s);
}

SessionStatsSnapshot SamplingSession::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  SessionStatsSnapshot s = stats_snapshot_;
  // A never-sampled session still identifies itself.
  if (s.session_id == 0) {
    s.session_id = id_;
    s.plan_id = plan_->plan_id();
    s.query = plan_->name();
    s.sampler.plan_id = plan_->plan_id();
  }
  return s;
}

SessionManager::SessionManager(Options options)
    : options_(options), substream_cursor_(options.seed) {}

Result<std::shared_ptr<SamplingSession>> SessionManager::Open(
    PreparedUnionPtr plan, SessionOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= options_.max_sessions) {
    return Status::ResourceExhausted(
        "session limit reached (" + std::to_string(sessions_.size()) + "/" +
        std::to_string(options_.max_sessions) + "); close sessions first");
  }
  Rng session_rng = substream_cursor_;
  auto session = SamplingSession::Create(next_id_, std::move(plan), options,
                                         session_rng);
  if (!session.ok()) return session.status();
  // Only a successful open consumes an id and a substream: failed opens
  // must not shift later sessions' randomness.
  substream_cursor_.Jump();
  ++ever_opened_;
  std::shared_ptr<SamplingSession> shared = std::move(session).value();
  sessions_.emplace(next_id_++, shared);
  return shared;
}

Result<std::shared_ptr<SamplingSession>> SessionManager::Get(
    uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  return it->second;
}

Status SessionManager::Close(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  return Status::OK();
}

std::vector<uint64_t> SessionManager::ReapIdle(int64_t now_ns,
                                               int64_t idle_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> reaped;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const int64_t last = it->second->last_activity_ns();
    if (last != 0 && now_ns - last > idle_ns) {
      reaped.push_back(it->first);
      // Erase drops only the manager's reference; a request still
      // holding the shared_ptr (e.g. parked in admission) finishes
      // safely against the orphaned session.
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  return reaped;
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

uint64_t SessionManager::ever_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ever_opened_;
}

}  // namespace suj
