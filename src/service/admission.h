// AdmissionController: bounds in-flight sampling work and exposes
// backpressure.
//
// Every service request (one Sample call, one stream chunk) holds a
// Permit while it runs. When all slots are taken, callers either block
// in strict FIFO order (Admit — fairness: a long stream cannot starve a
// later interactive request, because each of its chunks re-queues at the
// tail) or are rejected immediately with ResourceExhausted (TryAdmit —
// the load-shedding signal clients retry on). This is what keeps
// "millions of users" from translating into an unbounded thread pile-up:
// the worker pool underneath sees at most max_inflight concurrent
// requests, each of which fans out over its own bounded batch executor.

#ifndef SUJ_SERVICE_ADMISSION_H_
#define SUJ_SERVICE_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/result.h"

namespace suj {

/// How a request behaves when the service is saturated.
enum class AdmitMode {
  kWait,    ///< block until a slot frees (FIFO-fair)
  kReject,  ///< fail fast with ResourceExhausted (load shedding)
};

/// \brief FIFO-fair counting semaphore with reject-or-wait admission.
///
/// Must outlive every Permit it issued (the service owns both, so this
/// holds by construction there).
class AdmissionController {
 public:
  struct Options {
    /// Concurrent requests allowed past admission. 0 is invalid.
    size_t max_inflight = 4;
    /// Bound on the FIFO wait queue behind the slots. Admit() calls
    /// arriving when this many waiters are already parked fail with
    /// ResourceExhausted instead of queueing — under sustained overload
    /// the queue (and every waiter's latency) would otherwise grow
    /// without bound, which converts overload into timeouts for
    /// EVERYONE instead of fast sheds for the excess. 0 keeps the
    /// legacy unbounded behavior (in-process callers that prefer
    /// blocking to shedding).
    size_t max_queue_depth = 0;
  };

  struct Snapshot {
    uint64_t admitted = 0;  ///< permits granted
    uint64_t rejected = 0;  ///< TryAdmit calls turned away
    uint64_t waited = 0;    ///< Admit calls that had to block
    /// Admit calls shed because the bounded wait queue was full
    /// (counted separately from `rejected`: overflow means sustained
    /// overload, not just a momentary slot race).
    uint64_t queue_overflows = 0;
    size_t in_flight = 0;
    size_t peak_in_flight = 0;
    size_t peak_queue_depth = 0;
  };

  /// \brief RAII admission slot; releasing (or destroying) it wakes the
  /// next FIFO waiter. Move-only.
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Permit& operator=(Permit&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;
    ~Permit() { Release(); }

    bool active() const { return controller_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    explicit Permit(AdmissionController* controller)
        : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  explicit AdmissionController(Options options);

  /// Non-blocking admission. Rejects with ResourceExhausted when every
  /// slot is taken OR blocked waiters are queued (jumping the FIFO queue
  /// would defeat fairness).
  Result<Permit> TryAdmit();

  /// Blocking admission in strict arrival order. When `cancelled` is
  /// non-null the wait aborts (with ResourceExhausted and its FIFO place
  /// given up) once the flag reads true AND CancelWake() is called —
  /// streams use this so teardown never waits out a saturated queue.
  /// With Options::max_queue_depth set, a call that would park beyond
  /// the bound sheds immediately with ResourceExhausted instead.
  Result<Permit> Admit(const std::atomic<bool>* cancelled = nullptr);

  /// Wakes blocked Admit(cancelled) callers so they can observe their
  /// cancellation flags. Takes the admission mutex before notifying:
  /// the flag itself is set outside it, so an unserialized notify could
  /// land between a waiter's predicate check and its park — a lost
  /// wakeup that would hang stream teardown. Spurious wakes are
  /// harmless.
  void CancelWake() {
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }

  size_t max_inflight() const { return options_.max_inflight; }
  size_t in_flight() const;
  Snapshot snapshot() const;

 private:
  void ReleaseSlot();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t in_flight_ = 0;
  /// FIFO admission queue: a waiter admits only when its ticket is at
  /// the front AND a slot is free. A deque (not a served-counter pair)
  /// so a cancelled waiter can give up its place without wedging the
  /// tickets behind it.
  std::deque<uint64_t> queue_;
  uint64_t next_ticket_ = 0;
  Snapshot stats_;
};

}  // namespace suj

#endif  // SUJ_SERVICE_ADMISSION_H_
