#include "service/admission.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace suj {
namespace {

obs::Counter* AdmittedCounter() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("suj_admission_admitted_total");
  return c;
}

obs::Counter* RejectedCounter() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("suj_admission_rejected_total");
  return c;
}

obs::Counter* WaitedCounter() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("suj_admission_waited_total");
  return c;
}

obs::Counter* QueueOverflowCounter() {
  static obs::Counter* const c = obs::MetricsRegistry::Global().GetCounter(
      "suj_admission_queue_overflow_total");
  return c;
}

}  // namespace

AdmissionController::AdmissionController(Options options)
    : options_(options) {
  SUJ_CHECK(options_.max_inflight > 0);
}

void AdmissionController::Permit::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

Result<AdmissionController::Permit> AdmissionController::TryAdmit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!queue_.empty() || in_flight_ >= options_.max_inflight) {
    ++stats_.rejected;
    RejectedCounter()->Increment();
    return Status::ResourceExhausted(
        "admission limit reached (" + std::to_string(in_flight_) + "/" +
        std::to_string(options_.max_inflight) +
        " in flight); retry later or use blocking admission");
  }
  ++in_flight_;
  ++stats_.admitted;
  AdmittedCounter()->Increment();
  stats_.peak_in_flight = std::max(stats_.peak_in_flight, in_flight_);
  return Permit(this);
}

Result<AdmissionController::Permit> AdmissionController::Admit(
    const std::atomic<bool>* cancelled) {
  std::unique_lock<std::mutex> lock(mu_);
  // Shed before parking: a full wait queue is the backpressure signal.
  // (A non-empty queue means this arrival would wait behind it — FIFO —
  // so the bound only ever sheds calls that would actually park.)
  if (options_.max_queue_depth > 0 &&
      queue_.size() >= options_.max_queue_depth) {
    ++stats_.queue_overflows;
    QueueOverflowCounter()->Increment();
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queue_.size()) + "/" +
        std::to_string(options_.max_queue_depth) +
        " waiting); shedding load, retry with backoff");
  }
  const uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
  auto my_turn = [&] {
    return queue_.front() == ticket && in_flight_ < options_.max_inflight;
  };
  auto is_cancelled = [&] {
    return cancelled != nullptr &&
           cancelled->load(std::memory_order_relaxed);
  };
  if (!my_turn()) {
    ++stats_.waited;
    WaitedCounter()->Increment();
  }
  cv_.wait(lock, [&] { return my_turn() || is_cancelled(); });
  if (!my_turn() && is_cancelled()) {
    // Give up the FIFO place so the tickets behind are not wedged.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (*it == ticket) {
        queue_.erase(it);
        break;
      }
    }
    cv_.notify_all();
    return Status::ResourceExhausted("admission wait cancelled");
  }
  queue_.pop_front();
  ++in_flight_;
  ++stats_.admitted;
  AdmittedCounter()->Increment();
  stats_.peak_in_flight = std::max(stats_.peak_in_flight, in_flight_);
  // The next ticket can also be admittable while slots remain; wake the
  // queue to check.
  cv_.notify_all();
  return Permit(this);
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SUJ_CHECK(in_flight_ > 0);
    --in_flight_;
  }
  cv_.notify_all();
}

size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

AdmissionController::Snapshot AdmissionController::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s = stats_;
  s.in_flight = in_flight_;
  return s;
}

}  // namespace suj
