// SamplingSession + SessionManager: per-client sampling state over a
// shared PreparedUnion.
//
// A session owns everything one client's protocol needs — an RNG
// substream, a long-lived sampler (Algorithm 1 in its oracle or
// epoch-reconciled revision instantiation, or the online Algorithm 2
// with its private walker, reuse pool, and backtracking
// state), and cumulative stats — while sharing the plan's heavy immutable
// state (indexes, probers, estimates) with every other session. Repeated
// Sample(n) calls CONTINUE the protocol: the online session's reuse pool
// drains across requests, backtracking refines estimates across
// requests, and abandoned covers stay abandoned. That is the paper's
// reuse story lifted from one call to a client lifetime.
//
// Determinism: session k (creation order) draws from Rng(service seed)
// advanced k jumps (2^128 steps apiece, common/rng.h), so its sample
// sequence is a function of (service seed, k, its own call pattern) only
// — concurrent sessions interleave arbitrarily without perturbing each
// other, and substreams never overlap. One session serves ONE logical
// client: calls on the same session are serialized by an internal mutex,
// but their order is the caller's contract, not the session's.

#ifndef SUJ_SERVICE_SESSION_H_
#define SUJ_SERVICE_SESSION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/online_union_sampler.h"
#include "core/revision_state.h"
#include "core/union_sampler.h"
#include "service/admission.h"
#include "service/prepared_union.h"

namespace suj {

/// Per-session knobs.
struct SessionOptions {
  enum class Mode {
    /// Algorithm 1, centralized: exact-weight draws over the plan's
    /// prebuilt weight indexes + membership-oracle ownership. Lowest
    /// per-request latency; the default.
    kOracle,
    /// Algorithm 2: session-private wander-join walker, reuse pool, and
    /// optional backtracking, warm-started from the plan's estimates.
    kOnline,
    /// Algorithm 1, decentralized: ownership learned on the fly via the
    /// revision protocol — no membership probes on the hot path. Always
    /// runs the epoch-reconciled executor path (core/ownership_map.h)
    /// on a session-lived RevisionState (core/revision_state.h): the
    /// learned cover, epoch schedule, and epoch-seed stream persist
    /// across the session's Sample calls and SampleStream chunks, so the
    /// session's sequence is byte-identical for every worker_threads
    /// setting (including 1) AND for every chunking of the same total —
    /// K chunked calls deliver exactly what one call for the sum would.
    kRevision,
  };
  Mode mode = Mode::kOracle;
  /// Worker threads for this session's requests (>1 engages the batched
  /// parallel executor inside each Sample call; kRevision sessions use
  /// the executor path even at 1); the admission controller bounds how
  /// many sessions run at once.
  size_t worker_threads = 1;
  size_t batch_size = 64;
  uint64_t max_draws_per_round = 50000;
  // ---- kRevision only ----
  /// Bounds the finalized surplus the session's RevisionState may hold
  /// between requests (epoch overshoot of the fixed ramp). Enforced by
  /// lowering the epoch ramp's cap until the largest epoch fits, floored
  /// at one batch — a pure function of the options, so the session's
  /// stream stays byte-identical under every request chunking. 0 keeps
  /// the default cap (batch_size * 16). Peak usage is reported as
  /// revision_surplus_high_water in the session's stats.
  size_t max_revision_surplus = 0;
  // ---- kOnline only ----
  /// Session-local warm-up walks per join, run lazily on the first
  /// request (streams overlap them with delivery); their records seed
  /// the session's private reuse pool. 0 skips straight to fresh walks.
  uint64_t warmup_walks = 0;
  bool enable_reuse = true;
  /// phi of Algorithm 2; 0 disables backtracking.
  uint64_t backtrack_interval = 0;
};

/// Cumulative accounting for one session.
struct SessionStatsSnapshot {
  uint64_t session_id = 0;
  uint64_t plan_id = 0;
  std::string query;
  uint64_t requests = 0;        ///< completed Sample calls
  uint64_t tuples_delivered = 0;
  /// kRevision only: finalized tuples the session's RevisionState
  /// generated ahead of demand and holds for the next request (epoch
  /// overshoot; 0 for other modes). Together with the sampler counters
  /// this closes the session-level conservation identity:
  /// accepted - removed_by_revision - reconcile_dropped ==
  /// tuples_delivered + revision_buffered.
  uint64_t revision_buffered = 0;
  /// kRevision only: the highest revision_buffered ever observed at a
  /// request boundary (mirrors sampler.revision_surplus_high_water;
  /// bounded by SessionOptions::max_revision_surplus).
  uint64_t revision_surplus_high_water = 0;
  /// Sampler-level counters (plan_id-stamped). Oracle and revision
  /// sessions fill the UnionSampleStats base (revision sessions include
  /// the epoch/reconciliation counters); online sessions also fill the
  /// reuse / backtracking extension.
  OnlineUnionSampleStats sampler;
};

/// \brief One client's resumable sampling state.
class SamplingSession {
 public:
  /// `rng` must be the session's private substream (SessionManager hands
  /// out jumps of the service seed). Sampler construction is lazy — the
  /// first Sample call (often on a stream's producer thread) pays it.
  static Result<std::unique_ptr<SamplingSession>> Create(
      uint64_t id, PreparedUnionPtr plan, SessionOptions options, Rng rng);

  /// Draws `n` tuples, continuing this session's protocol. Serialized:
  /// concurrent calls on one session run one at a time.
  Result<std::vector<Tuple>> Sample(size_t n);

  /// Same, admission-gated. The permit is taken AFTER this session's
  /// turn comes up (inside the serialization mutex), so a request that
  /// is merely queued behind its own session's previous request never
  /// occupies an admission slot — one slow session cannot starve the
  /// service by parking mutex-waiters on every slot. AdmitMode::kReject
  /// is fail-fast all the way: a session that is mid-request rejects
  /// immediately with ResourceExhausted instead of queueing for its
  /// turn, so load-shedding callers never block. A non-null `cancelled`
  /// aborts a kWait admission wait (after AdmissionController::
  /// CancelWake) and skips sampling once set — stream teardown uses it
  /// so no work is done for a result nobody will read.
  Result<std::vector<Tuple>> Sample(size_t n, AdmissionController& admission,
                                    AdmitMode mode,
                                    const std::atomic<bool>* cancelled =
                                        nullptr);

  /// Never blocks on an in-flight request: returns the snapshot taken
  /// when the last request completed (monitoring must keep working
  /// precisely when the service is saturated and sessions are busy).
  SessionStatsSnapshot stats() const;

  uint64_t id() const { return id_; }
  const PreparedUnionPtr& plan() const { return plan_; }
  const SessionOptions& options() const { return options_; }

  /// Liveness stamp for server-side idle reaping. The NET layer owns
  /// time: SujServer touches on open and on every served request, then
  /// reaps via SessionManager::ReapIdle. Purely advisory — never read
  /// by the sampling protocol, so stamping cannot perturb determinism.
  void Touch(int64_t now_ns) {
    last_activity_ns_.store(now_ns, std::memory_order_relaxed);
  }
  /// 0 means "never touched" (in-process session outside any server);
  /// ReapIdle skips those.
  int64_t last_activity_ns() const {
    return last_activity_ns_.load(std::memory_order_relaxed);
  }

 private:
  SamplingSession(uint64_t id, PreparedUnionPtr plan, SessionOptions options,
                  Rng rng)
      : id_(id),
        plan_(std::move(plan)),
        options_(options),
        rng_(rng) {}

  /// Builds the mode-appropriate sampler on first use (mu_ held).
  Status EnsureSampler();

  /// The shared protocol body of both Sample overloads (mu_ held).
  Result<std::vector<Tuple>> SampleLocked(size_t n);

  /// Refreshes stats_snapshot_ from the live sampler (mu_ held).
  void UpdateStatsSnapshot();

  const uint64_t id_;
  const PreparedUnionPtr plan_;
  const SessionOptions options_;

  mutable std::mutex mu_;
  Rng rng_;
  uint64_t requests_ = 0;
  uint64_t tuples_delivered_ = 0;
  // Exactly one of these is live after EnsureSampler, per options_.mode.
  std::unique_ptr<UnionSampler> union_sampler_;
  std::unique_ptr<RandomWalkOverlapEstimator> walker_;  // kOnline
  std::unique_ptr<OnlineUnionSampler> online_sampler_;
  /// kRevision only: the session-lived resumable protocol state (learned
  /// cover + epoch schedule + undelivered surplus + pooled worker
  /// contexts), threaded through every Sample call. Torn down with the
  /// session — after eviction or Close, the last in-flight request to
  /// release the session's shared_ptr frees it; it holds values and its
  /// pooled contexts' samplers share ownership of the plan's immutable
  /// indexes (no back-references), so teardown order is never a hazard.
  std::unique_ptr<RevisionState> revision_state_;

  /// Last-completed-request stats, readable without mu_ (stats_mu_ only).
  mutable std::mutex stats_mu_;
  SessionStatsSnapshot stats_snapshot_;

  /// See Touch(). Atomic: stamped by connection handlers, read by the
  /// reaper, no lock shared with the sampling path.
  std::atomic<int64_t> last_activity_ns_{0};
};

/// \brief Owns the live sessions and their RNG substream assignment.
class SessionManager {
 public:
  struct Options {
    /// Base seed of the substream family. Session k samples from
    /// Rng(seed) advanced k jumps.
    uint64_t seed = 42;
    /// Open-session cap; Open rejects with ResourceExhausted beyond it.
    size_t max_sessions = 64;
  };

  explicit SessionManager(Options options);

  /// Opens a session on `plan`. Substream index = number of sessions
  /// ever opened (NOT current size), so closing sessions never causes
  /// substream reuse.
  Result<std::shared_ptr<SamplingSession>> Open(PreparedUnionPtr plan,
                                                SessionOptions options);

  Result<std::shared_ptr<SamplingSession>> Get(uint64_t id) const;

  /// Drops the manager's reference. In-flight requests holding the
  /// session shared_ptr finish safely.
  Status Close(uint64_t id);

  /// Closes every session whose last Touch is older than `idle_ns`
  /// (abandoned clients: the connection died without Close, or the
  /// tenant walked away mid-protocol). Sessions never touched are
  /// exempt — only the net layer stamps activity, so purely in-process
  /// sessions cannot be reaped out from under a caller. Returns the
  /// reaped ids. Sibling sessions are untouched: substream assignment
  /// happened at Open and closed ids are never reused, so reaping
  /// cannot shift any other session's RNG stream.
  std::vector<uint64_t> ReapIdle(int64_t now_ns, int64_t idle_ns);

  size_t size() const;
  uint64_t ever_opened() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  /// Next session's substream (advanced one Jump per Open; O(1) each).
  Rng substream_cursor_;
  uint64_t next_id_ = 1;
  uint64_t ever_opened_ = 0;
  std::unordered_map<uint64_t, std::shared_ptr<SamplingSession>> sessions_;
};

}  // namespace suj

#endif  // SUJ_SERVICE_SESSION_H_
