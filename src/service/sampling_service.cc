#include "service/sampling_service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace suj {

// ---------------------------------------------------------------------------
// SampleStream

SampleStream::SampleStream(std::shared_ptr<SamplingSession> session,
                           AdmissionController* admission, size_t total,
                           Options options, std::function<void()> on_destroy)
    : session_(std::move(session)),
      admission_(admission),
      total_(total),
      options_(options),
      on_destroy_(std::move(on_destroy)),
      producer_([this] { ProducerLoop(); }) {}

SampleStream::~SampleStream() {
  Cancel();
  if (producer_.joinable()) producer_.join();
  if (on_destroy_) on_destroy_();
}

void SampleStream::ProducerLoop() {
  // The producer is its own thread, so it carries its own trace: chunk
  // spans (and the admission/walk spans recorded inside Sample) land
  // here, not in the request that opened the stream. Finished at loop
  // exit — a slow STREAM shows up in the slow log as one entry covering
  // its whole lifetime, broken down by stage.
  static obs::Histogram* const chunk_ns =
      obs::MetricsRegistry::Global().GetHistogram(
          "suj_service_stream_chunk_ns",
          obs::Histogram::DefaultLatencyBoundsNs());
  obs::TraceContext trace(obs::Tracer::Global().NextTraceId(),
                          "stream_producer");
  obs::TraceScope scope(&trace);
  while (true) {
    size_t count;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return cancelled_.load() ||
               ready_.size() < options_.max_buffered_chunks;
      });
      if (cancelled_.load() || produced_ >= total_) break;
      count = std::min(options_.chunk_size, total_ - produced_);
    }
    // Admission + sampling run unlocked: Next() keeps draining while the
    // next chunk is being produced — that concurrency is the stream's
    // entire point. Each chunk takes its own FIFO turn (inside the
    // session's serialization, so waiting for the session never holds a
    // slot), which keeps a long stream sharing the service with
    // interactive requests. The cancel flag interrupts the admission
    // wait and skips not-yet-started sampling.
    const int64_t chunk_start_ns = obs::MonotonicNs();
    auto chunk =
        session_->Sample(count, *admission_, AdmitMode::kWait, &cancelled_);
    const int64_t chunk_dur_ns = obs::MonotonicNs() - chunk_start_ns;
    chunk_ns->Observe(static_cast<uint64_t>(chunk_dur_ns));
    trace.Record(obs::Stage::kStreamChunk, chunk_start_ns, chunk_dur_ns);
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load()) break;  // covers cancellation-induced errors
    if (!chunk.ok()) {
      status_ = chunk.status();
      break;
    }
    produced_ += chunk->size();
    ready_.push_back(std::move(chunk).value());
    cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
    cv_.notify_all();
  }
  obs::Tracer::Global().Finish(trace);
}

Result<std::vector<Tuple>> SampleStream::Next() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !ready_.empty() || finished_; });
  if (!ready_.empty()) {
    std::vector<Tuple> chunk = std::move(ready_.front());
    ready_.pop_front();
    cv_.notify_all();  // frees a buffer slot for the producer
    return chunk;
  }
  if (!status_.ok()) return status_;
  if (cancelled_.load()) {
    return Status::FailedPrecondition("stream was cancelled");
  }
  return std::vector<Tuple>();  // clean end of stream
}

void SampleStream::Cancel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_.store(true);
    ready_.clear();
    cv_.notify_all();
  }
  // Kick a producer parked in the admission queue so it can observe the
  // flag and abandon its FIFO place.
  admission_->CancelWake();
}

// ---------------------------------------------------------------------------
// SamplingService

SamplingService::SamplingService(ServiceOptions options)
    : options_(options),
      registry_(options.registry),
      sessions_(SessionManager::Options{options.seed, options.max_sessions}),
      admission_(AdmissionController::Options{options.max_inflight,
                                              options.max_admission_queue}) {}

Result<std::unique_ptr<SamplingService>> SamplingService::Create(
    ServiceOptions options) {
  if (options.max_inflight == 0) {
    return Status::InvalidArgument("max_inflight must be >= 1");
  }
  if (options.max_sessions == 0) {
    return Status::InvalidArgument("max_sessions must be >= 1");
  }
  if (options.max_streams == 0) {
    return Status::InvalidArgument("max_streams must be >= 1");
  }
  return std::unique_ptr<SamplingService>(new SamplingService(options));
}

namespace {

// Shared by both Prepare overloads: counts the prepare and times it into
// the prepare histogram + the current request's trace (if any).
struct PrepareInstrumentation {
  PrepareInstrumentation() : span(obs::Stage::kPrepare) {
    static obs::Counter* const prepares =
        obs::MetricsRegistry::Global().GetCounter(
            "suj_service_prepares_total");
    prepares->Increment();
  }
  ~PrepareInstrumentation() {
    static obs::Histogram* const prepare_ns =
        obs::MetricsRegistry::Global().GetHistogram(
            "suj_service_prepare_ns",
            obs::Histogram::DefaultLatencyBoundsNs());
    prepare_ns->Observe(static_cast<uint64_t>(obs::MonotonicNs() - start_ns));
  }
  int64_t start_ns = obs::MonotonicNs();
  obs::ScopedSpan span;
};

}  // namespace

Result<PreparedUnionPtr> SamplingService::Prepare(
    std::string name, std::vector<JoinSpecPtr> joins) {
  PrepareInstrumentation prep;
  return registry_.Prepare(std::move(name), std::move(joins),
                           options_.query_defaults);
}

Result<PreparedUnionPtr> SamplingService::Prepare(
    std::string name, std::vector<JoinSpecPtr> joins,
    const PreparedQueryOptions& options) {
  PrepareInstrumentation prep;
  return registry_.Prepare(std::move(name), std::move(joins), options);
}

Result<PreparedUnionPtr> SamplingService::GetQuery(
    const std::string& name) const {
  return registry_.Get(name);
}

Result<PreparedUnionPtr> SamplingService::ApplyDelta(
    const std::string& name, const std::vector<RelationDelta>& deltas) {
  const int64_t start_ns = obs::MonotonicNs();
  auto plan = registry_.ApplyDelta(name, deltas);
  if (!plan.ok()) return plan.status();
  static obs::Counter* const epochs =
      obs::MetricsRegistry::Global().GetCounter("suj_data_epochs_total");
  static obs::Counter* const delta_rows =
      obs::MetricsRegistry::Global().GetCounter("suj_delta_rows_total");
  static obs::Histogram* const refresh_ns =
      obs::MetricsRegistry::Global().GetHistogram(
          "suj_epoch_refresh_ns", obs::Histogram::DefaultLatencyBoundsNs());
  epochs->Increment();
  delta_rows->Increment((*plan)->delta_rows());
  refresh_ns->Observe(static_cast<uint64_t>(obs::MonotonicNs() - start_ns));
  return plan;
}

Status SamplingService::Evict(const std::string& name) {
  return registry_.Evict(name);
}

Result<uint64_t> SamplingService::OpenSession(const std::string& query_name,
                                              SessionOptions options) {
  auto plan = registry_.Get(query_name);
  if (!plan.ok()) return plan.status();
  auto session = sessions_.Open(std::move(plan).value(), options);
  if (!session.ok()) return session.status();
  return (*session)->id();
}

Status SamplingService::CloseSession(uint64_t session_id) {
  return sessions_.Close(session_id);
}

Result<SessionStatsSnapshot> SamplingService::SessionStats(
    uint64_t session_id) const {
  auto session = sessions_.Get(session_id);
  if (!session.ok()) return session.status();
  return (*session)->stats();
}

Result<std::vector<Tuple>> SamplingService::Sample(uint64_t session_id,
                                                   size_t n, AdmitMode mode) {
  // The session shared_ptr is snapshotted up front: a concurrent
  // CloseSession then only drops the manager's reference. Admission
  // happens inside the session's serialization (see SamplingSession).
  auto session = sessions_.Get(session_id);
  if (!session.ok()) return session.status();
  return (*session)->Sample(n, admission_, mode);
}

Result<std::unique_ptr<SampleStream>> SamplingService::OpenStream(
    uint64_t session_id, size_t total, SampleStream::Options options) {
  if (options.chunk_size == 0) {
    return Status::InvalidArgument("chunk_size must be positive");
  }
  if (options.max_buffered_chunks == 0) {
    return Status::InvalidArgument("max_buffered_chunks must be positive");
  }
  auto session = sessions_.Get(session_id);
  if (!session.ok()) return session.status();
  // Bound the producer-thread population BEFORE spawning: admission only
  // throttles requests in flight, and a parked producer holds no slot.
  size_t streams = open_streams_->fetch_add(1);
  if (streams >= options_.max_streams) {
    open_streams_->fetch_sub(1);
    return Status::ResourceExhausted(
        "stream limit reached (" + std::to_string(streams) + "/" +
        std::to_string(options_.max_streams) +
        "); close streams first");
  }
  auto counter = open_streams_;
  try {
    return std::unique_ptr<SampleStream>(new SampleStream(
        std::move(session).value(), &admission_, total, options,
        [counter] { counter->fetch_sub(1); }));
  } catch (const std::system_error& e) {
    // Producer thread creation failed (thread exhaustion): the stream
    // destructor will never run, so give the slot back here.
    counter->fetch_sub(1);
    return Status::ResourceExhausted(
        std::string("cannot start stream producer thread: ") + e.what());
  }
}

}  // namespace suj
