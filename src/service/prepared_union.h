// PreparedUnion + QueryRegistry: the prepared-query half of the sampling
// service.
//
// A union-of-joins query is accepted ONCE: the registry validates the
// spec, runs the warm-up estimation (exact, histogram, or random-walk —
// the caller picks the cost/accuracy point), selects the standard
// template, builds the membership probers and per-join weight/walk
// indexes, and pins everything as an immutable, refcounted PreparedUnion.
// Sessions share the plan by shared_ptr: evicting a query from the
// registry only unpins it — live sessions keep sampling from the plan
// they hold until they close, so eviction can never invalidate in-flight
// work.
//
// Everything inside a PreparedUnion is immutable after Build except the
// CompositeIndexCache, which is internally synchronized; concurrent
// sessions therefore need no further coordination to share one plan.

#ifndef SUJ_SERVICE_PREPARED_UNION_H_
#define SUJ_SERVICE_PREPARED_UNION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/exact_overlap.h"
#include "core/random_walk_overlap.h"
#include "core/template_selector.h"
#include "core/union_sampler.h"
#include "core/union_size_model.h"
#include "index/composite_index.h"
#include "join/exact_weight.h"
#include "join/membership.h"
#include "shard/shard_coordinator.h"
#include "storage/relation_delta.h"

namespace suj {

/// How a prepared query's warm-up estimates are produced.
enum class WarmupMode {
  /// Exact overlaps via full-join materialization. Only viable on small
  /// inputs; the reference mode for tests and demos.
  kExact,
  /// Histogram bounds (§5): column statistics only, no data access.
  /// Cheapest; estimates are upper bounds.
  kHistogram,
  /// Random-walk estimation (§6): unbiased, cost controlled by the walk
  /// budget. The production default.
  kRandomWalk,
};

/// Options for preparing one union-of-joins query.
struct PreparedQueryOptions {
  WarmupMode warmup = WarmupMode::kExact;
  /// Walk budget/confidence for WarmupMode::kRandomWalk.
  RandomWalkOverlapEstimator::Options walk_options;
  /// Seed of the (plan-build-time) warm-up walks. Per-session randomness
  /// never touches this: the plan is a pure function of (spec, options).
  /// MUST differ from the service's session seed family — session rank 0
  /// samples from un-jumped Rng(service seed), so equal seeds would make
  /// a kRandomWalk warm-up and that session replay the same stream,
  /// correlating delivered samples with the estimates. The default is a
  /// seed no one would pick for a service (the splitmix64/golden-ratio
  /// constant), keeping the streams disjoint out of the box.
  uint64_t warmup_seed = 0x9E3779B97F4A7C15ull;
  /// Template-selection knobs (§8.1.2).
  TemplateSelector::Options template_options;
  /// Prebuild the wander-join step indexes so online sessions create
  /// their walkers against a fully warmed cache.
  bool prebuild_walk_indexes = true;
  /// Sharding knobs. num_shards > 1 partitions every join's root relation
  /// at prepare time: joins() becomes the CANONICAL (vp-major reordered)
  /// specs, all samplers route through the shard coordinator, and the
  /// plan's output is byte-identical at every shard count (for fixed
  /// virtual_partitions).
  ShardOptions shard;
  /// Use the columnar descent for unsharded exact-weight samplers. The
  /// row path is the sharding reference; tests comparing a sharded plan
  /// against an unsharded one byte-for-byte set this false on the
  /// reference plan (sharded plans always sample the row path).
  bool columnar_samplers = true;
};

/// \brief One accepted query: joins + estimates + shared sampling state.
class PreparedUnion {
 public:
  /// Runs the full preparation pipeline. `plan_id` must be non-zero and
  /// unique per registry (the registry assigns it); it tags every stats
  /// block produced under this plan.
  static Result<std::shared_ptr<const PreparedUnion>> Build(
      std::string name, uint64_t plan_id, std::vector<JoinSpecPtr> joins,
      const PreparedQueryOptions& options);

  /// Epoch refresh: folds `deltas` (at most one per relation name) into
  /// `prev`'s base relations and produces the next data epoch's plan,
  /// maintaining indexes, probe arrays, overlap estimates, union weights,
  /// and the shard ledger INCREMENTALLY — state belonging to joins no
  /// delta touches is shared by pointer, and delta rows are folded into
  /// the rest rather than rebuilt from scratch. `prev` is never mutated:
  /// sessions holding it keep sampling their pinned epoch, byte-for-byte.
  /// The refreshed plan keeps the name/plan_id and shares the epoch family
  /// (latest_epoch() on ANY epoch's plan reports the family's newest).
  static Result<std::shared_ptr<const PreparedUnion>> ApplyDelta(
      const std::shared_ptr<const PreparedUnion>& prev,
      const std::vector<RelationDelta>& deltas);

  const std::string& name() const { return name_; }
  uint64_t plan_id() const { return plan_id_; }
  const std::vector<JoinSpecPtr>& joins() const { return joins_; }
  const UnionEstimates& estimates() const { return estimates_; }
  const std::vector<JoinMembershipProberPtr>& probers() const {
    return probers_;
  }
  /// The shared (internally synchronized) index cache; online sessions
  /// hand it to their walkers and parallel fresh-walk tails.
  const std::shared_ptr<CompositeIndexCache>& index_cache() const {
    return index_cache_;
  }
  /// Prebuilt exact-weight indexes, one per join (immutable, shared).
  /// Empty for sharded plans, whose per-shard indexes live in shards().
  const std::vector<ExactWeightIndexPtr>& weight_indexes() const {
    return weight_indexes_;
  }
  /// The shard coordinator, or null for unsharded plans.
  const ShardCoordinatorPtr& shards() const { return shards_; }
  /// The selected standard template (§8.1).
  const std::vector<std::string>& standard_template() const {
    return standard_template_;
  }
  /// Wall-clock seconds the preparation pipeline took (what sessions
  /// save on every request by reusing the plan). For epoch refreshes this
  /// is the incremental refresh time, not a cold build.
  double build_seconds() const { return build_seconds_; }

  /// This plan's data epoch: 0 for a cold Build, +1 per applied delta
  /// batch. A session pins the epoch of the plan it opened with (it holds
  /// the plan by shared_ptr), so resumable kRevision states stay valid
  /// across later deltas.
  uint64_t data_epoch() const { return data_epoch_; }
  /// Newest epoch in this plan's family (shared across all epochs of one
  /// prepared query). data_epoch() < latest_epoch() means this reader is
  /// pinned to a superseded snapshot.
  uint64_t latest_epoch() const {
    return family_latest_->load(std::memory_order_acquire);
  }
  /// The pre-canonical input joins this epoch was built over (deltas are
  /// resolved against these relations by name).
  const std::vector<JoinSpecPtr>& base_joins() const { return base_joins_; }
  /// Total delta rows (appends + deletes) folded into this epoch's
  /// refresh; 0 for a cold build.
  uint64_t delta_rows() const { return delta_rows_; }

  /// Heuristic resident-size estimate, fixed at Build time: base
  /// relation bytes (columns summed per type) times a constant factor
  /// for the derived state pinned alongside them (CSR composite
  /// indexes, weight/alias tables, probers). Used by the registry's
  /// memory-budget eviction — relative plan sizes matter there, not
  /// absolute accuracy. Relations shared between joins (the synthetic
  /// overlap workloads do this by construction) are counted once.
  size_t approx_memory_bytes() const { return approx_memory_bytes_; }

  /// Factory building one private exact-weight sampler set over the
  /// prebuilt weight indexes — O(1) per sampler, so per-session (and
  /// per-parallel-worker) construction costs nothing measurable.
  UnionSampler::JoinSamplerFactory MakeJoinSamplerFactory() const;

  /// Per-join wander-walker factory for warm-up estimators and online
  /// sessions: shard-routed walkers for sharded plans, null (callers use
  /// the default WanderJoinSampler::Create path) otherwise.
  WanderSamplerFactory MakeWanderFactory() const;

 private:
  PreparedUnion(std::string name, uint64_t plan_id,
                std::vector<JoinSpecPtr> joins)
      : name_(std::move(name)), plan_id_(plan_id), joins_(std::move(joins)) {}

  std::string name_;
  uint64_t plan_id_;
  std::vector<JoinSpecPtr> joins_;
  UnionEstimates estimates_;
  std::vector<JoinMembershipProberPtr> probers_;
  std::shared_ptr<CompositeIndexCache> index_cache_;
  std::vector<ExactWeightIndexPtr> weight_indexes_;
  ShardCoordinatorPtr shards_;
  bool columnar_samplers_ = true;
  std::vector<std::string> standard_template_;
  double build_seconds_ = 0.0;
  size_t approx_memory_bytes_ = 0;

  // Epoch state. options_/base_joins_ let ApplyDelta re-run the pipeline;
  // the retained exact/merged calculators make kExact warm-up refreshes
  // incremental (only affected joins re-materialize).
  PreparedQueryOptions options_;
  std::vector<JoinSpecPtr> base_joins_;
  uint64_t data_epoch_ = 0;
  uint64_t delta_rows_ = 0;
  std::shared_ptr<std::atomic<uint64_t>> family_latest_;
  std::shared_ptr<const ExactOverlapCalculator> exact_overlap_;
  std::shared_ptr<const ShardMergedOverlapEstimator> merged_overlap_;
};

using PreparedUnionPtr = std::shared_ptr<const PreparedUnion>;

/// \brief Thread-safe name -> PreparedUnion map with build-once semantics
/// and optional LRU eviction under a plan-count or memory budget.
///
/// Eviction (explicit or budget-driven) only unpins: sessions hold their
/// plan by shared_ptr, so a plan evicted mid-session stays fully
/// servable until the last session closes — the budget bounds what the
/// REGISTRY keeps warm for future OpenSession calls, never what live
/// sessions use.
class QueryRegistry {
 public:
  struct Options {
    /// Most plans kept pinned at once; 0 = unlimited. Exceeding the cap
    /// evicts least-recently-used plans (recency = Prepare or Get).
    size_t max_plans = 0;
    /// Budget over the pinned plans' approx_memory_bytes(); 0 =
    /// unlimited. The newest plan is never evicted to fit the budget —
    /// a single over-budget plan stays (and evicts everything else),
    /// so Prepare cannot succeed yet leave the plan unusable.
    size_t memory_budget_bytes = 0;
  };

  struct Snapshot {
    uint64_t prepared = 0;  ///< successful Prepare calls
    uint64_t hits = 0;      ///< successful Get calls
    uint64_t misses = 0;    ///< Get calls for unknown names
    uint64_t evicted = 0;   ///< successful explicit Evict calls
    uint64_t evicted_for_budget = 0;  ///< LRU evictions under the budget
    size_t resident_bytes = 0;  ///< approx bytes pinned right now
  };

  QueryRegistry() = default;
  explicit QueryRegistry(Options options) : options_(options) {}

  /// Prepares and pins a query under `name`. Fails with InvalidArgument
  /// if the name is taken (prepare-once: callers Get, not re-Prepare).
  Result<PreparedUnionPtr> Prepare(std::string name,
                                   std::vector<JoinSpecPtr> joins,
                                   const PreparedQueryOptions& options);

  /// The pinned plan, or NotFound.
  Result<PreparedUnionPtr> Get(const std::string& name) const;

  /// Applies a delta batch to the prepared query `name`: builds the next
  /// data epoch via PreparedUnion::ApplyDelta (outside the registry lock;
  /// concurrent deltas serialize on a dedicated mutex), swaps it in,
  /// re-accounts the memory budget, and bumps the family's latest epoch.
  /// Sessions holding the superseded epoch are unaffected; new sessions
  /// adopt the latest. Fails with NotFound if the query is unknown or was
  /// evicted while the refresh was building.
  Result<PreparedUnionPtr> ApplyDelta(const std::string& name,
                                      const std::vector<RelationDelta>& deltas);

  /// Unpins `name`. Live sessions holding the plan are unaffected; the
  /// plan's memory is reclaimed when the last session closes.
  Status Evict(const std::string& name);

  size_t size() const;
  Snapshot snapshot() const;

 private:
  struct Entry {
    PreparedUnionPtr plan;   // null while a Prepare is in flight
    uint64_t last_use = 0;   // LRU stamp (Prepare/Get bump it)
  };

  /// Evicts LRU plans until both budgets hold (mu_ held). `keep` (the
  /// plan just prepared) is exempt.
  void EnforceBudgetLocked(const std::string& keep);

  Options options_;
  mutable std::mutex mu_;
  /// Serializes ApplyDelta builds (never held together with mu_).
  std::mutex delta_mu_;
  mutable std::unordered_map<std::string, Entry> queries_;
  uint64_t next_plan_id_ = 1;
  mutable uint64_t use_clock_ = 0;
  mutable Snapshot stats_;
};

}  // namespace suj

#endif  // SUJ_SERVICE_PREPARED_UNION_H_
