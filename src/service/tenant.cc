#include "service/tenant.h"

#include <algorithm>

#include "obs/metrics.h"

namespace suj {
namespace {

obs::Counter* ShedTenantCounter() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("suj_tenant_shed_tenant_total");
  return c;
}

obs::Counter* ShedSessionCounter() {
  static obs::Counter* const c = obs::MetricsRegistry::Global().GetCounter(
      "suj_tenant_shed_session_total");
  return c;
}

obs::Counter* SessionsRejectedCounter() {
  static obs::Counter* const c = obs::MetricsRegistry::Global().GetCounter(
      "suj_tenant_sessions_rejected_total");
  return c;
}

}  // namespace

bool TenantGovernor::Bucket::TryTake(double rate, double burst,
                                     int64_t now_ns) {
  if (rate <= 0) return true;
  const double cap = std::max(burst, 1.0);
  if (now_ns > last_refill_ns) {
    const double elapsed_s = (now_ns - last_refill_ns) * 1e-9;
    tokens = std::min(cap, tokens + elapsed_s * rate);
    last_refill_ns = now_ns;
  }
  if (tokens >= 1.0) {
    tokens -= 1.0;
    return true;
  }
  return false;
}

TenantGovernor::TenantState& TenantGovernor::GetOrCreate(
    const std::string& tenant, int64_t now_ns) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    it->second.quota = options_.default_quota;
    it->second.stats.tenant = tenant;
    // A new tenant starts with a full bucket: the first contact after
    // any idle period gets the whole burst, not an empty bucket.
    it->second.bucket.tokens = std::max(it->second.quota.burst, 1.0);
    it->second.bucket.last_refill_ns = now_ns;
  }
  return it->second;
}

void TenantGovernor::SetQuota(const std::string& tenant,
                              TenantQuotaOptions quota) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = GetOrCreate(tenant, 0);
  state.quota = quota;
  state.bucket.tokens = std::max(quota.burst, 1.0);
  for (auto& [id, bucket] : state.session_buckets) {
    bucket.tokens = std::max(quota.session_burst, 1.0);
  }
}

Status TenantGovernor::AdmitRequest(const std::string& tenant,
                                    uint64_t session_id, int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = GetOrCreate(tenant, now_ns);
  if (!state.bucket.TryTake(state.quota.requests_per_second,
                            state.quota.burst, now_ns)) {
    ++state.stats.shed_tenant_quota;
    ShedTenantCounter()->Increment();
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' is over its request quota (" +
        std::to_string(state.quota.requests_per_second) +
        " req/s); shed, retry with backoff");
  }
  if (state.quota.session_requests_per_second > 0) {
    auto [it, inserted] = state.session_buckets.try_emplace(session_id);
    if (inserted) {
      it->second.tokens = std::max(state.quota.session_burst, 1.0);
      it->second.last_refill_ns = now_ns;
    }
    if (!it->second.TryTake(state.quota.session_requests_per_second,
                            state.quota.session_burst, now_ns)) {
      // The tenant token is NOT refunded: a session hammering past its
      // limit still spends its tenant's budget, which is what makes the
      // per-session limit an isolation tool inside the tenant rather
      // than a free retry loop.
      ++state.stats.shed_session_quota;
      ShedSessionCounter()->Increment();
      return Status::ResourceExhausted(
          "session " + std::to_string(session_id) + " of tenant '" + tenant +
          "' is over its per-session rate limit");
    }
  }
  ++state.stats.admitted;
  return Status::OK();
}

Status TenantGovernor::AdmitSession(const std::string& tenant,
                                    uint64_t session_id, int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = GetOrCreate(tenant, now_ns);
  if (state.quota.max_sessions > 0 &&
      state.stats.sessions_open >= state.quota.max_sessions) {
    ++state.stats.sessions_rejected;
    SessionsRejectedCounter()->Increment();
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' is at its session cap (" +
        std::to_string(state.stats.sessions_open) + "/" +
        std::to_string(state.quota.max_sessions) + "); close sessions first");
  }
  ++state.stats.sessions_open;
  state.open_sessions.insert(session_id);
  if (state.quota.session_requests_per_second > 0) {
    Bucket bucket;
    bucket.tokens = std::max(state.quota.session_burst, 1.0);
    bucket.last_refill_ns = now_ns;
    state.session_buckets[session_id] = bucket;
  }
  return Status::OK();
}

void TenantGovernor::OnSessionClosed(const std::string& tenant,
                                     uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  if (it->second.open_sessions.erase(session_id) == 0) return;
  if (it->second.stats.sessions_open > 0) --it->second.stats.sessions_open;
  it->second.session_buckets.erase(session_id);
}

TenantSnapshot TenantGovernor::snapshot(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantSnapshot empty;
    empty.tenant = tenant;
    return empty;
  }
  return it->second.stats;
}

std::vector<TenantSnapshot> TenantGovernor::AllTenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) out.push_back(state.stats);
  std::sort(out.begin(), out.end(),
            [](const TenantSnapshot& a, const TenantSnapshot& b) {
              return a.tenant < b.tenant;
            });
  return out;
}

uint64_t TenantGovernor::total_shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t shed = 0;
  for (const auto& [name, state] : tenants_) {
    shed += state.stats.shed_tenant_quota + state.stats.shed_session_quota;
  }
  return shed;
}

uint64_t TenantGovernor::total_shed_tenant_quota() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t shed = 0;
  for (const auto& [name, state] : tenants_) {
    shed += state.stats.shed_tenant_quota;
  }
  return shed;
}

uint64_t TenantGovernor::total_shed_session_quota() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t shed = 0;
  for (const auto& [name, state] : tenants_) {
    shed += state.stats.shed_session_quota;
  }
  return shed;
}

uint64_t TenantGovernor::total_sessions_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t rejected = 0;
  for (const auto& [name, state] : tenants_) {
    rejected += state.stats.sessions_rejected;
  }
  return rejected;
}

}  // namespace suj
