// SamplingService: the serving front end over the union-sampling stack.
//
// Concurrent clients talk to one service instance:
//
//   service.Prepare("q", joins);               // once: estimate + pin plan
//   auto sid = service.OpenSession("q");       // per client: RNG substream
//   auto batch = service.Sample(*sid, 1000);   // continues the protocol
//   auto stream = service.OpenStream(*sid, 100000);
//   while (auto chunk = stream->Next(); ...)   // pull; production overlaps
//
// The pieces: QueryRegistry pins prepared plans (service/prepared_union.h),
// SessionManager owns per-client protocol state on disjoint RNG substreams
// (service/session.h), AdmissionController bounds in-flight requests with
// FIFO-fair blocking or immediate ResourceExhausted rejection
// (service/admission.h), and SampleStream delivers large requests in
// chunks produced ahead of the consumer on a bounded buffer — the first
// chunks are being consumed while warm-up walks and later chunks are
// still running, which is the ROADMAP's "async pipeline that overlaps
// warm-up with the first sample batches".
//
// Determinism contract: a session's sample sequence is a function of
// (service seed, session creation rank, that session's own sequence of
// request sizes) — never of thread interleaving, admission order, or
// other sessions' activity.

#ifndef SUJ_SERVICE_SAMPLING_SERVICE_H_
#define SUJ_SERVICE_SAMPLING_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/prepared_union.h"
#include "service/session.h"

namespace suj {

/// \brief Pull-based chunked delivery of one large sample request.
///
/// A producer thread draws chunk after chunk from the session (each chunk
/// individually admission-controlled, so a stream never monopolizes the
/// service) into a bounded buffer; Next() pops in production order.
/// Chunks are produced ahead of consumption up to the buffer bound —
/// the consumer processes chunk i while chunk i+1 is being sampled.
class SampleStream {
 public:
  struct Options {
    size_t chunk_size = 256;
    /// Producer runs this many chunks ahead of the consumer.
    size_t max_buffered_chunks = 4;
  };

  ~SampleStream();
  SampleStream(const SampleStream&) = delete;
  SampleStream& operator=(const SampleStream&) = delete;

  /// Next chunk in order. Blocks while the producer is behind. An empty
  /// vector means the stream is exhausted; errors are sticky.
  Result<std::vector<Tuple>> Next();

  /// Stops production; buffered chunks are dropped. Interrupts a
  /// producer parked in the admission queue (it abandons its FIFO
  /// place) and skips any not-yet-started sampling, so teardown on a
  /// saturated service does not wait out the queue. Idempotent.
  void Cancel();

  size_t total_requested() const { return total_; }
  const std::shared_ptr<SamplingSession>& session() const { return session_; }

 private:
  friend class SamplingService;
  SampleStream(std::shared_ptr<SamplingSession> session,
               AdmissionController* admission, size_t total, Options options,
               std::function<void()> on_destroy);

  void ProducerLoop();

  const std::shared_ptr<SamplingSession> session_;
  AdmissionController* const admission_;
  const size_t total_;
  const Options options_;
  /// Releases the service's stream-count slot (runs once, in ~SampleStream).
  std::function<void()> on_destroy_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<Tuple>> ready_;
  size_t produced_ = 0;
  bool finished_ = false;   ///< producer exited (done, error, or cancel)
  /// Atomic so the producer's admission wait can poll it lock-free.
  std::atomic<bool> cancelled_{false};
  Status status_;           ///< sticky producer error
  std::thread producer_;    ///< last member: starts after state is ready
};

/// Service-wide configuration.
struct ServiceOptions {
  /// Base seed of the per-session substream family.
  uint64_t seed = 42;
  size_t max_sessions = 64;
  /// Concurrent requests past admission (AdmissionController).
  size_t max_inflight = 4;
  /// Concurrent open streams, service-wide. Each stream runs a producer
  /// thread, so this (not admission, which a merely-parked producer
  /// never consumes) is what bounds the thread count: OpenStream
  /// rejects with ResourceExhausted beyond it.
  size_t max_streams = 16;
  /// Bound on the admission wait queue (kWait callers parked behind the
  /// in-flight slots). 0 = unbounded (legacy in-process behavior); a
  /// serving front end SHOULD set it — under overload it converts
  /// unbounded queueing (latency for everyone) into immediate
  /// ResourceExhausted sheds for the excess.
  size_t max_admission_queue = 0;
  /// Registry plan-count / memory budgets (LRU eviction past them; live
  /// sessions keep evicted plans alive). Zeros = unlimited.
  QueryRegistry::Options registry;
  /// Defaults for Prepare calls without explicit options.
  PreparedQueryOptions query_defaults;
};

/// \brief Facade tying registry, sessions, admission, and streaming
/// together. Thread-safe; one instance serves many client threads.
class SamplingService {
 public:
  static Result<std::unique_ptr<SamplingService>> Create(
      ServiceOptions options);

  // ---- Prepared queries ----
  Result<PreparedUnionPtr> Prepare(std::string name,
                                   std::vector<JoinSpecPtr> joins);
  Result<PreparedUnionPtr> Prepare(std::string name,
                                   std::vector<JoinSpecPtr> joins,
                                   const PreparedQueryOptions& options);
  Result<PreparedUnionPtr> GetQuery(const std::string& name) const;
  /// Applies append/delete batches to the named query's base relations,
  /// producing a new data epoch (incremental refresh; see QueryRegistry).
  /// Existing sessions keep sampling their pinned epoch; new sessions see
  /// the returned plan.
  Result<PreparedUnionPtr> ApplyDelta(const std::string& name,
                                      const std::vector<RelationDelta>& deltas);
  /// Unpins a query; live sessions keep their plan (see QueryRegistry).
  Status Evict(const std::string& name);

  // ---- Sessions ----
  /// Opens a session on a prepared query; returns its id.
  Result<uint64_t> OpenSession(const std::string& query_name,
                               SessionOptions options = SessionOptions());
  Status CloseSession(uint64_t session_id);
  Result<SessionStatsSnapshot> SessionStats(uint64_t session_id) const;

  // ---- Sampling ----
  /// Draws `n` tuples on the session, admission-gated per `mode`.
  Result<std::vector<Tuple>> Sample(uint64_t session_id, size_t n,
                                    AdmitMode mode = AdmitMode::kWait);

  /// Starts chunked streaming delivery of `total` tuples. The stream
  /// holds the session alive; closing the session or evicting the query
  /// does not invalidate it. Destroy (or Cancel) the stream to stop.
  /// Lifetime: every stream must be destroyed BEFORE the service — its
  /// producer runs against the service's admission controller.
  Result<std::unique_ptr<SampleStream>> OpenStream(
      uint64_t session_id, size_t total,
      SampleStream::Options options = SampleStream::Options());

  // ---- Introspection ----
  const ServiceOptions& options() const { return options_; }
  QueryRegistry& registry() { return registry_; }
  const QueryRegistry& registry() const { return registry_; }
  AdmissionController& admission() { return admission_; }
  SessionManager& sessions() { return sessions_; }

 private:
  explicit SamplingService(ServiceOptions options);

  ServiceOptions options_;
  QueryRegistry registry_;
  SessionManager sessions_;
  AdmissionController admission_;
  /// Open-stream count. Streams must be destroyed before the service
  /// (see OpenStream); the shared_ptr merely keeps the release hook
  /// self-contained rather than blessing stragglers.
  std::shared_ptr<std::atomic<size_t>> open_streams_ =
      std::make_shared<std::atomic<size_t>>(0);
};

}  // namespace suj

#endif  // SUJ_SERVICE_SAMPLING_SERVICE_H_
