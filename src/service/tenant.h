// TenantGovernor: per-tenant and per-session rate limiting, composed in
// FRONT of the global AdmissionController.
//
// The admission controller bounds how much work runs at once; it knows
// nothing about who asked. A multi-tenant front end needs the other
// half: no tenant may crowd the service out for everyone else, and no
// single session may burn its tenant's whole allowance. Both are
// enforced with token buckets — capacity (`burst`) tokens, refilled
// continuously at `requests_per_second` — checked in order
//
//   tenant bucket -> session bucket -> global admission
//
// so a rejected request is shed BEFORE it can occupy an admission slot
// or queue place. Quota rejections are always immediate
// (ResourceExhausted), never queued: a tenant at quota gets a fast,
// retryable signal while other tenants' requests keep flowing.
//
// Determinism/testability: the governor never reads a clock. Callers
// pass a monotonic timestamp (nanoseconds) into every admission call —
// the server passes steady_clock, tests pass a hand-advanced fake — so
// quota decisions are a pure function of (options, call sequence,
// timestamps).
//
// Uniformity note: quotas gate WHEN a session's requests run, never how
// their randomness is produced. A session's sample sequence stays a
// function of (service seed, session rank, its request sizes) — shedding
// or delaying requests cannot bias what the surviving requests return,
// which is what keeps the paper's per-session uniformity guarantees
// intact under throttling.

#ifndef SUJ_SERVICE_TENANT_H_
#define SUJ_SERVICE_TENANT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"

namespace suj {

/// Per-tenant limits. Zero rates/caps mean "unlimited" so a
/// default-constructed quota admits everything (opt-in hardening).
struct TenantQuotaOptions {
  /// Sustained request rate across all of the tenant's sessions.
  double requests_per_second = 0;
  /// Bucket capacity: how far above the sustained rate a tenant may
  /// burst after idling. Floored at 1 token when a rate is set.
  double burst = 8;
  /// Concurrent open sessions. 0 = unlimited.
  size_t max_sessions = 0;
  /// Per-session sustained request rate (each session gets its own
  /// bucket). 0 = unlimited.
  double session_requests_per_second = 0;
  double session_burst = 4;
};

/// Monitoring counters for one tenant.
struct TenantSnapshot {
  std::string tenant;
  uint64_t admitted = 0;          ///< requests past both buckets
  uint64_t shed_tenant_quota = 0; ///< shed by the tenant bucket
  uint64_t shed_session_quota = 0;///< shed by a per-session bucket
  uint64_t sessions_rejected = 0; ///< OpenSession calls over max_sessions
  size_t sessions_open = 0;
};

/// \brief Token-bucket quota enforcement for every tenant of a server.
///
/// Thread-safe; one instance fronts one SamplingService. Tenants are
/// created on first contact with the default quota; SetQuota overrides
/// per tenant (resetting its buckets to full).
class TenantGovernor {
 public:
  struct Options {
    TenantQuotaOptions default_quota;
  };

  explicit TenantGovernor(Options options) : options_(options) {}

  /// Replaces `tenant`'s quota (buckets refill to the new burst).
  void SetQuota(const std::string& tenant, TenantQuotaOptions quota);

  /// Charges one request to the tenant and session buckets. Order:
  /// tenant first — a session bucket is never debited when the tenant
  /// is already out, so one shed request costs exactly one token.
  /// ResourceExhausted means "shed now, retry with backoff".
  Status AdmitRequest(const std::string& tenant, uint64_t session_id,
                      int64_t now_ns);

  /// Reserves a session slot under the tenant's max_sessions cap and
  /// creates the session's bucket. Pair with OnSessionClosed.
  Status AdmitSession(const std::string& tenant, uint64_t session_id,
                      int64_t now_ns);

  /// Releases the slot and bucket of a closed/reaped session. Unknown
  /// ids are ignored (close is idempotent).
  void OnSessionClosed(const std::string& tenant, uint64_t session_id);

  TenantSnapshot snapshot(const std::string& tenant) const;
  std::vector<TenantSnapshot> AllTenants() const;
  /// Requests shed by any quota (tenant or session), service-wide.
  uint64_t total_shed() const;
  /// Per-stage breakdowns of total_shed(), service-wide — the wire
  /// stats' "WHY was it shed" counters.
  uint64_t total_shed_tenant_quota() const;
  uint64_t total_shed_session_quota() const;
  /// OpenSession calls rejected over max_sessions, service-wide.
  uint64_t total_sessions_rejected() const;

 private:
  /// Continuous-refill token bucket; time never goes backwards past it
  /// (a stale timestamp just refills nothing).
  struct Bucket {
    double tokens = 0;
    int64_t last_refill_ns = 0;
    /// Refills to min(burst, tokens + elapsed*rate), then takes one
    /// token if available. rate <= 0 always admits.
    bool TryTake(double rate, double burst, int64_t now_ns);
  };

  struct TenantState {
    TenantQuotaOptions quota;
    Bucket bucket;
    std::unordered_map<uint64_t, Bucket> session_buckets;
    /// Ids admitted and not yet closed — what makes OnSessionClosed
    /// idempotent (a stray or repeated close must not free a slot the
    /// session no longer holds).
    std::unordered_set<uint64_t> open_sessions;
    TenantSnapshot stats;
  };

  TenantState& GetOrCreate(const std::string& tenant, int64_t now_ns);

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, TenantState> tenants_;
};

}  // namespace suj

#endif  // SUJ_SERVICE_TENANT_H_
