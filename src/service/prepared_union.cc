#include "service/prepared_union.h"

#include <chrono>
#include <unordered_set>
#include <utility>

#include "core/exact_overlap.h"
#include "core/histogram_overlap.h"
#include "core/template_selector.h"
#include "join/exact_weight.h"
#include "join/wander_join.h"
#include "obs/metrics.h"
#include "stats/column_histogram.h"

namespace suj {

namespace {

// Retained warm-up state: for kExact the calculator survives into the
// plan so the NEXT epoch's refresh can re-materialize only affected joins
// (CreateIncremental); other modes keep nothing beyond the estimates.
struct WarmupOutput {
  UnionEstimates estimates;
  std::shared_ptr<const ExactOverlapCalculator> exact;
  std::shared_ptr<const ShardMergedOverlapEstimator> merged;
};

// Warm-up dispatch: produce UnionEstimates per the requested mode. For
// epoch refreshes `prev_exact`/`prev_merged` carry the previous epoch's
// kExact calculators and `affected_mask` marks the joins a delta touched;
// cold builds pass nulls.
Result<WarmupOutput> RunWarmup(const std::vector<JoinSpecPtr>& joins,
                               CompositeIndexCache* cache,
                               const std::vector<JoinMembershipProberPtr>&
                                   probers,
                               const PreparedQueryOptions& options,
                               const ShardCoordinator* shards,
                               const ExactOverlapCalculator* prev_exact =
                                   nullptr,
                               const ShardMergedOverlapEstimator* prev_merged =
                                   nullptr,
                               uint64_t affected_mask = 0) {
  WarmupOutput out;
  switch (options.warmup) {
    case WarmupMode::kExact: {
      // Sharded plans estimate through the merged per-shard calculators —
      // the coordinator's weight-merge math. The shard root slices
      // partition every join result, so the merged estimates equal the
      // canonical ones exactly (asserted by the determinism suite).
      if (shards != nullptr) {
        auto merged =
            prev_merged != nullptr
                ? ShardMergedOverlapEstimator::CreateIncremental(
                      shards->plan(), *prev_merged, affected_mask, cache)
                : ShardMergedOverlapEstimator::Create(shards->plan());
        if (!merged.ok()) return merged.status();
        auto estimates = ComputeUnionEstimates(merged->get());
        if (!estimates.ok()) return estimates.status();
        out.estimates = std::move(estimates).value();
        out.merged = std::move(merged).value();
        return out;
      }
      auto exact = prev_exact != nullptr
                       ? ExactOverlapCalculator::CreateIncremental(
                             joins, *prev_exact, affected_mask, cache)
                       : ExactOverlapCalculator::Create(joins);
      if (!exact.ok()) return exact.status();
      auto estimates = ComputeUnionEstimates(exact->get());
      if (!estimates.ok()) return estimates.status();
      out.estimates = std::move(estimates).value();
      out.exact = std::move(exact).value();
      return out;
    }
    case WarmupMode::kHistogram: {
      // Histogram estimates touch column stats only — recomputing them per
      // epoch is already cheaper than any carried state would be.
      HistogramCatalog histograms;
      HistogramOverlapEstimator::Options h;
      h.template_options = options.template_options;
      auto hist = HistogramOverlapEstimator::Create(joins, &histograms, h);
      if (!hist.ok()) return hist.status();
      auto estimates = ComputeUnionEstimates(hist->get());
      if (!estimates.ok()) return estimates.status();
      out.estimates = std::move(estimates).value();
      return out;
    }
    case WarmupMode::kRandomWalk: {
      // Epoch refreshes replay the SAME warmup_seed over the refreshed
      // probers and the seeded index cache: unaffected joins' walk indexes
      // are carried forward, and the walks themselves are a pure function
      // of (seed, data), so the refreshed estimates equal a cold build's.
      RandomWalkOverlapEstimator::Options w = options.walk_options;
      w.probers = probers;  // already built for the plan; never rebuild
      if (shards != nullptr) {
        w.wander_factory = [shards](int j) {
          return shards->MakeWanderSampler(j);
        };
      }
      auto walker = RandomWalkOverlapEstimator::Create(joins, cache, w);
      if (!walker.ok()) return walker.status();
      Rng warmup_rng(options.warmup_seed);
      SUJ_RETURN_NOT_OK((*walker)->Warmup(warmup_rng));
      auto estimates = ComputeUnionEstimates(walker->get());
      if (!estimates.ok()) return estimates.status();
      out.estimates = std::move(estimates).value();
      return out;
    }
  }
  return Status::Internal("unknown warmup mode");
}

// Base bytes of one relation: column storage by physical type (strings
// are length-summed). The multiplier below scales this to the plan's
// whole pinned footprint (CSR index arrays, alias tables, weight
// prefix sums all materialize per-row state a small constant number of
// times over the base data).
size_t ApproxRelationBytes(const Relation& rel) {
  size_t bytes = 0;
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    switch (rel.schema().field(c).type) {
      case ValueType::kInt64:
      case ValueType::kDouble:
        bytes += rel.num_rows() * 8;
        break;
      case ValueType::kString: {
        const auto& col = rel.StringColumn(c);
        bytes += col.size() * sizeof(std::string);
        for (const auto& s : col) bytes += s.size();
        break;
      }
    }
  }
  return bytes;
}

constexpr size_t kPlanOverheadFactor = 4;

/// Fixed per-shard coordinator bookkeeping (ledger, boundaries, routers).
constexpr size_t kPerShardFixedBytes = 4096;

// Whole-plan resident estimate. Base relations (distinct, counted once)
// scaled by the derived-state factor; sharded plans ADDITIONALLY pin the
// per-shard root slices (one more materialized copy of every partitioned
// canonical root) plus per-shard EW/wander indexes, which scale like the
// unsharded derived state over those roots, plus fixed coordinator state
// per shard. Without the sharded term, sharded plans under-report by
// roughly the whole per-shard index footprint and evade the registry's
// memory budget.
size_t ApproxPlanBytes(const std::vector<JoinSpecPtr>& joins,
                       const ShardCoordinator* shards) {
  std::unordered_map<const Relation*, size_t> seen;
  size_t base_bytes = 0;
  for (const auto& join : joins) {
    for (const auto& rel : join->relations()) {
      if (seen.emplace(rel.get(), 1).second) {
        base_bytes += ApproxRelationBytes(*rel);
      }
    }
  }
  size_t total = base_bytes * kPlanOverheadFactor;
  if (shards != nullptr) {
    const ShardPlan& plan = *shards->plan();
    size_t root_bytes = 0;
    for (size_t j = 0; j < plan.num_joins(); ++j) {
      const ShardedJoinPlan& jp = plan.join_plan(static_cast<int>(j));
      root_bytes += ApproxRelationBytes(*jp.canonical->relation(jp.root));
    }
    total += root_bytes * (1 + kPlanOverheadFactor);
    total += static_cast<size_t>(shards->num_shards()) * kPerShardFixedBytes;
  }
  return total;
}

}  // namespace

Result<std::shared_ptr<const PreparedUnion>> PreparedUnion::Build(
    std::string name, uint64_t plan_id, std::vector<JoinSpecPtr> joins,
    const PreparedQueryOptions& options) {
  auto start = std::chrono::steady_clock::now();
  if (name.empty()) {
    return Status::InvalidArgument("prepared query needs a non-empty name");
  }
  if (plan_id == 0) {
    return Status::InvalidArgument("plan_id 0 is reserved for ad-hoc stats");
  }
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));

  auto plan = std::shared_ptr<PreparedUnion>(
      new PreparedUnion(std::move(name), plan_id, std::move(joins)));
  plan->index_cache_ = std::make_shared<CompositeIndexCache>();
  plan->columnar_samplers_ = options.columnar_samplers;
  plan->options_ = options;
  plan->base_joins_ = plan->joins_;  // pre-canonical: delta targets
  plan->family_latest_ = std::make_shared<std::atomic<uint64_t>>(0);

  // Sharding first: the shard planner rewrites the joins into their
  // canonical (vp-major) form, and EVERYTHING downstream — probers,
  // warm-up, template, samplers — runs against the canonical specs, so
  // the rest of the pipeline is shard-count agnostic.
  if (options.shard.num_shards > 1) {
    auto shard_plan = ShardPlanner::Plan(plan->joins_, options.shard);
    if (!shard_plan.ok()) return shard_plan.status();
    plan->joins_ = (*shard_plan)->canonical_joins();
    auto coordinator =
        ShardCoordinator::Build(std::move(shard_plan).value(),
                                plan->index_cache_.get());
    if (!coordinator.ok()) return coordinator.status();
    plan->shards_ = std::move(coordinator).value();
  }

  // Probers next: the membership oracle f(u) is needed by every session
  // mode, and the random-walk warm-up shares them too. Hash-sharded
  // plans probe through the shard router (one shard per tuple); range
  // sharding cannot route by content and keeps the canonical probers.
  if (plan->shards_ != nullptr &&
      options.shard.scheme == ShardScheme::kHashKey) {
    auto probers = plan->shards_->BuildRoutedProbers();
    if (!probers.ok()) return probers.status();
    plan->probers_ = std::move(probers).value();
  } else {
    auto probers = BuildProbers(plan->joins_);
    if (!probers.ok()) return probers.status();
    plan->probers_ = std::move(probers).value();
  }

  auto warmup = RunWarmup(plan->joins_, plan->index_cache_.get(),
                          plan->probers_, options, plan->shards_.get());
  if (!warmup.ok()) return warmup.status();
  plan->estimates_ = std::move(warmup.value().estimates);
  plan->exact_overlap_ = std::move(warmup.value().exact);
  plan->merged_overlap_ = std::move(warmup.value().merged);

  auto tmpl =
      TemplateSelector::SelectTemplate(plan->joins_, options.template_options);
  if (!tmpl.ok()) return tmpl.status();
  plan->standard_template_ = std::move(tmpl).value();

  // Pin the per-join sampling indexes. Exact-weight indexes make
  // per-session sampler construction O(1); pre-creating one wander-join
  // sampler per join forces its step indexes into the shared cache so
  // online sessions start against a warm cache.
  if (plan->shards_ == nullptr) {
    plan->weight_indexes_.reserve(plan->joins_.size());
    for (const auto& join : plan->joins_) {
      auto index = ExactWeightIndex::Build(join, plan->index_cache_.get());
      if (!index.ok()) return index.status();
      plan->weight_indexes_.push_back(std::move(index).value());
    }
  }
  // (Sharded plans pinned their per-shard weight indexes inside the
  // coordinator; a canonical index would duplicate every root weight.)
  if (options.prebuild_walk_indexes) {
    for (size_t j = 0; j < plan->joins_.size(); ++j) {
      auto wander =
          plan->shards_ != nullptr
              ? plan->shards_->MakeWanderSampler(static_cast<int>(j))
              : WanderJoinSampler::Create(plan->joins_[j],
                                          plan->index_cache_.get());
      if (!wander.ok()) return wander.status();
      // The sampler itself is discarded; only the cached indexes matter.
    }
  }

  // Size estimate for budget eviction (includes per-shard state for
  // sharded plans — they must not evade the registry's memory budget).
  plan->approx_memory_bytes_ =
      ApproxPlanBytes(plan->joins_, plan->shards_.get());

  plan->build_seconds_ = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return std::shared_ptr<const PreparedUnion>(plan);
}

Result<std::shared_ptr<const PreparedUnion>> PreparedUnion::ApplyDelta(
    const std::shared_ptr<const PreparedUnion>& prev,
    const std::vector<RelationDelta>& deltas) {
  auto start = std::chrono::steady_clock::now();
  if (prev == nullptr) return Status::InvalidArgument("null previous plan");
  if (deltas.empty()) {
    return Status::InvalidArgument("delta batch is empty");
  }

  // 1. Fold every delta against prev's base relations, resolved by name.
  std::unordered_map<std::string, RelationPtr> by_name;
  for (const auto& join : prev->base_joins_) {
    for (const auto& rel : join->relations()) {
      auto [it, inserted] = by_name.emplace(rel->name(), rel);
      if (!inserted && it->second != rel) {
        return Status::InvalidArgument("relation name '" + rel->name() +
                                       "' is ambiguous in this union");
      }
    }
  }
  std::unordered_map<const Relation*, FoldedRelation> folds;
  uint64_t delta_rows = 0;
  for (const auto& delta : deltas) {
    auto it = by_name.find(delta.relation);
    if (it == by_name.end()) {
      return Status::NotFound("relation '" + delta.relation +
                              "' is not part of query '" + prev->name_ + "'");
    }
    if (folds.count(it->second.get()) > 0) {
      return Status::InvalidArgument("multiple deltas for relation '" +
                                     delta.relation +
                                     "' in one batch; merge them first");
    }
    auto folded = FoldDelta(*it->second, delta);
    if (!folded.ok()) return folded.status();
    delta_rows += delta.num_rows();
    folds.emplace(it->second.get(), std::move(folded).value());
  }

  // 2. Rebuild the base joins a delta touched; share the rest by pointer.
  uint64_t affected_mask = 0;
  std::vector<JoinSpecPtr> base_joins;
  base_joins.reserve(prev->base_joins_.size());
  for (size_t j = 0; j < prev->base_joins_.size(); ++j) {
    const JoinSpecPtr& join = prev->base_joins_[j];
    bool affected = false;
    for (const auto& rel : join->relations()) {
      if (folds.count(rel.get()) > 0) {
        affected = true;
        break;
      }
    }
    if (!affected) {
      base_joins.push_back(join);
      continue;
    }
    affected_mask |= uint64_t{1} << j;
    std::vector<RelationPtr> rels = join->relations();
    for (auto& rel : rels) {
      auto fit = folds.find(rel.get());
      if (fit != folds.end()) rel = fit->second.relation;
    }
    std::vector<JoinEdge> edges;
    for (const auto& e : join->graph().edges()) {
      edges.push_back(JoinEdge{e.left, e.right});
    }
    auto spec = JoinSpec::Create(join->name(), std::move(rels), edges,
                                 join->output_predicates());
    if (!spec.ok()) return spec.status();
    base_joins.push_back(std::move(spec).value());
  }

  const PreparedQueryOptions& options = prev->options_;
  auto plan = std::shared_ptr<PreparedUnion>(
      new PreparedUnion(prev->name_, prev->plan_id_, std::move(base_joins)));
  plan->index_cache_ = std::make_shared<CompositeIndexCache>();
  plan->columnar_samplers_ = options.columnar_samplers;
  plan->options_ = options;
  plan->base_joins_ = plan->joins_;
  plan->data_epoch_ = prev->data_epoch_ + 1;
  plan->delta_rows_ = delta_rows;
  plan->family_latest_ = prev->family_latest_;

  // 3. Shard re-plan: only affected joins are re-partitioned; the rest
  // keep their canonical spec, slices, and vp map from the previous plan.
  ShardPlanPtr shard_plan;
  if (options.shard.num_shards > 1) {
    if (prev->shards_ == nullptr) {
      return Status::Internal("sharded options but no previous coordinator");
    }
    auto replanned = ShardPlanner::Plan(plan->joins_, options.shard,
                                        *prev->shards_->plan(), affected_mask);
    if (!replanned.ok()) return replanned.status();
    shard_plan = std::move(replanned).value();
    plan->joins_ = shard_plan->canonical_joins();
  }

  // 4. Seed the fresh index cache from the previous epoch's: entries over
  // relations the new plan still references carry over untouched; entries
  // over folded relations are maintained incrementally (delta rows indexed
  // in, survivors remapped); entries over re-planned shard state are
  // dropped (their relations were re-materialized). A FRESH cache per
  // epoch is required: cache keys are pointer-derived, so reusing one
  // cache across epochs could alias a freed relation's address.
  std::unordered_set<const Relation*> live;
  for (const auto& join : plan->joins_) {
    for (const auto& rel : join->relations()) live.insert(rel.get());
  }
  if (shard_plan != nullptr) {
    for (size_t j = 0; j < shard_plan->num_joins(); ++j) {
      const ShardedJoinPlan& jp = shard_plan->join_plan(static_cast<int>(j));
      for (const auto& spec : jp.shard_specs) {
        for (const auto& rel : spec->relations()) live.insert(rel.get());
      }
    }
  }
  // Base relations stay reachable through base_joins_ even when sharding
  // replaced them with canonical reorders; keep their indexes carried so
  // later epochs can keep folding them incrementally.
  for (const auto& join : plan->base_joins_) {
    for (const auto& rel : join->relations()) live.insert(rel.get());
  }
  std::unordered_map<const CompositeIndex*, CompositeIndexPtr> index_map;
  for (const auto& index : prev->index_cache_->Indexes()) {
    const Relation* rel = index->relation().get();
    if (live.count(rel) > 0) {
      plan->index_cache_->Insert(index);
      index_map.emplace(index.get(), index);
      continue;
    }
    auto fit = folds.find(rel);
    if (fit == folds.end() || live.count(fit->second.relation.get()) == 0) {
      continue;  // stale (e.g. a re-planned canonical root or shard slice)
    }
    auto inc = CompositeIndex::BuildIncremental(
        *index, fit->second.relation, fit->second.remap,
        fit->second.first_appended_row);
    if (!inc.ok()) return inc.status();
    plan->index_cache_->Insert(inc.value());
    index_map.emplace(index.get(), std::move(inc).value());
  }
  for (const auto& probe : prev->index_cache_->Probes()) {
    auto iit = index_map.find(probe.index.get());
    if (iit == index_map.end()) continue;
    const CompositeIndexPtr& new_index = iit->second;
    const bool index_changed = new_index != probe.index;
    bool index_gained = false;
    if (index_changed) {
      auto fit = folds.find(probe.index->relation().get());
      index_gained = fit != folds.end() && fit->second.num_appended() > 0;
    }
    RelationPtr new_probe = probe.probe;
    const std::vector<uint32_t>* probe_remap = nullptr;
    uint32_t first_appended = static_cast<uint32_t>(probe.probe->num_rows());
    if (live.count(probe.probe.get()) == 0) {
      auto fit = folds.find(probe.probe.get());
      if (fit == folds.end() ||
          live.count(fit->second.relation.get()) == 0) {
        continue;
      }
      new_probe = fit->second.relation;
      probe_remap = &fit->second.remap;
      first_appended = fit->second.first_appended_row;
    }
    if (!index_changed && new_probe == probe.probe) {
      plan->index_cache_->InsertProbe(probe.index, probe.probe, probe.rows);
      continue;
    }
    auto rows = new_index->MapRowsIncremental(
        *probe.rows, probe_remap, first_appended, *new_probe, index_gained);
    if (!rows.ok()) return rows.status();
    plan->index_cache_->InsertProbe(
        new_index, new_probe,
        std::make_shared<const std::vector<uint32_t>>(
            std::move(rows).value()));
  }

  // 5. Coordinator refresh over the seeded cache: unaffected joins share
  // their immutable ShardedJoinIndex; the weight ledger is re-derived and
  // the merge invariant re-verified.
  if (shard_plan != nullptr) {
    auto coordinator =
        ShardCoordinator::Build(shard_plan, plan->index_cache_.get(),
                                *prev->shards_, affected_mask);
    if (!coordinator.ok()) return coordinator.status();
    plan->shards_ = std::move(coordinator).value();
  }

  // 6. Probers: per-join reuse (membership sets of unaffected joins are
  // untouched by the fold).
  plan->probers_.reserve(plan->joins_.size());
  const bool routed =
      plan->shards_ != nullptr && options.shard.scheme == ShardScheme::kHashKey;
  for (size_t j = 0; j < plan->joins_.size(); ++j) {
    if (((affected_mask >> j) & 1) == 0) {
      plan->probers_.push_back(prev->probers_[j]);
      continue;
    }
    if (routed) {
      auto prober =
          ShardedMembershipProber::Build(shard_plan, static_cast<int>(j));
      if (!prober.ok()) return prober.status();
      plan->probers_.push_back(std::move(prober).value());
    } else {
      auto prober = JoinMembershipProber::Build(plan->joins_[j]);
      if (!prober.ok()) return prober.status();
      plan->probers_.push_back(std::move(prober).value());
    }
  }

  // 7. Warm-up refresh: kExact re-materializes only affected joins via the
  // retained calculators; kRandomWalk replays the same warmup seed over
  // the carried indexes; kHistogram recomputes from column stats.
  auto warmup = RunWarmup(plan->joins_, plan->index_cache_.get(),
                          plan->probers_, options, plan->shards_.get(),
                          prev->exact_overlap_.get(),
                          prev->merged_overlap_.get(), affected_mask);
  if (!warmup.ok()) return warmup.status();
  plan->estimates_ = std::move(warmup.value().estimates);
  plan->exact_overlap_ = std::move(warmup.value().exact);
  plan->merged_overlap_ = std::move(warmup.value().merged);

  auto tmpl =
      TemplateSelector::SelectTemplate(plan->joins_, options.template_options);
  if (!tmpl.ok()) return tmpl.status();
  plan->standard_template_ = std::move(tmpl).value();

  // 8. Union weights: unaffected joins keep their immutable exact-weight
  // index (same join spec pointer); affected joins rebuild against the
  // seeded cache, so carried child indexes are reused inside the build.
  if (plan->shards_ == nullptr) {
    plan->weight_indexes_.reserve(plan->joins_.size());
    for (size_t j = 0; j < plan->joins_.size(); ++j) {
      if (((affected_mask >> j) & 1) == 0) {
        plan->weight_indexes_.push_back(prev->weight_indexes_[j]);
        continue;
      }
      auto index =
          ExactWeightIndex::Build(plan->joins_[j], plan->index_cache_.get());
      if (!index.ok()) return index.status();
      plan->weight_indexes_.push_back(std::move(index).value());
    }
  }
  if (options.prebuild_walk_indexes) {
    for (size_t j = 0; j < plan->joins_.size(); ++j) {
      if (((affected_mask >> j) & 1) == 0) continue;  // carried via cache
      auto wander =
          plan->shards_ != nullptr
              ? plan->shards_->MakeWanderSampler(static_cast<int>(j))
              : WanderJoinSampler::Create(plan->joins_[j],
                                          plan->index_cache_.get());
      if (!wander.ok()) return wander.status();
    }
  }

  plan->approx_memory_bytes_ =
      ApproxPlanBytes(plan->joins_, plan->shards_.get());
  plan->build_seconds_ = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  // Publish: latest_epoch() on ANY epoch of this family now reports at
  // least this epoch (monotone max — concurrent direct callers race, but
  // the registry serializes delta application per process).
  uint64_t cur = plan->family_latest_->load(std::memory_order_relaxed);
  while (cur < plan->data_epoch_ &&
         !plan->family_latest_->compare_exchange_weak(
             cur, plan->data_epoch_, std::memory_order_acq_rel)) {
  }
  return std::shared_ptr<const PreparedUnion>(plan);
}

UnionSampler::JoinSamplerFactory PreparedUnion::MakeJoinSamplerFactory()
    const {
  // The lambda captures this; factories are only ever used by sessions,
  // which hold the plan by shared_ptr for their whole lifetime.
  if (shards_ != nullptr) {
    return [this]() { return shards_->MakeSamplers(); };
  }
  return [this]() -> Result<std::vector<std::unique_ptr<JoinSampler>>> {
    std::vector<std::unique_ptr<JoinSampler>> out;
    out.reserve(weight_indexes_.size());
    ExactWeightSampler::Options sampler_options;
    sampler_options.columnar = columnar_samplers_;
    for (const auto& index : weight_indexes_) {
      auto sampler = ExactWeightSampler::Create(index, sampler_options);
      if (!sampler.ok()) return sampler.status();
      out.push_back(std::move(*sampler));
    }
    return out;
  };
}

WanderSamplerFactory PreparedUnion::MakeWanderFactory() const {
  if (shards_ == nullptr) return nullptr;
  return [this](int j) { return shards_->MakeWanderSampler(j); };
}

Result<PreparedUnionPtr> QueryRegistry::Prepare(
    std::string name, std::vector<JoinSpecPtr> joins,
    const PreparedQueryOptions& options) {
  uint64_t plan_id;
  {
    // Reserve the name with a null placeholder BEFORE the expensive
    // build: a concurrent Prepare of the same query fails immediately
    // instead of silently paying the whole pipeline a second time.
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = queries_.emplace(name, Entry{});
    if (!inserted) {
      return Status::InvalidArgument(
          it->second.plan == nullptr
              ? "query '" + name + "' is being prepared concurrently"
              : "query '" + name + "' is already prepared");
    }
    plan_id = next_plan_id_++;
  }
  // Build outside the lock: preparation is the expensive step, and Get()
  // on other queries must not stall behind it.
  auto plan = PreparedUnion::Build(name, plan_id, std::move(joins), options);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(name);
  if (!plan.ok()) {
    if (it != queries_.end() && it->second.plan == nullptr) queries_.erase(it);
    return plan.status();
  }
  // The placeholder is still ours: Get/Evict treat it as absent, so
  // nothing can have replaced or removed it.
  if (it != queries_.end() && it->second.plan == nullptr) {
    it->second.plan = *plan;
    it->second.last_use = ++use_clock_;
    stats_.resident_bytes += (*plan)->approx_memory_bytes();
    EnforceBudgetLocked(name);
  }
  ++stats_.prepared;
  return *plan;
}

void QueryRegistry::EnforceBudgetLocked(const std::string& keep) {
  auto over_budget = [&](size_t live) {
    return (options_.max_plans > 0 && live > options_.max_plans) ||
           (options_.memory_budget_bytes > 0 &&
            stats_.resident_bytes > options_.memory_budget_bytes);
  };
  for (;;) {
    size_t live = 0;
    auto victim = queries_.end();
    for (auto it = queries_.begin(); it != queries_.end(); ++it) {
      if (it->second.plan == nullptr) continue;  // in-flight placeholder
      ++live;
      if (it->first == keep) continue;
      if (victim == queries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (!over_budget(live) || victim == queries_.end()) break;
    // Unpin only: sessions holding the plan keep sampling; the bytes
    // leave the REGISTRY's account now and the process when the last
    // holder drops the shared_ptr.
    stats_.resident_bytes -=
        std::min(stats_.resident_bytes,
                 victim->second.plan->approx_memory_bytes());
    queries_.erase(victim);
    ++stats_.evicted_for_budget;
    static obs::Counter* const budget_evictions =
        obs::MetricsRegistry::Global().GetCounter(
            "suj_registry_budget_evictions_total");
    budget_evictions->Increment();
  }
}

Result<PreparedUnionPtr> QueryRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(name);
  if (it == queries_.end() || it->second.plan == nullptr) {
    ++stats_.misses;
    return Status::NotFound(
        it == queries_.end()
            ? "no prepared query named '" + name + "'"
            : "query '" + name + "' is still being prepared");
  }
  ++stats_.hits;
  it->second.last_use = ++use_clock_;
  return it->second.plan;
}

Result<PreparedUnionPtr> QueryRegistry::ApplyDelta(
    const std::string& name, const std::vector<RelationDelta>& deltas) {
  // One delta build at a time: epochs are linear per family, and a lost
  // race would waste a whole incremental refresh.
  std::lock_guard<std::mutex> delta_lock(delta_mu_);
  PreparedUnionPtr prev;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(name);
    if (it == queries_.end() || it->second.plan == nullptr) {
      return Status::NotFound("no prepared query named '" + name + "'");
    }
    prev = it->second.plan;
  }
  // Build the next epoch outside mu_: Get() on other queries must not
  // stall behind an epoch refresh.
  auto next = PreparedUnion::ApplyDelta(prev, deltas);
  if (!next.ok()) return next.status();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(name);
  if (it == queries_.end() || it->second.plan != prev) {
    // Evicted while the refresh was building: respect the eviction (the
    // caller still gets the refreshed plan; it is simply not pinned).
    return Status::NotFound("query '" + name +
                            "' was evicted during delta application");
  }
  stats_.resident_bytes -=
      std::min(stats_.resident_bytes, prev->approx_memory_bytes());
  stats_.resident_bytes += (*next)->approx_memory_bytes();
  it->second.plan = *next;
  it->second.last_use = ++use_clock_;
  EnforceBudgetLocked(name);
  return *next;
}

Status QueryRegistry::Evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(name);
  if (it == queries_.end() || it->second.plan == nullptr) {
    return Status::NotFound("no prepared query named '" + name + "'");
  }
  stats_.resident_bytes -= std::min(
      stats_.resident_bytes, it->second.plan->approx_memory_bytes());
  queries_.erase(it);
  ++stats_.evicted;
  static obs::Counter* const evictions =
      obs::MetricsRegistry::Global().GetCounter(
          "suj_registry_evictions_total");
  evictions->Increment();
  return Status::OK();
}

size_t QueryRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& [name, entry] : queries_) {
    if (entry.plan != nullptr) ++live;
  }
  return live;
}

QueryRegistry::Snapshot QueryRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace suj
