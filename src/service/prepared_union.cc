#include "service/prepared_union.h"

#include <chrono>
#include <utility>

#include "core/exact_overlap.h"
#include "core/histogram_overlap.h"
#include "core/template_selector.h"
#include "join/exact_weight.h"
#include "join/wander_join.h"
#include "obs/metrics.h"
#include "stats/column_histogram.h"

namespace suj {

namespace {

// Warm-up dispatch: produce UnionEstimates per the requested mode. The
// estimator objects are build-time scaffolding; only the estimates (and
// whatever indexes they forced into the shared cache) survive into the
// plan.
Result<UnionEstimates> RunWarmup(const std::vector<JoinSpecPtr>& joins,
                                 CompositeIndexCache* cache,
                                 const std::vector<JoinMembershipProberPtr>&
                                     probers,
                                 const PreparedQueryOptions& options,
                                 const ShardCoordinator* shards) {
  switch (options.warmup) {
    case WarmupMode::kExact: {
      // Sharded plans estimate through the merged per-shard calculators —
      // the coordinator's weight-merge math. The shard root slices
      // partition every join result, so the merged estimates equal the
      // canonical ones exactly (asserted by the determinism suite).
      if (shards != nullptr) {
        auto merged = ShardMergedOverlapEstimator::Create(shards->plan());
        if (!merged.ok()) return merged.status();
        return ComputeUnionEstimates(merged->get());
      }
      auto exact = ExactOverlapCalculator::Create(joins);
      if (!exact.ok()) return exact.status();
      return ComputeUnionEstimates(exact->get());
    }
    case WarmupMode::kHistogram: {
      HistogramCatalog histograms;
      HistogramOverlapEstimator::Options h;
      h.template_options = options.template_options;
      auto hist = HistogramOverlapEstimator::Create(joins, &histograms, h);
      if (!hist.ok()) return hist.status();
      return ComputeUnionEstimates(hist->get());
    }
    case WarmupMode::kRandomWalk: {
      RandomWalkOverlapEstimator::Options w = options.walk_options;
      w.probers = probers;  // already built for the plan; never rebuild
      if (shards != nullptr) {
        w.wander_factory = [shards](int j) {
          return shards->MakeWanderSampler(j);
        };
      }
      auto walker = RandomWalkOverlapEstimator::Create(joins, cache, w);
      if (!walker.ok()) return walker.status();
      Rng warmup_rng(options.warmup_seed);
      SUJ_RETURN_NOT_OK((*walker)->Warmup(warmup_rng));
      return ComputeUnionEstimates(walker->get());
    }
  }
  return Status::Internal("unknown warmup mode");
}

// Base bytes of one relation: column storage by physical type (strings
// are length-summed). The multiplier below scales this to the plan's
// whole pinned footprint (CSR index arrays, alias tables, weight
// prefix sums all materialize per-row state a small constant number of
// times over the base data).
size_t ApproxRelationBytes(const Relation& rel) {
  size_t bytes = 0;
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    switch (rel.schema().field(c).type) {
      case ValueType::kInt64:
      case ValueType::kDouble:
        bytes += rel.num_rows() * 8;
        break;
      case ValueType::kString: {
        const auto& col = rel.StringColumn(c);
        bytes += col.size() * sizeof(std::string);
        for (const auto& s : col) bytes += s.size();
        break;
      }
    }
  }
  return bytes;
}

constexpr size_t kPlanOverheadFactor = 4;

}  // namespace

Result<std::shared_ptr<const PreparedUnion>> PreparedUnion::Build(
    std::string name, uint64_t plan_id, std::vector<JoinSpecPtr> joins,
    const PreparedQueryOptions& options) {
  auto start = std::chrono::steady_clock::now();
  if (name.empty()) {
    return Status::InvalidArgument("prepared query needs a non-empty name");
  }
  if (plan_id == 0) {
    return Status::InvalidArgument("plan_id 0 is reserved for ad-hoc stats");
  }
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));

  auto plan = std::shared_ptr<PreparedUnion>(
      new PreparedUnion(std::move(name), plan_id, std::move(joins)));
  plan->index_cache_ = std::make_shared<CompositeIndexCache>();
  plan->columnar_samplers_ = options.columnar_samplers;

  // Sharding first: the shard planner rewrites the joins into their
  // canonical (vp-major) form, and EVERYTHING downstream — probers,
  // warm-up, template, samplers — runs against the canonical specs, so
  // the rest of the pipeline is shard-count agnostic.
  if (options.shard.num_shards > 1) {
    auto shard_plan = ShardPlanner::Plan(plan->joins_, options.shard);
    if (!shard_plan.ok()) return shard_plan.status();
    plan->joins_ = (*shard_plan)->canonical_joins();
    auto coordinator =
        ShardCoordinator::Build(std::move(shard_plan).value(),
                                plan->index_cache_.get());
    if (!coordinator.ok()) return coordinator.status();
    plan->shards_ = std::move(coordinator).value();
  }

  // Probers next: the membership oracle f(u) is needed by every session
  // mode, and the random-walk warm-up shares them too. Hash-sharded
  // plans probe through the shard router (one shard per tuple); range
  // sharding cannot route by content and keeps the canonical probers.
  if (plan->shards_ != nullptr &&
      options.shard.scheme == ShardScheme::kHashKey) {
    auto probers = plan->shards_->BuildRoutedProbers();
    if (!probers.ok()) return probers.status();
    plan->probers_ = std::move(probers).value();
  } else {
    auto probers = BuildProbers(plan->joins_);
    if (!probers.ok()) return probers.status();
    plan->probers_ = std::move(probers).value();
  }

  auto estimates = RunWarmup(plan->joins_, plan->index_cache_.get(),
                             plan->probers_, options, plan->shards_.get());
  if (!estimates.ok()) return estimates.status();
  plan->estimates_ = std::move(estimates).value();

  auto tmpl =
      TemplateSelector::SelectTemplate(plan->joins_, options.template_options);
  if (!tmpl.ok()) return tmpl.status();
  plan->standard_template_ = std::move(tmpl).value();

  // Pin the per-join sampling indexes. Exact-weight indexes make
  // per-session sampler construction O(1); pre-creating one wander-join
  // sampler per join forces its step indexes into the shared cache so
  // online sessions start against a warm cache.
  if (plan->shards_ == nullptr) {
    plan->weight_indexes_.reserve(plan->joins_.size());
    for (const auto& join : plan->joins_) {
      auto index = ExactWeightIndex::Build(join, plan->index_cache_.get());
      if (!index.ok()) return index.status();
      plan->weight_indexes_.push_back(std::move(index).value());
    }
  }
  // (Sharded plans pinned their per-shard weight indexes inside the
  // coordinator; a canonical index would duplicate every root weight.)
  if (options.prebuild_walk_indexes) {
    for (size_t j = 0; j < plan->joins_.size(); ++j) {
      auto wander =
          plan->shards_ != nullptr
              ? plan->shards_->MakeWanderSampler(static_cast<int>(j))
              : WanderJoinSampler::Create(plan->joins_[j],
                                          plan->index_cache_.get());
      if (!wander.ok()) return wander.status();
      // The sampler itself is discarded; only the cached indexes matter.
    }
  }

  // Size estimate for budget eviction: distinct base relations once,
  // scaled by the derived-state factor.
  {
    std::unordered_map<const Relation*, size_t> seen;
    size_t base_bytes = 0;
    for (const auto& join : plan->joins_) {
      for (const auto& rel : join->relations()) {
        if (seen.emplace(rel.get(), 1).second) {
          base_bytes += ApproxRelationBytes(*rel);
        }
      }
    }
    plan->approx_memory_bytes_ = base_bytes * kPlanOverheadFactor;
  }

  plan->build_seconds_ = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return std::shared_ptr<const PreparedUnion>(plan);
}

UnionSampler::JoinSamplerFactory PreparedUnion::MakeJoinSamplerFactory()
    const {
  // The lambda captures this; factories are only ever used by sessions,
  // which hold the plan by shared_ptr for their whole lifetime.
  if (shards_ != nullptr) {
    return [this]() { return shards_->MakeSamplers(); };
  }
  return [this]() -> Result<std::vector<std::unique_ptr<JoinSampler>>> {
    std::vector<std::unique_ptr<JoinSampler>> out;
    out.reserve(weight_indexes_.size());
    ExactWeightSampler::Options sampler_options;
    sampler_options.columnar = columnar_samplers_;
    for (const auto& index : weight_indexes_) {
      auto sampler = ExactWeightSampler::Create(index, sampler_options);
      if (!sampler.ok()) return sampler.status();
      out.push_back(std::move(*sampler));
    }
    return out;
  };
}

WanderSamplerFactory PreparedUnion::MakeWanderFactory() const {
  if (shards_ == nullptr) return nullptr;
  return [this](int j) { return shards_->MakeWanderSampler(j); };
}

Result<PreparedUnionPtr> QueryRegistry::Prepare(
    std::string name, std::vector<JoinSpecPtr> joins,
    const PreparedQueryOptions& options) {
  uint64_t plan_id;
  {
    // Reserve the name with a null placeholder BEFORE the expensive
    // build: a concurrent Prepare of the same query fails immediately
    // instead of silently paying the whole pipeline a second time.
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = queries_.emplace(name, Entry{});
    if (!inserted) {
      return Status::InvalidArgument(
          it->second.plan == nullptr
              ? "query '" + name + "' is being prepared concurrently"
              : "query '" + name + "' is already prepared");
    }
    plan_id = next_plan_id_++;
  }
  // Build outside the lock: preparation is the expensive step, and Get()
  // on other queries must not stall behind it.
  auto plan = PreparedUnion::Build(name, plan_id, std::move(joins), options);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(name);
  if (!plan.ok()) {
    if (it != queries_.end() && it->second.plan == nullptr) queries_.erase(it);
    return plan.status();
  }
  // The placeholder is still ours: Get/Evict treat it as absent, so
  // nothing can have replaced or removed it.
  if (it != queries_.end() && it->second.plan == nullptr) {
    it->second.plan = *plan;
    it->second.last_use = ++use_clock_;
    stats_.resident_bytes += (*plan)->approx_memory_bytes();
    EnforceBudgetLocked(name);
  }
  ++stats_.prepared;
  return *plan;
}

void QueryRegistry::EnforceBudgetLocked(const std::string& keep) {
  auto over_budget = [&](size_t live) {
    return (options_.max_plans > 0 && live > options_.max_plans) ||
           (options_.memory_budget_bytes > 0 &&
            stats_.resident_bytes > options_.memory_budget_bytes);
  };
  for (;;) {
    size_t live = 0;
    auto victim = queries_.end();
    for (auto it = queries_.begin(); it != queries_.end(); ++it) {
      if (it->second.plan == nullptr) continue;  // in-flight placeholder
      ++live;
      if (it->first == keep) continue;
      if (victim == queries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (!over_budget(live) || victim == queries_.end()) break;
    // Unpin only: sessions holding the plan keep sampling; the bytes
    // leave the REGISTRY's account now and the process when the last
    // holder drops the shared_ptr.
    stats_.resident_bytes -=
        std::min(stats_.resident_bytes,
                 victim->second.plan->approx_memory_bytes());
    queries_.erase(victim);
    ++stats_.evicted_for_budget;
    static obs::Counter* const budget_evictions =
        obs::MetricsRegistry::Global().GetCounter(
            "suj_registry_budget_evictions_total");
    budget_evictions->Increment();
  }
}

Result<PreparedUnionPtr> QueryRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(name);
  if (it == queries_.end() || it->second.plan == nullptr) {
    ++stats_.misses;
    return Status::NotFound(
        it == queries_.end()
            ? "no prepared query named '" + name + "'"
            : "query '" + name + "' is still being prepared");
  }
  ++stats_.hits;
  it->second.last_use = ++use_clock_;
  return it->second.plan;
}

Status QueryRegistry::Evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(name);
  if (it == queries_.end() || it->second.plan == nullptr) {
    return Status::NotFound("no prepared query named '" + name + "'");
  }
  stats_.resident_bytes -= std::min(
      stats_.resident_bytes, it->second.plan->approx_memory_bytes());
  queries_.erase(it);
  ++stats_.evicted;
  static obs::Counter* const evictions =
      obs::MetricsRegistry::Global().GetCounter(
          "suj_registry_evictions_total");
  evictions->Increment();
  return Status::OK();
}

size_t QueryRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& [name, entry] : queries_) {
    if (entry.plan != nullptr) ++live;
  }
  return live;
}

QueryRegistry::Snapshot QueryRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace suj
