// SujClient: blocking wire-protocol client for SujServer.
//
// One client == one connection == one strict request/response
// conversation (plus streams, which interleave chunk frames before
// their StreamEnd). Not thread-safe — a client belongs to one caller
// thread, exactly like a SamplingSession belongs to one logical client.
//
// Sample results are returned as the tuples' canonical encodings
// (Tuple::Encode bytes) so callers can compare against in-process
// output byte for byte; DecodeTuple (common/wire.h) recovers Values.

#ifndef SUJ_NET_CLIENT_H_
#define SUJ_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"

namespace suj {
namespace net {

class SujClient {
 public:
  struct Options {
    uint32_t max_frame_bytes = kDefaultMaxFrame;
    /// Socket read/write deadlines in milliseconds; 0 = block forever
    /// (legacy). Armed right after connect, so even the Hello handshake
    /// is covered. A server that STALLS past a deadline surfaces as
    /// kDeadlineExceeded — distinct from a truncated frame
    /// (kInvalidArgument) and a closed connection (kUnavailable), so
    /// callers can tell "slow peer" from "broken peer" (pinned in
    /// net_wire_test).
    int64_t io_timeout_ms = 0;
  };

  /// Connects and completes the Hello handshake as `tenant`.
  static Result<SujClient> Connect(const std::string& host, uint16_t port,
                                   const std::string& tenant,
                                   Options options);
  static Result<SujClient> Connect(const std::string& host, uint16_t port,
                                   const std::string& tenant);

  SujClient(SujClient&&) = default;
  SujClient& operator=(SujClient&&) = default;
  SujClient(const SujClient&) = delete;
  SujClient& operator=(const SujClient&) = delete;

  /// Prepares (or looks up) `query` server-side.
  Result<PrepareResponse> Prepare(const std::string& query);
  /// Shard-aware Prepare (v3): `num_shards` > 1 asks the server to
  /// root-partition the plan (`scheme`: 0 hash-key, 1 row-range;
  /// `virtual_partitions` 0 = server default). Ignored if the query is
  /// already pinned — the response reports the plan's actual shape.
  Result<PrepareResponse> Prepare(const std::string& query,
                                  uint32_t num_shards, uint8_t scheme = 0,
                                  uint32_t virtual_partitions = 0);

  /// Applies append/delete batches to a prepared query's base relations
  /// (v4). Returns the new data-epoch summary; sessions opened before
  /// the call keep sampling their pinned epoch.
  Result<ApplyDeltaResponse> ApplyDelta(const ApplyDeltaRequest& request);

  /// Opens a session; `request.query` names a prepared query.
  Result<uint64_t> OpenSession(const OpenSessionRequest& request);

  /// Draws `n` tuples, returned as canonical encodings in sample order.
  /// `wait` false sheds instead of queueing when the server is
  /// saturated (ResourceExhausted).
  Result<std::vector<std::string>> Sample(uint64_t session_id, uint64_t n,
                                          bool wait = true);

  /// Streams `total` tuples in chunks, invoking `on_chunk` per chunk in
  /// order. A non-OK status from the callback aborts the stream (the
  /// remaining frames are drained so the connection stays in protocol).
  Status StreamSample(uint64_t session_id, uint64_t total,
                      uint32_t chunk_size,
                      const std::function<Status(const TupleChunk&)>& on_chunk);

  Status CloseSession(uint64_t session_id);

  Result<SessionStatsResponse> SessionStats(uint64_t session_id);
  Result<ServerStatsResponse> ServerStats();
  /// Scrapes the server process's metrics as Prometheus text exposition.
  Result<std::string> Metrics();

  bool connected() const { return conn_.valid(); }
  void Disconnect() { conn_.Close(); }

 private:
  explicit SujClient(TcpConn conn, Options options)
      : conn_(std::move(conn)), options_(options) {}

  /// One round trip: send `body` as `type`, read one response frame.
  /// A kStatus response carrying an error becomes that error; a
  /// response of unexpected type is a protocol violation (Internal).
  Result<Frame> Call(MessageType type, const std::string& body,
                     MessageType expected);

  TcpConn conn_;
  Options options_;
};

}  // namespace net
}  // namespace suj

#endif  // SUJ_NET_CLIENT_H_
