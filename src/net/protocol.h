// The suj wire protocol: length-prefixed binary frames over TCP.
//
// Frame layout (all integers little-endian, common/wire.h):
//
//   u32 frame_len        length of everything after this field
//   u8  msg_type         MessageType
//   ... body             per-message fields (see the structs below)
//
// A connection speaks strict request/response: the client sends Hello
// once (protocol version + tenant identity), then one request at a
// time. Every request gets exactly one response frame — except
// StreamSample, which answers with zero or more StreamChunk frames
// followed by one StreamEnd. Errors come back as a Status frame (or as
// StreamEnd's status mid-stream); the connection stays usable after an
// error response, so one bad request does not cost the client its
// session affinity.
//
// Tuples travel as their canonical storage encoding (Tuple::Encode(),
// the paper's `t.val`), length-prefixed per tuple. This makes the wire
// bytes directly comparable with in-process sampler output — the
// determinism contract "wire == in-process, byte for byte" is testable
// without any re-encoding step.
//
// Frame length is bounded (ServerOptions::max_frame_bytes on the
// server, kDefaultMaxFrame here): a malformed or hostile length prefix
// fails fast with InvalidArgument instead of allocating gigabytes.

#ifndef SUJ_NET_PROTOCOL_H_
#define SUJ_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/wire.h"
#include "net/socket.h"
#include "service/session.h"

namespace suj {
namespace net {

/// Bumped on any incompatible change; Hello carries it and the server
/// rejects mismatches outright (no negotiation — client and server ship
/// from one tree). v2: kMetrics/kMetricsRsp exposition frames and the
/// per-stage shed breakdown appended to ServerStatsResponse. v3:
/// shard-aware Prepare (shard count/scheme/virtual partitions in the
/// request, resolved shard count in the response) and the shard counter
/// block appended to ServerStatsResponse. v4: kApplyDelta/kApplyDeltaRsp
/// — append/delete batches against a prepared query's base relations,
/// answered with the new data epoch.
constexpr uint32_t kProtocolVersion = 4;

/// Default ceiling on one frame. Large sample responses are chunked well
/// below this by the stream chunk size; a frame that claims to be bigger
/// is a protocol violation, not a big request.
constexpr uint32_t kDefaultMaxFrame = 16u << 20;  // 16 MiB

enum class MessageType : uint8_t {
  // client -> server
  kHello = 1,
  kPrepare = 2,
  kOpenSession = 3,
  kSample = 4,
  kStreamSample = 5,
  kCloseSession = 6,
  kSessionStats = 7,
  kServerStats = 8,
  kMetrics = 9,       ///< Prometheus scrape (empty body)
  kApplyDelta = 10,   ///< append/delete batches -> new data epoch (v4)
  // server -> client
  kStatus = 16,       ///< generic ack / error (code + message)
  kPrepareRsp = 17,
  kOpenSessionRsp = 18,
  kSampleRsp = 19,    ///< one Sample's tuples
  kStreamChunk = 20,  ///< one chunk of a StreamSample
  kStreamEnd = 21,    ///< terminates a StreamSample (ok or error)
  kSessionStatsRsp = 22,
  kServerStatsRsp = 23,
  kMetricsRsp = 24,   ///< Prometheus text exposition
  kApplyDeltaRsp = 25,  ///< new-epoch summary for a kApplyDelta (v4)
};

// ---------------------------------------------------------------------------
// Framing

/// Writes one frame (type + body) to the connection.
Status WriteFrame(TcpConn& conn, MessageType type, const std::string& body);

/// Reads one frame. `max_frame` bounds the advertised length.
/// kUnavailable when the peer hung up cleanly between frames.
struct Frame {
  MessageType type;
  std::string body;
};
Result<Frame> ReadFrame(TcpConn& conn, uint32_t max_frame = kDefaultMaxFrame);

// ---------------------------------------------------------------------------
// Messages. Each struct encodes its body only (the type byte lives in
// the frame); Decode validates and rejects trailing bytes.

struct HelloRequest {
  uint32_t version = kProtocolVersion;
  std::string tenant;

  std::string Encode() const;
  static Result<HelloRequest> Decode(std::string_view body);
};

struct PrepareRequest {
  std::string query;
  /// v3 shard plan shape. num_shards 0 or 1 prepares unsharded;
  /// N > 1 root-partitions every join into N in-process shards.
  /// scheme: 0 = hash-key, 1 = row-range. virtual_partitions 0 takes
  /// the server default (64); it is part of the plan's byte identity,
  /// so clients comparing cross-deployment output pin it explicitly.
  uint32_t num_shards = 0;
  uint8_t shard_scheme = 0;
  uint32_t virtual_partitions = 0;

  std::string Encode() const;
  static Result<PrepareRequest> Decode(std::string_view body);
};

struct PrepareResponse {
  uint64_t plan_id = 0;
  double build_seconds = 0;
  uint64_t approx_memory_bytes = 0;
  /// Resolved shard count of the plan (1 = unsharded), v3.
  uint32_t num_shards = 1;

  std::string Encode() const;
  static Result<PrepareResponse> Decode(std::string_view body);
};

struct OpenSessionRequest {
  std::string query;
  /// Mirrors SessionOptions: mode (0 oracle, 1 online, 2 revision),
  /// executor width, batch size, and the resumable-revision surplus cap
  /// — the remote client controls the session's protocol exactly like
  /// an in-process caller would.
  uint8_t mode = 0;
  uint32_t worker_threads = 1;
  uint32_t batch_size = 64;
  uint64_t max_revision_surplus = 0;

  std::string Encode() const;
  static Result<OpenSessionRequest> Decode(std::string_view body);
  /// Maps onto the service-layer options struct (validating `mode`).
  Result<SessionOptions> ToSessionOptions() const;
};

struct OpenSessionResponse {
  uint64_t session_id = 0;

  std::string Encode() const;
  static Result<OpenSessionResponse> Decode(std::string_view body);
};

struct SampleRequest {
  uint64_t session_id = 0;
  uint64_t n = 0;
  /// true: block (bounded) for an admission slot; false: fail fast with
  /// ResourceExhausted when saturated (client-side load shedding).
  bool wait = true;

  std::string Encode() const;
  static Result<SampleRequest> Decode(std::string_view body);
};

struct StreamSampleRequest {
  uint64_t session_id = 0;
  uint64_t total = 0;
  uint32_t chunk_size = 256;

  std::string Encode() const;
  static Result<StreamSampleRequest> Decode(std::string_view body);
};

/// One relation's mutation batch inside an ApplyDeltaRequest. Appends
/// travel as canonical tuple encodings (Tuple::Encode()); the server
/// decodes them against the relation's schema as found in the prepared
/// plan, so a schema-mismatched append fails loudly before any fold.
struct WireRelationDelta {
  std::string relation;
  std::vector<std::string> encoded_appends;
  std::vector<uint32_t> delete_rows;  ///< row ids in the CURRENT epoch
};

/// v4: applies append/delete batches to a prepared query's base
/// relations, producing a new immutable data epoch. Sessions opened
/// before the delta keep their pinned epoch; sessions opened after see
/// the new one.
struct ApplyDeltaRequest {
  std::string query;
  std::vector<WireRelationDelta> deltas;

  std::string Encode() const;
  static Result<ApplyDeltaRequest> Decode(std::string_view body);
};

struct ApplyDeltaResponse {
  uint64_t epoch = 0;          ///< data epoch of the refreshed plan
  uint64_t delta_rows = 0;     ///< cumulative delta rows folded so far
  double refresh_seconds = 0;  ///< incremental refresh build time
  uint64_t approx_memory_bytes = 0;

  std::string Encode() const;
  static Result<ApplyDeltaResponse> Decode(std::string_view body);
};

struct CloseSessionRequest {
  uint64_t session_id = 0;

  std::string Encode() const;
  static Result<CloseSessionRequest> Decode(std::string_view body);
};

struct SessionStatsRequest {
  uint64_t session_id = 0;

  std::string Encode() const;
  static Result<SessionStatsRequest> Decode(std::string_view body);
};

/// Body of kStatus and kStreamEnd.
struct StatusPayload {
  uint8_t code = 0;  ///< StatusCodeToWire
  std::string message;

  std::string Encode() const;
  static Result<StatusPayload> Decode(std::string_view body);

  static StatusPayload FromStatus(const Status& status);
  Status ToStatus() const;  ///< OK when code == 0
};

/// Body of kSampleRsp and kStreamChunk: length-prefixed canonical tuple
/// encodings. Kept as raw strings so clients can compare bytes without
/// decoding; DecodeTuple (common/wire.h) recovers Values on demand.
struct TupleChunk {
  std::vector<std::string> encoded_tuples;

  std::string Encode() const;
  static Result<TupleChunk> Decode(std::string_view body);
};

/// Per-session stats over the wire — the remote face of
/// SessionStatsSnapshot. Carries the resumable-revision surplus
/// instrumentation (high-water + live buffer) so a remote operator can
/// verify a SessionOptions::max_revision_surplus cap is honored without
/// in-process access.
struct SessionStatsResponse {
  uint64_t session_id = 0;
  uint64_t plan_id = 0;
  std::string query;
  uint64_t requests = 0;
  uint64_t tuples_delivered = 0;
  uint64_t revision_buffered = 0;
  uint64_t revision_surplus_high_water = 0;
  uint64_t sampler_accepted = 0;
  uint64_t sampler_join_draws = 0;

  std::string Encode() const;
  static Result<SessionStatsResponse> Decode(std::string_view body);
};

/// Body of kMetricsRsp: the process-wide MetricsRegistry rendered as
/// Prometheus text exposition (obs/metrics.h). One opaque string — the
/// metric set evolves without protocol bumps, exactly like a real
/// /metrics endpoint.
struct MetricsResponse {
  std::string text;

  std::string Encode() const;
  static Result<MetricsResponse> Decode(std::string_view body);
};

/// Service-wide stats: admission, registry, sessions, quota sheds, and
/// the server's own connection counters.
struct ServerStatsResponse {
  // admission
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t waited = 0;
  uint64_t queue_overflows = 0;
  uint64_t peak_in_flight = 0;
  uint64_t peak_queue_depth = 0;
  // registry
  uint64_t plans_resident = 0;
  uint64_t plans_evicted_for_budget = 0;
  uint64_t registry_resident_bytes = 0;
  // sessions
  uint64_t sessions_open = 0;
  uint64_t sessions_ever_opened = 0;
  uint64_t sessions_reaped = 0;
  // tenants
  uint64_t quota_shed_total = 0;
  // server
  uint64_t connections_accepted = 0;
  uint64_t connections_shed = 0;
  uint64_t requests_served = 0;
  // per-stage shed breakdown (v2): WHY traffic was shed, not just that
  // it was. quota_shed_total == quota_shed_tenant + quota_shed_session.
  uint64_t version_rejects = 0;          ///< Hello version mismatches
  uint64_t quota_shed_tenant = 0;        ///< tenant token-bucket sheds
  uint64_t quota_shed_session = 0;       ///< per-session token-bucket sheds
  uint64_t sessions_quota_rejected = 0;  ///< OpenSession over max_sessions
  uint64_t plans_evicted = 0;            ///< explicit registry evictions
  // shard counters (v3): process-wide totals across every sharded plan.
  // shard_unavailable_errors counts requests/chunks rejected because a
  // shard was marked unreachable — fault-injection tests reconcile it
  // against client-observed kUnavailable failures.
  uint64_t shard_draws = 0;               ///< routed exact-weight draws
  uint64_t shard_walk_draws = 0;          ///< routed wander-walk root draws
  uint64_t shard_weight_refreshes = 0;    ///< coordinator weight merges
  uint64_t shard_unavailable_errors = 0;  ///< kUnavailable sheds at routing

  std::string Encode() const;
  static Result<ServerStatsResponse> Decode(std::string_view body);
};

}  // namespace net
}  // namespace suj

#endif  // SUJ_NET_PROTOCOL_H_
