// SujServer: the multi-tenant TCP front end over one SamplingService.
//
// Thread-per-connection (the protocol is strict request/response, so a
// connection is exactly one sequential conversation — a thread is its
// natural executor and keeps the handler code linear). Scale in this
// design comes from bounding, not multiplexing: `max_connections` caps
// the thread count and sheds the excess at accept time with an explicit
// ResourceExhausted frame, never a silent close.
//
// Request path, in shed order (cheapest rejection first):
//
//   accept       -> connection cap        (connections_shed)
//   Hello        -> version check, tenant binding
//   per request  -> TenantGovernor        (tenant + session token buckets)
//                -> AdmissionController   (global slots + bounded queue)
//                -> SamplingService       (the actual work)
//
// A request shed at any layer answers immediately with ResourceExhausted
// and leaves the connection usable — quota pressure from one tenant
// never queues behind another tenant's work.
//
// The server owns liveness, not the service: it stamps every session it
// touches (SamplingSession::Touch) and a reaper thread closes sessions
// abandoned past `session_idle_timeout_ns` via SessionManager::ReapIdle,
// returning their quota slots to the governor. Sessions created
// in-process (never touched) are exempt, and reaping cannot perturb
// surviving sessions' RNG substreams (ids and substream ranks are never
// reused).

#ifndef SUJ_NET_SERVER_H_
#define SUJ_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/protocol.h"
#include "net/socket.h"
#include "service/sampling_service.h"
#include "service/tenant.h"

namespace suj {
namespace net {

/// Maps a wire query name to the join specs it denotes. JoinSpecs hold
/// in-memory relations and cannot cross the wire, so the embedding
/// application registers what its server is willing to prepare; a
/// PrepareRequest for an unknown name fails with whatever the resolver
/// returns (NotFound by convention).
using SpecResolver =
    std::function<Result<std::vector<JoinSpecPtr>>(const std::string&)>;

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via port() after Start.
  uint16_t port = 0;
  int backlog = 64;
  /// Concurrent connections (== handler threads). Accepts beyond this
  /// are answered with one ResourceExhausted Status frame and closed.
  size_t max_connections = 64;
  /// Per-frame ceiling passed to ReadFrame.
  uint32_t max_frame_bytes = kDefaultMaxFrame;
  /// Quota applied to tenants on first contact (TenantGovernor).
  TenantQuotaOptions default_quota;
  /// Close sessions with no request activity for this long. 0 disables
  /// the reaper entirely.
  int64_t session_idle_timeout_ns = 0;
  /// How often the reaper scans (only with a timeout set).
  int64_t reap_interval_ns = 50'000'000;  // 50 ms
  /// Producer read-ahead for StreamSample (SampleStream::Options).
  size_t stream_max_buffered_chunks = 4;
  /// Requests slower than this (ns, end to end minus idle wire reads)
  /// are dumped to the slow-request log with a per-stage breakdown.
  /// -1 keeps the process-wide default (SUJ_SLOW_REQUEST_NS env, else
  /// disabled); >= 0 overrides it at Start(). Process-global — the last
  /// server started wins, which only matters to multi-server tests.
  int64_t slow_request_ns = -1;
};

/// \brief One listening server bound to one SamplingService.
class SujServer {
 public:
  /// `service` and `resolver` must outlive the server; the server owns
  /// neither. Call Start() to bind and serve.
  SujServer(SamplingService* service, SpecResolver resolver,
            ServerOptions options);
  ~SujServer();  ///< calls Stop()
  SujServer(const SujServer&) = delete;
  SujServer& operator=(const SujServer&) = delete;

  /// Binds, listens, and starts the accept + reaper threads.
  Status Start();

  /// Stops accepting, shuts every live connection down, joins all
  /// threads. Idempotent. Open sessions survive (the service owns
  /// them); only the reaper or an explicit Close removes them.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after Start; meaningful with options.port == 0).
  uint16_t port() const { return listener_.port(); }

  TenantGovernor& governor() { return governor_; }

  /// The same composite snapshot ServerStats serves over the wire.
  ServerStatsResponse StatsSnapshot() const;

 private:
  struct Connection {
    TcpConn conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  static int64_t NowNs();

  void AcceptLoop();
  void ReaperLoop();
  void HandleConnection(Connection* state);
  /// Dispatches one post-Hello frame. The returned Status is the
  /// CONNECTION's health (I/O failures); application errors are encoded
  /// into response frames and leave the connection usable.
  Status Dispatch(TcpConn& conn, const std::string& tenant,
                  const Frame& frame);

  Status HandlePrepare(TcpConn& conn, const Frame& frame);
  Status HandleOpenSession(TcpConn& conn, const std::string& tenant,
                           const Frame& frame);
  Status HandleSample(TcpConn& conn, const std::string& tenant,
                      const Frame& frame);
  Status HandleStreamSample(TcpConn& conn, const std::string& tenant,
                            const Frame& frame);
  Status HandleCloseSession(TcpConn& conn, const Frame& frame);
  Status HandleSessionStats(TcpConn& conn, const Frame& frame);
  Status HandleServerStats(TcpConn& conn);
  Status HandleMetrics(TcpConn& conn);
  Status HandleApplyDelta(TcpConn& conn, const Frame& frame);

  /// Sends a kStatus frame for `status` (OK or error).
  Status SendStatus(TcpConn& conn, const Status& status);
  /// WriteFrame, recording a wire_write span into the current trace.
  static Status WriteTimed(TcpConn& conn, MessageType type,
                           const std::string& body);

  /// Forgets a closed/reaped session: releases its governor slot and
  /// tenant binding. Idempotent.
  void ReleaseSession(uint64_t session_id);

  SamplingService* const service_;
  const SpecResolver resolver_;
  const ServerOptions options_;
  TenantGovernor governor_;

  TcpListener listener_;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::thread reaper_thread_;
  std::mutex reaper_mu_;
  std::condition_variable reaper_cv_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;

  /// session id -> owning tenant, for quota release on close/reap.
  std::mutex sessions_mu_;
  std::unordered_map<uint64_t, std::string> session_tenants_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> sessions_reaped_{0};
  std::atomic<uint64_t> version_rejects_{0};
};

}  // namespace net
}  // namespace suj

#endif  // SUJ_NET_SERVER_H_
