#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace suj {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status TcpConn::SetIoDeadlines(int64_t recv_timeout_ms,
                               int64_t send_timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("socket is not connected");
  auto to_timeval = [](int64_t ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    return tv;
  };
  if (recv_timeout_ms > 0) {
    timeval tv = to_timeval(recv_timeout_ms);
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
      return Status::Internal(Errno("setsockopt(SO_RCVTIMEO)"));
    }
  }
  if (send_timeout_ms > 0) {
    timeval tv = to_timeval(send_timeout_ms);
    if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
      return Status::Internal(Errno("setsockopt(SO_SNDTIMEO)"));
    }
  }
  return Status::OK();
}

Status TcpConn::ReadFull(void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r == 0) {
      if (got == 0) return Status::Unavailable("peer closed the connection");
      return Status::InvalidArgument(
          "connection closed mid-frame (" + std::to_string(got) + "/" +
          std::to_string(n) + " bytes)");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The peer is CONNECTED but silent past the armed deadline —
        // not a truncated frame (that is an EOF mid-frame above).
        return Status::DeadlineExceeded(
            "read deadline expired (" + std::to_string(got) + "/" +
            std::to_string(n) + " bytes)");
      }
      return Status::Unavailable(Errno("recv"));
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status TcpConn::WriteFull(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "write deadline expired (" + std::to_string(sent) + "/" +
            std::to_string(n) + " bytes)");
      }
      return Status::Unavailable(Errno("send"));
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

void TcpConn::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpListener> TcpListener::Listen(const std::string& host,
                                        uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  TcpListener listener;
  listener.fd_ = fd;

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse listen host '" + host +
                                   "' (numeric IPv4 expected)");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Status::Internal(Errno("bind"));
  }
  if (::listen(fd, backlog) < 0) {
    return Status::Internal(Errno("listen"));
  }
  // Resolve the ephemeral port so callers can advertise it.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return Status::Internal(Errno("getsockname"));
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<TcpConn> TcpListener::Accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      // Request/response protocol: never trade a round trip for Nagle
      // coalescing.
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpConn(fd);
    }
    if (errno == EINTR) continue;
    // EINVAL/EBADF after Shutdown()/Close(): the server is stopping.
    return Status::Unavailable(Errno("accept"));
  }
}

void TcpListener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpConn> ConnectTcp(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("getaddrinfo(" + host + "): " +
                               gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for '" + host + "'");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(Errno("socket"));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(res);
      return TcpConn(fd);
    }
    last = Status::Unavailable(Errno(("connect " + host + ":" +
                                      port_str).c_str()));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

}  // namespace suj
