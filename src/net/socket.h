// Minimal RAII TCP socket layer for the suj wire protocol.
//
// POSIX sockets only (the project's CI targets are Linux); no external
// dependencies. Blocking I/O with exact-length helpers: the protocol is
// length-prefixed frames, so ReadFull/WriteFull are the only primitives
// the codec needs. Writes use MSG_NOSIGNAL — a peer hanging up turns
// into a Status (kUnavailable), never a SIGPIPE process kill.

#ifndef SUJ_NET_SOCKET_H_
#define SUJ_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace suj {

/// \brief One connected TCP socket (RAII over the fd). Move-only.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;
  ~TcpConn() { Close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Arms kernel read/write deadlines (SO_RCVTIMEO / SO_SNDTIMEO); 0
  /// disables one direction. After this, a peer that STALLS (connected
  /// but silent) past the deadline fails ReadFull/WriteFull with
  /// kDeadlineExceeded — distinct from a peer that CLOSES mid-frame
  /// (kInvalidArgument, truncated frame) or between frames
  /// (kUnavailable). The three outcomes need different reactions
  /// (retry elsewhere / drop the conn / reconnect), so the codes are
  /// load-bearing and pinned by net_wire_test.
  Status SetIoDeadlines(int64_t recv_timeout_ms, int64_t send_timeout_ms);

  /// Reads exactly `n` bytes. kUnavailable on clean EOF at offset 0
  /// ("peer hung up between frames"), InvalidArgument on EOF mid-frame
  /// (truncated frame), kDeadlineExceeded when an armed read deadline
  /// expires, Internal on socket errors.
  Status ReadFull(void* buf, size_t n);
  /// Writes all of `data` (retrying short writes); kDeadlineExceeded
  /// when an armed write deadline expires with the kernel buffer full.
  Status WriteFull(const void* data, size_t n);

  /// Shuts down both directions WITHOUT closing the fd: a blocked
  /// ReadFull in another thread returns immediately. The owner still
  /// closes via destructor. Safe to call concurrently with I/O, which
  /// is exactly what server Stop() does.
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
};

/// \brief Listening socket bound to host:port (port 0 = ephemeral).
class TcpListener {
 public:
  /// Binds + listens. `backlog` is the kernel accept queue — the first
  /// shed point under connection floods.
  static Result<TcpListener> Listen(const std::string& host, uint16_t port,
                                    int backlog);

  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener() { Close(); }

  bool valid() const { return fd_ >= 0; }
  /// The bound port (resolved after an ephemeral bind).
  uint16_t port() const { return port_; }

  /// Blocks for the next connection. kUnavailable once Shutdown() has
  /// been called (server stopping), Internal on other errors.
  Result<TcpConn> Accept();

  /// Unblocks a concurrent Accept() (returns kUnavailable there).
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to host:port (numeric IPv4 or a resolvable name).
Result<TcpConn> ConnectTcp(const std::string& host, uint16_t port);

}  // namespace suj

#endif  // SUJ_NET_SOCKET_H_
