#include "net/protocol.h"

namespace suj {
namespace net {

// ---------------------------------------------------------------------------
// Framing

Status WriteFrame(TcpConn& conn, MessageType type, const std::string& body) {
  std::string frame;
  frame.reserve(5 + body.size());
  WireWriter w(&frame);
  w.PutU32(static_cast<uint32_t>(body.size() + 1));
  w.PutU8(static_cast<uint8_t>(type));
  frame.append(body);
  return conn.WriteFull(frame.data(), frame.size());
}

Result<Frame> ReadFrame(TcpConn& conn, uint32_t max_frame) {
  char len_buf[4];
  SUJ_RETURN_NOT_OK(conn.ReadFull(len_buf, 4));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<unsigned char>(len_buf[i]))
           << (8 * i);
  }
  if (len == 0) {
    return Status::InvalidArgument("empty frame (missing type byte)");
  }
  if (len > max_frame) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(len) + " bytes exceeds the " +
        std::to_string(max_frame) + "-byte limit");
  }
  std::string payload(len, '\0');
  SUJ_RETURN_NOT_OK(conn.ReadFull(payload.data(), len));
  Frame frame;
  frame.type = static_cast<MessageType>(static_cast<uint8_t>(payload[0]));
  frame.body = payload.substr(1);
  return frame;
}

// ---------------------------------------------------------------------------
// Messages

std::string HelloRequest::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU32(version);
  w.PutBytes(tenant);
  return body;
}

Result<HelloRequest> HelloRequest::Decode(std::string_view body) {
  WireReader r(body);
  HelloRequest out;
  SUJ_ASSIGN_OR_RETURN(out.version, r.GetU32());
  SUJ_ASSIGN_OR_RETURN(out.tenant, r.GetString());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string PrepareRequest::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutBytes(query);
  w.PutU32(num_shards);
  w.PutU8(shard_scheme);
  w.PutU32(virtual_partitions);
  return body;
}

Result<PrepareRequest> PrepareRequest::Decode(std::string_view body) {
  WireReader r(body);
  PrepareRequest out;
  SUJ_ASSIGN_OR_RETURN(out.query, r.GetString());
  SUJ_ASSIGN_OR_RETURN(out.num_shards, r.GetU32());
  SUJ_ASSIGN_OR_RETURN(out.shard_scheme, r.GetU8());
  SUJ_ASSIGN_OR_RETURN(out.virtual_partitions, r.GetU32());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string PrepareResponse::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU64(plan_id);
  w.PutDouble(build_seconds);
  w.PutU64(approx_memory_bytes);
  w.PutU32(num_shards);
  return body;
}

Result<PrepareResponse> PrepareResponse::Decode(std::string_view body) {
  WireReader r(body);
  PrepareResponse out;
  SUJ_ASSIGN_OR_RETURN(out.plan_id, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.build_seconds, r.GetDouble());
  SUJ_ASSIGN_OR_RETURN(out.approx_memory_bytes, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.num_shards, r.GetU32());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string OpenSessionRequest::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutBytes(query);
  w.PutU8(mode);
  w.PutU32(worker_threads);
  w.PutU32(batch_size);
  w.PutU64(max_revision_surplus);
  return body;
}

Result<OpenSessionRequest> OpenSessionRequest::Decode(std::string_view body) {
  WireReader r(body);
  OpenSessionRequest out;
  SUJ_ASSIGN_OR_RETURN(out.query, r.GetString());
  SUJ_ASSIGN_OR_RETURN(out.mode, r.GetU8());
  SUJ_ASSIGN_OR_RETURN(out.worker_threads, r.GetU32());
  SUJ_ASSIGN_OR_RETURN(out.batch_size, r.GetU32());
  SUJ_ASSIGN_OR_RETURN(out.max_revision_surplus, r.GetU64());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

Result<SessionOptions> OpenSessionRequest::ToSessionOptions() const {
  SessionOptions options;
  switch (mode) {
    case 0:
      options.mode = SessionOptions::Mode::kOracle;
      break;
    case 1:
      options.mode = SessionOptions::Mode::kOnline;
      break;
    case 2:
      options.mode = SessionOptions::Mode::kRevision;
      break;
    default:
      return Status::InvalidArgument("unknown session mode " +
                                     std::to_string(mode));
  }
  options.worker_threads = worker_threads;
  options.batch_size = batch_size;
  options.max_revision_surplus = max_revision_surplus;
  return options;
}

std::string OpenSessionResponse::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU64(session_id);
  return body;
}

Result<OpenSessionResponse> OpenSessionResponse::Decode(
    std::string_view body) {
  WireReader r(body);
  OpenSessionResponse out;
  SUJ_ASSIGN_OR_RETURN(out.session_id, r.GetU64());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string SampleRequest::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU64(session_id);
  w.PutU64(n);
  w.PutU8(wait ? 1 : 0);
  return body;
}

Result<SampleRequest> SampleRequest::Decode(std::string_view body) {
  WireReader r(body);
  SampleRequest out;
  SUJ_ASSIGN_OR_RETURN(out.session_id, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.n, r.GetU64());
  uint8_t wait_byte;
  SUJ_ASSIGN_OR_RETURN(wait_byte, r.GetU8());
  out.wait = wait_byte != 0;
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string StreamSampleRequest::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU64(session_id);
  w.PutU64(total);
  w.PutU32(chunk_size);
  return body;
}

Result<StreamSampleRequest> StreamSampleRequest::Decode(
    std::string_view body) {
  WireReader r(body);
  StreamSampleRequest out;
  SUJ_ASSIGN_OR_RETURN(out.session_id, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.total, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.chunk_size, r.GetU32());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string ApplyDeltaRequest::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutBytes(query);
  w.PutU32(static_cast<uint32_t>(deltas.size()));
  for (const auto& d : deltas) {
    w.PutBytes(d.relation);
    w.PutU32(static_cast<uint32_t>(d.encoded_appends.size()));
    for (const auto& t : d.encoded_appends) w.PutBytes(t);
    w.PutU32(static_cast<uint32_t>(d.delete_rows.size()));
    for (uint32_t row : d.delete_rows) w.PutU32(row);
  }
  return body;
}

Result<ApplyDeltaRequest> ApplyDeltaRequest::Decode(std::string_view body) {
  WireReader r(body);
  ApplyDeltaRequest out;
  SUJ_ASSIGN_OR_RETURN(out.query, r.GetString());
  uint32_t num_deltas;
  SUJ_ASSIGN_OR_RETURN(num_deltas, r.GetU32());
  // Each delta costs at least its name prefix + two counts (12 bytes).
  if (static_cast<size_t>(num_deltas) * 12 > r.remaining()) {
    return Status::InvalidArgument("delta count " +
                                   std::to_string(num_deltas) +
                                   " exceeds request payload");
  }
  out.deltas.reserve(num_deltas);
  for (uint32_t i = 0; i < num_deltas; ++i) {
    WireRelationDelta d;
    SUJ_ASSIGN_OR_RETURN(d.relation, r.GetString());
    uint32_t num_appends;
    SUJ_ASSIGN_OR_RETURN(num_appends, r.GetU32());
    if (static_cast<size_t>(num_appends) * 4 > r.remaining()) {
      return Status::InvalidArgument("append count " +
                                     std::to_string(num_appends) +
                                     " exceeds request payload");
    }
    d.encoded_appends.reserve(num_appends);
    for (uint32_t t = 0; t < num_appends; ++t) {
      std::string enc;
      SUJ_ASSIGN_OR_RETURN(enc, r.GetString());
      d.encoded_appends.push_back(std::move(enc));
    }
    uint32_t num_deletes;
    SUJ_ASSIGN_OR_RETURN(num_deletes, r.GetU32());
    if (static_cast<size_t>(num_deletes) * 4 > r.remaining()) {
      return Status::InvalidArgument("delete count " +
                                     std::to_string(num_deletes) +
                                     " exceeds request payload");
    }
    d.delete_rows.reserve(num_deletes);
    for (uint32_t t = 0; t < num_deletes; ++t) {
      uint32_t row;
      SUJ_ASSIGN_OR_RETURN(row, r.GetU32());
      d.delete_rows.push_back(row);
    }
    out.deltas.push_back(std::move(d));
  }
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string ApplyDeltaResponse::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU64(epoch);
  w.PutU64(delta_rows);
  w.PutDouble(refresh_seconds);
  w.PutU64(approx_memory_bytes);
  return body;
}

Result<ApplyDeltaResponse> ApplyDeltaResponse::Decode(std::string_view body) {
  WireReader r(body);
  ApplyDeltaResponse out;
  SUJ_ASSIGN_OR_RETURN(out.epoch, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.delta_rows, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.refresh_seconds, r.GetDouble());
  SUJ_ASSIGN_OR_RETURN(out.approx_memory_bytes, r.GetU64());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string CloseSessionRequest::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU64(session_id);
  return body;
}

Result<CloseSessionRequest> CloseSessionRequest::Decode(
    std::string_view body) {
  WireReader r(body);
  CloseSessionRequest out;
  SUJ_ASSIGN_OR_RETURN(out.session_id, r.GetU64());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string SessionStatsRequest::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU64(session_id);
  return body;
}

Result<SessionStatsRequest> SessionStatsRequest::Decode(
    std::string_view body) {
  WireReader r(body);
  SessionStatsRequest out;
  SUJ_ASSIGN_OR_RETURN(out.session_id, r.GetU64());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string StatusPayload::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU8(code);
  w.PutBytes(message);
  return body;
}

Result<StatusPayload> StatusPayload::Decode(std::string_view body) {
  WireReader r(body);
  StatusPayload out;
  SUJ_ASSIGN_OR_RETURN(out.code, r.GetU8());
  SUJ_ASSIGN_OR_RETURN(out.message, r.GetString());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

StatusPayload StatusPayload::FromStatus(const Status& status) {
  StatusPayload out;
  out.code = StatusCodeToWire(status.code());
  out.message = status.message();
  return out;
}

Status StatusPayload::ToStatus() const {
  StatusCode c = StatusCodeFromWire(code);
  if (c == StatusCode::kOk) return Status::OK();
  switch (c) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    default:
      return Status::Internal(message);
  }
}

std::string TupleChunk::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU32(static_cast<uint32_t>(encoded_tuples.size()));
  for (const auto& t : encoded_tuples) w.PutBytes(t);
  return body;
}

Result<TupleChunk> TupleChunk::Decode(std::string_view body) {
  WireReader r(body);
  TupleChunk out;
  uint32_t count;
  SUJ_ASSIGN_OR_RETURN(count, r.GetU32());
  // Sanity bound: each tuple costs at least its 4-byte length prefix, so
  // a count that cannot fit in the remaining payload is malformed (and
  // must not drive a huge reserve()).
  if (static_cast<size_t>(count) * 4 > r.remaining()) {
    return Status::InvalidArgument("tuple count " + std::to_string(count) +
                                   " exceeds chunk payload");
  }
  out.encoded_tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string tuple;
    SUJ_ASSIGN_OR_RETURN(tuple, r.GetString());
    out.encoded_tuples.push_back(std::move(tuple));
  }
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string SessionStatsResponse::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU64(session_id);
  w.PutU64(plan_id);
  w.PutBytes(query);
  w.PutU64(requests);
  w.PutU64(tuples_delivered);
  w.PutU64(revision_buffered);
  w.PutU64(revision_surplus_high_water);
  w.PutU64(sampler_accepted);
  w.PutU64(sampler_join_draws);
  return body;
}

Result<SessionStatsResponse> SessionStatsResponse::Decode(
    std::string_view body) {
  WireReader r(body);
  SessionStatsResponse out;
  SUJ_ASSIGN_OR_RETURN(out.session_id, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.plan_id, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.query, r.GetString());
  SUJ_ASSIGN_OR_RETURN(out.requests, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.tuples_delivered, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.revision_buffered, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.revision_surplus_high_water, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.sampler_accepted, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.sampler_join_draws, r.GetU64());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string MetricsResponse::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutBytes(text);
  return body;
}

Result<MetricsResponse> MetricsResponse::Decode(std::string_view body) {
  WireReader r(body);
  MetricsResponse out;
  SUJ_ASSIGN_OR_RETURN(out.text, r.GetString());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

std::string ServerStatsResponse::Encode() const {
  std::string body;
  WireWriter w(&body);
  w.PutU64(admitted);
  w.PutU64(rejected);
  w.PutU64(waited);
  w.PutU64(queue_overflows);
  w.PutU64(peak_in_flight);
  w.PutU64(peak_queue_depth);
  w.PutU64(plans_resident);
  w.PutU64(plans_evicted_for_budget);
  w.PutU64(registry_resident_bytes);
  w.PutU64(sessions_open);
  w.PutU64(sessions_ever_opened);
  w.PutU64(sessions_reaped);
  w.PutU64(quota_shed_total);
  w.PutU64(connections_accepted);
  w.PutU64(connections_shed);
  w.PutU64(requests_served);
  w.PutU64(version_rejects);
  w.PutU64(quota_shed_tenant);
  w.PutU64(quota_shed_session);
  w.PutU64(sessions_quota_rejected);
  w.PutU64(plans_evicted);
  w.PutU64(shard_draws);
  w.PutU64(shard_walk_draws);
  w.PutU64(shard_weight_refreshes);
  w.PutU64(shard_unavailable_errors);
  return body;
}

Result<ServerStatsResponse> ServerStatsResponse::Decode(
    std::string_view body) {
  WireReader r(body);
  ServerStatsResponse out;
  SUJ_ASSIGN_OR_RETURN(out.admitted, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.rejected, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.waited, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.queue_overflows, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.peak_in_flight, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.peak_queue_depth, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.plans_resident, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.plans_evicted_for_budget, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.registry_resident_bytes, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.sessions_open, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.sessions_ever_opened, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.sessions_reaped, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.quota_shed_total, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.connections_accepted, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.connections_shed, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.requests_served, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.version_rejects, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.quota_shed_tenant, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.quota_shed_session, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.sessions_quota_rejected, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.plans_evicted, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.shard_draws, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.shard_walk_draws, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.shard_weight_refreshes, r.GetU64());
  SUJ_ASSIGN_OR_RETURN(out.shard_unavailable_errors, r.GetU64());
  SUJ_RETURN_NOT_OK(r.ExpectDone());
  return out;
}

}  // namespace net
}  // namespace suj
