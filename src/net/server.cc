#include "net/server.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace suj {
namespace net {

namespace {

// One cached instrument per shed point / stage, resolved on first use.
obs::Counter* NetCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

const char* OpName(MessageType type) {
  switch (type) {
    case MessageType::kPrepare: return "prepare";
    case MessageType::kOpenSession: return "open_session";
    case MessageType::kSample: return "sample";
    case MessageType::kStreamSample: return "stream_sample";
    case MessageType::kCloseSession: return "close_session";
    case MessageType::kSessionStats: return "session_stats";
    case MessageType::kServerStats: return "server_stats";
    case MessageType::kMetrics: return "metrics";
    case MessageType::kApplyDelta: return "apply_delta";
    default: return "unknown";
  }
}

}  // namespace

SujServer::SujServer(SamplingService* service, SpecResolver resolver,
                     ServerOptions options)
    : service_(service),
      resolver_(std::move(resolver)),
      options_(std::move(options)),
      governor_(TenantGovernor::Options{options_.default_quota}) {}

SujServer::~SujServer() { Stop(); }

int64_t SujServer::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status SujServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  if (options_.slow_request_ns >= 0) {
    obs::Tracer::Global().set_slow_threshold_ns(options_.slow_request_ns);
  }
  SUJ_ASSIGN_OR_RETURN(
      listener_,
      TcpListener::Listen(options_.host, options_.port, options_.backlog));
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (options_.session_idle_timeout_ns > 0) {
    reaper_thread_ = std::thread([this] { ReaperLoop(); });
  }
  return Status::OK();
}

void SujServer::Stop() {
  if (!running_.exchange(false)) return;
  // Unblock the accept loop, then every connection handler. shutdown()
  // (not close) so handler threads blocked in ReadFull return without a
  // use-after-close race on the fd.
  listener_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(reaper_mu_);
    reaper_cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (reaper_thread_.joinable()) reaper_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& c : conns_) c->conn.Shutdown();
  }
  // Handlers observe the shutdown and exit; join outside conns_mu_ is
  // unnecessary since only this thread mutates conns_ once running_ is
  // false (the accept loop has exited).
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& c : conns_) {
    if (c->thread.joinable()) c->thread.join();
  }
  conns_.clear();
  listener_.Close();
}

void SujServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (!running_.load(std::memory_order_acquire)) return;
      continue;  // transient accept error; keep serving
    }
    // Reap finished handler threads so a long-lived server does not
    // accumulate joinable corpses.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      if (conns_.size() >= options_.max_connections) {
        // Shed: tell the client why before hanging up.
        connections_shed_.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter* const shed =
            NetCounter("suj_net_connections_shed_total");
        shed->Increment();
        TcpConn conn = std::move(accepted).value();
        SendStatus(conn, Status::ResourceExhausted(
                             "server at connection capacity (" +
                             std::to_string(options_.max_connections) +
                             "); retry with backoff"));
        continue;  // conn closes on scope exit
      }
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* const accepted_counter =
          NetCounter("suj_net_connections_accepted_total");
      accepted_counter->Increment();
      auto state = std::make_unique<Connection>();
      state->conn = std::move(accepted).value();
      Connection* raw = state.get();
      state->thread = std::thread([this, raw] { HandleConnection(raw); });
      conns_.push_back(std::move(state));
    }
  }
}

void SujServer::ReaperLoop() {
  const auto interval =
      std::chrono::nanoseconds(options_.reap_interval_ns > 0
                                   ? options_.reap_interval_ns
                                   : 50'000'000);
  while (running_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lock(reaper_mu_);
      reaper_cv_.wait_for(lock, interval, [this] {
        return !running_.load(std::memory_order_acquire);
      });
    }
    if (!running_.load(std::memory_order_acquire)) return;
    auto reaped = service_->sessions().ReapIdle(
        NowNs(), options_.session_idle_timeout_ns);
    static obs::Counter* const reaped_counter =
        NetCounter("suj_net_sessions_reaped_total");
    for (uint64_t id : reaped) {
      ReleaseSession(id);
      sessions_reaped_.fetch_add(1, std::memory_order_relaxed);
      reaped_counter->Increment();
    }
  }
}

void SujServer::ReleaseSession(uint64_t session_id) {
  std::string tenant;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = session_tenants_.find(session_id);
    if (it == session_tenants_.end()) return;
    tenant = it->second;
    session_tenants_.erase(it);
  }
  governor_.OnSessionClosed(tenant, session_id);
}

Status SujServer::SendStatus(TcpConn& conn, const Status& status) {
  return WriteTimed(conn, MessageType::kStatus,
                    StatusPayload::FromStatus(status).Encode());
}

Status SujServer::WriteTimed(TcpConn& conn, MessageType type,
                             const std::string& body) {
  obs::ScopedSpan span(obs::Stage::kWireWrite);
  return WriteFrame(conn, type, body);
}

void SujServer::HandleConnection(Connection* state) {
  TcpConn& conn = state->conn;
  std::string tenant;
  // First frame must be Hello: bind the protocol version and tenant.
  do {
    auto frame = ReadFrame(conn, options_.max_frame_bytes);
    if (!frame.ok()) break;
    if (frame.value().type != MessageType::kHello) {
      SendStatus(conn, Status::FailedPrecondition(
                           "first frame must be Hello"));
      break;
    }
    auto hello = HelloRequest::Decode(frame.value().body);
    if (!hello.ok()) {
      SendStatus(conn, hello.status());
      break;
    }
    if (hello.value().version != kProtocolVersion) {
      version_rejects_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* const version_rejects =
          NetCounter("suj_net_version_rejects_total");
      version_rejects->Increment();
      SendStatus(conn, Status::InvalidArgument(
                           "protocol version " +
                           std::to_string(hello.value().version) +
                           " unsupported (server speaks " +
                           std::to_string(kProtocolVersion) + ")"));
      break;
    }
    tenant = hello.value().tenant.empty() ? "default" : hello.value().tenant;
    if (!SendStatus(conn, Status::OK()).ok()) break;

    // Request loop: one frame in, one response (or a chunk stream) out.
    static obs::Counter* const requests_counter =
        NetCounter("suj_net_requests_total");
    static obs::Histogram* const request_ns =
        obs::MetricsRegistry::Global().GetHistogram(
            "suj_net_request_ns", obs::Histogram::DefaultLatencyBoundsNs());
    for (;;) {
      const int64_t read_start_ns = obs::MonotonicNs();
      auto request = ReadFrame(conn, options_.max_frame_bytes);
      if (!request.ok()) break;  // peer hung up or sent garbage
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      requests_counter->Increment();
      // The trace starts AFTER the request frame arrives: the wire_read
      // span includes peer think time (the gap between requests), so it
      // is recorded but kept out of the slow-log total.
      obs::TraceContext trace(obs::Tracer::Global().NextTraceId(),
                              OpName(request.value().type));
      trace.Record(obs::Stage::kWireRead, read_start_ns,
                   trace.start_ns() - read_start_ns);
      obs::TraceScope scope(&trace);
      const Status dispatched = Dispatch(conn, tenant, request.value());
      request_ns->Observe(
          static_cast<uint64_t>(obs::MonotonicNs() - trace.start_ns()));
      obs::Tracer::Global().Finish(trace, tenant);
      if (!dispatched.ok()) break;
    }
  } while (false);
  state->done.store(true, std::memory_order_release);
}

Status SujServer::Dispatch(TcpConn& conn, const std::string& tenant,
                           const Frame& frame) {
  switch (frame.type) {
    case MessageType::kPrepare:
      return HandlePrepare(conn, frame);
    case MessageType::kOpenSession:
      return HandleOpenSession(conn, tenant, frame);
    case MessageType::kSample:
      return HandleSample(conn, tenant, frame);
    case MessageType::kStreamSample:
      return HandleStreamSample(conn, tenant, frame);
    case MessageType::kCloseSession:
      return HandleCloseSession(conn, frame);
    case MessageType::kSessionStats:
      return HandleSessionStats(conn, frame);
    case MessageType::kServerStats:
      return HandleServerStats(conn);
    case MessageType::kMetrics:
      return HandleMetrics(conn);
    case MessageType::kApplyDelta:
      return HandleApplyDelta(conn, frame);
    default:
      return SendStatus(
          conn, Status::InvalidArgument(
                    "unexpected message type " +
                    std::to_string(static_cast<int>(frame.type))));
  }
}

Status SujServer::HandlePrepare(TcpConn& conn, const Frame& frame) {
  auto request = PrepareRequest::Decode(frame.body);
  if (!request.ok()) return SendStatus(conn, request.status());
  const std::string& query = request.value().query;

  // Idempotent: many tenants prepare the same shared query; the first
  // pays the build, the rest get the pinned plan's identity. A repeat
  // Prepare with DIFFERENT shard options does not re-shard — the plan
  // is pinned once; the response's num_shards reports what it is.
  auto plan = service_->GetQuery(query);
  if (!plan.ok()) {
    auto joins = resolver_(query);
    if (!joins.ok()) return SendStatus(conn, joins.status());
    PreparedQueryOptions prep = service_->options().query_defaults;
    if (request.value().num_shards > 0) {
      prep.shard.num_shards = static_cast<int>(request.value().num_shards);
      if (request.value().shard_scheme > 1) {
        return SendStatus(conn, Status::InvalidArgument(
                                    "unknown shard scheme " +
                                    std::to_string(
                                        request.value().shard_scheme)));
      }
      prep.shard.scheme = request.value().shard_scheme == 1
                              ? ShardScheme::kRowRange
                              : ShardScheme::kHashKey;
      if (request.value().virtual_partitions > 0) {
        prep.shard.virtual_partitions =
            static_cast<int>(request.value().virtual_partitions);
      }
    }
    plan = service_->Prepare(query, std::move(joins).value(), prep);
    if (!plan.ok()) {
      // Raced with another connection's Prepare of the same name.
      auto again = service_->GetQuery(query);
      if (!again.ok()) return SendStatus(conn, plan.status());
      plan = std::move(again);
    }
  }
  PrepareResponse rsp;
  rsp.plan_id = plan.value()->plan_id();
  rsp.build_seconds = plan.value()->build_seconds();
  rsp.approx_memory_bytes = plan.value()->approx_memory_bytes();
  rsp.num_shards =
      plan.value()->shards() != nullptr
          ? static_cast<uint32_t>(plan.value()->shards()->num_shards())
          : 1;
  return WriteTimed(conn, MessageType::kPrepareRsp, rsp.Encode());
}

Status SujServer::HandleOpenSession(TcpConn& conn, const std::string& tenant,
                                    const Frame& frame) {
  auto request = OpenSessionRequest::Decode(frame.body);
  if (!request.ok()) return SendStatus(conn, request.status());
  auto session_options = request.value().ToSessionOptions();
  if (!session_options.ok()) return SendStatus(conn, session_options.status());

  auto session_id = service_->OpenSession(request.value().query,
                                          session_options.value());
  if (!session_id.ok()) return SendStatus(conn, session_id.status());

  // Governor second: it needs the session id for the per-session bucket.
  // On rejection the just-created session is rolled back before the
  // client ever learns its id.
  Status admitted =
      governor_.AdmitSession(tenant, session_id.value(), NowNs());
  if (!admitted.ok()) {
    service_->CloseSession(session_id.value());
    return SendStatus(conn, admitted);
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session_tenants_[session_id.value()] = tenant;
  }
  if (auto session = service_->sessions().Get(session_id.value());
      session.ok()) {
    session.value()->Touch(NowNs());
  }
  OpenSessionResponse rsp;
  rsp.session_id = session_id.value();
  return WriteTimed(conn, MessageType::kOpenSessionRsp, rsp.Encode());
}

Status SujServer::HandleSample(TcpConn& conn, const std::string& tenant,
                               const Frame& frame) {
  auto request = SampleRequest::Decode(frame.body);
  if (!request.ok()) return SendStatus(conn, request.status());
  const uint64_t session_id = request.value().session_id;

  // Counted BEFORE the quota gate: the loadgen reconciliation invariant
  // is sample_requests == admitted + shed, so the counter must see every
  // arrival, shed or not.
  static obs::Counter* const sample_requests =
      NetCounter("suj_net_sample_requests_total");
  sample_requests->Increment();

  Status quota = [&] {
    obs::ScopedSpan span(obs::Stage::kTenantCheck);
    return governor_.AdmitRequest(tenant, session_id, NowNs());
  }();
  if (!quota.ok()) return SendStatus(conn, quota);

  auto tuples = service_->Sample(
      session_id, request.value().n,
      request.value().wait ? AdmitMode::kWait : AdmitMode::kReject);
  if (!tuples.ok()) return SendStatus(conn, tuples.status());

  if (auto session = service_->sessions().Get(session_id); session.ok()) {
    session.value()->Touch(NowNs());
  }
  TupleChunk chunk;
  chunk.encoded_tuples.reserve(tuples.value().size());
  for (const auto& t : tuples.value()) {
    chunk.encoded_tuples.push_back(t.Encode());
  }
  return WriteTimed(conn, MessageType::kSampleRsp, chunk.Encode());
}

Status SujServer::HandleStreamSample(TcpConn& conn, const std::string& tenant,
                                     const Frame& frame) {
  auto request = StreamSampleRequest::Decode(frame.body);
  if (!request.ok()) return SendStatus(conn, request.status());
  const uint64_t session_id = request.value().session_id;

  // One stream charges one quota token: the admission controller gates
  // every chunk individually, so per-chunk quota charges would just
  // double-count the same work at a coarser layer.
  Status quota = [&] {
    obs::ScopedSpan span(obs::Stage::kTenantCheck);
    return governor_.AdmitRequest(tenant, session_id, NowNs());
  }();
  if (!quota.ok()) return SendStatus(conn, quota);

  SampleStream::Options stream_options;
  stream_options.chunk_size =
      request.value().chunk_size > 0 ? request.value().chunk_size : 256;
  stream_options.max_buffered_chunks = options_.stream_max_buffered_chunks;
  auto stream = service_->OpenStream(session_id, request.value().total,
                                     stream_options);
  if (!stream.ok()) return SendStatus(conn, stream.status());

  // Touched per DELIVERED chunk, not once after the loop: a long slow
  // stream is live client activity chunk by chunk, and a single
  // post-loop Touch let the idle reaper close the session mid-stream
  // (the stream itself survived — it pins the session shared_ptr — but
  // the id was gone, so follow-up requests failed NotFound).
  auto touch_session = [&] {
    if (auto session = service_->sessions().Get(session_id); session.ok()) {
      session.value()->Touch(NowNs());
    }
  };
  for (;;) {
    auto batch = stream.value()->Next();
    if (!batch.ok()) {
      // Mid-stream application error: report in StreamEnd; connection
      // stays usable.
      return WriteTimed(conn, MessageType::kStreamEnd,
                        StatusPayload::FromStatus(batch.status()).Encode());
    }
    if (batch.value().empty()) break;  // exhausted
    TupleChunk chunk;
    chunk.encoded_tuples.reserve(batch.value().size());
    for (const auto& t : batch.value()) {
      chunk.encoded_tuples.push_back(t.Encode());
    }
    Status io = WriteTimed(conn, MessageType::kStreamChunk, chunk.Encode());
    if (!io.ok()) {
      stream.value()->Cancel();  // consumer is gone; stop producing
      return io;
    }
    touch_session();
  }
  touch_session();
  return WriteTimed(conn, MessageType::kStreamEnd,
                    StatusPayload::FromStatus(Status::OK()).Encode());
}

Status SujServer::HandleCloseSession(TcpConn& conn, const Frame& frame) {
  auto request = CloseSessionRequest::Decode(frame.body);
  if (!request.ok()) return SendStatus(conn, request.status());
  Status closed = service_->CloseSession(request.value().session_id);
  if (closed.ok()) ReleaseSession(request.value().session_id);
  return SendStatus(conn, closed);
}

Status SujServer::HandleSessionStats(TcpConn& conn, const Frame& frame) {
  auto request = SessionStatsRequest::Decode(frame.body);
  if (!request.ok()) return SendStatus(conn, request.status());
  auto stats = service_->SessionStats(request.value().session_id);
  if (!stats.ok()) return SendStatus(conn, stats.status());
  // Stats polling is client activity: a monitored session is not an
  // abandoned one, so it must not idle out under the reaper.
  if (auto session = service_->sessions().Get(request.value().session_id);
      session.ok()) {
    session.value()->Touch(NowNs());
  }

  const SessionStatsSnapshot& s = stats.value();
  SessionStatsResponse rsp;
  rsp.session_id = s.session_id;
  rsp.plan_id = s.plan_id;
  rsp.query = s.query;
  rsp.requests = s.requests;
  rsp.tuples_delivered = s.tuples_delivered;
  rsp.revision_buffered = s.revision_buffered;
  rsp.revision_surplus_high_water = s.revision_surplus_high_water;
  rsp.sampler_accepted = s.sampler.accepted;
  rsp.sampler_join_draws = s.sampler.join_draws;
  return WriteTimed(conn, MessageType::kSessionStatsRsp, rsp.Encode());
}

Status SujServer::HandleServerStats(TcpConn& conn) {
  return WriteTimed(conn, MessageType::kServerStatsRsp,
                    StatsSnapshot().Encode());
}

Status SujServer::HandleMetrics(TcpConn& conn) {
  // Gauges are levels, not flows: refresh them at scrape time from the
  // authoritative sources instead of tracking every transition.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("suj_sessions_open")
      ->Set(static_cast<int64_t>(service_->sessions().size()));
  registry.GetGauge("suj_plans_resident")
      ->Set(static_cast<int64_t>(service_->registry().size()));
  registry.GetGauge("suj_registry_resident_bytes")
      ->Set(static_cast<int64_t>(
          service_->registry().snapshot().resident_bytes));
  registry.GetGauge("suj_admission_in_flight")
      ->Set(static_cast<int64_t>(service_->admission().in_flight()));
  MetricsResponse rsp;
  rsp.text = registry.RenderPrometheusText();
  return WriteTimed(conn, MessageType::kMetricsRsp, rsp.Encode());
}

Status SujServer::HandleApplyDelta(TcpConn& conn, const Frame& frame) {
  auto request = ApplyDeltaRequest::Decode(frame.body);
  if (!request.ok()) return SendStatus(conn, request.status());

  std::vector<RelationDelta> deltas;
  deltas.reserve(request.value().deltas.size());
  for (const auto& wire : request.value().deltas) {
    RelationDelta delta;
    delta.relation = wire.relation;
    delta.appends.reserve(wire.encoded_appends.size());
    for (const auto& enc : wire.encoded_appends) {
      auto tuple = DecodeTuple(enc);
      if (!tuple.ok()) return SendStatus(conn, tuple.status());
      delta.appends.push_back(std::move(tuple).value());
    }
    delta.deletes = wire.delete_rows;
    deltas.push_back(std::move(delta));
  }

  auto plan = service_->ApplyDelta(request.value().query, deltas);
  if (!plan.ok()) return SendStatus(conn, plan.status());

  ApplyDeltaResponse rsp;
  rsp.epoch = plan.value()->data_epoch();
  rsp.delta_rows = plan.value()->delta_rows();
  rsp.refresh_seconds = plan.value()->build_seconds();
  rsp.approx_memory_bytes = plan.value()->approx_memory_bytes();
  return WriteTimed(conn, MessageType::kApplyDeltaRsp, rsp.Encode());
}

ServerStatsResponse SujServer::StatsSnapshot() const {
  ServerStatsResponse rsp;
  auto admission = service_->admission().snapshot();
  rsp.admitted = admission.admitted;
  rsp.rejected = admission.rejected;
  rsp.waited = admission.waited;
  rsp.queue_overflows = admission.queue_overflows;
  rsp.peak_in_flight = admission.peak_in_flight;
  rsp.peak_queue_depth = admission.peak_queue_depth;
  auto registry = service_->registry().snapshot();
  rsp.plans_resident = service_->registry().size();
  rsp.plans_evicted_for_budget = registry.evicted_for_budget;
  rsp.registry_resident_bytes = registry.resident_bytes;
  rsp.sessions_open = service_->sessions().size();
  rsp.sessions_ever_opened = service_->sessions().ever_opened();
  rsp.sessions_reaped = sessions_reaped_.load(std::memory_order_relaxed);
  rsp.quota_shed_total = governor_.total_shed();
  rsp.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  rsp.connections_shed = connections_shed_.load(std::memory_order_relaxed);
  rsp.requests_served = requests_served_.load(std::memory_order_relaxed);
  // v2 shed breakdown — per-SERVER sources (a process can host several
  // servers in tests; the process-global obs counters would bleed).
  rsp.version_rejects = version_rejects_.load(std::memory_order_relaxed);
  rsp.quota_shed_tenant = governor_.total_shed_tenant_quota();
  rsp.quota_shed_session = governor_.total_shed_session_quota();
  rsp.sessions_quota_rejected = governor_.total_sessions_rejected();
  rsp.plans_evicted = registry.evicted;
  // v3 shard block — from the process-global obs counters (the shard
  // layer has no per-server state; tests reconciling across servers in
  // one process must diff snapshots rather than compare absolutes).
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  rsp.shard_draws = metrics.GetCounter("suj_shard_draws_total")->Value();
  rsp.shard_walk_draws =
      metrics.GetCounter("suj_shard_walk_draws_total")->Value();
  rsp.shard_weight_refreshes =
      metrics.GetCounter("suj_shard_weight_refresh_total")->Value();
  rsp.shard_unavailable_errors =
      metrics.GetCounter("suj_shard_unavailable_total")->Value();
  return rsp;
}

}  // namespace net
}  // namespace suj
