#include "net/client.h"

namespace suj {
namespace net {

Result<SujClient> SujClient::Connect(const std::string& host, uint16_t port,
                                     const std::string& tenant) {
  return Connect(host, port, tenant, Options());
}

Result<SujClient> SujClient::Connect(const std::string& host, uint16_t port,
                                     const std::string& tenant,
                                     Options options) {
  SUJ_ASSIGN_OR_RETURN(TcpConn conn, ConnectTcp(host, port));
  if (options.io_timeout_ms > 0) {
    SUJ_RETURN_NOT_OK(
        conn.SetIoDeadlines(options.io_timeout_ms, options.io_timeout_ms));
  }
  SujClient client(std::move(conn), options);
  HelloRequest hello;
  hello.version = kProtocolVersion;
  hello.tenant = tenant;
  SUJ_ASSIGN_OR_RETURN(
      Frame rsp, client.Call(MessageType::kHello, hello.Encode(),
                             MessageType::kStatus));
  SUJ_ASSIGN_OR_RETURN(StatusPayload payload,
                       StatusPayload::Decode(rsp.body));
  SUJ_RETURN_NOT_OK(payload.ToStatus());
  return client;
}

Result<Frame> SujClient::Call(MessageType type, const std::string& body,
                              MessageType expected) {
  if (!conn_.valid()) return Status::Unavailable("client is disconnected");
  SUJ_RETURN_NOT_OK(WriteFrame(conn_, type, body));
  SUJ_ASSIGN_OR_RETURN(Frame rsp,
                       ReadFrame(conn_, options_.max_frame_bytes));
  if (rsp.type == expected) return rsp;
  if (rsp.type == MessageType::kStatus) {
    // The server answered with an error instead of the typed response.
    SUJ_ASSIGN_OR_RETURN(StatusPayload payload,
                         StatusPayload::Decode(rsp.body));
    Status status = payload.ToStatus();
    if (!status.ok()) return status;
    return rsp;  // expected == kStatus handled above; an OK ack
  }
  return Status::Internal("protocol violation: expected message type " +
                          std::to_string(static_cast<int>(expected)) +
                          ", got " +
                          std::to_string(static_cast<int>(rsp.type)));
}

Result<PrepareResponse> SujClient::Prepare(const std::string& query) {
  return Prepare(query, 0);
}

Result<PrepareResponse> SujClient::Prepare(const std::string& query,
                                           uint32_t num_shards,
                                           uint8_t scheme,
                                           uint32_t virtual_partitions) {
  PrepareRequest request;
  request.query = query;
  request.num_shards = num_shards;
  request.shard_scheme = scheme;
  request.virtual_partitions = virtual_partitions;
  SUJ_ASSIGN_OR_RETURN(Frame rsp,
                       Call(MessageType::kPrepare, request.Encode(),
                            MessageType::kPrepareRsp));
  return PrepareResponse::Decode(rsp.body);
}

Result<ApplyDeltaResponse> SujClient::ApplyDelta(
    const ApplyDeltaRequest& request) {
  SUJ_ASSIGN_OR_RETURN(Frame rsp,
                       Call(MessageType::kApplyDelta, request.Encode(),
                            MessageType::kApplyDeltaRsp));
  return ApplyDeltaResponse::Decode(rsp.body);
}

Result<uint64_t> SujClient::OpenSession(const OpenSessionRequest& request) {
  SUJ_ASSIGN_OR_RETURN(Frame rsp,
                       Call(MessageType::kOpenSession, request.Encode(),
                            MessageType::kOpenSessionRsp));
  SUJ_ASSIGN_OR_RETURN(OpenSessionResponse decoded,
                       OpenSessionResponse::Decode(rsp.body));
  return decoded.session_id;
}

Result<std::vector<std::string>> SujClient::Sample(uint64_t session_id,
                                                   uint64_t n, bool wait) {
  SampleRequest request;
  request.session_id = session_id;
  request.n = n;
  request.wait = wait;
  SUJ_ASSIGN_OR_RETURN(Frame rsp,
                       Call(MessageType::kSample, request.Encode(),
                            MessageType::kSampleRsp));
  SUJ_ASSIGN_OR_RETURN(TupleChunk chunk, TupleChunk::Decode(rsp.body));
  return std::move(chunk.encoded_tuples);
}

Status SujClient::StreamSample(
    uint64_t session_id, uint64_t total, uint32_t chunk_size,
    const std::function<Status(const TupleChunk&)>& on_chunk) {
  if (!conn_.valid()) return Status::Unavailable("client is disconnected");
  StreamSampleRequest request;
  request.session_id = session_id;
  request.total = total;
  request.chunk_size = chunk_size;
  SUJ_RETURN_NOT_OK(
      WriteFrame(conn_, MessageType::kStreamSample, request.Encode()));

  Status callback_status;  // first non-OK from on_chunk; frames drain on
  for (;;) {
    SUJ_ASSIGN_OR_RETURN(Frame frame,
                         ReadFrame(conn_, options_.max_frame_bytes));
    if (frame.type == MessageType::kStreamChunk) {
      if (!callback_status.ok()) continue;  // draining after abort
      SUJ_ASSIGN_OR_RETURN(TupleChunk chunk, TupleChunk::Decode(frame.body));
      callback_status = on_chunk(chunk);
      continue;
    }
    if (frame.type == MessageType::kStreamEnd ||
        frame.type == MessageType::kStatus) {
      SUJ_ASSIGN_OR_RETURN(StatusPayload payload,
                           StatusPayload::Decode(frame.body));
      SUJ_RETURN_NOT_OK(payload.ToStatus());
      return callback_status;
    }
    return Status::Internal("protocol violation: unexpected type " +
                            std::to_string(static_cast<int>(frame.type)) +
                            " inside a stream");
  }
}

Status SujClient::CloseSession(uint64_t session_id) {
  CloseSessionRequest request;
  request.session_id = session_id;
  SUJ_ASSIGN_OR_RETURN(Frame rsp,
                       Call(MessageType::kCloseSession, request.Encode(),
                            MessageType::kStatus));
  SUJ_ASSIGN_OR_RETURN(StatusPayload payload,
                       StatusPayload::Decode(rsp.body));
  return payload.ToStatus();
}

Result<SessionStatsResponse> SujClient::SessionStats(uint64_t session_id) {
  SessionStatsRequest request;
  request.session_id = session_id;
  SUJ_ASSIGN_OR_RETURN(Frame rsp,
                       Call(MessageType::kSessionStats, request.Encode(),
                            MessageType::kSessionStatsRsp));
  return SessionStatsResponse::Decode(rsp.body);
}

Result<ServerStatsResponse> SujClient::ServerStats() {
  SUJ_ASSIGN_OR_RETURN(Frame rsp, Call(MessageType::kServerStats, "",
                                       MessageType::kServerStatsRsp));
  return ServerStatsResponse::Decode(rsp.body);
}

Result<std::string> SujClient::Metrics() {
  SUJ_ASSIGN_OR_RETURN(
      Frame rsp, Call(MessageType::kMetrics, "", MessageType::kMetricsRsp));
  SUJ_ASSIGN_OR_RETURN(MetricsResponse decoded,
                       MetricsResponse::Decode(rsp.body));
  return std::move(decoded.text);
}

}  // namespace net
}  // namespace suj
