#include "stats/column_histogram.h"

namespace suj {

Result<std::shared_ptr<const ColumnHistogram>> ColumnHistogram::Build(
    const RelationPtr& relation, const std::string& attribute) {
  if (relation == nullptr) {
    return Status::InvalidArgument("null relation");
  }
  int col = relation->schema().FieldIndex(attribute);
  if (col < 0) {
    return Status::NotFound("relation '" + relation->name() +
                            "' has no attribute '" + attribute + "'");
  }
  auto hist = std::shared_ptr<ColumnHistogram>(
      new ColumnHistogram(relation->name(), attribute));
  hist->num_rows_ = relation->num_rows();
  for (size_t row = 0; row < relation->num_rows(); ++row) {
    size_t& c = hist->counts_[relation->GetValue(row, col)];
    ++c;
    if (c > hist->max_degree_) hist->max_degree_ = c;
  }
  return std::shared_ptr<const ColumnHistogram>(hist);
}

size_t ColumnHistogram::Degree(const Value& v) const {
  auto it = counts_.find(v);
  return it == counts_.end() ? 0 : it->second;
}

double ColumnHistogram::AvgDegree() const {
  if (counts_.empty()) return 0.0;
  return static_cast<double>(num_rows_) / static_cast<double>(counts_.size());
}

Result<ColumnHistogramPtr> HistogramCatalog::GetOrBuild(
    const RelationPtr& relation, const std::string& attribute) {
  if (relation == nullptr) {
    return Status::InvalidArgument("null relation");
  }
  std::string key = relation->name() + "/" + attribute;
  auto it = histograms_.find(key);
  if (it != histograms_.end()) return it->second;
  auto built = ColumnHistogram::Build(relation, attribute);
  if (!built.ok()) return built.status();
  histograms_.emplace(std::move(key), built.value());
  return std::move(built).value();
}

Result<ColumnHistogramPtr> HistogramCatalog::Get(
    const std::string& relation_name, const std::string& attribute) const {
  auto it = histograms_.find(relation_name + "/" + attribute);
  if (it == histograms_.end()) {
    return Status::NotFound("no histogram for " + relation_name + "/" +
                            attribute);
  }
  return it->second;
}

}  // namespace suj
