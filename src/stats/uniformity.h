// Uniformity diagnostics for sample sets.
//
// Downstream users of the union sampler (learning pipelines, AQP) need to
// verify that a drawn sample is consistent with the uniform-over-union
// guarantee. This module provides the chi-square goodness-of-fit machinery
// the test suite uses, as a public API: compare an observed sample against
// a uniform distribution over a known universe size, or against explicit
// expected proportions.

#ifndef SUJ_STATS_UNIFORMITY_H_
#define SUJ_STATS_UNIFORMITY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/tuple.h"

namespace suj {

/// Result of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;       ///< the chi-square statistic
  size_t degrees_of_freedom = 0;
  /// Approximate p-value via the Wilson-Hilferty normal approximation of
  /// the chi-square CDF (accurate enough for df >= 3).
  double p_value = 1.0;
  size_t num_samples = 0;
  size_t universe_size = 0;
  size_t distinct_observed = 0;

  /// Convenience verdict at significance `alpha` (rejects uniformity when
  /// p_value < alpha).
  bool ConsistentWithUniform(double alpha = 0.001) const {
    return p_value >= alpha;
  }
};

/// Chi-square test of `samples` against the uniform distribution over a
/// universe of `universe_size` distinct tuples. Every tuple value observed
/// is assumed to belong to the universe; never-observed universe members
/// contribute their full expected count to the statistic.
/// Fails if universe_size < 2 or samples is empty.
Result<ChiSquareResult> ChiSquareUniformityTest(
    const std::vector<Tuple>& samples, size_t universe_size);

/// Chi-square test against explicit expected proportions: `expected` maps
/// encoded tuple values to probabilities (must sum to ~1). Observed values
/// absent from `expected` fail the test immediately (p_value = 0).
Result<ChiSquareResult> ChiSquareTest(
    const std::vector<Tuple>& samples,
    const std::unordered_map<std::string, double>& expected);

/// Survival function of the chi-square distribution (1 - CDF) via the
/// Wilson-Hilferty cube-root normal approximation.
double ChiSquareSurvival(double statistic, size_t degrees_of_freedom);

/// Counts samples by canonical encoded value.
std::unordered_map<std::string, size_t> CountSamples(
    const std::vector<Tuple>& samples);

}  // namespace suj

#endif  // SUJ_STATS_UNIFORMITY_H_
