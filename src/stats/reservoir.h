// Reservoir sampling: fixed-size uniform sample of a stream.
//
// Used by examples and tests as an independent way to obtain uniform samples
// of materialized results for cross-validation of the samplers.

#ifndef SUJ_STATS_RESERVOIR_H_
#define SUJ_STATS_RESERVOIR_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace suj {

/// \brief Algorithm R reservoir sampler over items of type T.
template <typename T>
class ReservoirSampler {
 public:
  /// A reservoir holding at most `capacity` items.
  explicit ReservoirSampler(size_t capacity) : capacity_(capacity) {
    SUJ_CHECK(capacity > 0);
    sample_.reserve(capacity);
  }

  /// Offers one stream item.
  void Offer(const T& item, Rng& rng) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(item);
      return;
    }
    uint64_t j = rng.UniformInt(seen_);
    if (j < capacity_) sample_[j] = item;
  }

  size_t seen() const { return seen_; }
  const std::vector<T>& sample() const { return sample_; }

 private:
  size_t capacity_;
  uint64_t seen_ = 0;
  std::vector<T> sample_;
};

}  // namespace suj

#endif  // SUJ_STATS_RESERVOIR_H_
