// ReservoirSampler is header-only (template); this translation unit exists
// so the build target lists the module explicitly.
#include "stats/reservoir.h"
