// Online estimators: running mean/variance, Horvitz-Thompson count
// estimation, and normal-approximation confidence intervals.
//
// These implement the statistical machinery of §6.1: the wander-join size
// estimate |J|_S = (1/m) * sum 1/p(t) is a Horvitz-Thompson estimator whose
// mean and variance are tracked online (Welford), and warm-up terminates
// when the CI half-width z_alpha * sigma / sqrt(n) drops below a threshold.

#ifndef SUJ_STATS_ESTIMATORS_H_
#define SUJ_STATS_ESTIMATORS_H_

#include <cstddef>

namespace suj {

/// \brief Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  /// Incorporates one observation.
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance (0 with fewer than 2 observations).
  double variance() const;
  double stddev() const;

  /// Merges another accumulator into this one (parallel combination).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Two-sided z critical value for confidence `level` in (0,1), e.g.
/// 0.90 -> 1.645, 0.95 -> 1.960. Computed by bisection on the normal CDF.
double ZCritical(double level);

/// CI half-width z * s / sqrt(n) for the mean of `stats` at `level`.
/// Returns +inf with fewer than 2 observations.
double ConfidenceHalfWidth(const RunningStats& stats, double level);

/// \brief Horvitz-Thompson estimator of a population total from samples
/// drawn with known, possibly non-uniform probabilities.
///
/// Used for join COUNT estimation from wander-join walks: each successful
/// walk contributes 1/p(t); each failed walk contributes 0 (§6.1, §7).
class HorvitzThompsonEstimator {
 public:
  /// Records a successful draw of a tuple sampled with probability p > 0.
  void AddSuccess(double p) { stats_.Add(1.0 / p); }

  /// Records a failed walk (dead end), which contributes 0.
  void AddFailure() { stats_.Add(0.0); }

  size_t num_draws() const { return stats_.count(); }

  /// Current point estimate of the total (0 before any draw).
  double Estimate() const { return stats_.mean(); }

  /// CI half-width of the estimate at `level`.
  double HalfWidth(double level) const {
    return ConfidenceHalfWidth(stats_, level);
  }

  /// Relative half-width (half-width / estimate); +inf if estimate == 0.
  double RelativeHalfWidth(double level) const;

  const RunningStats& stats() const { return stats_; }

 private:
  RunningStats stats_;
};

}  // namespace suj

#endif  // SUJ_STATS_ESTIMATORS_H_
