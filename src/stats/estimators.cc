#include "stats/estimators.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace suj {

void RunningStats::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
}

namespace {
double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }
}  // namespace

double ZCritical(double level) {
  SUJ_CHECK(level > 0.0 && level < 1.0);
  // Solve Phi(z) = (1 + level) / 2 by bisection; [0, 10] covers any level
  // representable in double precision.
  double target = (1.0 + level) / 2.0;
  double lo = 0.0, hi = 10.0;
  for (int iter = 0; iter < 80; ++iter) {
    double mid = (lo + hi) / 2.0;
    if (NormalCdf(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

double ConfidenceHalfWidth(const RunningStats& stats, double level) {
  if (stats.count() < 2) return std::numeric_limits<double>::infinity();
  return ZCritical(level) * stats.stddev() /
         std::sqrt(static_cast<double>(stats.count()));
}

double HorvitzThompsonEstimator::RelativeHalfWidth(double level) const {
  double est = Estimate();
  if (est <= 0.0) return std::numeric_limits<double>::infinity();
  return HalfWidth(level) / est;
}

}  // namespace suj
