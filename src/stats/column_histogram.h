// ColumnHistogram: per-attribute value-frequency statistics.
//
// These are the "histograms of columns" the histogram-based estimator (§5)
// consumes: exact value->degree maps for join attributes plus the summary
// degrees (max, average). In the decentralized setting the paper motivates
// (data markets), only these statistics -- not the data -- are exchanged;
// the estimator API therefore depends on ColumnHistogram rather than on
// Relation.

#ifndef SUJ_STATS_COLUMN_HISTOGRAM_H_
#define SUJ_STATS_COLUMN_HISTOGRAM_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"

namespace suj {

/// \brief Value-frequency histogram of one attribute of one relation.
class ColumnHistogram {
 public:
  /// Builds the full histogram of `attribute` in `relation`.
  static Result<std::shared_ptr<const ColumnHistogram>> Build(
      const RelationPtr& relation, const std::string& attribute);

  const std::string& relation_name() const { return relation_name_; }
  const std::string& attribute() const { return attribute_; }

  /// Degree d_A(v, R): number of rows with value `v` (0 if absent).
  size_t Degree(const Value& v) const;

  /// Maximum degree M_A(R).
  size_t MaxDegree() const { return max_degree_; }

  /// Average degree over distinct values (0 for empty relations).
  double AvgDegree() const;

  size_t NumDistinct() const { return counts_.size(); }
  size_t NumRows() const { return num_rows_; }

  /// Distinct values with their degrees (iteration order unspecified).
  const std::unordered_map<Value, size_t, ValueHash>& counts() const {
    return counts_;
  }

 private:
  ColumnHistogram(std::string relation_name, std::string attribute)
      : relation_name_(std::move(relation_name)),
        attribute_(std::move(attribute)) {}

  std::string relation_name_;
  std::string attribute_;
  std::unordered_map<Value, size_t, ValueHash> counts_;
  size_t max_degree_ = 0;
  size_t num_rows_ = 0;
};

using ColumnHistogramPtr = std::shared_ptr<const ColumnHistogram>;

/// \brief Registry of histograms keyed by (relation name, attribute).
///
/// This is the only data-derived state the histogram-based estimator needs;
/// exporting a HistogramCatalog is the paper's "limited metadata" scenario.
class HistogramCatalog {
 public:
  /// Builds (or reuses) the histogram for (relation, attribute).
  Result<ColumnHistogramPtr> GetOrBuild(const RelationPtr& relation,
                                        const std::string& attribute);

  /// Lookup by name only (for decentralized callers without the relation).
  Result<ColumnHistogramPtr> Get(const std::string& relation_name,
                                 const std::string& attribute) const;

  size_t size() const { return histograms_.size(); }

 private:
  std::unordered_map<std::string, ColumnHistogramPtr> histograms_;
};

}  // namespace suj

#endif  // SUJ_STATS_COLUMN_HISTOGRAM_H_
