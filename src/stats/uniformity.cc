#include "stats/uniformity.h"

#include <cmath>
#include <limits>

namespace suj {

std::unordered_map<std::string, size_t> CountSamples(
    const std::vector<Tuple>& samples) {
  std::unordered_map<std::string, size_t> counts;
  counts.reserve(samples.size());
  for (const auto& t : samples) ++counts[t.Encode()];
  return counts;
}

double ChiSquareSurvival(double statistic, size_t degrees_of_freedom) {
  if (degrees_of_freedom == 0) return 1.0;
  if (statistic <= 0.0) return 1.0;
  // Wilson-Hilferty: (X/df)^(1/3) is approximately normal with mean
  // 1 - 2/(9 df) and variance 2/(9 df).
  double df = static_cast<double>(degrees_of_freedom);
  double z = (std::cbrt(statistic / df) - (1.0 - 2.0 / (9.0 * df))) /
             std::sqrt(2.0 / (9.0 * df));
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

Result<ChiSquareResult> ChiSquareUniformityTest(
    const std::vector<Tuple>& samples, size_t universe_size) {
  if (universe_size < 2) {
    return Status::InvalidArgument("universe must have >= 2 tuples");
  }
  if (samples.empty()) {
    return Status::InvalidArgument("no samples to test");
  }
  auto counts = CountSamples(samples);
  if (counts.size() > universe_size) {
    return Status::InvalidArgument(
        "observed more distinct tuples than the universe holds");
  }
  ChiSquareResult result;
  result.num_samples = samples.size();
  result.universe_size = universe_size;
  result.distinct_observed = counts.size();
  result.degrees_of_freedom = universe_size - 1;
  double expected = static_cast<double>(samples.size()) /
                    static_cast<double>(universe_size);
  for (const auto& [key, c] : counts) {
    double d = static_cast<double>(c) - expected;
    result.statistic += d * d / expected;
  }
  result.statistic +=
      static_cast<double>(universe_size - counts.size()) * expected;
  result.p_value =
      ChiSquareSurvival(result.statistic, result.degrees_of_freedom);
  return result;
}

Result<ChiSquareResult> ChiSquareTest(
    const std::vector<Tuple>& samples,
    const std::unordered_map<std::string, double>& expected) {
  if (expected.size() < 2) {
    return Status::InvalidArgument("need >= 2 expected categories");
  }
  if (samples.empty()) {
    return Status::InvalidArgument("no samples to test");
  }
  auto counts = CountSamples(samples);
  ChiSquareResult result;
  result.num_samples = samples.size();
  result.universe_size = expected.size();
  result.distinct_observed = counts.size();
  result.degrees_of_freedom = expected.size() - 1;
  for (const auto& [key, c] : counts) {
    if (!expected.count(key)) {
      result.p_value = 0.0;
      result.statistic = std::numeric_limits<double>::infinity();
      return result;
    }
  }
  double n = static_cast<double>(samples.size());
  for (const auto& [key, p] : expected) {
    double exp_count = p * n;
    if (exp_count <= 0.0) continue;
    auto it = counts.find(key);
    double obs = it == counts.end() ? 0.0 : static_cast<double>(it->second);
    double d = obs - exp_count;
    result.statistic += d * d / exp_count;
  }
  result.p_value =
      ChiSquareSurvival(result.statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace suj
