// Selection predicates over attributes (§8.3).
//
// Two application paradigms, both implemented:
//  * pushdown  -- FilterRelation() materializes the filtered base relation
//    during preprocessing (works for histogram-based and random-walk);
//  * on-the-fly -- samplers evaluate JoinSpec output predicates on each
//    candidate tuple and reject non-matching ones (random-walk paradigm,
//    appropriate for non-selective predicates).

#ifndef SUJ_JOIN_PREDICATE_H_
#define SUJ_JOIN_PREDICATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"

namespace suj {

/// Comparison operator of a predicate.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kBetween,  // inclusive range [operand, operand2]
};

const char* CompareOpName(CompareOp op);

/// \brief A single-attribute selection predicate `attr OP operand`.
class Predicate {
 public:
  Predicate(std::string attribute, CompareOp op, Value operand)
      : attribute_(std::move(attribute)), op_(op), operand_(std::move(operand)) {}

  /// Range predicate `operand <= attr <= operand2`.
  Predicate(std::string attribute, Value lo, Value hi)
      : attribute_(std::move(attribute)),
        op_(CompareOp::kBetween),
        operand_(std::move(lo)),
        operand2_(std::move(hi)) {}

  const std::string& attribute() const { return attribute_; }
  CompareOp op() const { return op_; }

  /// Evaluates against a single value.
  bool Eval(const Value& v) const;

  /// Evaluates against the attribute of a tuple described by `schema`.
  /// Tuples missing the attribute pass (the predicate does not apply).
  bool EvalOnTuple(const Tuple& tuple, const Schema& schema) const;

  std::string ToString() const;

 private:
  std::string attribute_;
  CompareOp op_;
  Value operand_;
  Value operand2_;
};

/// True iff `row` of `relation` satisfies every predicate that references an
/// attribute of the relation (predicates on absent attributes are skipped).
bool RowSatisfies(const Relation& relation, size_t row,
                  const std::vector<Predicate>& predicates);

/// Pushdown: materializes the subset of `relation` satisfying all applicable
/// predicates. The result keeps the original name with a "#f" suffix so
/// filtered variants are distinguishable in catalogs and logs.
Result<RelationPtr> FilterRelation(const RelationPtr& relation,
                                   const std::vector<Predicate>& predicates);

}  // namespace suj

#endif  // SUJ_JOIN_PREDICATE_H_
