// JoinMembershipProber: exact O(1)-per-relation test of `t in J`.
//
// For a natural join J over relations R_1..R_m, an output tuple t belongs to
// J iff every relation contains the projection of t onto its attributes (the
// shared-attribute equalities then hold automatically because all values
// come from the single tuple t), and t passes J's selection predicates.
// This is the "(N-1) x (M-1) queries with key" membership operation of
// §6.2, and the oracle behind the centralized union-sampler mode.

#ifndef SUJ_JOIN_MEMBERSHIP_H_
#define SUJ_JOIN_MEMBERSHIP_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "index/row_membership_index.h"
#include "join/join_spec.h"

namespace suj {

/// \brief Membership oracle for one join.
class JoinMembershipProber {
 public:
  /// Builds one projected-row hash set per base relation of `join`.
  static Result<std::shared_ptr<const JoinMembershipProber>> Build(
      JoinSpecPtr join);

  /// True iff `output_tuple` (over the join's output schema) is in the join
  /// result.
  bool Contains(const Tuple& output_tuple) const;

  const JoinSpecPtr& join() const { return join_; }

 private:
  explicit JoinMembershipProber(JoinSpecPtr join) : join_(std::move(join)) {}

  JoinSpecPtr join_;
  std::vector<RowMembershipIndexPtr> indexes_;          // per relation
  std::vector<std::vector<int>> projection_fields_;     // output-schema cols
};

using JoinMembershipProberPtr = std::shared_ptr<const JoinMembershipProber>;

/// Builds probers for every join of a union.
Result<std::vector<JoinMembershipProberPtr>> BuildProbers(
    const std::vector<JoinSpecPtr>& joins);

}  // namespace suj

#endif  // SUJ_JOIN_MEMBERSHIP_H_
