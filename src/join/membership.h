// JoinMembershipProber: exact O(1)-per-relation test of `t in J`.
//
// For a natural join J over relations R_1..R_m, an output tuple t belongs to
// J iff every relation contains the projection of t onto its attributes (the
// shared-attribute equalities then hold automatically because all values
// come from the single tuple t), and t passes J's selection predicates.
// This is the "(N-1) x (M-1) queries with key" membership operation of
// §6.2, and the oracle behind the centralized union-sampler mode.

#ifndef SUJ_JOIN_MEMBERSHIP_H_
#define SUJ_JOIN_MEMBERSHIP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "index/row_membership_index.h"
#include "join/join_spec.h"

namespace suj {

/// \brief Membership oracle for one join.
class JoinMembershipProber {
 public:
  /// Builds one projected-row hash set per base relation of `join`.
  static Result<std::shared_ptr<const JoinMembershipProber>> Build(
      JoinSpecPtr join);

  virtual ~JoinMembershipProber() = default;

  /// True iff `output_tuple` (over the join's output schema) is in the join
  /// result. Virtual so shard routers can dispatch the probe to the one
  /// shard whose root partition can contain the tuple.
  virtual bool Contains(const Tuple& output_tuple) const;

  const JoinSpecPtr& join() const { return join_; }

 protected:
  explicit JoinMembershipProber(JoinSpecPtr join) : join_(std::move(join)) {}

  JoinSpecPtr join_;

 private:
  std::vector<RowMembershipIndexPtr> indexes_;          // per relation
  std::vector<std::vector<int>> projection_fields_;     // output-schema cols
};

using JoinMembershipProberPtr = std::shared_ptr<const JoinMembershipProber>;

/// Builds probers for every join of a union.
Result<std::vector<JoinMembershipProberPtr>> BuildProbers(
    const std::vector<JoinSpecPtr>& joins);

/// \brief Memoized cover-ownership function f(u) = first join containing u.
///
/// For a fixed join set this is a pure function of the tuple (-1 iff the
/// tuple is in no join), so caching by encoding is sound — and so is
/// giving each parallel worker its own oracle over the shared probers.
/// The prober vector is referenced, not copied; it must outlive the
/// oracle and stay unchanged (fine for samplers, whose join sets are
/// fixed at Create). The memo is capped: beyond `max_entries` distinct
/// values, lookups still hit but no new entries are stored, so a
/// long-lived sampler over a huge union degrades to plain probing
/// instead of growing without bound.
class OwnerOracle {
 public:
  /// The default cap (64k entries, single-digit MB of keys) comfortably
  /// covers union universes where memoization pays, while bounding the
  /// pure-overhead regime (huge domains, near-zero hit rate) — note each
  /// parallel worker carries its own oracle, so per-instance memory
  /// multiplies by the thread count.
  explicit OwnerOracle(const std::vector<JoinMembershipProberPtr>* probers,
                       size_t max_entries = size_t{1} << 16)
      : probers_(probers), max_entries_(max_entries) {}

  /// First containing join of `tuple`, memoized.
  int Owner(const Tuple& tuple) { return Owner(tuple.Encode(), tuple); }

  /// Same, for callers that already hold the canonical encoding.
  int Owner(const std::string& key, const Tuple& tuple) {
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    int f = -1;
    for (size_t i = 0; i < probers_->size(); ++i) {
      if ((*probers_)[i]->Contains(tuple)) {
        f = static_cast<int>(i);
        break;
      }
    }
    if (memo_.size() < max_entries_) memo_.emplace(key, f);
    return f;
  }

 private:
  const std::vector<JoinMembershipProberPtr>* probers_;
  size_t max_entries_;
  std::unordered_map<std::string, int> memo_;
};

}  // namespace suj

#endif  // SUJ_JOIN_MEMBERSHIP_H_
