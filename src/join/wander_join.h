// Wander join: random walks over the join data graph (§6.1, after Li et
// al. SIGMOD'16).
//
// A walk picks a uniform row of the first relation, then a uniform matching
// row at each subsequent step. The resulting tuple t is NOT uniform, but its
// sampling probability p(t) = 1/|R_w0| * prod 1/d_i is known exactly, which
// makes 1/p(t) a Horvitz-Thompson unbiased estimate of the join size and --
// crucially for the online union sampler (§7) -- lets walk tuples be reused
// for uniform sampling after an accept/reject correction.

#ifndef SUJ_JOIN_WANDER_JOIN_H_
#define SUJ_JOIN_WANDER_JOIN_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "index/composite_index.h"
#include "join/join_spec.h"
#include "stats/estimators.h"

namespace suj {

/// Outcome of one random walk.
struct WalkOutcome {
  /// True iff the walk completed and passed all predicates.
  bool success = false;
  /// The joined tuple over the join's output schema (valid iff success).
  Tuple tuple;
  /// Exact probability with which this walk produces `tuple` (valid iff
  /// success; failures have zero contribution).
  double probability = 0.0;
};

/// \brief Random-walk tuple generator with exact probability tracking.
class WanderJoinSampler {
 public:
  static Result<std::unique_ptr<WanderJoinSampler>> Create(
      JoinSpecPtr join, CompositeIndexCache* cache);

  virtual ~WanderJoinSampler() = default;

  /// Performs one walk. Virtual so shard routers can substitute a
  /// global-root draw while keeping the per-step RNG stream identical.
  virtual WalkOutcome Walk(Rng& rng);

  /// Continues a walk whose root row was chosen externally (with
  /// probability `root_probability`): the per-step RNG consumption is
  /// exactly Walk's after its own root draw. Shard routers resolve a
  /// global uniform root draw to (shard, local row) and delegate here.
  WalkOutcome WalkFromRoot(uint32_t root_row, double root_probability,
                           Rng& rng);

  const JoinSpecPtr& join() const { return join_; }
  uint64_t num_walks() const { return num_walks_; }
  uint64_t num_successes() const { return num_successes_; }

  /// True iff every step resolves its probe through a precomputed row->
  /// group array (no per-step key encoding or hash lookups). The columnar
  /// walk draws the SAME RNG stream as the generic walk and produces
  /// byte-identical outcomes; it only skips the Tuple/Value/string work.
  bool columnar() const { return columnar_; }

 protected:
  explicit WanderJoinSampler(JoinSpecPtr join) : join_(std::move(join)) {}

  JoinSpecPtr join_;
  uint64_t num_walks_ = 0;
  uint64_t num_successes_ = 0;

 private:
  struct Step {
    int relation;
    CompositeIndexPtr index;
    std::vector<int> key_fields;  // output-schema indexes of bound attrs
    // Columnar probe: the walk position whose chosen row feeds `probe`
    // (valid because every bound attribute of a step is part of some
    // earlier step's probe key, so any earlier relation carrying it holds
    // the same value). -1 when no single earlier relation covers all
    // bound attrs; then this step probes generically.
    int source_pos = -1;
    ProbeArrayPtr probe;
  };

  WalkOutcome WalkGenericFrom(uint32_t root_row, double root_probability,
                              Rng& rng);
  WalkOutcome WalkColumnarFrom(uint32_t root_row, double root_probability,
                               Rng& rng);

  std::vector<Step> steps_;
  // Materialization plan for the columnar walk: per walk position, the
  // (relation column, output schema index) pairs that position writes as
  // first assigner in walk order.
  std::vector<std::vector<std::pair<uint16_t, uint16_t>>> writes_;
  bool columnar_ = false;
};

/// Builds the wander-join sampler for join index `j` of a union. Plans
/// whose joins are shard-routed supply a factory producing shard routers;
/// a null factory means plain WanderJoinSampler::Create over the caller's
/// index cache.
using WanderSamplerFactory =
    std::function<Result<std::unique_ptr<WanderJoinSampler>>(int)>;

/// \brief Online join-size (COUNT) estimator built on wander-join walks.
///
/// |J|_S = (1/m) sum_t 1/p(t) over m walks (failed walks contribute 0), the
/// running estimator of §6.1 with the confidence-interval termination rule.
class WanderJoinSizeEstimator {
 public:
  explicit WanderJoinSizeEstimator(WanderJoinSampler* sampler)
      : sampler_(sampler) {}

  /// Performs one walk and folds it into the estimate. Returns the outcome
  /// so callers (the online union sampler) can reuse the tuple.
  WalkOutcome Step(Rng& rng);

  /// Walks until the relative CI half-width at `confidence` drops below
  /// `relative_halfwidth`, or `max_walks` is reached; always performs at
  /// least `min_walks`. Mirrors the paper's "terminate when the half-width
  /// becomes less than the threshold" rule with the 1,000-sample cap used
  /// in §9.
  void RunUntilConfident(Rng& rng, double confidence,
                         double relative_halfwidth, uint64_t min_walks,
                         uint64_t max_walks);

  /// Current point estimate of |J|.
  double Estimate() const { return ht_.Estimate(); }
  /// CI half-width at `confidence`.
  double HalfWidth(double confidence) const {
    return ht_.HalfWidth(confidence);
  }
  uint64_t num_walks() const { return ht_.num_draws(); }

  const HorvitzThompsonEstimator& estimator() const { return ht_; }

 private:
  WanderJoinSampler* sampler_;
  HorvitzThompsonEstimator ht_;
};

}  // namespace suj

#endif  // SUJ_JOIN_WANDER_JOIN_H_
