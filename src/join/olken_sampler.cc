#include "join/olken_sampler.h"

#include "common/logging.h"

namespace suj {

Result<std::unique_ptr<OlkenJoinSampler>> OlkenJoinSampler::Create(
    JoinSpecPtr join, CompositeIndexCache* cache) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  if (cache == nullptr) return Status::InvalidArgument("null index cache");

  auto sampler =
      std::unique_ptr<OlkenJoinSampler>(new OlkenJoinSampler(join));
  const JoinGraph& graph = join->graph();
  const Schema& out_schema = join->output_schema();
  const auto& order = graph.walk_order();

  sampler->size_bound_ =
      static_cast<double>(join->relation(order[0])->num_rows());
  for (size_t pos = 1; pos < order.size(); ++pos) {
    Step step;
    step.relation = order[pos];
    auto index = cache->GetOrBuild(join->relation(order[pos]),
                                   graph.bound_attrs()[pos]);
    if (!index.ok()) return index.status();
    step.index = std::move(index).value();
    for (const auto& a : graph.bound_attrs()[pos]) {
      int idx = out_schema.FieldIndex(a);
      SUJ_CHECK(idx >= 0);
      step.key_fields.push_back(idx);
    }
    step.max_degree = step.index->MaxDegree();
    sampler->size_bound_ *= static_cast<double>(step.max_degree);
    sampler->steps_.push_back(std::move(step));
  }
  return sampler;
}

bool OlkenJoinSampler::ApplyRow(int relation, uint32_t row,
                                std::vector<Value>* assignment,
                                std::vector<bool>* assigned) const {
  const Relation& rel = *join_->relation(relation);
  const Schema& out_schema = join_->output_schema();
  for (size_t c = 0; c < rel.schema().num_fields(); ++c) {
    int out_idx = out_schema.FieldIndex(rel.schema().field(c).name);
    SUJ_DCHECK(out_idx >= 0);
    Value v = rel.GetValue(row, c);
    if ((*assigned)[out_idx]) {
      // Bound attributes always match by probe construction; a mismatch
      // would indicate a walk-order bug.
      if (!((*assignment)[out_idx] == v)) return false;
    } else {
      (*assignment)[out_idx] = std::move(v);
      (*assigned)[out_idx] = true;
    }
  }
  return true;
}

std::optional<Tuple> OlkenJoinSampler::TrySample(Rng& rng) {
  ++stats_.attempts;
  if (size_bound_ <= 0.0) {
    ++stats_.dead_ends;
    return std::nullopt;
  }
  const JoinSpec& spec = *join_;
  const Schema& out_schema = spec.output_schema();
  const auto& order = spec.graph().walk_order();

  std::vector<Value> assignment(out_schema.num_fields());
  std::vector<bool> assigned(out_schema.num_fields(), false);

  const RelationPtr& first = spec.relation(order[0]);
  uint32_t row0 = static_cast<uint32_t>(rng.UniformInt(first->num_rows()));
  bool ok = ApplyRow(order[0], row0, &assignment, &assigned);
  SUJ_CHECK(ok);

  double accept_prob = 1.0;
  for (const Step& step : steps_) {
    std::vector<Value> key_values;
    key_values.reserve(step.key_fields.size());
    for (int f : step.key_fields) key_values.push_back(assignment[f]);
    const auto& candidates =
        step.index->LookupEncoded(Tuple(std::move(key_values)).Encode());
    if (candidates.empty()) {
      ++stats_.dead_ends;
      return std::nullopt;
    }
    uint32_t chosen = candidates[rng.UniformInt(candidates.size())];
    accept_prob *= static_cast<double>(candidates.size()) /
                   static_cast<double>(step.max_degree);
    ok = ApplyRow(step.relation, chosen, &assignment, &assigned);
    SUJ_CHECK(ok);
  }

  if (!rng.Bernoulli(accept_prob)) {
    ++stats_.rejections;
    return std::nullopt;
  }
  Tuple out(std::move(assignment));
  if (!spec.SatisfiesPredicates(out)) {
    ++stats_.rejections;
    return std::nullopt;
  }
  ++stats_.successes;
  return out;
}

}  // namespace suj
