#include "join/olken_sampler.h"

#include "common/logging.h"

namespace suj {

Result<std::unique_ptr<OlkenJoinSampler>> OlkenJoinSampler::Create(
    JoinSpecPtr join, CompositeIndexCache* cache) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  if (cache == nullptr) return Status::InvalidArgument("null index cache");

  auto sampler =
      std::unique_ptr<OlkenJoinSampler>(new OlkenJoinSampler(join));
  const JoinGraph& graph = join->graph();
  const Schema& out_schema = join->output_schema();
  const auto& order = graph.walk_order();

  sampler->size_bound_ =
      static_cast<double>(join->relation(order[0])->num_rows());
  for (size_t pos = 1; pos < order.size(); ++pos) {
    Step step;
    step.relation = order[pos];
    auto index = cache->GetOrBuild(join->relation(order[pos]),
                                   graph.bound_attrs()[pos]);
    if (!index.ok()) return index.status();
    step.index = std::move(index).value();
    for (const auto& a : graph.bound_attrs()[pos]) {
      int idx = out_schema.FieldIndex(a);
      SUJ_CHECK(idx >= 0);
      step.key_fields.push_back(idx);
    }
    step.max_degree = step.index->MaxDegree();
    sampler->size_bound_ *= static_cast<double>(step.max_degree);
    // Columnar probe source (see WanderJoinSampler::Create): every bound
    // attribute is probe-key-constrained where first bound, so any earlier
    // relation carrying all of them can feed a row->group probe array.
    for (size_t q = pos; q-- > 0;) {
      const Schema& src = join->relation(order[q])->schema();
      bool covers = true;
      for (const auto& a : graph.bound_attrs()[pos]) {
        if (!src.HasField(a)) {
          covers = false;
          break;
        }
      }
      if (!covers) continue;
      auto probe =
          cache->GetOrBuildProbe(step.index, join->relation(order[q]));
      if (!probe.ok()) continue;
      step.probe = std::move(probe).value();
      step.source_pos = static_cast<int>(q);
      break;
    }
    sampler->steps_.push_back(std::move(step));
  }

  sampler->columnar_ = true;
  for (const Step& step : sampler->steps_) {
    if (step.source_pos < 0) sampler->columnar_ = false;
  }
  if (sampler->columnar_) {
    sampler->writes_.resize(order.size());
    std::vector<bool> assigned(out_schema.num_fields(), false);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      const Schema& rel_schema = join->relation(order[pos])->schema();
      for (size_t c = 0; c < rel_schema.num_fields(); ++c) {
        int out_idx = out_schema.FieldIndex(rel_schema.field(c).name);
        SUJ_CHECK(out_idx >= 0);
        if (!assigned[out_idx]) {
          assigned[out_idx] = true;
          sampler->writes_[pos].emplace_back(static_cast<uint16_t>(c),
                                             static_cast<uint16_t>(out_idx));
        }
      }
    }
  }
  return sampler;
}

bool OlkenJoinSampler::ApplyRow(int relation, uint32_t row,
                                std::vector<Value>* assignment,
                                std::vector<bool>* assigned) const {
  const Relation& rel = *join_->relation(relation);
  const Schema& out_schema = join_->output_schema();
  for (size_t c = 0; c < rel.schema().num_fields(); ++c) {
    int out_idx = out_schema.FieldIndex(rel.schema().field(c).name);
    SUJ_DCHECK(out_idx >= 0);
    Value v = rel.GetValue(row, c);
    if ((*assigned)[out_idx]) {
      // Bound attributes always match by probe construction; a mismatch
      // would indicate a walk-order bug.
      if (!((*assignment)[out_idx] == v)) return false;
    } else {
      (*assignment)[out_idx] = std::move(v);
      (*assigned)[out_idx] = true;
    }
  }
  return true;
}

std::optional<Tuple> OlkenJoinSampler::TrySample(Rng& rng) {
  ++stats_.attempts;
  if (size_bound_ <= 0.0) {
    ++stats_.dead_ends;
    return std::nullopt;
  }
  return columnar_ ? TrySampleColumnar(rng) : TrySampleGeneric(rng);
}

std::optional<Tuple> OlkenJoinSampler::TrySampleColumnar(Rng& rng) {
  const JoinSpec& spec = *join_;
  const auto& order = spec.graph().walk_order();

  uint32_t chosen[64];
  SUJ_CHECK(order.size() <= 64);
  const RelationPtr& first = spec.relation(order[0]);
  chosen[0] = static_cast<uint32_t>(rng.UniformInt(first->num_rows()));

  double accept_prob = 1.0;
  for (size_t pos = 1; pos < order.size(); ++pos) {
    const Step& step = steps_[pos - 1];
    const uint32_t g = (*step.probe)[chosen[step.source_pos]];
    const RowSpan candidates = step.index->GroupRows(g);
    if (candidates.empty()) {
      ++stats_.dead_ends;
      return std::nullopt;
    }
    chosen[pos] = candidates[rng.UniformInt(candidates.size())];
    accept_prob *= static_cast<double>(candidates.size()) /
                   static_cast<double>(step.max_degree);
  }

  if (!rng.Bernoulli(accept_prob)) {
    ++stats_.rejections;
    return std::nullopt;
  }
  const Schema& out_schema = spec.output_schema();
  std::vector<Value> assignment(out_schema.num_fields());
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const Relation& rel = *spec.relation(order[pos]);
    for (const auto& [col, out_idx] : writes_[pos]) {
      assignment[out_idx] = rel.GetValue(chosen[pos], col);
    }
  }
  Tuple out(std::move(assignment));
  if (!spec.SatisfiesPredicates(out)) {
    ++stats_.rejections;
    return std::nullopt;
  }
  ++stats_.successes;
  return out;
}

std::optional<Tuple> OlkenJoinSampler::TrySampleGeneric(Rng& rng) {
  const JoinSpec& spec = *join_;
  const Schema& out_schema = spec.output_schema();
  const auto& order = spec.graph().walk_order();

  std::vector<Value> assignment(out_schema.num_fields());
  std::vector<bool> assigned(out_schema.num_fields(), false);

  const RelationPtr& first = spec.relation(order[0]);
  uint32_t row0 = static_cast<uint32_t>(rng.UniformInt(first->num_rows()));
  bool ok = ApplyRow(order[0], row0, &assignment, &assigned);
  SUJ_CHECK(ok);

  double accept_prob = 1.0;
  for (const Step& step : steps_) {
    std::vector<Value> key_values;
    key_values.reserve(step.key_fields.size());
    for (int f : step.key_fields) key_values.push_back(assignment[f]);
    const RowSpan candidates =
        step.index->LookupEncoded(Tuple(std::move(key_values)).Encode());
    if (candidates.empty()) {
      ++stats_.dead_ends;
      return std::nullopt;
    }
    uint32_t chosen = candidates[rng.UniformInt(candidates.size())];
    accept_prob *= static_cast<double>(candidates.size()) /
                   static_cast<double>(step.max_degree);
    ok = ApplyRow(step.relation, chosen, &assignment, &assigned);
    SUJ_CHECK(ok);
  }

  if (!rng.Bernoulli(accept_prob)) {
    ++stats_.rejections;
    return std::nullopt;
  }
  Tuple out(std::move(assignment));
  if (!spec.SatisfiesPredicates(out)) {
    ++stats_.rejections;
    return std::nullopt;
  }
  ++stats_.successes;
  return out;
}

}  // namespace suj
