// Join-size upper bounds (extended Olken, §3.2).
//
// For a walk order R_w0, R_w1, ..., each tuple fixed so far can match at
// most M_i tuples of the next relation, where M_i is the maximum degree of
// the next relation's probe key. Hence |J| <= |R_w0| * prod_i M_i. Two
// variants are provided:
//  * index-based: M_i from composite indexes (exact max degree of the full
//    probe key; centralized setting),
//  * histogram-based: M_i upper-bounded by the min over the probe
//    attributes of their per-attribute max degrees, read from column
//    histograms only (decentralized setting).

#ifndef SUJ_JOIN_JOIN_SIZE_BOUND_H_
#define SUJ_JOIN_JOIN_SIZE_BOUND_H_

#include <vector>

#include "common/result.h"
#include "index/composite_index.h"
#include "join/join_spec.h"
#include "stats/column_histogram.h"

namespace suj {

/// Extended Olken bound plus the per-step degree caps that realize it.
struct OlkenBoundInfo {
  /// |R_w0| * prod M_i; 0 iff some step has no joinable keys.
  double bound = 0.0;
  /// M_i for walk positions 1..m-1 (index 0 unused, kept for alignment).
  std::vector<size_t> step_max_degrees;
};

/// Index-based extended Olken bound over the join's walk order.
Result<OlkenBoundInfo> ComputeExtendedOlkenBound(const JoinSpecPtr& join,
                                                 CompositeIndexCache* cache);

/// Histogram-only extended Olken bound (no data access; §5's setting).
Result<OlkenBoundInfo> ComputeOlkenBoundFromHistograms(
    const JoinSpecPtr& join, HistogramCatalog* histograms);

}  // namespace suj

#endif  // SUJ_JOIN_JOIN_SIZE_BOUND_H_
