#include "join/full_join.h"

#include <unordered_map>

namespace suj {

FullJoinExecutor::FullJoinExecutor(CompositeIndexCache* cache,
                                   size_t max_intermediate_rows)
    : cache_(cache != nullptr ? cache : &owned_cache_),
      max_intermediate_rows_(max_intermediate_rows) {}

Result<JoinResult> FullJoinExecutor::Execute(const JoinSpecPtr& join) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  const JoinGraph& graph = join->graph();
  const auto& order = graph.walk_order();
  const auto& bound = graph.bound_attrs();

  // Accumulated schema: attributes in order of first appearance along the
  // walk; partial tuples are rows over this schema.
  std::vector<Field> acc_fields;
  std::vector<Tuple> partials;

  for (size_t pos = 0; pos < order.size(); ++pos) {
    const RelationPtr& rel = join->relation(order[pos]);
    const Schema& rel_schema = rel->schema();

    // Indices (into the accumulated schema) of the probe attributes, and
    // indices (into the relation schema) of the newly contributed columns.
    Schema acc_schema(acc_fields);
    std::vector<int> probe_acc_cols;
    for (const auto& a : bound[pos]) {
      probe_acc_cols.push_back(acc_schema.FieldIndex(a));
    }
    std::vector<int> new_rel_cols;
    for (size_t c = 0; c < rel_schema.num_fields(); ++c) {
      if (!acc_schema.HasField(rel_schema.field(c).name)) {
        new_rel_cols.push_back(static_cast<int>(c));
      }
    }

    std::vector<Tuple> next;
    if (pos == 0) {
      next.reserve(rel->num_rows());
      for (size_t row = 0; row < rel->num_rows(); ++row) {
        next.push_back(rel->ProjectRow(row, new_rel_cols));
      }
    } else {
      auto index = cache_->GetOrBuild(rel, bound[pos]);
      if (!index.ok()) return index.status();
      for (const auto& partial : partials) {
        std::string key = partial.Project(probe_acc_cols).Encode();
        for (uint32_t row : (*index)->LookupEncoded(key)) {
          Tuple extended = partial;
          for (int c : new_rel_cols) {
            extended.Append(rel->GetValue(row, c));
          }
          next.push_back(std::move(extended));
          if (next.size() > max_intermediate_rows_) {
            return Status::OutOfRange(
                "intermediate join result exceeds " +
                std::to_string(max_intermediate_rows_) + " rows");
          }
        }
      }
    }
    partials = std::move(next);
    for (int c : new_rel_cols) acc_fields.push_back(rel_schema.field(c));
    if (partials.empty()) break;  // empty join short-circuits
  }

  // Project onto the (sorted-attribute) output schema and apply predicates.
  JoinResult result;
  result.schema = join->output_schema();
  Schema acc_schema(acc_fields);
  if (partials.empty()) return result;

  std::vector<int> projection;
  for (const auto& f : result.schema.fields()) {
    projection.push_back(acc_schema.FieldIndex(f.name));
  }
  result.tuples.reserve(partials.size());
  for (const auto& partial : partials) {
    Tuple out = partial.Project(projection);
    if (join->SatisfiesPredicates(out)) {
      result.tuples.push_back(std::move(out));
    }
  }
  return result;
}

Result<uint64_t> FullJoinExecutor::Count(const JoinSpecPtr& join) {
  auto result = Execute(join);
  if (!result.ok()) return result.status();
  return static_cast<uint64_t>(result->size());
}

}  // namespace suj
