#include "join/wander_join.h"

#include "common/logging.h"

namespace suj {

Result<std::unique_ptr<WanderJoinSampler>> WanderJoinSampler::Create(
    JoinSpecPtr join, CompositeIndexCache* cache) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  if (cache == nullptr) return Status::InvalidArgument("null index cache");

  auto sampler =
      std::unique_ptr<WanderJoinSampler>(new WanderJoinSampler(join));
  const JoinGraph& graph = join->graph();
  const Schema& out_schema = join->output_schema();
  const auto& order = graph.walk_order();
  for (size_t pos = 1; pos < order.size(); ++pos) {
    Step step;
    step.relation = order[pos];
    auto index = cache->GetOrBuild(join->relation(order[pos]),
                                   graph.bound_attrs()[pos]);
    if (!index.ok()) return index.status();
    step.index = std::move(index).value();
    for (const auto& a : graph.bound_attrs()[pos]) {
      int idx = out_schema.FieldIndex(a);
      SUJ_CHECK(idx >= 0);
      step.key_fields.push_back(idx);
    }
    sampler->steps_.push_back(std::move(step));
  }
  return sampler;
}

WalkOutcome WanderJoinSampler::Walk(Rng& rng) {
  ++num_walks_;
  WalkOutcome outcome;
  const JoinSpec& spec = *join_;
  const Schema& out_schema = spec.output_schema();
  const auto& order = spec.graph().walk_order();

  const RelationPtr& first = spec.relation(order[0]);
  if (first->num_rows() == 0) return outcome;

  std::vector<Value> assignment(out_schema.num_fields());
  std::vector<bool> assigned(out_schema.num_fields(), false);
  auto apply_row = [&](int relation, uint32_t row) {
    const Relation& rel = *spec.relation(relation);
    for (size_t c = 0; c < rel.schema().num_fields(); ++c) {
      int out_idx = out_schema.FieldIndex(rel.schema().field(c).name);
      if (!assigned[out_idx]) {
        assignment[out_idx] = rel.GetValue(row, c);
        assigned[out_idx] = true;
      }
    }
  };

  uint32_t row0 = static_cast<uint32_t>(rng.UniformInt(first->num_rows()));
  apply_row(order[0], row0);
  double probability = 1.0 / static_cast<double>(first->num_rows());

  for (const Step& step : steps_) {
    std::vector<Value> key_values;
    key_values.reserve(step.key_fields.size());
    for (int f : step.key_fields) key_values.push_back(assignment[f]);
    const auto& candidates =
        step.index->LookupEncoded(Tuple(std::move(key_values)).Encode());
    if (candidates.empty()) return outcome;  // dead end
    uint32_t chosen = candidates[rng.UniformInt(candidates.size())];
    probability /= static_cast<double>(candidates.size());
    apply_row(step.relation, chosen);
  }

  Tuple out(std::move(assignment));
  if (!spec.SatisfiesPredicates(out)) return outcome;  // predicate rejection
  outcome.success = true;
  outcome.tuple = std::move(out);
  outcome.probability = probability;
  ++num_successes_;
  return outcome;
}

WalkOutcome WanderJoinSizeEstimator::Step(Rng& rng) {
  WalkOutcome outcome = sampler_->Walk(rng);
  if (outcome.success) {
    ht_.AddSuccess(outcome.probability);
  } else {
    ht_.AddFailure();
  }
  return outcome;
}

void WanderJoinSizeEstimator::RunUntilConfident(Rng& rng, double confidence,
                                                double relative_halfwidth,
                                                uint64_t min_walks,
                                                uint64_t max_walks) {
  while (ht_.num_draws() < min_walks) Step(rng);
  while (ht_.num_draws() < max_walks &&
         ht_.RelativeHalfWidth(confidence) > relative_halfwidth) {
    Step(rng);
  }
}

}  // namespace suj
