#include "join/wander_join.h"

#include "common/logging.h"

namespace suj {

Result<std::unique_ptr<WanderJoinSampler>> WanderJoinSampler::Create(
    JoinSpecPtr join, CompositeIndexCache* cache) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  if (cache == nullptr) return Status::InvalidArgument("null index cache");

  auto sampler =
      std::unique_ptr<WanderJoinSampler>(new WanderJoinSampler(join));
  const JoinGraph& graph = join->graph();
  const Schema& out_schema = join->output_schema();
  const auto& order = graph.walk_order();
  for (size_t pos = 1; pos < order.size(); ++pos) {
    Step step;
    step.relation = order[pos];
    auto index = cache->GetOrBuild(join->relation(order[pos]),
                                   graph.bound_attrs()[pos]);
    if (!index.ok()) return index.status();
    step.index = std::move(index).value();
    for (const auto& a : graph.bound_attrs()[pos]) {
      int idx = out_schema.FieldIndex(a);
      SUJ_CHECK(idx >= 0);
      step.key_fields.push_back(idx);
    }
    // Columnar probe source: the most recent earlier position whose
    // relation carries every bound attribute. Every bound attribute is
    // probe-key-constrained at the position that first binds it, so any
    // carrier holds the walk's assigned value.
    for (size_t q = pos; q-- > 0;) {
      const Schema& src = join->relation(order[q])->schema();
      bool covers = true;
      for (const auto& a : graph.bound_attrs()[pos]) {
        if (!src.HasField(a)) {
          covers = false;
          break;
        }
      }
      if (!covers) continue;
      auto probe =
          cache->GetOrBuildProbe(step.index, join->relation(order[q]));
      if (!probe.ok()) continue;  // e.g. type mismatch; probe generically
      step.probe = std::move(probe).value();
      step.source_pos = static_cast<int>(q);
      break;
    }
    sampler->steps_.push_back(std::move(step));
  }

  sampler->columnar_ = true;
  for (const Step& step : sampler->steps_) {
    if (step.source_pos < 0) sampler->columnar_ = false;
  }
  if (sampler->columnar_) {
    // First-assigner materialization plan (walk order). The columnar walk
    // picks all rows first and materializes once at the end; skipping
    // non-first carriers is lossless because their shared attributes are
    // probe-key-equal by construction.
    sampler->writes_.resize(order.size());
    std::vector<bool> assigned(out_schema.num_fields(), false);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      const Schema& rel_schema = join->relation(order[pos])->schema();
      for (size_t c = 0; c < rel_schema.num_fields(); ++c) {
        int out_idx = out_schema.FieldIndex(rel_schema.field(c).name);
        SUJ_CHECK(out_idx >= 0);
        if (!assigned[out_idx]) {
          assigned[out_idx] = true;
          sampler->writes_[pos].emplace_back(static_cast<uint16_t>(c),
                                             static_cast<uint16_t>(out_idx));
        }
      }
    }
  }
  return sampler;
}

WalkOutcome WanderJoinSampler::Walk(Rng& rng) {
  ++num_walks_;
  const RelationPtr& first = join_->relation(join_->graph().walk_order()[0]);
  if (first->num_rows() == 0) return WalkOutcome{};
  const uint32_t row0 =
      static_cast<uint32_t>(rng.UniformInt(first->num_rows()));
  const double p0 = 1.0 / static_cast<double>(first->num_rows());
  return columnar_ ? WalkColumnarFrom(row0, p0, rng)
                   : WalkGenericFrom(row0, p0, rng);
}

WalkOutcome WanderJoinSampler::WalkFromRoot(uint32_t root_row,
                                            double root_probability,
                                            Rng& rng) {
  ++num_walks_;
  return columnar_ ? WalkColumnarFrom(root_row, root_probability, rng)
                   : WalkGenericFrom(root_row, root_probability, rng);
}

WalkOutcome WanderJoinSampler::WalkColumnarFrom(uint32_t root_row,
                                                double root_probability,
                                                Rng& rng) {
  WalkOutcome outcome;
  const JoinSpec& spec = *join_;
  const auto& order = spec.graph().walk_order();

  // Phase 1: choose rows through flat arrays only.
  uint32_t chosen[64];
  SUJ_CHECK(order.size() <= 64);
  chosen[0] = root_row;
  double probability = root_probability;
  for (size_t pos = 1; pos < order.size(); ++pos) {
    const Step& step = steps_[pos - 1];
    const uint32_t g = (*step.probe)[chosen[step.source_pos]];
    const RowSpan candidates = step.index->GroupRows(g);
    if (candidates.empty()) return outcome;  // dead end
    chosen[pos] = candidates[rng.UniformInt(candidates.size())];
    probability /= static_cast<double>(candidates.size());
  }

  // Phase 2: materialize the completed walk.
  const Schema& out_schema = spec.output_schema();
  std::vector<Value> assignment(out_schema.num_fields());
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const Relation& rel = *spec.relation(order[pos]);
    for (const auto& [col, out_idx] : writes_[pos]) {
      assignment[out_idx] = rel.GetValue(chosen[pos], col);
    }
  }
  Tuple out(std::move(assignment));
  if (!spec.SatisfiesPredicates(out)) return outcome;  // predicate rejection
  outcome.success = true;
  outcome.tuple = std::move(out);
  outcome.probability = probability;
  ++num_successes_;
  return outcome;
}

WalkOutcome WanderJoinSampler::WalkGenericFrom(uint32_t root_row,
                                               double root_probability,
                                               Rng& rng) {
  WalkOutcome outcome;
  const JoinSpec& spec = *join_;
  const Schema& out_schema = spec.output_schema();
  const auto& order = spec.graph().walk_order();

  std::vector<Value> assignment(out_schema.num_fields());
  std::vector<bool> assigned(out_schema.num_fields(), false);
  auto apply_row = [&](int relation, uint32_t row) {
    const Relation& rel = *spec.relation(relation);
    for (size_t c = 0; c < rel.schema().num_fields(); ++c) {
      int out_idx = out_schema.FieldIndex(rel.schema().field(c).name);
      if (!assigned[out_idx]) {
        assignment[out_idx] = rel.GetValue(row, c);
        assigned[out_idx] = true;
      }
    }
  };

  apply_row(order[0], root_row);
  double probability = root_probability;

  for (const Step& step : steps_) {
    std::vector<Value> key_values;
    key_values.reserve(step.key_fields.size());
    for (int f : step.key_fields) key_values.push_back(assignment[f]);
    const RowSpan candidates =
        step.index->LookupEncoded(Tuple(std::move(key_values)).Encode());
    if (candidates.empty()) return outcome;  // dead end
    uint32_t chosen = candidates[rng.UniformInt(candidates.size())];
    probability /= static_cast<double>(candidates.size());
    apply_row(step.relation, chosen);
  }

  Tuple out(std::move(assignment));
  if (!spec.SatisfiesPredicates(out)) return outcome;  // predicate rejection
  outcome.success = true;
  outcome.tuple = std::move(out);
  outcome.probability = probability;
  ++num_successes_;
  return outcome;
}

WalkOutcome WanderJoinSizeEstimator::Step(Rng& rng) {
  WalkOutcome outcome = sampler_->Walk(rng);
  if (outcome.success) {
    ht_.AddSuccess(outcome.probability);
  } else {
    ht_.AddFailure();
  }
  return outcome;
}

void WanderJoinSizeEstimator::RunUntilConfident(Rng& rng, double confidence,
                                                double relative_halfwidth,
                                                uint64_t min_walks,
                                                uint64_t max_walks) {
  while (ht_.num_draws() < min_walks) Step(rng);
  while (ht_.num_draws() < max_walks &&
         ht_.RelativeHalfWidth(confidence) > relative_halfwidth) {
    Step(rng);
  }
}

}  // namespace suj
