// JoinSpec: immutable description of one multi-way natural join.
//
// A JoinSpec is the unit the union framework works over: the paper's
// S = {J_1..J_n} is a vector of JoinSpecs sharing an output schema. The spec
// owns the relation list, the structural analysis (JoinGraph), the output
// schema (union of attributes in sorted name order, so equal-attribute joins
// produce byte-identical tuple encodings), and optional on-the-fly selection
// predicates evaluated on output tuples (§8.3).

#ifndef SUJ_JOIN_JOIN_SPEC_H_
#define SUJ_JOIN_JOIN_SPEC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "join/join_graph.h"
#include "join/predicate.h"
#include "storage/relation.h"

namespace suj {

/// \brief One join J_j = R_1 |><| R_2 |><| ... |><| R_m.
class JoinSpec {
 public:
  /// Creates and validates a join over `relations`.
  ///
  /// \param name        label used in reports.
  /// \param relations   base relations (assumed duplicate-free, per §3).
  /// \param declared_edges  optional structural edges; inferred from shared
  ///                    attribute names when empty.
  /// \param output_predicates  selection predicates applied to output tuples
  ///                    on the fly (pushdown filtering is done by the caller
  ///                    with FilterRelation before building the spec).
  static Result<std::shared_ptr<const JoinSpec>> Create(
      std::string name, std::vector<RelationPtr> relations,
      std::vector<JoinEdge> declared_edges = {},
      std::vector<Predicate> output_predicates = {});

  const std::string& name() const { return name_; }
  const std::vector<RelationPtr>& relations() const { return relations_; }
  const RelationPtr& relation(int i) const { return relations_[i]; }
  int num_relations() const { return static_cast<int>(relations_.size()); }

  const JoinGraph& graph() const { return graph_; }
  JoinType type() const { return graph_.type(); }

  /// Output schema: every distinct attribute, sorted by name. Two joins are
  /// union-compatible iff their output schemas are equal.
  const Schema& output_schema() const { return output_schema_; }

  const std::vector<Predicate>& output_predicates() const {
    return output_predicates_;
  }
  bool has_predicates() const { return !output_predicates_.empty(); }

  /// True iff `tuple` (over output_schema()) passes all predicates.
  bool SatisfiesPredicates(const Tuple& tuple) const;

  std::string ToString() const;

 private:
  JoinSpec(std::string name, std::vector<RelationPtr> relations,
           JoinGraph graph, Schema output_schema,
           std::vector<Predicate> output_predicates)
      : name_(std::move(name)),
        relations_(std::move(relations)),
        graph_(std::move(graph)),
        output_schema_(std::move(output_schema)),
        output_predicates_(std::move(output_predicates)) {}

  std::string name_;
  std::vector<RelationPtr> relations_;
  JoinGraph graph_;
  Schema output_schema_;
  std::vector<Predicate> output_predicates_;
};

using JoinSpecPtr = std::shared_ptr<const JoinSpec>;

/// Validates that all joins share one output schema (the precondition of
/// every union algorithm; §2 assumes it).
Status ValidateUnionCompatible(const std::vector<JoinSpecPtr>& joins);

}  // namespace suj

#endif  // SUJ_JOIN_JOIN_SPEC_H_
