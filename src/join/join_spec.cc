#include "join/join_spec.h"

#include <algorithm>
#include <map>

namespace suj {

Result<std::shared_ptr<const JoinSpec>> JoinSpec::Create(
    std::string name, std::vector<RelationPtr> relations,
    std::vector<JoinEdge> declared_edges,
    std::vector<Predicate> output_predicates) {
  auto graph = JoinGraph::Build(relations, std::move(declared_edges));
  if (!graph.ok()) return graph.status();

  // Output schema: distinct attributes sorted by name; types of same-named
  // attributes must agree across relations.
  std::map<std::string, ValueType> attrs;
  for (const auto& rel : relations) {
    for (const auto& f : rel->schema().fields()) {
      auto it = attrs.find(f.name);
      if (it == attrs.end()) {
        attrs.emplace(f.name, f.type);
      } else if (it->second != f.type) {
        return Status::InvalidArgument(
            "attribute '" + f.name + "' has conflicting types across "
            "relations of join '" + name + "'");
      }
    }
  }
  std::vector<Field> fields;
  fields.reserve(attrs.size());
  for (const auto& [attr_name, type] : attrs) {
    fields.push_back({attr_name, type});
  }

  return std::shared_ptr<const JoinSpec>(new JoinSpec(
      std::move(name), std::move(relations), std::move(graph).value(),
      Schema(std::move(fields)), std::move(output_predicates)));
}

bool JoinSpec::SatisfiesPredicates(const Tuple& tuple) const {
  for (const auto& p : output_predicates_) {
    if (!p.EvalOnTuple(tuple, output_schema_)) return false;
  }
  return true;
}

std::string JoinSpec::ToString() const {
  std::string out = name_;
  out += " [";
  out += JoinTypeName(type());
  out += "]: ";
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (i > 0) out += " |><| ";
    out += relations_[i]->name();
  }
  return out;
}

Status ValidateUnionCompatible(const std::vector<JoinSpecPtr>& joins) {
  if (joins.empty()) {
    return Status::InvalidArgument("union needs at least one join");
  }
  for (const auto& j : joins) {
    if (j == nullptr) return Status::InvalidArgument("null join in union");
  }
  const Schema& schema = joins[0]->output_schema();
  for (size_t i = 1; i < joins.size(); ++i) {
    if (joins[i]->output_schema() != schema) {
      return Status::InvalidArgument(
          "join '" + joins[i]->name() + "' output schema " +
          joins[i]->output_schema().ToString() +
          " differs from '" + joins[0]->name() + "' schema " +
          schema.ToString());
    }
  }
  return Status::OK();
}

}  // namespace suj
