#include "join/join_graph.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace suj {

const char* JoinTypeName(JoinType type) {
  switch (type) {
    case JoinType::kChain:
      return "chain";
    case JoinType::kAcyclic:
      return "acyclic";
    case JoinType::kCyclic:
      return "cyclic";
  }
  return "?";
}

namespace {

std::vector<std::string> SharedAttrs(const Relation& a, const Relation& b) {
  return a.schema().CommonFields(b.schema());
}

}  // namespace

Result<JoinGraph> JoinGraph::Build(const std::vector<RelationPtr>& relations,
                                   std::vector<JoinEdge> declared_edges) {
  if (relations.empty()) {
    return Status::InvalidArgument("join needs at least one relation");
  }
  for (const auto& r : relations) {
    if (r == nullptr) return Status::InvalidArgument("null relation in join");
  }
  const int n = static_cast<int>(relations.size());

  JoinGraph g;
  g.num_relations_ = relations.size();

  // Resolve structural edges.
  if (declared_edges.empty()) {
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        auto attrs = SharedAttrs(*relations[i], *relations[j]);
        if (!attrs.empty()) {
          g.edges_.push_back({i, j, std::move(attrs)});
        }
      }
    }
  } else {
    std::set<std::pair<int, int>> seen;
    for (const auto& e : declared_edges) {
      int a = std::min(e.left, e.right);
      int b = std::max(e.left, e.right);
      if (a < 0 || b >= n || a == b) {
        return Status::InvalidArgument("declared edge out of range");
      }
      if (!seen.insert({a, b}).second) {
        return Status::InvalidArgument("duplicate declared edge");
      }
      auto attrs = SharedAttrs(*relations[a], *relations[b]);
      if (attrs.empty()) {
        return Status::InvalidArgument(
            "declared edge between '" + relations[a]->name() + "' and '" +
            relations[b]->name() + "' has no shared attribute");
      }
      g.edges_.push_back({a, b, std::move(attrs)});
    }
  }

  // Adjacency + connectivity.
  std::vector<std::vector<int>> adj(n);
  for (const auto& e : g.edges_) {
    adj[e.left].push_back(e.right);
    adj[e.right].push_back(e.left);
  }
  {
    std::vector<bool> visited(n, false);
    std::deque<int> queue = {0};
    visited[0] = true;
    int count = 1;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      for (int v : adj[u]) {
        if (!visited[v]) {
          visited[v] = true;
          ++count;
          queue.push_back(v);
        }
      }
    }
    if (count != n) {
      return Status::InvalidArgument("join graph is disconnected");
    }
  }

  // Classification from the structural edges.
  const size_t num_edges = g.edges_.size();
  bool is_tree = num_edges == static_cast<size_t>(n - 1);
  bool is_path = is_tree;
  if (is_tree && n >= 2) {
    int deg1 = 0;
    for (int i = 0; i < n; ++i) {
      if (adj[i].size() > 2) is_path = false;
      if (adj[i].size() == 1) ++deg1;
    }
    if (deg1 != 2) is_path = false;
  }
  if (!is_tree) {
    g.type_ = JoinType::kCyclic;
  } else if (is_path || n == 1) {
    g.type_ = JoinType::kChain;
  } else {
    g.type_ = JoinType::kAcyclic;
  }

  // Walk order: BFS from a degree-1 node when one exists (for chains this
  // yields the path order), else from node 0.
  int start = 0;
  for (int i = 0; i < n; ++i) {
    if (adj[i].size() == 1) {
      start = i;
      break;
    }
  }
  {
    std::vector<bool> visited(n, false);
    std::deque<int> queue = {start};
    visited[start] = true;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      g.walk_order_.push_back(u);
      // Deterministic neighbor order.
      std::vector<int> nbrs = adj[u];
      std::sort(nbrs.begin(), nbrs.end());
      for (int v : nbrs) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
  }

  // Per-step bound attributes: ALL attributes of the new relation that any
  // earlier relation also has (not just structural-edge attributes), so the
  // walk enforces every equality as soon as possible.
  {
    std::unordered_set<std::string> assigned;
    g.bound_attrs_.resize(n);
    for (int pos = 0; pos < n; ++pos) {
      int r = g.walk_order_[pos];
      std::vector<std::string> bound;
      for (const auto& f : relations[r]->schema().fields()) {
        if (assigned.count(f.name)) bound.push_back(f.name);
      }
      g.bound_attrs_[pos] = std::move(bound);
      for (const auto& f : relations[r]->schema().fields()) {
        assigned.insert(f.name);
      }
    }
  }

  // Spanning tree rooted at the walk start (BFS tree over structural edges).
  g.tree_parent_.assign(n, -1);
  g.tree_edge_attrs_.resize(n);
  g.tree_children_.resize(n);
  {
    std::vector<bool> visited(n, false);
    std::deque<int> queue = {start};
    visited[start] = true;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      g.tree_order_.push_back(u);
      std::vector<int> nbrs = adj[u];
      std::sort(nbrs.begin(), nbrs.end());
      for (int v : nbrs) {
        if (!visited[v]) {
          visited[v] = true;
          g.tree_parent_[v] = u;
          g.tree_edge_attrs_[v] = SharedAttrs(*relations[u], *relations[v]);
          g.tree_children_[u].push_back(v);
          queue.push_back(v);
        }
      }
    }
  }

  // Does the spanning tree imply every shared-attribute equality? For each
  // attribute, the relations containing it must form a connected subgraph
  // of the tree using only edges that carry the attribute.
  {
    std::unordered_map<std::string, std::vector<int>> attr_relations;
    for (int i = 0; i < n; ++i) {
      for (const auto& f : relations[i]->schema().fields()) {
        attr_relations[f.name].push_back(i);
      }
    }
    for (const auto& [attr, rels] : attr_relations) {
      if (rels.size() < 2) continue;
      // BFS within the tree restricted to edges carrying `attr`.
      std::unordered_set<int> members(rels.begin(), rels.end());
      std::unordered_set<int> reached = {rels[0]};
      std::deque<int> queue = {rels[0]};
      auto edge_has_attr = [&](int child) {
        const auto& attrs = g.tree_edge_attrs_[child];
        return std::find(attrs.begin(), attrs.end(), attr) != attrs.end();
      };
      while (!queue.empty()) {
        int u = queue.front();
        queue.pop_front();
        // Tree neighbors: parent and children.
        int p = g.tree_parent_[u];
        if (p >= 0 && members.count(p) && !reached.count(p) &&
            edge_has_attr(u)) {
          reached.insert(p);
          queue.push_back(p);
        }
        for (int c : g.tree_children_[u]) {
          if (members.count(c) && !reached.count(c) && edge_has_attr(c)) {
            reached.insert(c);
            queue.push_back(c);
          }
        }
      }
      if (reached.size() != members.size()) {
        g.tree_captures_all_constraints_ = false;
        break;
      }
    }
  }

  // A join whose declared structure is a tree but whose hidden shared
  // attributes add constraints behaves cyclically; classify it as such so
  // downstream code picks the accept/reject paths.
  if (g.type_ != JoinType::kCyclic && !g.tree_captures_all_constraints_) {
    g.type_ = JoinType::kCyclic;
  }

  return g;
}

}  // namespace suj
