// JoinSampler: interface for uniform random sampling from one join.
//
// This is the "join random sampling" subroutine of Algorithm 1 (line 7),
// revisiting Zhao et al.'s framework (§3.2): a sampler draws tuples that are
// uniform over the join result. A single draw attempt may fail (accept/
// reject step, dead-end walk, predicate rejection); TrySample surfaces the
// attempt so cost accounting can distinguish accepted from rejected work,
// and Sample() retries until success.

#ifndef SUJ_JOIN_JOIN_SAMPLER_H_
#define SUJ_JOIN_JOIN_SAMPLER_H_

#include <cstdint>
#include <optional>

#include "common/result.h"
#include "common/rng.h"
#include "join/join_spec.h"

namespace suj {

/// Attempt accounting for rejection-rate analysis (Fig 5f-h).
struct JoinSampleStats {
  uint64_t attempts = 0;    ///< TrySample calls
  uint64_t successes = 0;   ///< accepted tuples
  uint64_t dead_ends = 0;   ///< walks that hit a zero-degree step
  uint64_t rejections = 0;  ///< accept/reject or predicate rejections

  double RejectionRatio() const {
    return attempts == 0
               ? 0.0
               : 1.0 - static_cast<double>(successes) /
                           static_cast<double>(attempts);
  }
};

/// \brief Uniform sampler over one join result.
class JoinSampler {
 public:
  virtual ~JoinSampler() = default;

  /// One sampling attempt. Returns a tuple over the join's output schema,
  /// or nullopt if this attempt was rejected (caller may retry). Every
  /// returned tuple is uniform over the join result.
  virtual std::optional<Tuple> TrySample(Rng& rng) = 0;

  /// Upper bound on the join size implied by this sampler's weights
  /// (== exact size for exact-weight samplers on non-cyclic joins).
  virtual double SizeUpperBound() const = 0;

  /// True iff the join result is certainly empty (Sample would never
  /// succeed).
  virtual bool IsEmpty() const { return SizeUpperBound() <= 0.0; }

  /// Retries TrySample until success. Fails after `max_attempts` attempts
  /// (guards against sampling an empty or pathologically selective join).
  Result<Tuple> Sample(Rng& rng, uint64_t max_attempts = 10'000'000);

  const JoinSpecPtr& join() const { return join_; }
  const JoinSampleStats& stats() const { return stats_; }
  void ResetStats() { stats_ = JoinSampleStats(); }

 protected:
  explicit JoinSampler(JoinSpecPtr join) : join_(std::move(join)) {}

  JoinSpecPtr join_;
  JoinSampleStats stats_;
};

}  // namespace suj

#endif  // SUJ_JOIN_JOIN_SAMPLER_H_
